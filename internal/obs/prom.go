package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// PromWriter accumulates metrics in the Prometheus text exposition format
// (version 0.0.4), hand-rolled on the stdlib so serving binaries need no
// client library. ariserve and arigate both expose their /metrics through
// it, which keeps the two endpoints' shapes consistent.
//
// The zero value is ready to use. Not safe for concurrent use; build one
// per scrape.
type PromWriter struct {
	b strings.Builder
}

// Metric writes one unlabelled metric: HELP + TYPE header and its single
// sample.
func (p *PromWriter) Metric(name, help, typ string, v float64) {
	p.Family(name, help, typ)
	fmt.Fprintf(&p.b, "%s %g\n", name, v)
}

// Family writes the HELP + TYPE header for a labelled metric family;
// follow with Sample calls for each label set.
func (p *PromWriter) Family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample of a labelled family declared with Family.
// labels is the pre-formatted inner label list (e.g. `job="bfs/Ada-ARI"`);
// empty emits an unlabelled sample.
func (p *PromWriter) Sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(&p.b, "%s %g\n", name, v)
		return
	}
	fmt.Fprintf(&p.b, "%s{%s} %g\n", name, labels, v)
}

// EscapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline are the only characters the
// format defines escapes for (`\\`, `\"`, `\n`). fmt's %q is NOT a valid
// substitute — Go escaping emits sequences like \t and é that a
// Prometheus parser reads as a literal backslash followed by text.
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Labels renders alternating name/value pairs as an escaped inner label
// list for Sample, e.g. Labels("job", name) -> `job="bfs/Ada-ARI"`.
// It panics on an odd number of arguments (a programming error, caught by
// any test that renders the family).
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels needs name/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// Raw appends one pre-formatted exposition line verbatim (the federation
// rollup relays relabelled replica samples through here).
func (p *PromWriter) Raw(line string) {
	p.b.WriteString(line)
	p.b.WriteByte('\n')
}

// formatFloat renders a float the way the Sample/Metric writers do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Bool converts a flag to the 0/1 gauge convention.
func Bool(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// String returns the accumulated exposition text.
func (p *PromWriter) String() string { return p.b.String() }

// ServeText writes the accumulated text to w with the exposition-format
// content type.
func (p *PromWriter) ServeText(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, p.b.String())
}
