package trace

import (
	"bytes"
	"testing"
)

// FuzzReplayer exercises the binary trace parser with arbitrary input: it
// must either reject the stream with an error or produce a Replayer whose
// streams are safe to pull — never panic or hang.
func FuzzReplayer(f *testing.F) {
	// Seed with a small valid trace.
	k := testKernel()
	gen, _ := NewGenerator(k, 1, 3)
	var buf bytes.Buffer
	rec, _ := NewRecorder(gen, &buf, 1, k.WarpsPerCore)
	for w := 0; w < k.WarpsPerCore; w++ {
		rec.NextCompute(0, w)
		rec.NextMem(0, w, nil)
	}
	if err := rec.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ARIT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := NewReplayer(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine
		}
		cores, warps := rep.Shape()
		if cores <= 0 || warps <= 0 {
			t.Fatalf("accepted trace with shape %dx%d", cores, warps)
		}
		// Pulling from any warp must be safe and bounded.
		for i := 0; i < 16; i++ {
			c, w := i%cores, i%warps
			if n := rep.NextCompute(c, w); n < 0 {
				t.Fatalf("negative compute segment %d", n)
			}
			_, addrs := rep.NextMem(c, w, nil)
			if len(addrs) > 8 {
				t.Fatalf("replayed %d addresses, above the format cap", len(addrs))
			}
		}
	})
}
