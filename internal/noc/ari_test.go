package noc

import "testing"

// ariSrc is the injecting node for the throughput tests: a central node of
// the 4x4 mesh, so all four mesh outputs are available (the few-to-many
// pattern of a reply-network MC).
const ariSrc = 5

// ariConfig returns a 4x4 adaptive-routing config where the central node
// has the given injection architecture (standing in for an MC node on the
// reply network).
func ariConfig(t *testing.T, nc NodeConfig) Config {
	return testConfig(t, func(c *Config) {
		c.Routing = RouteMinAdaptive
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		c.Nodes[ariSrc] = nc
	})
}

// measureInjectionThroughput floods the source with long packets to all
// other nodes for `cycles` and returns delivered flits per cycle.
func measureInjectionThroughput(t *testing.T, cfg Config, cycles int) float64 {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flits uint64
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		flits += uint64(pkt.Size)
	})
	dst := 0
	for c := 0; c < cycles; c++ {
		if dst == ariSrc {
			dst = (dst + 1) % cfg.Mesh.Nodes()
		}
		pkt := mkPacket(cfg, ReadReply, dst)
		if n.Inject(ariSrc, pkt) {
			dst = (dst + 1) % cfg.Mesh.Nodes()
		}
		n.Step()
	}
	return float64(flits) / float64(cycles)
}

func TestSplitNISuppliesFasterThanBaseline(t *testing.T) {
	base := measureInjectionThroughput(t, ariConfig(t, NodeConfig{}), 3000)
	// Supply acceleration alone: split queues, no crossbar speedup.
	split := measureInjectionThroughput(t, ariConfig(t, NodeConfig{NI: NISplit}), 3000)
	// Full ARI: split + speedup.
	ari := measureInjectionThroughput(t, ariConfig(t, NodeConfig{NI: NISplit, InjSpeedup: 4}), 3000)

	if base <= 0 {
		t.Fatal("baseline delivered nothing")
	}
	// Baseline is bounded by the single narrow link: <= 1 flit/cycle.
	if base > 1.0 {
		t.Fatalf("baseline injection throughput %.3f exceeds the narrow link", base)
	}
	// Split without speedup cannot be consumed faster than one flit/cycle
	// through the single switch-port (the §7.1 Acc-Supply observation).
	if split > 1.05 {
		t.Fatalf("split-only throughput %.3f should stay switch-limited near 1", split)
	}
	// Full ARI must clearly exceed the baseline (paper: supply AND
	// consumption must both be accelerated).
	if ari < base*1.5 {
		t.Fatalf("ARI throughput %.3f not clearly above baseline %.3f", ari, base)
	}
}

func TestSpeedupAloneIsConsumptionLimited(t *testing.T) {
	// Consumption acceleration alone keeps the narrow single supply link:
	// throughput stays ~1 flit/cycle (the §7.1 Acc-Consume observation).
	only := measureInjectionThroughput(t, ariConfig(t, NodeConfig{InjSpeedup: 4}), 3000)
	if only > 1.05 {
		t.Fatalf("consume-only throughput %.3f exceeds the supply link", only)
	}
}

func TestMultiPortBetweenBaselineAndARI(t *testing.T) {
	base := measureInjectionThroughput(t, ariConfig(t, NodeConfig{}), 3000)
	multi := measureInjectionThroughput(t, ariConfig(t, NodeConfig{NI: NIMultiPort, InjPorts: 2}), 3000)
	ari := measureInjectionThroughput(t, ariConfig(t, NodeConfig{NI: NISplit, InjSpeedup: 4}), 3000)
	if multi < base*0.95 {
		t.Fatalf("MultiPort (%.3f) worse than baseline (%.3f)", multi, base)
	}
	if multi > ari {
		t.Fatalf("MultiPort (%.3f) outperformed full ARI (%.3f)", multi, ari)
	}
}

func TestInjSpeedupClampedToVCs(t *testing.T) {
	nc := NodeConfig{InjSpeedup: 99}
	if got := nc.injSpeedup(4); got != 4 {
		t.Fatalf("speedup clamp: got %d, want 4 (eq. 2)", got)
	}
	if got := nc.injSpeedup(2); got != 2 {
		t.Fatalf("speedup clamp: got %d, want 2", got)
	}
	zero := NodeConfig{}
	if got := zero.injSpeedup(4); got != 1 {
		t.Fatalf("default speedup: got %d, want 1", got)
	}
	if got := zero.injPorts(); got != 1 {
		t.Fatalf("default ports: got %d, want 1", got)
	}
}

func TestMCRouterHasExtraSwitchPorts(t *testing.T) {
	n, err := NewNetwork(ariConfig(t, NodeConfig{NI: NISplit, InjSpeedup: 4}))
	if err != nil {
		t.Fatal(err)
	}
	rMC := n.routers[ariSrc]
	// 4 mesh ports x 1 + injection port x 4 = 8 switch-ports.
	if got := len(rMC.spVCs); got != 8 {
		t.Fatalf("MC-router switch ports = %d, want 8", got)
	}
	r1 := n.routers[1]
	if got := len(r1.spVCs); got != 5 {
		t.Fatalf("non-MC router switch ports = %d, want 5", got)
	}
}

func TestPriorityFieldDecrementsPerHop(t *testing.T) {
	cfg := testConfig(t, func(c *Config) { c.PriorityLevels = 4 })
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var final int
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) { final = pkt.Priority })
	pkt := mkPacket(cfg, ReadRequest, 3) // 3 hops on row 0 => 4 RCs incl. eject
	if !n.Inject(0, pkt) {
		t.Fatal("inject failed")
	}
	runUntilIdle(t, n, 1000)
	// Generated at 3; decremented at nodes 0,1,2,3 -> floor 0 reached.
	if final != 0 {
		t.Fatalf("final priority %d, want 0", final)
	}
}

func TestPriorityFavoursInjectionAtContendedOutput(t *testing.T) {
	// Deterministic micro-scenario on a 1x3 mesh: a through packet from
	// node 0 is mid-flight across router 1 when node 1 injects its own
	// packet. Both hold East-bound VCs at router 1 and contend flit by
	// flit for the East output. With ARI priority, the freshly injected
	// packet (priority 1) must overtake the in-network one (priority 0);
	// without priority, the earlier through packet finishes first.
	run := func(levels int) (injDone, thruDone int64) {
		cfg := Config{
			Mesh:           Mesh{Width: 3, Height: 1},
			VCs:            4,
			LinkBits:       128,
			DataBytes:      128,
			Routing:        RouteXY,
			NonAtomicVC:    true,
			PriorityLevels: levels,
			EjectRate:      1,
			Nodes: []NodeConfig{
				{}, {NI: NISplit, InjSpeedup: 4}, {},
			},
		}
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		done := map[int]int64{}
		n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
			done[pkt.Src] = now
		})
		thru := mkPacket(cfg, ReadReply, 2)
		if !n.Inject(0, thru) {
			t.Fatal("through inject failed")
		}
		// Let the through packet reach router 1 and start traversing.
		for i := 0; i < 6; i++ {
			n.Step()
		}
		inj := mkPacket(cfg, ReadReply, 2)
		if !n.Inject(1, inj) {
			t.Fatal("local inject failed")
		}
		for i := 0; i < 200; i++ {
			n.Step()
		}
		if done[0] == 0 || done[1] == 0 {
			t.Fatalf("packets not delivered: %v", done)
		}
		return done[1], done[0]
	}
	injPri, thruPri := run(2)
	if injPri >= thruPri {
		t.Fatalf("with priority, injected packet finished at %d, through at %d (want injected first)", injPri, thruPri)
	}
	injNo, thruNo := run(0)
	if injNo <= thruNo {
		t.Fatalf("without priority, through packet should finish first (inj %d, thru %d)", injNo, thruNo)
	}
}

func TestStarvationGuardBoundsWait(t *testing.T) {
	// With a tiny starvation threshold, through traffic competing against
	// prioritised injection must still make progress.
	cfg := testConfig(t, func(c *Config) {
		c.PriorityLevels = 2
		c.StarvationLimit = 16
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		c.Nodes[1] = NodeConfig{NI: NISplit, InjSpeedup: 4}
	})
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	thru := 0
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		if pkt.Src == 0 {
			thru++
		}
	})
	for c := 0; c < 3000; c++ {
		n.Inject(0, mkPacket(cfg, ReadReply, 3))
		n.Inject(1, mkPacket(cfg, ReadReply, 3))
		n.Step()
	}
	if thru < 20 {
		t.Fatalf("through traffic starved: only %d packets delivered", thru)
	}
}

func TestNonAtomicVCAllowsShortPacketSharing(t *testing.T) {
	// With non-atomic allocation (WPF), total throughput of short packets
	// must be at least as high as with atomic allocation under load.
	measure := func(nonAtomic bool) uint64 {
		cfg := testConfig(t, func(c *Config) { c.NonAtomicVC = nonAtomic })
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var delivered uint64
		n.SetEjectHandler(func(node int, pkt *Packet, now int64) { delivered++ })
		for c := 0; c < 2000; c++ {
			for s := 0; s < cfg.Mesh.Nodes(); s++ {
				n.Inject(s, mkPacket(cfg, ReadRequest, (s+5)%cfg.Mesh.Nodes()))
			}
			n.Step()
		}
		return delivered
	}
	atomic, wpf := measure(false), measure(true)
	if wpf < atomic {
		t.Fatalf("WPF (%d) delivered less than atomic allocation (%d)", wpf, atomic)
	}
}

func TestSplitQueueCapacityAtLeastBaseline(t *testing.T) {
	// §6.2 fairness: the split NI's total buffering must not be below the
	// configured single-queue size.
	cfg := ariConfig(t, NodeConfig{NI: NISplit})
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := n.NIQueueCapacityFlits(0), cfg.NIQueueFlits; got < want {
		t.Fatalf("split NI capacity %d < baseline %d", got, want)
	}
	if got := n.NIQueueCapacityFlits(1); got != cfg.NIQueueFlits {
		t.Fatalf("baseline NI capacity %d != %d", got, cfg.NIQueueFlits)
	}
}

func TestChoosePacketVCMaskAdaptive(t *testing.T) {
	m := Mesh{Width: 4, Height: 4}
	// Two productive dimensions: XY-preferred port carries the escape VC.
	cands := computeRoute(m, RouteMinAdaptive, 0, m.ID(2, 2), 4, nil)
	if len(cands) != 2 {
		t.Fatalf("adaptive candidates = %d, want 2", len(cands))
	}
	if cands[0].port != int(East) {
		t.Fatalf("XY-preferred port = %d, want East", cands[0].port)
	}
	if cands[0].vcMask&1 == 0 {
		t.Fatal("escape VC missing from XY-preferred candidate")
	}
	if cands[1].vcMask&1 != 0 {
		t.Fatal("escape VC present on non-XY candidate")
	}
	// One dimension left: full mask.
	cands = computeRoute(m, RouteMinAdaptive, 0, 3, 4, nil)
	if len(cands) != 1 || cands[0].vcMask != maskAll(4) {
		t.Fatalf("single-dimension candidate wrong: %+v", cands)
	}
	// Arrived: ejection port.
	cands = computeRoute(m, RouteMinAdaptive, 5, 5, 4, nil)
	if len(cands) != 1 || cands[0].port != ejectPortIndex {
		t.Fatalf("arrival candidate wrong: %+v", cands)
	}
}
