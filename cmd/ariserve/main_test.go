package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// syncBuffer is a bytes.Buffer safe for the concurrent write (server
// goroutine) + read (test polling) this smoke test does.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe launches run() with the given args and returns the bound
// address, the signal channel that stops it, and the exit channel.
func startServe(t *testing.T, args []string, stdout, stderr *syncBuffer) (string, chan os.Signal, chan error) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, stdout, stderr, sigs) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], sigs, done
		}
		select {
		case err := <-done:
			t.Fatalf("server exited before listening: %v\nstderr: %s", err, stderr.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never announced its address:\n%s", stderr.String())
	return "", nil, nil
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb syncBuffer
	sigs := make(chan os.Signal)
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"-addr", "999.999.999.999:0"},
		{"-journal", filepath.Join(t.TempDir(), "no", "such", "dir", "j.jsonl")},
	} {
		if err := run(args, &out, &errb, sigs); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestServeSubmitDrainSmoke(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "serve.jsonl")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-journal", journal,
		"-drain-timeout", "30s",
		"-cycles", "300", "-warmup", "100",
	}
	var out, errb syncBuffer
	addr, sigs, done := startServe(t, args, &out, &errb)

	cli := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := cli.Submit(ctx, serve.JobRequest{Bench: "bfs", Scheme: "Ada-ARI"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.Result.Benchmark != "bfs" || resp.Cached {
		t.Fatalf("unexpected response: %+v", resp)
	}

	// SIGTERM drains gracefully and run() returns nil.
	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if !strings.Contains(errb.String(), "draining") {
		t.Errorf("stderr missing drain notice:\n%s", errb.String())
	}
	if !strings.Contains(out.String(), "drained; 1 completed") {
		t.Errorf("stdout missing drain summary:\n%s", out.String())
	}
	// The journal holds the completed job.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"bench":"bfs"`) {
		t.Fatalf("journal missing the completed job:\n%s", raw)
	}

	// A restarted server resumes from the journal: the same submission is a
	// cache hit, with no new simulation.
	var out2, errb2 syncBuffer
	addr2, sigs2, done2 := startServe(t, args, &out2, &errb2)
	if !strings.Contains(errb2.String(), "resuming, 1 jobs journalled") {
		t.Errorf("restart did not report resuming:\n%s", errb2.String())
	}
	cli2 := client.New("http://" + addr2)
	resp2, err := cli2.Submit(ctx, serve.JobRequest{Bench: "bfs", Scheme: "Ada-ARI"})
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if !resp2.Cached {
		t.Fatal("restarted server re-ran a journalled job")
	}
	if resp2.Key != resp.Key {
		t.Fatalf("job key changed across restart: %s vs %s", resp2.Key, resp.Key)
	}
	sigs2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !strings.Contains(out2.String(), "1 cache hits") {
		t.Errorf("restart summary missing cache hit:\n%s", out2.String())
	}
}
