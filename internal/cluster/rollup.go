package cluster

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Cluster metrics federation: GET /metrics/cluster scrapes every replica's
// /metrics, relabels each sample with replica="<url>", and serves the union
// as one exposition document — one scrape target covers the whole cluster.
// HELP/TYPE headers are deduplicated across replicas (every replica emits
// identical families); ari_cluster_scrape_up reports which replicas
// answered.

// handleClusterMetrics serves the federated rollup of all replica scrapes.
func (g *Gateway) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	replicas := g.ring.Replicas()
	bodies := make([]string, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep string) {
			defer wg.Done()
			bodies[i] = g.scrapeReplica(ctx, rep)
		}(i, rep)
	}
	wg.Wait()

	var p obs.PromWriter
	p.Family("ari_cluster_scrape_up", "Whether the replica answered the federated scrape.", "gauge")
	for i, rep := range replicas {
		p.Sample("ari_cluster_scrape_up", obs.Labels("replica", rep), obs.Bool(bodies[i] != ""))
	}
	seenHeader := make(map[string]bool)
	for i, rep := range replicas {
		if bodies[i] == "" {
			continue
		}
		relabelExposition(&p, bodies[i], obs.Labels("replica", rep), seenHeader)
	}
	p.ServeText(w)
}

// scrapeReplica fetches one replica's /metrics ("" on any failure).
func (g *Gateway) scrapeReplica(ctx context.Context, replica string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/metrics", nil)
	if err != nil {
		return ""
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return ""
	}
	return string(raw)
}

// relabelExposition copies one exposition document into p, injecting label
// into every sample line. Comment lines (# HELP / # TYPE) pass through once
// per family across all replicas; malformed lines are dropped.
func relabelExposition(p *obs.PromWriter, body, label string, seenHeader map[string]bool) {
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# HELP name ..." / "# TYPE name ..." — dedup per (kind, name).
			f := strings.Fields(line)
			if len(f) < 3 {
				continue
			}
			key := f[1] + " " + f[2]
			if seenHeader[key] {
				continue
			}
			seenHeader[key] = true
			p.Raw(line)
			continue
		}
		if rl, ok := relabelSample(line, label); ok {
			p.Raw(rl)
		}
	}
}

// relabelSample injects the label pair(s) into one sample line. Insertion
// happens right after the metric name (before any existing label list), so
// no quote-aware scan of the existing labels is needed.
func relabelSample(line, label string) (string, bool) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", false
	}
	if line[i] == ' ' {
		return line[:i] + "{" + label + "}" + line[i:], true
	}
	if i+1 < len(line) && line[i+1] == '}' { // empty label set: name{} value
		return line[:i+1] + label + line[i+1:], true
	}
	return line[:i+1] + label + "," + line[i+1:], true
}
