// Package trace provides the synthetic workloads that stand in for the
// paper's 30 Rodinia / CUDA-SDK benchmarks. Each benchmark is a Kernel: a
// small parameter set (compute-to-memory ratio, read fraction, coalescing,
// locality, working-set structure) from which a deterministic per-warp
// instruction and address stream is generated. The parameters encode what
// the paper's figures actually depend on — NoC traffic intensity and
// sensitivity class (9 high / 11 medium / 10 low, §6.2), read/write mix
// (Fig 5) and cache behaviour — rather than the benchmarks' semantics.
package trace

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Sensitivity is the paper's NoC-sensitivity class of a benchmark.
type Sensitivity uint8

const (
	// High sensitivity: memory-bound, little compute per access.
	High Sensitivity = iota
	// Medium sensitivity.
	Medium
	// Low sensitivity: compute-bound, sparse memory traffic.
	Low
)

// String returns the class name.
func (s Sensitivity) String() string {
	switch s {
	case High:
		return "high"
	case Medium:
		return "medium"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Sensitivity(%d)", uint8(s))
	}
}

// Kernel parameterises one synthetic benchmark.
type Kernel struct {
	Name string
	Sens Sensitivity

	// WarpsPerCore is the occupancy the kernel achieves.
	WarpsPerCore int
	// ComputePerMem is the mean number of compute instructions a warp
	// executes between memory instructions (geometric distribution).
	ComputePerMem float64
	// ReadFrac is the probability a memory instruction is a load.
	ReadFrac float64
	// CoalesceMean is the mean number of 128B transactions one memory
	// instruction generates (1 = perfectly coalesced; divergent kernels
	// approach 4). Clamped to [1, 4].
	CoalesceMean float64
	// Locality is the probability an access targets the warp's private hot
	// set (L1-resident reuse).
	Locality float64
	// HotLines is the warp-private hot-set size in cache lines.
	HotLines int
	// L2Frac is the probability a non-local access falls in the shared
	// L2-resident region rather than the large streaming region.
	L2Frac float64
	// SharedLines is the shared region size in lines (across all MCs).
	SharedLines int
	// StreamLines is the streaming region size in lines; warps walk it
	// with a per-warp cursor, so it is effectively DRAM-bound when large.
	StreamLines uint64
}

// Validate checks the kernel parameters.
func (k Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("trace: kernel without a name")
	}
	if k.WarpsPerCore <= 0 {
		return fmt.Errorf("trace: %s: WarpsPerCore must be positive", k.Name)
	}
	// Cap occupancy: the generator allocates per-warp state, so an absurd
	// value must fail validation instead of exhausting memory.
	const maxWarpsPerCore = 4096
	if k.WarpsPerCore > maxWarpsPerCore {
		return fmt.Errorf("trace: %s: WarpsPerCore %d exceeds %d", k.Name, k.WarpsPerCore, maxWarpsPerCore)
	}
	// Reject non-finite parameters explicitly: NaN compares false against
	// every bound, so it would slip through the range checks below.
	for _, f := range [...]float64{k.ComputePerMem, k.ReadFrac, k.CoalesceMean, k.Locality, k.L2Frac} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("trace: %s: non-finite parameter", k.Name)
		}
	}
	// Cap the geometric means: beyond this the sampler's float->int
	// conversions stop being meaningful (and no workload needs them).
	const maxMeanParam = 1e9
	if k.ComputePerMem < 0 || k.ComputePerMem > maxMeanParam ||
		k.ReadFrac < 0 || k.ReadFrac > 1 ||
		k.CoalesceMean < 0 || k.CoalesceMean > maxMeanParam ||
		k.Locality < 0 || k.Locality > 1 || k.L2Frac < 0 || k.L2Frac > 1 {
		return fmt.Errorf("trace: %s: parameter out of range", k.Name)
	}
	if k.HotLines <= 0 || k.SharedLines <= 0 || k.StreamLines == 0 {
		return fmt.Errorf("trace: %s: region sizes must be positive", k.Name)
	}
	return nil
}

// Region base addresses, line-aligned and far apart so regions never alias.
const (
	lineBytes  = 128
	hotBase    = uint64(0x10_0000_0000)
	sharedBase = uint64(0x20_0000_0000)
	streamBase = uint64(0x30_0000_0000)
)

// warpGen is the per-warp stream state.
type warpGen struct {
	rng     *rng.Source
	cursor  uint64
	hotOff  uint64 // this warp's hot-set base offset in lines
	started bool
}

// Generator implements gpu.Workload for one kernel on a given core count.
type Generator struct {
	k     Kernel
	warps []warpGen // [core*warpsPerCore + warp]
	wpc   int
}

// NewGenerator builds the deterministic stream generator for kernel k over
// `cores` cores, seeded by seed.
func NewGenerator(k Kernel, cores int, seed uint64) (*Generator, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if cores <= 0 {
		return nil, fmt.Errorf("trace: cores must be positive")
	}
	root := rng.New(seed ^ hashName(k.Name))
	g := &Generator{k: k, wpc: k.WarpsPerCore}
	g.warps = make([]warpGen, cores*k.WarpsPerCore)
	for i := range g.warps {
		w := &g.warps[i]
		w.rng = root.Split(uint64(i) + 1)
		// The hot set is shared by a core's warps (inter-warp reuse), so a
		// kernel with HotLines within the L1 capacity is L1-friendly.
		w.hotOff = uint64(i/k.WarpsPerCore) * uint64(k.HotLines)
		// Stagger streaming cursors so warps do not trivially share lines.
		w.cursor = (uint64(i) * 7919) % k.StreamLines
	}
	return g, nil
}

// Kernel returns the kernel parameters.
func (g *Generator) Kernel() Kernel { return g.k }

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (g *Generator) warp(core, warp int) *warpGen {
	return &g.warps[core*g.wpc+warp]
}

// NextCompute returns the next compute-segment length for (core, warp).
func (g *Generator) NextCompute(core, warp int) int {
	w := g.warp(core, warp)
	return w.rng.Geometric(g.k.ComputePerMem)
}

// NextMem generates the next memory instruction for (core, warp).
func (g *Generator) NextMem(core, warp int, scratch []uint64) (write bool, addrs []uint64) {
	w := g.warp(core, warp)
	write = !w.rng.Bool(g.k.ReadFrac)

	n := 1
	if g.k.CoalesceMean > 1 {
		n = 1 + w.rng.Geometric(g.k.CoalesceMean-1)
		if n > 4 {
			n = 4
		}
	}
	base := g.nextAddr(w)
	addrs = append(scratch, base)
	for i := 1; i < n; i++ {
		// Divergent transactions touch adjacent lines: distinct packets to
		// (generally) the same or neighbouring MCs.
		addrs = append(addrs, base+uint64(i)*lineBytes)
	}
	return write, addrs
}

// nextAddr draws one line address from the kernel's region mix.
func (g *Generator) nextAddr(w *warpGen) uint64 {
	r := w.rng
	switch {
	case r.Bool(g.k.Locality):
		line := w.hotOff + uint64(r.Intn(g.k.HotLines))
		return hotBase + line*lineBytes
	case r.Bool(g.k.L2Frac):
		line := uint64(r.Intn(g.k.SharedLines))
		return sharedBase + line*lineBytes
	default:
		w.cursor = (w.cursor + 1) % g.k.StreamLines
		return streamBase + w.cursor*lineBytes
	}
}
