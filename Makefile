DATE := $(shell date +%Y%m%d)

.PHONY: check test bench fuzz soak

# check is the full gate: build everything, vet, and run all tests with the
# race detector (covers the equivalence, golden, property, and race suites).
check:
	go build ./...
	go vet ./...
	go test -race ./...

test:
	go test ./...

# bench records the NoC stepping benchmarks (event-driven vs scan reference)
# and the end-to-end simulator benchmarks into a dated JSON snapshot.
bench:
	go test ./internal/noc . -run '^$$' -bench 'NetworkStep|SimulatorStep' -benchmem \
		| tee /dev/stderr | go run ./cmd/benchjson > BENCH_$(DATE).json

# soak runs the fault-injection robustness suites under -race: seeded NoC
# fault schedules across schemes with invariants checked throughout, the
# watchdog deadlock/starvation detectors, and deterministic replay under
# faults (DESIGN.md §8).
soak:
	go test -race -count=1 ./internal/fault
	go test -race -count=1 ./internal/core -run 'Watchdog|Fault|RunChecked|Truncated'

# fuzz replays the committed corpora and then fuzzes each target briefly.
fuzz:
	go test ./internal/core -run FuzzConfigValidate -fuzz FuzzConfigValidate -fuzztime 15s
	go test ./internal/trace -run FuzzKernelValidate -fuzz FuzzKernelValidate -fuzztime 15s
