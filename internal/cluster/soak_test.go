// Cluster chaos soak: three journalled ariserve replicas behind an arigate
// front door, with replicas hard-killed and restarted mid-flight while every
// simulation is itself recovering from injected NoC faults (corruption
// bursts, permanent link deaths — fault.ChaosConfig). The cluster must
// deliver every job byte-identical to an uninterrupted run, lose nothing,
// and never re-run a completed job: a resubmission sweep after the soak
// must be answered entirely from journals (locally or via peer fetch)
// without a single new simulation.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
)

// soakReplica is one replica incarnation: runner + journal + listener,
// rebootable on the same address over the same journal.
type soakReplica struct {
	srv     *serve.Server
	httpSrv *http.Server
	journal *exp.Journal
	runner  *exp.Runner
	addr    string
	url     string
}

// startSoakReplica boots one replica on addr (the inherited address after a
// restart), peered with peers.
func startSoakReplica(t *testing.T, base core.Config, journalPath, addr string, peers []string) *soakReplica {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return startSoakReplicaOn(t, base, journalPath, ln, peers)
}

// startSoakReplicaOn boots one replica on a pre-bound listener — the first
// incarnations bind all listeners up front so every replica knows its
// peers' final addresses before any server starts.
func startSoakReplicaOn(t *testing.T, base core.Config, journalPath string, ln net.Listener, peers []string) *soakReplica {
	t.Helper()
	j, err := exp.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	r := &exp.Runner{Base: base, Journal: j}
	s, err := serve.New(serve.Config{
		Runner: r, MaxInFlight: 2, QueueDepth: 4,
		Peers: peers, PeerTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	a := ln.Addr().String()
	return &soakReplica{srv: s, httpSrv: hs, journal: j, runner: r, addr: a, url: "http://" + a}
}

// kill simulates SIGKILL: abort in-flight runs, tear the listener down with
// no drain, release the journal. Only the fsync'd journal survives.
func (sr *soakReplica) kill(t *testing.T) {
	t.Helper()
	sr.srv.Abort()
	sr.httpSrv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sr.srv.Wait(ctx); err != nil {
		t.Fatalf("aborted jobs did not unwind: %v", err)
	}
	if err := sr.journal.Close(); err != nil {
		t.Fatal(err)
	}
}

func (sr *soakReplica) stop(t *testing.T) {
	t.Helper()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sr.srv.Shutdown(sctx); err != nil {
		t.Fatalf("replica %s drain: %v", sr.url, err)
	}
	sr.httpSrv.Close()
	if err := sr.journal.Close(); err != nil {
		t.Fatal(err)
	}
}

// journalled counts completed jobs across the live replicas.
func journalled(reps []*soakReplica) int {
	n := 0
	for _, r := range reps {
		n += r.journal.Len()
	}
	return n
}

func TestClusterChaosSoakByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster chaos soak is a long test")
	}
	goroutinesAtStart := runtime.NumGoroutine()

	base := core.DefaultConfig()
	base.Scheme = core.AdaARI
	base.WarmupCycles = 100
	base.MeasureCycles = 400
	// Corruption bursts + permanent link deaths inside every simulation:
	// the cluster must stay correct while each run is itself recovering.
	base.Fault = fault.ChaosConfig(7)

	kernels := trace.Suite()[:14]

	// Reference: the uninterrupted run, straight on a Runner.
	var jobs []exp.Job
	for _, k := range kernels {
		jobs = append(jobs, exp.Job{Cfg: base, Kernel: k})
	}
	ref := &exp.Runner{Base: base}
	want, err := ref.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var faults uint64
	for _, w := range want {
		faults += uint64(w.FaultEvents)
	}
	if faults == 0 {
		t.Fatal("chaos schedule inert: the soak would prove nothing")
	}

	// Three replicas, each peered with the other two. Peer lists need the
	// final addresses, so bind every listener before starting any server.
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "r0.jsonl"),
		filepath.Join(dir, "r1.jsonl"),
		filepath.Join(dir, "r2.jsonl"),
	}
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	peersOf := func(i int) []string {
		var ps []string
		for k, u := range urls {
			if k != i {
				ps = append(ps, u)
			}
		}
		return ps
	}
	reps := make([]*soakReplica, 3)
	for i := range reps {
		reps[i] = startSoakReplicaOn(t, base, paths[i], lns[i], peersOf(i))
	}

	// The front door: replication 2, aggressive probing, hedging on.
	g, err := New(Config{
		Base:             base,
		Replicas:         urls,
		Replication:      2,
		HedgeAfter:       150 * time.Millisecond,
		ProbeInterval:    25 * time.Millisecond,
		BreakerThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	defer g.Close()
	gateLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gateSrv := &http.Server{Handler: g}
	go gateSrv.Serve(gateLn)
	defer gateSrv.Close()
	gateURL := "http://" + gateLn.Addr().String()

	// One concurrent retrying client per kernel, submitting through the
	// gate; retries ride through sheds, kills, failovers, and restarts.
	cli := &client.Client{
		BaseURL:     gateURL,
		MaxRetries:  500,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(kernels))
	resps := make([]serve.JobResponse, len(kernels))
	for i, k := range kernels {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resps[i], errs[i] = cli.Submit(ctx, serve.JobRequest{Bench: name})
		}(i, k.Name)
	}

	// Rolling kills: hard-kill replica 0 once the cluster has journalled a
	// few runs, restart it, then do the same to replica 1. Each restart is
	// a fresh process image warming from its crash-only journal.
	waitJournalled := func(n int) {
		t.Helper()
		deadline := time.Now().Add(time.Minute)
		for journalled(reps) < n && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if got := journalled(reps); got < n {
			t.Fatalf("cluster never reached %d journalled runs (at %d)", n, got)
		}
	}
	for round, victim := range []int{0, 1} {
		waitJournalled(3 + 4*round)
		reps[victim].kill(t)
		// Leave the hole open long enough for the breaker/probes to see it
		// and for routing to fail over.
		time.Sleep(150 * time.Millisecond)
		reps[victim] = startSoakReplica(t, base, paths[victim], reps[victim].addr, peersOf(victim))
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %s lost in the soak: %v", kernels[i].Name, err)
		}
	}

	// Byte-identical to the uninterrupted run — chaos recovery counters,
	// dead-link detours and all — no matter which replica(s) computed it.
	for i := range kernels {
		gotB, _ := json.Marshal(resps[i].Result)
		wantB, _ := json.Marshal(want[i])
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("job %s diverged through the cluster:\n got %s\nwant %s", kernels[i].Name, gotB, wantB)
		}
	}

	// The kill windows must actually have exercised the failover path.
	st := g.Stats()
	if st.Failovers == 0 && st.Hedges == 0 {
		t.Fatalf("soak never failed over or hedged: stats %+v", st)
	}
	t.Logf("gate: %d requests, %d failovers, %d hedges (%d wins), %d shed",
		st.Requests, st.Failovers, st.Hedges, st.HedgeWins, st.Shed)

	// Zero re-runs of completed jobs: resubmit the whole suite through the
	// gate. Every answer must come from a journal — the routed owner's own,
	// or a peer's via result fetch — with not one new simulation anywhere.
	runsBefore := make([]int, len(reps))
	for i, r := range reps {
		runsBefore[i] = r.runner.Runs()
	}
	peerServed := 0
	for i, k := range kernels {
		resp, err := cli.Submit(ctx, serve.JobRequest{Bench: k.Name})
		if err != nil {
			t.Fatalf("resubmit %s: %v", k.Name, err)
		}
		if !resp.Cached {
			t.Fatalf("resubmitted %s was not served from a journal: %+v", k.Name, resp)
		}
		if resp.Peer != "" {
			peerServed++
		}
		gotB, _ := json.Marshal(resp.Result)
		wantB, _ := json.Marshal(want[i])
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("resubmitted %s diverged:\n got %s\nwant %s", k.Name, gotB, wantB)
		}
	}
	for i, r := range reps {
		if got := r.runner.Runs(); got != runsBefore[i] {
			t.Fatalf("replica %d re-ran %d completed jobs on resubmission", i, got-runsBefore[i])
		}
	}
	t.Logf("resubmission sweep: %d/%d answered via peer fetch", peerServed, len(kernels))

	// A job journalled on exactly one replica is served by every other
	// replica through peer fetch — the targeted cross-replica assertion.
	crossChecked := false
	for i, k := range kernels {
		key := exp.JobKey(base, k.Name)
		holders, absent := []int{}, []int{}
		for ri, r := range reps {
			if _, ok := r.journal.Get(key); ok {
				holders = append(holders, ri)
			} else {
				absent = append(absent, ri)
			}
		}
		if len(holders) == 0 {
			t.Fatalf("job %s journalled nowhere after the soak", k.Name)
		}
		if len(absent) == 0 {
			continue
		}
		// Submit straight to a replica that has never seen this job.
		target := reps[absent[0]]
		body, _ := json.Marshal(serve.JobRequest{Bench: k.Name})
		resp, err := http.Post(target.url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out serve.JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !out.Cached || out.Peer == "" {
			t.Fatalf("replica %d did not peer-fetch %s: status %d, %+v", absent[0], k.Name, resp.StatusCode, out)
		}
		gotB, _ := json.Marshal(out.Result)
		wantB, _ := json.Marshal(want[i])
		if !bytes.Equal(gotB, wantB) {
			t.Fatalf("peer-fetched %s diverged:\n got %s\nwant %s", k.Name, gotB, wantB)
		}
		crossChecked = true
		break
	}
	if !crossChecked {
		t.Log("every job journalled on every replica; cross-replica fetch exercised by the resubmission sweep instead")
	}

	// Clean teardown; nothing may leak.
	g.Close()
	gateSrv.Close()
	for _, r := range reps {
		r.stop(t)
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesAtStart+3 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutinesAtStart+3 {
		t.Fatalf("goroutines leaked: %d at start, %d after the soak", goroutinesAtStart, got)
	}
}
