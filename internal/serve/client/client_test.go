package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// scripted returns a test server that answers each attempt with the next
// status in script (the last repeats), plus the attempt counter.
func scripted(t *testing.T, script []int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n >= len(script) {
			n = len(script) - 1
		}
		code := script[n]
		if code == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(serve.JobResponse{Key: "k", Cached: n > 0})
			return
		}
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "0")
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"error": http.StatusText(code)})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func fastClient(url string) *Client {
	return &Client{BaseURL: url, MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
}

func TestSubmitRetriesShedThenSucceeds(t *testing.T) {
	ts, calls := scripted(t, []int{429, 503, 200})
	c := fastClient(ts.URL)
	var retries int
	c.OnRetry = func(int, error, time.Duration) { retries++ }
	resp, err := c.Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Key != "k" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if retries != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries)
	}
}

func TestSubmitTerminalOnBadRequest(t *testing.T) {
	ts, calls := scripted(t, []int{400})
	_, err := fastClient(ts.URL).Submit(context.Background(), serve.JobRequest{Bench: "nope"})
	if err == nil {
		t.Fatal("400 did not error")
	}
	if !IsTerminal(err) {
		t.Fatalf("400 not terminal: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal error retried: %d attempts", calls.Load())
	}
}

func TestSubmitTerminalOnServerError(t *testing.T) {
	ts, calls := scripted(t, []int{500})
	_, err := fastClient(ts.URL).Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err == nil || !IsTerminal(err) {
		t.Fatalf("500 not terminal: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal error retried: %d attempts", calls.Load())
	}
}

func TestSubmitExhaustsRetryBudget(t *testing.T) {
	ts, calls := scripted(t, []int{429})
	c := fastClient(ts.URL)
	c.MaxRetries = 3
	_, err := c.Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err == nil {
		t.Fatal("endless 429 eventually succeeded?")
	}
	if IsTerminal(err) {
		t.Fatalf("exhausted budget reported terminal: %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + 3 retries)", got)
	}
}

func TestSubmitRetriesTransportErrors(t *testing.T) {
	// A server that was shut down: connection refused on every attempt.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	c := fastClient(url)
	c.MaxRetries = 2
	_, err := c.Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err == nil {
		t.Fatal("dead server succeeded?")
	}
	if IsTerminal(err) {
		t.Fatalf("transport failure must be retryable, got terminal: %v", err)
	}
}

func TestSubmitHonoursContextDuringBackoff(t *testing.T) {
	ts, _ := scripted(t, []int{429})
	c := fastClient(ts.URL)
	c.BaseBackoff = time.Hour // would sleep forever without ctx
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, serve.JobRequest{Bench: "bfs"})
	if err == nil {
		t.Fatal("cancelled submit succeeded")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("ctx cancellation ignored for %s", took)
	}
}

func TestSubmitCapsRetryAfterAtDeadline(t *testing.T) {
	// A server shedding with a Retry-After far beyond the caller's
	// deadline: the client must give up promptly instead of sleeping the
	// whole budget away (and then failing anyway).
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "overloaded"})
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 8, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, serve.JobRequest{Bench: "bfs"})
	took := time.Since(start)
	if err == nil {
		t.Fatal("submit against a permanently shedding server succeeded")
	}
	if IsTerminal(err) {
		t.Fatalf("deadline-capped give-up reported terminal: %v", err)
	}
	if took > 5*time.Second {
		t.Fatalf("client slept %s against a 1h Retry-After with a 150ms deadline", took)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (the retry wait already exceeded the deadline)", got)
	}
	if !strings.Contains(err.Error(), "exceeds deadline") {
		t.Fatalf("error does not explain the give-up: %v", err)
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("error lost the last server failure: %v", err)
	}
}

func TestSubmitTerminalOnPermanent4xx(t *testing.T) {
	// The whole permanent-4xx family is terminal on the first attempt: a
	// malformed job must not burn the backoff schedule.
	for _, code := range []int{400, 403, 404, 405, 410, 422} {
		ts, calls := scripted(t, []int{code})
		_, err := fastClient(ts.URL).Submit(context.Background(), serve.JobRequest{Bench: "nope"})
		if err == nil || !IsTerminal(err) {
			t.Fatalf("%d not terminal: %v", code, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("%d retried: %d attempts", code, calls.Load())
		}
	}
}

func TestSubmitRetriesRequestTimeout(t *testing.T) {
	ts, calls := scripted(t, []int{408, 200})
	resp, err := fastClient(ts.URL).Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Key != "k" || calls.Load() != 2 {
		t.Fatalf("408 handling: resp=%+v attempts=%d", resp, calls.Load())
	}
}

func TestSubmitTerminalOnMalformedOKBody(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{not json"))
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).Submit(context.Background(), serve.JobRequest{Bench: "bfs"})
	if err == nil || !IsTerminal(err) {
		t.Fatalf("malformed 200 body not terminal: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("malformed body retried: %d attempts", calls.Load())
	}
}

func TestBackoffHonoursRetryAfterWithinCap(t *testing.T) {
	c := &Client{BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	err := &retryAfterError{err: context.DeadlineExceeded, after: 10 * time.Second}
	if got := c.backoff(0, err); got != 50*time.Millisecond {
		t.Fatalf("backoff = %s, want Retry-After capped at MaxBackoff (50ms)", got)
	}
	// Without a hint the backoff stays within [base/2, base].
	for attempt := 0; attempt < 10; attempt++ {
		got := c.backoff(attempt, context.DeadlineExceeded)
		if got <= 0 || got > 50*time.Millisecond {
			t.Fatalf("attempt %d: backoff %s outside (0, 50ms]", attempt, got)
		}
	}
}
