package noc

import "testing"

// benchNet builds a loaded 6x6 reply-like network for stepping benchmarks.
func benchNet(b *testing.B, ari bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]NodeConfig, mesh.Nodes())
		for _, n := range DiamondMCPlacement(mesh, 8) {
			cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Recycle delivered packets so steady state allocates nothing.
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepLoaded drives the network at a steady few-to-many load per iteration.
// Packet shells come from the network's freelist so the loop — and with it
// the whole stepping hot path — runs at zero allocations per iteration
// (locked by TestNetworkStepDoesNotAllocate).
func stepLoaded(b *testing.B, n *Network) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := mcs[i%len(mcs)]
		pkt := n.GetPacket()
		pkt.Type = ReadReply
		pkt.Dst = next(36)
		pkt.Size = long
		if !n.Inject(mc, pkt) {
			n.PutPacket(pkt)
		}
		n.Step()
	}
}

func BenchmarkNetworkStepBaseline(b *testing.B) { stepLoaded(b, benchNet(b, false)) }
func BenchmarkNetworkStepARI(b *testing.B)      { stepLoaded(b, benchNet(b, true)) }

// BenchmarkNetworkStepFaulty prices the recovery protocol layer in the hot
// stepping path: the ARI network with retransmission buffers on, one dead
// link (so every route goes through the fault table) and a rolling
// corruption window that keeps CRC drops, NACK/ACK sideband traffic and
// retransmissions live throughout. Drives CorruptLink/KillLink directly —
// internal/fault would be an import cycle from this package.
func BenchmarkNetworkStepFaulty(b *testing.B) {
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:           mesh,
		VCs:            4,
		LinkBits:       128,
		DataBytes:      128,
		Routing:        RouteMinAdaptive,
		NonAtomicVC:    true,
		RetransBufPkts: 8,
		PriorityLevels: 2,
	}
	cfg.Nodes = make([]NodeConfig, mesh.Nodes())
	for _, n := range DiamondMCPlacement(mesh, 8) {
		cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetEjectHandler(func(int, *Packet, int64) {})
	if !n.KillLink(14, int(East)) {
		b.Fatal("kill refused")
	}

	mcs := DiamondMCPlacement(mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	long := cfg.LongPacketFlits()
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			// Re-arm a short corruption window on a rotating mesh link.
			n.CorruptLink(next(36), next(NumDirections), n.Now()+8)
		}
		id++
		pkt := &Packet{ID: id, Type: ReadReply, Dst: next(36), Size: long}
		pkt.Check = PacketCheck(pkt)
		n.Inject(mcs[i%len(mcs)], pkt)
		n.Step()
	}
}

// benchScanNet builds the baseline 6x6 network with the chosen stepping
// mode for the event-vs-scan comparison benchmarks.
func benchScanNet(b *testing.B, scan bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	n, err := NewNetwork(Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
		ScanStep:    scan,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Recycle delivered packets so steady state allocates nothing.
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepAtLoad drives the network injecting one long packet every `period`
// cycles from rotating MC nodes: period 20 is the sparse traffic of
// low-sensitivity kernels, period 4 a medium reply load.
func stepAtLoad(b *testing.B, n *Network, period int) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%period == 0 {
			pkt := n.GetPacket()
			pkt.Type = ReadReply
			pkt.Dst = next(36)
			pkt.Size = long
			if !n.Inject(mcs[(i/period)%len(mcs)], pkt) {
				n.PutPacket(pkt)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepEventLowLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 20) }
func BenchmarkNetworkStepScanLowLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 20) }
func BenchmarkNetworkStepEventMedLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 4) }
func BenchmarkNetworkStepScanMedLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 4) }

// benchShardNet builds a side x side mesh stepped across k shards — large
// enough that each shard owns multiple rows of routers and the per-step work
// dominates the barrier cost.
func benchShardNet(b *testing.B, side, shards int) *Network {
	b.Helper()
	n, err := NewNetwork(Config{
		Mesh:        Mesh{Width: side, Height: side},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if shards > 1 {
		if _, err := n.SetShards(shards, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(n.Close)
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepShardLoad drives dense all-to-all traffic (one long-packet injection
// per 32 nodes per cycle, spread over the whole mesh) so every shard is busy
// every step and the offered load scales with the mesh.
func stepShardLoad(b *testing.B, n *Network) {
	cfg := n.Config()
	nodes := cfg.Mesh.Nodes()
	perCycle := nodes / 32
	if perCycle < 1 {
		perCycle = 1
	}
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	long := cfg.LongPacketFlits()
	iter := func() {
		for s := 0; s < perCycle; s++ {
			src, dst := next(nodes), next(nodes)
			if src == dst {
				continue
			}
			pkt := n.GetPacket()
			pkt.Type = ReadReply
			pkt.Dst = dst
			pkt.Size = long
			if !n.Inject(src, pkt) {
				n.PutPacket(pkt)
			}
		}
		n.Step()
	}
	// Warm into the saturated steady state before the timer starts. Ramp
	// steps (freelist growth, GC, slices finding their high-water marks)
	// cost several times a plateau step, so without this the reported
	// ns/op depends on -benchtime via the ramp fraction and the benchdiff
	// gate compares apples to oranges across run lengths.
	for k := 0; k < 1500; k++ {
		iter()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
}

func BenchmarkNetworkStep16x16Shards1(b *testing.B) { stepShardLoad(b, benchShardNet(b, 16, 1)) }
func BenchmarkNetworkStep16x16Shards2(b *testing.B) { stepShardLoad(b, benchShardNet(b, 16, 2)) }
func BenchmarkNetworkStep16x16Shards4(b *testing.B) { stepShardLoad(b, benchShardNet(b, 16, 4)) }
func BenchmarkNetworkStep16x16Shards8(b *testing.B) { stepShardLoad(b, benchShardNet(b, 16, 8)) }

func BenchmarkNetworkStep32x32Shards1(b *testing.B) { stepShardLoad(b, benchShardNet(b, 32, 1)) }
func BenchmarkNetworkStep32x32Shards2(b *testing.B) { stepShardLoad(b, benchShardNet(b, 32, 2)) }
func BenchmarkNetworkStep32x32Shards4(b *testing.B) { stepShardLoad(b, benchShardNet(b, 32, 4)) }
func BenchmarkNetworkStep32x32Shards8(b *testing.B) { stepShardLoad(b, benchShardNet(b, 32, 8)) }

func BenchmarkRouteCompute(b *testing.B) {
	m := Mesh{Width: 8, Height: 8}
	var scratch []routeCandidate
	for i := 0; i < b.N; i++ {
		scratch = computeRoute(m, RouteMinAdaptive, i%64, (i*7)%64, 4, scratch[:0])
	}
}

func BenchmarkFlitQueue(b *testing.B) {
	q := newFlitQueue(9)
	pkt := &Packet{Size: 9}
	for i := 0; i < b.N; i++ {
		for s := 0; s < 9; s++ {
			q.push(flit{pkt: pkt, seq: s})
		}
		for s := 0; s < 9; s++ {
			q.pop()
		}
	}
}
