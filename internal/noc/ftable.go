package noc

import "sort"

// Fault-adaptive routing. Once any mesh link is permanently dead
// (KillLink), routing abandons the configured algorithm entirely and
// follows a per-(router, destination) next-hop table computed over the
// surviving topology. A local detour rule cannot work here: under
// dimension-ordered routing a packet detoured around a dead column link is
// immediately routed back by the healthy neighbour, and the resulting
// ping-pong fills buffers in a cycle and deadlocks (observed in the chaos
// soak). The table gives every router the non-local knowledge the detour
// needs, and its construction makes the whole network deadlock-free:
//
// Up*/down* routing. Take the undirected graph of mesh links alive in
// BOTH directions (KillLink's connectivity guard keeps it connected), BFS
// it from node 0 and order nodes by (BFS level, id). An edge toward a
// smaller node in this order is an "up" edge, toward a larger one a
// "down" edge. Every table path is a (possibly empty) run of up edges
// followed by a (possibly empty) run of down edges — never up after down —
// so the channel dependency graph is acyclic and wormhole routing over the
// table cannot deadlock, on any VC, for any fault pattern the guard
// admits [the classic Autonet argument].
//
// The table realises that shape with a suffix-consistent greedy rule, so
// per-hop table lookups compose into exactly the paths the construction
// promises:
//
//   - a node with a pure-down path to the destination always takes its
//     shortest such path (next hop = down neighbour one step closer);
//     down steps stay inside the pure-down region, so once a packet turns
//     downward it never climbs again;
//   - any other node climbs: it takes the up edge minimising the total
//     remaining cost (climb + descent). Up edges strictly descend the
//     (level, id) order, so the climb terminates — at worst at node 0,
//     which reaches every destination downward along the BFS tree.
//
// Paths are minimal within this discipline, not globally; the premium is
// the price of deadlock freedom and only paid while links are dead.
// Routing uses the full VC mask on every hop — no escape-VC split is
// needed because the table itself is the deadlock-free layer.
//
// The table is rebuilt on every successful kill (serial, between cycles)
// and every router's deadEpoch is bumped so packets already waiting on a
// computed route re-route through the new table (router.routeCompute).
// During stepping the table is read-only, so sharded workers need no
// synchronisation.

// ftableEject marks the here == dst entry (packets eject, never look it up).
const ftableEject = 0xFF

// biAlive reports whether node u's mesh link in direction d exists and is
// alive in both directions.
func (n *Network) biAlive(u int, d Direction) bool {
	op := n.routers[u].out[d]
	if op.destPort == nil || op.dead {
		return false
	}
	rev := n.routers[op.destPort.router.id].out[d.opposite()]
	return rev.destPort != nil && !rev.dead
}

// aliveBiConnected reports whether the undirected graph of mesh links alive
// in both directions still connects every node. This is KillLink's guard:
// it is (deliberately) stronger than strong connectivity of the alive
// digraph, because the fault-routing table only uses bidirectionally-alive
// links — a node whose every neighbour link is half-dead would be
// unroutable even though some one-way path exists.
func (n *Network) aliveBiConnected() bool {
	nodes := len(n.routers)
	seen := make([]bool, nodes)
	queue := make([]int, 0, nodes)
	seen[0] = true
	queue = append(queue, 0)
	count := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		count++
		for d := Direction(0); d < Direction(NumDirections); d++ {
			if !n.biAlive(u, d) {
				continue
			}
			v := n.cfg.Mesh.Neighbor(u, d)
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return count == nodes
}

// rebuildFaultTable recomputes the up*/down* next-hop table (see the
// package comment above). Called after every successful KillLink, on a
// graph aliveBiConnected has just vetted.
func (n *Network) rebuildFaultTable() {
	m := n.cfg.Mesh
	nodes := m.Nodes()

	// BFS levels from node 0 over bidirectionally-alive edges.
	level := make([]int, nodes)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := make([]int, 0, nodes)
	queue = append(queue, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for d := Direction(0); d < Direction(NumDirections); d++ {
			if !n.biAlive(u, d) {
				continue
			}
			if v := m.Neighbor(u, d); level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	for _, l := range level {
		if l < 0 {
			panic("noc: fault-routing table on a disconnected alive graph")
		}
	}

	// before reports v < u in the (level, id) order; an edge u->v with
	// before(v, u) is an up edge, with before(u, v) a down edge.
	before := func(v, u int) bool {
		return level[v] < level[u] || (level[v] == level[u] && v < u)
	}

	// Nodes in ascending (level, id) order: the up-phase DP below needs
	// every up neighbour (strictly smaller) computed first.
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return before(order[a], order[b]) })

	const inf = int(^uint(0) >> 1)
	tbl := make([]uint8, nodes*nodes)
	downDist := make([]int, nodes)
	cost := make([]int, nodes)
	for dst := 0; dst < nodes; dst++ {
		// Pure-down distance to dst: reverse BFS along down edges.
		for i := range downDist {
			downDist[i] = inf
		}
		downDist[dst] = 0
		queue = queue[:0]
		queue = append(queue, dst)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for d := Direction(0); d < Direction(NumDirections); d++ {
				if !n.biAlive(v, d) {
					continue
				}
				// biAlive is symmetric, so this also vets the u->v edge.
				if u := m.Neighbor(v, d); before(u, v) && downDist[u] == inf {
					downDist[u] = downDist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		// Total remaining cost: a down-capable node descends; anyone else
		// climbs to the cheapest down-capable ancestor.
		for _, u := range order {
			c := downDist[u]
			if c == inf {
				for d := Direction(0); d < Direction(NumDirections); d++ {
					if !n.biAlive(u, d) {
						continue
					}
					if v := m.Neighbor(u, d); before(v, u) && cost[v] != inf && 1+cost[v] < c {
						c = 1 + cost[v]
					}
				}
			}
			cost[u] = c
		}
		// Next hops, tie-broken by lowest direction index.
		for u := 0; u < nodes; u++ {
			if u == dst {
				tbl[u*nodes+dst] = ftableEject
				continue
			}
			best, bestCost := -1, inf
			for d := Direction(0); d < Direction(NumDirections); d++ {
				if !n.biAlive(u, d) {
					continue
				}
				v := m.Neighbor(u, d)
				var c int
				switch {
				case downDist[u] < inf:
					// Descend only: stay on the shortest pure-down path.
					if !before(u, v) || downDist[v] != downDist[u]-1 {
						continue
					}
					c = downDist[v]
				case before(v, u) && cost[v] != inf:
					c = 1 + cost[v]
				default:
					continue // down edge from a climb-phase node: illegal turn
				}
				if c < bestCost {
					best, bestCost = int(d), c
				}
			}
			if best < 0 {
				panic("noc: fault-routing table has no next hop; connectivity guard violated")
			}
			tbl[u*nodes+dst] = uint8(best)
		}
	}
	n.ftable = tbl
}

// routeCandidates is route computation's entry point: the configured
// algorithm while the mesh is healthy, the fault-routing table as soon as
// any link is dead. Table routes carry the full VC mask — the table is
// itself the deadlock-free layer, so no escape VC needs reserving.
func (n *Network) routeCandidates(here, dst int, scratch []routeCandidate) []routeCandidate {
	if n.ftable == nil {
		return computeRoute(n.cfg.Mesh, n.cfg.Routing, here, dst, n.cfg.VCs, scratch)
	}
	scratch = scratch[:0]
	if here == dst {
		return append(scratch, routeCandidate{port: ejectPortIndex, vcMask: maskAll(n.cfg.VCs)})
	}
	dir := n.ftable[here*n.cfg.Mesh.Nodes()+dst]
	return append(scratch, routeCandidate{port: int(dir), vcMask: maskAll(n.cfg.VCs)})
}
