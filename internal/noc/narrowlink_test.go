package noc

import "testing"

// TestNarrowLinkThrottlesAcceptance: the unenhanced baseline's narrow
// MC->NI link must refuse a new packet while the previous one serialises
// (9 cycles for a long packet), while the enhanced baseline accepts one
// packet per cycle.
func TestNarrowLinkThrottlesAcceptance(t *testing.T) {
	accepted := func(mode NIMode) int {
		n := newTestNet(t, func(c *Config) {
			c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
			c.Nodes[5] = NodeConfig{NI: mode}
		})
		n.SetEjectHandler(func(int, *Packet, int64) {})
		got := 0
		for i := 0; i < 18; i++ {
			if n.Inject(5, mkPacket(n.Config(), ReadReply, 10)) {
				got++
			}
			n.Step()
		}
		return got
	}
	wide := accepted(NIBaseline)
	narrow := accepted(NINarrowLink)
	// Enhanced: limited only by queue space (4 packets) and drain; the
	// narrow link serialises at 9 cycles/packet: 18 cycles -> 2 packets.
	if narrow != 2 {
		t.Fatalf("narrow link accepted %d packets in 18 cycles, want 2", narrow)
	}
	if wide <= narrow {
		t.Fatalf("enhanced baseline (%d) not faster than narrow link (%d)", wide, narrow)
	}
}

// TestNarrowLinkDrains: packets still flow end to end under the mode.
func TestNarrowLinkDrains(t *testing.T) {
	runChecked(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		for i := range c.Nodes {
			c.Nodes[i] = NodeConfig{NI: NINarrowLink}
		}
	}, 800, 77)
}
