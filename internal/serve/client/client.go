// Package client is the retrying counterpart to internal/serve: an
// idempotent job client that survives shed requests, timeouts, and whole
// server restarts.
//
// Retries are safe because jobs are deduplicated server-side by exp.JobKey:
// resubmitting the same request — even against a freshly restarted server —
// costs at most one simulation, answered from the journal-backed store on
// every subsequent attempt. The client therefore treats overload (429),
// unavailability (503), timeouts (408/502/504) and transport errors as
// retryable, backing off exponentially with jitter and honouring the
// server's Retry-After; everything else (the permanent-4xx family, a 500
// deterministic simulation failure, an unparseable 200 body) is terminal.
// Retry sleeps never outlive the caller: a wait that would cross ctx's
// deadline gives up immediately, surfacing the last server error.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Client submits jobs to an ariserve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// HTTPClient defaults to a client with no overall timeout (job
	// deadlines belong in JobRequest.TimeoutMs, which the server enforces).
	HTTPClient *http.Client

	// MaxRetries bounds re-submissions after the first attempt
	// (default 8).
	MaxRetries int

	// BaseBackoff is the first retry delay, doubling per attempt with
	// ±50% jitter (default 100ms); MaxBackoff caps the growth and any
	// server Retry-After (default 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// OnRetry, when non-nil, observes each retry decision (tests,
	// verbose sweeps).
	OnRetry func(attempt int, err error, wait time.Duration)

	// Trace, when non-empty, is sent as the X-Ari-Trace header on every
	// attempt, propagating a distributed-trace context ("<trace>-<span>")
	// into the server so its spans parent under the caller's. Retried
	// attempts share the context — each server attempt becomes a sibling
	// span of the same trace.
	Trace string

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

// New returns a Client for the server at baseURL with default retry policy.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// terminalError marks a failure retrying cannot fix.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// IsTerminal reports whether err is a non-retryable submission failure
// (malformed job, deterministic simulation error) rather than an exhausted
// retry budget.
func IsTerminal(err error) bool {
	var t *terminalError
	return errors.As(err, &t)
}

// Submit runs one job to completion, retrying through shed requests and
// server restarts until ctx is cancelled, the retry budget is exhausted, or
// a terminal error comes back.
func (c *Client) Submit(ctx context.Context, req serve.JobRequest) (serve.JobResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.JobResponse{}, &terminalError{fmt.Errorf("client: encode request: %w", err)}
	}
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 8
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(ctx, body)
		if err == nil {
			return resp, nil
		}
		if IsTerminal(err) || ctx.Err() != nil {
			return serve.JobResponse{}, err
		}
		lastErr = err
		if attempt >= maxRetries {
			break
		}
		wait := c.backoff(attempt, err)
		// Cap the sleep at the caller's deadline: a server Retry-After (or
		// a late backoff step) longer than the time remaining would burn
		// the whole budget asleep only to fail on wake. Give up now and
		// surface the last server error instead of a bare deadline expiry.
		if deadline, ok := ctx.Deadline(); ok {
			if remaining := time.Until(deadline); wait >= remaining {
				return serve.JobResponse{}, fmt.Errorf(
					"client: giving up after %d attempts: retry wait %s exceeds deadline (%s left): %w",
					attempt+1, wait, remaining.Round(time.Millisecond), lastErr)
			}
		}
		if c.OnRetry != nil {
			c.OnRetry(attempt, err, wait)
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return serve.JobResponse{}, ctx.Err()
		}
	}
	return serve.JobResponse{}, fmt.Errorf("client: giving up after %d attempts: %w", maxRetries+1, lastErr)
}

// retryAfterError carries the server's Retry-After hint to the backoff.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// attempt performs one POST /v1/jobs round trip.
func (c *Client) attempt(ctx context.Context, body []byte) (serve.JobResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return serve.JobResponse{}, &terminalError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Trace != "" {
		req.Header.Set(obs.TraceHeader, c.Trace)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport failure: connection refused/reset — the signature of a
		// server restarting underneath us. Retryable.
		return serve.JobResponse{}, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return serve.JobResponse{}, fmt.Errorf("client: read response: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		var out serve.JobResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			// The body arrived complete (ReadAll above succeeded) but does
			// not parse: resubmitting the same bytes yields the same
			// garbage. Terminal, not worth a backoff schedule.
			return serve.JobResponse{}, &terminalError{fmt.Errorf("client: decode response: %w", err)}
		}
		return out, nil
	case retryableStatus(resp.StatusCode):
		err := fmt.Errorf("client: server %s: %s", resp.Status, errBody(raw))
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs >= 0 {
			return serve.JobResponse{}, &retryAfterError{err: err, after: time.Duration(secs) * time.Second}
		}
		return serve.JobResponse{}, err
	default:
		// Every remaining 4xx is a permanent rejection of this request (a
		// malformed job stays malformed on every retry) and a 5xx outside
		// the retryable set is a deterministic server-side failure.
		return serve.JobResponse{}, &terminalError{fmt.Errorf("client: server %s: %s", resp.Status, errBody(raw))}
	}
}

// retryableStatus reports whether a response status can be fixed by
// retrying: overload shedding, drain/unavailability, gateway timeouts, and
// request timeouts. Everything else — the whole permanent-4xx family
// included — is terminal.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout, http.StatusRequestTimeout:
		return true
	}
	return false
}

// backoff computes the next wait: exponential from BaseBackoff with ±50%
// jitter, capped by MaxBackoff, never shorter than the server's Retry-After
// hint (itself capped by MaxBackoff).
func (c *Client) backoff(attempt int, err error) time.Duration {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	// Jitter desynchronises a fleet of shed clients so they do not retry in
	// lockstep against the same full queue.
	d = d/2 + time.Duration(c.intn(int64(d/2)+1))
	var ra *retryAfterError
	if errors.As(err, &ra) && ra.after > d {
		d = ra.after
		if d > max {
			d = max
		}
	}
	return d
}

func (c *Client) intn(n int64) int64 {
	c.rngOnce.Do(func() {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	})
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Int63n(n)
}

// errBody extracts the server's error message from a JSON error body,
// falling back to the raw bytes.
func errBody(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(raw))
}
