// Package fault is deterministic, seeded fault injection for the NoC. It
// models three transient hardware fault classes as bounded service stalls on
// a *noc.Network:
//
//   - link stalls: a router output link (mesh or ejection) grants nothing
//     for a bounded window (noc.Network.StallLink);
//   - input-port freezes: a router input port's VCs stop bidding for the
//     switch (noc.Network.FreezeInputPort);
//   - NI backpressure bursts: a node's NI supplies no flits, backing its
//     queues up into the node logic (noc.Network.StallNISupply).
//
// Every fault is a pure service stall — buffers, credits and ownership are
// never touched — so credit-based wormhole flow control must absorb it with
// zero flit loss and noc.CheckInvariants clean at every boundary; the soak
// tests in this package pin exactly that. All randomness flows through
// internal/rng, so a (Config, seed) pair replays the identical fault
// schedule and the simulation stays bit-for-bit reproducible.
package fault

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/rng"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// LinkStall stalls one router output link.
	LinkStall Kind = iota
	// PortFreeze freezes one router mesh input port.
	PortFreeze
	// NIStall stalls one node's NI supply.
	NIStall
	numKinds
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkStall:
		return "link-stall"
	case PortFreeze:
		return "port-freeze"
	case NIStall:
		return "ni-stall"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config parameterises one injector. The zero value injects nothing.
type Config struct {
	// Enabled gates injection entirely (so a Config can ride inside a larger
	// configuration struct without being active).
	Enabled bool
	// Seed seeds the fault schedule. Injectors split per-network streams off
	// it, so request- and reply-side schedules are decorrelated but both
	// fully determined by (Config, Seed).
	Seed uint64

	// LinkStallProb, PortFreezeProb and NIStallProb are per-cycle
	// probabilities of starting one fault of that kind somewhere in the
	// network (one Bernoulli draw per kind per cycle, not per component).
	LinkStallProb  float64
	PortFreezeProb float64
	NIStallProb    float64

	// MinDuration and MaxDuration bound each fault's length in cycles
	// (inclusive). Zero values default to [8, 64].
	MinDuration int
	MaxDuration int

	// MaxConcurrent caps simultaneously active faults (0 = 8). The cap keeps
	// a high-probability configuration from freezing the whole mesh at once,
	// which would read as a watchdog deadlock rather than a transient fault.
	MaxConcurrent int
}

// Validate checks bounds and fills defaults, returning the normalised config.
func (c Config) Validate() (Config, error) {
	for _, p := range []float64{c.LinkStallProb, c.PortFreezeProb, c.NIStallProb} {
		if p < 0 || p > 1 {
			return c, fmt.Errorf("fault: probability %v outside [0,1]", p)
		}
	}
	if c.MinDuration < 0 || c.MaxDuration < 0 {
		return c, fmt.Errorf("fault: negative duration bounds [%d,%d]", c.MinDuration, c.MaxDuration)
	}
	if c.MinDuration == 0 {
		c.MinDuration = 8
	}
	if c.MaxDuration == 0 {
		c.MaxDuration = 64
	}
	if c.MaxDuration < c.MinDuration {
		return c, fmt.Errorf("fault: MaxDuration %d < MinDuration %d", c.MaxDuration, c.MinDuration)
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 8
	}
	return c, nil
}

// SoakConfig returns the stress configuration the fault soak suites use:
// frequent, short, overlapping faults of all three kinds.
func SoakConfig(seed uint64) Config {
	return Config{
		Enabled:        true,
		Seed:           seed,
		LinkStallProb:  0.05,
		PortFreezeProb: 0.03,
		NIStallProb:    0.03,
		MinDuration:    4,
		MaxDuration:    48,
		MaxConcurrent:  6,
	}
}

// Event records one injected fault for replay verification and diagnostics.
type Event struct {
	Cycle    int64
	Kind     Kind
	Node     int
	Port     int // output port (LinkStall), input port (PortFreeze), -1 (NIStall)
	Duration int
}

// String renders the event for logs.
func (e Event) String() string {
	if e.Port < 0 {
		return fmt.Sprintf("cycle %d: %s node %d for %d cycles", e.Cycle, e.Kind, e.Node, e.Duration)
	}
	return fmt.Sprintf("cycle %d: %s node %d port %d for %d cycles", e.Cycle, e.Kind, e.Node, e.Port, e.Duration)
}

// Injector drives one network's fault schedule. Call Step(now) once per
// cycle immediately before the network's own Step; the injector draws the
// cycle's faults and applies them through the network's fault hooks.
type Injector struct {
	cfg     Config
	net     *noc.Network
	src     *rng.Source
	nodes   int
	events  []Event
	expires []int64 // active-fault expiry cycles (pruned each Step)
}

// NewInjector builds an injector for net. streamTag decorrelates multiple
// injectors sharing one seed (e.g. request vs reply network).
func NewInjector(cfg Config, net *noc.Network, streamTag uint64) (*Injector, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Injector{
		cfg:   cfg,
		net:   net,
		src:   rng.New(cfg.Seed).Split(streamTag),
		nodes: net.Config().Mesh.Nodes(),
	}, nil
}

// Step draws and applies this cycle's faults. It must be called with the
// network's current cycle, before net.Step().
func (in *Injector) Step(now int64) {
	if !in.cfg.Enabled {
		return
	}
	// Prune expired faults from the concurrency ledger.
	kept := in.expires[:0]
	for _, e := range in.expires {
		if e > now {
			kept = append(kept, e)
		}
	}
	in.expires = kept

	// One Bernoulli draw per kind per cycle, in fixed order, so the stream
	// consumption — and therefore the schedule — is deterministic.
	for k := Kind(0); k < numKinds; k++ {
		p := 0.0
		switch k {
		case LinkStall:
			p = in.cfg.LinkStallProb
		case PortFreeze:
			p = in.cfg.PortFreezeProb
		case NIStall:
			p = in.cfg.NIStallProb
		}
		if !in.src.Bool(p) {
			continue
		}
		if len(in.expires) >= in.cfg.MaxConcurrent {
			continue // draw consumed above: the schedule stays aligned
		}
		in.apply(k, now)
	}
}

// apply draws the fault's site and duration and installs it.
func (in *Injector) apply(k Kind, now int64) {
	node := in.src.Intn(in.nodes)
	dur := in.cfg.MinDuration + in.src.Intn(in.cfg.MaxDuration-in.cfg.MinDuration+1)
	until := now + int64(dur)
	port := -1
	switch k {
	case LinkStall:
		port = in.src.Intn(noc.NumDirections + 1) // mesh links + ejection link
		in.net.StallLink(node, port, until)
	case PortFreeze:
		port = in.src.Intn(noc.NumDirections) // mesh input ports
		in.net.FreezeInputPort(node, port, until)
	case NIStall:
		in.net.StallNISupply(node, until)
	}
	in.events = append(in.events, Event{Cycle: now, Kind: k, Node: node, Port: port, Duration: dur})
	in.expires = append(in.expires, until)
}

// Events returns the injected-fault log in injection order.
func (in *Injector) Events() []Event { return in.events }

// Active returns the number of faults still in force at cycle now.
func (in *Injector) Active(now int64) int {
	active := 0
	for _, e := range in.expires {
		if e > now {
			active++
		}
	}
	return active
}
