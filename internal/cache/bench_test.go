package cache

import "testing"

func BenchmarkCacheAccessHit(b *testing.B) {
	c := New(Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4})
	c.Access(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}

func BenchmarkCacheAccessStreaming(b *testing.B) {
	c := New(Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*128, false)
	}
}

func BenchmarkMSHRLookupFill(b *testing.B) {
	m := NewMSHR(32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64(i%32) * 128
		if m.Lookup(line, i) == Allocated && i%2 == 1 {
			m.Fill(line)
		}
	}
}
