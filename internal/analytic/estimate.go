package analytic

import (
	"math"

	"repro/internal/core"
	"repro/internal/trace"
)

// Estimate is the model's answer for one (config, benchmark) point: the
// same headline metrics the simulator's core.Result reports, computed in
// microseconds from the closed-form model.
type Estimate struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`

	// IPC is the aggregate warp-instructions per core cycle over all cores.
	IPC float64 `json:"ipc"`

	// ReqLatency and RepLatency are the mean packet latencies (creation to
	// ejection, NoC cycles) on the request and reply networks.
	ReqLatency float64 `json:"req_latency"`
	RepLatency float64 `json:"rep_latency"`

	// RoundTrip is the mean load miss round trip in NoC cycles (request +
	// MC turnaround + reply).
	RoundTrip float64 `json:"round_trip"`

	// MCService is the mean MC turnaround (L2/DRAM + queueing).
	MCService float64 `json:"mc_service"`

	// RepInjRate is the reply-packet injection rate per MC per NoC cycle.
	RepInjRate float64 `json:"rep_inj_rate"`

	// SaturationRate is the reply network's saturation throughput in long
	// packets per cycle per MC (ReplySaturationRate).
	SaturationRate float64 `json:"saturation_rate"`

	// Saturated reports that the operating point sits at or beyond the
	// reply network's saturation throughput.
	Saturated bool `json:"saturated"`
}

// kernelDemand is the per-warp traffic demand derived from the kernel
// parameters: how much NoC traffic one issued instruction implies.
type kernelDemand struct {
	instrPerMem  float64 // issue slots per memory instruction (compute + the mem instr)
	txnPerMem    float64 // coalesced transactions per memory instruction
	loadMissFrac float64 // fraction of transactions that are L1-miss loads
	storeFrac    float64 // fraction of transactions that are (write-through) stores
	l2Hit        float64 // L2 hit probability of NoC-bound reads
	pBlock       float64 // probability a memory instruction blocks its warp
}

// demand derives the traffic parameters of a kernel under the model's
// cache geometry.
func (m *Model) demand(k trace.Kernel) kernelDemand {
	var d kernelDemand
	d.instrPerMem = k.ComputePerMem + 1

	// The generator emits 1 + Geometric(CoalesceMean-1) transactions capped
	// at 4; approximate the mean by the (clamped) parameter.
	d.txnPerMem = math.Min(math.Max(k.CoalesceMean, 1), 4)

	// L1 behaviour: the warp-private hot set hits while it fits in L1; the
	// shared and streaming regions are far larger than L1 and always miss.
	l1Lines := float64(m.cfg.Core.L1.SizeBytes / m.cfg.Core.L1.LineBytes)
	hotHit := 1.0
	if hl := float64(k.HotLines); hl > l1Lines {
		hotHit = l1Lines / hl
	}
	pL1Hit := k.Locality * hotHit

	readFrac := k.ReadFrac
	d.storeFrac = 1 - readFrac // write-through: every store reaches the NoC
	d.loadMissFrac = readFrac * (1 - pL1Hit)

	// L2 behaviour of NoC-bound reads: the shared region is L2-resident
	// while it fits across the MCs' banks; the streaming region never hits.
	nonLocal := 1 - k.Locality
	var sharedShare float64
	if nonLocal > 0 {
		sharedShare = k.L2Frac
	}
	l2Lines := float64(m.cfg.MC.L2.SizeBytes/m.cfg.MC.L2.LineBytes) * float64(m.nMC)
	sharedHit := 1.0
	if sl := float64(k.SharedLines); sl > l2Lines {
		sharedHit = l2Lines / sl
	}
	d.l2Hit = sharedShare * sharedHit

	// A memory instruction blocks its warp when it contains at least one
	// missing load.
	d.pBlock = math.Min(1, d.txnPerMem*d.loadMissFrac)
	return d
}

// bisectIters bounds the closed-loop bisection; 48 halvings of [0,1] reach
// float precision with margin.
const bisectIters = 48

// Estimate runs the closed-loop model for one workload: warps alternate
// compute segments and memory instructions, block on load-miss round trips,
// and the round trip itself depends on the injection rate the cores
// sustain — an interactive queueing network. All traffic rates are linear
// in the per-core issue rate x, so every throughput resource (LSU, the two
// networks, the DRAM channels) yields a *static* ceiling on x; only the
// interactive response-time law and the MSHR occupancy depend on x through
// the round trip. The implied sustainable rate is non-increasing in x, so
// the fixed point is a unique crossing found by bisection — no damping, no
// oscillation near saturation.
func (m *Model) Estimate(k trace.Kernel) Estimate {
	d := m.demand(k)

	// Traffic demand per unit issue rate (x = 1), per core per NoC cycle.
	txnPerX := d.txnPerMem / d.instrPerMem * m.coreClockRatio
	loadPerX := txnPerX * d.loadMissFrac
	storePerX := txnPerX * d.storeFrac
	coresPerMC := float64(m.nCores) / float64(m.nMC)

	// Static capacity ceilings on x: each resource's throughput divided by
	// the demand one unit of issue rate puts on it.
	xMax := 1.0
	ceil := func(capacity, demandPerX float64) {
		if demandPerX > 0 && capacity/demandPerX < xMax {
			xMax = capacity / demandPerX
		}
	}
	// LSU: at most LSUWidth transactions per core cycle.
	ceil(float64(m.cfg.Core.LSUWidth), d.txnPerMem/d.instrPerMem)
	// Reply network: flits per MC per cycle through the narrowest stage.
	repFlitsPerX := (loadPerX*float64(m.repLong) + storePerX*float64(m.repShort)) * coresPerMC
	ceil(m.replyFlitCapacity(), repFlitsPerX)
	// Request network: flits per core per cycle.
	reqFlitsPerX := loadPerX*float64(m.reqShort) + storePerX*float64(m.reqLong)
	ceil(m.requestFlitCapacity(), reqFlitsPerX)
	// DRAM: L2-missing lines per MC per cycle through the channel.
	ceil(m.dramChanRate, (loadPerX+storePerX)*coresPerMC*(1-d.l2Hit))

	// point evaluates the model at issue rate x and returns the estimate
	// plus the issue rate that round trip implies the cores can sustain.
	point := func(x float64) (Estimate, float64) {
		loadRate := x * loadPerX
		storeRate := x * storePerX

		// Request network: short read requests + long write requests per
		// core; reply network: long read replies + short write acks per MC.
		reqMix := classMix{short: loadRate, long: storeRate}
		repMix := classMix{
			long:  loadRate * coresPerMC,
			short: storeRate * coresPerMC,
		}

		reqLat := m.requestLatency(reqMix)
		repLat := m.replyLatency(repMix)
		perMCReq := (loadRate + storeRate) * coresPerMC
		mcSvc := m.mcServiceTime(d.l2Hit, perMCReq)
		rtt := reqLat + mcSvc + repLat

		// Interactive response-time law per core: N warps, each needing
		// instrPerMem issue slots per cycle of think time, blocked pBlock
		// of the time for the round trip (in core cycles).
		rttCore := rtt * m.coreClockRatio
		n := float64(k.WarpsPerCore)
		implied := math.Min(xMax, n*d.instrPerMem/(d.instrPerMem+d.pBlock*rttCore))

		// MSHR cap (Little's law): outstanding load misses per core cannot
		// exceed the MSHR entries.
		if loadRate > 0 && rtt > 0 {
			outstanding := loadRate * rtt
			if limit := float64(m.cfg.Core.MSHREntries); outstanding > limit && x > 0 {
				implied = math.Min(implied, x*limit/outstanding)
			}
		}

		return Estimate{
			Bench:          k.Name,
			Scheme:         m.cfg.Scheme.String(),
			IPC:            x * float64(m.nCores),
			ReqLatency:     reqLat,
			RepLatency:     repLat,
			RoundTrip:      rtt,
			MCService:      mcSvc,
			RepInjRate:     repMix.packets(),
			SaturationRate: m.ReplySaturationRate(),
		}, implied
	}

	// The implied rate is non-increasing in x while the identity is
	// increasing, so the self-consistent operating point is the unique
	// crossing. If even full demand is sustainable, x = xMax.
	x := xMax
	if _, implied := point(x); implied < x {
		lo, hi := 0.0, x
		for i := 0; i < bisectIters; i++ {
			mid := 0.5 * (lo + hi)
			if _, imp := point(mid); imp > mid {
				lo = mid
			} else {
				hi = mid
			}
		}
		x = 0.5 * (lo + hi)
	}
	est, _ := point(x)
	est.Saturated = x*repFlitsPerX >= 0.95*m.replyFlitCapacity()
	return est
}

// EstimateSuite answers the full-workload-suite latency query for one
// configuration: one Estimate per suite kernel, in suite order. This is the
// microsecond fast path the serving layer and `arisim -estimate` use.
func EstimateSuite(cfg core.Config) ([]Estimate, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return nil, err
	}
	suite := trace.Suite()
	out := make([]Estimate, len(suite))
	for i, k := range suite {
		out[i] = m.Estimate(k)
	}
	return out, nil
}

// EstimateOne answers one (config, benchmark) estimate-mode query.
func EstimateOne(cfg core.Config, k trace.Kernel) (Estimate, error) {
	m, err := NewModel(cfg)
	if err != nil {
		return Estimate{}, err
	}
	return m.Estimate(k), nil
}
