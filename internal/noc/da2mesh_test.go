package noc

import "testing"

func newTestOverlay(t *testing.T, mutate func(*Config)) *DA2Mesh {
	t.Helper()
	d, err := NewDA2Mesh(testConfig(t, mutate))
	if err != nil {
		t.Fatalf("NewDA2Mesh: %v", err)
	}
	return d
}

func TestOverlayDelivery(t *testing.T) {
	d := newTestOverlay(t, nil)
	var got *Packet
	d.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		if node != 15 {
			t.Errorf("delivered to node %d, want 15", node)
		}
		got = pkt
	})
	pkt := mkPacket(d.cfg, ReadReply, 15)
	if !d.Inject(0, pkt) {
		t.Fatal("inject rejected")
	}
	for i := 0; i < 200 && d.InFlight() > 0; i++ {
		d.Step()
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	// Latency must cover streaming (9 flits) plus hop delay (6 hops).
	lat := got.EjectedAt - got.CreatedAt
	if lat < 9+6 {
		t.Fatalf("overlay latency %d implausibly low", lat)
	}
	if d.Stats().PacketsEjected[ReadReply] != 1 {
		t.Fatal("stats missed the delivery")
	}
}

func TestOverlayHopLatencyScales(t *testing.T) {
	lat := func(dst int) int64 {
		d := newTestOverlay(t, nil)
		var when int64
		d.SetEjectHandler(func(node int, pkt *Packet, now int64) { when = now })
		d.Inject(0, mkPacket(d.cfg, ReadReply, dst))
		for i := 0; i < 200 && d.InFlight() > 0; i++ {
			d.Step()
		}
		return when
	}
	near, far := lat(1), lat(15)
	if far-near != int64(Mesh{Width: 4, Height: 4}.Hops(1, 15)) {
		t.Fatalf("hop scaling wrong: near %d far %d", near, far)
	}
}

func TestOverlayInjectionSerialisation(t *testing.T) {
	// Baseline overlay NI supplies one flit per cycle: injecting N long
	// packets takes ~N*9 cycles to drain; the ARI split NI drains up to
	// VCs per cycle.
	drainTime := func(nc NodeConfig) int64 {
		d := newTestOverlay(t, func(c *Config) {
			c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
			c.Nodes[0] = nc
		})
		d.SetEjectHandler(func(int, *Packet, int64) {})
		// Offer one packet per cycle to distinct destinations.
		dst := 1
		offered := 0
		for offered < 8 {
			if d.Inject(0, mkPacket(d.cfg, ReadReply, dst)) {
				offered++
				dst++
			}
			d.Step()
		}
		for d.InFlight() > 0 {
			d.Step()
			if d.Now() > 10000 {
				t.Fatal("overlay did not drain")
			}
		}
		return d.Now()
	}
	base := drainTime(NodeConfig{})
	ari := drainTime(NodeConfig{NI: NISplit, InjSpeedup: 4})
	if ari >= base {
		t.Fatalf("ARI overlay drain (%d) not faster than baseline (%d)", ari, base)
	}
}

func TestOverlayEjectionContention(t *testing.T) {
	// Many sources to one destination: delivery rate is capped by the
	// destination's EjectRate.
	d := newTestOverlay(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		for i := range c.Nodes {
			c.Nodes[i] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
	})
	var flits uint64
	d.SetEjectHandler(func(node int, pkt *Packet, now int64) { flits += uint64(pkt.Size) })
	const cycles = 2000
	for c := 0; c < cycles; c++ {
		for s := 1; s < 16; s++ {
			d.Inject(s, mkPacket(d.cfg, ReadReply, 0))
		}
		d.Step()
	}
	rate := float64(flits) / cycles
	if rate > 1.01 {
		t.Fatalf("hot destination consumed %.3f flits/cycle, above the EjectRate of 1", rate)
	}
	if rate < 0.5 {
		t.Fatalf("hot destination rate %.3f implausibly low", rate)
	}
}

func TestOverlayOfferRateLimit(t *testing.T) {
	d := newTestOverlay(t, nil)
	if !d.Inject(0, mkPacket(d.cfg, ReadReply, 3)) {
		t.Fatal("first inject failed")
	}
	if d.Inject(0, mkPacket(d.cfg, ReadReply, 3)) {
		t.Fatal("second inject in the same cycle accepted")
	}
	if d.Stats().NIFullRejects == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestOverlayConservation(t *testing.T) {
	d := newTestOverlay(t, nil)
	var delivered uint64
	d.SetEjectHandler(func(int, *Packet, int64) { delivered++ })
	seed := uint64(7)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	var injected uint64
	for c := 0; c < 3000; c++ {
		s := next(16)
		dst := next(16)
		if s != dst && d.Inject(s, mkPacket(d.cfg, ReadReply, dst)) {
			injected++
		}
		d.Step()
	}
	for i := 0; i < 100000 && d.InFlight() > 0; i++ {
		d.Step()
	}
	if delivered != injected {
		t.Fatalf("overlay conservation: injected %d delivered %d", injected, delivered)
	}
}

func TestOverlayResetStats(t *testing.T) {
	d := newTestOverlay(t, nil)
	d.SetEjectHandler(func(int, *Packet, int64) {})
	d.Inject(0, mkPacket(d.cfg, ReadReply, 3))
	for i := 0; i < 50; i++ {
		d.Step()
	}
	d.ResetStats()
	st := d.Stats()
	if st.PacketsInjected[ReadReply] != 0 || st.EjectFlits != 0 {
		t.Fatal("ResetStats left counters")
	}
	if st.InjLinks == 0 {
		t.Fatal("ResetStats destroyed structural fields")
	}
}
