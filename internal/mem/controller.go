package mem

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/noc"
)

// MCConfig configures one memory-controller node (Table I: 128KB L2 per
// MC, FR-FCFS, GDDR5 at 1.75 GHz).
type MCConfig struct {
	L2        cache.Config
	L2Latency int // L2 access latency in NoC cycles
	DRAM      DRAMConfig
	// InQueueCap bounds buffered request packets; when full the node stops
	// ejecting from the request network, creating the backpressure chain of
	// §3 ("request packets start to be queued up backward"). Small values
	// make the parking-lot effect (Fig 3) bite sooner.
	InQueueCap int
	// L2PipeCap bounds in-flight L2 accesses (>= L2Latency keeps the bank
	// fully pipelined at one access per cycle).
	L2PipeCap int
	// ReplyQueueCap bounds ready reply data waiting for the NI; when full,
	// L2 and DRAM completions stall — this is the data-stall condition the
	// paper measures in Fig 12.
	ReplyQueueCap int
}

// DefaultMCConfig returns Table I's memory-controller parameters.
func DefaultMCConfig() MCConfig {
	return MCConfig{
		L2:            cache.Config{SizeBytes: 128 << 10, LineBytes: 128, Ways: 8},
		L2Latency:     20,
		DRAM:          DefaultDRAMConfig(),
		InQueueCap:    8,
		L2PipeCap:     8,
		ReplyQueueCap: 8,
	}
}

// pipeEntry is a transaction in the fixed-latency L2 pipeline.
type pipeEntry struct {
	txn    *Transaction
	doneAt int64
}

// Controller is one MC node: request ingress, L2 bank, DRAM channel and
// reply egress toward the reply-network NI.
type Controller struct {
	Node int
	cfg  MCConfig

	l2   *cache.Cache
	dram *DRAM

	inQ          []*Transaction
	l2Pipe       []pipeEntry
	pendingReads map[uint64][]*Transaction // line -> merged readers
	dramDone     []*Transaction            // completions awaiting reply slot
	replyQ       []*Transaction

	fabric    noc.Fabric
	linkBits  int
	dataBytes int

	// Allocation recycling for the steady-state hot path. wbFree holds
	// retired internal writeback transactions (reclaimed by takeWB when DRAM
	// commits them); waiterFree holds emptied pendingReads slices. Both are
	// per-controller, so sharded simulation needs no locking.
	wbFree     []*Transaction
	waiterFree [][]*Transaction
	takeWB     func(*Transaction)

	// Stats.
	ReadHits     uint64
	ReadMisses   uint64
	WriteHits    uint64
	WriteMisses  uint64
	MergedReads  uint64
	Writebacks   uint64
	RepliesSent  uint64
	StallTime    int64 // total cycles reply data waited ready-to-injected (Fig 12)
	BlockedCycle int64 // cycles the head reply was blocked by the NI
	nextWBID     uint64
}

// NewController builds an MC node attached to the reply fabric.
func NewController(node int, cfg MCConfig, fabric noc.Fabric, linkBits, dataBytes int) (*Controller, error) {
	if err := cfg.L2.Validate(); err != nil {
		return nil, fmt.Errorf("mem: L2: %w", err)
	}
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	if cfg.InQueueCap <= 0 || cfg.L2PipeCap <= 0 || cfg.ReplyQueueCap <= 0 || cfg.L2Latency < 0 {
		return nil, fmt.Errorf("mem: invalid queue/latency config %+v", cfg)
	}
	c := &Controller{
		Node:         node,
		cfg:          cfg,
		l2:           cache.New(cfg.L2),
		dram:         NewDRAM(cfg.DRAM),
		pendingReads: make(map[uint64][]*Transaction),
		fabric:       fabric,
		linkBits:     linkBits,
		dataBytes:    dataBytes,
	}
	// Built once here so passing it to TakeCompleted every cycle does not
	// allocate a method-value closure.
	c.takeWB = func(txn *Transaction) { c.wbFree = append(c.wbFree, txn) }
	return c, nil
}

// L2 exposes the L2 bank for stats.
func (c *Controller) L2() *cache.Cache { return c.l2 }

// DRAM exposes the DRAM channel for stats.
func (c *Controller) DRAM() *DRAM { return c.dram }

// CanReceive reports whether the request ingress has space (the request
// network's ejection gate at this node).
func (c *Controller) CanReceive() bool { return len(c.inQ) < c.cfg.InQueueCap }

// Receive buffers a request packet delivered by the request network. The
// transaction is extracted immediately; the packet shell is not retained,
// so the caller may recycle it as soon as Receive returns.
func (c *Controller) Receive(pkt *noc.Packet) {
	txn, ok := pkt.Payload.(*Transaction)
	if !ok {
		panic("mem: request packet without Transaction payload")
	}
	c.inQ = append(c.inQ, txn)
}

// Pending reports in-flight work (for drain detection).
func (c *Controller) Pending() int {
	return len(c.inQ) + len(c.l2Pipe) + len(c.dramDone) + len(c.replyQ) +
		c.dram.Pending() + len(c.pendingReads)
}

// Quiescent reports whether a Tick would be a pure clock advance: no
// buffered requests, no L2 or DRAM activity, no replies waiting. The
// system loop may then call SkipIdle instead of Tick with no change to
// any simulated state.
func (c *Controller) Quiescent() bool {
	return len(c.inQ) == 0 && len(c.l2Pipe) == 0 && len(c.dramDone) == 0 &&
		len(c.replyQ) == 0 && len(c.pendingReads) == 0 && c.dram.Quiescent()
}

// SkipIdle stands in for Tick on a quiescent controller: the only state a
// quiescent Tick changes is the DRAM clock, which must keep advancing so
// later arrival stamps and timing references stay aligned.
func (c *Controller) SkipIdle(memTicks int) {
	c.dram.AdvanceIdle(memTicks)
}

// Tick advances the controller by one NoC cycle; memTicks is how many
// memory-clock cycles elapse within it (from the 1.75 GHz clock domain).
func (c *Controller) Tick(now int64, memTicks int) {
	for i := 0; i < memTicks; i++ {
		c.dram.Tick()
	}
	c.collectDRAM(now)
	c.drainL2Pipe(now)
	c.processRequest(now)
	c.injectReply(now)
}

// collectDRAM pulls completed DRAM transactions: read fills install into L2
// (spilling dirty victims back to DRAM) and fan replies out to every merged
// reader; write completions were acknowledged at L2 already.
func (c *Controller) collectDRAM(now int64) {
	c.dramDone = c.dram.TakeCompleted(c.dramDone, c.takeWB)
	kept := c.dramDone[:0]
	for _, txn := range c.dramDone {
		if txn.IsWrite {
			continue // DRAM write commit; reply was sent at L2 time
		}
		waiters := c.pendingReads[txn.Addr]
		// Installing may evict a dirty line: that needs a DRAM queue slot.
		// Replying needs reply-queue slots for every merged reader.
		if len(c.replyQ)+len(waiters) > c.cfg.ReplyQueueCap || !c.dram.CanAccept() {
			kept = append(kept, txn)
			continue
		}
		res := c.l2.Access(txn.Addr, false)
		if res.Writeback {
			c.writebackToDRAM(res.WritebackAddr)
		}
		delete(c.pendingReads, txn.Addr)
		for _, w := range waiters {
			w.ReadyAt = now
			c.replyQ = append(c.replyQ, w)
		}
		c.waiterFree = append(c.waiterFree, waiters[:0])
	}
	c.dramDone = kept
}

// drainL2Pipe moves finished L2 accesses into the reply queue.
func (c *Controller) drainL2Pipe(now int64) {
	for len(c.l2Pipe) > 0 && c.l2Pipe[0].doneAt <= now {
		if len(c.replyQ) >= c.cfg.ReplyQueueCap {
			return // reply path blocked: data stalls in the MC
		}
		e := c.l2Pipe[0]
		copy(c.l2Pipe, c.l2Pipe[1:])
		c.l2Pipe = c.l2Pipe[:len(c.l2Pipe)-1]
		e.txn.ReadyAt = now
		c.replyQ = append(c.replyQ, e.txn)
	}
}

// processRequest pops at most one request packet per cycle through the L2.
func (c *Controller) processRequest(now int64) {
	if len(c.inQ) == 0 {
		return
	}
	txn := c.inQ[0]
	if txn.IsWrite {
		if !c.processWrite(txn, now) {
			return
		}
	} else {
		if !c.processRead(txn, now) {
			return
		}
	}
	copy(c.inQ, c.inQ[1:])
	c.inQ = c.inQ[:len(c.inQ)-1]
}

// processRead handles a read request; returns false to retry next cycle.
func (c *Controller) processRead(txn *Transaction, now int64) bool {
	if ws, pending := c.pendingReads[txn.Addr]; pending {
		// Bound merging so a fill's reply fan-out always fits the reply
		// queue (otherwise the release condition in collectDRAM could
		// never be met).
		if len(ws) >= c.cfg.ReplyQueueCap {
			return false
		}
		c.pendingReads[txn.Addr] = append(ws, txn)
		c.MergedReads++
		return true
	}
	if c.l2.Probe(txn.Addr) {
		if len(c.l2Pipe) >= c.cfg.L2PipeCap {
			return false
		}
		c.l2.Access(txn.Addr, false)
		c.ReadHits++
		c.l2Pipe = append(c.l2Pipe, pipeEntry{txn: txn, doneAt: now + int64(c.cfg.L2Latency)})
		return true
	}
	if !c.dram.CanAccept() {
		return false
	}
	c.ReadMisses++
	var ws []*Transaction
	if n := len(c.waiterFree); n > 0 {
		ws = c.waiterFree[n-1]
		c.waiterFree = c.waiterFree[:n-1]
	} else {
		ws = make([]*Transaction, 0, 2)
	}
	c.pendingReads[txn.Addr] = append(ws, txn)
	c.dram.Enqueue(txn, false)
	return true
}

// processWrite handles a write request: write-allocate into L2 (GPU stores
// are full coalesced lines), spilling dirty victims to DRAM; the write
// reply is generated after the L2 latency. Returns false to retry.
func (c *Controller) processWrite(txn *Transaction, now int64) bool {
	if len(c.l2Pipe) >= c.cfg.L2PipeCap {
		return false
	}
	hit := c.l2.Probe(txn.Addr)
	if !hit && !c.dram.CanAccept() {
		return false // may need a writeback slot
	}
	res := c.l2.Access(txn.Addr, true)
	if res.Writeback {
		c.writebackToDRAM(res.WritebackAddr)
	}
	if hit {
		c.WriteHits++
	} else {
		c.WriteMisses++
	}
	c.l2Pipe = append(c.l2Pipe, pipeEntry{txn: txn, doneAt: now + int64(c.cfg.L2Latency)})
	return true
}

// writebackToDRAM enqueues an internal dirty-eviction write, recycling a
// retired writeback transaction when one is available.
func (c *Controller) writebackToDRAM(addr uint64) {
	c.Writebacks++
	c.nextWBID++
	var wb *Transaction
	if n := len(c.wbFree); n > 0 {
		wb = c.wbFree[n-1]
		c.wbFree = c.wbFree[:n-1]
	} else {
		wb = new(Transaction)
	}
	*wb = Transaction{ID: 1<<63 | c.nextWBID, IsWrite: true, Addr: addr, SrcNode: -1}
	c.dram.Enqueue(wb, true)
}

// injectReply offers the head reply packet to the reply-network NI; a
// rejection is the MC data stall of Fig 12.
func (c *Controller) injectReply(now int64) {
	if len(c.replyQ) == 0 {
		return
	}
	txn := c.replyQ[0]
	typ := noc.ReadReply
	if txn.IsWrite {
		typ = noc.WriteReply
	}
	pkt := c.fabric.GetPacket()
	pkt.Type = typ
	pkt.Dst = txn.SrcNode
	pkt.Size = noc.PacketSize(typ, c.linkBits, c.dataBytes)
	pkt.Payload = txn
	if !c.fabric.Inject(c.Node, pkt) {
		c.fabric.PutPacket(pkt)
		c.BlockedCycle++
		return
	}
	c.StallTime += now - txn.ReadyAt
	c.RepliesSent++
	copy(c.replyQ, c.replyQ[1:])
	c.replyQ = c.replyQ[:len(c.replyQ)-1]
}
