package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/serve"
)

// fakeReplica is a scripted ariserve stand-in: /readyz always 200, /v1/jobs
// handled by jobs (counted).
type fakeReplica struct {
	ts   *httptest.Server
	hits atomic.Int32
}

func startFakeReplica(t *testing.T, jobs http.HandlerFunc) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		jobs(w, r)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func okJobs(key string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.JobResponse{Key: key, Cached: false})
	}
}

func gateFor(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.Base.MeshWidth == 0 {
		cfg.Base = core.DefaultConfig()
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func postJob(t *testing.T, g *Gateway, req serve.JobRequest) *httptest.ResponseRecorder {
	t.Helper()
	body, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	g.ServeHTTP(w, r)
	return w
}

// jobKeyFor computes the key the gateway will route req by.
func jobKeyFor(t *testing.T, base core.Config, req serve.JobRequest) string {
	t.Helper()
	job, err := serve.BuildJob(base, &req)
	if err != nil {
		t.Fatal(err)
	}
	return exp.JobKey(job.Cfg, job.Kernel.Name)
}

func TestGatewayRoutesToPrimaryOwner(t *testing.T) {
	reps := make([]*fakeReplica, 3)
	urls := make([]string, 3)
	for i := range reps {
		reps[i] = startFakeReplica(t, okJobs("k"))
		urls[i] = reps[i].ts.URL
	}
	base := core.DefaultConfig()
	g := gateFor(t, Config{Base: base, Replicas: urls, HedgeAfter: -1})

	req := serve.JobRequest{Bench: "bfs"}
	primary := g.Ring().Owners(jobKeyFor(t, base, req), 1)[0]

	for i := 0; i < 5; i++ {
		w := postJob(t, g, req)
		if w.Code != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body)
		}
	}
	for _, f := range reps {
		want := int32(0)
		if f.ts.URL == primary {
			want = 5
		}
		if got := f.hits.Load(); got != want {
			t.Fatalf("replica %s got %d hits, want %d (primary %s)", f.ts.URL, got, want, primary)
		}
	}
	st := g.Stats()
	if st.Requests != 5 || st.Failovers != 0 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGatewayFailsOverWhenPrimaryDies(t *testing.T) {
	reps := make([]*fakeReplica, 3)
	urls := make([]string, 3)
	for i := range reps {
		reps[i] = startFakeReplica(t, okJobs("k"))
		urls[i] = reps[i].ts.URL
	}
	base := core.DefaultConfig()
	g := gateFor(t, Config{Base: base, Replicas: urls, HedgeAfter: -1})

	req := serve.JobRequest{Bench: "bfs"}
	primary := g.Ring().Owners(jobKeyFor(t, base, req), 2)[0]
	for _, f := range reps {
		if f.ts.URL == primary {
			f.ts.Close() // connection refused: the crash signature
		}
	}

	w := postJob(t, g, req)
	if w.Code != http.StatusOK {
		t.Fatalf("failover submit: %d %s", w.Code, w.Body)
	}
	var resp serve.JobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Key != "k" {
		t.Fatalf("failover body: %s (%v)", w.Body, err)
	}
	st := g.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	for _, row := range st.Replicas {
		if row.URL == primary && row.Failures == 0 {
			t.Fatalf("dead primary has no recorded failure: %+v", row)
		}
	}
}

func TestGatewayFailsOverOnShed(t *testing.T) {
	// The primary is alive but shedding 429: degrade sideways, not down.
	base := core.DefaultConfig()
	req := serve.JobRequest{Bench: "bfs"}

	shedding := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"})
	}
	a := startFakeReplica(t, shedding)
	b := startFakeReplica(t, shedding)
	urls := []string{a.ts.URL, b.ts.URL}
	g := gateFor(t, Config{Base: base, Replicas: urls, HedgeAfter: -1})

	// Both owners shed: the gateway sheds too, relaying the worst Retry-After.
	w := postJob(t, g, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("all-shedding cluster: %d %s", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the owners' hint 7", ra)
	}
	if st := g.Stats(); st.Shed != 1 || st.Failovers != 1 {
		t.Fatalf("stats = %+v, want shed=1 failovers=1", st)
	}
	if a.hits.Load()+b.hits.Load() != 2 {
		t.Fatalf("both owners should have been tried: %d + %d hits", a.hits.Load(), b.hits.Load())
	}
}

func TestGatewayShedsWhenAllOwnersDown(t *testing.T) {
	a := startFakeReplica(t, okJobs("k"))
	b := startFakeReplica(t, okJobs("k"))
	urls := []string{a.ts.URL, b.ts.URL}
	a.ts.Close()
	b.ts.Close()

	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: urls, HedgeAfter: -1})
	w := postJob(t, g, serve.JobRequest{Bench: "bfs"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("dead cluster: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

func TestGatewayRelaysTerminalRejection(t *testing.T) {
	// A deterministic 4xx/5xx is identical on every replica: relay verbatim,
	// never fail over.
	rejecting := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "simulation diverged"})
	}
	a := startFakeReplica(t, rejecting)
	b := startFakeReplica(t, rejecting)
	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.ts.URL, b.ts.URL}, HedgeAfter: -1})

	w := postJob(t, g, serve.JobRequest{Bench: "bfs"})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("terminal relay: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "simulation diverged") {
		t.Fatalf("terminal body not relayed: %s", w.Body)
	}
	if a.hits.Load()+b.hits.Load() != 1 {
		t.Fatalf("terminal rejection failed over: %d + %d hits", a.hits.Load(), b.hits.Load())
	}
	if st := g.Stats(); st.Failovers != 0 {
		t.Fatalf("failovers = %d on a terminal rejection", st.Failovers)
	}
}

func TestGatewayRejectsBadRequestsItself(t *testing.T) {
	a := startFakeReplica(t, okJobs("k"))
	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.ts.URL}})

	w := postJob(t, g, serve.JobRequest{Bench: "no-such-kernel"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown bench: %d %s", w.Code, w.Body)
	}
	if a.hits.Load() != 0 {
		t.Fatal("unroutable request reached a replica")
	}

	r := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, r)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d", rec.Code)
	}
}

func TestGatewayHedgesSlowPrimary(t *testing.T) {
	base := core.DefaultConfig()
	req := serve.JobRequest{Bench: "bfs"}

	// The first attempt (the primary) blocks until the request is cancelled;
	// any later attempt (the hedge) answers immediately. The hedge must win.
	release := make(chan struct{})
	defer close(release)
	var first atomic.Bool
	hedgeAware := func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		okJobs("k")(w, r)
	}
	a := startFakeReplica(t, hedgeAware)
	b := startFakeReplica(t, hedgeAware)
	g := gateFor(t, Config{Base: base, Replicas: []string{a.ts.URL, b.ts.URL}, HedgeAfter: 20 * time.Millisecond})

	start := time.Now()
	w := postJob(t, g, req)
	if w.Code != http.StatusOK {
		t.Fatalf("hedged submit: %d %s", w.Code, w.Body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hedge did not rescue a stuck primary: %s", took)
	}
	st := g.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d hedgeWins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if a.hits.Load()+b.hits.Load() != 2 {
		t.Fatalf("hits = %d + %d, want one primary + one hedge", a.hits.Load(), b.hits.Load())
	}
}

func TestGatewayEndpoints(t *testing.T) {
	a := startFakeReplica(t, okJobs("k"))
	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.ts.URL}, ProbeInterval: 10 * time.Millisecond})
	g.Start()

	ts := httptest.NewServer(g)
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/v1/stats", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d %s", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "arigate_requests_total") {
			t.Fatalf("metrics missing arigate_requests_total:\n%s", body)
		}
		if path == "/v1/stats" {
			var st Stats
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("stats body: %v", err)
			}
		}
	}
}
