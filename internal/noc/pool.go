package noc

// pktPool is a per-fabric freelist of Packet structs. Reply traffic churns
// through hundreds of packets per thousand cycles; recycling them through a
// freelist removes the dominant steady-state allocation of the simulator
// hot loop (the request/reply Packet per memory transaction) without any
// cross-fabric sharing, so the pool needs no locking — each fabric belongs
// to exactly one single-threaded simulation.
type pktPool struct {
	free []*Packet
}

// get returns a zeroed packet, recycling a released one when available.
func (p *pktPool) get() *Packet {
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free = p.free[:n-1]
		*pk = Packet{}
		return pk
	}
	return new(Packet)
}

// put releases a packet back to the freelist. The caller must guarantee no
// live reference remains (delivery callback returned, or injection was
// rejected before the fabric kept any flit of it).
func (p *pktPool) put(pk *Packet) {
	if pk == nil {
		return
	}
	pk.Payload = nil
	p.free = append(p.free, pk)
}
