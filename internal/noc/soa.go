package noc

import "unsafe"

// Struct-of-arrays activity state. The event-driven stepping predicates
// (router flits, ejector flits, NI queued flits) used to live as scalar
// fields on their components, so the per-cycle predicate sweep dereferenced
// one pointer per component — a cache miss per idle router at big meshes.
// They now live in dense per-shard int32 arrays carved from cache-line
// aligned blocks:
//
//   - the sweep over an idle region touches 16 predicates per cache line
//     instead of one per line (the component structs are only dereferenced
//     when active);
//   - each shard's block is its own allocation, starts on a cache-line
//     boundary and occupies whole lines, so two shards' workers never write
//     the same line — the false sharing that flat-lined shard scaling on
//     shared counters cannot occur by construction.

// cacheLine is the assumed coherence granularity. 64 bytes covers every
// current x86/ARM server part; a larger true line size only weakens the
// padding, never correctness.
const cacheLine = 64

// lineInt32s is the number of int32 slots per cache line.
const lineInt32s = cacheLine / 4

// roundUpLine rounds n up to a whole number of cache lines worth of int32s.
func roundUpLine(n int) int { return (n + lineInt32s - 1) &^ (lineInt32s - 1) }

// alignedInt32s returns a zeroed []int32 of length n whose backing memory
// starts on a cache-line boundary and whose padded extent (capacity) is a
// whole number of lines inside its own allocation — no other object can
// share a line with any element. Go's GC does not move heap objects, so the
// alignment established here holds for the slice's lifetime.
func alignedInt32s(n int) []int32 {
	padded := roundUpLine(n)
	buf := make([]int32, padded+lineInt32s)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % cacheLine; rem != 0 {
		off = int(cacheLine-rem) / 4
	}
	return buf[off : off+n : off+padded]
}
