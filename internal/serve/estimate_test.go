package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/trace"
)

// mustScheme resolves a scheme label or fails the test.
func mustScheme(t *testing.T, name string) core.Scheme {
	t.Helper()
	s, err := core.ParseScheme(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEstimateModeUncachedAndCached is the estimate-mode smoke test: an
// uncached estimate query answers instantly from the model without running
// (or queueing) a simulation; once the exact result is in the store, the
// same estimate query returns it instead — exact beats estimate.
func TestEstimateModeUncachedAndCached(t *testing.T) {
	r := tinyRunner(t)
	s, ts := newTestServer(t, Config{Runner: r})

	// Uncached: the model answers, no simulation runs.
	resp := post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI","estimate":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
	est := decodeJob(t, resp)
	if !est.Estimated || est.Estimate == nil {
		t.Fatalf("estimate-mode response not estimated: %+v", est)
	}
	if est.Cached {
		t.Fatal("uncached estimate reported cached")
	}
	if est.Estimate.Bench != "bfs" || est.Estimate.Scheme != "Ada-ARI" {
		t.Fatalf("estimate identity = %s/%s", est.Estimate.Bench, est.Estimate.Scheme)
	}
	if est.Estimate.IPC <= 0 || est.Estimate.RepLatency <= 0 {
		t.Fatalf("implausible estimate: %+v", est.Estimate)
	}
	if r.Runs() != 0 {
		t.Fatalf("estimate ran %d simulations, want 0", r.Runs())
	}

	// The model's answer must agree with calling it directly.
	cfg := r.Base
	cfg.Scheme = mustScheme(t, "Ada-ARI")
	kernel := r.Benchmarks[0] // bfs
	want, err := analytic.EstimateOne(cfg, kernel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*est.Estimate, want) {
		t.Fatalf("served estimate %+v differs from direct EstimateOne %+v", est.Estimate, want)
	}

	// Escalate: the real simulation under the same key.
	full := decodeJob(t, post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI"}`))
	if full.Estimated || full.Key != est.Key {
		t.Fatalf("escalated run key %q estimated=%v, want key %q and a real result",
			full.Key, full.Estimated, est.Key)
	}

	// Cached: the same estimate query now returns the exact result.
	again := decodeJob(t, post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI","estimate":true}`))
	if !again.Cached || again.Estimated {
		t.Fatalf("post-escalation estimate query: cached=%v estimated=%v, want exact cache hit",
			again.Cached, again.Estimated)
	}
	if !reflect.DeepEqual(again.Result, full.Result) {
		t.Fatal("cached exact result differs from the escalated run")
	}

	st := s.Stats()
	if st.Estimated != 1 || st.Completed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 estimated / 1 completed / 1 cache hit", st)
	}
}

// TestEstimateEscalationMatchesDirectRun locks the escalation contract:
// estimate first, then escalate to a full simulation — the escalated result
// must be byte-identical to a direct run of the same (config, benchmark) on
// a fresh runner, estimate mode having perturbed nothing.
func TestEstimateEscalationMatchesDirectRun(t *testing.T) {
	r := tinyRunner(t)
	_, ts := newTestServer(t, Config{Runner: r})

	if resp := post(t, ts.URL, `{"bench":"b+tree","scheme":"XY-Baseline","estimate":true}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %v", resp.Status)
	} else {
		resp.Body.Close()
	}
	escalated := decodeJob(t, post(t, ts.URL, `{"bench":"b+tree","scheme":"XY-Baseline"}`))

	direct := tinyRunner(t)
	cfg := direct.Base
	cfg.Scheme = mustScheme(t, "XY-Baseline")
	kernel, err := trace.ByName("b+tree")
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Run(cfg, kernel)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(escalated.Result)
	ref, _ := json.Marshal(want)
	if string(got) != string(ref) {
		t.Fatalf("escalated result diverged from direct run:\n%s\nvs\n%s", got, ref)
	}
}

// TestEstimateModeRejectsUnmodelledScheme maps a model-refused config onto
// a 400, not a 500 or a queued simulation.
func TestEstimateModeRejectsUnmodelledScheme(t *testing.T) {
	r := tinyRunner(t)
	_, ts := newTestServer(t, Config{Runner: r})
	resp := post(t, ts.URL, `{"bench":"bfs","scheme":"DA2Mesh","estimate":true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %v, want 400", resp.Status)
	}
	if r.Runs() != 0 {
		t.Fatalf("rejected estimate ran %d simulations", r.Runs())
	}
}

// TestEstimateServedWhileDraining: estimates take no queue slot, so a
// draining server still answers them.
func TestEstimateServedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp := post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI","estimate":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining server refused an estimate: %v", resp.Status)
	}
	out := decodeJob(t, resp)
	if !out.Estimated {
		t.Fatalf("draining server answered %+v, want an estimate", out)
	}
}
