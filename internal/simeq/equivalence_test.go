package simeq

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestEventDrivenMatchesScan is the differential gate for the event-driven
// stepping: every suite kernel, under every covered reply-path variant,
// must produce a byte-identical encoded Result with ScanStep on and off.
// Any skipped component that was not actually idle — a router visited a
// cycle late, an arbiter pointer not fast-forwarded, a DRAM clock left
// behind — shows up here as a divergence.
func TestEventDrivenMatchesScan(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, k := range trace.Suite() {
				cfg := v.Apply(ShortConfig())

				cfg.ScanStep = false
				event := RunEncoded(t, cfg, k)
				cfg.ScanStep = true
				scan := RunEncoded(t, cfg, k)

				if !bytes.Equal(event, scan) {
					t.Fatalf("%s/%s: event-driven result differs from scan reference\n%s",
						k.Name, v.Name, diffLine(event, scan))
				}
			}
		})
	}
}

// TestEventDrivenMatchesScanFixedWork repeats the differential on the
// fixed-work entry point (RunWork), whose stop condition reads core
// instruction counters every cycle and therefore exercises the core fast
// path interleaved with measurement.
func TestEventDrivenMatchesScanFixedWork(t *testing.T) {
	kernels := []string{"bfs", "lud", "blackScholes"}
	for _, name := range kernels {
		k, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range Variants() {
			cfg := v.Apply(ShortConfig())

			run := func(scan bool) []byte {
				cfg.ScanStep = scan
				sim, err := newSim(cfg, k)
				if err != nil {
					t.Fatalf("build %s/%s: %v", k.Name, v.Name, err)
				}
				res := sim.RunWork(20000, 2000)
				enc, err := Encode(res)
				if err != nil {
					t.Fatal(err)
				}
				return enc
			}
			event, scan := run(false), run(true)
			if !bytes.Equal(event, scan) {
				t.Fatalf("%s/%s: fixed-work event-driven result differs\n%s",
					name, v.Name, diffLine(event, scan))
			}
		}
	}
}
