package cache

// MSHR is a miss-status holding register file: it tracks outstanding line
// fills and merges subsequent misses to the same line, so one in-flight
// read request serves every warp waiting on that line.
type MSHR struct {
	entries map[uint64][]int // line addr -> waiter tokens
	max     int
	maxWait int
	// free recycles waiter slices between entries (Lookup pops, Recycle
	// pushes), keeping the steady-state miss path allocation-free.
	free [][]int

	// Stats.
	Merges    uint64
	Allocs    uint64
	FullStall uint64
}

// NewMSHR returns an MSHR file with at most maxEntries outstanding lines
// and maxWaiters merged waiters per line.
func NewMSHR(maxEntries, maxWaiters int) *MSHR {
	if maxEntries <= 0 || maxWaiters <= 0 {
		panic("cache: MSHR sizes must be positive")
	}
	return &MSHR{
		entries: make(map[uint64][]int, maxEntries),
		max:     maxEntries,
		maxWait: maxWaiters,
	}
}

// Outcome of an MSHR lookup/allocate.
type Outcome uint8

const (
	// Allocated: a new entry was created; the caller must issue the fill.
	Allocated Outcome = iota
	// Merged: an entry existed; the waiter was attached, no new fill.
	Merged
	// Stalled: no entry or waiter slot available; retry later.
	Stalled
)

// Lookup attaches waiter to lineAddr's entry, allocating one if needed.
func (m *MSHR) Lookup(lineAddr uint64, waiter int) Outcome {
	if ws, ok := m.entries[lineAddr]; ok {
		if len(ws) >= m.maxWait {
			m.FullStall++
			return Stalled
		}
		m.entries[lineAddr] = append(ws, waiter)
		m.Merges++
		return Merged
	}
	if len(m.entries) >= m.max {
		m.FullStall++
		return Stalled
	}
	var ws []int
	if n := len(m.free); n > 0 {
		ws = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		ws = make([]int, 0, 4)
	}
	m.entries[lineAddr] = append(ws, waiter)
	m.Allocs++
	return Allocated
}

// Pending reports whether lineAddr has an outstanding fill.
func (m *MSHR) Pending(lineAddr uint64) bool {
	_, ok := m.entries[lineAddr]
	return ok
}

// Fill completes lineAddr's outstanding fill and returns its waiters. The
// returned slice stays valid until the caller hands it back via Recycle (or
// forever, if the caller never does).
func (m *MSHR) Fill(lineAddr uint64) []int {
	ws, ok := m.entries[lineAddr]
	if !ok {
		return nil
	}
	delete(m.entries, lineAddr)
	return ws
}

// Recycle returns a slice obtained from Fill to the MSHR's freelist once
// the caller is done iterating it. Optional but keeps fills allocation-free.
func (m *MSHR) Recycle(ws []int) {
	if ws == nil {
		return
	}
	m.free = append(m.free, ws[:0])
}

// Occupied returns the number of outstanding entries.
func (m *MSHR) Occupied() int { return len(m.entries) }

// Full reports whether no further line can be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.max }
