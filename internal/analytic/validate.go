package analytic

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/trace"
)

// SimFunc runs one cycle-accurate simulation; the experiment harness's
// Runner.Run satisfies it. Taking it as a parameter keeps this package free
// of a dependency on internal/exp (which itself builds figures on top of
// this package).
type SimFunc func(cfg core.Config, k trace.Kernel) (core.Result, error)

// Band is the recorded estimator-vs-simulator comparison for one
// (benchmark, scheme) point: both sides' headline numbers and the signed
// relative errors. The recorded errors are the drift oracle's reference —
// both sides are deterministic, so any later divergence from these numbers
// means the physics of the simulator (or the model) changed.
type Band struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`

	SimRepLatency float64 `json:"sim_rep_latency"`
	EstRepLatency float64 `json:"est_rep_latency"`
	// RepErr is (est-sim)/sim for the mean reply-packet latency.
	RepErr float64 `json:"rep_err"`

	SimIPC float64 `json:"sim_ipc"`
	EstIPC float64 `json:"est_ipc"`
	// IPCErr is (est-sim)/sim for aggregate IPC.
	IPCErr float64 `json:"ipc_err"`
}

// Bands is the golden file format (testdata/error_bands.json): the exact
// validation configuration, the drift tolerance, and one Band per
// (benchmark, scheme) point.
type Bands struct {
	// Warmup/Measure/Seed pin the simulation horizon the bands were
	// recorded at; CheckDrift refuses to compare bands recorded under a
	// different protocol.
	Warmup  int64  `json:"warmup"`
	Measure int64  `json:"measure"`
	Seed    uint64 `json:"seed"`
	// Tol is the allowed drift of each relative error from its recorded
	// value, in absolute error points (0.02 = two percentage points).
	Tol   float64 `json:"tol"`
	Bands []Band  `json:"bands"`
}

// DriftTol is the default allowed drift of a relative error from its
// recorded value. Both the simulator and the model are deterministic, so a
// re-run on unchanged code reproduces the recorded errors exactly; the
// tolerance only absorbs deliberate, reviewed micro-changes (e.g. a stats
// rounding fix) without tripping on them.
const DriftTol = 0.02

// ValidationSchemes are the scheme axes the error bands cover: the enhanced
// baseline, the full ARI design and the MultiPort competitor — one per NI
// architecture the model distinguishes.
func ValidationSchemes() []core.Scheme {
	return []core.Scheme{core.XYBaseline, core.AdaARI, core.AdaMultiPort}
}

// ValidationConfig is the pinned configuration the error bands are recorded
// at: Table I defaults with a short deterministic horizon, so the full
// 30-workload x 3-scheme comparison stays tractable in CI.
func ValidationConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 1500
	cfg.MeasureCycles = 4000
	cfg.Seed = 1
	return cfg
}

// Compare runs the estimator and the simulator over kernels x schemes and
// returns one Band per point, in (kernel, scheme) order.
func Compare(cfg core.Config, kernels []trace.Kernel, schemes []core.Scheme, sim SimFunc) ([]Band, error) {
	bands := make([]Band, 0, len(kernels)*len(schemes))
	for _, k := range kernels {
		for _, s := range schemes {
			c := cfg
			c.Scheme = s
			m, err := NewModel(c)
			if err != nil {
				return nil, err
			}
			est := m.Estimate(k)
			res, err := sim(c, k)
			if err != nil {
				return nil, fmt.Errorf("analytic: simulating %s/%s: %w", k.Name, s, err)
			}
			simRep := res.Rep.AvgLatency(noc.ReadReply, noc.WriteReply)
			b := Band{
				Bench:         k.Name,
				Scheme:        s.String(),
				SimRepLatency: simRep,
				EstRepLatency: est.RepLatency,
				SimIPC:        res.IPC,
				EstIPC:        est.IPC,
			}
			b.RepErr = relErr(est.RepLatency, simRep)
			b.IPCErr = relErr(est.IPC, res.IPC)
			bands = append(bands, b)
		}
	}
	return bands, nil
}

// relErr returns the signed relative error of est against sim.
func relErr(est, sim float64) float64 {
	if sim == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (est - sim) / sim
}

// CheckDrift compares freshly measured bands against the recorded goldens:
// every recorded point must be present, and each relative error must sit
// within Tol of its recorded value. It returns every violation joined into
// one error, or nil when the oracle is green.
func (g *Bands) CheckDrift(current []Band) error {
	cur := make(map[[2]string]Band, len(current))
	for _, b := range current {
		cur[[2]string{b.Bench, b.Scheme}] = b
	}
	tol := g.Tol
	if tol <= 0 {
		tol = DriftTol
	}
	var violations []string
	for _, want := range g.Bands {
		got, ok := cur[[2]string{want.Bench, want.Scheme}]
		if !ok {
			continue // caller chose a subset; absent points are not drift
		}
		if d := math.Abs(got.RepErr - want.RepErr); d > tol || math.IsNaN(d) {
			violations = append(violations, fmt.Sprintf(
				"%s/%s: reply-latency error drifted %+.4f -> %+.4f (|Δ|=%.4f > %.4f; sim %.1f -> %.1f cycles)",
				want.Bench, want.Scheme, want.RepErr, got.RepErr, d, tol, want.SimRepLatency, got.SimRepLatency))
		}
		if d := math.Abs(got.IPCErr - want.IPCErr); d > tol || math.IsNaN(d) {
			violations = append(violations, fmt.Sprintf(
				"%s/%s: IPC error drifted %+.4f -> %+.4f (|Δ|=%.4f > %.4f; sim %.3f -> %.3f)",
				want.Bench, want.Scheme, want.IPCErr, got.IPCErr, d, tol, want.SimIPC, got.SimIPC))
		}
	}
	if len(violations) == 0 {
		return nil
	}
	sort.Strings(violations)
	msg := "analytic: estimator-vs-simulator error drifted outside the recorded bands (simulator physics or model changed; re-record with -analytic-record after review):"
	for _, v := range violations {
		msg += "\n  " + v
	}
	return fmt.Errorf("%s", msg)
}

// Lookup returns the recorded band for one (bench, scheme) point.
func (g *Bands) Lookup(bench, scheme string) (Band, bool) {
	for _, b := range g.Bands {
		if b.Bench == bench && b.Scheme == scheme {
			return b, true
		}
	}
	return Band{}, false
}

// LoadBands reads a recorded golden file.
func LoadBands(path string) (*Bands, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Bands
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("analytic: parsing %s: %w", path, err)
	}
	return &g, nil
}

// WriteBands records a golden file (indented, trailing newline, stable
// order) — the format the drift oracle and git diffs read.
func WriteBands(path string, g *Bands) error {
	sort.Slice(g.Bands, func(i, j int) bool {
		if g.Bands[i].Bench != g.Bands[j].Bench {
			return g.Bands[i].Bench < g.Bands[j].Bench
		}
		return g.Bands[i].Scheme < g.Bands[j].Scheme
	})
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckProtocol verifies that the golden was recorded under the given
// validation protocol, so drift failures cannot be caused by comparing
// different horizons.
func (g *Bands) CheckProtocol(cfg core.Config) error {
	if g.Warmup != cfg.WarmupCycles || g.Measure != cfg.MeasureCycles || g.Seed != cfg.Seed {
		return fmt.Errorf("analytic: bands recorded at warmup=%d measure=%d seed=%d, validation uses warmup=%d measure=%d seed=%d",
			g.Warmup, g.Measure, g.Seed, cfg.WarmupCycles, cfg.MeasureCycles, cfg.Seed)
	}
	return nil
}
