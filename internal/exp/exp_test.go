package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// tinyRunner returns a Runner over a 3-benchmark subset with very short
// horizons, fast enough for unit tests.
func tinyRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner()
	r.Base.WarmupCycles = 200
	r.Base.MeasureCycles = 600
	var subset []trace.Kernel
	for _, name := range []string{"bfs", "b+tree", "lavaMD"} {
		k, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, k)
	}
	r.Benchmarks = subset
	return r
}

func TestRunnerCachesResults(t *testing.T) {
	r := tinyRunner(t)
	cfg := r.withScheme(core.XYBaseline)
	if _, err := r.Run(cfg, r.Benchmarks[0]); err != nil {
		t.Fatal(err)
	}
	n := r.Runs()
	if n != 1 {
		t.Fatalf("runs = %d, want 1", n)
	}
	if _, err := r.Run(cfg, r.Benchmarks[0]); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 1 {
		t.Fatal("identical job re-simulated instead of cached")
	}
	cfg.Seed = 2
	if _, err := r.Run(cfg, r.Benchmarks[0]); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 2 {
		t.Fatal("different config did not trigger a new run")
	}
}

func TestRunAllPreservesJobOrder(t *testing.T) {
	r := tinyRunner(t)
	jobs := []Job{
		{Cfg: r.withScheme(core.XYBaseline), Kernel: r.Benchmarks[1]},
		{Cfg: r.withScheme(core.XYBaseline), Kernel: r.Benchmarks[0]},
		{Cfg: r.withScheme(core.AdaARI), Kernel: r.Benchmarks[0]},
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Benchmark != r.Benchmarks[1].Name || res[1].Benchmark != r.Benchmarks[0].Name {
		t.Fatalf("results out of order: %s, %s", res[0].Benchmark, res[1].Benchmark)
	}
	if res[2].Scheme != core.AdaARI {
		t.Fatalf("scheme mismatch: %v", res[2].Scheme)
	}
}

func TestFiguresGenerate(t *testing.T) {
	// Every registered figure must generate without error on the tiny
	// runner and produce a printable body. Shared runs must be reused via
	// the cache (the scheme matrix figures reuse each other's runs).
	r := tinyRunner(t)
	for _, e := range Registry() {
		f, err := e.Gen(r)
		if err != nil {
			t.Fatalf("figure %s: %v", e.ID, err)
		}
		out := f.String()
		if !strings.Contains(out, f.ID) {
			t.Fatalf("figure %s output missing its id:\n%s", e.ID, out)
		}
		if f.Table == nil && len(f.Summary) == 0 {
			t.Fatalf("figure %s has neither table nor summary", e.ID)
		}
	}
	// Figs 3/5/util share XYBaseline runs; 11/12/13 share the scheme
	// matrix: the total distinct-run count must be well below the naive
	// job count (cache effectiveness).
	if r.Runs() > 260 {
		t.Fatalf("cache ineffective: %d distinct runs", r.Runs())
	}
}

func TestGenerateUnknownFigure(t *testing.T) {
	if _, err := Generate(tinyRunner(t), "nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFig11Summary(t *testing.T) {
	r := tinyRunner(t)
	f, err := Fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"xy_ari_gain", "ada_ari_gain", "multiport_gain"} {
		if _, ok := f.Summary[key]; !ok {
			t.Fatalf("Fig 11 summary missing %q", key)
		}
	}
	// Even at tiny horizons ARI must not lose to baseline on this subset.
	if f.Summary["ada_ari_gain"] < 0 {
		t.Fatalf("ada_ari_gain negative: %v", f.Summary["ada_ari_gain"])
	}
}

func TestAreaFigureNoSimulation(t *testing.T) {
	r := tinyRunner(t)
	if _, err := AreaOverhead(r); err != nil {
		t.Fatal(err)
	}
	if r.Runs() != 0 {
		t.Fatal("area figure ran simulations")
	}
}
