package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "3", "11", "area"} {
		found := false
		for _, line := range strings.Split(out.String(), "\n") {
			if line == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("figure list missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-fig", "nosuchfigure"},
		{"-bench", "nosuchbench", "-fig", "3"},
		{"-nosuchflag"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTinyFigure(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-fig", "3", "-quick", "-bench", "bfs", "-cycles", "300", "-warmup", "100"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	got := out.String()
	for _, want := range []string{"bfs", "simulations"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
