// Package repro's root benchmarks regenerate each of the paper's tables
// and figures at reduced scale (short horizons, benchmark subset), one
// testing.B target per table/figure. Use cmd/ariexp for the full-scale
// regeneration; these benches are the quick, repeatable form and report
// the headline metric of each figure via b.ReportMetric.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/trace"
)

// benchRunner returns a reduced-scale harness: 3 benchmarks per class,
// short horizons. Fresh per benchmark so b.N iterations are comparable.
func benchRunner(b *testing.B) *exp.Runner {
	b.Helper()
	r := exp.NewRunner()
	r.Base.WarmupCycles = 400
	r.Base.MeasureCycles = 1200
	var subset []trace.Kernel
	for _, name := range []string{"bfs", "kmeans", "pathfinder", "b+tree", "histogram", "scan", "blackScholes", "nn", "lavaMD"} {
		k, err := trace.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		subset = append(subset, k)
	}
	r.Benchmarks = subset
	return r
}

// benchFigure runs one figure generator per iteration and reports the
// named summary metric.
func benchFigure(b *testing.B, id, metric string) {
	for i := 0; i < b.N; i++ {
		r := benchRunner(b)
		f, err := exp.Generate(r, id)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			if v, ok := f.Summary[metric]; ok {
				b.ReportMetric(v, metric)
			}
		}
	}
}

func BenchmarkTableI(b *testing.B)      { benchFigure(b, "table1", "") }
func BenchmarkFig03(b *testing.B)       { benchFigure(b, "3", "avg_req_over_rep") }
func BenchmarkFig04(b *testing.B)       { benchFigure(b, "4", "rep_double_gain") }
func BenchmarkFig05(b *testing.B)       { benchFigure(b, "5", "avg_reply_traffic_share") }
func BenchmarkLinkUtil(b *testing.B)    { benchFigure(b, "util", "inj_over_link") }
func BenchmarkFig06(b *testing.B)       { benchFigure(b, "6", "avg_occupancy_over_capacity") }
func BenchmarkFig09(b *testing.B)       { benchFigure(b, "9", "gain_2_levels_bfs") }
func BenchmarkFig10(b *testing.B)       { benchFigure(b, "10", "ari_gain") }
func BenchmarkFig11(b *testing.B)       { benchFigure(b, "11", "ada_ari_gain") }
func BenchmarkFig12(b *testing.B)       { benchFigure(b, "12", "ada_ari_stall_reduction") }
func BenchmarkFig13(b *testing.B)       { benchFigure(b, "13", "ada_ari_total_latency_norm") }
func BenchmarkFig14(b *testing.B)       { benchFigure(b, "14", "avg_energy_saving") }
func BenchmarkFig15(b *testing.B)       { benchFigure(b, "15", "ari_vc_scaling") }
func BenchmarkFig16(b *testing.B)       { benchFigure(b, "16", "da2mesh_ari_gain") }
func BenchmarkScalability(b *testing.B) { benchFigure(b, "scale", "gain_6x6") }
func BenchmarkAreaModel(b *testing.B)   { benchFigure(b, "area", "pair_overhead") }

// BenchmarkSimulatorStep measures the raw simulator stepping rate of the
// Table I system (cycles/second of wall time drives every figure above).
func BenchmarkSimulatorStep(b *testing.B) {
	benchSimStep(b, 6, 0)
}

// BenchmarkSimulatorStepShards{1,2,4} track end-to-end shard scaling on an
// 8x8 system (cores, MCs and both networks fanned out per shard).
func BenchmarkSimulatorStepShards1(b *testing.B) { benchSimStep(b, 8, 1) }
func BenchmarkSimulatorStepShards2(b *testing.B) { benchSimStep(b, 8, 2) }
func BenchmarkSimulatorStepShards4(b *testing.B) { benchSimStep(b, 8, 4) }

func benchSimStep(b *testing.B, meshDim, shards int) {
	b.Helper()
	k, err := trace.ByName("bfs")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Scheme = core.AdaARI
	cfg.MeshWidth = meshDim
	cfg.MeshHeight = meshDim
	cfg.Shards = shards
	sim, err := core.NewSimulator(cfg, k)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sim.Close)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
