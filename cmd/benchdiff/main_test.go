package main

import (
	"regexp"
	"strings"
	"testing"
)

func d(entries ...entry) doc { return doc{Benchmarks: entries} }

func e(pkg, name string, ns float64) entry {
	return entry{Name: name, Package: pkg, Iterations: 100, NsPerOp: ns}
}

func TestCompareFlagsOnlyRegressionsBeyondThreshold(t *testing.T) {
	re := regexp.MustCompile("NetworkStep|SimulatorStep")
	base := d(
		e("repro/internal/noc", "BenchmarkNetworkStepARI", 1000),
		e("repro", "BenchmarkSimulatorStep", 2000),
		e("repro", "BenchmarkFig03", 500), // unmatched: never gated
	)
	fresh := d(
		e("repro/internal/noc", "BenchmarkNetworkStepARI", 1100), // +10%: within budget
		e("repro", "BenchmarkSimulatorStep", 2400),               // +20%: regression
		e("repro", "BenchmarkFig03", 5000),
	)
	regs, _ := compare(base, fresh, re, 15)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].key != "repro.BenchmarkSimulatorStep" {
		t.Fatalf("flagged %s, want repro.BenchmarkSimulatorStep", regs[0].key)
	}
}

func TestCompareToleratesNewAndRemovedBenchmarks(t *testing.T) {
	re := regexp.MustCompile("NetworkStep")
	base := d(e("p", "BenchmarkNetworkStepOld", 100))
	fresh := d(e("p", "BenchmarkNetworkStepShards4", 400))
	regs, report := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("new/removed benchmarks must not fail the gate: %+v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("report has %d lines, want 2 (one new, one removed):\n%v", len(report), report)
	}
}

func TestCompareTakesMinAcrossRepeatedRuns(t *testing.T) {
	// A -count=3 run emits three entries per benchmark; the gate must
	// judge the minimum on both sides, so one noisy repetition cannot
	// fail (or hide) a regression.
	re := regexp.MustCompile("NetworkStep")
	base := d(
		e("p", "BenchmarkNetworkStepARI", 1200),
		e("p", "BenchmarkNetworkStepARI", 1000), // min
		e("p", "BenchmarkNetworkStepARI", 1500),
	)
	fresh := d(
		e("p", "BenchmarkNetworkStepARI", 1600), // noisy outlier
		e("p", "BenchmarkNetworkStepARI", 1050), // min: +5%, within budget
		e("p", "BenchmarkNetworkStepARI", 1400),
	)
	regs, report := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("min-of-N must absorb the outlier: %+v", regs)
	}
	if len(report) != 1 {
		t.Fatalf("repeated entries must fold to one report line, got %d:\n%v", len(report), report)
	}

	// A real regression survives folding: every fresh repetition is slow.
	slow := d(
		e("p", "BenchmarkNetworkStepARI", 1900),
		e("p", "BenchmarkNetworkStepARI", 1800),
	)
	regs, _ = compare(base, slow, re, 15)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
}

func ep(pkg, name string, ns float64, procs int) entry {
	e := e(pkg, name, ns)
	e.Procs = procs
	return e
}

func TestParseScale(t *testing.T) {
	a, err := parseScale("BenchmarkA/BenchmarkB<=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if a.num != "BenchmarkA" || a.den != "BenchmarkB" || a.maxRatio != 0.5 {
		t.Fatalf("parsed %+v", a)
	}
	for _, bad := range []string{"", "A/B", "A<=0.5", "A/B<=x", "A/B<=-1", "/B<=0.5"} {
		if _, err := parseScale(bad); err == nil {
			t.Fatalf("parseScale(%q) accepted", bad)
		}
	}
}

func TestCheckScalesFailsFlatScaling(t *testing.T) {
	asserts := []scaleAssert{{num: "BenchmarkShards4", den: "BenchmarkShards1", maxRatio: 0.5}}
	// 4-shard stepping barely faster than serial on an 8-proc run: the
	// ratio 0.95 blows the 0.5 budget and must fail the gate.
	flat := []entry{
		ep("p", "BenchmarkShards1", 1000, 8),
		ep("p", "BenchmarkShards4", 950, 8),
	}
	fails, _ := checkScales(flat, asserts, 4)
	if len(fails) != 1 {
		t.Fatalf("flat scaling passed the gate: %v", fails)
	}
	// Honest 3x scaling passes.
	good := []entry{
		ep("p", "BenchmarkShards1", 1000, 8),
		ep("p", "BenchmarkShards4", 330, 8),
	}
	fails, report := checkScales(good, asserts, 4)
	if len(fails) != 0 {
		t.Fatalf("3x scaling failed the gate: %v", fails)
	}
	if len(report) != 1 {
		t.Fatalf("want 1 report line, got %v", report)
	}
}

func TestCheckScalesSkipsOnTooFewProcs(t *testing.T) {
	asserts := []scaleAssert{{num: "BenchmarkShards4", den: "BenchmarkShards1", maxRatio: 0.5}}
	// A 1-proc machine cannot show parallel speedup; the assertion must be
	// skipped loudly instead of failing on physics.
	oneCPU := []entry{
		ep("p", "BenchmarkShards1", 1000, 1),
		ep("p", "BenchmarkShards4", 990, 1),
	}
	fails, report := checkScales(oneCPU, asserts, 4)
	if len(fails) != 0 {
		t.Fatalf("1-proc run failed the scaling gate: %v", fails)
	}
	if len(report) != 1 || !strings.Contains(report[0], "SKIPPED") {
		t.Fatalf("skip must be reported loudly: %v", report)
	}
}

func TestCheckScalesFailsOnMissingBenchmark(t *testing.T) {
	asserts := []scaleAssert{{num: "BenchmarkShards4", den: "BenchmarkShards1", maxRatio: 0.5}}
	fails, _ := checkScales([]entry{ep("p", "BenchmarkShards1", 1000, 8)}, asserts, 4)
	if len(fails) != 1 {
		t.Fatalf("missing benchmark must fail, got %v", fails)
	}
}

func TestCheckScalesFoldsRepeatsToMin(t *testing.T) {
	asserts := []scaleAssert{{num: "BenchmarkShards4", den: "BenchmarkShards1", maxRatio: 0.5}}
	// -count=3 repetitions: the min of each side (1000, 400) gives 0.4,
	// inside the budget, even though pairing noisy outliers would fail.
	fresh := []entry{
		ep("p", "BenchmarkShards1", 1400, 8),
		ep("p", "BenchmarkShards1", 1000, 8),
		ep("p", "BenchmarkShards4", 700, 8),
		ep("p", "BenchmarkShards4", 400, 8),
	}
	fails, _ := checkScales(fresh, asserts, 4)
	if len(fails) != 0 {
		t.Fatalf("min-of-N folding failed: %v", fails)
	}
}

func TestCompareDistinguishesPackages(t *testing.T) {
	// The same benchmark name in two packages must not cross-compare.
	re := regexp.MustCompile("Step")
	base := d(e("a", "BenchmarkStep", 100), e("b", "BenchmarkStep", 10000))
	fresh := d(e("a", "BenchmarkStep", 101), e("b", "BenchmarkStep", 10100))
	regs, _ := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("cross-package comparison: %+v", regs)
	}
}
