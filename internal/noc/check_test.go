package noc

import "testing"

// runChecked drives random traffic while validating all invariants every
// few cycles, across a matrix of configurations.
func runChecked(t *testing.T, mutate func(*Config), cycles int, seed uint64) {
	t.Helper()
	n := newTestNet(t, func(c *Config) {
		// Also exercise the opt-in in-Step invariant gate (Config.CheckEvery),
		// which panics on the first violation; the explicit checks below then
		// report the cycle when one slips through off-period.
		c.CheckEvery = 16
		if mutate != nil {
			mutate(c)
		}
	})
	cfg := n.Config()
	n.SetEjectHandler(func(int, *Packet, int64) {})
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	types := []PacketType{ReadRequest, WriteRequest, ReadReply, WriteReply}
	for c := 0; c < cycles; c++ {
		for s := 0; s < cfg.Mesh.Nodes(); s++ {
			if next(10) < 5 {
				d := next(cfg.Mesh.Nodes())
				if d != s {
					n.Inject(s, mkPacket(cfg, types[next(4)], d))
				}
			}
		}
		n.Step()
		if c%13 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
		}
	}
	runUntilIdle(t, n, 100000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestInvariantsBaselineXY(t *testing.T) {
	runChecked(t, nil, 1500, 1)
}

func TestInvariantsAdaptive(t *testing.T) {
	runChecked(t, func(c *Config) { c.Routing = RouteMinAdaptive }, 1500, 2)
}

func TestInvariantsAtomicVC(t *testing.T) {
	runChecked(t, func(c *Config) { c.NonAtomicVC = false }, 1500, 3)
}

func TestInvariantsARI(t *testing.T) {
	runChecked(t, func(c *Config) {
		c.Routing = RouteMinAdaptive
		c.PriorityLevels = 2
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		for i := 0; i < c.Mesh.Nodes(); i += 3 {
			c.Nodes[i] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
	}, 1500, 4)
}

func TestInvariantsMultiPort(t *testing.T) {
	runChecked(t, func(c *Config) {
		c.Nodes = make([]NodeConfig, c.Mesh.Nodes())
		for i := 0; i < c.Mesh.Nodes(); i += 4 {
			c.Nodes[i] = NodeConfig{NI: NIMultiPort, InjPorts: 2}
		}
	}, 1500, 5)
}

func TestInvariantsTwoVCs(t *testing.T) {
	runChecked(t, func(c *Config) {
		c.VCs = 2
		c.Routing = RouteMinAdaptive
	}, 1500, 6)
}

func TestInvariantsWideLinks(t *testing.T) {
	runChecked(t, func(c *Config) { c.LinkBits = 256 }, 1000, 7)
}

func TestInvariantsHighEjectRate(t *testing.T) {
	runChecked(t, func(c *Config) { c.EjectRate = 4 }, 1000, 8)
}
