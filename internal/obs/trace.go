package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Request-scoped distributed tracing across the serving stack (DESIGN.md
// §15): arigate mints a trace for a sampled job and propagates it to the
// replicas via the X-Ari-Trace header; ariserve continues it with spans for
// admission, queue wait and the simulation itself, and links the sampled
// NoC packet lifecycles of that run (Collector) into the same trace. Spans
// from every process merge into one Chrome trace_event timeline, so a slow
// query is explainable end to end: gateway hedges, replica queueing, the
// run, and the packets inside the simulated fabric, all under one trace ID.

// TraceHeader carries the trace context between processes as
// "<trace id>-<span id>", both fixed-width lowercase hex.
const TraceHeader = "X-Ari-Trace"

// Span is one timed operation of a distributed trace. Times are wall-clock
// microseconds (UnixMicro), so spans recorded by different processes on one
// machine share a timeline.
type Span struct {
	// Trace groups the spans of one request; ID identifies this span;
	// Parent is the span this one nests under ("" for the root).
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	// Name is the operation ("gateway.route", "serve.run", "pkt ReadReply").
	Name string `json:"name"`
	// Process names the emitting process ("arigate", "ariserve :8080");
	// the Chrome export renders one process row per distinct value.
	Process string `json:"process"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// Attrs carries small string annotations (replica URL, outcome, packet
	// source/destination).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceContext is the propagated (trace, span) pair: the span is the
// sender's — the receiver parents its own spans under it.
type TraceContext struct {
	Trace string
	Span  string
}

const traceIDLen, spanIDLen = 16, 16 // hex chars (8 random bytes each)

// NewTraceID returns a fresh random trace ID.
func NewTraceID() string { return randHex() }

// NewSpanID returns a fresh random span ID.
func NewSpanID() string { return randHex() }

func randHex() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a broken
		// entropy source degrades tracing, never the simulation.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// String renders the context in X-Ari-Trace form.
func (tc TraceContext) String() string { return tc.Trace + "-" + tc.Span }

// Valid reports whether both halves are present.
func (tc TraceContext) Valid() bool { return tc.Trace != "" && tc.Span != "" }

// ParseTraceContext parses an X-Ari-Trace header value. Malformed values
// (wrong widths, non-hex) report ok=false: a garbage header disables
// tracing for the request instead of corrupting the recorder.
func ParseTraceContext(h string) (tc TraceContext, ok bool) {
	if len(h) != traceIDLen+1+spanIDLen || h[traceIDLen] != '-' {
		return TraceContext{}, false
	}
	trace, span := h[:traceIDLen], h[traceIDLen+1:]
	if !isLowerHex(trace) || !isLowerHex(span) {
		return TraceContext{}, false
	}
	return TraceContext{Trace: trace, Span: span}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StartSpan begins a span now under the given context (parent may be "").
// Finish it with End, then hand it to a SpanRecorder.
func StartSpan(trace, parent, name, process string) Span {
	return Span{
		Trace:   trace,
		ID:      NewSpanID(),
		Parent:  parent,
		Name:    name,
		Process: process,
		StartUS: time.Now().UnixMicro(),
	}
}

// End stamps the span's duration.
func (s *Span) End() { s.DurUS = time.Now().UnixMicro() - s.StartUS }

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// SpanRecorder is a bounded in-memory store of completed spans, safe for
// concurrent use. When full it drops the oldest spans: recent traces are
// the debuggable ones.
type SpanRecorder struct {
	mu    sync.Mutex
	cap   int
	next  int // ring write position once full
	full  bool
	spans []Span
}

// DefaultSpanCap bounds the recorder when the configured capacity is 0.
const DefaultSpanCap = 4096

// NewSpanRecorder returns a recorder keeping up to capacity spans
// (DefaultSpanCap when <= 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRecorder{cap: capacity}
}

// Record stores one completed span.
func (r *SpanRecorder) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		r.spans = append(r.spans, s)
		if len(r.spans) == r.cap {
			r.full = true
		}
		return
	}
	r.spans[r.next] = s
	r.next = (r.next + 1) % r.cap
}

// Len returns the number of stored spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns the stored spans of one trace in recording order (all spans
// when trace is empty).
func (r *SpanRecorder) Spans(trace string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	for i := 0; i < len(r.spans); i++ {
		s := r.spans[(r.next+i)%len(r.spans)]
		if trace == "" || s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// LatestTrace returns the trace ID of the most recently recorded root span
// (a span with no parent), or "" when none is stored. It is the default
// target of the /debug/trace endpoints.
func (r *SpanRecorder) LatestTrace() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.spans) - 1; i >= 0; i-- {
		s := r.spans[(r.next+i)%len(r.spans)]
		if s.Parent == "" {
			return s.Trace
		}
	}
	return ""
}

// PacketSpans converts the completed packet lifecycles of a Collector into
// spans of the given trace, parented under the simulation-run span and
// anchored at its wall-clock start: packet cycles map 1:1 to microseconds
// (the Chrome exporter's existing convention), so the NoC timeline nests
// inside the run's slice of the distributed trace. At most limit packets
// are converted (0 = all) — sampling already bounds the collector, the
// limit bounds the recorder.
func PacketSpans(c *Collector, trace, parent, process string, anchorUS int64, limit int) []Span {
	if c == nil {
		return nil
	}
	done := c.Done()
	if limit > 0 && len(done) > limit {
		done = done[:limit]
	}
	out := make([]Span, 0, len(done))
	for _, p := range done {
		sp := Span{
			Trace:   trace,
			ID:      NewSpanID(),
			Parent:  parent,
			Name:    "pkt " + p.Type.String(),
			Process: process,
			StartUS: anchorUS + p.Enqueued,
			DurUS:   p.Ejected - p.Enqueued,
		}
		last := p.lastSwitch()
		sp.Attrs = map[string]string{
			"net":    c.Label,
			"src":    itoa(p.Src),
			"dst":    itoa(p.Dst),
			"queue":  itoa64(p.Injected - p.Enqueued),
			"net_cy": itoa64(last - p.Injected),
			"eject":  itoa64(p.Ejected - last),
		}
		out = append(out, sp)
	}
	return out
}

func itoa(v int) string { return itoa64(int64(v)) }

func itoa64(v int64) string {
	// strconv would be fine; this avoids the import churn for two helpers.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// WriteSpanTrace exports spans as a Chrome trace_event JSON document (the
// same Object Format WriteChromeTrace emits, validated against the same
// schema fixture): one process row per distinct Span.Process, one thread
// row per span name within it, timestamps normalised to the earliest span.
// Spans from arigate, every ariserve replica, and the NoC packet lifecycles
// of a traced run therefore render as a single merged timeline.
func WriteSpanTrace(w io.Writer, spans []Span) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Deterministic rows: processes sorted by name, threads by first use
	// after sorting spans by (process, start, id).
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Process != sorted[j].Process {
			return sorted[i].Process < sorted[j].Process
		}
		if sorted[i].StartUS != sorted[j].StartUS {
			return sorted[i].StartUS < sorted[j].StartUS
		}
		return sorted[i].ID < sorted[j].ID
	})
	var origin int64
	for i, s := range sorted {
		if i == 0 || s.StartUS < origin {
			origin = s.StartUS
		}
	}

	pids := make(map[string]int)
	type tidKey struct {
		pid  int
		name string
	}
	tids := make(map[tidKey]int)
	nextTID := make(map[int]int)
	for _, s := range sorted {
		pid, ok := pids[s.Process]
		if !ok {
			pid = len(pids)
			pids[s.Process] = pid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": s.Process},
			})
		}
		// Group packet spans onto one row per fabric instead of one per
		// packet type so a traced run reads as a compact band.
		row := s.Name
		if strings.HasPrefix(s.Name, "pkt ") {
			row = "noc packets"
			if net := s.Attrs["net"]; net != "" {
				row = "noc packets (" + net + ")"
			}
		}
		tk := tidKey{pid, row}
		tid, ok := tids[tk]
		if !ok {
			tid = nextTID[pid]
			nextTID[pid] = tid + 1
			tids[tk] = tid
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": row},
			})
		}
		args := map[string]any{"trace": s.Trace, "span": s.ID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		dur := s.DurUS
		if dur < 0 {
			dur = 0
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name:  s.Name,
			Cat:   s.Process,
			Phase: "X",
			TS:    s.StartUS - origin,
			Dur:   dur,
			PID:   pid,
			TID:   tid,
			Args:  args,
		})
	}
	return json.NewEncoder(w).Encode(trace)
}
