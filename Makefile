DATE := $(shell date +%Y%m%d)

.PHONY: check test bench fuzz

# check is the full gate: build everything, vet, and run all tests with the
# race detector (covers the equivalence, golden, property, and race suites).
check:
	go build ./...
	go vet ./...
	go test -race ./...

test:
	go test ./...

# bench records the NoC stepping benchmarks (event-driven vs scan reference)
# and the end-to-end simulator benchmarks into a dated JSON snapshot.
bench:
	go test ./internal/noc . -run '^$$' -bench 'NetworkStep|SimulatorStep' -benchmem \
		| tee /dev/stderr | go run ./cmd/benchjson > BENCH_$(DATE).json

# fuzz replays the committed corpora and then fuzzes each target briefly.
fuzz:
	go test ./internal/core -run FuzzConfigValidate -fuzz FuzzConfigValidate -fuzztime 15s
	go test ./internal/trace -run FuzzKernelValidate -fuzz FuzzKernelValidate -fuzztime 15s
