package noc

import "fmt"

// TraceStage labels one event in a sampled packet's lifecycle, in the order
// the pipeline produces them: the node hands the packet to the NI queue,
// the head flit wins the injection link, then per hop a downstream VC is
// allocated and the head flit traverses the switch, and finally the tail
// flit is consumed at the destination. Together they support the paper's
// Fig. 2/3 latency attribution: NI queueing (enqueue -> inject), network
// transit (inject -> last switch) and ejection (last switch -> eject).
type TraceStage uint8

const (
	// TraceNIEnqueue: the node handed the whole packet to the NI queue.
	TraceNIEnqueue TraceStage = iota
	// TraceInject: the head flit left the NI onto the injection link.
	TraceInject
	// TraceVAGrant: a router allocated a downstream VC to the packet (per hop).
	TraceVAGrant
	// TraceSwitch: the head flit traversed a router's switch (per hop).
	TraceSwitch
	// TraceEject: the tail flit was consumed at the destination.
	TraceEject
)

// String names the stage for diagnostics and trace exports.
func (s TraceStage) String() string {
	switch s {
	case TraceNIEnqueue:
		return "ni_enqueue"
	case TraceInject:
		return "inject"
	case TraceVAGrant:
		return "va_grant"
	case TraceSwitch:
		return "switch"
	case TraceEject:
		return "eject"
	default:
		return fmt.Sprintf("TraceStage(%d)", uint8(s))
	}
}

// Tracer receives lifecycle events for sampled packets. Implementations are
// called synchronously from inside Network.Step, so they must not block and
// must not touch the network; they only record. Events for one packet arrive
// in pipeline order; events for different packets interleave.
type Tracer interface {
	PacketEvent(pktID uint64, t PacketType, src, dst, node int, stage TraceStage, cycle int64)
}

// SetTracer installs tr and samples every sampleEvery-th packet by ID
// (1 traces every packet; 0 or a nil tracer disables tracing). Tracing is
// observation only: it never alters routing, allocation or timing, so a
// traced run's Result is bit-identical to an untraced one. The hot-path
// cost with tracing disabled is a nil check on head-flit events.
// Tracing is incompatible with sharded stepping: tracer callbacks fire
// synchronously from whichever shard worker handles the packet, and the
// Tracer interface is not required to be concurrency-safe (SetShards
// refuses k > 1 while a tracer is installed, and vice versa).
func (n *Network) SetTracer(tr Tracer, sampleEvery uint64) {
	if tr == nil || sampleEvery == 0 {
		n.tracer = nil
		n.traceEvery = 0
		return
	}
	if n.sharded {
		panic("noc: SetTracer on a network with sharded stepping enabled")
	}
	n.tracer = tr
	n.traceEvery = sampleEvery
}
