package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real JobKeys: hex-ish, high entropy via hash64 input.
		keys[i] = fmt.Sprintf("job-%06d", i)
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, err := NewRing(reps, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A "restarted" gateway handed the same replica set in a different order
	// must compute identical routing.
	r2, err := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		o1 := r1.Owners(k, 2)
		o2 := r2.Owners(k, 2)
		if len(o1) != 2 || len(o2) != 2 {
			t.Fatalf("key %s: owners %v / %v", k, o1, o2)
		}
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("key %s: placement differs across construction order: %v vs %v", k, o1, o2)
		}
		if o1[0] == o1[1] {
			t.Fatalf("key %s: duplicate owner %v", k, o1)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate replica accepted")
	}
}

func TestRingMinimalMovementOnLeave(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full, err := NewRing(reps, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := "http://c:3"
	survivors := []string{"http://a:1", "http://b:2", "http://d:4"}
	smaller, err := NewRing(survivors, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}

	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		before := full.Owners(k, 1)[0]
		after := smaller.Owners(k, 1)[0]
		if before != removed {
			// The strict consistent-hashing property: keys not owned by the
			// departed replica must not move between survivors.
			if after != before {
				t.Fatalf("key %s moved %s -> %s though %s left", k, before, after, removed)
			}
			continue
		}
		moved++
	}
	// The departed primary owned ~1/N of the keys; allow 2/N slack.
	if limit := 2 * len(keys) / len(reps); moved > limit {
		t.Fatalf("%d/%d keys moved on leave, want <= %d (~1/N)", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatal("no keys owned by the departed replica? ring is degenerate")
	}
}

func TestRingUniformLoad(t *testing.T) {
	reps := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(reps, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int, len(reps))
	keys := testKeys(10000)
	for _, k := range keys {
		counts[r.Owners(k, 1)[0]]++
	}
	mean := float64(len(keys)) / float64(len(reps))
	for rep, n := range counts {
		dev := (float64(n) - mean) / mean
		if dev < -0.10 || dev > 0.10 {
			t.Fatalf("replica %s holds %d keys, %.1f%% off the mean %.0f (want within 10%%)",
				rep, n, 100*dev, mean)
		}
	}
	if len(counts) != len(reps) {
		t.Fatalf("only %d/%d replicas received keys", len(counts), len(reps))
	}
}

func TestOwnersClamp(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("owners(5) over 2 replicas = %v", got)
	}
	if got := r.Owners("k", 0); len(got) != 0 {
		t.Fatalf("owners(0) = %v", got)
	}
}

// BenchmarkGateRoute is the gateway's per-submission routing hot path:
// hash the key, find its owners. Registered in the benchdiff gate.
func BenchmarkGateRoute(b *testing.B) {
	reps := make([]string, 8)
	for i := range reps {
		reps[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	r, err := NewRing(reps, DefaultVnodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	buf := make([]string, 0, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.OwnersAppend(buf[:0], keys[i&1023], 2)
	}
	if len(buf) != 2 {
		b.Fatal("routing returned no owners")
	}
}
