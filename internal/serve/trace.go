package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
)

// Distributed tracing on the replica (DESIGN.md §15). A submission arriving
// with an X-Ari-Trace context — minted by arigate or by the client — is
// continued here: a serve.job span brackets the whole request, with child
// spans for admission, queue wait, the peer fetch, and the simulation run.
// The run span additionally links the run's sampled NoC packet lifecycles
// (obs.Collector via the runner's InstrumentJob seam) into the same trace,
// anchored at the run span's wall-clock start with 1 cycle = 1 µs, so the
// gateway, the replica and the simulated fabric share one timeline.
//
// Tracing observes and never steers: collectors attach through the same
// read-only tracer hooks the figure pipeline uses, so a traced run's Result
// stays byte-identical to an untraced one (locked by TestTracedRunByteIdentical).

// jobTrace carries one traced submission through handleJobs. A nil *jobTrace
// (untraced request) is valid and makes every method a no-op, so the handler
// calls trace hooks unconditionally.
type jobTrace struct {
	s    *Server
	job  obs.Span
	done bool
}

// startJobTrace decides one submission's tracing fate: continue a valid
// incoming context, else mint a trace for 1 in TraceSample submissions.
// The serve.job span's context is echoed on the response so callers —
// including curl — learn the trace ID to pull from /debug/trace.
func (s *Server) startJobTrace(w http.ResponseWriter, r *http.Request) *jobTrace {
	tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	if !ok {
		if s.traceSample <= 0 {
			return nil
		}
		if n := s.traceSeq.Add(1); (n-1)%int64(s.traceSample) != 0 {
			return nil
		}
		tc = obs.TraceContext{Trace: obs.NewTraceID()}
	}
	jt := &jobTrace{s: s}
	jt.job = obs.StartSpan(tc.Trace, tc.Span, "serve.job", s.process)
	w.Header().Set(obs.TraceHeader, obs.TraceContext{Trace: jt.job.Trace, Span: jt.job.ID}.String())
	return jt
}

// active reports whether this request is being traced.
func (jt *jobTrace) active() bool { return jt != nil }

// setAttr annotates the serve.job span.
func (jt *jobTrace) setAttr(k, v string) {
	if jt != nil {
		jt.job.SetAttr(k, v)
	}
}

// child starts a span nested under the serve.job span; close it with
// endChild. The zero Span returned when untraced is safe to pass back.
func (jt *jobTrace) child(name string) obs.Span {
	if jt == nil {
		return obs.Span{}
	}
	return obs.StartSpan(jt.job.Trace, jt.job.ID, name, jt.s.process)
}

// endChild stamps and records a child span with optional attr pairs.
func (jt *jobTrace) endChild(sp obs.Span, attrs ...string) {
	if jt == nil || sp.Trace == "" {
		return
	}
	sp.End()
	for i := 0; i+1 < len(attrs); i += 2 {
		sp.SetAttr(attrs[i], attrs[i+1])
	}
	jt.s.spans.Record(sp)
}

// event records an instantaneous child span (journal hits take no time worth
// timing, but the trace should still show where the answer came from).
func (jt *jobTrace) event(name string) {
	if jt == nil {
		return
	}
	sp := obs.StartSpan(jt.job.Trace, jt.job.ID, name, jt.s.process)
	jt.s.spans.Record(sp)
}

// finish closes and records the serve.job span exactly once. The handler
// defers finish("abandoned") and calls finish(outcome) on every answer path;
// the first call wins.
func (jt *jobTrace) finish(outcome string) {
	if jt == nil || jt.done {
		return
	}
	jt.done = true
	jt.job.End()
	jt.job.SetAttr("outcome", outcome)
	jt.s.spans.Record(jt.job)
}

// tracedRun is the rendezvous between a traced request and the simulator the
// runner builds for it: handleJobs registers it under the job key before
// running, the runner's InstrumentJob hook attaches packet collectors to the
// matching simulator, and handleJobs harvests the collected lifecycles as
// spans afterwards.
type tracedRun struct {
	trace, parent, process string
	startUS                int64
	limit                  int

	mu       sync.Mutex
	attached bool
	req, rep *obs.Collector
}

// registerTraced claims the job key for this traced run. Concurrent traced
// duplicates of one key keep their request spans but only the first link
// packets — the runner builds one simulator per key anyway.
func (s *Server) registerTraced(key string, tr *tracedRun) bool {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if _, busy := s.traced[key]; busy {
		return false
	}
	s.traced[key] = tr
	return true
}

func (s *Server) unregisterTraced(key string) {
	s.traceMu.Lock()
	delete(s.traced, key)
	s.traceMu.Unlock()
}

// instrumentJob is installed on the runner's InstrumentJob seam: when the
// freshly built simulator belongs to a registered traced run, attach packet
// collectors (read-only tracer hooks — simulated behaviour is unchanged).
func (s *Server) instrumentJob(j exp.Job, sim *core.Simulator) {
	key := exp.JobKey(j.Cfg, j.Kernel.Name)
	s.traceMu.Lock()
	tr := s.traced[key]
	s.traceMu.Unlock()
	if tr == nil || tr.limit <= 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.attached {
		return
	}
	tr.attached = true
	tr.req, tr.rep = obs.AttachTracers(sim, uint64(s.packetSample))
}

// packetSpans converts the harvested collectors into spans under the run
// span (nil when the run never attached — cache hit raced us, or the run
// failed before building a simulator).
func (tr *tracedRun) packetSpans() []obs.Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.attached {
		return nil
	}
	out := obs.PacketSpans(tr.rep, tr.trace, tr.parent, tr.process, tr.startUS, tr.limit)
	return append(out, obs.PacketSpans(tr.req, tr.trace, tr.parent, tr.process, tr.startUS, tr.limit)...)
}

// handleSpans serves this replica's recorded spans as JSON (?trace=<id>
// filters to one trace). The gateway's /debug/trace merges these across the
// cluster.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.spans.Spans(r.URL.Query().Get("trace")))
}

// handleTrace renders one locally recorded trace (?trace=<id>, default the
// latest root) as a Chrome trace_event document.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	trace := r.URL.Query().Get("trace")
	if trace == "" {
		trace = s.spans.LatestTrace()
	}
	spans := s.spans.Spans(trace)
	if trace == "" || len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace not found; enable sampling with -trace-sample"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteSpanTrace(w, spans)
}

// handleSLO serves the server's SLO report as JSON.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// answered folds one successfully answered submission (any 2xx path) into
// the latency histogram and the SLO tracker.
func (s *Server) answered(start time.Time) {
	d := time.Since(start)
	s.jobHist.ObserveDuration(d)
	s.slo.Observe(d.Microseconds())
}
