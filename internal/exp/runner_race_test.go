package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRunnerProgressConcurrent drives the worker pool with a shared
// Progress writer. bytes.Buffer is not safe for concurrent use, so this
// test run under -race (make check does) pins the regression where
// progress writes escaped the runner's mutex; the line count additionally
// checks no write was lost to interleaving.
func TestRunnerProgressConcurrent(t *testing.T) {
	r := NewRunner()
	r.Workers = 4
	r.Base.WarmupCycles = 100
	r.Base.MeasureCycles = 200
	// Sweep the NoC invariant checker through the concurrent runs too, so
	// the race suite doubles as a consistency soak.
	r.Checks.InvariantEvery = 64
	var buf bytes.Buffer
	r.Progress = &buf

	var jobs []Job
	for _, k := range r.Benchmarks[:4] {
		for _, s := range []core.Scheme{core.XYBaseline, core.AdaARI} {
			cfg := r.Base
			cfg.Scheme = s
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	if _, err := r.RunAll(jobs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(jobs) {
		t.Fatalf("progress reported %d runs, want %d", got, len(jobs))
	}
}
