package noc

import "sort"

// IdealFabric is a reply network with unlimited bandwidth: every offered
// packet is accepted immediately and delivered after its minimal hop
// latency, with no serialisation or contention anywhere. The paper uses
// exactly this abstraction to measure the *ideal packet injection rate* of
// eq. (1) — the rate an MC would inject at if the consumption side were
// perfect (§4.2) — which then sizes the crossbar speedup.
type IdealFabric struct {
	cfg   Config
	now   int64
	stats NetStats

	inflight     []overlayArrival
	inFlight     int
	nextPktID    uint64
	ejectHandler func(node int, pkt *Packet, now int64)

	// Per-node injection counts per 100-cycle window, for the eq. (1)
	// peak-rate measurement.
	windowCount []uint32
	windowStart int64
	Windows     [][]uint32 // [node][window]

	pool pktPool
}

var _ Fabric = (*IdealFabric)(nil)

// NewIdealFabric builds an unlimited-bandwidth fabric over cfg's mesh.
func NewIdealFabric(cfg Config) (*IdealFabric, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	nodes := cfg.Mesh.Nodes()
	return &IdealFabric{
		cfg:         cfg,
		windowCount: make([]uint32, nodes),
		Windows:     make([][]uint32, nodes),
	}, nil
}

// Now returns the current cycle.
func (f *IdealFabric) Now() int64 { return f.now }

// SetEjectHandler installs the delivery callback.
func (f *IdealFabric) SetEjectHandler(h func(node int, pkt *Packet, now int64)) {
	f.ejectHandler = h
}

// InFlight returns packets accepted but not yet delivered.
func (f *IdealFabric) InFlight() int { return f.inFlight }

// Stats returns the fabric statistics.
func (f *IdealFabric) Stats() *NetStats { return &f.stats }

// ResetStats clears measurement counters.
func (f *IdealFabric) ResetStats() {
	f.stats = NetStats{}
	for i := range f.Windows {
		f.Windows[i] = f.Windows[i][:0]
		f.windowCount[i] = 0
	}
	f.windowStart = f.now
}

// CanInject always reports true: consumption is perfect.
func (f *IdealFabric) CanInject(node int, pkt *Packet) bool { return true }

// Inject accepts the packet unconditionally.
func (f *IdealFabric) Inject(node int, pkt *Packet) bool {
	pkt.Src = node
	if pkt.ID == 0 {
		f.nextPktID++
		pkt.ID = f.nextPktID
	}
	pkt.CreatedAt = f.now
	pkt.InjectedAt = f.now
	hops := f.cfg.Mesh.Hops(node, pkt.Dst)
	f.inflight = append(f.inflight, overlayArrival{
		pkt:      pkt,
		arriveAt: f.now + int64(hops) + int64(pkt.Size),
	})
	f.inFlight++
	f.windowCount[node]++
	f.stats.PacketsInjected[pkt.Type]++
	f.stats.FlitsInjected[pkt.Type] += uint64(pkt.Size)
	return true
}

// Step advances one cycle, delivering due packets.
func (f *IdealFabric) Step() {
	kept := f.inflight[:0]
	var due []overlayArrival
	for _, a := range f.inflight {
		if a.arriveAt <= f.now {
			due = append(due, a)
		} else {
			kept = append(kept, a)
		}
	}
	f.inflight = kept
	sort.Slice(due, func(i, j int) bool { return due[i].pkt.ID < due[j].pkt.ID })
	for _, a := range due {
		f.stats.recordEject(a.pkt, f.now)
		f.inFlight--
		if f.ejectHandler != nil {
			f.ejectHandler(a.pkt.Dst, a.pkt, f.now)
		}
	}
	f.now++
	f.stats.Cycles++
	if f.now-f.windowStart >= 100 {
		for n := range f.windowCount {
			f.Windows[n] = append(f.Windows[n], f.windowCount[n])
			f.windowCount[n] = 0
		}
		f.windowStart = f.now
	}
}

// GetPacket returns a zeroed packet from the fabric's freelist.
func (f *IdealFabric) GetPacket() *Packet { return f.pool.get() }

// PutPacket recycles a delivered packet into the freelist.
func (f *IdealFabric) PutPacket(p *Packet) { f.pool.put(p) }

// PeakWindow returns the p-th percentile (0..100) of per-100-cycle packet
// injection counts of the given node.
func (f *IdealFabric) PeakWindow(node int, p float64) float64 {
	ws := f.Windows[node]
	if len(ws) == 0 {
		return 0
	}
	sorted := make([]uint32, len(ws))
	copy(sorted, ws)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return float64(sorted[idx])
}
