package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromWriterShapes(t *testing.T) {
	var p PromWriter
	p.Metric("ari_up", "Server is up.", "gauge", 1)
	p.Family("ari_routed_total", "Requests routed per replica.", "counter")
	p.Sample("ari_routed_total", fmt.Sprintf("replica=%q", "http://a:1"), 3)
	p.Sample("ari_routed_total", "", 7)

	got := p.String()
	for _, want := range []string{
		"# HELP ari_up Server is up.\n# TYPE ari_up gauge\nari_up 1\n",
		"# HELP ari_routed_total Requests routed per replica.\n# TYPE ari_routed_total counter\n",
		"ari_routed_total{replica=\"http://a:1\"} 3\n",
		"\nari_routed_total 7\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestPromWriterServeText(t *testing.T) {
	var p PromWriter
	p.Metric("x_total", "X.", "counter", 2)
	rec := httptest.NewRecorder()
	p.ServeText(rec)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 2") {
		t.Fatalf("body = %q", rec.Body.String())
	}
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Fatal("Bool mapping wrong")
	}
}
