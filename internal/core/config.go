// Package core assembles the full simulated GPGPU of the ARI paper: SIMT
// compute nodes and memory-controller nodes on a shared 2D mesh, connected
// by separate request and reply networks, with the evaluated injection
// schemes (enhanced baseline, ARI, MultiPort, DA2mesh) wired per Table I.
package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Scheme identifies one evaluated configuration (paper §6.2 and Fig 10's
// ablations).
type Scheme int

const (
	// XYBaseline: XY routing with the enhanced baseline NI (§4.1).
	XYBaseline Scheme = iota
	// XYARI: XY routing with the full ARI design.
	XYARI
	// AdaBaseline: minimal adaptive routing, enhanced baseline NI.
	AdaBaseline
	// AdaMultiPort: adaptive routing with the MultiPort scheme [3].
	AdaMultiPort
	// AdaARI: adaptive routing with the full ARI design.
	AdaARI
	// AccSupply: ARI's supply acceleration only (split NI, no speedup,
	// no priority) — Fig 10.
	AccSupply
	// AccConsume: ARI's consumption acceleration only (baseline NI,
	// injection-port speedup) — Fig 10.
	AccConsume
	// AccBothNoPriority: supply + consumption without prioritisation.
	AccBothNoPriority
	// DA2MeshBase: reply network replaced by the DA2mesh overlay [20].
	DA2MeshBase
	// DA2MeshARI: DA2mesh overlay with ARI's NI architecture on top.
	DA2MeshARI
	numSchemes
)

// NumSchemes is the number of defined schemes.
const NumSchemes = int(numSchemes)

// String returns the paper's label for the scheme.
func (s Scheme) String() string {
	switch s {
	case XYBaseline:
		return "XY-Baseline"
	case XYARI:
		return "XY-ARI"
	case AdaBaseline:
		return "Ada-Baseline"
	case AdaMultiPort:
		return "Ada-MultiPort"
	case AdaARI:
		return "Ada-ARI"
	case AccSupply:
		return "Acc-Supply"
	case AccConsume:
		return "Acc-Consume"
	case AccBothNoPriority:
		return "Acc-Both-NoPriority"
	case DA2MeshBase:
		return "DA2Mesh"
	case DA2MeshARI:
		return "DA2Mesh+ARI"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme resolves a paper label (e.g. "Ada-ARI") to its Scheme.
func ParseScheme(s string) (Scheme, error) {
	for sch := Scheme(0); sch < numSchemes; sch++ {
		if sch.String() == s {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", s)
}

// Routing returns the routing algorithm the scheme uses.
func (s Scheme) Routing() noc.RoutingAlgo {
	switch s {
	case XYBaseline, XYARI:
		return noc.RouteXY
	default:
		return noc.RouteMinAdaptive
	}
}

// usesOverlay reports whether the reply fabric is the DA2mesh overlay.
func (s Scheme) usesOverlay() bool { return s == DA2MeshBase || s == DA2MeshARI }

// UsesOverlay reports whether the reply fabric is the DA2mesh overlay. It is
// the exported face of the scheme seam for layers that model rather than
// build the system (internal/analytic).
func (s Scheme) UsesOverlay() bool { return s.usesOverlay() }

// HasSplitNI reports whether the scheme accelerates injection supply with
// ARI's per-VC split NI queues.
func (s Scheme) HasSplitNI() bool { return s.hasSplitNI() }

// HasSpeedup reports whether the scheme accelerates injection consumption
// with crossbar speedup (§4.2).
func (s Scheme) HasSpeedup() bool { return s.hasSpeedup() }

// HasPriority reports whether the scheme uses ARI's multi-level injection
// prioritisation (§5).
func (s Scheme) HasPriority() bool { return s.hasPriority() }

// IsMultiPort reports whether the scheme is the MultiPort baseline [3].
func (s Scheme) IsMultiPort() bool { return s.isMultiPort() }

// hasSplitNI reports whether the scheme accelerates injection supply.
func (s Scheme) hasSplitNI() bool {
	switch s {
	case XYARI, AdaARI, AccSupply, AccBothNoPriority, DA2MeshARI:
		return true
	}
	return false
}

// hasSpeedup reports whether the scheme accelerates injection consumption.
func (s Scheme) hasSpeedup() bool {
	switch s {
	case XYARI, AdaARI, AccConsume, AccBothNoPriority, DA2MeshARI:
		return true
	}
	return false
}

// hasPriority reports whether the scheme uses ARI prioritisation (§5).
func (s Scheme) hasPriority() bool {
	switch s {
	case XYARI, AdaARI, DA2MeshARI:
		return true
	}
	return false
}

// isMultiPort reports whether the scheme is the MultiPort baseline [3].
func (s Scheme) isMultiPort() bool { return s == AdaMultiPort }

// Config is the full-system configuration; DefaultConfig matches Table I.
type Config struct {
	MeshWidth  int
	MeshHeight int
	NumMC      int

	VCs         int
	ReqLinkBits int
	RepLinkBits int
	DataBytes   int

	Scheme Scheme
	// PriorityLevels used when the scheme has priority (Fig 9 varies it).
	PriorityLevels int
	// InjSpeedup for speedup-enabled schemes; 0 selects the paper's choice
	// of 4 (bound of eq. 2 on a mesh).
	InjSpeedup int
	// StarvationLimit is the §5 anti-starvation threshold in cycles
	// (0 = the paper's 1k).
	StarvationLimit int64
	// IdealReply replaces the reply network with an unlimited-bandwidth
	// fabric — the paper's instrument for measuring the ideal packet
	// injection rate that sizes the crossbar speedup (eq. 1, §4.2).
	IdealReply bool
	// EdgeMCPlacement switches from the paper's diamond placement [1] to a
	// naive perimeter clustering (placement ablation; Table I's baseline
	// uses diamond).
	EdgeMCPlacement bool
	// UnenhancedBaseline reverts §4.1's enhancement: MC nodes whose scheme
	// leaves them on the baseline NI get the original narrow MC->NI link
	// (a packet occupies it for Size cycles). Quantifies why the paper
	// evaluates against the enhanced baseline.
	UnenhancedBaseline bool
	// MultiPortPorts is the injection-port count of the MultiPort scheme.
	MultiPortPorts int

	// NIQueueFlits sizes the reply-side NI injection queues; 0 = 4 long
	// packets (Table I: 36 flits at 128-bit links).
	NIQueueFlits int
	EjectRate    int

	// RetransBufPkts enables the NoC fault-recovery protocol layer (CRC
	// detection, NACK/ACK sideband, bounded retransmission — noc/recovery.go)
	// on both mesh networks, sized to this many unacknowledged packets per
	// NI. 0 leaves recovery off unless Fault.CorruptProb > 0, in which case
	// it defaults to 8 — corruption without recovery would deliver silently
	// wrong packets, which the fault injector refuses.
	RetransBufPkts int

	Core gpu.Config
	MC   mem.MCConfig

	// Clock ratios relative to the 1 GHz NoC clock (Table I).
	CoreClockNum, CoreClockDen uint64
	MemClockNum, MemClockDen   uint64

	Seed          uint64
	WarmupCycles  int64
	MeasureCycles int64

	// Fault configures deterministic, seeded NoC fault injection (transient
	// link stalls, input-port freezes, NI backpressure bursts — see
	// internal/fault). Fault.Seed 0 inherits Seed. Faults apply to the mesh
	// networks; schemes whose reply fabric is the DA2mesh overlay or the
	// ideal fabric get request-side faults only.
	Fault fault.Config

	// NoCCheckEvery, when positive, runs noc.CheckInvariants on both mesh
	// networks every N cycles from inside their Step, panicking on the
	// first violation. Opt-in self-check for test suites and soaks; see
	// also CheckOptions.InvariantEvery for the error-returning variant.
	NoCCheckEvery int64

	// ScanStep forces the scan-everything stepping loops in both networks,
	// the cores and the MCs. The default event-driven stepping is
	// bit-identical (internal/simeq proves it); the flag keeps the reference
	// path alive for those differential tests.
	ScanStep bool

	// Shards selects deterministic intra-run parallelism: the mesh (and the
	// node logic on it) is partitioned into this many row-contiguous shards
	// stepped on a shared worker pool, with results byte-identical to serial
	// stepping (internal/simeq proves it). 0 or 1 is serial; values above
	// the mesh height are clamped (noc.EffectiveShards). Sharding composes
	// with ScanStep and fault injection but not with packet tracing.
	Shards int
}

// DefaultConfig returns the Table I configuration: 6x6 mesh, 28 compute
// nodes + 8 MCs (diamond placement), 4 VCs x 1 packet, 128-bit links,
// 1126 MHz cores / 1 GHz NoC / 1.75 GHz GDDR5.
func DefaultConfig() Config {
	return Config{
		MeshWidth:      6,
		MeshHeight:     6,
		NumMC:          8,
		VCs:            4,
		ReqLinkBits:    128,
		RepLinkBits:    128,
		DataBytes:      128,
		Scheme:         XYBaseline,
		PriorityLevels: 2,
		InjSpeedup:     4,
		MultiPortPorts: 2,
		EjectRate:      1,
		Core:           gpu.DefaultConfig(),
		MC:             mem.DefaultMCConfig(),
		CoreClockNum:   1126,
		CoreClockDen:   1000,
		MemClockNum:    1750,
		MemClockDen:    1000,
		Seed:           1,
		WarmupCycles:   4000,
		MeasureCycles:  20000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MeshWidth <= 0 || c.MeshHeight <= 0 {
		return fmt.Errorf("core: invalid mesh %dx%d", c.MeshWidth, c.MeshHeight)
	}
	// Bound the dimensions so nodes = W*H cannot overflow int (and absurd
	// meshes fail fast instead of exhausting memory).
	const maxMeshDim = 4096
	if c.MeshWidth > maxMeshDim || c.MeshHeight > maxMeshDim {
		return fmt.Errorf("core: mesh %dx%d exceeds the %d-per-side limit",
			c.MeshWidth, c.MeshHeight, maxMeshDim)
	}
	nodes := c.MeshWidth * c.MeshHeight
	if c.NumMC <= 0 || c.NumMC >= nodes {
		return fmt.Errorf("core: NumMC %d must be in (0, %d)", c.NumMC, nodes)
	}
	if c.Scheme < 0 || int(c.Scheme) >= NumSchemes {
		return fmt.Errorf("core: unknown scheme %d", c.Scheme)
	}
	if c.CoreClockNum == 0 || c.CoreClockDen == 0 || c.MemClockNum == 0 || c.MemClockDen == 0 {
		return fmt.Errorf("core: clock ratios must be positive")
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("core: invalid horizon warmup=%d measure=%d", c.WarmupCycles, c.MeasureCycles)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: Shards %d must be >= 0", c.Shards)
	}
	if c.RetransBufPkts < 0 {
		return fmt.Errorf("core: RetransBufPkts %d must be >= 0", c.RetransBufPkts)
	}
	if c.Fault.Enabled {
		if _, err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	return c.Core.Validate()
}

// ChooseSpeedup implements the paper's speedup sizing (§4.2): the minimal
// integer S satisfying eq. (1) S >= injRate x avgFlitsPerPkt, clamped by
// eq. (2) S <= min(nOut, nVC).
func ChooseSpeedup(pktInjRatePerCycle, avgFlitsPerPkt float64, nOut, nVC int) int {
	need := pktInjRatePerCycle * avgFlitsPerPkt
	s := int(need)
	if float64(s) < need {
		s++
	}
	if s < 1 {
		s = 1
	}
	bound := nOut
	if nVC < bound {
		bound = nVC
	}
	if s > bound {
		s = bound
	}
	return s
}
