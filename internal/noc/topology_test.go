package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshCoordRoundTripQuick(t *testing.T) {
	m := Mesh{Width: 6, Height: 6}
	f := func(id uint8) bool {
		n := int(id) % m.Nodes()
		x, y := m.Coord(n)
		return m.Valid(x, y) && m.ID(x, y) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	m := Mesh{Width: 5, Height: 4}
	for id := 0; id < m.Nodes(); id++ {
		for d := Direction(0); d < Direction(NumDirections); d++ {
			nb := m.Neighbor(id, d)
			if nb < 0 {
				continue
			}
			back := m.Neighbor(nb, d.opposite())
			if back != id {
				t.Fatalf("neighbor(%d,%v)=%d but reverse gives %d", id, d, nb, back)
			}
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	m := Mesh{Width: 4, Height: 4}
	if m.Neighbor(0, North) != -1 || m.Neighbor(0, West) != -1 {
		t.Fatal("corner node has phantom neighbours")
	}
	if m.Neighbor(0, East) != 1 || m.Neighbor(0, South) != 4 {
		t.Fatal("corner neighbours wrong")
	}
}

func TestHops(t *testing.T) {
	m := Mesh{Width: 6, Height: 6}
	if h := m.Hops(0, m.ID(5, 5)); h != 10 {
		t.Fatalf("corner-to-corner hops = %d, want 10", h)
	}
	if h := m.Hops(7, 7); h != 0 {
		t.Fatalf("self hops = %d", h)
	}
}

func TestBisectionLinks(t *testing.T) {
	// Paper §3: a 6x6 mesh has 12 unidirectional links in its bisection.
	m := Mesh{Width: 6, Height: 6}
	if got := m.BisectionLinks(); got != 12 {
		t.Fatalf("bisection links = %d, want 12", got)
	}
}

func TestBisectionBandwidthAnalysis(t *testing.T) {
	// Reproduce the paper's §3 arithmetic: 128-bit links at 1 GHz give a
	// 192 GB/s bisection, above the 179.2 GB/s (80% of 224 GB/s aggregate
	// MC bandwidth) rule of thumb — so the links are NOT the bottleneck.
	m := Mesh{Width: 6, Height: 6}
	linkGBs := 128.0 / 8.0 // 16 GB/s per link at 1 GHz
	bisection := float64(m.BisectionLinks()) * linkGBs
	if bisection != 192 {
		t.Fatalf("bisection bandwidth = %v GB/s, want 192", bisection)
	}
	mcGBs := 1.75 * 4 * 4 // 1.75 GHz x 32 pins x QDR / 8 bits = 28 GB/s
	if mcGBs != 28 {
		t.Fatalf("per-MC bandwidth = %v GB/s, want 28", mcGBs)
	}
	needed := 8 * mcGBs * 0.8
	if bisection <= needed {
		t.Fatalf("bisection %v must exceed needed %v", bisection, needed)
	}
}

func TestDiamondPlacement6x6(t *testing.T) {
	m := Mesh{Width: 6, Height: 6}
	mcs := DiamondMCPlacement(m, 8)
	if len(mcs) != 8 {
		t.Fatalf("placement returned %d MCs", len(mcs))
	}
	seen := map[int]bool{}
	rows := map[int]int{}
	cols := map[int]int{}
	for _, id := range mcs {
		if id < 0 || id >= m.Nodes() || seen[id] {
			t.Fatalf("bad or duplicate MC node %d", id)
		}
		seen[id] = true
		x, y := m.Coord(id)
		rows[y]++
		cols[x]++
	}
	// Diamond spread: no row or column may cluster more than 2 MCs.
	for r, c := range rows {
		if c > 2 {
			t.Fatalf("row %d holds %d MCs (clustered)", r, c)
		}
	}
	for cl, c := range cols {
		if c > 2 {
			t.Fatalf("column %d holds %d MCs (clustered)", cl, c)
		}
	}
	// Point symmetry about the mesh centre (the diamond property we rely
	// on for balanced reply corridors).
	for _, id := range mcs {
		x, y := m.Coord(id)
		if !seen[m.ID(5-x, 5-y)] {
			t.Fatalf("placement not point-symmetric: (%d,%d) has no mirror", x, y)
		}
	}
}

func TestDiamondPlacementOtherSizes(t *testing.T) {
	for _, c := range []struct {
		w, h, mc int
	}{
		{8, 8, 8},
		{4, 4, 4},
		{5, 5, 6}, // falls back to even edge spread
	} {
		m := Mesh{Width: c.w, Height: c.h}
		mcs := DiamondMCPlacement(m, c.mc)
		if len(mcs) != c.mc {
			t.Fatalf("%dx%d/%d: got %d MCs", c.w, c.h, c.mc, len(mcs))
		}
		seen := map[int]bool{}
		for _, id := range mcs {
			if id < 0 || id >= m.Nodes() || seen[id] {
				t.Fatalf("%dx%d/%d: bad or duplicate MC %d", c.w, c.h, c.mc, id)
			}
			seen[id] = true
		}
	}
}

func TestEvenEdgePlacementOnPerimeter(t *testing.T) {
	m := Mesh{Width: 5, Height: 5}
	for _, id := range evenEdgePlacement(m, 8) {
		x, y := m.Coord(id)
		if x != 0 && x != 4 && y != 0 && y != 4 {
			t.Fatalf("MC %d at (%d,%d) not on perimeter", id, x, y)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if North.String() != "N" || East.String() != "E" || South.String() != "S" || West.String() != "W" {
		t.Fatal("direction names wrong")
	}
	for d := Direction(0); d < Direction(NumDirections); d++ {
		if d.opposite().opposite() != d {
			t.Fatalf("opposite not involutive for %v", d)
		}
	}
}
