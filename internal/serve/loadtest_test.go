// Overload and drain suites (make loadtest): shed requests answer 429 with
// Retry-After, the retrying client completes every job despite shedding,
// graceful drain finishes in-flight work, the drain deadline aborts
// stragglers, and the goroutine count returns to baseline afterwards.
package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
)

// testRunner returns a short-horizon Runner for serving tests.
func testRunner(t *testing.T) *exp.Runner {
	t.Helper()
	r := exp.NewRunner()
	r.Base.WarmupCycles = 200
	r.Base.MeasureCycles = 600
	return r
}

// startServer builds a Server and an httptest listener around it.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// pollUntil retries cond for up to d.
func pollUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// goroutineBaseline asserts the goroutine count settles back to (near) base.
func goroutineBaseline(t *testing.T, base int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	pollUntil(t, 5*time.Second, "goroutine count to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+3
	})
}

func TestOverloadShedsWith429AndRetryAfter(t *testing.T) {
	base := runtime.NumGoroutine()
	r := testRunner(t)
	r.Base.MeasureCycles = 1 << 40 // every admitted run blocks until aborted
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1, QueueDepth: -1})

	// Occupy the single slot with a job that cannot finish.
	blockedDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"bench":"bfs"}`))
		if err != nil {
			blockedDone <- -1
			return
		}
		resp.Body.Close()
		blockedDone <- resp.StatusCode
	}()
	pollUntil(t, 5*time.Second, "the blocking job to be admitted", func() bool {
		return s.Stats().Admitted == 1
	})

	// The queue is full: the next distinct submission must be shed.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"b+tree"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission = %v, want 429", resp.Status)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", ra)
	}
	if st := s.Stats(); st.Shed < 1 {
		t.Fatalf("stats.Shed = %d, want >= 1", st.Shed)
	}

	// Drain with a deadline the blocked job cannot meet: it is aborted, the
	// request answers retryably, and nothing leaks.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded (straggler aborted)", err)
	}
	if code := <-blockedDone; code != http.StatusServiceUnavailable {
		t.Fatalf("aborted in-flight job answered %d, want 503", code)
	}
	if st := s.Stats(); st.Admitted != 0 {
		t.Fatalf("admitted = %d after abort, want 0", st.Admitted)
	}
	ts.Close()
	goroutineBaseline(t, base)
}

func TestClientBackoffCompletesAllJobsUnderOverload(t *testing.T) {
	base := runtime.NumGoroutine()
	r := testRunner(t)
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1, QueueDepth: -1})

	// Six distinct jobs race for one execution slot and zero queue slots:
	// most first attempts are shed; the client's backoff must land them all.
	cli := &client.Client{
		BaseURL:     ts.URL,
		MaxRetries:  200,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
	benches := []string{"bfs", "b+tree", "lavaMD", "srad", "nn", "lud"}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(benches))
	resps := make([]serve.JobResponse, len(benches))
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			resps[i], errs[i] = cli.Submit(ctx, serve.JobRequest{Bench: b})
		}(i, b)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %s failed through backoff: %v", benches[i], err)
		}
		if resps[i].Result.Benchmark != benches[i] {
			t.Fatalf("job %s got result for %s", benches[i], resps[i].Result.Benchmark)
		}
	}
	if st := s.Stats(); st.Completed != int64(len(benches)) {
		t.Fatalf("completed = %d, want %d", st.Completed, len(benches))
	}

	// Clean drain: nothing in flight, Shutdown returns nil, no leaks.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Shutdown(ctx2); err != nil {
		t.Fatalf("clean Shutdown: %v", err)
	}
	ts.Close()
	goroutineBaseline(t, base)
}

func TestGracefulDrainFinishesInFlightJobs(t *testing.T) {
	r := testRunner(t)
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1})

	done := make(chan serve.JobResponse, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"bench":"bfs"}`))
		if err != nil {
			close(done)
			return
		}
		defer resp.Body.Close()
		var out serve.JobResponse
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&out) == nil {
			done <- out
		} else {
			close(done)
		}
	}()
	pollUntil(t, 5*time.Second, "the job to be admitted", func() bool {
		st := s.Stats()
		return st.Admitted >= 1 || st.Completed >= 1
	})

	// Drain must let the admitted job finish, not cut it off.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during in-flight job: %v", err)
	}
	out, ok := <-done
	if !ok {
		t.Fatal("in-flight job did not complete across a graceful drain")
	}
	if out.Result.Benchmark != "bfs" {
		t.Fatalf("drained job result = %+v", out.Result)
	}
}

// TestRetryAfterTracksServiceTime pins the Retry-After derivation: once the
// server has observed service times, the hint reflects them instead of the
// 1-second floor alone.
func TestRetryAfterTracksServiceTime(t *testing.T) {
	r := testRunner(t)
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"lavaMD"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := s.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
	if st.ServiceTimeMs <= 0 {
		t.Fatalf("service-time EWMA not observed: %+v", st)
	}
	// Readiness rejection during drain carries the derived hint.
	s.BeginDrain()
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	secs, err := strconv.Atoi(rz.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("readyz Retry-After = %q, want >= 1", rz.Header.Get("Retry-After"))
	}
	want := int(st.ServiceTimeMs/1000) + 2
	if secs > want {
		t.Fatalf("Retry-After = %ds, implausible for EWMA %.1fms", secs, st.ServiceTimeMs)
	}
}

// fullSuiteJobs builds one job per suite kernel at tiny horizons.
func fullSuiteJobs(base core.Config) []exp.Job {
	var jobs []exp.Job
	for _, k := range trace.Suite() {
		jobs = append(jobs, exp.Job{Cfg: base, Kernel: k})
	}
	return jobs
}

// jobJSON marshals a result for byte-identity comparison.
func jobJSON(t *testing.T, res core.Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
