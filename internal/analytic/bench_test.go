package analytic_test

import (
	"testing"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
)

// BenchmarkAnalyticSuite measures the fast path's unit of work: one
// full-suite estimate for one configuration — the query shape ariserve's
// estimate mode answers. The acceptance budget is < 1ms per config; the
// benchmark feeds the benchdiff regression gate.
func BenchmarkAnalyticSuite(b *testing.B) {
	cfg := analytic.ValidationConfig()
	cfg.Scheme = core.AdaARI
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.EstimateSuite(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEstimateSuiteUnderBudget asserts the 1ms-per-config acceptance bound
// directly, with 10x headroom for a loaded CI machine: the median of
// several timed full-suite estimates must stay under 10ms.
func TestEstimateSuiteUnderBudget(t *testing.T) {
	cfg := analytic.ValidationConfig()
	cfg.Scheme = core.AdaARI
	best := time.Hour
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := analytic.EstimateSuite(cfg); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best > 10*time.Millisecond {
		t.Errorf("full-suite estimate took %v (best of 5), budget 1ms nominal / 10ms CI ceiling", best)
	}
}
