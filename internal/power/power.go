// Package power estimates energy for the simulated GPGPU in the spirit of
// the paper's GPUWattch + RTL flow (§6.2, Fig 14): per-event dynamic
// energies charged against simulation activity counts, plus static power
// proportional to runtime. Absolute values are arbitrary model units; the
// paper's Fig 14 is reproduced as relative energy per unit of work, which
// only depends on the ratios.
package power

import "fmt"

// Params holds the per-event dynamic energies (model units per event) and
// the static power (units per NoC cycle for the whole chip).
type Params struct {
	CoreInstr  float64 // per warp instruction (dominant GPU dynamic term)
	L1Access   float64
	L2Access   float64
	DRAMAccess float64 // per line read/write
	FlitHop    float64 // per flit per router-to-router link traversal
	BufferRW   float64 // per flit buffered (write+read pair)
	InjFlit    float64 // per flit over an injection link

	// StaticPower is units per NoC cycle for the whole chip. The paper
	// notes current tools model a low static share; ~10-15% of typical
	// total keeps Fig 14's ~4% result reproducible.
	StaticPower float64

	// ARIStaticOverhead scales static power for ARI configs by the area
	// overhead (<1% per §6.1).
	ARIStaticOverhead float64
}

// DefaultParams returns energy ratios calibrated to GPUWattch-era GPU
// breakdowns: core pipelines dominate dynamic energy, DRAM accesses are an
// order of magnitude costlier than cache hits, NoC is a small slice.
func DefaultParams() Params {
	return Params{
		CoreInstr:         10,
		L1Access:          4,
		L2Access:          8,
		DRAMAccess:        80,
		FlitHop:           1.0,
		BufferRW:          0.8,
		InjFlit:           0.5,
		StaticPower:       60,
		ARIStaticOverhead: 0.007,
	}
}

// Activity is the event-count input (mirrors core.Activity without
// importing it, keeping this package dependency-free).
type Activity struct {
	NoCCycles      int64
	Instructions   uint64
	L1Accesses     uint64
	L2Accesses     uint64
	DRAMReads      uint64
	DRAMWrites     uint64
	ReqFlitHops    uint64
	RepFlitHops    uint64
	BufferedFlits  uint64
	InjectionFlits uint64
}

// Breakdown is an energy estimate in model units.
type Breakdown struct {
	Dynamic float64
	Static  float64
}

// Total returns dynamic + static energy.
func (b Breakdown) Total() float64 { return b.Dynamic + b.Static }

// Estimate computes the energy of a run; ari applies the ARI static
// overhead factor.
func Estimate(a Activity, ari bool, p Params) Breakdown {
	var b Breakdown
	b.Dynamic += float64(a.Instructions) * p.CoreInstr
	b.Dynamic += float64(a.L1Accesses) * p.L1Access
	b.Dynamic += float64(a.L2Accesses) * p.L2Access
	b.Dynamic += float64(a.DRAMReads+a.DRAMWrites) * p.DRAMAccess
	b.Dynamic += float64(a.ReqFlitHops+a.RepFlitHops) * p.FlitHop
	b.Dynamic += float64(a.BufferedFlits) * p.BufferRW
	b.Dynamic += float64(a.InjectionFlits) * p.InjFlit

	static := p.StaticPower
	if ari {
		static *= 1 + p.ARIStaticOverhead
	}
	b.Static = static * float64(a.NoCCycles)
	return b
}

// PerInstruction normalises a breakdown to energy per warp instruction,
// the equal-work basis Fig 14 compares on (runs simulate fixed cycles, so
// faster schemes complete more work; energy must be compared per unit of
// work, which is how ARI's shorter runtime shows up as static savings).
func PerInstruction(b Breakdown, instructions uint64) (Breakdown, error) {
	if instructions == 0 {
		return Breakdown{}, fmt.Errorf("power: no instructions retired")
	}
	n := float64(instructions)
	return Breakdown{Dynamic: b.Dynamic / n, Static: b.Static / n}, nil
}
