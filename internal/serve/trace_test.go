package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// postTraced submits a job with an X-Ari-Trace header.
func postTraced(t *testing.T, url, body, traceHeader string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeContinuesTrace pins the replica's half of the trace contract: an
// incoming context is continued (serve.job parents under the caller's span),
// the response echoes the serve.job context, child spans cover admission /
// queue wait / run, and the run's sampled NoC packets land in the trace
// anchored at the run span's start.
func TestServeContinuesTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{PacketSample: 1})

	parent := obs.TraceContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	resp := postTraced(t, ts.URL, `{"bench":"bfs"}`, parent.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	echo, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok || echo.Trace != parent.Trace {
		t.Fatalf("echoed context = %q, want trace %s", resp.Header.Get(obs.TraceHeader), parent.Trace)
	}

	spans := s.spans.Spans(parent.Trace)
	byName := map[string][]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	job := byName["serve.job"]
	if len(job) != 1 || job[0].Parent != parent.Span {
		t.Fatalf("serve.job spans = %+v, want one parented under %s", job, parent.Span)
	}
	if job[0].ID != echo.Span {
		t.Fatalf("echoed span %s != serve.job ID %s", echo.Span, job[0].ID)
	}
	if job[0].Attrs["outcome"] != "ok" || job[0].Attrs["bench"] != "bfs" {
		t.Fatalf("serve.job attrs = %v", job[0].Attrs)
	}
	for _, name := range []string{"serve.admission", "serve.queue_wait", "serve.run"} {
		sp := byName[name]
		if len(sp) != 1 || sp[0].Parent != job[0].ID {
			t.Fatalf("%s spans = %+v, want one under serve.job", name, sp)
		}
	}
	run := byName["serve.run"][0]
	var pkts int
	for name, group := range byName {
		if !strings.HasPrefix(name, "pkt ") {
			continue
		}
		for _, sp := range group {
			pkts++
			if sp.Parent != run.ID {
				t.Fatalf("packet span %+v not under serve.run", sp)
			}
			if sp.StartUS < run.StartUS {
				t.Fatalf("packet span starts before its run: %d < %d", sp.StartUS, run.StartUS)
			}
		}
	}
	if pkts == 0 {
		t.Fatalf("no packet spans linked; recorded spans: %v", names(spans))
	}

	// A duplicate submission under a fresh trace is a journal hit and says so.
	parent2 := obs.TraceContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID()}
	resp2 := postTraced(t, ts.URL, `{"bench":"bfs"}`, parent2.String())
	resp2.Body.Close()
	spans2 := s.spans.Spans(parent2.Trace)
	var hit bool
	for _, sp := range spans2 {
		if sp.Name == "serve.journal_hit" {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("duplicate's trace missing serve.journal_hit: %v", names(spans2))
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestServeUntracedByDefault: no incoming context, no sampling -> no spans,
// no header, no recorder growth.
func TestServeUntracedByDefault(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postTraced(t, ts.URL, `{"bench":"bfs"}`, "")
	resp.Body.Close()
	if h := resp.Header.Get(obs.TraceHeader); h != "" {
		t.Fatalf("untraced response carries %s: %q", obs.TraceHeader, h)
	}
	if n := s.spans.Len(); n != 0 {
		t.Fatalf("recorder holds %d spans without tracing", n)
	}
}

// TestTracedRunByteIdentical locks the tentpole invariant: attaching the
// whole tracing stack to a run must not change its Result by a single byte
// relative to a plain run of the same job.
func TestTracedRunByteIdentical(t *testing.T) {
	plainS, plainTS := newTestServer(t, Config{})
	_ = plainS
	tracedS, tracedTS := newTestServer(t, Config{PacketSample: 1, TraceSample: 1})
	_ = tracedS

	body := `{"bench":"b+tree"}`
	plain := decodeJob(t, post(t, plainTS.URL, body))
	traced := decodeJob(t, post(t, tracedTS.URL, body))
	if plain.Key != traced.Key {
		t.Fatalf("keys diverge: %s vs %s", plain.Key, traced.Key)
	}
	pj, _ := json.Marshal(plain.Result)
	tj, _ := json.Marshal(traced.Result)
	if !bytes.Equal(pj, tj) {
		t.Fatalf("traced result differs from plain:\nplain:  %s\ntraced: %s", pj, tj)
	}
	if !reflect.DeepEqual(plain.Result, traced.Result) {
		t.Fatal("traced result differs structurally from plain")
	}
}

// TestServeDebugEndpoints covers /debug/slo, /debug/spans and /debug/trace.
func TestServeDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: 1, PacketSample: 1})

	// /debug/trace before any trace: 404.
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty /debug/trace = %d, want 404", resp.StatusCode)
	}

	post(t, ts.URL, `{"bench":"bfs"}`).Body.Close()

	resp, err = http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.SLOReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "job_latency" {
		t.Fatalf("slo report = %+v", rep)
	}
	if rep.Objectives[0].Total == 0 {
		t.Fatal("slo report counted no events after a job")
	}

	resp, err = http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace = %d %s", resp.StatusCode, raw)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("/debug/trace not a trace document: %v", err)
	}
	var sawRun bool
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "serve.run" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Fatalf("/debug/trace missing serve.run event:\n%s", raw)
	}
}

// TestServeMetricsHistogramsAndSLO: /metrics exposes the new histogram
// families and SLO gauges.
func TestServeMetricsHistogramsAndSLO(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL, `{"bench":"bfs"}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	got := string(raw)
	for _, want := range []string{
		"# TYPE ari_job_seconds histogram",
		"ari_job_seconds_count 1",
		"# TYPE ari_run_seconds histogram",
		"# TYPE ari_queue_wait_seconds histogram",
		`ari_slo_compliance{objective="job_latency"} 1`,
		`ari_slo_alerting{objective="job_latency"} 0`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
