// Package rng provides a small, fast, deterministic pseudo-random number
// generator for simulation use.
//
// The simulator must be bit-for-bit reproducible across runs and platforms,
// so all stochastic behaviour (workload address streams, arbitration seeds,
// benchmark parameter jitter) flows through this package rather than
// math/rand. The generator is SplitMix64 (Steele, Lea, Flood; JDK 8), which
// has a 64-bit state, passes BigCrush when used as a 64-bit generator, and —
// critically for us — supports O(1) stream splitting so every core, warp and
// traffic source can own an independent stream derived from a single run
// seed.
package rng

import "math"

// golden is the 64-bit golden ratio constant used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Source is a deterministic SplitMix64 PRNG. The zero value is a valid
// generator seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split returns a new Source whose stream is decorrelated from s but fully
// determined by (s's current state, tag). It does not advance s, so the
// order in which children are split off does not perturb the parent stream.
func (s *Source) Split(tag uint64) *Source {
	return &Source{state: mix(s.state ^ mix(tag+golden))}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits, as in math/rand/v2.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (number of Bernoulli failures before a success with p = 1/(m+1)),
// clamped to [0, 64*m+64] to bound pathological tails. m must be >= 0.
func (s *Source) Geometric(m float64) int {
	if m <= 0 {
		return 0
	}
	p := 1.0 / (m + 1.0)
	u := s.Float64()
	// Inverse CDF: floor(ln(1-u) / ln(1-p)).
	g := int(math.Log(1.0-u) / math.Log(1.0-p))
	limit := int(64*m) + 64
	if g < 0 {
		g = 0
	}
	if g > limit {
		g = limit
	}
	return g
}

// Perm fills dst with a pseudo-random permutation of 0..len(dst)-1
// (Fisher-Yates).
func (s *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
