// Observability-endpoint suite: /metrics exposes server and per-job
// progress in Prometheus text format, /debug/nocstate snapshots in-flight
// simulations, /debug/pprof is reachable, and none of it leaks goroutines
// across a drain.
package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// getBody fetches url and returns status and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// metricValue extracts the value of the first sample line starting with
// prefix (name or name{labels}), or -1 when absent.
func metricValue(body, prefix string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			f, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err == nil {
				return f
			}
		}
	}
	return -1
}

func TestMetricsEndpointIdleServer(t *testing.T) {
	_, ts := startServer(t, serve.Config{Runner: testRunner(t)})
	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"ari_jobs_admitted 0",
		"ari_jobs_completed_total 0",
		"ari_jobs_running 0",
		"ari_draining 0",
		"# TYPE ari_jobs_completed_total counter",
		"go_goroutines ",
		"go_heap_alloc_bytes ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// blockedJob submits a never-finishing job and waits until it is admitted.
func blockedJob(t *testing.T, s *serve.Server, ts string) {
	t.Helper()
	go func() {
		resp, err := http.Post(ts+"/v1/jobs", "application/json",
			strings.NewReader(`{"bench":"bfs"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	pollUntil(t, 5*time.Second, "the job to be admitted", func() bool {
		return s.Stats().Admitted == 1
	})
}

// TestMetricsExposesRunningJobProgress is the acceptance check: while a job
// executes, /metrics carries its per-job progress gauges with the job label,
// and the reported cycle advances between scrapes.
func TestMetricsExposesRunningJobProgress(t *testing.T) {
	r := testRunner(t)
	r.Base.MeasureCycles = 1 << 40 // runs until aborted
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1})
	t.Cleanup(func() { abortAndWait(t, s) })
	blockedJob(t, s, ts.URL)

	const label = `{job="bfs/XY-Baseline"}`
	var body string
	pollUntil(t, 5*time.Second, "per-job progress to appear in /metrics", func() bool {
		var code int
		code, body = getBody(t, ts.URL+"/metrics")
		return code == http.StatusOK &&
			metricValue(body, "ari_job_progress_cycles"+label) > 0 &&
			strings.Contains(body, "ari_jobs_running 1")
	})
	for _, want := range []string{
		"ari_job_total_cycles" + label,
		"ari_job_cycles_per_second" + label,
		"ari_job_eta_seconds" + label,
		"ari_job_no_progress_cycles" + label,
		"ari_job_in_flight_packets" + label,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q during a running job", want)
		}
	}
	first := metricValue(body, "ari_job_progress_cycles"+label)
	pollUntil(t, 5*time.Second, "progress cycles to advance", func() bool {
		_, b := getBody(t, ts.URL+"/metrics")
		return metricValue(b, "ari_job_progress_cycles"+label) > first
	})
}

// abortAndWait tears down a server running a never-finishing job.
func abortAndWait(t *testing.T, s *serve.Server) {
	t.Helper()
	s.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Error(err)
	}
}

// TestNoCStateSnapshotsRunningJob: /debug/nocstate returns a structured NoC
// dump of the in-flight simulation, produced on the simulation's own
// goroutine at its next watchdog poll.
func TestNoCStateSnapshotsRunningJob(t *testing.T) {
	r := testRunner(t)
	r.Base.MeasureCycles = 1 << 40
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1})
	t.Cleanup(func() { abortAndWait(t, s) })
	blockedJob(t, s, ts.URL)

	code, body := getBody(t, ts.URL+"/debug/nocstate")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/nocstate = %d", code)
	}
	var out struct {
		Jobs []struct {
			Job   string `json:"job"`
			Error string `json:"error"`
			State struct {
				Cycle     int64  `json:"cycle"`
				Benchmark string `json:"benchmark"`
				Scheme    string `json:"scheme"`
				Request   *struct {
					InFlight int `json:"in_flight"`
				} `json:"request"`
			} `json:"state"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unparsable response %q: %v", body, err)
	}
	if len(out.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1 (%s)", len(out.Jobs), body)
	}
	j := out.Jobs[0]
	if j.Error != "" {
		t.Fatalf("snapshot errored: %s", j.Error)
	}
	if j.Job != "bfs/XY-Baseline" || j.State.Benchmark != "bfs" {
		t.Fatalf("wrong job identity: %+v", j)
	}
	if j.State.Cycle <= 0 {
		t.Fatalf("snapshot has no cycle: %+v", j.State)
	}
	if j.State.Request == nil {
		t.Fatalf("snapshot has no request-fabric dump: %s", body)
	}
}

// TestNoCStateEmptyWhenIdle: no active jobs -> an empty jobs array, not an
// error or a hang.
func TestNoCStateEmptyWhenIdle(t *testing.T) {
	_, ts := startServer(t, serve.Config{Runner: testRunner(t)})
	code, body := getBody(t, ts.URL+"/debug/nocstate")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/nocstate = %d", code)
	}
	if !strings.Contains(body, `"jobs":[]`) {
		t.Fatalf("idle response = %q, want empty jobs array", body)
	}
}

// TestPprofEndpointsServed: the profiler handlers are mounted on the
// server's own mux (the DefaultServeMux is never exposed).
func TestPprofEndpointsServed(t *testing.T) {
	_, ts := startServer(t, serve.Config{Runner: testRunner(t)})
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/heap",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		code, body := getBody(t, ts.URL+path)
		if code != http.StatusOK {
			t.Errorf("GET %s = %d", path, code)
		}
		if len(body) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}
}

// TestObservabilityEndpointsLeakNothingAcrossDrain hammers every new
// endpoint while a job runs, drains the server, and asserts the goroutine
// count returns to baseline — the soak guarantee extended to the
// observability surface.
func TestObservabilityEndpointsLeakNothingAcrossDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	r := testRunner(t)
	r.Base.MeasureCycles = 1 << 40
	s, ts := startServer(t, serve.Config{Runner: r, MaxInFlight: 1})
	blockedJob(t, s, ts.URL)

	// Concurrent scrape load across all observability endpoints, including
	// nocstate fetches that will be cut off mid-handshake by the abort.
	stop := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []string{"/metrics", "/debug/nocstate", "/debug/pprof/", "/v1/stats"} {
					resp, err := http.Get(ts.URL + p)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)

	// Drain with a deadline the blocked job cannot meet: it is aborted.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}
	ts.Close()
	goroutineBaseline(t, base)
}
