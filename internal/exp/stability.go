package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SeedStability quantifies run-to-run variation of the headline metric:
// the Ada-ARI IPC gain over Ada-Baseline is measured under several seeds
// (fresh warp address streams each time) for one benchmark per sensitivity
// class. Small spreads justify the single-seed figures; large spreads
// would demand multi-seed averaging.
func SeedStability(r *Runner) (*Figure, error) {
	benches := []string{"bfs", "histogram", "matrixMul"} // high/medium/low
	seeds := []uint64{1, 2, 3}
	t := stats.NewTable("benchmark", "gain(seed1)", "gain(seed2)", "gain(seed3)", "spread")
	var spreads []float64
	for _, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, seed := range seeds {
			base := r.withScheme(core.AdaBaseline)
			base.Seed = seed
			ari := r.withScheme(core.AdaARI)
			ari.Seed = seed
			res, err := r.RunAll([]Job{{Cfg: base, Kernel: k}, {Cfg: ari, Kernel: k}})
			if err != nil {
				return nil, err
			}
			gain := safeDiv(res[1].IPC, res[0].IPC) - 1
			lo = math.Min(lo, gain)
			hi = math.Max(hi, gain)
			row = append(row, pct(gain))
		}
		spread := hi - lo
		spreads = append(spreads, spread)
		row = append(row, fmt.Sprintf("%.1fpp", spread*100))
		t.AddRow(row...)
	}
	return &Figure{
		ID:    "stability",
		Title: "Extension: seed-to-seed stability of the Ada-ARI IPC gain",
		Paper: "(beyond the paper) validates single-seed reporting",
		Table: t,
		Summary: map[string]float64{
			"max_gain_spread": maxOf(spreads),
		},
	}, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
