package obs

import (
	"strings"
	"testing"
)

func TestRegistryGaugeAndCounterSemantics(t *testing.T) {
	r := NewRegistry(100)
	var raw float64
	r.Gauge("g", func() float64 { return raw })
	r.Counter("c", func() float64 { return raw })

	raw = 5
	r.Sample(100)
	raw = 12
	r.Sample(200)
	raw = 12
	r.Sample(300)

	g, ok := r.Series("g")
	if !ok {
		t.Fatal("gauge series missing")
	}
	for i, want := range []float64{5, 12, 12} {
		if g.Value(i) != want {
			t.Errorf("gauge sample %d = %v, want %v", i, g.Value(i), want)
		}
	}
	c, _ := r.Series("c")
	// First sample records the raw value; later ones the delta.
	for i, want := range []float64{5, 7, 0} {
		if c.Value(i) != want {
			t.Errorf("counter sample %d = %v, want %v", i, c.Value(i), want)
		}
	}
	if r.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3", r.Samples())
	}
	if got := r.Last("g"); got != 12 {
		t.Fatalf("Last(g) = %v", got)
	}
}

// TestRegistryCounterSurvivesStatsReset pins the warmup-boundary rule: when
// the cumulative source drops (ResetStats at the end of warmup), the sample
// records the post-reset raw value, never a negative delta.
func TestRegistryCounterSurvivesStatsReset(t *testing.T) {
	r := NewRegistry(10)
	var raw float64
	r.Counter("c", func() float64 { return raw })
	raw = 100
	r.Sample(10)
	raw = 3 // source was reset and accumulated 3 since
	r.Sample(20)
	raw = 8
	r.Sample(30)
	c, _ := r.Series("c")
	for i, want := range []float64{100, 3, 5} {
		if c.Value(i) != want {
			t.Errorf("sample %d = %v, want %v", i, c.Value(i), want)
		}
	}
}

func TestRegistryWriteCSV(t *testing.T) {
	r := NewRegistry(50)
	v := 1.5
	r.Gauge("a", func() float64 { return v })
	r.Counter("b", func() float64 { return 2 * v })
	r.Sample(50)
	v = 2.5
	r.Sample(100)

	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a,b\n50,1.5,3\n100,2.5,2\n"
	if b.String() != want {
		t.Fatalf("CSV:\n got %q\nwant %q", b.String(), want)
	}
}

func TestRegistryDuplicateAndNilProbePanic(t *testing.T) {
	r := NewRegistry(1)
	r.Gauge("x", func() float64 { return 0 })
	for name, f := range map[string]func(){
		"duplicate": func() { r.Counter("x", func() float64 { return 0 }) },
		"nil":       func() { r.Gauge("y", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRegistrySampleAllocationFree is the overhead guard from the issue:
// once Reserve has sized the series, steady-state sampling performs zero
// heap allocations regardless of probe count.
func TestRegistrySampleAllocationFree(t *testing.T) {
	r := NewRegistry(100)
	var src float64
	for i := 0; i < 32; i++ {
		name := "probe" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if i%2 == 0 {
			r.Gauge(name, func() float64 { return src })
		} else {
			r.Counter(name, func() float64 { return src })
		}
	}
	const samples = 200
	r.Reserve(samples + 1)
	cycle := int64(0)
	allocs := testing.AllocsPerRun(samples, func() {
		cycle += 100
		src++
		r.Sample(cycle)
	})
	if allocs != 0 {
		t.Fatalf("Sample allocated %.1f objects/op after Reserve, want 0", allocs)
	}
}
