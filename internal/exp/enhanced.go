package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// EnhancedBaseline quantifies §4.1's methodological choice: the paper
// replaces GPGPU-Sim's default narrow MC->NI link (a packet occupies it
// for its whole serialisation time) with a wide link "to avoid giving
// unfair advantage to our proposed design". This figure measures how much
// of ARI's apparent gain would have come from that enhancement alone.
func EnhancedBaseline(r *Runner) (*Figure, error) {
	type variant struct {
		label      string
		scheme     core.Scheme
		unenhanced bool
	}
	variants := []variant{
		{"Default-Baseline", core.AdaBaseline, true},
		{"Enhanced-Baseline", core.AdaBaseline, false},
		// Consumption acceleration grafted onto the narrow MC->NI link:
		// the supply path caps at one packet per serialisation time, so
		// ARI's machinery has nothing to forward.
		{"NarrowLink+Speedup", core.AccConsume, true},
		{"Ada-ARI", core.AdaARI, false},
	}
	jobs := make([]Job, 0, len(variants)*len(r.Benchmarks))
	for _, k := range r.Benchmarks {
		for _, v := range variants {
			cfg := r.withScheme(v.scheme)
			cfg.UnenhancedBaseline = v.unenhanced
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "Default-Base", "Enhanced-Base", "Narrow+Speedup", "Ada-ARI")
	norm := make([][]float64, len(variants))
	for i, k := range r.Benchmarks {
		base := res[i*len(variants)].IPC
		row := []string{k.Name}
		for v := range variants {
			x := safeDiv(res[i*len(variants)+v].IPC, base)
			norm[v] = append(norm[v], x)
			row = append(row, fmt.Sprintf("%.3f", x))
		}
		t.AddRow(row...)
	}
	gmRow := []string{"geomean"}
	gm := make([]float64, len(variants))
	for v := range variants {
		gm[v] = stats.GeoMean(norm[v])
		gmRow = append(gmRow, fmt.Sprintf("%.3f", gm[v]))
	}
	t.AddRow(gmRow...)
	return &Figure{
		ID:    "enhanced",
		Title: "§4.1 ablation: default vs enhanced baseline vs ARI (IPC norm. to the default baseline)",
		Paper: "the paper evaluates against the enhanced baseline so ARI's gain excludes the easy wide-link fix",
		Table: t,
		Summary: map[string]float64{
			"enhancement_alone_gain":   gm[1] - 1,
			"narrow_plus_speedup_gain": gm[2] - 1,
			"ari_over_enhanced":        gm[3]/gm[1] - 1,
		},
	}, nil
}
