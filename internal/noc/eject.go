package noc

// ejector is the ejection side of a node's network interface: per-VC
// reassembly buffers drained at a fixed flit rate. Completed packets are
// delivered to the network's ejection handler; every drained flit returns a
// credit to the router's ejection output port.
type ejector struct {
	net  *Network
	node int
	// sh/lidx locate the ejector's flit-count activity predicate in its
	// stepping shard's SoA arrays (sh.ejectFlits[lidx]; see soa.go) — the
	// count of buffered plus staged flits, always equal to what busy()
	// recounts.
	sh   *netShard
	lidx int32
	vcs  []*flitQueue
	// arrivals staged by the router's ST this cycle.
	arrivals []stagedFlit
	rr       *roundRobin
	rate     int
	// backOut is the router output port whose credits track this ejector's
	// buffer space.
	backOut *outputPort
	// vcBad accumulates, per reassembly VC, whether any flit of the packet
	// currently reassembling arrived corrupted — the model of the receiving
	// NI recomputing the packet CRC. Nil when recovery is disabled
	// (corrupted packets are then delivered undetected).
	vcBad []bool
}

func newEjector(net *Network, node int, backOut *outputPort) *ejector {
	cfg := &net.cfg
	e := &ejector{
		net:     net,
		node:    node,
		vcs:     make([]*flitQueue, cfg.VCs),
		rr:      newRoundRobin(cfg.VCs),
		rate:    cfg.EjectRate,
		backOut: backOut,
	}
	for v := range e.vcs {
		e.vcs[v] = newFlitQueue(cfg.VCDepth)
	}
	if cfg.RetransBufPkts > 0 {
		e.vcBad = make([]bool, cfg.VCs)
	}
	return e
}

// flitCount reads the ejector's activity predicate (SoA slot; see soa.go).
func (e *ejector) flitCount() int { return int(e.sh.ejectFlits[e.lidx]) }

// addFlits adjusts the ejector's activity predicate. Incremented by the
// owning shard's traverse (the ejection port never crosses a shard
// boundary), decremented by the serial ejection phase.
func (e *ejector) addFlits(d int) { e.sh.ejectFlits[e.lidx] += int32(d) }

func (e *ejector) applyArrivals(now int64) {
	kept := e.arrivals[:0]
	for _, sf := range e.arrivals {
		if sf.deliverAt <= now {
			e.vcs[sf.vc].push(sf.f)
		} else {
			kept = append(kept, sf)
		}
	}
	e.arrivals = kept
}

// consume drains up to rate flits this cycle, round-robin across VCs, and
// delivers packets whose tail flit has drained. A closed sink gate (node
// ingress full) stops ejection entirely, backing traffic into the network.
func (e *ejector) consume(now int64) {
	if g := e.net.sinkGate; g != nil && !g(e.node) {
		return
	}
	for k := 0; k < e.rate; k++ {
		v := e.rr.pick(func(i int) bool { return !e.vcs[i].empty() })
		if v < 0 {
			return
		}
		f := e.vcs[v].pop()
		e.addFlits(-1)
		e.backOut.creditIn[v]++
		e.net.stats.EjectFlits++
		if f.bad && e.vcBad != nil {
			e.vcBad[v] = true
		}
		if f.isTail() {
			if e.vcBad != nil && e.vcBad[v] {
				// CRC mismatch at reassembly: drop the packet and NACK the
				// source; the sender's retransmission buffer still holds it.
				// Credits were returned per flit above, so flow control is
				// already settled; inFlight stays up until a clean copy of
				// this packet is delivered.
				e.vcBad[v] = false
				e.net.dropCorrupt(e.node, f.pkt, now)
				continue
			}
			e.net.stats.recordEject(f.pkt, now)
			e.net.inFlight--
			if e.vcBad != nil {
				// Clean delivery: ACK frees the sender's retransmission slot.
				// Sent before the handler, which may recycle the shell.
				e.net.sendCtl(e.node, f.pkt.Src, f.pkt.ID, false, now)
			}
			// The eject event fires before the handler, which may recycle the
			// packet into the pool (zeroing it).
			if tr := e.net.tracer; tr != nil && f.pkt.traced {
				tr.PacketEvent(f.pkt.ID, f.pkt.Type, f.pkt.Src, f.pkt.Dst, e.node, TraceEject, now)
			}
			if h := e.net.ejectHandler; h != nil {
				h(e.node, f.pkt, now)
			}
		}
	}
}

func (e *ejector) busy() bool {
	if len(e.arrivals) > 0 {
		return true
	}
	for _, q := range e.vcs {
		if !q.empty() {
			return true
		}
	}
	return false
}
