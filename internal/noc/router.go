package noc

// ejectPortIndex is the output-port index of the local ejection port; mesh
// output ports use Direction values 0..3.
const ejectPortIndex = NumDirections

// numOutPorts is the number of output ports of every router (4 mesh + 1
// ejection). Injection only adds input ports.
const numOutPorts = NumDirections + 1

// vcState is the input-VC state machine: idle (no packet at the front),
// waitVC (route computed, waiting for a downstream VC), active (downstream
// VC held, flits flowing).
type vcState uint8

const (
	vcIdle vcState = iota
	vcWaitVC
	vcActive
)

// inputVC is one virtual channel of a router input port.
type inputVC struct {
	port      *inputPort
	vcIdx     int // index within the port
	globalIdx int // index within router.allVCs

	buf   *flitQueue
	state vcState

	cands   []routeCandidate
	outPort int
	outVC   int
	// routeEpoch is the router's deadEpoch at the time cands was computed;
	// a waiting VC whose epoch is stale recomputes its candidates, so a
	// link death re-routes packets that were already waiting on it.
	routeEpoch int
	// effPrio is the packet priority captured at route computation, before
	// the per-hop decrement (§5): the value the packet carried on arrival.
	effPrio int
	// waitSince is when the head flit last became eligible without being
	// served; it drives the starvation guard.
	waitSince int64
}

// stagedFlit is a flit in flight on a link or in the router pipeline,
// delivered into the target buffer at the start of cycle deliverAt.
type stagedFlit struct {
	f         flit
	vc        int
	deliverAt int64
}

// inputPort is a router input port: either one of the four mesh ports or an
// injection port fed by the node's NI.
type inputPort struct {
	router *router
	index  int // input-port index within the router
	vcs    []*inputVC

	// arrivals staged by the upstream ST (or the NI) this cycle, applied at
	// the start of the next cycle.
	arrivals []stagedFlit

	isInjection bool
	injIndex    int // which injection port of the node (MultiPort)

	// frozenUntil is the fault-injection freeze horizon: while now is before
	// it, no VC of this port may bid for the switch. Buffered flits (and
	// their credits) are untouched, so the stall is absorbed losslessly by
	// the credit flow control (see internal/fault).
	frozenUntil int64

	// upstream is the neighbouring router's output port feeding this port
	// (nil for injection ports, whose credits return to the NI).
	upstream *outputPort
	// remoteUpstream marks an upstream owned by another stepping shard:
	// credits then return through the shard outbox instead of writing
	// upstream.creditIn directly, and upstreamShard names the shard whose
	// commit worker must land them (see shard.go).
	remoteUpstream bool
	upstreamShard  int32
	ni             *NI

	// spIDs are the switch-port ids owned by this port (1 for mesh ports,
	// InjSpeedup for injection ports).
	spIDs []int
}

// outVCState tracks one downstream virtual channel from the sender's side.
type outVCState struct {
	credits int
	// owner is the globalIdx of the input VC currently forwarding a packet
	// into this downstream VC, or -1.
	owner int
}

// outputPort is a router output port: a mesh link to a neighbour or the
// local ejection port.
type outputPort struct {
	router *router
	index  int
	vcs    []outVCState
	// creditIn stages credits returned by the downstream consumer this
	// cycle, applied at the start of the next cycle.
	creditIn []int

	// Exactly one of destPort (mesh) or eject (local) is non-nil.
	destPort *inputPort
	eject    *ejector
	// remote marks a destPort owned by another stepping shard: traversals
	// then stage through the shard outbox instead of appending to
	// destPort.arrivals directly, and remoteShard names the destination
	// shard whose commit worker must land them (see shard.go).
	remote      bool
	remoteShard int32

	// flits counts traversals onto this output's link (observability).
	flits uint64

	// stalledUntil is the fault-injection link-stall horizon: while now is
	// before it, switch allocation never grants this output, so no flit
	// traverses the link. Credits and buffered flits are untouched.
	stalledUntil int64
	// corruptUntil is the fault-injection corruption horizon: flits
	// traversing the link while now is before it are marked bad (payload
	// bit-flips detected by the receiving NI's CRC check; see recovery.go).
	corruptUntil int64
	// dead marks a permanently killed mesh link (KillLink): route
	// computation never offers it again. Worms that held it at death drain
	// gracefully.
	dead bool
}

// router is a virtual-channel wormhole router with a single-cycle
// RC/VA/SA/ST pipeline and 1-cycle links, per-injection-port crossbar
// speedup and optional priority-aware switch allocation.
type router struct {
	net *Network
	// sh is the stepping shard that owns this router; phase-A counter
	// increments go to its deltas so parallel shards never share a counter,
	// and lidx is this router's slot in the shard's SoA activity arrays
	// (id - sh.lo; see soa.go).
	sh     *netShard
	lidx   int32
	id     int
	isMC   bool // tagged by the caller for stats / scheme logic
	in     []*inputPort
	out    []*outputPort
	allVCs []*inputVC

	// Switch: spVCs[sp] lists the globalIdx of VCs multiplexed onto
	// switch-port sp; spArb arbitrates among them (SA stage 1); outArb[o]
	// arbitrates among switch-ports for output o (SA stage 2).
	spVCs     [][]int
	spArb     []*roundRobin
	outArb    []*roundRobin
	spWinner  []int // per switch-port: winning globalIdx this cycle, or -1
	rrVA      int
	candBuf   []routeCandidate
	prioArbOn bool

	// The router's flit-count activity predicate lives in its shard's SoA
	// array (sh.routerFlits[lidx]; see soa.go) — addFlits/flitCount below.
	// It always equals what busy() recounts.
	//
	// waitVCs counts input VCs in vcWaitVC and activeVCs those in vcActive:
	// O(1) early-outs that let vcAllocate skip its O(VCs) scan when nothing
	// waits and switchAllocate return when nothing can bid. Both passes are
	// side-effect-free when their count is zero (pick without a grant never
	// advances an arbiter), so the skip is behaviour-identical.
	waitVCs   int32
	activeVCs int32
	// lastVA is the cycle vcAllocate last ran, so the unconditional rrVA
	// rotation of skipped cycles can be fast-forwarded on wake-up.
	lastVA int64

	// deadEpoch increments on every link kill anywhere in the mesh (the
	// fault-routing table is global), so waiting VCs know to recompute
	// their route candidates (see routeCompute).
	deadEpoch int
}

func newRouter(net *Network, id int) *router {
	cfg := &net.cfg
	nc := cfg.node(id)
	r := &router{
		net:       net,
		id:        id,
		prioArbOn: cfg.PriorityLevels >= 2,
		lastVA:    -1,
	}

	numIn := NumDirections + nc.injPorts()
	r.in = make([]*inputPort, numIn)
	spID := 0
	for p := 0; p < numIn; p++ {
		ip := &inputPort{router: r, index: p}
		if p >= NumDirections {
			ip.isInjection = true
			ip.injIndex = p - NumDirections
		}
		spCount := 1
		if ip.isInjection {
			spCount = nc.injSpeedup(cfg.VCs)
		}
		for k := 0; k < spCount; k++ {
			ip.spIDs = append(ip.spIDs, spID)
			spID++
		}
		ip.vcs = make([]*inputVC, cfg.VCs)
		for v := 0; v < cfg.VCs; v++ {
			vc := &inputVC{
				port:      ip,
				vcIdx:     v,
				globalIdx: len(r.allVCs),
				buf:       newFlitQueue(cfg.VCDepth),
				outPort:   -1,
				outVC:     -1,
			}
			ip.vcs[v] = vc
			r.allVCs = append(r.allVCs, vc)
		}
		r.in[p] = ip
	}

	// Switch-port -> VC mapping: VC v of a port with s switch-ports is
	// demultiplexed onto the port's switch-port v mod s (§4.2, Fig 8).
	r.spVCs = make([][]int, spID)
	for _, ip := range r.in {
		s := len(ip.spIDs)
		for _, vc := range ip.vcs {
			sp := ip.spIDs[vc.vcIdx%s]
			r.spVCs[sp] = append(r.spVCs[sp], vc.globalIdx)
		}
	}
	r.spArb = make([]*roundRobin, spID)
	for sp := range r.spArb {
		r.spArb[sp] = newRoundRobin(len(r.spVCs[sp]))
	}
	r.spWinner = make([]int, spID)

	r.out = make([]*outputPort, numOutPorts)
	r.outArb = make([]*roundRobin, numOutPorts)
	for o := 0; o < numOutPorts; o++ {
		op := &outputPort{
			router:   r,
			index:    o,
			vcs:      make([]outVCState, cfg.VCs),
			creditIn: make([]int, cfg.VCs),
		}
		for v := range op.vcs {
			op.vcs[v] = outVCState{credits: cfg.VCDepth, owner: -1}
		}
		r.out[o] = op
		r.outArb[o] = newRoundRobin(spID)
	}
	return r
}

// flitCount reads the router's activity predicate: flits resident in its
// input-VC buffers plus staged arrivals (SoA slot; see soa.go).
func (r *router) flitCount() int { return int(r.sh.routerFlits[r.lidx]) }

// addFlits adjusts the router's activity predicate. Callers outside the
// router's own shard may only do so from the commit worker of the shard
// that owns it (see commitShard).
func (r *router) addFlits(d int) { r.sh.routerFlits[r.lidx] += int32(d) }

// applyArrivals moves due link-staged flits into VC buffers and applies
// staged credits (phase 1 of the cycle).
func (r *router) applyArrivals(now int64) {
	for _, ip := range r.in {
		kept := ip.arrivals[:0]
		for _, sf := range ip.arrivals {
			if sf.deliverAt <= now {
				ip.vcs[sf.vc].buf.push(sf.f)
			} else {
				kept = append(kept, sf)
			}
		}
		ip.arrivals = kept
	}
	for _, op := range r.out {
		for v := range op.creditIn {
			if op.creditIn[v] != 0 {
				op.vcs[v].credits += op.creditIn[v]
				op.creditIn[v] = 0
			}
		}
	}
}

// routeCompute runs RC for every idle VC with a buffered head flit: it
// computes the admissible candidates, captures the arrival priority, and
// performs the per-hop priority decrement (§5). VCs still waiting for a
// downstream VC recompute their candidates when a link died since their
// last RC (routeEpoch stale) — without re-applying the priority decrement,
// which is per hop, not per recomputation.
func (r *router) routeCompute(now int64) {
	for _, vc := range r.allVCs {
		if vc.buf.empty() {
			continue
		}
		switch vc.state {
		case vcIdle:
			f := vc.buf.front()
			if !f.isHead() {
				panic("noc: non-head flit at front of idle VC")
			}
			pkt := f.pkt
			vc.cands = r.net.routeCandidates(r.id, pkt.Dst, vc.cands)
			vc.routeEpoch = r.deadEpoch
			vc.effPrio = pkt.Priority
			if pkt.Priority > 0 {
				pkt.Priority--
			}
			vc.state = vcWaitVC
			r.waitVCs++
			vc.waitSince = now
		case vcWaitVC:
			if vc.routeEpoch != r.deadEpoch {
				pkt := vc.buf.front().pkt
				vc.cands = r.net.routeCandidates(r.id, pkt.Dst, vc.cands)
				vc.routeEpoch = r.deadEpoch
			}
		}
	}
}

// vcAllocate runs separable input-first VC allocation: waiting VCs claim a
// free downstream VC among their route candidates, scanned in rotating
// order for fairness. With ARI prioritisation enabled, higher-priority
// waiters (freshly injected packets at MC-routers, §5) are served first so
// they exit the hot region quickly.
//
// The rotating pointer rrVA advances once per simulated cycle whether or
// not anything allocates, so a router skipped by event-driven stepping
// first fast-forwards the rotations of the cycles it slept through; the
// pointer is then exactly what the scan-everything loop would hold.
func (r *router) vcAllocate(now int64) {
	n := len(r.allVCs)
	if n > 0 {
		if skipped := now - 1 - r.lastVA; skipped > 0 {
			r.rrVA = (r.rrVA + int(skipped%int64(n))) % n
		}
	}
	if r.waitVCs > 0 {
		r.vcAllocatePass(now)
	}
	if n > 0 {
		r.rrVA = (r.rrVA + 1) % n
	}
	r.lastVA = now
}

// vcAllocatePass attempts allocation for every waiting VC, scanning from
// the rotating pointer and stopping once all VCs that were waiting at entry
// have been visited (no new waiter can appear mid-pass, so the tail of the
// rotation is provably a no-op).
func (r *router) vcAllocatePass(now int64) {
	n := len(r.allVCs)
	remaining := r.waitVCs
	for k := 0; k < n && remaining > 0; k++ {
		vc := r.allVCs[(r.rrVA+k)%n]
		if vc.state != vcWaitVC {
			continue
		}
		remaining--
		pkt := vc.buf.front().pkt
		bestPort, bestVC, bestCredits := -1, -1, -1
		for _, cand := range vc.cands {
			op := r.out[cand.port]
			if cand.port != ejectPortIndex && op.destPort == nil {
				continue // mesh edge: no link in that direction
			}
			for v := len(op.vcs) - 1; v >= 0; v-- {
				if cand.vcMask&(1<<uint(v)) == 0 {
					continue
				}
				ov := &op.vcs[v]
				if !r.vcEligible(pkt, ov) {
					continue
				}
				// Prefer the candidate with the most downstream credits
				// (local congestion awareness); scanning VCs downward makes
				// ties prefer adaptive VCs over the escape VC.
				if ov.credits > bestCredits {
					bestPort, bestVC, bestCredits = cand.port, v, ov.credits
				}
			}
		}
		if bestPort >= 0 {
			r.out[bestPort].vcs[bestVC].owner = vc.globalIdx
			vc.outPort, vc.outVC = bestPort, bestVC
			vc.state = vcActive
			r.waitVCs--
			r.activeVCs++
			r.sh.ctr.vaGrants++
			if tr := r.net.tracer; tr != nil && pkt.traced {
				tr.PacketEvent(pkt.ID, pkt.Type, pkt.Src, pkt.Dst, r.id, TraceVAGrant, now)
			}
		}
	}
}

// vcEligible applies the buffer-allocation policy: atomic allocation needs
// a completely empty downstream VC; non-atomic (WPF [28]) only needs space
// for the whole packet.
func (r *router) vcEligible(pkt *Packet, ov *outVCState) bool {
	if ov.owner != -1 {
		return false
	}
	if r.net.cfg.NonAtomicVC {
		return ov.credits >= pkt.Size
	}
	return ov.credits == r.net.cfg.VCDepth
}

// starvationActive reports whether any non-injection input VC has been
// waiting longer than the starvation threshold, in which case injection
// priority is suppressed this cycle (§5).
func (r *router) starvationActive(now int64) bool {
	limit := r.net.cfg.StarvationLimit
	for _, vc := range r.allVCs {
		if vc.port.isInjection {
			continue
		}
		if vc.state != vcIdle && now-vc.waitSince > limit {
			return true
		}
	}
	return false
}

// switchAllocate runs separable input-first switch allocation and performs
// the winning switch/link traversals (SA + ST + LT).
func (r *router) switchAllocate(now int64) {
	if r.activeVCs == 0 {
		// No input VC holds a downstream VC, so no switch-port can bid and
		// no output can grant; skipping is behaviour-identical (pick without
		// a grant never advances an arbiter, and creditStallCycles only
		// counts active VCs).
		return
	}
	starved := r.prioArbOn && r.starvationActive(now)

	// Stage 1: each switch-port picks among its eligible VCs.
	for sp := range r.spVCs {
		vcsOfSP := r.spVCs[sp]
		w := r.spArb[sp].pick(func(j int) bool {
			return r.saEligible(r.allVCs[vcsOfSP[j]], now)
		})
		if w < 0 {
			r.spWinner[sp] = -1
		} else {
			r.spWinner[sp] = vcsOfSP[w]
		}
	}

	// Stage 2: each output port grants one requesting switch-port;
	// priority-aware when ARI prioritisation is enabled.
	for o, op := range r.out {
		if now < op.stalledUntil {
			continue // link stalled by fault injection: no grant this cycle
		}
		req := func(sp int) bool {
			w := r.spWinner[sp]
			return w >= 0 && r.allVCs[w].outPort == o
		}
		var winner int
		if r.prioArbOn {
			winner = r.outArb[o].pickPriority(req, func(sp int) int {
				vc := r.allVCs[r.spWinner[sp]]
				if starved && vc.port.isInjection {
					return 0
				}
				return vc.effPrio
			})
		} else {
			winner = r.outArb[o].pick(req)
		}
		if winner >= 0 {
			r.traverse(r.allVCs[r.spWinner[winner]], op, now)
		}
	}
}

// saEligible reports whether an input VC can bid for the switch this cycle:
// its port must not be frozen, and it must hold a flit and a downstream
// credit.
func (r *router) saEligible(vc *inputVC, now int64) bool {
	if now < vc.port.frozenUntil {
		return false // input port frozen by fault injection
	}
	if vc.state != vcActive || vc.buf.empty() {
		return false
	}
	if r.out[vc.outPort].vcs[vc.outVC].credits <= 0 {
		r.sh.ctr.creditStallCycles++
		return false
	}
	return true
}

// traverse moves one flit from an input VC across the crossbar onto the
// output link, returns a credit upstream, and retires the downstream-VC
// ownership at the tail.
func (r *router) traverse(vc *inputVC, op *outputPort, now int64) {
	f := vc.buf.pop()
	r.addFlits(-1)
	ov := &op.vcs[vc.outVC]
	ov.credits--
	op.flits++
	r.sh.ctr.switchTraversals++
	if now < op.corruptUntil {
		// The link is inside a corruption window: the flit's payload is
		// damaged in transit. Only the receiving NI's CRC check observes it.
		f.bad = true
		r.sh.ctr.corruptFlits++
	}
	if tr := r.net.tracer; tr != nil && f.seq == 0 && f.pkt.traced {
		tr.PacketEvent(f.pkt.ID, f.pkt.Type, f.pkt.Src, f.pkt.Dst, r.id, TraceSwitch, now)
	}

	// A flit sent at cycle t lands in the downstream buffer at
	// t + PipelineStages (1 = single-cycle router + 1-cycle link).
	due := now + int64(r.net.cfg.PipelineStages)
	switch {
	case op.remote:
		// Boundary link: the destination buffer belongs to another shard,
		// so stage into the outbox slot of the destination shard, whose
		// commit worker lands it (the downstream applyArrivals cannot read
		// it before deliverAt anyway).
		d := op.remoteShard
		r.sh.outFlits[d] = append(r.sh.outFlits[d], remoteFlit{dst: op.destPort, sf: stagedFlit{f: f, vc: vc.outVC, deliverAt: due}})
		r.sh.ctr.meshLinkFlits++
	case op.destPort != nil:
		op.destPort.arrivals = append(op.destPort.arrivals, stagedFlit{f: f, vc: vc.outVC, deliverAt: due})
		op.destPort.router.addFlits(1)
		r.sh.ctr.meshLinkFlits++
	case op.eject != nil:
		op.eject.arrivals = append(op.eject.arrivals, stagedFlit{f: f, vc: vc.outVC, deliverAt: due})
		op.eject.addFlits(1)
	default:
		panic("noc: output port with no destination")
	}

	// Credit for the freed input-buffer slot.
	switch {
	case vc.port.isInjection:
		vc.port.ni.creditReturn(vc.port.injIndex, vc.vcIdx)
	case vc.port.remoteUpstream:
		d := vc.port.upstreamShard
		r.sh.outCredits[d] = append(r.sh.outCredits[d], remoteCredit{op: vc.port.upstream, vc: vc.vcIdx})
	default:
		vc.port.upstream.creditIn[vc.vcIdx]++
	}

	vc.waitSince = now
	if f.isTail() {
		ov.owner = -1
		vc.state = vcIdle
		vc.outPort, vc.outVC = -1, -1
		r.activeVCs--
	}
}

// busy reports whether the router holds any flit in any input VC or staged
// arrival (used for drain detection). It recounts what the flits counter
// tracks incrementally; CheckInvariants asserts the two agree.
func (r *router) busy() bool {
	for _, ip := range r.in {
		if len(ip.arrivals) > 0 {
			return true
		}
		for _, vc := range ip.vcs {
			if !vc.buf.empty() {
				return true
			}
		}
	}
	return false
}
