package main

import (
	"regexp"
	"testing"
)

func d(entries ...entry) doc { return doc{Benchmarks: entries} }

func e(pkg, name string, ns float64) entry {
	return entry{Name: name, Package: pkg, Iterations: 100, NsPerOp: ns}
}

func TestCompareFlagsOnlyRegressionsBeyondThreshold(t *testing.T) {
	re := regexp.MustCompile("NetworkStep|SimulatorStep")
	base := d(
		e("repro/internal/noc", "BenchmarkNetworkStepARI", 1000),
		e("repro", "BenchmarkSimulatorStep", 2000),
		e("repro", "BenchmarkFig03", 500), // unmatched: never gated
	)
	fresh := d(
		e("repro/internal/noc", "BenchmarkNetworkStepARI", 1100), // +10%: within budget
		e("repro", "BenchmarkSimulatorStep", 2400),               // +20%: regression
		e("repro", "BenchmarkFig03", 5000),
	)
	regs, _ := compare(base, fresh, re, 15)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].key != "repro.BenchmarkSimulatorStep" {
		t.Fatalf("flagged %s, want repro.BenchmarkSimulatorStep", regs[0].key)
	}
}

func TestCompareToleratesNewAndRemovedBenchmarks(t *testing.T) {
	re := regexp.MustCompile("NetworkStep")
	base := d(e("p", "BenchmarkNetworkStepOld", 100))
	fresh := d(e("p", "BenchmarkNetworkStepShards4", 400))
	regs, report := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("new/removed benchmarks must not fail the gate: %+v", regs)
	}
	if len(report) != 2 {
		t.Fatalf("report has %d lines, want 2 (one new, one removed):\n%v", len(report), report)
	}
}

func TestCompareTakesMinAcrossRepeatedRuns(t *testing.T) {
	// A -count=3 run emits three entries per benchmark; the gate must
	// judge the minimum on both sides, so one noisy repetition cannot
	// fail (or hide) a regression.
	re := regexp.MustCompile("NetworkStep")
	base := d(
		e("p", "BenchmarkNetworkStepARI", 1200),
		e("p", "BenchmarkNetworkStepARI", 1000), // min
		e("p", "BenchmarkNetworkStepARI", 1500),
	)
	fresh := d(
		e("p", "BenchmarkNetworkStepARI", 1600), // noisy outlier
		e("p", "BenchmarkNetworkStepARI", 1050), // min: +5%, within budget
		e("p", "BenchmarkNetworkStepARI", 1400),
	)
	regs, report := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("min-of-N must absorb the outlier: %+v", regs)
	}
	if len(report) != 1 {
		t.Fatalf("repeated entries must fold to one report line, got %d:\n%v", len(report), report)
	}

	// A real regression survives folding: every fresh repetition is slow.
	slow := d(
		e("p", "BenchmarkNetworkStepARI", 1900),
		e("p", "BenchmarkNetworkStepARI", 1800),
	)
	regs, _ = compare(base, slow, re, 15)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
}

func TestCompareDistinguishesPackages(t *testing.T) {
	// The same benchmark name in two packages must not cross-compare.
	re := regexp.MustCompile("Step")
	base := d(e("a", "BenchmarkStep", 100), e("b", "BenchmarkStep", 10000))
	fresh := d(e("a", "BenchmarkStep", 101), e("b", "BenchmarkStep", 10100))
	regs, _ := compare(base, fresh, re, 15)
	if len(regs) != 0 {
		t.Fatalf("cross-package comparison: %+v", regs)
	}
}
