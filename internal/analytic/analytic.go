// Package analytic is the closed-form fast path of the reproduction: a
// per-traffic-class M/G/1-style latency/throughput estimator over the 2D
// mesh + MC placement, in the modelling style of Mandal et al.'s
// "Analytical Performance Models for NoCs with Multiple Priority Traffic
// Classes" (PAPERS.md). Where the cycle-accurate simulator spends seconds
// per (config, benchmark) point, the model answers in microseconds, which
// is what lets a serving layer answer estimate-mode queries instantly and
// only schedule real simulations on demand.
//
// The model is deliberately coarse — a handful of queueing formulas over
// the same router abstractions the simulator implements — and it is *not*
// expected to match the simulator exactly. Instead its per-workload error
// against the simulator is measured once and recorded as goldens
// (testdata/error_bands.json); `make validate-analytic` then re-runs the
// comparison and fails when the error drifts outside the recorded bands.
// Because both sides are deterministic, any drift means the physics of one
// of them changed — a sanity oracle for the simulator that is independent
// of byte-identity goldens (DESIGN.md §12).
package analytic

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/noc"
)

// rhoMax is where the waiting-time formulas stop: the simulator's buffers
// are finite, so real waits are bounded by backlog capacity rather than
// diverging — past this utilisation every wait saturates to its buffer
// bound, which keeps the latency curves finite and non-decreasing.
const rhoMax = 0.995

// Model holds the per-configuration derived parameters of the estimator.
// Build one with NewModel, then query open-loop latency curves directly or
// run the closed-loop Estimate for a workload.
type Model struct {
	cfg core.Config

	nodes, nCores, nMC int
	mesh               noc.Mesh

	// Packet sizes in flits per class.
	reqShort, reqLong int // ReadRequest, WriteRequest
	repLong, repShort int // ReadReply, WriteReply

	// avgHops is the mean router-to-router Manhattan distance between a
	// compute node and an MC (uniform line interleaving spreads traffic
	// evenly over MCs).
	avgHops float64

	// meshLinks is the number of directed router-to-router links.
	meshLinks int

	// Injection service at an MC's reply NI, in flits/cycle: supply is what
	// the NI architecture can hand the router (split NIs feed every VC in
	// parallel), consume is what the router's switch can drain (crossbar
	// speedup). multiPorts spreads injection queueing over that many
	// parallel injection ports (consumption-improved only).
	supplyRate  float64
	consumeRate float64
	multiPorts  float64
	priority    bool

	ejectRate float64

	// coreClockRatio is core cycles per NoC cycle (>1: cores are faster).
	coreClockRatio float64

	// Buffer bounds: waits saturate at backlog capacity, mirroring the
	// simulator's finite queues (the excess lives upstream as MC stall or
	// backpressure, which packet latency does not count).
	niQueueFlits float64 // reply-side NI injection queue, flits
	vcBufFlits   float64 // per-port router buffering, flits
	mcQueueSlots float64 // MC-side buffered transactions

	// MC service parameters (NoC cycles).
	l2Latency float64
	dramLat   float64
	// dramChanRate is the DRAM channel throughput in lines per NoC cycle.
	dramChanRate float64
}

// NewModel derives the estimator parameters from a full-system config. The
// DA2mesh overlay and the ideal reply fabric are not modelled.
func NewModel(cfg core.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("analytic: %w", err)
	}
	if cfg.Scheme.UsesOverlay() {
		return nil, fmt.Errorf("analytic: scheme %s uses the DA2mesh overlay, which the model does not cover", cfg.Scheme)
	}
	if cfg.IdealReply {
		return nil, fmt.Errorf("analytic: ideal reply fabric is not modelled")
	}
	// noc.PacketSize needs at least one byte per flit; reject instead of
	// panicking — estimate-mode requests carry arbitrary client configs.
	if cfg.ReqLinkBits < 8 || cfg.RepLinkBits < 8 {
		return nil, fmt.Errorf("analytic: link widths must be at least 8 bits (req %d, rep %d)",
			cfg.ReqLinkBits, cfg.RepLinkBits)
	}
	if cfg.DataBytes <= 0 {
		return nil, fmt.Errorf("analytic: DataBytes must be positive, got %d", cfg.DataBytes)
	}

	m := &Model{cfg: cfg}
	m.mesh = noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight}
	m.nodes = m.mesh.Nodes()
	m.nMC = cfg.NumMC
	m.nCores = m.nodes - m.nMC

	m.reqShort = 1
	m.reqLong = noc.PacketSize(noc.WriteRequest, cfg.ReqLinkBits, cfg.DataBytes)
	m.repLong = noc.PacketSize(noc.ReadReply, cfg.RepLinkBits, cfg.DataBytes)
	m.repShort = 1

	var mcNodes []int
	if cfg.EdgeMCPlacement {
		mcNodes = noc.EdgeMCPlacement(m.mesh, cfg.NumMC)
	} else {
		mcNodes = noc.DiamondMCPlacement(m.mesh, cfg.NumMC)
	}
	isMC := make(map[int]bool, len(mcNodes))
	for _, n := range mcNodes {
		isMC[n] = true
	}
	var hops, pairs float64
	for n := 0; n < m.nodes; n++ {
		if isMC[n] {
			continue
		}
		for _, mc := range mcNodes {
			hops += float64(m.mesh.Hops(n, mc))
			pairs++
		}
	}
	if pairs > 0 {
		m.avgHops = hops / pairs
	}
	m.meshLinks = 2 * (m.mesh.Height*(m.mesh.Width-1) + m.mesh.Width*(m.mesh.Height-1))

	// Injection architecture of the scheme (paper §4): the baseline NI
	// supplies one flit/cycle over a single narrow link; ARI's split NI
	// feeds every injection VC in parallel; crossbar speedup lets the
	// switch drain that many flits/cycle from the injection port; the
	// MultiPort scheme adds ports (consumption parallelism) but keeps the
	// one-flit supply.
	scheme := cfg.Scheme
	m.supplyRate = 1
	if scheme.HasSplitNI() {
		m.supplyRate = float64(cfg.VCs)
	}
	m.consumeRate = 1
	if scheme.HasSpeedup() {
		s := cfg.InjSpeedup
		if s <= 0 {
			s = 4 // the paper's sized choice (eq. 1/2)
		}
		if s > cfg.VCs {
			s = cfg.VCs
		}
		m.consumeRate = float64(s)
	}
	m.multiPorts = 1
	if scheme.IsMultiPort() {
		p := cfg.MultiPortPorts
		if p < 1 {
			p = 1
		}
		m.multiPorts = float64(p)
	}
	m.priority = scheme.HasPriority()

	m.ejectRate = float64(cfg.EjectRate)
	if m.ejectRate <= 0 {
		m.ejectRate = 1
	}

	m.coreClockRatio = float64(cfg.CoreClockNum) / float64(cfg.CoreClockDen)

	m.niQueueFlits = float64(cfg.NIQueueFlits)
	if m.niQueueFlits <= 0 {
		m.niQueueFlits = float64(4 * m.repLong) // noc.Config.Validate default
	}
	m.vcBufFlits = float64(cfg.VCs * m.repLong) // default VCDepth is one long packet

	mc := cfg.MC
	m.mcQueueSlots = float64(mc.InQueueCap + mc.L2PipeCap + mc.ReplyQueueCap)
	m.l2Latency = float64(mc.L2Latency)
	if m.l2Latency <= 0 {
		m.l2Latency = 20
	}
	// DRAM access estimate: activate + CAS + burst on a row miss, CAS +
	// burst on a hit; assume an even split, scaled from the memory clock to
	// NoC cycles.
	d := mc.DRAM
	rowMiss := float64(d.TRP + d.TRCD + d.TCL + d.BurstCycles)
	rowHit := float64(d.TCL + d.BurstCycles)
	memClk := float64(cfg.MemClockNum) / float64(cfg.MemClockDen)
	if memClk <= 0 {
		memClk = 1
	}
	m.dramLat = (0.5*rowMiss + 0.5*rowHit) / memClk
	m.dramChanRate = memClk / float64(d.BurstCycles)
	return m, nil
}

// Config returns the configuration the model was built from.
func (m *Model) Config() core.Config { return m.cfg }

// mg1Wait returns the M/G/1 mean waiting time for packets of mean service
// time s and mean squared service time s2, at packet arrival rate lambda,
// saturating at bound (the wait a full buffer of backlog imposes — beyond
// that the simulator pushes the queueing upstream instead of growing it).
func mg1Wait(lambda, s, s2, bound float64) float64 {
	if lambda <= 0 || s <= 0 {
		return 0
	}
	rho := lambda * s
	if rho >= rhoMax {
		return bound
	}
	return math.Min(lambda*s2/(2*(1-rho)), bound)
}

// hopWait returns the per-hop contention delay on a mesh link at flit
// utilisation rho, for packets of mean length lenMean: a residual-service
// approximation (an arriving packet waits out half a packet in service,
// scaled by how busy the link is), saturated at the router's per-port
// buffering.
func (m *Model) hopWait(rho, lenMean float64) float64 {
	if rho >= rhoMax {
		return m.vcBufFlits
	}
	return math.Min(rho/(1-rho)*lenMean/2, m.vcBufFlits)
}

// classMix is the reply- or request-side traffic mix: per-node packet
// injection rate split into short and long packets.
type classMix struct {
	short float64 // short packets per cycle per injecting node
	long  float64 // long packets per cycle per injecting node
}

func (c classMix) packets() float64 { return c.short + c.long }

// injection models one NI→router injection stage for a traffic mix with
// the given flit sizes, returning the mean queueing + serialisation delay
// per packet. throughRho is the mesh utilisation around the injecting
// node's router: without priority, through traffic steals switch slots from
// injection (the §3 parking-lot effect); ARI's prioritisation (§5) hands
// injection the slots first.
func (m *Model) injection(mix classMix, shortLen, longLen int, throughRho float64) float64 {
	consume := m.consumeRate
	if !m.priority {
		// Through flits compete for the switch ports the injection port
		// needs; de-rate consumption by the surrounding load.
		consume *= 1 - 0.5*math.Min(throughRho, rhoMax)
	}
	mu := math.Min(m.supplyRate, consume)
	if mu < 1 {
		mu = 1
	}
	// Per-packet service time through the injection stage: head flit plus
	// the remaining flits at mu flits/cycle.
	sShort := 1 + float64(shortLen-1)/mu
	sLong := 1 + float64(longLen-1)/mu
	lambda := mix.packets()
	if lambda <= 0 {
		return sLong // degenerate: no traffic, report long serialisation
	}
	pLong := mix.long / lambda
	s := (1-pLong)*sShort + pLong*sLong
	s2 := (1-pLong)*sShort*sShort + pLong*sLong*sLong
	// MultiPort spreads waiting over its parallel injection queues
	// (consumption-improved only: serialisation is unchanged because the
	// NI still supplies one flit per cycle in total).
	wait := mg1Wait(lambda, s, s2, m.niQueueFlits/mu) / m.multiPorts
	return wait + s
}

// network models the mesh traversal of a packet of length flits over the
// average route, at average link utilisation rho: one cycle per router plus
// serialisation plus per-hop contention.
func (m *Model) network(flits int, rho, lenMean float64) float64 {
	// The simulator's routers are single-cycle (core leaves the noc
	// pipeline at its default depth of 1); a flit also spends one cycle on
	// each link, so a router traversal costs two cycles end to end.
	routers := m.avgHops + 1
	return 2*routers + float64(flits-1) + routers*m.hopWait(rho, lenMean)
}

// ejection models the destination NI's consumption stage: flits drain at
// EjectRate, shared by every packet converging on that node.
func (m *Model) ejection(mix classMix, shortLen, longLen int) float64 {
	lambda := mix.packets()
	if lambda <= 0 {
		return 0
	}
	pLong := mix.long / lambda
	sShort := float64(shortLen) / m.ejectRate
	sLong := float64(longLen) / m.ejectRate
	s := (1-pLong)*sShort + pLong*sLong
	s2 := (1-pLong)*sShort*sShort + pLong*sLong*sLong
	return mg1Wait(lambda, s, s2, m.vcBufFlits/m.ejectRate)
}

// meshRho returns the average directed-link flit utilisation for traffic of
// totalFlitsPerCycle crossing avgHops+1 links each.
func (m *Model) meshRho(totalFlitsPerCycle float64) float64 {
	if m.meshLinks == 0 {
		return 0
	}
	return totalFlitsPerCycle * (m.avgHops + 1) / float64(m.meshLinks)
}

// hotRho returns the utilisation of the links right at an injecting node:
// its whole flit load spread over the mesh degree — the hotspot XY routing
// cannot avoid (§3's observation that MC-adjacent links saturate first).
func hotRho(flitsPerNode float64) float64 {
	const fanout = 3.5 // mean usable out-degree of an edge-ish mesh node
	return flitsPerNode / fanout
}

// replyLatency returns the mean reply-packet latency (creation at the MC to
// ejection at the core, NoC cycles) for the given per-MC injection mix.
func (m *Model) replyLatency(perMC classMix) float64 {
	flitsPerMC := perMC.short*float64(m.repShort) + perMC.long*float64(m.repLong)
	totalFlits := flitsPerMC * float64(m.nMC)
	rho := m.meshRho(totalFlits)
	lambda := perMC.packets()
	var lenMean float64
	if lambda > 0 {
		lenMean = flitsPerMC / lambda
	}

	inj := m.injection(perMC, m.repShort, m.repLong, math.Max(rho, hotRho(flitsPerMC)))
	// Per-destination ejection: replies spread over every compute node.
	perCore := classMix{
		short: perMC.short * float64(m.nMC) / float64(m.nCores),
		long:  perMC.long * float64(m.nMC) / float64(m.nCores),
	}
	ej := m.ejection(perCore, m.repShort, m.repLong)

	var wLat float64
	if lambda > 0 {
		pLong := perMC.long / lambda
		wLat = (1-pLong)*m.network(m.repShort, rho, lenMean) + pLong*m.network(m.repLong, rho, lenMean)
	} else {
		wLat = m.network(m.repLong, rho, lenMean)
	}
	return inj + wLat + ej
}

// requestLatency returns the mean request-packet latency for the given
// per-core injection mix. The hot stage here is ejection: every request
// converges on one of the few MCs (§3's backward-queueing chain).
func (m *Model) requestLatency(perCore classMix) float64 {
	flitsPerCore := perCore.short*float64(m.reqShort) + perCore.long*float64(m.reqLong)
	totalFlits := flitsPerCore * float64(m.nCores)
	rho := m.meshRho(totalFlits)
	lambda := perCore.packets()
	var lenMean float64
	if lambda > 0 {
		lenMean = flitsPerCore / lambda
	}

	// Cores inject with the baseline single-link NI regardless of scheme
	// (ARI accelerates the reply side); model it as supply=consume=1.
	sShort := float64(m.reqShort)
	sLong := float64(m.reqLong)
	var s, s2 float64
	if lambda > 0 {
		pLong := perCore.long / lambda
		s = (1-pLong)*sShort + pLong*sLong
		s2 = (1-pLong)*sShort*sShort + pLong*sLong*sLong
	}
	inj := mg1Wait(lambda, s, s2, m.niQueueFlits) + s

	perMC := classMix{
		short: perCore.short * float64(m.nCores) / float64(m.nMC),
		long:  perCore.long * float64(m.nCores) / float64(m.nMC),
	}
	ej := m.ejection(perMC, m.reqShort, m.reqLong)

	var wLat float64
	if lambda > 0 {
		pLong := perCore.long / lambda
		wLat = (1-pLong)*m.network(m.reqShort, rho, lenMean) + pLong*m.network(m.reqLong, rho, lenMean)
	} else {
		wLat = m.network(m.reqShort, rho, lenMean)
	}
	return inj + wLat + ej
}

// ReplyLatencyAt is the open-loop reply-latency curve: the mean read-reply
// latency when every MC injects lambda reply packets per cycle (all long).
// It is monotonically non-decreasing in lambda — the property the fuzz
// suite locks — and grows through the overload penalty past saturation.
func (m *Model) ReplyLatencyAt(lambda float64) float64 {
	return m.replyLatency(classMix{long: lambda})
}

// RequestLatencyAt is the open-loop request-latency curve: the mean
// read-request latency when every core injects lambda request packets per
// cycle (all short).
func (m *Model) RequestLatencyAt(lambda float64) float64 {
	return m.requestLatency(classMix{short: lambda})
}

// replyFlitCapacity returns the reply network's sustainable flit throughput
// per MC per cycle: the smallest of the injection, mesh-bisection-average
// and ejection stages.
func (m *Model) replyFlitCapacity() float64 {
	// Injection: each of the (MultiPort's) parallel injection ports hands
	// the router min(supply, consume) flits/cycle.
	injCap := m.multiPorts * math.Min(m.supplyRate, m.consumeRate)
	// Mesh: per-MC share of directed-link flit capacity over the average
	// route length.
	meshCap := float64(m.meshLinks) / ((m.avgHops + 1) * float64(m.nMC))
	// Ejection: per-MC share of the aggregate core-side drain rate.
	ejCap := float64(m.nCores) * m.ejectRate / float64(m.nMC)
	return math.Min(injCap, math.Min(meshCap, ejCap))
}

// requestFlitCapacity returns the request network's sustainable flit
// throughput per core per cycle. Cores inject with the baseline one-flit NI
// regardless of scheme; the converging stage is the MCs' ejection share.
func (m *Model) requestFlitCapacity() float64 {
	meshCap := float64(m.meshLinks) / ((m.avgHops + 1) * float64(m.nCores))
	ejCap := float64(m.nMC) * m.ejectRate / float64(m.nCores)
	return math.Min(1, math.Min(meshCap, ejCap))
}

// ReplySaturationRate returns the reply-network saturation throughput in
// long-reply packets per cycle per MC. It is monotone non-decreasing in
// reply link bandwidth (wider links mean fewer flits per packet) — the
// second property the fuzz suite locks.
func (m *Model) ReplySaturationRate() float64 {
	return m.replyFlitCapacity() / float64(m.repLong)
}

// mcServiceTime returns the mean MC turnaround (request ejected → reply
// created) for the given L2 hit rate and per-MC request rate: bank service
// behind an M/M/1-style queue, with the wait bounded by the MC's finite
// buffering (beyond that the MC backpressures the request network instead).
func (m *Model) mcServiceTime(l2Hit, lambdaPerMC float64) float64 {
	s := l2Hit*m.l2Latency + (1-l2Hit)*m.dramLat
	rho := lambdaPerMC * (1 - l2Hit) / m.dramChanRate // DRAM channel is the server
	if rho >= rhoMax {
		return s + m.mcQueueSlots*s
	}
	return s + math.Min(rho/(1-rho)*s, m.mcQueueSlots*s)
}
