package simeq

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// bigMeshConfig scales the Table I configuration to a 16x16 mesh: the size
// where sharded stepping is meant to pay off (each of 8 shards still owns
// two full rows) and where the parallel commit phase crosses many shard
// boundaries per cycle. MC count grows with the mesh edge so the diamond
// placement stays proportionate.
func bigMeshConfig() core.Config {
	cfg := ShortConfig()
	cfg.MeshWidth = 16
	cfg.MeshHeight = 16
	cfg.NumMC = 16
	return cfg
}

// TestShardedBigMeshMatchesSerial is the byte-identity lock at scale: on a
// 16x16 mesh every shard count the benchmarks exercise (2, 4, 8 — plus the
// degenerate 1) must reproduce the serial result exactly, for all three
// covered schemes. The big mesh is the configuration where the parallel
// commit phase actually runs concurrently over many destination shards, so
// an ordering bug that a 6x6 two-shard run masks (few boundary links, tiny
// outboxes) has the most room to surface here.
func TestShardedBigMeshMatchesSerial(t *testing.T) {
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range shardSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			cfg := bigMeshConfig()
			cfg.Scheme = scheme
			serial := RunEncoded(t, cfg, k)
			if len(serial) == 0 {
				t.Fatal("empty encoded result")
			}
			for _, shards := range []int{1, 2, 4, 8} {
				cfg.Shards = shards
				got := RunEncoded(t, cfg, k)
				if !bytes.Equal(got, serial) {
					t.Fatalf("16x16 %s shards=%d: result differs from serial\n%s",
						scheme, shards, diffLine(got, serial))
				}
			}
		})
	}
}

// TestShardedBigMeshStableAcrossRepeats re-runs the 8-shard 16x16
// configuration in-process: with eight commit workers racing over real
// goroutine interleavings, any schedule dependence in the merge order shows
// up as run-to-run jitter even when one serial comparison passes.
func TestShardedBigMeshStableAcrossRepeats(t *testing.T) {
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := bigMeshConfig()
	cfg.Scheme = core.AdaARI
	cfg.Shards = 8
	first := RunEncoded(t, cfg, k)
	if len(first) == 0 {
		t.Fatal("empty encoded result")
	}
	for i := 1; i < 3; i++ {
		got := RunEncoded(t, cfg, k)
		if !bytes.Equal(got, first) {
			t.Fatalf("repeat %d diverged from first 8-shard run\n%s", i, diffLine(got, first))
		}
	}
}
