package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// Example runs the Table I system on one benchmark under the baseline and
// under ARI, printing whether ARI won (it must, on a NoC-bound kernel).
func Example() {
	kernel, err := trace.ByName("bfs")
	if err != nil {
		fmt.Println(err)
		return
	}
	run := func(s core.Scheme) float64 {
		cfg := core.DefaultConfig()
		cfg.Scheme = s
		cfg.WarmupCycles = 500
		cfg.MeasureCycles = 2000
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			fmt.Println(err)
			return 0
		}
		return sim.Run().IPC
	}
	base := run(core.AdaBaseline)
	ari := run(core.AdaARI)
	fmt.Println("ARI faster:", ari > base)
	// Output:
	// ARI faster: true
}

// ExampleChooseSpeedup applies the paper's eq. (1)/(2) sizing rule.
func ExampleChooseSpeedup() {
	// A peak ideal injection rate of 0.3 packets/cycle with ~8.2 flits per
	// reply packet needs ceil(0.3*8.2)=3 switch-ports; a mesh bounds S at
	// min(4 outputs, 4 VCs).
	fmt.Println(core.ChooseSpeedup(0.3, 8.2, 4, 4))
	fmt.Println(core.ChooseSpeedup(0.9, 8.2, 4, 4))
	// Output:
	// 3
	// 4
}
