package gpu

import (
	"testing"

	"repro/internal/mem"
)

func BenchmarkCoreTickCompute(b *testing.B) {
	c, err := NewCore(0, 0, smallCoreConfig(), &scriptedWorkload{compute: 1 << 30},
		func(*mem.Transaction) bool { return true })
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}

func BenchmarkCoreTickMemoryBound(b *testing.B) {
	// Every instruction is a load; replies return immediately, so the core
	// exercises the full issue + LSU + MSHR + fill path each iteration.
	var core *Core
	send := func(txn *mem.Transaction) bool {
		core.ReceiveReply(txn)
		return true
	}
	c, err := NewCore(0, 0, smallCoreConfig(), &scriptedWorkload{compute: 0, stride: 128}, send)
	if err != nil {
		b.Fatal(err)
	}
	core = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Tick()
	}
}
