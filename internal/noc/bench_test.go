package noc

import "testing"

// benchNet builds a loaded 6x6 reply-like network for stepping benchmarks.
func benchNet(b *testing.B, ari bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]NodeConfig, mesh.Nodes())
		for _, n := range DiamondMCPlacement(mesh, 8) {
			cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetEjectHandler(func(int, *Packet, int64) {})
	return n
}

// stepLoaded drives the network at a steady few-to-many load per iteration.
func stepLoaded(b *testing.B, n *Network) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := mcs[i%len(mcs)]
		n.Inject(mc, &Packet{Type: ReadReply, Dst: next(36), Size: long})
		n.Step()
	}
}

func BenchmarkNetworkStepBaseline(b *testing.B) { stepLoaded(b, benchNet(b, false)) }
func BenchmarkNetworkStepARI(b *testing.B)      { stepLoaded(b, benchNet(b, true)) }

// BenchmarkNetworkStepFaulty prices the recovery protocol layer in the hot
// stepping path: the ARI network with retransmission buffers on, one dead
// link (so every route goes through the fault table) and a rolling
// corruption window that keeps CRC drops, NACK/ACK sideband traffic and
// retransmissions live throughout. Drives CorruptLink/KillLink directly —
// internal/fault would be an import cycle from this package.
func BenchmarkNetworkStepFaulty(b *testing.B) {
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:           mesh,
		VCs:            4,
		LinkBits:       128,
		DataBytes:      128,
		Routing:        RouteMinAdaptive,
		NonAtomicVC:    true,
		RetransBufPkts: 8,
		PriorityLevels: 2,
	}
	cfg.Nodes = make([]NodeConfig, mesh.Nodes())
	for _, n := range DiamondMCPlacement(mesh, 8) {
		cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetEjectHandler(func(int, *Packet, int64) {})
	if !n.KillLink(14, int(East)) {
		b.Fatal("kill refused")
	}

	mcs := DiamondMCPlacement(mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	long := cfg.LongPacketFlits()
	var id uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			// Re-arm a short corruption window on a rotating mesh link.
			n.CorruptLink(next(36), next(NumDirections), n.Now()+8)
		}
		id++
		pkt := &Packet{ID: id, Type: ReadReply, Dst: next(36), Size: long}
		pkt.Check = PacketCheck(pkt)
		n.Inject(mcs[i%len(mcs)], pkt)
		n.Step()
	}
}

// benchScanNet builds the baseline 6x6 network with the chosen stepping
// mode for the event-vs-scan comparison benchmarks.
func benchScanNet(b *testing.B, scan bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	n, err := NewNetwork(Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
		ScanStep:    scan,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Recycle delivered packets so steady state allocates nothing.
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepAtLoad drives the network injecting one long packet every `period`
// cycles from rotating MC nodes: period 20 is the sparse traffic of
// low-sensitivity kernels, period 4 a medium reply load.
func stepAtLoad(b *testing.B, n *Network, period int) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%period == 0 {
			pkt := n.GetPacket()
			pkt.Type = ReadReply
			pkt.Dst = next(36)
			pkt.Size = long
			if !n.Inject(mcs[(i/period)%len(mcs)], pkt) {
				n.PutPacket(pkt)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepEventLowLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 20) }
func BenchmarkNetworkStepScanLowLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 20) }
func BenchmarkNetworkStepEventMedLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 4) }
func BenchmarkNetworkStepScanMedLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 4) }

// benchShardNet builds a 16x16 mesh stepped across k shards — large enough
// that each shard owns multiple rows of routers and the per-step work
// dominates the barrier cost.
func benchShardNet(b *testing.B, shards int) *Network {
	b.Helper()
	n, err := NewNetwork(Config{
		Mesh:        Mesh{Width: 16, Height: 16},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if shards > 1 {
		if _, err := n.SetShards(shards, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(n.Close)
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepShardLoad drives dense all-to-all traffic (8 long-packet injections
// per cycle spread over the whole mesh) so every shard is busy every step.
func stepShardLoad(b *testing.B, n *Network) {
	cfg := n.Config()
	nodes := cfg.Mesh.Nodes()
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	long := cfg.LongPacketFlits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8; s++ {
			src, dst := next(nodes), next(nodes)
			if src == dst {
				continue
			}
			pkt := n.GetPacket()
			pkt.Type = ReadReply
			pkt.Dst = dst
			pkt.Size = long
			if !n.Inject(src, pkt) {
				n.PutPacket(pkt)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepShards1(b *testing.B) { stepShardLoad(b, benchShardNet(b, 1)) }
func BenchmarkNetworkStepShards2(b *testing.B) { stepShardLoad(b, benchShardNet(b, 2)) }
func BenchmarkNetworkStepShards4(b *testing.B) { stepShardLoad(b, benchShardNet(b, 4)) }
func BenchmarkNetworkStepShards8(b *testing.B) { stepShardLoad(b, benchShardNet(b, 8)) }

func BenchmarkRouteCompute(b *testing.B) {
	m := Mesh{Width: 8, Height: 8}
	var scratch []routeCandidate
	for i := 0; i < b.N; i++ {
		scratch = computeRoute(m, RouteMinAdaptive, i%64, (i*7)%64, 4, scratch[:0])
	}
}

func BenchmarkFlitQueue(b *testing.B) {
	q := newFlitQueue(9)
	pkt := &Packet{Size: 9}
	for i := 0; i < b.N; i++ {
		for s := 0; s < 9; s++ {
			q.push(flit{pkt: pkt, seq: s})
		}
		for s := 0; s < 9; s++ {
			q.pop()
		}
	}
}
