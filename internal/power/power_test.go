package power

import (
	"testing"
	"testing/quick"
)

func sampleActivity() Activity {
	return Activity{
		NoCCycles:      10000,
		Instructions:   500000,
		L1Accesses:     100000,
		L2Accesses:     40000,
		DRAMReads:      20000,
		DRAMWrites:     5000,
		ReqFlitHops:    30000,
		RepFlitHops:    90000,
		BufferedFlits:  120000,
		InjectionFlits: 60000,
	}
}

func TestEstimatePositive(t *testing.T) {
	b := Estimate(sampleActivity(), false, DefaultParams())
	if b.Dynamic <= 0 || b.Static <= 0 || b.Total() != b.Dynamic+b.Static {
		t.Fatalf("bad breakdown %+v", b)
	}
}

func TestARIOverheadSmall(t *testing.T) {
	p := DefaultParams()
	base := Estimate(sampleActivity(), false, p)
	ari := Estimate(sampleActivity(), true, p)
	if ari.Dynamic != base.Dynamic {
		t.Fatal("ARI flag changed dynamic energy for identical activity")
	}
	rel := ari.Static / base.Static
	if rel <= 1 || rel > 1.01 {
		t.Fatalf("ARI static overhead %v, want within (1, 1.01] (<1%% area)", rel)
	}
}

func TestStaticScalesWithCycles(t *testing.T) {
	p := DefaultParams()
	a := sampleActivity()
	b1 := Estimate(a, false, p)
	a.NoCCycles *= 2
	b2 := Estimate(a, false, p)
	if b2.Static != 2*b1.Static {
		t.Fatalf("static energy not linear in cycles: %v vs %v", b1.Static, b2.Static)
	}
	if b2.Dynamic != b1.Dynamic {
		t.Fatal("dynamic energy changed with cycles alone")
	}
}

func TestPerInstruction(t *testing.T) {
	b := Breakdown{Dynamic: 100, Static: 50}
	pi, err := PerInstruction(b, 10)
	if err != nil || pi.Dynamic != 10 || pi.Static != 5 {
		t.Fatalf("per-instruction = %+v, %v", pi, err)
	}
	if _, err := PerInstruction(b, 0); err == nil {
		t.Fatal("zero instructions accepted")
	}
}

// TestFasterSchemeSavesEnergyPerWork reproduces the Fig 14 mechanism: same
// dynamic work done in fewer cycles means less static energy per unit work.
func TestFasterSchemeSavesEnergyPerWork(t *testing.T) {
	p := DefaultParams()
	slow := sampleActivity()
	fast := slow
	// The faster scheme completes 15% more instructions in the same window
	// (fixed-horizon runs), with proportional activity.
	fast.Instructions = uint64(float64(fast.Instructions) * 1.15)
	fast.L1Accesses = uint64(float64(fast.L1Accesses) * 1.15)
	fast.DRAMReads = uint64(float64(fast.DRAMReads) * 1.15)

	slowPI, _ := PerInstruction(Estimate(slow, false, p), slow.Instructions)
	fastPI, _ := PerInstruction(Estimate(fast, true, p), fast.Instructions)
	if fastPI.Total() >= slowPI.Total() {
		t.Fatalf("faster scheme costs more per instruction: %v vs %v", fastPI.Total(), slowPI.Total())
	}
	saving := 1 - fastPI.Total()/slowPI.Total()
	if saving < 0.005 || saving > 0.15 {
		t.Fatalf("saving %.3f outside the plausible Fig 14 band", saving)
	}
}

func TestEstimateMonotonicQuick(t *testing.T) {
	p := DefaultParams()
	f := func(extra uint16) bool {
		a := sampleActivity()
		b1 := Estimate(a, false, p)
		a.DRAMReads += uint64(extra)
		a.RepFlitHops += uint64(extra)
		b2 := Estimate(a, false, p)
		return b2.Dynamic >= b1.Dynamic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
