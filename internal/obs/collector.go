package obs

import (
	"repro/internal/noc"
	"repro/internal/stats"
)

// HopEvent is one per-hop lifecycle event of a traced packet.
type HopEvent struct {
	Node  int
	Stage noc.TraceStage
	Cycle int64
}

// PacketTrace is the recorded lifecycle of one sampled packet.
type PacketTrace struct {
	ID       uint64
	Type     noc.PacketType
	Src, Dst int
	// Enqueued is when the node handed the packet to the NI; Injected when
	// the head flit left the NI; Ejected when the tail flit was consumed.
	Enqueued, Injected, Ejected int64
	// Hops holds the per-hop VA-grant and switch-traversal events in
	// pipeline order.
	Hops []HopEvent
}

// lastSwitch returns the cycle of the final switch traversal (the hop that
// staged the head flit toward the destination's ejector), or Injected when
// no hop was recorded.
func (p *PacketTrace) lastSwitch() int64 {
	for i := len(p.Hops) - 1; i >= 0; i-- {
		if p.Hops[i].Stage == noc.TraceSwitch {
			return p.Hops[i].Cycle
		}
	}
	return p.Injected
}

// Collector implements noc.Tracer: it assembles the event stream of one
// fabric into per-packet lifecycles. It is single-goroutine like the
// network that feeds it; read Done only after the run finishes.
type Collector struct {
	// Label names the fabric ("req", "rep") in exports.
	Label string
	open  map[uint64]*PacketTrace
	done  []*PacketTrace
}

// NewCollector returns a collector labelled for exports.
func NewCollector(label string) *Collector {
	return &Collector{Label: label, open: make(map[uint64]*PacketTrace)}
}

// PacketEvent records one lifecycle event (noc.Tracer).
func (c *Collector) PacketEvent(pktID uint64, t noc.PacketType, src, dst, node int, stage noc.TraceStage, cycle int64) {
	p := c.open[pktID]
	if p == nil {
		if stage != noc.TraceNIEnqueue {
			return // packet sampled mid-flight (tracer attached late): skip
		}
		p = &PacketTrace{ID: pktID, Type: t, Src: src, Dst: dst, Enqueued: cycle}
		c.open[pktID] = p
		return
	}
	switch stage {
	case noc.TraceInject:
		p.Injected = cycle
	case noc.TraceVAGrant, noc.TraceSwitch:
		p.Hops = append(p.Hops, HopEvent{Node: node, Stage: stage, Cycle: cycle})
	case noc.TraceEject:
		p.Ejected = cycle
		c.done = append(c.done, p)
		delete(c.open, pktID)
	}
}

// Done returns the completed packet lifecycles in ejection order. Packets
// still in flight at the end of the run are excluded.
func (c *Collector) Done() []*PacketTrace { return c.done }

// Open returns the number of sampled packets still in flight.
func (c *Collector) Open() int { return len(c.open) }

// Decomposition is the paper-style latency attribution over a set of traced
// packets: Queue is NI queueing (enqueue -> injection grant, the reply-
// injection bottleneck of Fig. 2/3), Net is network transit (injection ->
// last switch traversal), Eject is ejection serialisation (last switch ->
// tail consumed), Total is end to end. All in cycles.
type Decomposition struct {
	Packets                  uint64
	Queue, Net, Eject, Total stats.Mean
}

// QueueFraction returns the share of total latency spent queueing at the NI.
func (d *Decomposition) QueueFraction() float64 {
	if d.Total.Sum() == 0 {
		return 0
	}
	return d.Queue.Sum() / d.Total.Sum()
}

// Decompose attributes the latency of every completed packet of the given
// types (all types when none are given).
func (c *Collector) Decompose(types ...noc.PacketType) Decomposition {
	want := func(t noc.PacketType) bool {
		if len(types) == 0 {
			return true
		}
		for _, w := range types {
			if w == t {
				return true
			}
		}
		return false
	}
	var d Decomposition
	for _, p := range c.done {
		if !want(p.Type) {
			continue
		}
		d.Packets++
		last := p.lastSwitch()
		d.Queue.Add(float64(p.Injected - p.Enqueued))
		d.Net.Add(float64(last - p.Injected))
		d.Eject.Add(float64(p.Ejected - last))
		d.Total.Add(float64(p.Ejected - p.Enqueued))
	}
	return d
}
