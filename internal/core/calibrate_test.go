package core

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/trace"
)

func TestIdealReplyFabricWiring(t *testing.T) {
	k, _ := trace.ByName("bfs")
	cfg := fastConfig(AdaBaseline)
	cfg.IdealReply = true
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.ReplyNet().(*noc.IdealFabric); !ok {
		t.Fatalf("reply fabric is %T, want *noc.IdealFabric", sim.ReplyNet())
	}
	r := sim.Run()
	if r.Instructions == 0 || r.RepliesSent == 0 {
		t.Fatal("ideal-reply run made no progress")
	}
	// With unlimited reply bandwidth, MC data never stalls on the NI.
	if r.MCBlockedCycles != 0 {
		t.Fatalf("ideal fabric blocked %d cycles", r.MCBlockedCycles)
	}
}

func TestIdealBeatsRealNetwork(t *testing.T) {
	k, _ := trace.ByName("bfs")
	real := runBench(t, "bfs", fastConfig(AdaBaseline))
	cfg := fastConfig(AdaBaseline)
	cfg.IdealReply = true
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	ideal := sim.Run()
	if ideal.IPC <= real.IPC {
		t.Fatalf("ideal reply fabric IPC %.3f not above real %.3f", ideal.IPC, real.IPC)
	}
}

func TestCalibrateSpeedup(t *testing.T) {
	cfg := fastConfig(AdaBaseline)
	for _, name := range []string{"bfs", "lavaMD"} {
		k, _ := trace.ByName(name)
		cal, err := CalibrateSpeedup(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		if cal.Benchmark != name {
			t.Fatalf("calibration tagged %q", cal.Benchmark)
		}
		if cal.RequiredS < 1 || cal.ChosenS < 1 || cal.ChosenS > 4 {
			t.Fatalf("implausible sizing %+v", cal)
		}
		if cal.ChosenS > cal.RequiredS {
			t.Fatalf("chosen S %d exceeds required %d", cal.ChosenS, cal.RequiredS)
		}
		if cal.AvgFlitsPerPkt < 1 || cal.AvgFlitsPerPkt > 9 {
			t.Fatalf("avg flits per packet %v out of range", cal.AvgFlitsPerPkt)
		}
	}
	// A memory-bound benchmark must demand more speedup than a
	// compute-bound one.
	kHigh, _ := trace.ByName("bfs")
	kLow, _ := trace.ByName("lavaMD")
	ch, _ := CalibrateSpeedup(cfg, kHigh)
	cl, _ := CalibrateSpeedup(cfg, kLow)
	if ch.PeakRatePerMC <= cl.PeakRatePerMC {
		t.Fatalf("bfs peak rate %.4f not above lavaMD %.4f", ch.PeakRatePerMC, cl.PeakRatePerMC)
	}
}
