package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TableI prints the evaluated configuration, mirroring the paper's Table I.
func TableI(r *Runner) (*Figure, error) {
	cfg := r.Base
	t := stats.NewTable("Parameter", "Value")
	mesh := noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight}
	t.AddRow("Compute Nodes", fmt.Sprintf("%d, %d MHz", mesh.Nodes()-cfg.NumMC, cfg.CoreClockNum))
	t.AddRow("Memory Controllers", fmt.Sprintf("%d, FR-FCFS", cfg.NumMC))
	t.AddRow("Warp Size", "32")
	t.AddRow("SIMD Pipeline Width", "8")
	t.AddRow("L1 Cache / Core", fmt.Sprintf("%dKB", cfg.Core.L1.SizeBytes>>10))
	t.AddRow("L2 Cache / MC", fmt.Sprintf("%dKB", cfg.MC.L2.SizeBytes>>10))
	t.AddRow("Warp Scheduling", "Greedy-then-oldest")
	t.AddRow("MC Placement", "Diamond")
	t.AddRow("GDDR5 Timing", fmt.Sprintf("tRP=%d tRC=%d tRRD=%d tRAS=%d tRCD=%d tCL=%d",
		cfg.MC.DRAM.TRP, cfg.MC.DRAM.TRC, cfg.MC.DRAM.TRRD, cfg.MC.DRAM.TRAS, cfg.MC.DRAM.TRCD, cfg.MC.DRAM.TCL))
	t.AddRow("Memory Clock", fmt.Sprintf("%.2f GHz", float64(cfg.MemClockNum)/float64(cfg.MemClockDen)))
	t.AddRow("Topology", fmt.Sprintf("2D Mesh %dx%d", cfg.MeshWidth, cfg.MeshHeight))
	t.AddRow("Routing", "XY, Min. adaptive")
	t.AddRow("Interconnect & L2 Clock", "1 GHz")
	t.AddRow("Virtual Channels", fmt.Sprintf("%d per port, 1 pkt per VC", cfg.VCs))
	t.AddRow("Allocator", "Separable Input First")
	t.AddRow("Link Bandwidth", fmt.Sprintf("%d bit/cycle", cfg.RepLinkBits))
	longPkt := noc.PacketSize(noc.ReadReply, cfg.RepLinkBits, cfg.DataBytes)
	t.AddRow("NI Injection Queue", fmt.Sprintf("%d flits", 4*longPkt))
	return &Figure{
		ID:    "Table I",
		Title: "Key parameters for evaluation",
		Table: t,
	}, nil
}

// Fig3 compares request vs reply in-network packet latency per benchmark
// under the baseline (paper: request ~= 5.6x reply on average, despite the
// bottleneck living on the reply side).
func Fig3(r *Runner) (*Figure, error) {
	cfg := r.withScheme(core.XYBaseline)
	jobs := make([]Job, len(r.Benchmarks))
	for i, k := range r.Benchmarks {
		jobs[i] = Job{Cfg: cfg, Kernel: k}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "req_latency", "rep_latency", "req/rep (norm)")
	var ratios []float64
	for i, k := range r.Benchmarks {
		req := meanNet(&res[i].Req, noc.ReadRequest, noc.WriteRequest)
		rep := meanNet(&res[i].Rep, noc.ReadReply, noc.WriteReply)
		ratio := safeDiv(req, rep)
		ratios = append(ratios, ratio)
		t.AddRow(k.Name, fmt.Sprintf("%.1f", req), fmt.Sprintf("%.1f", rep), fmt.Sprintf("%.2f", ratio))
	}
	avg := mean(ratios)
	return &Figure{
		ID:      "Fig 3",
		Title:   "Request vs reply packet latency (normalised to reply network)",
		Paper:   "request packet latency ~= 5.6x reply packet latency on average",
		Table:   t,
		Summary: map[string]float64{"avg_req_over_rep": avg},
	}, nil
}

// Fig4 measures the IPC impact of doubling each network's link width
// (paper: 256-bit request links +0.8%, 256-bit reply links +25.6%).
func Fig4(r *Runner) (*Figure, error) {
	type variant struct {
		label            string
		reqBits, repBits int
	}
	variants := []variant{
		{"128-128", 128, 128},
		{"256-128", 256, 128},
		{"128-256", 128, 256},
	}
	jobs := make([]Job, 0, len(variants)*len(r.Benchmarks))
	for _, k := range r.Benchmarks {
		for _, v := range variants {
			cfg := r.withScheme(core.XYBaseline)
			cfg.ReqLinkBits, cfg.RepLinkBits = v.reqBits, v.repBits
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "128-128", "256-128", "128-256")
	perVariant := make([][]float64, len(variants))
	for i, k := range r.Benchmarks {
		base := res[i*len(variants)].IPC
		row := []string{k.Name}
		for v := range variants {
			norm := safeDiv(res[i*len(variants)+v].IPC, base)
			perVariant[v] = append(perVariant[v], norm)
			row = append(row, fmt.Sprintf("%.3f", norm))
		}
		t.AddRow(row...)
	}
	gmReq := stats.GeoMean(perVariant[1])
	gmRep := stats.GeoMean(perVariant[2])
	t.AddRow("geomean", "1.000", fmt.Sprintf("%.3f", gmReq), fmt.Sprintf("%.3f", gmRep))
	return &Figure{
		ID:    "Fig 4",
		Title: "IPC for request-reply link width combinations (norm. to 128-128)",
		Paper: "doubling request links: +0.8% IPC; doubling reply links: +25.6%",
		Table: t,
		Summary: map[string]float64{
			"req_double_gain": gmReq - 1,
			"rep_double_gain": gmRep - 1,
		},
	}, nil
}

// Fig5 reports the flit-weighted packet-type mix (paper: the reply network
// carries ~72.7% of total NoC traffic vs 27.3% for the request network).
func Fig5(r *Runner) (*Figure, error) {
	cfg := r.withScheme(core.XYBaseline)
	jobs := make([]Job, len(r.Benchmarks))
	for i, k := range r.Benchmarks {
		jobs[i] = Job{Cfg: cfg, Kernel: k}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "read_req", "write_req", "read_rep", "write_rep", "reply_share")
	var replyShares []float64
	for i, k := range r.Benchmarks {
		var total float64
		shares := make([]float64, noc.NumPacketTypes)
		for pt := 0; pt < noc.NumPacketTypes; pt++ {
			f := float64(res[i].Req.FlitsInjected[pt] + res[i].Rep.FlitsInjected[pt])
			shares[pt] = f
			total += f
		}
		if total > 0 {
			for pt := range shares {
				shares[pt] /= total
			}
		}
		reply := shares[noc.ReadReply] + shares[noc.WriteReply]
		replyShares = append(replyShares, reply)
		t.AddRow(k.Name,
			fmt.Sprintf("%.1f%%", 100*shares[noc.ReadRequest]),
			fmt.Sprintf("%.1f%%", 100*shares[noc.WriteRequest]),
			fmt.Sprintf("%.1f%%", 100*shares[noc.ReadReply]),
			fmt.Sprintf("%.1f%%", 100*shares[noc.WriteReply]),
			fmt.Sprintf("%.1f%%", 100*reply))
	}
	avg := mean(replyShares)
	return &Figure{
		ID:      "Fig 5",
		Title:   "Relative percentage of the 4 packet types (flit-weighted)",
		Paper:   "reply network carries ~72.7% of total NoC traffic",
		Table:   t,
		Summary: map[string]float64{"avg_reply_traffic_share": avg},
	}, nil
}

// LinkUtil reproduces §3's utilisation analysis: reply-network internal
// links average ~0.084 flit/cycle while injection links run ~0.39
// flit/cycle (>4.5x), pinpointing the injection points as the bottleneck.
func LinkUtil(r *Runner) (*Figure, error) {
	cfg := r.withScheme(core.XYBaseline)
	jobs := make([]Job, len(r.Benchmarks))
	for i, k := range r.Benchmarks {
		jobs[i] = Job{Cfg: cfg, Kernel: k}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "reply_link_util", "reply_inj_util(MC)", "ratio")
	var links, injs []float64
	numMC := float64(r.Base.NumMC)
	for i, k := range r.Benchmarks {
		lu := res[i].Rep.MeshLinkUtil()
		// Injection-link utilisation over the links that actually inject
		// (the MC nodes), not every node's unused NI link.
		totalInj := float64(res[i].Rep.InjLinkFlits)
		iu := safeDiv(totalInj/float64(res[i].Rep.Cycles), numMC)
		links = append(links, lu)
		injs = append(injs, iu)
		t.AddRow(k.Name, fmt.Sprintf("%.4f", lu), fmt.Sprintf("%.4f", iu), fmt.Sprintf("%.1fx", safeDiv(iu, lu)))
	}
	avgLink, avgInj := mean(links), mean(injs)
	return &Figure{
		ID:    "§3 util",
		Title: "Reply-network link vs injection-link utilisation (flits/cycle)",
		Paper: "average link util 0.084 vs injection-link util 0.39 (>4.5x)",
		Table: t,
		Summary: map[string]float64{
			"avg_reply_link_util": avgLink,
			"avg_reply_inj_util":  avgInj,
			"inj_over_link":       safeDiv(avgInj, avgLink),
		},
	}, nil
}

// Fig6 grows the NI injection-queue capacity and shows occupancy tracking
// it (capacity 4 -> 80 long packets), confirming the injection point as the
// bottleneck.
func Fig6(r *Runner) (*Figure, error) {
	benches := []string{"pathfinder", "hotspot", "srad", "bfs"}
	capsPkts := []int{4, 12, 28, 50, 80}
	longPkt := noc.PacketSize(noc.ReadReply, r.Base.RepLinkBits, r.Base.DataBytes)

	var jobs []Job
	for _, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, cp := range capsPkts {
			cfg := r.withScheme(core.XYBaseline)
			cfg.NIQueueFlits = cp * longPkt
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	header := []string{"capacity(pkts)"}
	header = append(header, benches...)
	t := stats.NewTable(header...)
	var trackRatio []float64
	for ci, cp := range capsPkts {
		row := []string{fmt.Sprintf("%d", cp)}
		for bi := range benches {
			occPkts := res[bi*len(capsPkts)+ci].NIOccAvgFlits / float64(longPkt)
			row = append(row, fmt.Sprintf("%.1f", occPkts))
			trackRatio = append(trackRatio, safeDiv(occPkts, float64(cp)))
		}
		t.AddRow(row...)
	}
	return &Figure{
		ID:      "Fig 6",
		Title:   "NI injection queue occupancy vs capacity (long packets)",
		Paper:   "occupancy closely tracks capacity as it grows 4 -> 80 packets",
		Table:   t,
		Summary: map[string]float64{"avg_occupancy_over_capacity": mean(trackRatio)},
	}, nil
}

// meanNet averages in-network (inject->eject) latency over packet types.
func meanNet(s *noc.NetStats, types ...noc.PacketType) float64 {
	var m stats.Mean
	for _, t := range types {
		m.Merge(s.NetLatency[t])
	}
	return m.Value()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
