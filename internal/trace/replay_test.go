package trace

import (
	"bytes"
	"testing"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	k := testKernel()
	const cores = 2
	gen, err := NewGenerator(k, cores, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewRecorder(gen, &buf, cores, k.WarpsPerCore)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the recorder the way a core does: NextCompute then NextMem,
	// capturing the stream for comparison.
	type step struct {
		compute int
		write   bool
		addrs   []uint64
	}
	var want []step
	for i := 0; i < 200; i++ {
		core := i % cores
		warp := (i / cores) % k.WarpsPerCore
		c := rec.NextCompute(core, warp)
		w, addrs := rec.NextMem(core, warp, nil)
		cp := make([]uint64, len(addrs))
		copy(cp, addrs)
		want = append(want, step{c, w, cp})
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Records() != 200 {
		t.Fatalf("recorded %d records, want 200", rec.Records())
	}

	rep, err := NewReplayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gc, gw := rep.Shape()
	if gc != cores || gw != k.WarpsPerCore {
		t.Fatalf("shape = %dx%d, want %dx%d", gc, gw, cores, k.WarpsPerCore)
	}
	for i, s := range want {
		core := i % cores
		warp := (i / cores) % k.WarpsPerCore
		c := rep.NextCompute(core, warp)
		w, addrs := rep.NextMem(core, warp, nil)
		if c != s.compute || w != s.write || len(addrs) != len(s.addrs) {
			t.Fatalf("step %d mismatch: got (%d,%v,%d addrs), want (%d,%v,%d addrs)",
				i, c, w, len(addrs), s.compute, s.write, len(s.addrs))
		}
		for j := range addrs {
			if addrs[j] != s.addrs[j] {
				t.Fatalf("step %d addr %d: %x != %x", i, j, addrs[j], s.addrs[j])
			}
		}
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	k := testKernel()
	gen, _ := NewGenerator(k, 1, 7)
	var buf bytes.Buffer
	rec, _ := NewRecorder(gen, &buf, 1, k.WarpsPerCore)
	// Record 3 steps for warp 0 only... but every warp needs >= 1 record.
	for w := 0; w < k.WarpsPerCore; w++ {
		rec.NextCompute(0, w)
		rec.NextMem(0, w, nil)
	}
	for i := 0; i < 2; i++ {
		rec.NextCompute(0, 0)
		rec.NextMem(0, 0, nil)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Warp 0 has 3 records; pulling 7 steps must cycle 3,3,1 without error
	// and reproduce the first record on the 4th pull.
	var first []uint64
	for i := 0; i < 7; i++ {
		rep.NextCompute(0, 0)
		_, addrs := rep.NextMem(0, 0, nil)
		if i == 0 {
			first = append([]uint64(nil), addrs...)
		}
		if i == 3 {
			if len(addrs) != len(first) || addrs[0] != first[0] {
				t.Fatalf("wrap-around did not restart the stream")
			}
		}
	}
}

func TestReplayerRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("ARIT\x02\x00\x00\x00\x01\x00\x00\x00\x01\x00\x00\x00"), // bad version
		[]byte("ARIT\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00"), // zero cores
	}
	for i, b := range cases {
		if _, err := NewReplayer(bytes.NewReader(b)); err == nil {
			t.Fatalf("case %d: garbage trace accepted", i)
		}
	}
}

func TestReplayerRejectsEmptyWarp(t *testing.T) {
	k := testKernel()
	gen, _ := NewGenerator(k, 1, 7)
	var buf bytes.Buffer
	rec, _ := NewRecorder(gen, &buf, 1, k.WarpsPerCore)
	// Only warp 0 gets a record; the others are empty.
	rec.NextCompute(0, 0)
	rec.NextMem(0, 0, nil)
	rec.Flush()
	if _, err := NewReplayer(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("trace with empty warps accepted")
	}
}
