package core

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestRecordedTraceReplaysFaithfully runs a simulation while recording the
// workload, then replays the trace through a fresh simulator and checks the
// system-level outcome matches (the streams are identical, and the
// simulator is otherwise deterministic).
func TestRecordedTraceReplaysFaithfully(t *testing.T) {
	k, err := trace.ByName("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(XYBaseline)
	cores := cfg.MeshWidth*cfg.MeshHeight - cfg.NumMC

	gen, err := trace.NewGenerator(k, cores, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(gen, &buf, cores, k.WarpsPerCore)
	if err != nil {
		t.Fatal(err)
	}
	simA, err := NewSimulatorWorkload(cfg, k, rec)
	if err != nil {
		t.Fatal(err)
	}
	a := simA.Run()
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Records() == 0 {
		t.Fatal("nothing recorded")
	}

	rep, err := trace.NewReplayer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSimulatorWorkload(cfg, k, rep)
	if err != nil {
		t.Fatal(err)
	}
	b := simB.Run()

	if a.Instructions != b.Instructions {
		t.Fatalf("replay diverged: %d vs %d instructions", a.Instructions, b.Instructions)
	}
	if a.Rep.MeshLinkFlits != b.Rep.MeshLinkFlits || a.MCStallTime != b.MCStallTime {
		t.Fatalf("replay diverged in network behaviour")
	}
}

// TestRecorderDoesNotPerturbRun: a run with a Recorder in the loop must be
// identical to a plain synthetic run (the recorder is a pure tee).
func TestRecorderDoesNotPerturbRun(t *testing.T) {
	k, _ := trace.ByName("bfs")
	cfg := fastConfig(AdaARI)
	cores := cfg.MeshWidth*cfg.MeshHeight - cfg.NumMC

	simPlain, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	plain := simPlain.Run()

	gen, _ := trace.NewGenerator(k, cores, cfg.Seed)
	var buf bytes.Buffer
	rec, _ := trace.NewRecorder(gen, &buf, cores, k.WarpsPerCore)
	simRec, err := NewSimulatorWorkload(cfg, k, rec)
	if err != nil {
		t.Fatal(err)
	}
	recorded := simRec.Run()

	if plain.Instructions != recorded.Instructions || plain.IPC != recorded.IPC {
		t.Fatalf("recorder perturbed the run: %d vs %d instructions",
			plain.Instructions, recorded.Instructions)
	}
}
