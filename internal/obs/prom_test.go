package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPromWriterShapes(t *testing.T) {
	var p PromWriter
	p.Metric("ari_up", "Server is up.", "gauge", 1)
	p.Family("ari_routed_total", "Requests routed per replica.", "counter")
	p.Sample("ari_routed_total", fmt.Sprintf("replica=%q", "http://a:1"), 3)
	p.Sample("ari_routed_total", "", 7)

	got := p.String()
	for _, want := range []string{
		"# HELP ari_up Server is up.\n# TYPE ari_up gauge\nari_up 1\n",
		"# HELP ari_routed_total Requests routed per replica.\n# TYPE ari_routed_total counter\n",
		"ari_routed_total{replica=\"http://a:1\"} 3\n",
		"\nari_routed_total 7\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestEscapeLabelHostileValues(t *testing.T) {
	// The exposition format defines exactly three escapes: \\ , \" and \n.
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`say "hi"`, `say \"hi\"`},
		{`back\slash`, `back\\slash`},
		{"two\nlines", `two\nlines`},
		{"all \"of\\ it\n", `all \"of\\ it\n`},
		// Characters %q would mangle must pass through untouched.
		{"tab\thère", "tab\thère"},
	}
	for _, c := range cases {
		if got := EscapeLabel(c.in); got != c.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabelsEscapesAndPairs(t *testing.T) {
	got := Labels("job", "bfs\n\"x\"\\", "replica", "http://a:1")
	want := `job="bfs\n\"x\"\\",replica="http://a:1"`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}

	var p PromWriter
	p.Family("ari_job", "Per-job gauge.", "gauge")
	p.Sample("ari_job", Labels("job", "he said \"run\"\nnow\\"), 1)
	line := `ari_job{job="he said \"run\"\nnow\\"} 1`
	if !strings.Contains(p.String(), line+"\n") {
		t.Fatalf("exposition missing %s:\n%s", line, p.String())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("odd Labels arity did not panic")
		}
	}()
	Labels("lonely")
}

func TestPromWriterRaw(t *testing.T) {
	var p PromWriter
	p.Raw(`x_total{replica="http://a:1"} 3`)
	if got := p.String(); got != "x_total{replica=\"http://a:1\"} 3\n" {
		t.Fatalf("Raw = %q", got)
	}
}

func TestPromWriterServeText(t *testing.T) {
	var p PromWriter
	p.Metric("x_total", "X.", "counter", 2)
	rec := httptest.NewRecorder()
	p.ServeText(rec)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 2") {
		t.Fatalf("body = %q", rec.Body.String())
	}
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Fatal("Bool mapping wrong")
	}
}
