package noc

import (
	"testing"
)

// testConfig returns a small validated config for unit tests.
func testConfig(t *testing.T, mutate func(*Config)) Config {
	t.Helper()
	cfg := Config{
		Mesh:        Mesh{Width: 4, Height: 4},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteXY,
		NonAtomicVC: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	v, err := cfg.Validate()
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return v
}

func newTestNet(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	n, err := NewNetwork(testConfig(t, mutate))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func mkPacket(cfg Config, typ PacketType, dst int) *Packet {
	return &Packet{
		Type: typ,
		Dst:  dst,
		Size: PacketSize(typ, cfg.LinkBits, cfg.DataBytes),
	}
}

// runUntilIdle steps the network until drained or the cycle limit hits.
func runUntilIdle(t *testing.T, n *Network, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if n.Idle() {
			return
		}
		n.Step()
	}
	t.Fatalf("network did not drain within %d cycles (inFlight=%d)", limit, n.InFlight())
}

func TestSinglePacketDelivery(t *testing.T) {
	n := newTestNet(t, nil)
	var got *Packet
	var gotNode int
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		got = pkt
		gotNode = node
	})
	pkt := mkPacket(n.Config(), ReadReply, 15)
	if !n.Inject(0, pkt) {
		t.Fatal("Inject rejected on empty network")
	}
	runUntilIdle(t, n, 1000)
	if got == nil {
		t.Fatal("packet never delivered")
	}
	if gotNode != 15 || got != pkt {
		t.Fatalf("delivered to node %d, want 15", gotNode)
	}
	if got.EjectedAt <= got.CreatedAt {
		t.Fatalf("timestamps out of order: created %d ejected %d", got.CreatedAt, got.EjectedAt)
	}
	// Minimum latency sanity: 6 hops, 9 flits, single-cycle routers.
	lat := got.EjectedAt - got.CreatedAt
	if lat < 6+9 {
		t.Fatalf("latency %d implausibly low", lat)
	}
}

func TestAllPairsDeliveryXY(t *testing.T) {
	testAllPairs(t, RouteXY)
}

func TestAllPairsDeliveryAdaptive(t *testing.T) {
	testAllPairs(t, RouteMinAdaptive)
}

func testAllPairs(t *testing.T, algo RoutingAlgo) {
	n := newTestNet(t, func(c *Config) { c.Routing = algo })
	nodes := n.Config().Mesh.Nodes()
	type key struct{ src, dst int }
	want := make(map[key]int)
	got := make(map[key]int)
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		got[key{pkt.Src, node}]++
	})
	// Inject one short packet per ordered pair, spread over cycles so the
	// single-packet-per-cycle NI limit is respected.
	pendingSrc := make([][]*Packet, nodes)
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			pendingSrc[s] = append(pendingSrc[s], mkPacket(n.Config(), ReadRequest, d))
			want[key{s, d}] = 1
		}
	}
	for cycle := 0; cycle < 20000; cycle++ {
		active := false
		for s := 0; s < nodes; s++ {
			if len(pendingSrc[s]) > 0 {
				active = true
				if n.Inject(s, pendingSrc[s][0]) {
					pendingSrc[s] = pendingSrc[s][1:]
				}
			}
		}
		n.Step()
		if !active && n.Idle() {
			break
		}
	}
	if !n.Idle() {
		t.Fatalf("network did not drain; inFlight=%d", n.InFlight())
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("pair %v: got %d deliveries, want %d", k, got[k], w)
		}
	}
}

func TestPacketSizes(t *testing.T) {
	cases := []struct {
		typ      PacketType
		linkBits int
		want     int
	}{
		{ReadRequest, 128, 1},
		{WriteReply, 128, 1},
		{ReadReply, 128, 9}, // 1 header + 128B/16B
		{WriteRequest, 128, 9},
		{ReadReply, 256, 5}, // 1 header + 128B/32B
		{ReadReply, 64, 17},
	}
	for _, c := range cases {
		if got := PacketSize(c.typ, c.linkBits, 128); got != c.want {
			t.Errorf("PacketSize(%v, %d): got %d, want %d", c.typ, c.linkBits, got, c.want)
		}
	}
}

func TestConservationOfFlits(t *testing.T) {
	// Every injected flit must eventually be ejected, under heavy random
	// traffic across all four packet types.
	n := newTestNet(t, func(c *Config) { c.Routing = RouteMinAdaptive })
	cfg := n.Config()
	var ejectedFlits uint64
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		ejectedFlits += uint64(pkt.Size)
	})
	types := []PacketType{ReadRequest, WriteRequest, ReadReply, WriteReply}
	seed := uint64(12345)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	injected := uint64(0)
	for cycle := 0; cycle < 3000; cycle++ {
		for s := 0; s < cfg.Mesh.Nodes(); s++ {
			if next(10) < 3 { // ~30% offered load per node
				d := next(cfg.Mesh.Nodes())
				if d == s {
					continue
				}
				pkt := mkPacket(cfg, types[next(4)], d)
				if n.Inject(s, pkt) {
					injected += uint64(pkt.Size)
				}
			}
		}
		n.Step()
	}
	runUntilIdle(t, n, 200000)
	if ejectedFlits != injected {
		t.Fatalf("flit conservation violated: injected %d, ejected %d", injected, ejectedFlits)
	}
	st := n.Stats()
	if st.TotalPackets() == 0 {
		t.Fatal("no packets recorded")
	}
}

func TestXYRoutingPath(t *testing.T) {
	// Under XY routing a packet from (0,0) to (3,2) must traverse exactly
	// x-hops then y-hops; verify via hop count = mesh link traversals.
	n := newTestNet(t, nil)
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {})
	pkt := mkPacket(n.Config(), ReadRequest, n.Config().Mesh.ID(3, 2))
	if !n.Inject(0, pkt) {
		t.Fatal("inject failed")
	}
	runUntilIdle(t, n, 1000)
	// 5 hops * 1 flit.
	if got := n.Stats().MeshLinkFlits; got != 5 {
		t.Fatalf("mesh link flits = %d, want 5", got)
	}
}

func TestInjectRejectsWhenFull(t *testing.T) {
	n := newTestNet(t, nil)
	cfg := n.Config()
	// Saturate node 0's NI: queue is 36 flits = 4 long packets, and only
	// one offer per cycle is accepted.
	if !n.Inject(0, mkPacket(cfg, ReadReply, 5)) {
		t.Fatal("first inject should succeed")
	}
	if n.Inject(0, mkPacket(cfg, ReadReply, 5)) {
		t.Fatal("second inject same cycle should be rejected (1 packet/cycle NI core logic)")
	}
	if n.Stats().NIFullRejects == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		n := newTestNet(t, func(c *Config) {
			c.Routing = RouteMinAdaptive
			c.PriorityLevels = 2
		})
		cfg := n.Config()
		n.SetEjectHandler(func(node int, pkt *Packet, now int64) {})
		seed := uint64(99)
		next := func(mod int) int {
			seed = seed*6364136223846793005 + 1442695040888963407
			return int(seed>>33) % mod
		}
		for cycle := 0; cycle < 2000; cycle++ {
			for s := 0; s < cfg.Mesh.Nodes(); s++ {
				if next(10) < 4 {
					d := next(cfg.Mesh.Nodes())
					if d != s {
						n.Inject(s, mkPacket(cfg, ReadReply, d))
					}
				}
			}
			n.Step()
		}
		st := n.Stats()
		return st.MeshLinkFlits, st.AvgLatency(ReadReply)
	}
	f1, l1 := run()
	f2, l2 := run()
	if f1 != f2 || l1 != l2 {
		t.Fatalf("simulation not deterministic: (%d,%f) vs (%d,%f)", f1, l1, f2, l2)
	}
}
