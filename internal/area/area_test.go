package area

import (
	"testing"
	"testing/quick"
)

func TestPaperOverheadBands(t *testing.T) {
	// §6.1: revised NI + MC-router pair ~5.4% larger; amortised <1%.
	o, err := Evaluate(36, 8, 4, 9, 128, 36, 4, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if o.PairOverhead < 0.03 || o.PairOverhead > 0.08 {
		t.Fatalf("pair overhead %.3f outside the 3-8%% band around the paper's 5.4%%", o.PairOverhead)
	}
	if o.AmortisedOverhead <= 0 || o.AmortisedOverhead >= 0.01 {
		t.Fatalf("amortised overhead %.4f not in (0, 1%%)", o.AmortisedOverhead)
	}
	if o.ARIPair <= o.BaselinePair {
		t.Fatal("ARI pair not larger than baseline")
	}
}

func TestOverheadGrowsWithSpeedup(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for s := 1; s <= 4; s++ {
		o, err := Evaluate(36, 8, 4, 9, 128, 36, s, p)
		if err != nil {
			t.Fatal(err)
		}
		if o.PairOverhead < prev {
			t.Fatalf("pair overhead not monotone in speedup: %v at S=%d", o.PairOverhead, s)
		}
		prev = o.PairOverhead
	}
}

func TestAmortisationShrinksWithMeshSize(t *testing.T) {
	p := DefaultParams()
	small, _ := Evaluate(16, 8, 4, 9, 128, 36, 4, p)
	large, _ := Evaluate(64, 8, 4, 9, 128, 36, 4, p)
	if large.AmortisedOverhead >= small.AmortisedOverhead {
		t.Fatal("amortised overhead should shrink as the mesh grows (same MC count)")
	}
}

func TestRouterAreaComponents(t *testing.T) {
	p := DefaultParams()
	base := RouterSpec{InPorts: 5, OutPorts: 5, SwitchPorts: 5, VCs: 4, VCDepth: 9, FlitBits: 128}
	a := Router(base, p)
	bigBuf := base
	bigBuf.VCDepth = 18
	if Router(bigBuf, p) <= a {
		t.Fatal("router area not increasing in buffer depth")
	}
	bigXbar := base
	bigXbar.SwitchPorts = 8
	if Router(bigXbar, p) <= a {
		t.Fatal("router area not increasing in switch ports")
	}
}

func TestNIAreaComponents(t *testing.T) {
	p := DefaultParams()
	base := NISpec{QueueFlits: 36, FlitBits: 128, SplitWays: 1, WideBits: 1024, NarrowBits: 128, NarrowCnt: 1}
	a := NI(base, p)
	split := base
	split.SplitWays = 4
	split.NarrowCnt = 4
	if NI(split, p) <= a {
		t.Fatal("split NI not larger than baseline NI")
	}
}

func TestEvaluateRejectsBadCounts(t *testing.T) {
	p := DefaultParams()
	if _, err := Evaluate(0, 8, 4, 9, 128, 36, 4, p); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Evaluate(36, 40, 4, 9, 128, 36, 4, p); err == nil {
		t.Fatal("more MCs than nodes accepted")
	}
}

func TestOverheadPositiveQuick(t *testing.T) {
	p := DefaultParams()
	f := func(vcs, speedup uint8) bool {
		v := int(vcs%4) + 2
		s := int(speedup%4) + 1
		o, err := Evaluate(36, 8, v, 9, 128, 36, s, p)
		if err != nil {
			return false
		}
		return o.PairOverhead >= 0 && o.AmortisedOverhead >= 0 &&
			o.AmortisedOverhead < o.PairOverhead
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
