package obs

import (
	"testing"

	"repro/internal/noc"
)

// feedLifecycle replays one packet's event stream into c.
func feedLifecycle(c *Collector, id uint64, typ noc.PacketType, enq, inj int64, hops []HopEvent, eject int64) {
	c.PacketEvent(id, typ, 0, 5, 0, noc.TraceNIEnqueue, enq)
	c.PacketEvent(id, typ, 0, 5, 0, noc.TraceInject, inj)
	for _, h := range hops {
		c.PacketEvent(id, typ, 0, 5, h.Node, h.Stage, h.Cycle)
	}
	c.PacketEvent(id, typ, 0, 5, 5, noc.TraceEject, eject)
}

func TestCollectorDecompose(t *testing.T) {
	c := NewCollector("rep")
	// Packet 1: enqueued 10, injected 30 (queue 20), last switch 50
	// (network 20), ejected 58 (eject 8), total 48.
	feedLifecycle(c, 1, noc.ReadReply, 10, 30, []HopEvent{
		{Node: 1, Stage: noc.TraceVAGrant, Cycle: 31},
		{Node: 1, Stage: noc.TraceSwitch, Cycle: 32},
		{Node: 5, Stage: noc.TraceSwitch, Cycle: 50},
	}, 58)
	// Packet 2: queue 0, no hops recorded -> network 0, eject 4, total 4.
	feedLifecycle(c, 2, noc.ReadReply, 100, 100, nil, 104)
	// A request packet that must be excluded by the type filter.
	feedLifecycle(c, 3, noc.ReadRequest, 0, 1, nil, 9)

	if len(c.Done()) != 3 || c.Open() != 0 {
		t.Fatalf("done=%d open=%d, want 3/0", len(c.Done()), c.Open())
	}
	d := c.Decompose(noc.ReadReply, noc.WriteReply)
	if d.Packets != 2 {
		t.Fatalf("Packets = %d, want 2", d.Packets)
	}
	if got := d.Queue.Sum(); got != 20 {
		t.Errorf("queue sum = %v, want 20", got)
	}
	if got := d.Net.Sum(); got != 20 {
		t.Errorf("net sum = %v, want 20", got)
	}
	if got := d.Eject.Sum(); got != 12 {
		t.Errorf("eject sum = %v, want 12", got)
	}
	if got := d.Total.Sum(); got != 52 {
		t.Errorf("total sum = %v, want 52", got)
	}
	if got, want := d.QueueFraction(), 20.0/52.0; got != want {
		t.Errorf("QueueFraction = %v, want %v", got, want)
	}
	// Per-packet identity: queue + net + eject == total.
	if d.Queue.Sum()+d.Net.Sum()+d.Eject.Sum() != d.Total.Sum() {
		t.Error("decomposition does not sum to total")
	}
	// Unfiltered decomposition sees all three packets.
	if all := c.Decompose(); all.Packets != 3 {
		t.Errorf("unfiltered Packets = %d, want 3", all.Packets)
	}
}

// TestCollectorSkipsMidFlightPackets pins the late-attach rule: events for a
// packet whose NI-enqueue was never seen are dropped, not recorded as a
// truncated lifecycle.
func TestCollectorSkipsMidFlightPackets(t *testing.T) {
	c := NewCollector("rep")
	c.PacketEvent(7, noc.ReadReply, 0, 5, 3, noc.TraceSwitch, 40)
	c.PacketEvent(7, noc.ReadReply, 0, 5, 5, noc.TraceEject, 44)
	if len(c.Done()) != 0 || c.Open() != 0 {
		t.Fatalf("mid-flight packet recorded: done=%d open=%d", len(c.Done()), c.Open())
	}
}

// TestCollectorOpenPacketsExcluded: a packet still in flight at the end of
// the run is visible via Open but not part of the decomposition.
func TestCollectorOpenPacketsExcluded(t *testing.T) {
	c := NewCollector("rep")
	c.PacketEvent(9, noc.ReadReply, 2, 6, 2, noc.TraceNIEnqueue, 10)
	c.PacketEvent(9, noc.ReadReply, 2, 6, 2, noc.TraceInject, 12)
	if c.Open() != 1 {
		t.Fatalf("Open = %d, want 1", c.Open())
	}
	if d := c.Decompose(); d.Packets != 0 {
		t.Fatalf("in-flight packet decomposed: %+v", d)
	}
}
