package noc

import "encoding/json"

// PacketDump is the JSON form of one in-flight packet's header state.
type PacketDump struct {
	ID        uint64 `json:"id"`
	Type      string `json:"type"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Size      int    `json:"size"`
	Priority  int    `json:"priority"`
	CreatedAt int64  `json:"created_at"`
	Age       int64  `json:"age"`
}

// VCDump is the JSON form of one non-idle input VC.
type VCDump struct {
	Port     int         `json:"port"`
	VC       int         `json:"vc"`
	State    string      `json:"state"`
	Buffered int         `json:"buffered"`
	Head     *PacketDump `json:"head,omitempty"`
	OutPort  int         `json:"out_port,omitempty"`
	OutVC    int         `json:"out_vc,omitempty"`
	Waiting  int64       `json:"waiting,omitempty"`
	Frozen   bool        `json:"frozen,omitempty"`
}

// OutPortDump is the JSON form of one router output port's credit state.
type OutPortDump struct {
	Port    int   `json:"port"`
	Credits []int `json:"credits"`
	Owners  []int `json:"owners"`
	Stalled bool  `json:"stalled,omitempty"`
}

// RouterDump is the JSON form of one non-quiescent router (plus its node's
// NI and ejector levels).
type RouterDump struct {
	ID             int           `json:"id"`
	MC             bool          `json:"mc,omitempty"`
	Flits          int           `json:"flits"`
	VCs            []VCDump      `json:"vcs,omitempty"`
	StagedArrivals int           `json:"staged_arrivals,omitempty"`
	Outs           []OutPortDump `json:"outs,omitempty"`
	NIQueuedFlits  int           `json:"ni_queued_flits,omitempty"`
	EjectorFlits   int           `json:"ejector_flits,omitempty"`
}

// StateDump is the structured counterpart of DumpState: the same non-
// quiescent network state, JSON-encodable so a watchdog trip or a live
// /debug/nocstate request is diagnosable remotely.
type StateDump struct {
	Cycle         int64        `json:"cycle"`
	InFlight      int          `json:"in_flight"`
	Routers       []RouterDump `json:"routers,omitempty"`
	OldestPackets []PacketDump `json:"oldest_packets,omitempty"`
}

// packetDump converts one packet header at the current cycle.
func (n *Network) packetDump(p *Packet) PacketDump {
	return PacketDump{
		ID:        p.ID,
		Type:      p.Type.String(),
		Src:       p.Src,
		Dst:       p.Dst,
		Size:      p.Size,
		Priority:  p.Priority,
		CreatedAt: p.CreatedAt,
		Age:       n.now - p.CreatedAt,
	}
}

// StateSnapshot captures the structured form of DumpState: every router with
// buffered, staged or queued flits, its VC and credit state, and the oldest
// in-flight packets. Like DumpState it only reads, and it must run on the
// goroutine stepping the network (a watchdog poll, or between Steps).
func (n *Network) StateSnapshot() StateDump {
	d := StateDump{Cycle: n.now, InFlight: n.inFlight}
	for _, r := range n.routers {
		if r.flitCount() == 0 && n.ejectors[r.id].flitCount() == 0 && n.nis[r.id].queuedFlits() == 0 {
			continue
		}
		rd := RouterDump{ID: r.id, MC: r.isMC, Flits: r.flitCount()}
		for _, ip := range r.in {
			for _, vc := range ip.vcs {
				if vc.buf.empty() && vc.state == vcIdle {
					continue
				}
				vd := VCDump{
					Port:     ip.index,
					VC:       vc.vcIdx,
					State:    vc.state.String(),
					Buffered: vc.buf.len(),
					Frozen:   n.now < ip.frozenUntil,
				}
				if !vc.buf.empty() {
					pd := n.packetDump(vc.buf.front().pkt)
					vd.Head = &pd
				}
				if vc.state != vcIdle {
					vd.OutPort, vd.OutVC = vc.outPort, vc.outVC
					vd.Waiting = n.now - vc.waitSince
				}
				rd.VCs = append(rd.VCs, vd)
			}
			rd.StagedArrivals += len(ip.arrivals)
		}
		for _, op := range r.out {
			od := OutPortDump{Port: op.index, Stalled: n.now < op.stalledUntil}
			for v := range op.vcs {
				od.Credits = append(od.Credits, op.vcs[v].credits)
				od.Owners = append(od.Owners, op.vcs[v].owner)
			}
			rd.Outs = append(rd.Outs, od)
		}
		rd.NIQueuedFlits = n.nis[r.id].queuedFlits()
		rd.EjectorFlits = n.ejectors[r.id].flitCount()
		d.Routers = append(d.Routers, rd)
	}
	for _, p := range n.OldestPackets(5) {
		d.OldestPackets = append(d.OldestPackets, n.packetDump(p))
	}
	return d
}

// DumpStateJSON returns StateSnapshot encoded as JSON.
func (n *Network) DumpStateJSON() ([]byte, error) {
	return json.Marshal(n.StateSnapshot())
}
