package simeq

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// shardSchemes are the configurations the sharded-stepping lock covers:
// the enhanced baseline, ARI on dimension-ordered routing and the full
// adaptive ARI design (the paper's headline scheme).
var shardSchemes = []core.Scheme{core.XYBaseline, core.XYARI, core.AdaARI}

// shardKernels keeps the differential matrix tractable: a graph kernel
// (irregular traffic), a dense compute kernel and a memory-bound streaming
// kernel cover the load regimes that stress shard boundaries differently.
var shardKernels = []string{"bfs", "blackScholes", "streamcluster"}

// TestShardedMatchesSerial is the determinism lock for intra-run
// parallelism: stepping the mesh (and the node logic on it) across 2 or 4
// shards must produce a byte-identical encoded Result to serial stepping,
// for every covered scheme and kernel. Any cross-shard effect that escapes
// the two-phase protocol — a flit committed mid-phase, a credit seen a
// cycle early, a stat folded in worker order — diverges here.
func TestShardedMatchesSerial(t *testing.T) {
	for _, scheme := range shardSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for _, name := range shardKernels {
				k, err := trace.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := ShortConfig()
				cfg.Scheme = scheme
				serial := RunEncoded(t, cfg, k)
				for _, shards := range []int{1, 2, 4} {
					cfg.Shards = shards
					got := RunEncoded(t, cfg, k)
					if !bytes.Equal(got, serial) {
						t.Fatalf("%s/%s shards=%d: result differs from serial\n%s",
							name, scheme, shards, diffLine(got, serial))
					}
				}
			}
		})
	}
}

// TestShardedMatchesSerialModes composes sharding with the other stepping
// modes: the scan-everything reference loop (ScanStep) and event-driven
// stepping under deterministic fault injection, whose stalls make shard
// activity ragged (a sleeping shard must skip its slot without desyncing
// its neighbours' boundary buffers).
func TestShardedMatchesSerialModes(t *testing.T) {
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	modes := []struct {
		name  string
		apply func(*core.Config)
	}{
		{"scan", func(c *core.Config) { c.ScanStep = true }},
		{"fault", func(c *core.Config) { c.Fault = fault.SoakConfig(7) }},
		{"scan_fault", func(c *core.Config) {
			c.ScanStep = true
			c.Fault = fault.SoakConfig(7)
		}},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			cfg := ShortConfig()
			cfg.Scheme = core.AdaARI
			m.apply(&cfg)
			serial := RunEncoded(t, cfg, k)
			for _, shards := range []int{2, 4} {
				cfg.Shards = shards
				got := RunEncoded(t, cfg, k)
				if !bytes.Equal(got, serial) {
					t.Fatalf("%s shards=%d: result differs from serial\n%s",
						m.name, shards, diffLine(got, serial))
				}
			}
		})
	}
}

// TestShardedStableAcrossRepeats re-runs one sharded configuration several
// times in-process: with real goroutine interleaving varying between
// repeats, any latent schedule dependence shows up as run-to-run jitter
// even when a single serial comparison happens to pass.
func TestShardedStableAcrossRepeats(t *testing.T) {
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ShortConfig()
	cfg.Scheme = core.AdaARI
	cfg.Shards = 4
	first := RunEncoded(t, cfg, k)
	for i := 1; i < 4; i++ {
		got := RunEncoded(t, cfg, k)
		if !bytes.Equal(got, first) {
			t.Fatalf("repeat %d diverged from first sharded run\n%s", i, diffLine(got, first))
		}
	}
	if len(first) == 0 {
		t.Fatal("empty encoded result")
	}
}
