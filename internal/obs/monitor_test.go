package obs

import (
	"context"
	"testing"
	"time"
)

func TestRunMonitorLifecycleAndReport(t *testing.T) {
	m := NewRunMonitor()
	st := m.Begin("bfs/Ada-ARI", "Ada-ARI", 1000)
	if got := len(m.Active()); got != 1 {
		t.Fatalf("Active = %d, want 1", got)
	}

	st.Progress(400, 7, 3, 0)
	p := st.Report()
	if p.Name != "bfs/Ada-ARI" || p.Scheme != "Ada-ARI" {
		t.Fatalf("identity: %+v", p)
	}
	if p.Cycle != 400 || p.TotalCycles != 1000 {
		t.Fatalf("cycles: %+v", p)
	}
	if p.ReqInFlight != 7 || p.RepInFlight != 3 {
		t.Fatalf("in-flight: %+v", p)
	}
	if p.CyclesPerSec <= 0 || p.ETASeconds < 0 {
		t.Fatalf("rate/ETA not derived: %+v", p)
	}
	if snaps := m.Snapshot(); len(snaps) != 1 || snaps[0].Cycle != 400 {
		t.Fatalf("Snapshot: %+v", snaps)
	}

	m.End(st)
	if got := len(m.Active()); got != 0 {
		t.Fatalf("Active after End = %d, want 0", got)
	}
}

// TestRunStatusETAUnknownWithoutHorizon: fixed-work runs report total 0 and
// must yield ETA -1, never a division artefact.
func TestRunStatusETAUnknownWithoutHorizon(t *testing.T) {
	m := NewRunMonitor()
	st := m.Begin("bfs/work", "Ada-ARI", 0)
	st.Progress(100, 0, 0, 0)
	if p := st.Report(); p.ETASeconds != -1 {
		t.Fatalf("ETA = %v, want -1", p.ETASeconds)
	}
}

// TestFetchStateHandshake drives the Inspector side the way the watchdog
// poll does: WantState turns true only while a fetch is pending, State
// delivers exactly once, and a timed-out fetch leaves no stale request or
// snapshot behind.
func TestFetchStateHandshake(t *testing.T) {
	m := NewRunMonitor()
	st := m.Begin("bfs/Ada-ARI", "Ada-ARI", 1000)
	defer m.End(st)

	if st.WantState() {
		t.Fatal("WantState true before any fetch")
	}

	// Simulation-goroutine stand-in: poll and serve state requests.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st.WantState() {
				st.State([]byte(`{"cycle":42}`))
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	defer close(stop)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	dump, err := st.FetchState(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(dump) != `{"cycle":42}` {
		t.Fatalf("dump = %s", dump)
	}
	// Served request is consumed: no lingering want.
	if st.WantState() {
		t.Fatal("WantState still true after serve")
	}
	// Second fetch works identically (the channel was fully drained).
	if _, err := st.FetchState(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFetchStateTimesOutOnWedgedRun: with nobody polling, FetchState must
// return the context error and clear its request flag.
func TestFetchStateTimesOutOnWedgedRun(t *testing.T) {
	m := NewRunMonitor()
	st := m.Begin("bfs/Ada-ARI", "Ada-ARI", 1000)
	defer m.End(st)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := st.FetchState(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st.WantState() {
		t.Fatal("request flag leaked after timeout")
	}
}
