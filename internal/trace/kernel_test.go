package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func testKernel() Kernel {
	return Kernel{
		Name: "test", Sens: Medium, WarpsPerCore: 4,
		ComputePerMem: 10, ReadFrac: 0.8, CoalesceMean: 1.5,
		Locality: 0.3, HotLines: 64, L2Frac: 0.5,
		SharedLines: 1024, StreamLines: 1 << 16,
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 30 {
		t.Fatalf("suite has %d benchmarks, want 30", len(suite))
	}
	counts := map[Sensitivity]int{}
	names := map[string]bool{}
	for _, k := range suite {
		if err := k.Validate(); err != nil {
			t.Fatalf("suite kernel %s invalid: %v", k.Name, err)
		}
		if names[k.Name] {
			t.Fatalf("duplicate benchmark name %q", k.Name)
		}
		names[k.Name] = true
		counts[k.Sens]++
	}
	// Paper §6.2: 9 high, 11 medium, 10 low.
	if counts[High] != 9 || counts[Medium] != 11 || counts[Low] != 10 {
		t.Fatalf("class mix = %d/%d/%d, want 9/11/10", counts[High], counts[Medium], counts[Low])
	}
	// The benchmarks named in Figs 6, 9, 15 must exist.
	for _, n := range []string{"pathfinder", "hotspot", "srad", "bfs", "mummerGPU", "b+tree"} {
		if !names[n] {
			t.Fatalf("figure benchmark %q missing from suite", n)
		}
	}
}

func TestByName(t *testing.T) {
	k, err := ByName("bfs")
	if err != nil || k.Name != "bfs" {
		t.Fatalf("ByName(bfs) = %+v, %v", k, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if len(Names()) != 30 {
		t.Fatal("Names() wrong length")
	}
	if len(ByClass(High)) != 9 {
		t.Fatal("ByClass(High) wrong length")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(testKernel(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testKernel(), 2, 7)
	for i := 0; i < 500; i++ {
		c1 := g1.NextCompute(1, 2)
		c2 := g2.NextCompute(1, 2)
		if c1 != c2 {
			t.Fatalf("compute streams diverged at %d", i)
		}
		w1, a1 := g1.NextMem(1, 2, nil)
		w2, a2 := g2.NextMem(1, 2, nil)
		if w1 != w2 || len(a1) != len(a2) || a1[0] != a2[0] {
			t.Fatalf("mem streams diverged at %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(testKernel(), 1, 1)
	g2, _ := NewGenerator(testKernel(), 1, 2)
	same := 0
	for i := 0; i < 100; i++ {
		_, a1 := g1.NextMem(0, 0, nil)
		_, a2 := g2.NextMem(0, 0, nil)
		if a1[0] == a2[0] {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d/100 identical addresses", same)
	}
}

func TestReadFraction(t *testing.T) {
	k := testKernel()
	k.ReadFrac = 0.8
	g, _ := NewGenerator(k, 1, 3)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		w, _ := g.NextMem(0, i%k.WarpsPerCore, nil)
		if !w {
			reads++
		}
	}
	got := float64(reads) / n
	if math.Abs(got-0.8) > 0.02 {
		t.Fatalf("read fraction %v, want ~0.8", got)
	}
}

func TestCoalescingBounds(t *testing.T) {
	k := testKernel()
	k.CoalesceMean = 2.5
	g, _ := NewGenerator(k, 1, 5)
	var total int
	for i := 0; i < 5000; i++ {
		_, addrs := g.NextMem(0, 0, nil)
		if len(addrs) < 1 || len(addrs) > 4 {
			t.Fatalf("coalesce count %d out of [1,4]", len(addrs))
		}
		// Extra transactions touch adjacent lines.
		for j := 1; j < len(addrs); j++ {
			if addrs[j] != addrs[0]+uint64(j)*lineBytes {
				t.Fatalf("divergent txn %d not adjacent: %x vs %x", j, addrs[j], addrs[0])
			}
		}
		total += len(addrs)
	}
	avg := float64(total) / 5000
	if avg < 1.5 || avg > 3.0 {
		t.Fatalf("avg coalesce %v implausible for mean 2.5", avg)
	}
}

func TestAddressesLineAlignedAndInRegionsQuick(t *testing.T) {
	k := testKernel()
	g, _ := NewGenerator(k, 2, 9)
	f := func(core, warp uint8, steps uint8) bool {
		c := int(core) % 2
		w := int(warp) % k.WarpsPerCore
		for i := 0; i <= int(steps%16); i++ {
			_, addrs := g.NextMem(c, w, nil)
			for _, a := range addrs {
				if a%lineBytes != 0 {
					return false
				}
				inHot := a >= hotBase && a < hotBase+uint64(2*k.WarpsPerCore*k.HotLines+8)*lineBytes
				inShared := a >= sharedBase && a < sharedBase+uint64(k.SharedLines+4)*lineBytes
				inStream := a >= streamBase && a < streamBase+(k.StreamLines+4)*lineBytes
				if !inHot && !inShared && !inStream {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityKnob(t *testing.T) {
	// Higher locality => more accesses land in the hot region.
	countHot := func(loc float64) int {
		k := testKernel()
		k.Locality = loc
		g, _ := NewGenerator(k, 1, 11)
		hot := 0
		for i := 0; i < 5000; i++ {
			_, addrs := g.NextMem(0, 0, nil)
			if addrs[0] >= hotBase && addrs[0] < sharedBase {
				hot++
			}
		}
		return hot
	}
	lo, hi := countHot(0.1), countHot(0.9)
	if hi <= lo*3 {
		t.Fatalf("locality knob ineffective: %d vs %d hot accesses", lo, hi)
	}
}

func TestValidateRejectsBadKernels(t *testing.T) {
	cases := []func(*Kernel){
		func(k *Kernel) { k.Name = "" },
		func(k *Kernel) { k.WarpsPerCore = 0 },
		func(k *Kernel) { k.ReadFrac = 1.5 },
		func(k *Kernel) { k.Locality = -0.1 },
		func(k *Kernel) { k.HotLines = 0 },
		func(k *Kernel) { k.StreamLines = 0 },
	}
	for i, mutate := range cases {
		k := testKernel()
		mutate(&k)
		if err := k.Validate(); err == nil {
			t.Fatalf("case %d: invalid kernel accepted", i)
		}
	}
	if _, err := NewGenerator(testKernel(), 0, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestComputePerMemMean(t *testing.T) {
	k := testKernel()
	k.ComputePerMem = 20
	g, _ := NewGenerator(k, 1, 13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.NextCompute(0, i%k.WarpsPerCore))
	}
	got := sum / n
	if math.Abs(got-20) > 2 {
		t.Fatalf("mean compute %v, want ~20", got)
	}
}
