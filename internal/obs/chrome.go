package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event JSON Array/Object
// format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a duration, "M" metadata events name the
// process/thread rows. Timestamps are microseconds; we map 1 NoC cycle to
// 1 µs so chrome://tracing's time axis reads directly in cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the Object-format wrapper.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every completed packet lifecycle of the given
// collectors as a Chrome trace_event JSON document, loadable in
// chrome://tracing or Perfetto. Each collector becomes one "process" row
// (named by its label), each packet one slice on its destination node's
// "thread", decomposed into queue / network / eject sub-phases.
func WriteChromeTrace(w io.Writer, colls ...*Collector) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pi, c := range colls {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pi,
			Args:  map[string]any{"name": c.Label + " network"},
		})
		for _, p := range c.Done() {
			name := fmt.Sprintf("pkt %d %s", p.ID, p.Type)
			args := map[string]any{
				"id": p.ID, "type": p.Type.String(), "src": p.Src, "dst": p.Dst,
				"hops": len(p.Hops),
			}
			last := p.lastSwitch()
			phases := []struct {
				name     string
				from, to int64
			}{
				{name, p.Enqueued, p.Ejected},
				{"queue", p.Enqueued, p.Injected},
				{"network", p.Injected, last},
				{"eject", last, p.Ejected},
			}
			for _, ph := range phases {
				if ph.to < ph.from {
					continue
				}
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name:  ph.name,
					Cat:   c.Label,
					Phase: "X",
					TS:    ph.from,
					Dur:   ph.to - ph.from,
					PID:   pi,
					TID:   p.Dst,
					Args:  args,
				})
			}
			for _, h := range p.Hops {
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name:  h.Stage.String(),
					Cat:   c.Label,
					Phase: "i",
					TS:    h.Cycle,
					PID:   pi,
					TID:   p.Dst,
					Args:  map[string]any{"node": h.Node, "pkt": p.ID},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
