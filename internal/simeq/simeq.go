// Package simeq is the determinism lock for the event-driven stepping
// optimisation. The simulator's hot loops skip provably-idle components
// (routers, NIs, ejectors, cores, memory controllers); Config.ScanStep
// keeps the original scan-everything loops alive as a reference, and this
// package's tests prove the two produce bit-identical core.Results for
// every suite kernel under the baseline, ARI and ideal-reply schemes.
//
// Identity is checked on the JSON encoding: every Result field is either an
// exported scalar/array or a stats.Mean, which marshals its raw float
// accumulators at full precision, so byte-equal encodings imply bit-equal
// results. The same encoding backs the golden-file determinism test, which
// pins three benchmark x scheme matrices against testdata/golden.json (run
// with -update to regenerate after an intentional model change).
package simeq

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// Encode renders a Result as deterministic indented JSON.
func Encode(r core.Result) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ShortConfig returns the Table I configuration with a short horizon suited
// to differential tests: long enough to exercise warmup reset, contention,
// DRAM timing and the reply path, short enough to run the whole suite.
func ShortConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 700
	return cfg
}

// RunEncoded executes one simulation and returns its encoded Result.
func RunEncoded(tb testing.TB, cfg core.Config, k trace.Kernel) []byte {
	tb.Helper()
	sim, err := core.NewSimulator(cfg, k)
	if err != nil {
		tb.Fatalf("build %s/%s: %v", k.Name, cfg.Scheme, err)
	}
	defer sim.Close()
	res := sim.Run()
	enc, err := Encode(res)
	if err != nil {
		tb.Fatalf("encode %s/%s: %v", k.Name, cfg.Scheme, err)
	}
	return enc
}

// Variant is one scheme configuration under differential test.
type Variant struct {
	Name   string
	Scheme core.Scheme
	Ideal  bool
}

// Variants are the reply-path configurations the equivalence suite covers:
// the enhanced baseline, the full ARI design on adaptive routing, the
// ideal-reply instrument (eq. 1) and the DA2mesh overlay.
func Variants() []Variant {
	return []Variant{
		{Name: "baseline", Scheme: core.XYBaseline},
		{Name: "ari", Scheme: core.AdaARI},
		{Name: "ideal", Scheme: core.XYBaseline, Ideal: true},
		{Name: "da2mesh", Scheme: core.DA2MeshBase},
	}
}

// Apply sets the variant on cfg.
func (v Variant) Apply(cfg core.Config) core.Config {
	cfg.Scheme = v.Scheme
	cfg.IdealReply = v.Ideal
	return cfg
}

// diffLine locates the first byte where a and b differ, for readable
// failure messages on multi-kilobyte encodings.
func diffLine(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+40, i+40
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d:\n  a: …%s…\n  b: …%s…",
				i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d bytes", len(a), len(b))
}
