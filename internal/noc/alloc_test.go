package noc

import "testing"

// TestNetworkStepDoesNotAllocate locks the stepping hot path at zero
// allocations per inject+step iteration once steady state is reached — the
// invariant behind the 0 allocs/op figures of BenchmarkNetworkStepBaseline
// and BenchmarkNetworkStepARI. A regression here (a packet shell escaping
// the freelist, a per-cycle slice rebuilt instead of reused) shows up as a
// hard failure rather than a silently drifting benchmark number.
func TestNetworkStepDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name string
		ari  bool
	}{
		{"Baseline", false},
		{"ARI", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := newBenchLikeNet(t, tc.ari)
			mcs := DiamondMCPlacement(n.Config().Mesh, 8)
			seed := uint64(1)
			next := func(mod int) int {
				seed = seed*6364136223846793005 + 1442695040888963407
				return int(seed>>33) % mod
			}
			cfg := n.Config()
			long := cfg.LongPacketFlits()
			i := 0
			iter := func() {
				pkt := n.GetPacket()
				pkt.Type = ReadReply
				pkt.Dst = next(36)
				pkt.Size = long
				if !n.Inject(mcs[i%len(mcs)], pkt) {
					n.PutPacket(pkt)
				}
				i++
				n.Step()
			}
			// Warm up into steady state: fills the packet freelist, grows
			// arrival/VC scratch slices to their high-water marks, and builds
			// InjWindows capacity beyond what the measured run appends.
			for k := 0; k < 8000; k++ {
				iter()
			}
			// Keep InjWindows capacity but drop its length so the measured
			// appends land in already-allocated space.
			n.ResetStats()
			if avg := testing.AllocsPerRun(2000, iter); avg != 0 {
				t.Fatalf("network step allocates %.2f times per iteration; want 0", avg)
			}
		})
	}
}

// newBenchLikeNet mirrors benchNet for tests: the loaded 6x6 reply network,
// optionally with the ARI split-NI configuration.
func newBenchLikeNet(t *testing.T, ari bool) *Network {
	t.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]NodeConfig, mesh.Nodes())
		for _, n := range DiamondMCPlacement(mesh, 8) {
			cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}
