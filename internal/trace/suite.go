package trace

import "fmt"

// Suite returns the 30 synthetic benchmarks standing in for the paper's
// Rodinia + CUDA SDK mix (§6.2: 9 highly NoC-sensitive, 11 medium, 10 low).
// Names follow the paper's figures so per-benchmark experiments (Fig 6: bfs,
// hotspot, srad, pathfinder; Fig 9: bfs, mummerGPU; Fig 15: bfs, b+tree,
// hotspot, pathfinder) address the same rows. Parameters are synthetic but
// chosen so each class reproduces the class behaviour the paper reports:
// high-sensitivity kernels are reply-bandwidth-bound, low-sensitivity ones
// are compute-bound with sparse traffic.
func Suite() []Kernel {
	k := func(name string, sens Sensitivity, warps int, cpm, rf, coal, loc float64, hot int, l2f float64, shared int, stream uint64) Kernel {
		return Kernel{
			Name: name, Sens: sens, WarpsPerCore: warps,
			ComputePerMem: cpm, ReadFrac: rf, CoalesceMean: coal,
			Locality: loc, HotLines: hot, L2Frac: l2f,
			SharedLines: shared, StreamLines: stream,
		}
	}
	const mega = 1 << 20 // lines; 128 MB of 128B lines
	return []Kernel{
		// ---- 9 highly NoC-sensitive: memory-bound streaming kernels ----
		k("bfs", High, 48, 4.0, 0.90, 1.8, 0.15, 96, 0.40, 2048, 2*mega),
		k("mummerGPU", High, 40, 4.5, 0.95, 2.2, 0.10, 64, 0.35, 3072, 4*mega),
		k("kmeans", High, 48, 6.0, 0.85, 1.2, 0.25, 112, 0.45, 2048, 2*mega),
		k("pathfinder", High, 48, 5.0, 0.88, 1.1, 0.20, 96, 0.50, 2048, mega),
		k("hotspot", High, 40, 7.0, 0.80, 1.1, 0.25, 112, 0.50, 2048, mega),
		k("srad", High, 48, 5.5, 0.82, 1.1, 0.20, 96, 0.45, 2048, 2*mega),
		k("streamcluster", High, 40, 8.0, 0.92, 1.3, 0.15, 64, 0.35, 3072, 4*mega),
		k("cfd", High, 40, 9.0, 0.85, 1.5, 0.20, 96, 0.40, 3072, 2*mega),
		k("particlefilter", High, 32, 8.0, 0.88, 1.6, 0.20, 64, 0.40, 2048, 2*mega),

		// ---- 11 medium sensitivity ----
		k("b+tree", Medium, 32, 30, 0.92, 1.7, 0.40, 112, 0.50, 2048, mega),
		k("backprop", Medium, 40, 34, 0.80, 1.1, 0.45, 112, 0.55, 2048, mega),
		k("gaussian", Medium, 32, 40, 0.85, 1.1, 0.50, 112, 0.55, 2048, mega),
		k("nw", Medium, 24, 44, 0.82, 1.2, 0.45, 96, 0.50, 2048, mega),
		k("lud", Medium, 32, 50, 0.85, 1.1, 0.55, 112, 0.55, 2048, mega/2),
		k("hybridsort", Medium, 40, 32, 0.70, 1.4, 0.40, 96, 0.50, 2048, 2*mega),
		k("histogram", Medium, 48, 28, 0.60, 1.5, 0.45, 112, 0.50, 2048, mega),
		k("transpose", Medium, 48, 30, 0.55, 1.2, 0.35, 96, 0.45, 2048, mega),
		k("scan", Medium, 48, 36, 0.75, 1.1, 0.40, 112, 0.50, 2048, mega),
		k("reduction", Medium, 48, 42, 0.90, 1.1, 0.45, 112, 0.55, 2048, mega),
		k("sobolQRNG", Medium, 40, 60, 0.70, 1.1, 0.50, 112, 0.50, 2048, mega/2),

		// ---- 10 low sensitivity: compute-bound kernels ----
		k("blackScholes", Low, 48, 70, 0.80, 1.1, 0.65, 112, 0.55, 2048, mega/2),
		k("binomialOptions", Low, 40, 150, 0.85, 1.0, 0.80, 112, 0.60, 2048, mega/4),
		k("monteCarlo", Low, 48, 130, 0.90, 1.0, 0.75, 112, 0.60, 2048, mega/4),
		k("quasirandomG", Low, 40, 110, 0.75, 1.0, 0.70, 96, 0.55, 2048, mega/4),
		k("matrixMul", Low, 48, 80, 0.90, 1.0, 0.70, 112, 0.65, 2048, mega/2),
		k("convolution", Low, 48, 90, 0.85, 1.1, 0.70, 112, 0.60, 2048, mega/2),
		k("fastWalsh", Low, 40, 100, 0.80, 1.0, 0.70, 112, 0.55, 2048, mega/4),
		k("mergeSort", Low, 40, 75, 0.75, 1.2, 0.60, 96, 0.55, 2048, mega/2),
		k("nn", Low, 32, 120, 0.92, 1.1, 0.75, 112, 0.60, 2048, mega/4),
		k("lavaMD", Low, 32, 150, 0.88, 1.0, 0.80, 112, 0.60, 2048, mega/4),
	}
}

// ByName returns the suite kernel with the given name.
func ByName(name string) (Kernel, error) {
	for _, k := range Suite() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the suite benchmark names in order.
func Names() []string {
	suite := Suite()
	names := make([]string, len(suite))
	for i, k := range suite {
		names[i] = k.Name
	}
	return names
}

// ByClass returns the suite kernels of one sensitivity class.
func ByClass(s Sensitivity) []Kernel {
	var out []Kernel
	for _, k := range Suite() {
		if k.Sens == s {
			out = append(out, k)
		}
	}
	return out
}
