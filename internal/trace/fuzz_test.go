package trace

import (
	"bytes"
	"math"
	"testing"
)

// FuzzKernelValidate exercises Kernel.Validate and, when it accepts, the
// generator built from the kernel: malformed parameter sets (NaN, Inf,
// overflow-sized occupancy) must be rejected with an error, and every
// accepted set must yield a generator whose streams are safe to pull.
func FuzzKernelValidate(f *testing.F) {
	for _, k := range Suite() {
		f.Add(k.WarpsPerCore, k.ComputePerMem, k.ReadFrac, k.CoalesceMean,
			k.Locality, float64(k.HotLines), k.L2Frac, float64(k.SharedLines), k.StreamLines)
	}
	f.Add(48, math.NaN(), 0.9, 1.8, 0.15, 96.0, 0.4, 2048.0, uint64(1<<21))
	f.Add(1<<30, 4.0, 0.9, 1.8, 0.15, 96.0, 0.4, 2048.0, uint64(1<<21))
	f.Add(48, math.Inf(1), 0.9, math.Inf(-1), 0.15, 96.0, 0.4, 2048.0, uint64(1))

	f.Fuzz(func(t *testing.T, warps int, cpm, rf, coal, loc float64,
		hot float64, l2f float64, shared float64, stream uint64) {
		k := Kernel{
			Name: "fuzz", WarpsPerCore: warps,
			ComputePerMem: cpm, ReadFrac: rf, CoalesceMean: coal,
			Locality: loc, HotLines: int(hot), L2Frac: l2f,
			SharedLines: int(shared), StreamLines: stream,
		}
		if err := k.Validate(); err != nil {
			return // rejection is the correct outcome for malformed input
		}
		gen, err := NewGenerator(k, 1, 7)
		if err != nil {
			t.Fatalf("validated kernel rejected by generator: %v", err)
		}
		for w := 0; w < k.WarpsPerCore && w < 8; w++ {
			if n := gen.NextCompute(0, w); n < 0 {
				t.Fatalf("negative compute segment %d", n)
			}
			_, addrs := gen.NextMem(0, w, nil)
			if len(addrs) == 0 || len(addrs) > 4 {
				t.Fatalf("memory instruction with %d transactions", len(addrs))
			}
		}
	})
}

// FuzzReplayer exercises the binary trace parser with arbitrary input: it
// must either reject the stream with an error or produce a Replayer whose
// streams are safe to pull — never panic or hang.
func FuzzReplayer(f *testing.F) {
	// Seed with a small valid trace.
	k := testKernel()
	gen, _ := NewGenerator(k, 1, 3)
	var buf bytes.Buffer
	rec, _ := NewRecorder(gen, &buf, 1, k.WarpsPerCore)
	for w := 0; w < k.WarpsPerCore; w++ {
		rec.NextCompute(0, w)
		rec.NextMem(0, w, nil)
	}
	if err := rec.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ARIT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := NewReplayer(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine
		}
		cores, warps := rep.Shape()
		if cores <= 0 || warps <= 0 {
			t.Fatalf("accepted trace with shape %dx%d", cores, warps)
		}
		// Pulling from any warp must be safe and bounded.
		for i := 0; i < 16; i++ {
			c, w := i%cores, i%warps
			if n := rep.NextCompute(c, w); n < 0 {
				t.Fatalf("negative compute segment %d", n)
			}
			_, addrs := rep.NextMem(c, w, nil)
			if len(addrs) > 8 {
				t.Fatalf("replayed %d addresses, above the format cap", len(addrs))
			}
		}
	})
}
