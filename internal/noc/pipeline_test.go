package noc

import "testing"

// TestPipelineDepthIncreasesLatency: a deeper router pipeline must add
// exactly (stages-1) cycles per hop for an uncontended packet.
func TestPipelineDepthIncreasesLatency(t *testing.T) {
	latency := func(stages int) int64 {
		n := newTestNet(t, func(c *Config) { c.PipelineStages = stages })
		var lat int64
		n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
			lat = pkt.EjectedAt - pkt.InjectedAt
		})
		pkt := mkPacket(n.Config(), ReadRequest, 3) // 3 hops along row 0
		if !n.Inject(0, pkt) {
			t.Fatal("inject failed")
		}
		runUntilIdle(t, n, 2000)
		return lat
	}
	l1 := latency(1)
	l3 := latency(3)
	// 3 router traversals (nodes 0,1,2) plus the ejection-side traversal at
	// node 3: 4 pipeline passes, each 2 cycles deeper.
	if l3-l1 != 4*2 {
		t.Fatalf("pipeline depth delta = %d cycles, want 8 (l1=%d l3=%d)", l3-l1, l1, l3)
	}
}

// TestPipelineInvariantsHold: the credit/ownership invariants must hold at
// every depth under random traffic.
func TestPipelineInvariantsHold(t *testing.T) {
	for _, stages := range []int{2, 4} {
		stages := stages
		runChecked(t, func(c *Config) {
			c.PipelineStages = stages
			c.Routing = RouteMinAdaptive
		}, 800, uint64(10+stages))
	}
}

// TestPipelineDepthValidated: out-of-range depths are rejected.
func TestPipelineDepthValidated(t *testing.T) {
	cfg := Config{Mesh: Mesh{Width: 4, Height: 4}, VCs: 4, LinkBits: 128, DataBytes: 128, PipelineStages: 9}
	if _, err := cfg.Validate(); err == nil {
		t.Fatal("pipeline depth 9 accepted")
	}
}
