package noc

import (
	"fmt"
	"sync"

	"repro/internal/par"
	"repro/internal/stats"
)

// statsTimeWeightedAt restarts an NI occupancy tracker mid-run.
func statsTimeWeightedAt(level float64, now int64) stats.TimeWeighted {
	return stats.NewTimeWeightedAt(level, now)
}

// Fabric is the interface between node logic and an interconnect; the mesh
// Network and the DA2mesh overlay both implement it.
type Fabric interface {
	// CanInject reports whether Inject(node, pkt) would succeed this cycle.
	CanInject(node int, pkt *Packet) bool
	// Inject hands a whole packet to node's NI; false means the node must
	// stall and retry.
	Inject(node int, pkt *Packet) bool
	// Step advances the fabric by one NoC cycle.
	Step()
	// Now returns the fabric's current cycle.
	Now() int64
	// SetEjectHandler installs the packet-delivery callback.
	SetEjectHandler(h func(node int, pkt *Packet, now int64))
	// InFlight returns packets accepted but not yet delivered.
	InFlight() int
	// Stats returns the fabric's statistics (finalised occupancy included).
	Stats() *NetStats
	// GetPacket returns a zeroed Packet from the fabric's freelist. Callers
	// that do not manage packet lifetimes may ignore it and allocate
	// Packets directly; the freelist is an optimisation, not a requirement.
	GetPacket() *Packet
	// PutPacket releases a packet to the freelist. Only call it for packets
	// obtained from GetPacket, and only once no reference remains (after
	// the ejection callback returned, or after Inject rejected it).
	PutPacket(*Packet)
}

// Network is a cycle-accurate 2D-mesh NoC.
type Network struct {
	cfg      Config
	routers  []*router
	ejectors []*ejector
	nis      []*NI

	now      int64
	inFlight int
	stats    NetStats
	// recovery holds the fault-recovery protocol counters (recovery.go);
	// kept off NetStats so encoded Results stay byte-identical to
	// pre-recovery goldens. Never reset — consumers take deltas.
	recovery RecoveryStats
	// ctlPending counts ACK/NACK sideband signals issued but not yet
	// consumed; it keeps Step and Idle honest after the last flit drains
	// while acknowledgements are still propagating.
	ctlPending int
	// ftable is the fault-adaptive up*/down* next-hop table, non-nil once
	// any mesh link is permanently dead; it then supersedes the configured
	// routing algorithm entirely (ftable.go). Rebuilt on every kill,
	// read-only during stepping.
	ftable       []uint8
	ejectHandler func(node int, pkt *Packet, now int64)
	// sinkGate, when set, lets a node refuse ejection this cycle (e.g. a
	// memory controller whose request ingress is full); the refusal backs
	// flits up into the network — the §3 backpressure chain.
	sinkGate func(node int) bool

	// injWindow tracks packets injected in the current 100-cycle window,
	// to expose the peak packet injection rate used by eq. (1)'s speedup
	// sizing (§4.2).
	injWindowCount uint32
	injWindowStart int64
	InjWindows     []uint32

	// scan selects the scan-everything reference loop (Config.ScanStep);
	// the default is event-driven stepping over the active components.
	scan   bool
	pool   pktPool
	poolMu sync.Mutex

	// Sharded stepping (see shard.go): the mesh is always partitioned —
	// into one shard by default, so serial and parallel stepping share one
	// code path — and stepPool fans the shards out when there are several.
	shards      []*netShard
	sharded     bool
	stepPool    *par.Pool
	ownPool     *par.Pool
	shardStepFn func(int)
	commitFn    func(int)

	// tracer receives lifecycle events for every traceEvery-th packet (see
	// SetTracer); nil disables tracing at the cost of a nil check on
	// head-flit events.
	tracer     Tracer
	traceEvery uint64
	// vaGrants counts successful VC allocations. It lives here rather than
	// in NetStats so encoded Results (which embed NetStats) stay
	// byte-identical to pre-observability golden files.
	vaGrants uint64
}

var _ Fabric = (*Network)(nil)

// NewNetwork builds a network from cfg (validated first).
func NewNetwork(cfg Config) (*Network, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, scan: cfg.ScanStep}
	nodes := cfg.Mesh.Nodes()
	n.routers = make([]*router, nodes)
	n.ejectors = make([]*ejector, nodes)
	n.nis = make([]*NI, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(n, id)
	}
	// Wire mesh links and local ports.
	meshLinks := 0
	for id, r := range n.routers {
		for d := Direction(0); d < Direction(NumDirections); d++ {
			nb := cfg.Mesh.Neighbor(id, d)
			if nb < 0 {
				continue
			}
			// Output port d of this router feeds input port opposite(d) of
			// the neighbour.
			dst := n.routers[nb].in[int(d.opposite())]
			r.out[int(d)].destPort = dst
			dst.upstream = r.out[int(d)]
			meshLinks++
		}
		e := newEjector(n, id, r.out[ejectPortIndex])
		r.out[ejectPortIndex].eject = e
		n.ejectors[id] = e
		n.nis[id] = newNI(n, id, r)
	}
	n.stats.MeshLinks = meshLinks
	injLinks := 0
	for _, ni := range n.nis {
		if ni.mode == NISplit {
			injLinks += cfg.VCs
		} else {
			injLinks += len(ni.ports)
		}
	}
	n.stats.InjLinks = injLinks
	n.buildShards(1)
	return n, nil
}

// Config returns the validated configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// SetEjectHandler installs the packet-delivery callback.
func (n *Network) SetEjectHandler(h func(node int, pkt *Packet, now int64)) {
	n.ejectHandler = h
}

// MarkMCRouter tags a node's router as an MC-router (stats/diagnostics).
func (n *Network) MarkMCRouter(node int) { n.routers[node].isMC = true }

// SetSinkGate installs the per-node ejection readiness check.
func (n *Network) SetSinkGate(g func(node int) bool) { n.sinkGate = g }

// ResetStats clears measurement counters (end of warmup) while preserving
// structural fields and all in-flight state.
func (n *Network) ResetStats() {
	n.fold() // flush shard deltas so none survive the reset
	meshLinks, injLinks := n.stats.MeshLinks, n.stats.InjLinks
	n.stats = NetStats{MeshLinks: meshLinks, InjLinks: injLinks}
	n.InjWindows = n.InjWindows[:0]
	n.injWindowCount = 0
	n.injWindowStart = n.now
	for _, ni := range n.nis {
		ni.occupancy = statsTimeWeightedAt(float64(ni.queuedFlits()), n.now)
		ni.everHeld = ni.queuedFlits() > 0
		ni.rejectedOfferEvents = 0
		ni.injectedFlits = 0
	}
	for _, r := range n.routers {
		for _, op := range r.out {
			op.flits = 0
		}
	}
}

// CanInject reports whether node's NI can accept pkt this cycle.
func (n *Network) CanInject(node int, pkt *Packet) bool {
	return n.nis[node].CanAccept(pkt, n.now)
}

// Inject hands pkt to node's NI. pkt.Size must already be set (use
// PacketSize); pkt.Src is overwritten with node.
func (n *Network) Inject(node int, pkt *Packet) bool {
	if pkt.Size <= 0 {
		panic("noc: packet has no size; use PacketSize")
	}
	if pkt.Dst < 0 || pkt.Dst >= n.cfg.Mesh.Nodes() {
		panic(fmt.Sprintf("noc: destination %d out of range", pkt.Dst))
	}
	pkt.Src = node
	// Inject is called from node logic, which sharded simulations fan out
	// over the same spatial partition as the mesh — so everything below
	// (the NI and its shard's counters) is only touched by node's shard.
	sh := n.nis[node].sh
	if pkt.ID == 0 {
		pkt.ID = sh.ctr.pktIDNext
		sh.ctr.pktIDNext += sh.ctr.pktIDStride
	}
	ok := n.nis[node].Offer(pkt, n.now)
	if ok {
		sh.ctr.injWindow++
	}
	return ok
}

// Step advances the network one cycle: arrivals/credits land, NIs supply
// flits, routers run RC/VA/SA/ST, ejectors drain. The default stepping is
// event-driven (only components holding flits are visited); Config.ScanStep
// selects the scan-everything reference loop. Both produce bit-identical
// simulations — see DESIGN.md §"Event-driven stepping" for the invariants
// that make the skip safe.
func (n *Network) Step() {
	// Fold injection-phase deltas first: the inFlight early-out below must
	// see packets node logic injected since the previous step.
	n.fold()
	if n.scan || n.inFlight > 0 || n.ctlPending > 0 {
		n.stepPool.Run(len(n.shards), n.shardStepFn)
		if n.sharded {
			n.commitShards()
		}
		if n.scan {
			for _, e := range n.ejectors {
				e.consume(n.now)
			}
		} else {
			// Dense sweep of the SoA ejector predicates: node order is
			// preserved because shards partition nodes into ascending
			// contiguous ranges.
			for _, s := range n.shards {
				for i, f := range s.ejectFlits {
					if f > 0 {
						s.ejectors[i].consume(n.now)
					}
				}
			}
		}
		n.fold()
	}
	if n.cfg.CheckEvery > 0 && n.now%n.cfg.CheckEvery == 0 {
		if err := n.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("noc: invariant violated at cycle %d: %v", n.now, err))
		}
	}
	n.now++
	n.stats.Cycles++
	if n.now-n.injWindowStart >= 100 {
		n.InjWindows = append(n.InjWindows, n.injWindowCount)
		n.injWindowCount = 0
		n.injWindowStart = n.now
	}
}

// The per-component phases of a step live in netShard.step (shard.go): the
// serial loops this file used to hold are the one-shard special case of the
// sharded schedule, with the same phase order and the same event-driven
// activity predicates:
//
//   - a router with flits == 0 has nothing buffered or staged, so RC/VA/SA
//     are no-ops on it (vcWaitVC implies a buffered head flit, and the
//     round-robin arbiters advance only on grants); the per-cycle rrVA
//     rotation it would have performed is fast-forwarded on wake-up inside
//     vcAllocate, and credits staged toward it stay in creditIn until its
//     next applyArrivals — no decision can read them before then;
//   - an NI with no queued flits can neither supply a flit nor change its
//     time-weighted occupancy (the level is unchanged, and TimeWeighted.Set
//     is idempotent for unchanged levels);
//   - an ejector with no buffered or staged flits has nothing to drain.
//
// When no packet is in flight anywhere (InFlight == 0) the whole cycle is
// skipped: every counter above is provably zero. Ejection always runs
// serially in node order after the shards complete (see shard.go for why).

// GetPacket returns a zeroed Packet from the network's freelist. With
// sharded stepping the freelist is shared by every shard's node logic, so
// it locks; serial networks keep the lock-free path.
func (n *Network) GetPacket() *Packet {
	if n.sharded {
		n.poolMu.Lock()
		p := n.pool.get()
		n.poolMu.Unlock()
		return p
	}
	return n.pool.get()
}

// PutPacket releases a delivered or rejected packet to the freelist.
func (n *Network) PutPacket(p *Packet) {
	if n.sharded {
		n.poolMu.Lock()
		n.pool.put(p)
		n.poolMu.Unlock()
		return
	}
	n.pool.put(p)
}

// InFlight returns packets accepted but not yet delivered.
func (n *Network) InFlight() int {
	n.fold()
	return n.inFlight
}

// Idle reports whether no flit exists anywhere in the network and no
// recovery-protocol work (ACK/NACK signals, unacknowledged packets) remains.
func (n *Network) Idle() bool {
	n.fold()
	if n.inFlight != 0 || n.ctlPending != 0 {
		return false
	}
	for _, ni := range n.nis {
		if ni.pendingFlits() > 0 {
			return false
		}
	}
	return true
}

// Stats returns the network statistics.
func (n *Network) Stats() *NetStats {
	n.fold()
	return &n.stats
}

// VAGrants returns the cumulative count of successful VC allocations across
// all routers (observability; never reset, consumers take deltas).
func (n *Network) VAGrants() uint64 {
	n.fold()
	return n.vaGrants
}

// BufferedFlits returns the flits resident in routers (VC buffers plus
// staged arrivals): the instantaneous router occupancy of the fabric.
func (n *Network) BufferedFlits() int {
	total := 0
	for _, r := range n.routers {
		total += r.flitCount()
	}
	return total
}

// NIQueuedFlits returns the flits waiting in all NI injection queues.
func (n *Network) NIQueuedFlits() int {
	total := 0
	for _, ni := range n.nis {
		total += ni.queuedFlits()
	}
	return total
}

// VCOccupancy returns the flits buffered in input VC index v across every
// router and port: the per-VC occupancy breakdown of BufferedFlits (staged
// arrivals excluded — they have not landed in a VC yet). O(routers*ports);
// call it at sampling cadence, not per cycle.
func (n *Network) VCOccupancy(v int) int {
	if v < 0 || v >= n.cfg.VCs {
		return 0
	}
	total := 0
	for _, r := range n.routers {
		if r.flitCount() == 0 {
			continue
		}
		for _, ip := range r.in {
			total += ip.vcs[v].buf.len()
		}
	}
	return total
}

// NIOccupancyAvgFlits returns the mean time-weighted NI queue occupancy in
// flits over all NIs that injected traffic.
func (n *Network) NIOccupancyAvgFlits() float64 {
	var sum float64
	var cnt int
	for _, ni := range n.nis {
		if !ni.everHeld {
			continue
		}
		sum += ni.OccupancyAvg(n.now)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// NIQueueCapacityFlits returns the configured NI capacity of node.
func (n *Network) NIQueueCapacityFlits(node int) int {
	return n.nis[node].QueueCapacityFlits()
}

// LinkLoad reports per-node, per-direction flit counts over the run: a
// utilisation heatmap of the mesh (the ejection "direction" is index 4).
// Divide by Stats().Cycles for flits/cycle.
func (n *Network) LinkLoad() [][]uint64 {
	out := make([][]uint64, len(n.routers))
	for id, r := range n.routers {
		row := make([]uint64, numOutPorts)
		for o, op := range r.out {
			row[o] = op.flits
		}
		out[id] = row
	}
	return out
}

// NILoad reports per-node injection-link flit counts.
func (n *Network) NILoad() []uint64 {
	out := make([]uint64, len(n.nis))
	for id, ni := range n.nis {
		out[id] = ni.injectedFlits
	}
	return out
}

// PeakInjWindow returns the p-th percentile (0..100) of per-100-cycle
// packet injection counts, the measurement behind eq. (1) (§4.2 sizes S so
// that 95% of peak windows are satisfied).
func (n *Network) PeakInjWindow(p float64) float64 {
	if len(n.InjWindows) == 0 {
		return 0
	}
	sorted := make([]uint32, len(n.InjWindows))
	copy(sorted, n.InjWindows)
	for i := 1; i < len(sorted); i++ { // insertion sort: windows are few
		for j := i; j > 0 && sorted[j-1] > sorted[j]; j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return float64(sorted[idx])
}
