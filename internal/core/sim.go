package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/timing"
	"repro/internal/trace"
)

// resettableFabric is a Fabric whose measurement counters can be cleared at
// the warmup boundary (both the mesh network and the DA2mesh overlay are).
type resettableFabric interface {
	noc.Fabric
	ResetStats()
}

// Simulator is one full-system instance: a kernel running on every compute
// node, request and reply networks, and the MC nodes.
type Simulator struct {
	cfg      Config
	kernel   trace.Kernel
	workload trace.Workload

	mesh      noc.Mesh
	mcNodes   []int
	ccNodes   []int
	mcIndexOf map[int]int

	reqNet *noc.Network
	repNet resettableFabric

	cores []*gpu.Core
	mcs   []*mem.Controller

	// reqFault/repFault drive the deterministic fault schedules when
	// Config.Fault is enabled (mesh fabrics only).
	reqFault *fault.Injector
	repFault *fault.Injector

	coreClock *timing.Clock
	memClock  *timing.Clock
	cycle     int64
	measuring bool
	// measuredCycles is the realised measurement window (fixed for Run,
	// variable for RunWork).
	measuredCycles int64

	// coreCyclesMeasured counts core-clock ticks during measurement.
	coreCyclesMeasured uint64

	// sampler, when installed, runs every sampleEvery NoC cycles at the end
	// of Step (observability hook: a metrics registry's Sample). The
	// disabled-path cost is one comparison per Step.
	sampler     func(cycle int64)
	sampleEvery int64

	// Sharded stepping (Config.Shards > 1): both mesh networks and the node
	// logic are partitioned by the same noc.ShardRanges row blocks and
	// stepped on one shared worker pool, byte-identical to serial stepping.
	shards     int
	pool       *par.Pool
	nodeShards []nodeShard
	nodeStepFn func(int)
	// parallelNodes gates the node-logic fan-out on the workload supporting
	// concurrent per-core calls (trace.ConcurrentWorkload); when false the
	// networks still step sharded but node ticks stay on the caller.
	parallelNodes bool
	// tickCoreTicks/tickMemTicks pass the per-Step clock ticks into the
	// prebuilt nodeStepFn without a per-cycle closure allocation.
	tickCoreTicks int
	tickMemTicks  int
}

// nodeShard groups the cores and MCs whose nodes fall in one mesh shard's
// row block, so node logic and its NIs are always ticked by the same worker.
type nodeShard struct {
	cores []*gpu.Core
	mcs   []*mem.Controller
}

// NewSimulator assembles a simulator for kernel k under cfg, generating
// the workload streams synthetically from k's parameters.
func NewSimulator(cfg Config, k trace.Kernel) (*Simulator, error) {
	return NewSimulatorWorkload(cfg, k, nil)
}

// NewSimulatorWorkload assembles a simulator that drives the cores with an
// explicit workload (e.g. a trace.Replayer over a recorded trace, or a
// trace.Recorder teeing the synthetic streams to disk). k still supplies
// the occupancy (WarpsPerCore) and labels; when w is nil the synthetic
// generator for k is used.
func NewSimulatorWorkload(cfg Config, k trace.Kernel, w trace.Workload) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:       cfg,
		kernel:    k,
		workload:  w,
		mesh:      noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight},
		mcIndexOf: make(map[int]int),
		coreClock: timing.NewClock(cfg.CoreClockNum, cfg.CoreClockDen),
		memClock:  timing.NewClock(cfg.MemClockNum, cfg.MemClockDen),
	}

	if cfg.EdgeMCPlacement {
		s.mcNodes = noc.EdgeMCPlacement(s.mesh, cfg.NumMC)
	} else {
		s.mcNodes = noc.DiamondMCPlacement(s.mesh, cfg.NumMC)
	}
	isMC := make(map[int]bool, len(s.mcNodes))
	for i, n := range s.mcNodes {
		isMC[n] = true
		s.mcIndexOf[n] = i
	}
	for n := 0; n < s.mesh.Nodes(); n++ {
		if !isMC[n] {
			s.ccNodes = append(s.ccNodes, n)
		}
	}

	if err := s.buildNetworks(); err != nil {
		return nil, err
	}
	if err := s.buildNodes(); err != nil {
		return nil, err
	}
	if err := s.buildFaultInjectors(); err != nil {
		return nil, err
	}
	if err := s.setupShards(); err != nil {
		return nil, err
	}
	return s, nil
}

// setupShards enables deterministic intra-run parallelism when
// Config.Shards asks for it: one worker pool shared by both mesh networks
// and (when the workload allows it) the node-logic fan-out, all partitioned
// by the same row blocks. Non-mesh reply fabrics (ideal, DA2mesh) keep
// stepping serially on the caller — only the meshes shard.
func (s *Simulator) setupShards() error {
	s.shards = noc.EffectiveShards(s.mesh, s.cfg.Shards)
	if s.shards <= 1 {
		s.shards = 1
		return nil
	}
	s.pool = par.New(s.shards)
	if _, err := s.reqNet.SetShards(s.shards, s.pool); err != nil {
		return fmt.Errorf("core: sharding request network: %w", err)
	}
	if rep, ok := s.repNet.(*noc.Network); ok {
		if _, err := rep.SetShards(s.shards, s.pool); err != nil {
			return fmt.Errorf("core: sharding reply network: %w", err)
		}
	}
	ranges := noc.ShardRanges(s.mesh, s.shards)
	s.nodeShards = make([]nodeShard, len(ranges))
	for _, c := range s.cores {
		for i, rg := range ranges {
			if c.Node >= rg[0] && c.Node < rg[1] {
				s.nodeShards[i].cores = append(s.nodeShards[i].cores, c)
				break
			}
		}
	}
	for _, mc := range s.mcs {
		for i, rg := range ranges {
			if mc.Node >= rg[0] && mc.Node < rg[1] {
				s.nodeShards[i].mcs = append(s.nodeShards[i].mcs, mc)
				break
			}
		}
	}
	if cw, ok := s.workload.(trace.ConcurrentWorkload); ok {
		s.parallelNodes = cw.ConcurrentByCore()
	}
	s.nodeStepFn = func(i int) { s.stepNodeShard(i) }
	return nil
}

// stepNodeShard runs one shard's core and MC ticks for the current cycle
// (the parallel half of Step's node phase).
func (s *Simulator) stepNodeShard(i int) {
	ns := &s.nodeShards[i]
	for t := 0; t < s.tickCoreTicks; t++ {
		for _, c := range ns.cores {
			c.Tick()
		}
	}
	for _, mc := range ns.mcs {
		if s.cfg.ScanStep || !mc.Quiescent() {
			mc.Tick(s.cycle, s.tickMemTicks)
		} else {
			mc.SkipIdle(s.tickMemTicks)
		}
	}
}

// Shards returns the effective shard count (1 when stepping serially).
func (s *Simulator) Shards() int { return s.shards }

// RecoveryStats returns the fault-recovery protocol counters summed over the
// request network and, when it is a mesh, the reply network. Zero when
// recovery is disabled (Config.RetransBufPkts 0 and no corrupting faults).
func (s *Simulator) RecoveryStats() noc.RecoveryStats {
	var agg noc.RecoveryStats
	add := func(r noc.RecoveryStats) {
		agg.CorruptFlits += r.CorruptFlits
		agg.CorruptPackets += r.CorruptPackets
		agg.NacksSent += r.NacksSent
		agg.AcksSent += r.AcksSent
		agg.RetransPackets += r.RetransPackets
		agg.RetransFlits += r.RetransFlits
		agg.RetransBufFullRejects += r.RetransBufFullRejects
		agg.DeadLinks += r.DeadLinks
	}
	add(s.reqNet.RecoveryStats())
	if rep, ok := s.repNet.(*noc.Network); ok {
		add(rep.RecoveryStats())
	}
	return agg
}

// Close releases the worker pool behind sharded stepping. Serial simulators
// hold no resources, so Close is a no-op for them; it is idempotent and the
// simulator must not be stepped afterwards.
func (s *Simulator) Close() {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
	s.reqNet.Close()
	if rep, ok := s.repNet.(*noc.Network); ok {
		rep.Close()
	}
}

// buildFaultInjectors attaches the deterministic fault schedules when
// Config.Fault is enabled. Faults apply to mesh networks only: the DA2mesh
// overlay and the ideal fabric are behavioural models without per-link
// state, so the reply side is skipped for those schemes.
func (s *Simulator) buildFaultInjectors() error {
	if !s.cfg.Fault.Enabled {
		return nil
	}
	fcfg := s.cfg.Fault
	if fcfg.Seed == 0 {
		fcfg.Seed = s.cfg.Seed
	}
	var err error
	if s.reqFault, err = fault.NewInjector(fcfg, s.reqNet, 1); err != nil {
		return fmt.Errorf("core: request fault injector: %w", err)
	}
	if rep, ok := s.repNet.(*noc.Network); ok {
		if s.repFault, err = fault.NewInjector(fcfg, rep, 2); err != nil {
			return fmt.Errorf("core: reply fault injector: %w", err)
		}
	}
	return nil
}

// buildNetworks wires the request mesh and the scheme's reply fabric.
func (s *Simulator) buildNetworks() error {
	cfg := s.cfg
	routing := cfg.Scheme.Routing()

	// Recovery protocol sizing: corruption without a retransmission buffer
	// would mean silently wrong deliveries, so a corrupting fault schedule
	// turns recovery on by default (Config.RetransBufPkts documents this).
	retrans := cfg.RetransBufPkts
	if retrans == 0 && cfg.Fault.Enabled && cfg.Fault.CorruptProb > 0 {
		retrans = 8
	}

	// Request network: never modified by any scheme (§4.2, §6.1).
	reqCfg := noc.Config{
		Mesh:           s.mesh,
		VCs:            cfg.VCs,
		LinkBits:       cfg.ReqLinkBits,
		DataBytes:      cfg.DataBytes,
		Routing:        routing,
		NonAtomicVC:    true,
		EjectRate:      cfg.EjectRate,
		RetransBufPkts: retrans,
		ScanStep:       cfg.ScanStep,
		CheckEvery:     cfg.NoCCheckEvery,
	}
	reqNet, err := noc.NewNetwork(reqCfg)
	if err != nil {
		return fmt.Errorf("core: request network: %w", err)
	}
	s.reqNet = reqNet

	// Reply network: per-MC-node injection architecture by scheme.
	repCfg := noc.Config{
		Mesh:           s.mesh,
		VCs:            cfg.VCs,
		LinkBits:       cfg.RepLinkBits,
		DataBytes:      cfg.DataBytes,
		Routing:        routing,
		NonAtomicVC:    true,
		NIQueueFlits:   cfg.NIQueueFlits,
		EjectRate:      cfg.EjectRate,
		RetransBufPkts: retrans,
		ScanStep:       cfg.ScanStep,
		CheckEvery:     cfg.NoCCheckEvery,
	}
	if cfg.Scheme.hasPriority() {
		repCfg.PriorityLevels = cfg.PriorityLevels
		repCfg.StarvationLimit = cfg.StarvationLimit
	}
	nodes := make([]noc.NodeConfig, s.mesh.Nodes())
	speedup := cfg.InjSpeedup
	if speedup <= 0 {
		speedup = 4
	}
	for _, n := range s.mcNodes {
		nc := &nodes[n]
		if cfg.Scheme.hasSplitNI() {
			nc.NI = noc.NISplit
		}
		if cfg.Scheme.hasSpeedup() {
			nc.InjSpeedup = speedup
		}
		if cfg.Scheme.isMultiPort() {
			nc.NI = noc.NIMultiPort
			nc.InjPorts = cfg.MultiPortPorts
		}
		if cfg.UnenhancedBaseline && nc.NI == noc.NIBaseline {
			nc.NI = noc.NINarrowLink
		}
	}
	repCfg.Nodes = nodes

	switch {
	case cfg.IdealReply:
		// The ideal fabric and the DA2mesh overlay never see corruption
		// (fault injectors attach to mesh Networks only), so the recovery
		// layer would only perturb their timing — leave it off.
		repCfg.RetransBufPkts = 0
		rep, err := noc.NewIdealFabric(repCfg)
		if err != nil {
			return fmt.Errorf("core: ideal reply fabric: %w", err)
		}
		s.repNet = rep
	case cfg.Scheme.usesOverlay():
		repCfg.RetransBufPkts = 0
		rep, err := noc.NewDA2Mesh(repCfg)
		if err != nil {
			return fmt.Errorf("core: reply overlay: %w", err)
		}
		s.repNet = rep
	default:
		rep, err := noc.NewNetwork(repCfg)
		if err != nil {
			return fmt.Errorf("core: reply network: %w", err)
		}
		for _, n := range s.mcNodes {
			rep.MarkMCRouter(n)
		}
		s.repNet = rep
	}
	return nil
}

// buildNodes constructs the cores and memory controllers and installs the
// traffic hooks.
func (s *Simulator) buildNodes() error {
	cfg := s.cfg

	coreCfg := cfg.Core
	coreCfg.WarpsPerCore = s.kernel.WarpsPerCore
	coreCfg.ScanTick = cfg.ScanStep
	workload := s.workload
	if workload == nil {
		gen, err := trace.NewGenerator(s.kernel, len(s.ccNodes), cfg.Seed)
		if err != nil {
			return err
		}
		workload = gen
		s.workload = gen // setupShards checks it for per-core concurrency
	}

	s.cores = make([]*gpu.Core, len(s.ccNodes))
	for i, node := range s.ccNodes {
		idx, nd := i, node
		send := func(txn *mem.Transaction) bool { return s.sendRequest(nd, txn) }
		c, err := gpu.NewCore(idx, nd, coreCfg, workload, send)
		if err != nil {
			return err
		}
		s.cores[i] = c
	}

	s.mcs = make([]*mem.Controller, len(s.mcNodes))
	for i, node := range s.mcNodes {
		mc, err := mem.NewController(node, cfg.MC, s.repNet, cfg.RepLinkBits, cfg.DataBytes)
		if err != nil {
			return err
		}
		s.mcs[i] = mc
	}

	// Request network delivers to MCs, gated by their ingress space. The MC
	// extracts the transaction, so the packet shell recycles immediately.
	s.reqNet.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) {
		s.mcs[s.mcIndexOf[node]].Receive(pkt)
		s.reqNet.PutPacket(pkt)
	})
	s.reqNet.SetSinkGate(func(node int) bool {
		i, ok := s.mcIndexOf[node]
		if !ok {
			return true
		}
		return s.mcs[i].CanReceive()
	})

	// Reply fabric delivers to cores.
	coreAt := make(map[int]*gpu.Core, len(s.cores))
	for _, c := range s.cores {
		coreAt[c.Node] = c
	}
	s.repNet.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) {
		txn, ok := pkt.Payload.(*mem.Transaction)
		if !ok {
			panic("core: reply packet without Transaction payload")
		}
		if c := coreAt[node]; c != nil {
			c.ReceiveReply(txn)
		}
		s.repNet.PutPacket(pkt)
	})
	return nil
}

// mcNodeFor maps a line address to its owning MC node (line interleaving
// across MCs).
func (s *Simulator) mcNodeFor(addr uint64) int {
	line := addr / uint64(s.cfg.DataBytes)
	return s.mcNodes[int(line%uint64(len(s.mcNodes)))]
}

// sendRequest builds and injects a request packet from a core's node.
func (s *Simulator) sendRequest(node int, txn *mem.Transaction) bool {
	typ := noc.ReadRequest
	if txn.IsWrite {
		typ = noc.WriteRequest
	}
	pkt := s.reqNet.GetPacket()
	pkt.Type = typ
	pkt.Dst = s.mcNodeFor(txn.Addr)
	pkt.Size = noc.PacketSize(typ, s.cfg.ReqLinkBits, s.cfg.DataBytes)
	pkt.Payload = txn
	if !s.reqNet.Inject(node, pkt) {
		s.reqNet.PutPacket(pkt)
		return false
	}
	return true
}

// Step advances the whole system by one NoC cycle.
func (s *Simulator) Step() {
	coreTicks := s.coreClock.Tick()
	memTicks := s.memClock.Tick()
	if s.parallelNodes {
		// Fan the node phase out over the mesh shards: cores and MCs only
		// interact through the networks (requests and replies hand over
		// inside the networks' Step, not here), so per-shard tick order is
		// free to differ from the serial (tick, node) order.
		s.tickCoreTicks, s.tickMemTicks = coreTicks, memTicks
		s.pool.Run(len(s.nodeShards), s.nodeStepFn)
	} else {
		for t := 0; t < coreTicks; t++ {
			for _, c := range s.cores {
				c.Tick()
			}
		}
		for _, mc := range s.mcs {
			if s.cfg.ScanStep || !mc.Quiescent() {
				mc.Tick(s.cycle, memTicks)
			} else {
				// A quiescent MC's Tick only advances the DRAM clock; skip
				// the rest of the pipeline walk but keep that clock aligned.
				mc.SkipIdle(memTicks)
			}
		}
	}
	if s.measuring {
		s.coreCyclesMeasured += uint64(coreTicks)
	}
	if s.reqFault != nil {
		s.reqFault.Step(s.cycle)
	}
	s.reqNet.Step()
	if s.repFault != nil {
		s.repFault.Step(s.cycle)
	}
	s.repNet.Step()
	s.cycle++
	if s.sampleEvery > 0 && s.cycle%s.sampleEvery == 0 {
		s.sampler(s.cycle)
	}
}

// SetSampler installs fn to run every `every` NoC cycles at the end of Step
// (every <= 0 or a nil fn disables sampling). The hook observes only: it
// must not mutate simulator state, so an instrumented run stays
// bit-identical to an uninstrumented one.
func (s *Simulator) SetSampler(every int64, fn func(cycle int64)) {
	if fn == nil || every <= 0 {
		s.sampler, s.sampleEvery = nil, 0
		return
	}
	s.sampler, s.sampleEvery = fn, every
}

// Cycle returns the current NoC cycle.
func (s *Simulator) Cycle() int64 { return s.cycle }

// Cores exposes the compute nodes.
func (s *Simulator) Cores() []*gpu.Core { return s.cores }

// MCs exposes the memory controllers.
func (s *Simulator) MCs() []*mem.Controller { return s.mcs }

// RequestNet exposes the request network.
func (s *Simulator) RequestNet() *noc.Network { return s.reqNet }

// ReplyNet exposes the reply fabric.
func (s *Simulator) ReplyNet() noc.Fabric { return s.repNet }

// MCNodes returns the MC node ids.
func (s *Simulator) MCNodes() []int { return s.mcNodes }

// StateDumpJSON returns a JSON diagnostic of both fabrics' non-quiescent
// state (the structured form of the watchdog's text dump). Like DumpState
// it only reads, but it must run on the goroutine stepping the simulator —
// the watchdog poll services Inspector state requests for exactly that
// reason.
func (s *Simulator) StateDumpJSON() []byte {
	type dump struct {
		Cycle       int64          `json:"cycle"`
		Benchmark   string         `json:"benchmark"`
		Scheme      string         `json:"scheme"`
		Request     *noc.StateDump `json:"request"`
		Reply       *noc.StateDump `json:"reply,omitempty"`
		RepInFlight int            `json:"reply_in_flight"`
	}
	d := dump{
		Cycle:       s.cycle,
		Benchmark:   s.kernel.Name,
		Scheme:      s.cfg.Scheme.String(),
		RepInFlight: s.repNet.InFlight(),
	}
	req := s.reqNet.StateSnapshot()
	d.Request = &req
	if rep, ok := s.repNet.(*noc.Network); ok {
		rd := rep.StateSnapshot()
		d.Reply = &rd
	}
	b, err := json.Marshal(d)
	if err != nil {
		// The dump types contain only marshallable fields; a failure here is
		// a programming error worth surfacing in the payload, not a panic in
		// a diagnostics path.
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return b
}

// resetStats clears all measurement counters at the warmup boundary.
func (s *Simulator) resetStats() {
	for _, c := range s.cores {
		c.ResetStats()
	}
	for _, mc := range s.mcs {
		mc.StallTime = 0
		mc.BlockedCycle = 0
		mc.RepliesSent = 0
	}
	s.reqNet.ResetStats()
	s.repNet.ResetStats()
	s.coreCyclesMeasured = 0
}

// Run executes warmup + a fixed-horizon measurement window and returns the
// collected result. It never fails: all watchdogs are disabled, so a
// deadlocked simulation spins forever — use RunChecked anywhere a hang is
// unacceptable (the experiment harness always does).
func (s *Simulator) Run() Result {
	r, _ := s.RunChecked(uncheckedOptions())
	return r
}

// RunChecked is Run with forward-progress watchdogs: it detects deadlock
// (flits in flight, zero movement for CheckOptions.DeadlockCycles) and
// livelock/starvation (a packet older than CheckOptions.PacketAgeCap) and
// fails with a structured *WatchdogError carrying a full diagnostic dump
// instead of spinning. A healthy simulation produces a Result bit-identical
// to Run's: the watchdog only reads.
func (s *Simulator) RunChecked(opt CheckOptions) (Result, error) {
	w := newWatchdog(s, opt)
	for s.cycle < s.cfg.WarmupCycles {
		s.Step()
		if err := w.poll(); err != nil {
			return Result{}, err
		}
	}
	s.resetStats()
	s.measuring = true
	end := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	for s.cycle < end {
		s.Step()
		if err := w.poll(); err != nil {
			return Result{}, err
		}
	}
	s.measuring = false
	s.measuredCycles = s.cfg.MeasureCycles
	return s.collect(), nil
}

// RunWork executes warmup, then measures until the cores have retired
// `instructions` warp-instructions in total (fixed-work mode: the basis the
// paper's execution-time and energy comparisons use), bounded by maxCycles
// as a runaway guard. The result's MeasuredCycles reflects the actual
// window, so lower is faster for the same work; Result.Truncated reports
// whether the guard clipped the run before the work completed. Watchdogs
// are disabled — see RunWorkChecked.
func (s *Simulator) RunWork(instructions uint64, maxCycles int64) Result {
	r, _ := s.RunWorkChecked(instructions, maxCycles, uncheckedOptions())
	return r
}

// RunWorkChecked is RunWork with the forward-progress watchdogs of
// RunChecked. A run clipped by maxCycles is not an error — the Result comes
// back with Truncated set so callers can decide.
func (s *Simulator) RunWorkChecked(instructions uint64, maxCycles int64, opt CheckOptions) (Result, error) {
	w := newWatchdog(s, opt)
	for s.cycle < s.cfg.WarmupCycles {
		s.Step()
		if err := w.poll(); err != nil {
			return Result{}, err
		}
	}
	s.resetStats()
	s.measuring = true
	start := s.cycle
	truncated := false
	for {
		var done uint64
		for _, c := range s.cores {
			done += c.Instructions
		}
		if done >= instructions {
			break
		}
		if s.cycle-start >= maxCycles {
			truncated = true
			break
		}
		s.Step()
		if err := w.poll(); err != nil {
			return Result{}, err
		}
	}
	s.measuring = false
	s.measuredCycles = s.cycle - start
	r := s.collect()
	r.Truncated = truncated
	return r, nil
}
