// Package noc implements a cycle-accurate network-on-chip simulator in the
// style of BookSim 2.0: virtual-channel wormhole routers with credit-based
// flow control, separable input-first allocators, XY and minimal-adaptive
// routing on a 2D mesh, and the network-interface (NI) architectures studied
// in the ARI paper (enhanced baseline, split-queue ARI, MultiPort) plus the
// DA2mesh overlay.
//
// The package is self-contained: traffic enters as Packets through Fabric.
// Inject and leaves through an ejection callback, so it can be driven either
// by the full GPGPU model (internal/core) or by synthetic traffic
// (examples/noctraffic, unit tests).
package noc

import "fmt"

// PacketType classifies the four coexisting GPGPU NoC packet types
// (paper Figure 5).
type PacketType uint8

const (
	// ReadRequest is a short control packet from a compute node to an MC.
	ReadRequest PacketType = iota
	// WriteRequest is a long packet carrying store data to an MC.
	WriteRequest
	// ReadReply is a long packet carrying load data back to a compute node.
	ReadReply
	// WriteReply is a short acknowledgement back to a compute node.
	WriteReply
	numPacketTypes
)

// NumPacketTypes is the number of distinct packet types.
const NumPacketTypes = int(numPacketTypes)

// String returns the paper's name for the packet type.
func (t PacketType) String() string {
	switch t {
	case ReadRequest:
		return "read_request"
	case WriteRequest:
		return "write_request"
	case ReadReply:
		return "read_reply"
	case WriteReply:
		return "write_reply"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// IsReply reports whether the packet type travels on the reply network.
func (t PacketType) IsReply() bool { return t == ReadReply || t == WriteReply }

// IsLong reports whether the packet type carries a data payload and is
// therefore a multi-flit packet.
func (t PacketType) IsLong() bool { return t == ReadReply || t == WriteRequest }

// Packet is one network transaction. Flits reference their packet; per-flit
// state lives in the buffers, not here.
type Packet struct {
	ID   uint64
	Type PacketType
	// traced marks a packet sampled by the network's Tracer; the flag only
	// selects which packets emit lifecycle events and never influences a
	// routing or allocation decision. The packet pool's zeroing clears it.
	// It sits in Type's padding so the struct size is unchanged.
	traced bool
	Src    int // source node id
	Dst    int // destination node id
	Size   int // length in flits at this network's link width

	// Priority is the ARI multi-level priority field carried in the header.
	// It is set to Config.PriorityLevels-1 at generation and decremented by
	// each route computation (floored at 0).
	Priority int

	// Timestamps, in NoC cycles. CreatedAt is when the node handed the
	// packet to the NI (so NI queueing counts toward packet latency, as in
	// paper §7.4). InjectedAt is when the head flit entered the injection
	// port. EjectedAt is when the tail flit was consumed at the destination.
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64

	// Payload carries the higher-level transaction (e.g. *mem.Transaction).
	Payload any

	// Check is the CRC32 the sending NI stamps over the header identity when
	// fault recovery is enabled (Config.RetransBufPkts > 0); see PacketCheck.
	// Zero when recovery is off.
	Check uint32
}

// flit is one link-width slice of a packet. Flits are small values stored
// in ring buffers; they are never shared across buffers.
type flit struct {
	pkt *Packet
	seq int // 0-based flit index within the packet
	// bad marks a flit whose payload was corrupted on a link traversal
	// (CorruptLink window). The flag rides the flit value through buffers
	// and never influences routing or arbitration; only the receiving NI's
	// CRC-check-equivalent reads it (see recovery.go).
	bad bool
}

func (f flit) isHead() bool { return f.seq == 0 }
func (f flit) isTail() bool { return f.seq == f.pkt.Size-1 }

// PacketSize returns the number of flits a packet of type t occupies on a
// network with the given link width, for a data payload of dataBytes.
// Short packets (read requests, write replies) are a single flit; long
// packets carry one header flit plus ceil(dataBytes / flitBytes) data flits
// (paper §3: a 1024-bit data on 128-bit links is an 8-flit payload, 9 flits
// total, matching the 36-flit NI queue holding 4 long packets).
func PacketSize(t PacketType, linkBits, dataBytes int) int {
	if !t.IsLong() {
		return 1
	}
	flitBytes := linkBits / 8
	if flitBytes <= 0 {
		panic("noc: link width must be at least 8 bits")
	}
	n := (dataBytes + flitBytes - 1) / flitBytes
	return 1 + n
}

// flitQueue is a fixed-capacity FIFO ring of flits.
type flitQueue struct {
	buf        []flit
	head, size int
}

func newFlitQueue(capacity int) *flitQueue {
	return &flitQueue{buf: make([]flit, capacity)}
}

func (q *flitQueue) len() int      { return q.size }
func (q *flitQueue) cap() int      { return len(q.buf) }
func (q *flitQueue) free() int     { return len(q.buf) - q.size }
func (q *flitQueue) empty() bool   { return q.size == 0 }
func (q *flitQueue) full() bool    { return q.size == len(q.buf) }
func (q *flitQueue) front() flit   { return q.buf[q.head] }
func (q *flitQueue) at(i int) flit { return q.buf[(q.head+i)%len(q.buf)] }

func (q *flitQueue) push(f flit) {
	if q.full() {
		panic("noc: flit queue overflow")
	}
	q.buf[(q.head+q.size)%len(q.buf)] = f
	q.size++
}

func (q *flitQueue) pop() flit {
	if q.empty() {
		panic("noc: flit queue underflow")
	}
	f := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return f
}
