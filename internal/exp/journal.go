package exp

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/core"
)

// journalVersion is bumped whenever the serialised Result or the key schema
// changes shape; entries from another version are ignored on load so a
// stale journal can never smuggle incompatible results into a sweep.
const journalVersion = 2

// journalEntry is one completed run, one JSON object per line (JSONL).
type journalEntry struct {
	V      int         `json:"v"`
	Key    string      `json:"key"`
	Bench  string      `json:"bench"`
	Scheme string      `json:"scheme"`
	Result core.Result `json:"result"`
}

// Journal is an opt-in on-disk result journal for the Runner: every
// finished run is appended as one JSON line and flushed before the result
// is handed to the caller, so a killed sweep resumes from the journal
// without recomputing finished runs.
//
// Crash safety: entries are self-delimiting lines; a process killed
// mid-append leaves at most one truncated final line, which OpenJournal
// skips (everything before it is intact). Resumed runs are byte-identical
// to fresh ones because the serialised Result round-trips losslessly.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]core.Result
	loaded  int
}

// OpenJournal opens (or creates) the journal at path and loads every intact
// entry. A torn final line — the signature of a process killed mid-append —
// is physically truncated away, so the next append starts on a fresh line
// instead of gluing onto the partial record (which would corrupt the first
// entry written after a crash). A corrupt but newline-terminated line in the
// middle of the file only costs that one entry.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: open journal: %w", err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]core.Result)}
	// intact is the byte offset just past the last newline-terminated line;
	// anything after it is a torn tail to be cut off.
	var intact int64
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			break // len(line) > 0 here means a torn, unterminated tail
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("exp: read journal: %w", err)
		}
		intact += int64(len(line))
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.V != journalVersion || e.Key == "" {
			continue // foreign or corrupt line: recompute that run
		}
		j.entries[e.Key] = e.Result
	}
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: seek journal: %w", err)
	}
	j.loaded = len(j.entries)
	return j, nil
}

// Len returns the number of loaded + recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Loaded returns how many entries the journal held when opened (i.e. how
// many runs a resumed sweep skips).
func (j *Journal) Loaded() int { return j.loaded }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup returns the journalled result for key, if present.
func (j *Journal) lookup(key string) (core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.entries[key]
	return r, ok
}

// Get returns the journalled result for key, if present. It is the
// read side cluster peers hit while a job is completing locally: the
// in-memory index is published under the journal lock only after the
// record's line is fully written and fsync'd, so a concurrent Get observes
// either no entry or the complete, durable record — never a torn tail.
func (j *Journal) Get(key string) (core.Result, bool) { return j.lookup(key) }

// record appends one finished run and syncs it to disk before returning, so
// a crash immediately after never loses it.
func (j *Journal) record(key string, res core.Result) error {
	// Encode outside the lock: marshalling a Result is the expensive part
	// of an append and needs no journal state, so concurrent Get readers
	// (peer fetches) are not held behind it.
	line, err := json.Marshal(journalEntry{
		V:      journalVersion,
		Key:    key,
		Bench:  res.Benchmark,
		Scheme: res.Scheme.String(),
		Result: res,
	})
	if err != nil {
		return fmt.Errorf("exp: encode journal entry: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("exp: journal %s is closed", j.path)
	}
	if _, ok := j.entries[key]; ok {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("exp: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("exp: sync journal: %w", err)
	}
	j.entries[key] = res
	return nil
}

// JobKey returns the journal key for one (config, benchmark) run — the
// identity the serving layer uses to deduplicate idempotent job submissions.
func JobKey(cfg core.Config, bench string) string { return jobKey(cfg, bench) }

// jobKey derives the journal key for one (config, benchmark) run: a SHA-256
// over the canonical JSON of both, so any config change — scheme, horizons,
// seed, fault schedule — keys a distinct entry.
func jobKey(cfg core.Config, bench string) string {
	b, err := json.Marshal(struct {
		V     int
		Cfg   core.Config
		Bench string
	}{journalVersion, cfg, bench})
	if err != nil {
		// core.Config is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal job key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
