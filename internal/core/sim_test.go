package core

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/trace"
)

// fastConfig returns Table I defaults with test-sized horizons.
func fastConfig(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2000
	return cfg
}

func runBench(t *testing.T, name string, cfg Config) Result {
	t.Helper()
	k, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

func TestEndToEndBaseline(t *testing.T) {
	r := runBench(t, "bfs", fastConfig(XYBaseline))
	if r.Instructions == 0 || r.IPC <= 0 {
		t.Fatalf("no forward progress: %+v", r)
	}
	if r.RepliesSent == 0 {
		t.Fatal("no replies flowed through the reply network")
	}
	// All four packet types must appear (Fig 5's traffic mix exists).
	for pt := 0; pt < noc.NumPacketTypes; pt++ {
		typ := noc.PacketType(pt)
		n := r.Req.PacketsInjected[pt] + r.Rep.PacketsInjected[pt]
		if n == 0 {
			t.Fatalf("packet type %v never injected", typ)
		}
	}
	// Request types travel on the request network only, replies on the
	// reply network only.
	if r.Req.PacketsInjected[noc.ReadReply] != 0 || r.Rep.PacketsInjected[noc.ReadRequest] != 0 {
		t.Fatal("packet type on the wrong network")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runBench(t, "hotspot", fastConfig(AdaARI))
	b := runBench(t, "hotspot", fastConfig(AdaARI))
	if a.Instructions != b.Instructions || a.MCStallTime != b.MCStallTime ||
		a.Rep.MeshLinkFlits != b.Rep.MeshLinkFlits {
		t.Fatalf("simulation not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := fastConfig(XYBaseline)
	a := runBench(t, "bfs", cfg)
	cfg.Seed = 99
	b := runBench(t, "bfs", cfg)
	if a.Instructions == b.Instructions && a.Rep.MeshLinkFlits == b.Rep.MeshLinkFlits {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestARIBeatsBaselineOnHighSensitivity(t *testing.T) {
	base := runBench(t, "bfs", fastConfig(AdaBaseline))
	ari := runBench(t, "bfs", fastConfig(AdaARI))
	if ari.IPC <= base.IPC {
		t.Fatalf("ARI IPC %.3f not above baseline %.3f on bfs", ari.IPC, base.IPC)
	}
	// The headline mechanism: ARI must cut per-reply MC stall time.
	baseStall := float64(base.MCStallTime) / float64(base.RepliesSent)
	ariStall := float64(ari.MCStallTime) / float64(ari.RepliesSent)
	if ariStall >= baseStall {
		t.Fatalf("ARI stall/reply %.1f not below baseline %.1f", ariStall, baseStall)
	}
}

func TestLowSensitivityUnaffected(t *testing.T) {
	base := runBench(t, "lavaMD", fastConfig(AdaBaseline))
	ari := runBench(t, "lavaMD", fastConfig(AdaARI))
	rel := ari.IPC / base.IPC
	if rel < 0.97 || rel > 1.10 {
		t.Fatalf("low-sensitivity benchmark moved by %.3fx under ARI", rel)
	}
}

func TestSchemeWiring(t *testing.T) {
	for s := Scheme(0); int(s) < NumSchemes; s++ {
		cfg := fastConfig(s)
		cfg.MeasureCycles = 300
		cfg.WarmupCycles = 100
		r := runBench(t, "kmeans", cfg)
		if r.Instructions == 0 {
			t.Fatalf("scheme %v made no progress", s)
		}
		if r.Scheme != s {
			t.Fatalf("result tagged %v, want %v", r.Scheme, s)
		}
	}
}

func TestOverlaySchemeUsesDA2Mesh(t *testing.T) {
	k, _ := trace.ByName("bfs")
	sim, err := NewSimulator(fastConfig(DA2MeshARI), k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.ReplyNet().(*noc.DA2Mesh); !ok {
		t.Fatalf("reply fabric is %T, want *noc.DA2Mesh", sim.ReplyNet())
	}
	sim2, _ := NewSimulator(fastConfig(AdaARI), k)
	if _, ok := sim2.ReplyNet().(*noc.Network); !ok {
		t.Fatalf("reply fabric is %T, want *noc.Network", sim2.ReplyNet())
	}
}

func TestMeshSizes(t *testing.T) {
	for _, sz := range []struct{ w, h, mc int }{{4, 4, 4}, {6, 6, 8}, {8, 8, 8}} {
		cfg := fastConfig(XYBaseline)
		cfg.MeshWidth, cfg.MeshHeight, cfg.NumMC = sz.w, sz.h, sz.mc
		cfg.MeasureCycles = 400
		cfg.WarmupCycles = 100
		r := runBench(t, "bfs", cfg)
		if r.Instructions == 0 {
			t.Fatalf("%dx%d made no progress", sz.w, sz.h)
		}
	}
}

func TestAddressToMCMapping(t *testing.T) {
	k, _ := trace.ByName("bfs")
	sim, err := NewSimulator(fastConfig(XYBaseline), k)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for line := uint64(0); line < 64; line++ {
		node := sim.mcNodeFor(line * 128)
		seen[node] = true
		found := false
		for _, mc := range sim.MCNodes() {
			if mc == node {
				found = true
			}
		}
		if !found {
			t.Fatalf("address mapped to non-MC node %d", node)
		}
	}
	if len(seen) != len(sim.MCNodes()) {
		t.Fatalf("interleaving covers %d MCs, want %d", len(seen), len(sim.MCNodes()))
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.MeshWidth = 0 },
		func(c *Config) { c.NumMC = 0 },
		func(c *Config) { c.NumMC = 100 },
		func(c *Config) { c.Scheme = Scheme(99) },
		func(c *Config) { c.MeasureCycles = 0 },
		func(c *Config) { c.CoreClockDen = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestChooseSpeedup(t *testing.T) {
	// Eq. (1): S >= rate x flits, minimal integer; eq. (2): S <= min(out, vcs).
	cases := []struct {
		rate, flits float64
		out, vcs    int
		want        int
	}{
		{0.10, 8.2, 4, 4, 1},
		{0.30, 8.2, 4, 4, 3},
		{0.50, 8.2, 4, 4, 4}, // 4.1 clamped by eq. 2
		{0.90, 8.2, 4, 4, 4},
		{0.30, 8.2, 4, 2, 2}, // VC bound
		{0.30, 8.2, 2, 4, 2}, // output bound
		{0, 0, 4, 4, 1},
	}
	for i, c := range cases {
		if got := ChooseSpeedup(c.rate, c.flits, c.out, c.vcs); got != c.want {
			t.Fatalf("case %d: ChooseSpeedup = %d, want %d", i, got, c.want)
		}
	}
}

func TestSchemeProperties(t *testing.T) {
	if XYBaseline.Routing() != noc.RouteXY || AdaARI.Routing() != noc.RouteMinAdaptive {
		t.Fatal("routing mapping wrong")
	}
	if !AdaARI.hasSplitNI() || !AdaARI.hasSpeedup() || !AdaARI.hasPriority() {
		t.Fatal("AdaARI must enable all three mechanisms")
	}
	if AccSupply.hasSpeedup() || AccConsume.hasSplitNI() || AccBothNoPriority.hasPriority() {
		t.Fatal("ablation schemes enable the wrong mechanisms")
	}
	if !DA2MeshARI.usesOverlay() || DA2MeshBase.hasSplitNI() {
		t.Fatal("overlay schemes wired wrong")
	}
	if !AdaMultiPort.isMultiPort() || AdaARI.isMultiPort() {
		t.Fatal("MultiPort flag wrong")
	}
}

func TestWarmupResetIsolation(t *testing.T) {
	// A run with warmup must report fewer instructions than one measuring
	// from cycle 0 over the same total horizon (stats reset works).
	k, _ := trace.ByName("bfs")
	cfg := fastConfig(XYBaseline)
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 1000
	simA, _ := NewSimulator(cfg, k)
	a := simA.Run()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 2000
	simB, _ := NewSimulator(cfg, k)
	b := simB.Run()
	if a.Instructions >= b.Instructions {
		t.Fatalf("warmup reset broken: %d >= %d", a.Instructions, b.Instructions)
	}
	if a.MeasuredCycles != 1000 {
		t.Fatalf("measured cycles = %d, want 1000", a.MeasuredCycles)
	}
}
