package mem

import "testing"

func BenchmarkDRAMTickStreaming(b *testing.B) {
	d := NewDRAM(DefaultDRAMConfig())
	var out []*Transaction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.CanAccept() {
			d.Enqueue(&Transaction{ID: uint64(i) + 1, Addr: uint64(i) * 128}, false)
		}
		d.Tick()
		out = d.TakeCompleted(out[:0], nil)
	}
}

func BenchmarkControllerTick(b *testing.B) {
	fab := &stubFabric{}
	mc, err := NewController(0, DefaultMCConfig(), fab, 128, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mc.CanReceive() {
			mc.Receive(reqPacket(&Transaction{ID: uint64(i) + 1, Addr: uint64(i) * 512, SrcNode: 1}))
		}
		mc.Tick(int64(i), 2)
	}
}
