package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PlacementAblation is an extension study beyond the paper: it quantifies
// how the MC placement interacts with ARI's prioritisation (§5). Where
// MC-routers carry other MCs' through replies (edge clustering creates
// shared perimeter corridors; diamond spreads them), prioritising local
// injection redistributes service between the two — so the priority gain
// is a placement-sensitive quantity, not a constant of the scheme. During
// development this sensitivity was strong enough to flip the gain's sign
// under a backpressure-heavy configuration; the table quantifies it under
// the calibrated Table I system.
func PlacementAblation(r *Runner) (*Figure, error) {
	benches := []string{"bfs", "kmeans", "mummerGPU", "pathfinder"}
	type variant struct {
		label  string
		edge   bool
		scheme core.Scheme
	}
	variants := []variant{
		{"diamond/no-pri", false, core.AccBothNoPriority},
		{"diamond/ARI", false, core.AdaARI},
		{"edge/no-pri", true, core.AccBothNoPriority},
		{"edge/ARI", true, core.AdaARI},
	}
	var jobs []Job
	for _, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			cfg := r.withScheme(v.scheme)
			cfg.EdgeMCPlacement = v.edge
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "diamond prio gain", "edge prio gain")
	var dGains, eGains []float64
	for bi, name := range benches {
		base := bi * len(variants)
		d := safeDiv(res[base+1].IPC, res[base+0].IPC) - 1
		e := safeDiv(res[base+3].IPC, res[base+2].IPC) - 1
		dGains = append(dGains, d)
		eGains = append(eGains, e)
		t.AddRow(name, pct(d), pct(e))
	}
	return &Figure{
		ID:    "placement",
		Title: "Extension: priority gain (ARI vs Acc-Both-NoPriority) under diamond vs edge MC placement",
		Paper: "(beyond the paper) the §5 priority gain depends on how much cross-MC through traffic the MC-routers carry, i.e. on MC placement",
		Table: t,
		Summary: map[string]float64{
			"diamond_priority_gain": mean(dGains),
			"edge_priority_gain":    mean(eGains),
		},
		Notes: []string{fmt.Sprintf("benchmarks: %v; priority levels = %d", benches, r.Base.PriorityLevels)},
	}, nil
}
