package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config configures a Gateway.
type Config struct {
	// Base is the configuration jobs resolve against when they carry no
	// explicit Config — it must match the replicas' base, or the gateway
	// and the replicas would disagree on JobKeys. Required.
	Base core.Config

	// Replicas are the ariserve base URLs forming the cluster. Required.
	Replicas []string

	// Vnodes is the per-replica virtual-node count (DefaultVnodes when 0).
	Vnodes int

	// Replication is how many distinct owners each key has on the ring —
	// the failover depth. Default 2, clamped to len(Replicas).
	Replication int

	// HedgeAfter races a secondary owner when the primary has not answered
	// within this long (default 250ms; negative disables hedging).
	// Idempotent jobs make the duplicate harmless, determinism makes both
	// answers identical — first one back wins.
	HedgeAfter time.Duration

	// ProbeInterval is the readyz health-probe cadence (default 500ms).
	ProbeInterval time.Duration

	// BreakerThreshold opens a replica's circuit after this many
	// consecutive failures (default 3).
	BreakerThreshold int

	// HTTPClient overrides the client used for proxying and probing.
	HTTPClient *http.Client

	// TraceSample enables distributed tracing for 1 in N submissions
	// (0 disables minting traces; 1 traces everything). A submission that
	// already carries a valid X-Ari-Trace header is always traced — the
	// caller made the sampling decision.
	TraceSample int

	// TraceCap bounds the in-memory span recorder (obs.DefaultSpanCap
	// when 0).
	TraceCap int

	// SLOTarget is the end-to-end routing-latency objective boundary
	// (default 2s): a submission answered 2xx within it is a good event.
	SLOTarget time.Duration

	// SLOGoal is the objective's target good fraction (default 0.99).
	SLOGoal float64
}

// Stats is a point-in-time snapshot of the gateway's counters.
type Stats struct {
	// Requests counts job submissions accepted for routing.
	Requests int64 `json:"requests"`
	// Shed counts submissions answered 429 because every owner of the key
	// was down or shedding.
	Shed int64 `json:"shed"`
	// Failovers counts attempts launched because a prior owner failed or
	// shed; Hedges counts attempts launched because a prior owner was slow.
	Failovers int64 `json:"failovers"`
	Hedges    int64 `json:"hedges"`
	// HedgeWins counts requests whose winning answer came from a hedged
	// attempt.
	HedgeWins int64 `json:"hedge_wins"`
	// Replicas is the per-replica routing + health table.
	Replicas []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica's row in Stats.
type ReplicaStats struct {
	ReplicaHealth
	// Routed counts attempts sent to this replica (including failed ones).
	Routed int64 `json:"routed"`
}

// Gateway is the arigate front door: an http.Handler that routes job
// submissions to ariserve replicas by consistent hash over their JobKey,
// with health-checked failover, hedging, and load shedding.
//
//	POST /v1/jobs   route a JobRequest to its owner replicas
//	GET  /v1/stats  routing/failover/hedge counters (Stats)
//	GET  /healthz   liveness of the gateway process
//	GET  /readyz    200 while >= 1 replica is routable, else 503
//	GET  /metrics   Prometheus text: routing, failover, hedge, per-replica
type Gateway struct {
	base       core.Config
	ring       *Ring
	health     *Health
	repl       int
	hedgeAfter time.Duration
	hc         *http.Client
	mux        *http.ServeMux
	started    time.Time

	spans       *obs.SpanRecorder
	traceSample int
	traceSeq    atomic.Int64
	routeHist   obs.Histogram // end-to-end routing latency, µs
	attemptHist obs.Histogram // per-proxied-attempt latency, µs
	slo         *obs.SLOTracker

	mu        sync.Mutex
	requests  int64
	shed      int64
	failovers int64
	hedges    int64
	hedgeWins int64
	routed    map[string]int64
}

// New builds a Gateway; call Start to begin health probing and Close to
// stop it.
func New(cfg Config) (*Gateway, error) {
	ring, err := NewRing(cfg.Replicas, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	repl := cfg.Replication
	if repl <= 0 {
		repl = 2
	}
	if repl > len(ring.replicas) {
		repl = len(ring.replicas)
	}
	hedge := cfg.HedgeAfter
	if hedge == 0 {
		hedge = 250 * time.Millisecond
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	target := cfg.SLOTarget
	if target <= 0 {
		target = 2 * time.Second
	}
	goal := cfg.SLOGoal
	if goal <= 0 || goal >= 1 {
		goal = 0.99
	}
	g := &Gateway{
		base:        cfg.Base,
		ring:        ring,
		health:      NewHealth(ring.Replicas(), cfg.BreakerThreshold, cfg.ProbeInterval, hc),
		repl:        repl,
		hedgeAfter:  hedge,
		hc:          hc,
		started:     time.Now(),
		spans:       obs.NewSpanRecorder(cfg.TraceCap),
		traceSample: cfg.TraceSample,
		slo: obs.NewSLOTracker([]obs.Objective{
			{Name: "route_latency", Threshold: target.Microseconds(), Goal: goal},
		}),
		routed: make(map[string]int64, len(cfg.Replicas)),
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/v1/jobs", g.handleJobs)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	g.mux.HandleFunc("/readyz", g.handleReady)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/metrics/cluster", g.handleClusterMetrics)
	g.mux.HandleFunc("/debug/spans", g.handleSpans)
	g.mux.HandleFunc("/debug/trace", g.handleTrace)
	g.mux.HandleFunc("/debug/slo", g.handleSLO)
	return g, nil
}

// Start launches the background health probes.
func (g *Gateway) Start() { g.health.Start() }

// Close stops the health probes.
func (g *Gateway) Close() { g.health.Close() }

// Ring exposes the routing ring (tests, tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// Health exposes the health tracker (tests, tooling).
func (g *Gateway) Health() *Health { return g.health }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	rows := g.health.Snapshot()
	g.mu.Lock()
	defer g.mu.Unlock()
	st := Stats{
		Requests:  g.requests,
		Shed:      g.shed,
		Failovers: g.failovers,
		Hedges:    g.hedges,
		HedgeWins: g.hedgeWins,
		Replicas:  make([]ReplicaStats, 0, len(rows)),
	}
	for _, row := range rows {
		st.Replicas = append(st.Replicas, ReplicaStats{ReplicaHealth: row, Routed: g.routed[row.URL]})
	}
	return st
}

func (g *Gateway) handleReady(w http.ResponseWriter, _ *http.Request) {
	if g.health.UpCount() == 0 {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no routable replicas")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.Stats())
}

// attemptResult is one proxied attempt's outcome.
type attemptResult struct {
	replica    string
	hedged     bool
	err        error // transport failure; status fields unset
	status     int
	retryAfter int
	// retryAfterRaw is the replica's Retry-After header verbatim. The
	// parsed integer only feeds the gateway's own max-of-owners shed hint;
	// relays forward the raw value so HTTP-date (or otherwise unparseable)
	// hints survive the proxy.
	retryAfterRaw string
	contentType   string
	body          []byte
}

// handleJobs routes one submission: consistent-hash owners, healthy-first,
// hedged when slow, failing over on shed/unavailable/transport errors, and
// shedding 429 + Retry-After itself when every owner is out.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request body: "+err.Error())
		return
	}
	var q serve.JobRequest
	if err := json.Unmarshal(body, &q); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// Resolve the job exactly as a replica would, so the routing key IS the
	// idempotency key: every duplicate of a job lands on the same owners.
	job, err := serve.BuildJob(g.base, &q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := exp.JobKey(job.Cfg, job.Kernel.Name)

	// Distributed tracing: continue an incoming context or mint one for a
	// sampled submission. The root span brackets the whole routing decision;
	// its context is echoed to the client so a curl away from the gateway is
	// enough to learn the trace ID to pull from /debug/trace.
	start := time.Now()
	tc, traced := g.traceContext(r)
	var root obs.Span
	recordRoot := func(outcome string) {
		if !traced {
			return
		}
		traced = false // record exactly once per request
		root.End()
		root.SetAttr("outcome", outcome)
		g.spans.Record(root)
	}
	if traced {
		root = obs.StartSpan(tc.Trace, tc.Span, "gateway.route", "arigate")
		root.SetAttr("bench", job.Kernel.Name)
		root.SetAttr("key", key)
		w.Header().Set(obs.TraceHeader, obs.TraceContext{Trace: root.Trace, Span: root.ID}.String())
		defer recordRoot("abandoned") // client gone before an answer
	}

	owners := g.ring.Owners(key, g.repl)
	cands := owners[:0]
	for _, o := range owners {
		if g.health.Up(o) {
			cands = append(cands, o)
		}
	}
	g.mu.Lock()
	g.requests++
	g.mu.Unlock()
	if len(cands) == 0 {
		recordRoot("shed")
		g.slo.Fail()
		g.shedOne(w, 0, "")
		return
	}

	// Proxy with hedging + failover. The per-request context cancels every
	// losing attempt the moment an answer is relayed.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	results := make(chan attemptResult, len(cands))
	next, pending := 0, 0
	launch := func(hedged bool) bool {
		if next >= len(cands) {
			return false
		}
		rep := cands[next]
		next++
		pending++
		g.mu.Lock()
		g.routed[rep]++
		g.mu.Unlock()
		// Each attempt gets its own child span and propagates it to the
		// replica, so the replica's spans parent under the attempt that
		// reached it — hedge legs share the trace ID but not span IDs.
		var att obs.Span
		var attCtx string
		if root.Trace != "" {
			att = obs.StartSpan(root.Trace, root.ID, "gateway.attempt", "arigate")
			att.SetAttr("replica", rep)
			if hedged {
				att.SetAttr("hedged", "true")
			}
			attCtx = obs.TraceContext{Trace: att.Trace, Span: att.ID}.String()
		}
		go func() {
			t0 := time.Now()
			res := g.forward(ctx, rep, body, hedged, attCtx)
			g.attemptHist.ObserveDuration(time.Since(t0))
			if att.Trace != "" {
				// The span closes here even when this leg lost the race and
				// was cancelled: a hedge's loser leaves a span marked
				// cancelled, never a dangling one.
				att.End()
				if res.err != nil {
					att.SetAttr("error", res.err.Error())
					if ctx.Err() != nil {
						att.SetAttr("cancelled", "true")
					}
				} else {
					att.SetAttr("status", strconv.Itoa(res.status))
				}
				g.spans.Record(att)
			}
			results <- res
		}()
		return true
	}
	launch(false)

	var hedgeC <-chan time.Time
	if g.hedgeAfter > 0 && len(cands) > 1 {
		t := time.NewTimer(g.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	maxRetryAfter := 0
	rawRetryAfter := ""
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err != nil {
				if ctx.Err() != nil {
					return // client gone; nothing to answer
				}
				// Transport failure: the restart/death signature. Feed the
				// breaker and re-route to the next owner.
				g.health.ReportFailure(res.replica)
				if launch(false) {
					g.mu.Lock()
					g.failovers++
					g.mu.Unlock()
				}
				continue
			}
			g.health.ReportSuccess(res.replica)
			switch {
			case res.status >= 200 && res.status < 300:
				if res.hedged {
					g.mu.Lock()
					g.hedgeWins++
					g.mu.Unlock()
				}
				g.routeHist.ObserveDuration(time.Since(start))
				g.slo.Observe(time.Since(start).Microseconds())
				recordRoot("ok")
				relay(w, res)
				return
			case res.status == http.StatusTooManyRequests ||
				res.status == http.StatusServiceUnavailable ||
				res.status == http.StatusBadGateway ||
				res.status == http.StatusGatewayTimeout:
				// The owner is alive but shedding or draining: degrade
				// sideways to the next owner before degrading to a shed.
				// Keep every hint the owners offered: the max parsed delay,
				// and failing any parseable one, the last raw header — an
				// HTTP-date hint must reach the client, not vanish here.
				if res.retryAfter > maxRetryAfter {
					maxRetryAfter = res.retryAfter
				}
				if res.retryAfter == 0 && res.retryAfterRaw != "" {
					rawRetryAfter = res.retryAfterRaw
				}
				if launch(false) {
					g.mu.Lock()
					g.failovers++
					g.mu.Unlock()
				}
			default:
				// Deterministic rejection (malformed job, simulation
				// failure): identical on every replica, so relay verbatim —
				// failing over would only duplicate the failure.
				if res.status >= 500 {
					g.slo.Fail()
				}
				recordRoot("rejected " + strconv.Itoa(res.status))
				relay(w, res)
				return
			}
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				g.mu.Lock()
				g.hedges++
				g.mu.Unlock()
			}
		case <-ctx.Done():
			return // client gone
		}
	}
	// Every owner of this key is down or shedding: shed with the most
	// pessimistic Retry-After any owner offered.
	recordRoot("shed")
	g.slo.Fail()
	g.shedOne(w, maxRetryAfter, rawRetryAfter)
}

// forward performs one proxied POST /v1/jobs round trip to replica.
// traceCtx, when non-empty, is the attempt's X-Ari-Trace value — the replica
// parents its spans under this attempt.
func (g *Gateway) forward(ctx context.Context, replica string, body []byte, hedged bool, traceCtx string) attemptResult {
	out := attemptResult{replica: replica, hedged: hedged}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	if traceCtx != "" {
		req.Header.Set(obs.TraceHeader, traceCtx)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		out.err = err
		return out
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		out.err = err
		return out
	}
	out.status = resp.StatusCode
	out.contentType = resp.Header.Get("Content-Type")
	out.body = raw
	out.retryAfterRaw = resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(out.retryAfterRaw); err == nil && secs > 0 {
		out.retryAfter = secs
	}
	return out
}

// shedOne answers one unroutable submission with 429 + Retry-After: the max
// parsed delay the owners offered, or failing that their raw (HTTP-date)
// hint verbatim, or the 1s floor.
func (g *Gateway) shedOne(w http.ResponseWriter, retryAfter int, raw string) {
	g.mu.Lock()
	g.shed++
	g.mu.Unlock()
	switch {
	case retryAfter >= 1:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	case raw != "":
		w.Header().Set("Retry-After", raw)
	default:
		w.Header().Set("Retry-After", "1")
	}
	writeError(w, http.StatusTooManyRequests, "all owners of this job are down or shedding")
}

// relay copies one replica answer to the client verbatim. Retry-After is
// forwarded as the replica sent it — re-serialising the parsed integer would
// drop HTTP-date hints.
func relay(w http.ResponseWriter, res attemptResult) {
	ct := res.contentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	if res.retryAfterRaw != "" {
		w.Header().Set("Retry-After", res.retryAfterRaw)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
