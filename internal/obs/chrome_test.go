package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/noc"
)

// chromeSchema mirrors testdata/chrome_trace_schema.json: the subset of the
// trace_event format contract the exporter must satisfy for chrome://tracing
// and Perfetto to load its output.
type chromeSchema struct {
	TopLevelRequired        []string            `json:"top_level_required"`
	AllowedDisplayTimeUnits []string            `json:"allowed_display_time_units"`
	EventRequired           []string            `json:"event_required"`
	AllowedPhases           []string            `json:"allowed_phases"`
	PhaseRequired           map[string][]string `json:"phase_required"`
	NumericFields           []string            `json:"numeric_fields"`
}

func loadChromeSchema(t *testing.T) chromeSchema {
	t.Helper()
	raw, err := os.ReadFile("testdata/chrome_trace_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var s chromeSchema
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("schema fixture unparsable: %v", err)
	}
	return s
}

func TestWriteChromeTraceMatchesSchema(t *testing.T) {
	schema := loadChromeSchema(t)

	req := NewCollector("req")
	feedLifecycle(req, 1, noc.ReadRequest, 0, 2, []HopEvent{
		{Node: 0, Stage: noc.TraceVAGrant, Cycle: 3},
		{Node: 0, Stage: noc.TraceSwitch, Cycle: 4},
	}, 10)
	rep := NewCollector("rep")
	feedLifecycle(rep, 2, noc.ReadReply, 5, 5, nil, 14) // zero-length queue phase
	feedLifecycle(rep, 3, noc.WriteReply, 7, 9, []HopEvent{
		{Node: 2, Stage: noc.TraceSwitch, Cycle: 11},
	}, 15)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, req, rep); err != nil {
		t.Fatal(err)
	}

	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not a JSON object: %v", err)
	}
	for _, k := range schema.TopLevelRequired {
		if _, ok := doc[k]; !ok {
			t.Errorf("top-level key %q missing", k)
		}
	}
	var unit string
	if err := json.Unmarshal(doc["displayTimeUnit"], &unit); err != nil {
		t.Fatalf("displayTimeUnit: %v", err)
	}
	if !contains(schema.AllowedDisplayTimeUnits, unit) {
		t.Errorf("displayTimeUnit = %q, allowed %v", unit, schema.AllowedDisplayTimeUnits)
	}

	var events []map[string]json.RawMessage
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatalf("traceEvents: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	phases := map[string]int{}
	for i, ev := range events {
		for _, k := range schema.EventRequired {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, k, ev)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event %d ph: %v", i, err)
		}
		if !contains(schema.AllowedPhases, ph) {
			t.Fatalf("event %d has phase %q, allowed %v", i, ph, schema.AllowedPhases)
		}
		phases[ph]++
		for _, k := range schema.PhaseRequired[ph] {
			if _, ok := ev[k]; !ok {
				t.Fatalf("%q event %d missing %q", ph, i, k)
			}
		}
		for _, k := range schema.NumericFields {
			raw, ok := ev[k]
			if !ok {
				continue
			}
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				t.Fatalf("event %d field %q not numeric: %s", i, k, raw)
			}
			if k == "dur" && v < 0 {
				t.Fatalf("event %d has negative duration %v", i, v)
			}
		}
	}
	// One process-name metadata row per collector; per packet four "X"
	// slices (full + three sub-phases) and one instant per hop.
	if phases["M"] != 2 {
		t.Errorf("M events = %d, want 2 (one per collector)", phases["M"])
	}
	if want := 3 * 4; phases["X"] != want {
		t.Errorf("X events = %d, want %d", phases["X"], want)
	}
	if want := 2 + 1; phases["i"] != want {
		t.Errorf("i events = %d, want %d", phases["i"], want)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
