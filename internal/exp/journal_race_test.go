package exp

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestJournalGetWhileAppend exercises the read-while-append contract the
// cluster's peer result-fetch depends on: while one goroutine is completing
// jobs locally (record), concurrent readers (Get) must observe, for every
// key, either no entry at all or the complete record — never a torn or
// partially published one. Run under -race this also proves the index
// publication is properly synchronised.
func TestJournalGetWhileAppend(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "race.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	const keys = 64
	const readers = 8
	want := make([]core.Result, keys)
	for i := range want {
		// Distinctive multi-field payloads: a torn record would decouple
		// the fields from each other.
		want[i] = fakeResult(fmt.Sprintf("bench-%03d", i), float64(i)+0.125)
	}
	keyOf := func(i int) string { return fmt.Sprintf("key-%03d", i) }

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			seen := make([]bool, keys)
			for done := 0; done < keys; {
				for i := 0; i < keys; i++ {
					res, ok := j.Get(keyOf(i))
					if !ok {
						continue // absent: the record has not been published yet
					}
					if res.Benchmark != want[i].Benchmark || res.IPC != want[i].IPC ||
						res.Instructions != want[i].Instructions {
						errs <- fmt.Errorf("key %d: torn read: got %+v want %+v", i, res, want[i])
						return
					}
					if !seen[i] {
						seen[i] = true
						done++
					}
				}
			}
		}()
	}

	close(start)
	for i := 0; i < keys; i++ {
		if err := j.record(keyOf(i), want[i]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if j.Len() != keys {
		t.Fatalf("journal holds %d entries, want %d", j.Len(), keys)
	}
}

// TestRunnerLookupKeyAndAdopt covers the peer-serving seam: LookupKey finds
// results by their JobKey via cache and journal, and Adopt stores a
// peer-computed result durably without counting a run.
func TestRunnerLookupKeyAndAdopt(t *testing.T) {
	dir := t.TempDir()
	jA, err := OpenJournal(filepath.Join(dir, "a.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jA.Close()

	cfg := core.DefaultConfig()
	res := fakeResult("bfs", 1.5)
	key := JobKey(cfg, "bfs")

	// Replica A: the job lands in its journal (simulating a finished run).
	if err := jA.record(key, res); err != nil {
		t.Fatal(err)
	}
	rA := &Runner{Base: cfg, Journal: jA}
	if got, ok := rA.LookupKey(key); !ok || got.IPC != res.IPC {
		t.Fatalf("LookupKey via journal = %+v, %v", got, ok)
	}
	if _, ok := rA.LookupKey("no-such-key"); ok {
		t.Fatal("LookupKey invented a result")
	}

	// Replica B adopts A's result: served locally afterwards, journalled
	// durably, and never counted as a run.
	jB, err := OpenJournal(filepath.Join(dir, "b.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	rB := &Runner{Base: cfg, Journal: jB}
	if err := rB.Adopt(cfg, "bfs", res); err != nil {
		t.Fatal(err)
	}
	if rB.Runs() != 0 {
		t.Fatalf("Adopt counted %d runs, want 0", rB.Runs())
	}
	if got, ok := rB.Lookup(cfg, "bfs"); !ok || got.IPC != res.IPC {
		t.Fatalf("Lookup after Adopt = %+v, %v", got, ok)
	}
	if err := jB.Close(); err != nil {
		t.Fatal(err)
	}

	// The adopted result survives a restart through B's own journal.
	jB2, err := OpenJournal(filepath.Join(dir, "b.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jB2.Close()
	if got, ok := jB2.Get(key); !ok || got.IPC != res.IPC {
		t.Fatalf("adopted result lost across restart: %+v, %v", got, ok)
	}
}
