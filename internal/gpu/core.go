// Package gpu implements the compute-node side of the simulated GPGPU: a
// SIMT core with a fixed pool of warps, greedy-then-oldest warp scheduling
// (Table I), an L1 data cache with MSHR-based miss merging, and a
// store-queue for write-through stores. Cores hide memory latency by warp
// swapping, which is exactly the property that makes IPC sensitive to NoC
// reply latency and throughput (paper §1).
package gpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/mem"
)

// Workload is the instruction-stream generator driving a core's warps: the
// synthetic stand-in for the paper's CUDA benchmarks (internal/trace
// implements it).
type Workload interface {
	// NextCompute returns the number of compute instructions warp w of core
	// c executes before its next memory instruction.
	NextCompute(core, warp int) int
	// NextMem returns the next memory instruction of warp w of core c: its
	// kind and the coalesced line addresses it touches (1..N transactions).
	// The returned slice may reuse scratch.
	NextMem(core, warp int, scratch []uint64) (write bool, addrs []uint64)
}

// Config describes one SIMT core (Table I: 16KB L1 per core, 8 CTAs/core,
// warp size 32, SIMD width 8, greedy-then-oldest scheduling).
type Config struct {
	WarpsPerCore int
	L1           cache.Config
	MSHREntries  int
	MSHRWaiters  int
	// LSUWidth is the number of memory transactions the load-store unit
	// processes per core cycle.
	LSUWidth int
	// StoreQueueCap bounds outstanding (unacknowledged) stores.
	StoreQueueCap int
	// LSUQueueCap bounds transactions waiting in the LSU.
	LSUQueueCap int
	// ScanTick forces the full per-cycle scheduler scan even on cycles with
	// no ready warp and an empty LSU queue. The default (false) short-cuts
	// such cycles to the exact observable effect of the scan — one core
	// cycle, one issue stall — which is the event-driven fast path of the
	// system loop. Both settings are bit-identical; ScanTick exists for the
	// equivalence tests.
	ScanTick bool
}

// DefaultConfig returns the Table I core parameters.
func DefaultConfig() Config {
	return Config{
		WarpsPerCore:  48, // 8 CTAs x 6 warps
		L1:            cache.Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4},
		MSHREntries:   32,
		MSHRWaiters:   8,
		LSUWidth:      1,
		StoreQueueCap: 16,
		LSUQueueCap:   8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.WarpsPerCore <= 0 || c.MSHREntries <= 0 || c.MSHRWaiters <= 0 ||
		c.LSUWidth <= 0 || c.StoreQueueCap <= 0 || c.LSUQueueCap <= 0 {
		return fmt.Errorf("gpu: non-positive core parameter %+v", c)
	}
	return c.L1.Validate()
}

type warpState uint8

const (
	warpReady   warpState = iota
	warpWaiting           // blocked on outstanding loads
)

type warp struct {
	state        warpState
	computeLeft  int
	pendingLoads int
	initialised  bool
}

// lsuOp is one transaction queued at the load-store unit.
type lsuOp struct {
	addr  uint64
	write bool
	warp  int
}

// Core is one compute node.
type Core struct {
	Index int
	Node  int // mesh node id
	cfg   Config

	warps   []warp
	current int // greedy warp
	// readyWarps counts warps in warpReady state: the O(1) activity
	// predicate for the Tick fast path.
	readyWarps int
	l1         *cache.Cache
	mshr       *cache.MSHR
	lsuQ       []lsuOp

	workload Workload
	// send hands a transaction to the request-network NI; false means the
	// NI is full and the LSU must retry.
	send func(txn *mem.Transaction) bool

	outstandingStores int
	addrScratch       []uint64
	nextTxnID         uint64
	// txnFree recycles Transaction structs: every transaction this core
	// creates comes back exactly once through ReceiveReply (writes ack,
	// reads fill), which returns it here — the request/reply hot path then
	// allocates nothing. Per-core, so sharded simulation needs no locking.
	txnFree []*mem.Transaction

	// Stats (reset at end of warmup).
	Instructions  uint64
	MemInstrs     uint64
	LoadTxns      uint64
	StoreTxns     uint64
	IssueStalls   uint64 // cycles with no ready warp
	LSUSendStalls uint64 // LSU blocked by NI rejection
	MSHRStalls    uint64
	StoreQStalls  uint64
	CoreCycles    uint64
}

// NewCore builds a core. send is the request-injection hook installed by
// the system glue.
func NewCore(index, node int, cfg Config, w Workload, send func(txn *mem.Transaction) bool) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil || send == nil {
		return nil, fmt.Errorf("gpu: core needs a workload and a send hook")
	}
	return &Core{
		Index:      index,
		Node:       node,
		cfg:        cfg,
		warps:      make([]warp, cfg.WarpsPerCore),
		readyWarps: cfg.WarpsPerCore,
		l1:         cache.New(cfg.L1),
		mshr:       cache.NewMSHR(cfg.MSHREntries, cfg.MSHRWaiters),
		workload:   w,
		send:       send,
	}, nil
}

// L1 exposes the L1 cache for stats.
func (c *Core) L1() *cache.Cache { return c.l1 }

// ResetStats clears measurement counters (end of warmup).
func (c *Core) ResetStats() {
	c.Instructions = 0
	c.MemInstrs = 0
	c.LoadTxns = 0
	c.StoreTxns = 0
	c.IssueStalls = 0
	c.LSUSendStalls = 0
	c.MSHRStalls = 0
	c.StoreQStalls = 0
	c.CoreCycles = 0
}

// IPC returns measured warp-instructions per core cycle.
func (c *Core) IPC() float64 {
	if c.CoreCycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.CoreCycles)
}

// Tick advances the core by one core-clock cycle.
func (c *Core) Tick() {
	c.CoreCycles++
	if !c.cfg.ScanTick && c.readyWarps == 0 && len(c.lsuQ) == 0 {
		// Fast path: with no ready warp, every tryIssue returns false before
		// any side effect (in particular, before any workload RNG draw), and
		// with an empty LSU queue stepLSU is a no-op. The scan's only
		// observable effect is the issue stall recorded here.
		c.IssueStalls++
		return
	}
	c.stepLSU()
	c.issue()
}

// issue performs greedy-then-oldest scheduling: keep issuing from the
// current warp until it cannot issue, then fall back to the oldest (lowest
// index) ready warp.
func (c *Core) issue() {
	if c.tryIssue(c.current) {
		return
	}
	for w := range c.warps {
		if w == c.current {
			continue
		}
		if c.tryIssue(w) {
			c.current = w
			return
		}
	}
	c.IssueStalls++
}

// tryIssue attempts to issue one instruction from warp w.
func (c *Core) tryIssue(w int) bool {
	wp := &c.warps[w]
	if wp.state != warpReady {
		return false
	}
	if !wp.initialised {
		wp.computeLeft = c.workload.NextCompute(c.Index, w)
		wp.initialised = true
	}
	if wp.computeLeft > 0 {
		wp.computeLeft--
		c.Instructions++
		return true
	}
	// Memory instruction: all of its transactions must fit in the LSU
	// queue; stores additionally need store-queue space.
	write, addrs := c.workload.NextMem(c.Index, w, c.addrScratch[:0])
	c.addrScratch = addrs
	if len(addrs) == 0 {
		// Degenerate workload: treat as compute.
		c.Instructions++
		wp.computeLeft = c.workload.NextCompute(c.Index, w)
		return true
	}
	if len(c.lsuQ)+len(addrs) > c.cfg.LSUQueueCap {
		return false
	}
	if write && c.outstandingStores+len(addrs) > c.cfg.StoreQueueCap {
		c.StoreQStalls++
		return false
	}
	for _, a := range addrs {
		c.lsuQ = append(c.lsuQ, lsuOp{addr: a, write: write, warp: w})
	}
	c.Instructions++
	c.MemInstrs++
	if write {
		c.outstandingStores += len(addrs)
		c.StoreTxns += uint64(len(addrs))
	} else {
		wp.pendingLoads += len(addrs)
		wp.state = warpWaiting
		c.readyWarps--
		c.LoadTxns += uint64(len(addrs))
	}
	wp.computeLeft = c.workload.NextCompute(c.Index, w)
	return true
}

// stepLSU processes up to LSUWidth queued transactions in order, stopping
// at the first one that cannot make progress (in-order LSU). Pops copy the
// queue down in place so its backing array is reused forever; re-slicing
// from the front would creep across the array and force reallocations.
func (c *Core) stepLSU() {
	for n := 0; n < c.cfg.LSUWidth && len(c.lsuQ) > 0; n++ {
		op := c.lsuQ[0]
		if op.write {
			if !c.doStore(op) {
				return
			}
		} else {
			if !c.doLoad(op) {
				return
			}
		}
		copy(c.lsuQ, c.lsuQ[1:])
		c.lsuQ = c.lsuQ[:len(c.lsuQ)-1]
	}
}

// doStore sends a write-through store to the owning MC. The L1 is touched
// but the line stays clean (data also travels to the MC), so L1 evictions
// never generate writeback traffic — matching the four-packet-type traffic
// mix of the paper's Fig 5.
func (c *Core) doStore(op lsuOp) bool {
	c.nextTxnID++
	txn := c.newTxn()
	*txn = mem.Transaction{
		ID:      uint64(c.Index)<<40 | c.nextTxnID,
		IsWrite: true,
		Addr:    op.addr,
		Core:    c.Index,
		SrcNode: c.Node,
	}
	if !c.send(txn) {
		c.nextTxnID--
		c.LSUSendStalls++
		c.txnFree = append(c.txnFree, txn)
		return false
	}
	c.l1.AccessNoAllocate(op.addr, false)
	return true
}

// newTxn returns a recycled (or fresh) Transaction struct; the caller
// overwrites every field.
func (c *Core) newTxn() *mem.Transaction {
	if n := len(c.txnFree); n > 0 {
		t := c.txnFree[n-1]
		c.txnFree = c.txnFree[:n-1]
		return t
	}
	return new(mem.Transaction)
}

// doLoad services a load transaction: L1 hit completes immediately, a miss
// merges into the MSHR or allocates an entry and sends a read request.
func (c *Core) doLoad(op lsuOp) bool {
	line := op.addr
	if c.mshr.Pending(line) {
		switch c.mshr.Lookup(line, op.warp) {
		case cache.Merged:
			return true
		default:
			c.MSHRStalls++
			return false
		}
	}
	if c.l1.Probe(line) {
		c.l1.Access(line, false)
		c.loadDone(op.warp)
		return true
	}
	if c.mshr.Full() {
		c.MSHRStalls++
		return false
	}
	c.nextTxnID++
	txn := c.newTxn()
	*txn = mem.Transaction{
		ID:      uint64(c.Index)<<40 | c.nextTxnID,
		IsWrite: false,
		Addr:    line,
		Core:    c.Index,
		SrcNode: c.Node,
	}
	if !c.send(txn) {
		c.nextTxnID--
		c.LSUSendStalls++
		c.txnFree = append(c.txnFree, txn)
		return false
	}
	c.mshr.Lookup(line, op.warp)
	return true
}

// ReceiveReply handles a reply packet delivered to this core's node. The
// transaction is recycled here: this is the unique end of its lifetime (no
// other component retains it once the reply ejects).
func (c *Core) ReceiveReply(txn *mem.Transaction) {
	if txn.IsWrite {
		if c.outstandingStores > 0 {
			c.outstandingStores--
		}
		c.txnFree = append(c.txnFree, txn)
		return
	}
	// Fill the L1 (loads allocate; fills are clean lines).
	c.l1.Access(txn.Addr, false)
	ws := c.mshr.Fill(txn.Addr)
	for _, w := range ws {
		c.loadDone(w)
	}
	c.mshr.Recycle(ws)
	c.txnFree = append(c.txnFree, txn)
}

// loadDone retires one outstanding load of warp w.
func (c *Core) loadDone(w int) {
	wp := &c.warps[w]
	if wp.pendingLoads > 0 {
		wp.pendingLoads--
	}
	if wp.pendingLoads == 0 && wp.state == warpWaiting {
		wp.state = warpReady
		c.readyWarps++
	}
}

// OutstandingWork reports in-flight memory activity (drain detection).
func (c *Core) OutstandingWork() int {
	return len(c.lsuQ) + c.mshr.Occupied() + c.outstandingStores
}
