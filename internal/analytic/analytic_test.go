package analytic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestNewModelRejectsUnmodelled(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"da2mesh", func(c *core.Config) { c.Scheme = core.DA2MeshBase }},
		{"da2mesh+ari", func(c *core.Config) { c.Scheme = core.DA2MeshARI }},
		{"ideal reply", func(c *core.Config) { c.IdealReply = true }},
		{"invalid mesh", func(c *core.Config) { c.MeshWidth = 0 }},
		{"invalid mc", func(c *core.Config) { c.NumMC = 0 }},
	} {
		cfg := core.DefaultConfig()
		tc.mutate(&cfg)
		if _, err := NewModel(cfg); err == nil {
			t.Errorf("%s: NewModel accepted an unmodellable config", tc.name)
		}
	}
}

// TestSchemeSeam locks the injection-architecture parameters each scheme
// maps to — the seam the whole per-scheme differentiation rides on.
func TestSchemeSeam(t *testing.T) {
	build := func(s core.Scheme) *Model {
		cfg := core.DefaultConfig()
		cfg.Scheme = s
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatalf("NewModel(%s): %v", s, err)
		}
		return m
	}

	base := build(core.XYBaseline)
	if base.supplyRate != 1 || base.consumeRate != 1 || base.multiPorts != 1 || base.priority {
		t.Errorf("baseline: supply=%v consume=%v ports=%v priority=%v, want 1/1/1/false",
			base.supplyRate, base.consumeRate, base.multiPorts, base.priority)
	}

	ari := build(core.AdaARI)
	if ari.supplyRate != 4 || ari.consumeRate != 4 || !ari.priority {
		t.Errorf("ARI: supply=%v consume=%v priority=%v, want 4/4/true",
			ari.supplyRate, ari.consumeRate, ari.priority)
	}

	mp := build(core.AdaMultiPort)
	if mp.supplyRate != 1 || mp.multiPorts != 2 {
		t.Errorf("MultiPort: supply=%v ports=%v, want 1/2", mp.supplyRate, mp.multiPorts)
	}

	if ari.ReplySaturationRate() <= base.ReplySaturationRate() {
		t.Errorf("ARI saturation %v not above baseline %v",
			ari.ReplySaturationRate(), base.ReplySaturationRate())
	}
}

func TestMG1WaitBounded(t *testing.T) {
	if w := mg1Wait(0, 9, 81, 36); w != 0 {
		t.Errorf("zero arrivals wait %v, want 0", w)
	}
	// Past saturation (rho >= rhoMax) the wait must pin at the buffer bound
	// instead of diverging.
	if w := mg1Wait(10, 9, 81, 36); w != 36 {
		t.Errorf("overloaded wait %v, want the 36-flit bound", w)
	}
	// Below saturation the wait is the M/G/1 formula, still capped.
	w := mg1Wait(0.05, 9, 81, 36)
	if w <= 0 || w > 36 {
		t.Errorf("moderate-load wait %v out of (0, 36]", w)
	}
}

// TestEstimateFiniteAcrossSuite runs the closed-loop estimator over every
// (benchmark, modelled scheme) point: all outputs must be finite,
// non-negative, and physically plausible. This is the guard the old damped
// fixed point failed — it could leave a mid-oscillation overload penalty
// (millions of cycles) in the answer.
func TestEstimateFiniteAcrossSuite(t *testing.T) {
	for _, s := range ValidationSchemes() {
		cfg := ValidationConfig()
		cfg.Scheme = s
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range trace.Suite() {
			est := m.Estimate(k)
			for name, v := range map[string]float64{
				"IPC": est.IPC, "ReqLatency": est.ReqLatency, "RepLatency": est.RepLatency,
				"RoundTrip": est.RoundTrip, "MCService": est.MCService,
				"RepInjRate": est.RepInjRate, "SaturationRate": est.SaturationRate,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Errorf("%s/%s: %s = %v", k.Name, s, name, v)
				}
			}
			if maxIPC := float64(m.nCores); est.IPC > maxIPC+1e-9 {
				t.Errorf("%s/%s: IPC %v exceeds the %v issue-slot bound", k.Name, s, est.IPC, maxIPC)
			}
			// A round trip can never beat the zero-load network plus MC floor.
			if est.RoundTrip < est.MCService {
				t.Errorf("%s/%s: round trip %v below MC service %v", k.Name, s, est.RoundTrip, est.MCService)
			}
		}
	}
}

// TestEstimateSuiteOrder locks that EstimateSuite answers in suite order
// with the right labels — the serving layer indexes into it positionally.
func TestEstimateSuiteOrder(t *testing.T) {
	cfg := ValidationConfig()
	ests, err := EstimateSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	suite := trace.Suite()
	if len(ests) != len(suite) {
		t.Fatalf("got %d estimates for %d kernels", len(ests), len(suite))
	}
	for i, k := range suite {
		if ests[i].Bench != k.Name {
			t.Errorf("estimate %d is %q, want %q", i, ests[i].Bench, k.Name)
		}
		if ests[i].Scheme != cfg.Scheme.String() {
			t.Errorf("estimate %d scheme %q, want %q", i, ests[i].Scheme, cfg.Scheme)
		}
	}
}
