package exp

import (
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/stats"
)

// AnalyticComparison runs the analytical estimator (internal/analytic)
// against the cycle-accurate simulator over the benchmark suite and the
// validation schemes, one row per (benchmark, scheme) point — the
// estimator-vs-simulator figure behind `arireport -analytic`, and the
// human-readable face of the validate-analytic drift oracle.
func AnalyticComparison(r *Runner) (*Figure, error) {
	schemes := analytic.ValidationSchemes()
	bands, err := analytic.Compare(r.Base, r.Benchmarks, schemes, r.Run)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("benchmark", "scheme",
		"sim rep lat", "est rep lat", "rep err",
		"sim IPC", "est IPC", "IPC err")
	var sumRep, sumIPC, maxRep, maxIPC float64
	for _, b := range bands {
		t.AddRow(b.Bench, b.Scheme,
			fmt.Sprintf("%.1f", b.SimRepLatency), fmt.Sprintf("%.1f", b.EstRepLatency), pct(b.RepErr),
			fmt.Sprintf("%.3f", b.SimIPC), fmt.Sprintf("%.3f", b.EstIPC), pct(b.IPCErr))
		sumRep += math.Abs(b.RepErr)
		sumIPC += math.Abs(b.IPCErr)
		maxRep = math.Max(maxRep, math.Abs(b.RepErr))
		maxIPC = math.Max(maxIPC, math.Abs(b.IPCErr))
	}
	n := float64(len(bands))
	return &Figure{
		ID:    "analytic",
		Title: "Extension: analytical estimator vs cycle-accurate simulator",
		Paper: "(beyond the paper) M/G/1-style model in the style of Mandal et al.; errors are recorded as the drift-oracle bands",
		Table: t,
		Summary: map[string]float64{
			"mean_abs_rep_latency_err": safeDiv(sumRep, n),
			"max_abs_rep_latency_err":  maxRep,
			"mean_abs_ipc_err":         safeDiv(sumIPC, n),
			"max_abs_ipc_err":          maxIPC,
		},
		Notes: []string{
			"the model answers in microseconds per point; the drift oracle (make validate-analytic) fails when these errors move outside internal/analytic/testdata/error_bands.json",
		},
	}, nil
}
