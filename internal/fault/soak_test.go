package fault

import (
	"reflect"
	"testing"

	"repro/internal/noc"
)

// soakFingerprint is everything a soak run observes; two runs with the same
// seed must produce identical fingerprints.
type soakFingerprint struct {
	InjectedFlits uint64
	EjectedFlits  uint64
	Stats         noc.NetStats
	Events        []Event
}

// runSoak drives seeded random traffic through a faulted network, then
// drains it and verifies zero flit loss and clean invariants. shards > 1
// steps the mesh on that many workers (the deterministic sharded path);
// 0 or 1 is serial.
func runSoak(t *testing.T, name string, mutate func(*noc.Config), seed uint64, shards int) soakFingerprint {
	t.Helper()
	cfg := noc.Config{
		Mesh:        noc.Mesh{Width: 4, Height: 4},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     noc.RouteXY,
		NonAtomicVC: true,
		CheckEvery:  64, // panic on any invariant violation mid-soak
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cfg, err := cfg.Validate()
	if err != nil {
		t.Fatalf("%s: Validate: %v", name, err)
	}
	n, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatalf("%s: NewNetwork: %v", name, err)
	}
	defer n.Close()
	if shards > 1 {
		if _, err := n.SetShards(shards, nil); err != nil {
			t.Fatalf("%s: SetShards(%d): %v", name, shards, err)
		}
	}
	inj, err := NewInjector(SoakConfig(seed), n, 1)
	if err != nil {
		t.Fatalf("%s: NewInjector: %v", name, err)
	}

	var ejected uint64
	n.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) {
		ejected += uint64(pkt.Size)
	})

	// Deterministic traffic stream, independent of the fault stream.
	lcg := seed ^ 0xdeadbeef
	next := func(mod int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int(lcg>>33) % mod
	}
	types := []noc.PacketType{noc.ReadRequest, noc.WriteRequest, noc.ReadReply, noc.WriteReply}
	var injected uint64
	for cycle := 0; cycle < 3000; cycle++ {
		for s := 0; s < cfg.Mesh.Nodes(); s++ {
			if next(10) < 4 {
				d := next(cfg.Mesh.Nodes())
				if d == s {
					continue
				}
				typ := types[next(4)]
				pkt := &noc.Packet{Type: typ, Dst: d, Size: noc.PacketSize(typ, cfg.LinkBits, cfg.DataBytes)}
				if n.Inject(s, pkt) {
					injected += uint64(pkt.Size)
				}
			}
		}
		inj.Step(n.Now())
		n.Step()
	}
	if len(inj.Events()) == 0 {
		t.Fatalf("%s: soak injected no faults; probabilities too low to exercise anything", name)
	}

	// Drain: no new traffic or faults; already-applied faults expire on
	// their own, after which every buffered flit must reach its ejector.
	for i := 0; i < 200000 && !n.Idle(); i++ {
		n.Step()
	}
	if !n.Idle() {
		t.Fatalf("%s: network did not drain after faults expired (inFlight=%d)\n%s",
			name, n.InFlight(), n.DumpState())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants dirty after drain: %v", name, err)
	}
	if ejected != injected {
		t.Fatalf("%s: flit loss under faults: injected %d, ejected %d", name, injected, ejected)
	}
	return soakFingerprint{
		InjectedFlits: injected,
		EjectedFlits:  ejected,
		Stats:         *n.Stats(),
		Events:        inj.Events(),
	}
}

// soakSchemes are the ≥3 injection architectures the soak matrix covers:
// the XY baseline, an ARI-style configuration (adaptive routing, split NIs
// with crossbar speedup and prioritisation), and the MultiPort scheme.
func soakSchemes() map[string]func(*noc.Config) {
	return map[string]func(*noc.Config){
		"xy-baseline": nil,
		"ada-ari": func(c *noc.Config) {
			c.Routing = noc.RouteMinAdaptive
			c.PriorityLevels = 2
			c.Nodes = make([]noc.NodeConfig, c.Mesh.Nodes())
			for i := 0; i < c.Mesh.Nodes(); i += 3 {
				c.Nodes[i] = noc.NodeConfig{NI: noc.NISplit, InjSpeedup: 4}
			}
		},
		"multiport": func(c *noc.Config) {
			c.Routing = noc.RouteMinAdaptive
			c.Nodes = make([]noc.NodeConfig, c.Mesh.Nodes())
			for i := 0; i < c.Mesh.Nodes(); i += 4 {
				c.Nodes[i] = noc.NodeConfig{NI: noc.NIMultiPort, InjPorts: 2}
			}
		},
	}
}

// TestSoakZeroFlitLoss is the fault-injection soak: every scheme absorbs a
// dense schedule of link stalls, port freezes and NI bursts with zero flit
// loss and invariants clean throughout (CheckEvery panics on violation).
func TestSoakZeroFlitLoss(t *testing.T) {
	seed := uint64(11)
	for name, mutate := range soakSchemes() {
		name, mutate := name, mutate
		t.Run(name, func(t *testing.T) {
			runSoak(t, name, mutate, seed, 0)
		})
		seed++
	}
}

// TestSoakDeterministicReplay pins seeded replayability: the same seed
// produces a byte-identical fault schedule and simulation outcome, and a
// different seed produces a different schedule.
func TestSoakDeterministicReplay(t *testing.T) {
	schemes := soakSchemes()
	a := runSoak(t, "ada-ari", schemes["ada-ari"], 42, 0)
	b := runSoak(t, "ada-ari", schemes["ada-ari"], 42, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	c := runSoak(t, "ada-ari", schemes["ada-ari"], 43, 0)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestSoakShardedMatchesSerial composes the fault soak with sharded
// stepping: the same seed must produce an identical fingerprint (stats,
// flit counts and fault schedule) whether the mesh steps serially or on 2
// or 4 workers — link stalls and port freezes landing on shard-boundary
// links included. Run under -race in CI, this doubles as the concurrency
// soak for the sharded path.
func TestSoakShardedMatchesSerial(t *testing.T) {
	schemes := soakSchemes()
	for name := range schemes {
		name, mutate := name, schemes[name]
		t.Run(name, func(t *testing.T) {
			serial := runSoak(t, name, mutate, 42, 0)
			for _, shards := range []int{2, 4} {
				got := runSoak(t, name, mutate, 42, shards)
				if !reflect.DeepEqual(serial, got) {
					t.Fatalf("%s shards=%d fingerprint diverged from serial:\n%+v\nvs\n%+v",
						name, shards, got, serial)
				}
			}
		})
	}
}

// TestInjectorValidation pins Config.Validate's rejection of bad inputs.
func TestInjectorValidation(t *testing.T) {
	bad := []Config{
		{Enabled: true, LinkStallProb: -0.1},
		{Enabled: true, NIStallProb: 1.5},
		{Enabled: true, MinDuration: 10, MaxDuration: 5},
		{Enabled: true, MinDuration: -1},
	}
	for i, cfg := range bad {
		if _, err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
