// Package obs is the observability layer of the simulator: a metrics
// registry snapshotting per-interval time series from the NoC and GPU
// layers, sampled packet-lifetime tracing with the paper's Fig. 2/3-style
// latency decomposition and a Chrome trace_event exporter, and live
// run-progress tracking for the job server.
//
// Everything here is observation only: attaching a registry or a tracer
// never changes a simulated decision, so an instrumented run's Result is
// bit-identical to an uninstrumented one (asserted by the equivalence
// tests). With observability disabled the hot-path cost is a single
// comparison per simulator step and a nil check per head-flit event.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// ProbeKind distinguishes how a probe's readings become samples.
type ProbeKind uint8

const (
	// Gauge records the probe's instantaneous value at each sample.
	Gauge ProbeKind = iota
	// Counter records the delta of a cumulative value since the previous
	// sample (per-interval rate, in events per interval). A drop in the raw
	// value — a mid-run stats reset at the warmup boundary — records the
	// post-reset value instead of a negative delta.
	Counter
)

// probe is one registered metric source.
type probe struct {
	name   string
	kind   ProbeKind
	read   func() float64
	last   float64
	primed bool
	series stats.Series
}

// Registry snapshots a set of named probes into per-interval time series.
// Register probes once at setup, then call Sample at a fixed cadence from
// the simulation loop. Sampling is allocation-free once Reserve has sized
// the series (asserted via testing.AllocsPerRun); registration order is the
// column order of WriteCSV.
//
// A Registry is not safe for concurrent use: it samples on the simulation
// goroutine and must be read only after the run finishes.
type Registry struct {
	interval int64
	times    []int64
	probes   []*probe
	byName   map[string]*probe
}

// NewRegistry returns a registry sampling every interval cycles (the cadence
// is enforced by the caller's sampling hook, not the registry itself).
func NewRegistry(interval int64) *Registry {
	return &Registry{interval: interval, byName: make(map[string]*probe)}
}

// Interval returns the configured sampling interval in cycles.
func (r *Registry) Interval() int64 { return r.interval }

// Gauge registers an instantaneous-value probe.
func (r *Registry) Gauge(name string, read func() float64) {
	r.register(name, Gauge, read)
}

// Counter registers a cumulative-value probe; samples record per-interval
// deltas.
func (r *Registry) Counter(name string, read func() float64) {
	r.register(name, Counter, read)
}

func (r *Registry) register(name string, kind ProbeKind, read func() float64) {
	if read == nil {
		panic("obs: nil probe reader")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: duplicate probe %q", name))
	}
	p := &probe{name: name, kind: kind, read: read}
	r.probes = append(r.probes, p)
	r.byName[name] = p
}

// Reserve pre-sizes every series for n total samples so steady-state
// sampling never allocates.
func (r *Registry) Reserve(n int) {
	if cap(r.times) < n {
		t := make([]int64, len(r.times), n)
		copy(t, r.times)
		r.times = t
	}
	for _, p := range r.probes {
		p.series.Reserve(n)
	}
}

// Sample reads every probe and appends one row of the time series at the
// given cycle.
func (r *Registry) Sample(cycle int64) {
	r.times = append(r.times, cycle)
	for _, p := range r.probes {
		v := p.read()
		switch p.kind {
		case Gauge:
			p.series.Append(cycle, v)
		case Counter:
			d := v - p.last
			if d < 0 || !p.primed {
				// First sample, or the cumulative source was reset mid-run
				// (warmup boundary): the interval's activity is the raw value.
				d = v
			}
			p.last = v
			p.primed = true
			p.series.Append(cycle, d)
		}
	}
}

// Samples returns the number of Sample calls recorded.
func (r *Registry) Samples() int { return len(r.times) }

// Names returns the registered probe names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.name
	}
	return out
}

// Series returns the recorded series for one probe.
func (r *Registry) Series(name string) (*stats.Series, bool) {
	p, ok := r.byName[name]
	if !ok {
		return nil, false
	}
	return &p.series, true
}

// Last returns the most recent sample of one probe (0 when absent or empty).
func (r *Registry) Last(name string) float64 {
	p, ok := r.byName[name]
	if !ok {
		return 0
	}
	_, v := p.series.Last()
	return v
}

// WriteCSV renders the full time series as CSV: a cycle column followed by
// one column per probe in registration order, one row per sample.
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "cycle"); err != nil {
		return err
	}
	for _, p := range r.probes {
		if _, err := io.WriteString(w, ","+p.name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i, t := range r.times {
		row := strconv.FormatInt(t, 10)
		for _, p := range r.probes {
			row += "," + strconv.FormatFloat(p.series.Value(i), 'g', -1, 64)
		}
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// SortedNames returns the probe names in lexical order (stable summaries).
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
