// Chaos kill/restart soak: the kill/restart discipline of soak_test.go run
// under layered NoC faults — service stalls, flit-corruption bursts recovered
// by NACK retransmission, and permanent link deaths detoured by the
// fault-adaptive routing table. Byte-identical recovery must hold even when
// every simulation is itself recovering from injected faults: the journal, the
// fault schedule and the recovery protocol are all deterministic under
// (Config, seed).
package serve_test

import (
	"context"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
)

func TestChaosKillRestartSoakByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	goroutinesAtStart := runtime.NumGoroutine()
	base := core.DefaultConfig()
	base.Scheme = core.AdaARI
	base.WarmupCycles = 100
	base.MeasureCycles = 400
	// Every stall kind layered with corruption bursts and permanent link
	// deaths; CorruptProb > 0 auto-enables the recovery layer
	// (RetransBufPkts defaults to 8 in the simulator build).
	base.Fault = fault.ChaosConfig(7)

	kernels := trace.Suite()[:14]

	// Reference: the uninterrupted run, straight on a Runner.
	var jobs []exp.Job
	for _, k := range kernels {
		jobs = append(jobs, exp.Job{Cfg: base, Kernel: k})
	}
	ref := &exp.Runner{Base: base}
	want, err := ref.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// The chaos schedule must actually exercise the recovery protocol
	// somewhere in the suite, or the soak proves nothing.
	var recovered, faults uint64
	for _, w := range want {
		recovered += w.Recovery.RetransPackets
		faults += uint64(w.FaultEvents)
	}
	if recovered == 0 || faults == 0 {
		t.Fatalf("chaos schedule inert: %d faults, %d recovered packets", faults, recovered)
	}

	journalPath := filepath.Join(t.TempDir(), "chaos.jsonl")
	ss := startSoakServer(t, base, journalPath, "127.0.0.1:0")

	cli := &client.Client{
		BaseURL:     "http://" + ss.addr,
		MaxRetries:  500,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(kernels))
	resps := make([]serve.JobResponse, len(kernels))
	for i, k := range kernels {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			resps[i], errs[i] = cli.Submit(ctx, serve.JobRequest{Bench: name})
		}(i, k.Name)
	}

	// Hard-kill mid-suite, then restart on the same address over the same
	// journal as a fresh process image.
	deadline := time.Now().Add(time.Minute)
	for ss.journal.Len() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if ss.journal.Len() < 5 {
		t.Fatal("server never reached 5 journalled runs")
	}
	ss.kill(t)

	ss2 := startSoakServer(t, base, journalPath, ss.addr)
	completedAtKill := ss2.journal.Loaded()
	if completedAtKill < 5 {
		t.Fatalf("journal lost completed jobs across the kill: loaded %d, want >= 5", completedAtKill)
	}

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %s failed across the restart: %v", kernels[i].Name, err)
		}
	}

	// Byte-identical to the uninterrupted run: fault schedules, recovery
	// counters and dead-link detours included.
	for i := range kernels {
		if got, ref := jobJSON(t, resps[i].Result), jobJSON(t, want[i]); got != ref {
			t.Fatalf("job %s diverged after restart under chaos:\n got %s\nwant %s", kernels[i].Name, got, ref)
		}
	}
	// Zero completed jobs re-executed.
	if got, wantRuns := ss2.runner.Runs(), len(kernels)-completedAtKill; got != wantRuns {
		t.Fatalf("restarted server ran %d simulations, want %d (%d - %d journalled)",
			got, wantRuns, len(kernels), completedAtKill)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := ss2.srv.Shutdown(sctx); err != nil {
		t.Fatalf("final drain: %v", err)
	}
	ss2.httpSrv.Close()
	if err := ss2.journal.Close(); err != nil {
		t.Fatal(err)
	}
	goroutineBaseline(t, goroutinesAtStart)
}
