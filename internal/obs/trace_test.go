package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/noc"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{Trace: NewTraceID(), Span: NewSpanID()}
	if !tc.Valid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	got, ok := ParseTraceContext(tc.String())
	if !ok || got != tc {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, tc)
	}
	if a, b := NewTraceID(), NewTraceID(); a == b {
		t.Fatalf("trace IDs collide: %s", a)
	}
}

func TestParseTraceContextRejectsGarbage(t *testing.T) {
	for _, h := range []string{
		"", "abc", strings.Repeat("z", 33),
		"0123456789abcdef:0123456789abcdef",       // wrong separator
		"0123456789ABCDEF-0123456789abcdef",       // upper hex
		"0123456789abcde-0123456789abcdef",        // short trace
		"0123456789abcdef-0123456789abcdeff",      // long span
		"0123456789abcdef-0123456789abcdeg",       // non-hex
	} {
		if _, ok := ParseTraceContext(h); ok {
			t.Errorf("ParseTraceContext(%q) accepted", h)
		}
	}
}

func TestSpanRecorderRingAndLatest(t *testing.T) {
	r := NewSpanRecorder(3)
	for i, tr := range []string{"a", "b", "c", "d"} {
		s := Span{Trace: strings.Repeat(tr, 16), ID: NewSpanID(), Name: "n"}
		if i%2 == 1 {
			s.Parent = NewSpanID()
		}
		r.Record(s)
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want cap 3", r.Len())
	}
	// "a" was evicted; latest root is "c" (the "d" span has a parent).
	if got := r.Spans(strings.Repeat("a", 16)); len(got) != 0 {
		t.Fatalf("evicted trace still present: %v", got)
	}
	if got := r.LatestTrace(); got != strings.Repeat("c", 16) {
		t.Fatalf("latest root = %q", got)
	}
	if all := r.Spans(""); len(all) != 3 {
		t.Fatalf("all spans = %d", len(all))
	}
}

func TestPacketSpansAnchorAndLimit(t *testing.T) {
	c := NewCollector("rep")
	feedLifecycle(c, 1, noc.ReadReply, 0, 3, []HopEvent{
		{Node: 1, Stage: noc.TraceSwitch, Cycle: 7},
	}, 12)
	feedLifecycle(c, 2, noc.WriteReply, 4, 5, nil, 20)

	spans := PacketSpans(c, "t", "parent", "replica", 1_000_000, 1)
	if len(spans) != 1 {
		t.Fatalf("limit ignored: %d spans", len(spans))
	}
	sp := spans[0]
	if sp.Trace != "t" || sp.Parent != "parent" || sp.Process != "replica" {
		t.Fatalf("identity: %+v", sp)
	}
	// feedLifecycle enqueues packet 1 at cycle 0 and ejects at 12.
	if sp.StartUS != 1_000_000 || sp.DurUS != 12 {
		t.Fatalf("anchor: start=%d dur=%d", sp.StartUS, sp.DurUS)
	}
	if sp.Attrs["src"] != "0" || sp.Attrs["dst"] != "5" || sp.Attrs["net"] != "rep" {
		t.Fatalf("attrs: %v", sp.Attrs)
	}
	if PacketSpans(nil, "t", "p", "x", 0, 0) != nil {
		t.Fatal("nil collector must yield nil")
	}
}

// TestWriteSpanTraceMatchesSchema locks the span exporter to the same
// trace_event schema fixture the packet exporter honours: the merged
// cluster trace must load in chrome://tracing and Perfetto.
func TestWriteSpanTraceMatchesSchema(t *testing.T) {
	schema := loadChromeSchema(t)

	trace := NewTraceID()
	root := StartSpan(trace, "", "gateway.route", "arigate")
	root.DurUS = 5000
	att := StartSpan(trace, root.ID, "gateway.attempt", "arigate")
	att.SetAttr("replica", "http://a:1")
	att.DurUS = 4000
	job := StartSpan(trace, att.ID, "serve.job", "ariserve :8080")
	job.DurUS = 3000
	pkt := Span{Trace: trace, ID: NewSpanID(), Parent: job.ID, Name: "pkt ReadReply",
		Process: "ariserve :8080", StartUS: job.StartUS + 10, DurUS: 40,
		Attrs: map[string]string{"net": "rep"}}

	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, []Span{root, att, job, pkt}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not a JSON object: %v", err)
	}
	for _, k := range schema.TopLevelRequired {
		if _, ok := doc[k]; !ok {
			t.Errorf("top-level key %q missing", k)
		}
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(doc["traceEvents"], &events); err != nil {
		t.Fatal(err)
	}
	var xCount, mCount int
	processes := map[string]bool{}
	for i, ev := range events {
		for _, k := range schema.EventRequired {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %d missing %q", i, k)
			}
		}
		var ph string
		json.Unmarshal(ev["ph"], &ph)
		if !contains(schema.AllowedPhases, ph) {
			t.Fatalf("event %d phase %q not allowed", i, ph)
		}
		switch ph {
		case "X":
			xCount++
			var ts, dur float64
			json.Unmarshal(ev["ts"], &ts)
			json.Unmarshal(ev["dur"], &dur)
			if ts < 0 || dur < 0 {
				t.Fatalf("event %d negative ts/dur", i)
			}
			var args map[string]any
			json.Unmarshal(ev["args"], &args)
			if args["trace"] != trace {
				t.Fatalf("event %d trace arg = %v", i, args["trace"])
			}
		case "M":
			mCount++
			var name string
			json.Unmarshal(ev["name"], &name)
			if name == "process_name" {
				var args map[string]any
				json.Unmarshal(ev["args"], &args)
				processes[args["name"].(string)] = true
			}
		}
	}
	if xCount != 4 {
		t.Fatalf("X events = %d, want 4", xCount)
	}
	if !processes["arigate"] || !processes["ariserve :8080"] {
		t.Fatalf("process rows = %v", processes)
	}
	_ = mCount
}
