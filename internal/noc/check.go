package noc

import "fmt"

// CheckInvariants validates the network's internal consistency. It is
// O(buffers) and intended for tests and debugging, not the hot loop. The
// checked invariants are the correctness core of credit-based wormhole
// switching:
//
//  1. no buffer ever exceeds its capacity;
//  2. credit conservation: for every (output port, VC), the sender's
//     credit count plus flits resident in (or staged toward) the matching
//     downstream buffer plus credits staged back equals the buffer depth;
//  3. ownership coherence: a downstream VC owned by an input VC is the
//     one that input VC is actively forwarding into, and vice versa;
//  4. wormhole contiguity: within any VC buffer, flits form contiguous
//     ascending runs per packet and packets never interleave.
func (n *Network) CheckInvariants() error {
	if err := n.checkRecovery(); err != nil {
		return err
	}
	for _, r := range n.routers {
		if err := n.checkRouter(r); err != nil {
			return fmt.Errorf("router %d: %w", r.id, err)
		}
	}
	return nil
}

// checkRecovery validates the fault-recovery protocol layer (recovery.go):
//
//  5. every NI's retransmission buffer respects its cap and its pending
//     counter matches a recount;
//  6. ctlPending equals the ACK/NACK signals actually sitting in NI
//     inboxes (no signal is lost or double-counted);
//  7. when nothing is in flight and no signal is pending, every
//     retransmission buffer is empty — each accepted packet was delivered
//     exactly once and acknowledged.
func (n *Network) checkRecovery() error {
	if !n.recoveryOn() {
		return nil
	}
	n.fold() // checks run at step boundaries; drain any shard deltas first
	inbox := 0
	for id, ni := range n.nis {
		if len(ni.retrans) > ni.retransCap {
			return fmt.Errorf("ni %d: %d retrans entries exceed cap %d", id, len(ni.retrans), ni.retransCap)
		}
		pending := 0
		for i := range ni.retrans {
			if ni.retrans[i].pending {
				pending++
			}
		}
		if pending != ni.retransPending {
			return fmt.Errorf("ni %d: retransPending %d != recounted %d", id, ni.retransPending, pending)
		}
		inbox += len(ni.inbox)
	}
	if inbox != n.ctlPending {
		return fmt.Errorf("ctlPending %d != %d signals in NI inboxes", n.ctlPending, inbox)
	}
	if n.inFlight == 0 && n.ctlPending == 0 {
		for id, ni := range n.nis {
			if len(ni.retrans) != 0 {
				return fmt.Errorf("ni %d: %d retrans entries with nothing in flight or pending", id, len(ni.retrans))
			}
		}
	}
	return nil
}

func (n *Network) checkRouter(r *router) error {
	depth := n.cfg.VCDepth

	// (0): the incremental activity counters of event-driven stepping must
	// agree with a full recount (a divergence would silently de-schedule a
	// busy component).
	recount := 0
	for _, ip := range r.in {
		recount += len(ip.arrivals)
		for _, vc := range ip.vcs {
			recount += vc.buf.len()
		}
	}
	if recount != r.flitCount() {
		return fmt.Errorf("activity counter %d != recounted %d flits", r.flitCount(), recount)
	}
	e := n.ejectors[r.id]
	recount = len(e.arrivals)
	for _, q := range e.vcs {
		recount += q.len()
	}
	if recount != e.flitCount() {
		return fmt.Errorf("ejector activity counter %d != recounted %d flits", e.flitCount(), recount)
	}

	// (1) and (4): buffer bounds and contiguity.
	for _, ip := range r.in {
		for _, vc := range ip.vcs {
			if vc.buf.len() > depth {
				return fmt.Errorf("port %d vc %d: %d flits exceed depth %d",
					ip.index, vc.vcIdx, vc.buf.len(), depth)
			}
			if err := checkContiguity(vc.buf); err != nil {
				return fmt.Errorf("port %d vc %d: %w", ip.index, vc.vcIdx, err)
			}
		}
	}

	// (2): credit conservation per output VC.
	for _, op := range r.out {
		for v := range op.vcs {
			credits := op.vcs[v].credits + op.creditIn[v]
			var resident int
			switch {
			case op.destPort != nil:
				resident = op.destPort.vcs[v].buf.len()
				for _, sf := range op.destPort.arrivals {
					if sf.vc == v {
						resident++
					}
				}
			case op.eject != nil:
				resident = op.eject.vcs[v].len()
				for _, sf := range op.eject.arrivals {
					if sf.vc == v {
						resident++
					}
				}
			}
			if credits+resident != depth {
				return fmt.Errorf("out %d vc %d: credits %d + resident %d != depth %d",
					op.index, v, credits, resident, depth)
			}
		}
	}

	// (3): ownership coherence in both directions.
	for _, op := range r.out {
		for v := range op.vcs {
			owner := op.vcs[v].owner
			if owner < 0 {
				continue
			}
			vc := r.allVCs[owner]
			if vc.state != vcActive || vc.outPort != op.index || vc.outVC != v {
				return fmt.Errorf("out %d vc %d: owner %d not forwarding into it (state %d, out %d/%d)",
					op.index, v, owner, vc.state, vc.outPort, vc.outVC)
			}
		}
	}
	for _, vc := range r.allVCs {
		if vc.state != vcActive {
			continue
		}
		ov := &r.out[vc.outPort].vcs[vc.outVC]
		if ov.owner != vc.globalIdx {
			return fmt.Errorf("vc %d active toward %d/%d but not its owner (owner %d)",
				vc.globalIdx, vc.outPort, vc.outVC, ov.owner)
		}
	}

	// NI-side credit conservation for injection VCs.
	ni := n.nis[r.id]
	for p, ip := range ni.ports {
		for v, vc := range ip.vcs {
			staged := 0
			for _, sf := range ip.arrivals {
				if sf.vc == v {
					staged++
				}
			}
			if ni.vcCredits[p][v]+vc.buf.len()+staged != depth {
				return fmt.Errorf("injection port %d vc %d: NI credits %d + buffered %d + staged %d != depth %d",
					p, v, ni.vcCredits[p][v], vc.buf.len(), staged, depth)
			}
		}
	}
	return nil
}

// checkContiguity verifies (4) for one buffer: per-packet flit sequences
// ascend by one and a packet's flits are never interleaved with another's.
func checkContiguity(q *flitQueue) error {
	var cur *Packet
	expect := 0
	for i := 0; i < q.len(); i++ {
		f := q.at(i)
		if cur == nil || f.pkt != cur {
			if cur != nil && expect != 0 && expect != cur.Size {
				// Previous packet truncated mid-stream inside the buffer is
				// fine only if its earlier flits already left; a *new*
				// packet may only start at a head flit.
				if !f.isHead() {
					return fmt.Errorf("packet %d interleaved mid-stream", f.pkt.ID)
				}
			}
			cur = f.pkt
			expect = f.seq
		}
		if f.seq != expect {
			return fmt.Errorf("packet %d flit %d out of order (want %d)", f.pkt.ID, f.seq, expect)
		}
		expect++
		if expect == cur.Size {
			cur, expect = nil, 0
		}
	}
	return nil
}
