package noc

// RoutingAlgo selects the routing algorithm for a network (Table I: XY and
// minimal adaptive).
type RoutingAlgo uint8

const (
	// RouteXY is deterministic dimension-order (X then Y) routing.
	RouteXY RoutingAlgo = iota
	// RouteMinAdaptive is minimal fully-adaptive routing with an escape
	// virtual channel (VC 0) restricted to the XY path, enabled for
	// deadlock freedom by whole-packet forwarding (WPF [28], paper §6.2).
	RouteMinAdaptive
)

// String returns the algorithm name used in the paper's scheme labels.
func (r RoutingAlgo) String() string {
	if r == RouteXY {
		return "XY"
	}
	return "Ada"
}

// routeCandidate is one admissible (output port, downstream VC set) choice
// produced by route computation.
type routeCandidate struct {
	port   int    // output port index (Direction, or ejection port)
	vcMask uint32 // bit v set => downstream VC v admissible
}

// maskAll returns a VC mask with the low n bits set.
func maskAll(n int) uint32 { return (1 << uint(n)) - 1 }

// maskNoEscape returns a VC mask with bits 1..n-1 set (escape VC excluded).
// With a single VC there is no adaptive class, so the full mask is returned.
func maskNoEscape(n int) uint32 {
	if n <= 1 {
		return maskAll(n)
	}
	return maskAll(n) &^ 1
}

// computeRoute returns the admissible output candidates for a packet at the
// router of node `here` heading to pkt.Dst, on a healthy mesh. The ejection
// port is returned when the packet has arrived. Candidates are ordered
// deterministically: the XY-preferred port first (it is the only one
// carrying the escape VC), then the other productive direction.
//
// computeRoute assumes every link is alive; the moment any mesh link dies
// permanently, routing switches to the fault-adaptive up*/down* table
// instead (Network.routeCandidates, ftable.go).
func computeRoute(m Mesh, algo RoutingAlgo, here, dst, vcs int, scratch []routeCandidate) []routeCandidate {
	scratch = scratch[:0]
	if here == dst {
		return append(scratch, routeCandidate{port: ejectPortIndex, vcMask: maskAll(vcs)})
	}
	hx, hy := m.Coord(here)
	dx, dy := m.Coord(dst)

	var xDir, yDir Direction
	hasX, hasY := dx != hx, dy != hy
	if dx > hx {
		xDir = East
	} else if dx < hx {
		xDir = West
	}
	if dy > hy {
		yDir = South
	} else if dy < hy {
		yDir = North
	}

	// The XY-preferred next hop: reduce X first, then Y.
	xyDir := yDir
	if hasX {
		xyDir = xDir
	}

	if algo == RouteXY {
		return append(scratch, routeCandidate{port: int(xyDir), vcMask: maskAll(vcs)})
	}

	// Minimal adaptive: every productive direction is admissible on the
	// adaptive VCs; the escape VC is additionally admissible on the XY
	// direction only.
	if hasX && hasY {
		other := yDir
		if xyDir == yDir {
			other = xDir
		}
		scratch = append(scratch, routeCandidate{port: int(xyDir), vcMask: maskNoEscape(vcs) | 1})
		scratch = append(scratch, routeCandidate{port: int(other), vcMask: maskNoEscape(vcs)})
		return scratch
	}
	// Only one productive dimension left: it is the XY direction.
	return append(scratch, routeCandidate{port: int(xyDir), vcMask: maskAll(vcs)})
}
