package core

import (
	"testing"

	"repro/internal/noc"
)

// TestDefaultConfigMatchesTableI pins the default configuration to the
// paper's Table I, so calibration drift is caught by CI rather than
// discovered in figure output.
func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()

	// Compute nodes: 28 at 1126 MHz on a 6x6 mesh with 8 MCs.
	if cfg.MeshWidth != 6 || cfg.MeshHeight != 6 {
		t.Fatalf("mesh %dx%d, want 6x6", cfg.MeshWidth, cfg.MeshHeight)
	}
	if got := cfg.MeshWidth*cfg.MeshHeight - cfg.NumMC; got != 28 {
		t.Fatalf("compute nodes = %d, want 28", got)
	}
	if cfg.NumMC != 8 {
		t.Fatalf("MCs = %d, want 8", cfg.NumMC)
	}
	if cfg.CoreClockNum != 1126 || cfg.CoreClockDen != 1000 {
		t.Fatalf("core clock %d/%d, want 1126 MHz", cfg.CoreClockNum, cfg.CoreClockDen)
	}
	if cfg.MemClockNum != 1750 || cfg.MemClockDen != 1000 {
		t.Fatalf("memory clock %d/%d, want 1.75 GHz (GTX980)", cfg.MemClockNum, cfg.MemClockDen)
	}

	// Caches: 16KB L1 per core, 128KB L2 per MC.
	if cfg.Core.L1.SizeBytes != 16<<10 {
		t.Fatalf("L1 = %dB, want 16KB", cfg.Core.L1.SizeBytes)
	}
	if cfg.MC.L2.SizeBytes != 128<<10 {
		t.Fatalf("L2 = %dB, want 128KB", cfg.MC.L2.SizeBytes)
	}

	// GDDR5 timing: tRP=12 tRC=40 tRRD=6 tRAS=28 tRCD=12 tCL=12.
	d := cfg.MC.DRAM
	if d.TRP != 12 || d.TRC != 40 || d.TRRD != 6 || d.TRAS != 28 || d.TRCD != 12 || d.TCL != 12 {
		t.Fatalf("GDDR5 timing %+v does not match Table I", d)
	}

	// NoC: 4 VCs x 1 packet, 128-bit links, 36-flit NI queue.
	if cfg.VCs != 4 {
		t.Fatalf("VCs = %d, want 4", cfg.VCs)
	}
	if cfg.ReqLinkBits != 128 || cfg.RepLinkBits != 128 {
		t.Fatalf("link width %d/%d, want 128", cfg.ReqLinkBits, cfg.RepLinkBits)
	}
	longPkt := noc.PacketSize(noc.ReadReply, cfg.RepLinkBits, cfg.DataBytes)
	if longPkt != 9 {
		t.Fatalf("long packet = %d flits, want 9 (1 header + 8 data)", longPkt)
	}
	nocCfg, err := noc.Config{
		Mesh: noc.Mesh{Width: 6, Height: 6}, VCs: cfg.VCs,
		LinkBits: cfg.RepLinkBits, DataBytes: cfg.DataBytes,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if nocCfg.VCDepth != longPkt {
		t.Fatalf("VC depth = %d flits, want 1 packet (%d)", nocCfg.VCDepth, longPkt)
	}
	if nocCfg.NIQueueFlits != 36 {
		t.Fatalf("NI queue = %d flits, want 36", nocCfg.NIQueueFlits)
	}

	// ARI defaults: speedup 4, 2 priority levels, 1k starvation threshold.
	if cfg.InjSpeedup != 4 || cfg.PriorityLevels != 2 {
		t.Fatalf("ARI defaults S=%d L=%d, want 4/2", cfg.InjSpeedup, cfg.PriorityLevels)
	}
	if nocCfg.StarvationLimit != 1000 {
		t.Fatalf("starvation threshold = %d, want 1000", nocCfg.StarvationLimit)
	}

	// Diamond placement with 8 MCs on the mesh.
	mcs := noc.DiamondMCPlacement(noc.Mesh{Width: 6, Height: 6}, 8)
	if len(mcs) != 8 {
		t.Fatalf("diamond placement has %d MCs", len(mcs))
	}
}
