package serve

import (
	"fmt"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/trace"
)

// JobRequest is one simulation submission. A request is identified by the
// (config, benchmark) pair it resolves to — exp.JobKey — so resubmitting
// the same request (client retry, restarted sweep) is idempotent: it hits
// the journal-backed cache instead of re-running.
type JobRequest struct {
	// Bench names the benchmark (trace.ByName).
	Bench string `json:"bench"`

	// Config, when non-nil, is the full simulation configuration, used
	// verbatim (after validation). Sweep clients use this to run arbitrary
	// ablation points.
	Config *core.Config `json:"config,omitempty"`

	// The remaining fields build a config from the server's base when
	// Config is nil; zero values inherit the base.
	Scheme string `json:"scheme,omitempty"`
	Cycles int64  `json:"cycles,omitempty"`
	Warmup int64  `json:"warmup,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	// TimeoutMs is the client's deadline for this job in milliseconds
	// (0 = none beyond the server's own per-run cap). It propagates through
	// the request context into the run's watchdog interrupt, so an expired
	// job is cancelled, not orphaned.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// Estimate answers from the analytical model (internal/analytic) in
	// microseconds instead of scheduling a simulation: no queue slot, no
	// shedding, no journal write. If the exact result is already in the
	// store it wins over the model. Escalation to a real simulation is a
	// resubmission with Estimate unset — idempotent under the same JobKey.
	Estimate bool `json:"estimate,omitempty"`
}

// Timeout returns the request deadline as a duration (0 = none).
func (q *JobRequest) Timeout() time.Duration {
	if q.TimeoutMs <= 0 {
		return 0
	}
	return time.Duration(q.TimeoutMs) * time.Millisecond
}

// JobResponse is the reply to a completed submission.
type JobResponse struct {
	// Key is the job's idempotency key (exp.JobKey).
	Key string `json:"key"`
	// Cached reports that the result came from the cache or journal
	// without running a simulation.
	Cached bool        `json:"cached"`
	Result core.Result `json:"result"`

	// Peer, when non-empty, names the cluster peer whose journal answered
	// this submission (Cached is also set): the job was computed on another
	// replica and adopted locally without re-running.
	Peer string `json:"peer,omitempty"`

	// Estimated reports that Result is empty and Estimate holds the
	// analytical model's answer instead (estimate-mode requests only; a
	// store hit answers with the exact Result even in estimate mode).
	Estimated bool               `json:"estimated,omitempty"`
	Estimate  *analytic.Estimate `json:"estimate,omitempty"`
}

// errorResponse is the body of every non-200 reply.
type errorResponse struct {
	Error string `json:"error"`
}

// BuildJob resolves a request against a base configuration into a
// validated runner job — the same resolution the server applies, exported
// so a routing front door (internal/cluster) derives the identical
// exp.JobKey for consistent-hash placement.
func BuildJob(base core.Config, q *JobRequest) (exp.Job, error) {
	return buildJob(base, q)
}

// buildJob resolves a request against the server's base configuration into
// a validated runner job.
func buildJob(base core.Config, q *JobRequest) (exp.Job, error) {
	kernel, err := trace.ByName(q.Bench)
	if err != nil {
		return exp.Job{}, err
	}
	cfg := base
	if q.Config != nil {
		cfg = *q.Config
	} else {
		if q.Scheme != "" {
			sch, err := core.ParseScheme(q.Scheme)
			if err != nil {
				return exp.Job{}, err
			}
			cfg.Scheme = sch
		}
		if q.Cycles > 0 {
			cfg.MeasureCycles = q.Cycles
		}
		if q.Warmup > 0 {
			cfg.WarmupCycles = q.Warmup
		}
		if q.Seed != 0 {
			cfg.Seed = q.Seed
		}
	}
	if err := cfg.Validate(); err != nil {
		return exp.Job{}, fmt.Errorf("invalid config: %w", err)
	}
	return exp.Job{Cfg: cfg, Kernel: kernel}, nil
}
