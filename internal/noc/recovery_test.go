package noc

import (
	"fmt"
	"testing"
)

// recoveryNet builds a test network with the fault-recovery layer enabled
// and invariants checked every cycle.
func recoveryNet(t *testing.T, mutate func(*Config)) *Network {
	t.Helper()
	return newTestNet(t, func(c *Config) {
		c.RetransBufPkts = 4
		c.CheckEvery = 1
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestPacketCheckCoversIdentity(t *testing.T) {
	p := &Packet{ID: 7, Type: ReadReply, Src: 1, Dst: 14, Size: 9}
	c := PacketCheck(p)
	if c == 0 {
		t.Fatal("checksum of a non-zero packet is zero")
	}
	if PacketCheck(p) != c {
		t.Fatal("checksum not deterministic")
	}
	for name, q := range map[string]*Packet{
		"id":   {ID: 8, Type: ReadReply, Src: 1, Dst: 14, Size: 9},
		"type": {ID: 7, Type: WriteRequest, Src: 1, Dst: 14, Size: 9},
		"src":  {ID: 7, Type: ReadReply, Src: 2, Dst: 14, Size: 9},
		"dst":  {ID: 7, Type: ReadReply, Src: 1, Dst: 13, Size: 9},
		"size": {ID: 7, Type: ReadReply, Src: 1, Dst: 14, Size: 8},
	} {
		if PacketCheck(q) == c {
			t.Errorf("checksum insensitive to %s", name)
		}
	}
}

// TestCorruptionDetectedAndRetransmitted corrupts the first hop of an XY
// route and verifies the end-to-end protocol: the corrupted copy is dropped
// and NACKed, the retransmission is delivered exactly once with a matching
// checksum, and the recovery counters reconcile.
func TestCorruptionDetectedAndRetransmitted(t *testing.T) {
	n := recoveryNet(t, nil)
	delivered := make(map[uint64]int)
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		delivered[pkt.ID]++
		if want := PacketCheck(pkt); pkt.Check != want {
			t.Errorf("delivered packet %d check %#x != recomputed %#x", pkt.ID, pkt.Check, want)
		}
	})
	// Corrupt node 0's East link long enough to damage the whole first copy
	// of a 9-flit packet, but not the retransmission.
	n.CorruptLink(0, int(East), 30)
	pkt := mkPacket(n.Config(), ReadReply, 3) // 0 -> 3: pure East, crosses the window
	if !n.Inject(0, pkt) {
		t.Fatal("Inject rejected")
	}
	runUntilIdle(t, n, 2000)

	rs := n.RecoveryStats()
	if rs.CorruptFlits == 0 {
		t.Fatal("no flit was corrupted: the window never hit the traffic")
	}
	if rs.CorruptPackets == 0 {
		t.Fatal("corrupted flits delivered without a packet drop")
	}
	if rs.CorruptPackets != rs.NacksSent || rs.CorruptPackets != rs.RetransPackets {
		t.Fatalf("drops %d, NACKs %d, retransmissions %d must agree",
			rs.CorruptPackets, rs.NacksSent, rs.RetransPackets)
	}
	if got := delivered[pkt.ID]; got != 1 {
		t.Fatalf("packet delivered %d times, want exactly 1", got)
	}
	if rs.AcksSent != 1 {
		t.Fatalf("AcksSent %d, want 1", rs.AcksSent)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
}

// TestRepeatedRetransmissionAndBackpressure keeps the only XY path corrupted
// across several round trips: every copy inside the window is dropped again,
// so one packet retransmits repeatedly until the window lapses. With a
// 1-packet retransmission buffer the NI must refuse new traffic while the
// packet is unacknowledged.
func TestRepeatedRetransmissionAndBackpressure(t *testing.T) {
	n := recoveryNet(t, func(c *Config) { c.RetransBufPkts = 1 })
	deliveries := 0
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) { deliveries++ })
	n.CorruptLink(0, int(East), 200)
	pkt := mkPacket(n.Config(), ReadReply, 3)
	if !n.Inject(0, pkt) {
		t.Fatal("Inject rejected")
	}
	// While the packet is unacknowledged the 1-deep retransmission buffer
	// must backpressure the node — the protocol's "data stall" condition.
	// The rejection must go through Offer so it is counted.
	probe := mkPacket(n.Config(), ReadRequest, 2)
	n.Step()
	if n.CanInject(0, probe) {
		t.Fatal("CanInject true while the retransmission buffer is full")
	}
	if n.Inject(0, probe) {
		t.Fatal("Inject accepted while the retransmission buffer is full")
	}
	runUntilIdle(t, n, 5000)
	rs := n.RecoveryStats()
	if rs.RetransPackets < 2 {
		t.Fatalf("RetransPackets %d: the long window should force repeated retransmission", rs.RetransPackets)
	}
	if deliveries != 1 {
		t.Fatalf("deliveries %d, want exactly 1", deliveries)
	}
	if rs.RetransBufFullRejects == 0 {
		t.Fatal("full retransmission buffer never counted a reject")
	}
	if !n.CanInject(0, probe) {
		t.Fatal("CanInject still false after the ACK freed the buffer")
	}
}

// TestKillLinkDetour kills the XY-path link of an XY-routed packet and
// verifies the fault detour still delivers it, for both routing algorithms.
func TestKillLinkDetour(t *testing.T) {
	for _, algo := range []RoutingAlgo{RouteXY, RouteMinAdaptive} {
		t.Run(algo.String(), func(t *testing.T) {
			n := recoveryNet(t, func(c *Config) { c.Routing = algo })
			delivered := 0
			n.SetEjectHandler(func(node int, pkt *Packet, now int64) { delivered++ })
			// 0 -> 3 is pure East under XY; kill the first East hop.
			if !n.KillLink(0, int(East)) {
				t.Fatal("KillLink refused a legal kill")
			}
			if n.DeadLinks() != 1 {
				t.Fatalf("DeadLinks %d, want 1", n.DeadLinks())
			}
			if n.KillLink(0, int(East)) {
				t.Fatal("KillLink succeeded twice on the same link")
			}
			if n.KillLink(0, int(North)) {
				t.Fatal("KillLink succeeded on a mesh edge with no link")
			}
			for i := 0; i < 4; i++ {
				pkt := mkPacket(n.Config(), ReadRequest, 3)
				for !n.Inject(0, pkt) {
					n.Step()
				}
				n.Step()
			}
			runUntilIdle(t, n, 4000)
			if delivered != 4 {
				t.Fatalf("delivered %d packets around the dead link, want 4", delivered)
			}
		})
	}
}

// TestKillLinkReroutesWaitingPackets kills a link while packets are already
// waiting on it (routed but not granted a VC) and verifies the stale-epoch
// recompute detours them instead of granting them onto the dead link.
func TestKillLinkReroutesWaitingPackets(t *testing.T) {
	n := recoveryNet(t, nil)
	delivered := 0
	n.SetEjectHandler(func(node int, pkt *Packet, now int64) { delivered++ })
	// Stall router 1's East link so worms pile up contending for it: the
	// first VCs-many packets claim the downstream VCs (active owners that
	// later drain gracefully over the dead link), the rest sit in vcWaitVC
	// with East in their stale route candidates.
	n.StallLink(1, int(East), 60)
	want := 0
	for i := 0; i < 4; i++ {
		for _, src := range []int{0, 1} {
			pkt := mkPacket(n.Config(), ReadRequest, 3)
			for !n.Inject(src, pkt) {
				n.Step()
			}
			want++
		}
		n.Step()
	}
	for n.Now() < 30 {
		n.Step()
	}
	if !n.KillLink(1, int(East)) {
		t.Fatal("KillLink refused")
	}
	runUntilIdle(t, n, 4000)
	if delivered != want {
		t.Fatalf("delivered %d, want %d", delivered, want)
	}
	// The detour is observable: waiting packets recomputed after the kill
	// leave router 1 southward; without the dead-epoch recompute they would
	// all eventually cross the dead East link behind the draining owners.
	if south := n.LinkLoad()[1][South]; south == 0 {
		t.Fatal("no flit detoured over router 1's South link")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
}

// TestKillLinkConnectivityGuard verifies kills that would disconnect the
// alive-link digraph are refused.
func TestKillLinkConnectivityGuard(t *testing.T) {
	n := newTestNet(t, func(c *Config) {
		c.Mesh = Mesh{Width: 2, Height: 2}
		c.RetransBufPkts = 2
	})
	if !n.KillLink(0, int(East)) {
		t.Fatal("first kill refused")
	}
	// Node 0's only remaining outgoing link is South; killing it would strand
	// the node's traffic.
	if n.KillLink(0, int(South)) {
		t.Fatal("kill disconnecting node 0 was allowed")
	}
	if n.DeadLinks() != 1 {
		t.Fatalf("DeadLinks %d, want 1", n.DeadLinks())
	}
}

// TestRecoverySharded locks byte-identical recovery across serial and
// sharded stepping: same corruption windows, same kill, same traffic — the
// delivery log, stats and recovery counters must match for shards {1,2,4}.
func TestRecoverySharded(t *testing.T) {
	type fingerprint struct {
		log      string
		stats    NetStats
		recovery RecoveryStats
	}
	run := func(shards int) fingerprint {
		n, err := NewNetwork(Config{
			Mesh:           Mesh{Width: 4, Height: 4},
			VCs:            4,
			LinkBits:       128,
			DataBytes:      128,
			Routing:        RouteMinAdaptive,
			NonAtomicVC:    true,
			RetransBufPkts: 4,
			CheckEvery:     16,
		})
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		defer n.Close()
		if _, err := n.SetShards(shards, nil); err != nil {
			t.Fatalf("SetShards(%d): %v", shards, err)
		}
		var log string
		n.SetEjectHandler(func(node int, pkt *Packet, now int64) {
			log += fmt.Sprintf("%d@%d:%d;", pkt.ID, node, now)
		})
		n.CorruptLink(0, int(East), 60)
		n.CorruptLink(9, int(North), 90)
		if !n.KillLink(5, int(East)) {
			t.Fatal("KillLink refused")
		}
		// Deterministic traffic: each node sends to a fixed spread of
		// destinations over the first cycles.
		seq := uint64(1)
		for cycle := 0; cycle < 120; cycle++ {
			for s := 0; s < 16; s++ {
				d := (s + cycle + 3) % 16
				if d == s {
					continue
				}
				typ := ReadRequest
				if (s+cycle)%3 == 0 {
					typ = ReadReply
				}
				pkt := mkPacket(n.Config(), typ, d)
				pkt.ID = seq // explicit IDs: shard striding must not change the log
				if n.Inject(s, pkt) {
					seq++
				} else {
					pkt.ID = 0
				}
			}
			n.Step()
		}
		for i := 0; i < 20000 && !n.Idle(); i++ {
			n.Step()
		}
		if !n.Idle() {
			t.Fatalf("shards=%d: did not drain", shards)
		}
		return fingerprint{log: log, stats: *n.Stats(), recovery: n.RecoveryStats()}
	}

	ref := run(1)
	if ref.recovery.CorruptPackets == 0 {
		t.Fatal("reference run saw no corruption: the test exercises nothing")
	}
	if ref.recovery.RetransPackets != ref.recovery.CorruptPackets {
		t.Fatalf("retransmissions %d != drops %d", ref.recovery.RetransPackets, ref.recovery.CorruptPackets)
	}
	for _, k := range []int{2, 4} {
		got := run(k)
		if got.log != ref.log {
			t.Errorf("shards=%d: delivery log diverged from serial", k)
		}
		if got.stats != ref.stats {
			t.Errorf("shards=%d: NetStats diverged: %+v vs %+v", k, got.stats, ref.stats)
		}
		if got.recovery != ref.recovery {
			t.Errorf("shards=%d: RecoveryStats diverged: %+v vs %+v", k, got.recovery, ref.recovery)
		}
	}
}
