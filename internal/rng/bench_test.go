package rng

import "testing"

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Float64()
	}
}

func BenchmarkGeometric(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Geometric(20)
	}
}
