package analytic

import (
	"math"
	"testing"

	"repro/internal/core"
)

// monotoneTol absorbs float rounding when comparing adjacent curve points.
const monotoneTol = 1e-9

// checkLatencyMonotone sweeps both open-loop latency curves from zero load
// through 1.2x saturation and fails if either ever decreases. Up to
// saturation this is the queueing-theory property; past it the bounded
// waits keep the curves flat rather than falling — non-decreasing
// throughout.
func checkLatencyMonotone(t *testing.T, m *Model, label string) {
	t.Helper()
	const steps = 30
	repSat := m.ReplySaturationRate()
	reqSat := m.requestFlitCapacity() // all-short requests: 1 flit per packet
	prevRep, prevReq := math.Inf(-1), math.Inf(-1)
	for i := 0; i <= steps; i++ {
		frac := 1.2 * float64(i) / steps
		rep := m.ReplyLatencyAt(frac * repSat)
		req := m.RequestLatencyAt(frac * reqSat)
		for name, v := range map[string]float64{"reply": rep, "request": req} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("%s: %s latency at %.0f%% saturation is %v", label, name, 100*frac, v)
			}
		}
		if rep < prevRep-monotoneTol*(1+math.Abs(prevRep)) {
			t.Errorf("%s: reply latency decreased at %.0f%% saturation: %v -> %v",
				label, 100*frac, prevRep, rep)
		}
		if req < prevReq-monotoneTol*(1+math.Abs(prevReq)) {
			t.Errorf("%s: request latency decreased at %.0f%% saturation: %v -> %v",
				label, 100*frac, prevReq, req)
		}
		prevRep, prevReq = rep, req
	}
}

// TestLatencyMonotoneInLoad locks the first estimator property on the three
// validated schemes at Table I geometry: latency never decreases as
// injection rate grows.
func TestLatencyMonotoneInLoad(t *testing.T) {
	for _, s := range ValidationSchemes() {
		cfg := core.DefaultConfig()
		cfg.Scheme = s
		m, err := NewModel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkLatencyMonotone(t, m, s.String())
	}
}

// TestSaturationMonotoneInLinkBandwidth locks the second property: widening
// the reply links (fewer flits per packet) never lowers the saturation
// throughput, on all three schemes.
func TestSaturationMonotoneInLinkBandwidth(t *testing.T) {
	widths := []int{32, 64, 128, 256, 512}
	for _, s := range ValidationSchemes() {
		prev := math.Inf(-1)
		for _, bits := range widths {
			cfg := core.DefaultConfig()
			cfg.Scheme = s
			cfg.RepLinkBits = bits
			m, err := NewModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sat := m.ReplySaturationRate()
			if sat <= 0 || math.IsInf(sat, 0) || math.IsNaN(sat) {
				t.Fatalf("%s/%db: saturation %v", s, bits, sat)
			}
			if sat < prev-monotoneTol {
				t.Errorf("%s: saturation dropped from %v to %v when links widened to %d bits",
					s, prev, sat, bits)
			}
			prev = sat
		}
	}
}

// FuzzEstimatorProperties fuzzes the model's configuration space (mesh
// geometry, MC count, VCs, link width, speedup, scheme) and asserts both
// properties hold everywhere the model accepts the config: latency curves
// monotone in load, saturation monotone in link bandwidth.
func FuzzEstimatorProperties(f *testing.F) {
	for i, s := range ValidationSchemes() {
		f.Add(6, 6, 8, 4, 128, 4, int(s))
		f.Add(4+i, 4, 4, 2, 64, 2, int(s))
	}
	f.Add(8, 8, 8, 8, 256, 3, int(core.XYARI))
	f.Add(3, 9, 5, 1, 32, 1, int(core.AccSupply))

	f.Fuzz(func(t *testing.T, w, h, mc, vcs, repBits, speedup, scheme int) {
		cfg := core.DefaultConfig()
		cfg.MeshWidth, cfg.MeshHeight = w, h
		cfg.NumMC = mc
		cfg.VCs = vcs
		cfg.RepLinkBits = repBits
		cfg.InjSpeedup = speedup
		cfg.Scheme = core.Scheme(scheme)
		// Geometry the simulator itself would reject is out of scope; the
		// model only has to refuse it cleanly (no panic) — the noc packet
		// sizing needs positive link width and a sane VC count.
		if repBits <= 0 || repBits > 4096 || vcs <= 0 || vcs > 64 {
			return
		}
		m, err := NewModel(cfg)
		if err != nil {
			return
		}
		checkLatencyMonotone(t, m, cfg.Scheme.String())

		wide := cfg
		wide.RepLinkBits *= 2
		if mw, err := NewModel(wide); err == nil {
			if mw.ReplySaturationRate() < m.ReplySaturationRate()-monotoneTol {
				t.Errorf("%s: doubling RepLinkBits %d->%d dropped saturation %v -> %v",
					cfg.Scheme, cfg.RepLinkBits, wide.RepLinkBits,
					m.ReplySaturationRate(), mw.ReplySaturationRate())
			}
		}
	})
}
