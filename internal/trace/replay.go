package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// This file provides trace recording and replay, so the simulator can be
// driven by externally captured memory traces (the adoption path for users
// who have real GPGPU-Sim or profiler traces) and so synthetic runs can be
// frozen into reproducible artefacts.
//
// The format is a compact little-endian binary stream of per-warp records:
//
//	header:  magic "ARIT" | u32 version | u32 cores | u32 warpsPerCore
//	record:  u16 core | u16 warp | u32 compute | u8 flags | u8 naddr |
//	         naddr x u64 addr
//
// Each record is one "NextCompute + NextMem" step of one warp. flags bit 0
// marks a store.

const (
	traceMagic   = "ARIT"
	traceVersion = 1
	maxTraceAddr = 8
)

// Workload is the instruction-stream interface this package generates,
// records and replays. It is structurally identical to gpu.Workload, so
// Generators, Recorders and Replayers plug straight into cores.
type Workload interface {
	NextCompute(core, warp int) int
	NextMem(core, warp int, scratch []uint64) (write bool, addrs []uint64)
}

var (
	_ Workload = (*Generator)(nil)
	_ Workload = (*Recorder)(nil)
	_ Workload = (*Replayer)(nil)
)

// ConcurrentWorkload is the opt-in marker for sharded simulation: a workload
// whose ConcurrentByCore returns true guarantees that calls for distinct
// cores touch disjoint state, so the simulator may tick different cores'
// shards on different workers. Generators and Replayers qualify (all their
// stream state is per-warp); Recorders do not — they serialise every step
// onto one output stream, whose record order is part of the artefact.
type ConcurrentWorkload interface {
	ConcurrentByCore() bool
}

// ConcurrentByCore reports that generator streams are per-warp independent.
func (g *Generator) ConcurrentByCore() bool { return true }

// ConcurrentByCore reports that replay streams are per-warp independent.
func (r *Replayer) ConcurrentByCore() bool { return true }

// Recorder wraps a Workload and tees every generated step to an output
// stream while passing results through unchanged.
type Recorder struct {
	inner Workload
	w     *bufio.Writer
	// pendingCompute holds NextCompute results until the matching NextMem
	// completes the record.
	pendingCompute map[[2]int]int
	err            error
	records        uint64
}

// NewRecorder starts a trace on w for a system of the given shape. The
// caller must Flush when done.
func NewRecorder(inner Workload, w io.Writer, cores, warpsPerCore int) (*Recorder, error) {
	if inner == nil {
		return nil, fmt.Errorf("trace: recorder needs an inner workload")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	for _, v := range []uint32{traceVersion, uint32(cores), uint32(warpsPerCore)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return &Recorder{
		inner:          inner,
		w:              bw,
		pendingCompute: make(map[[2]int]int),
	}, nil
}

// NextCompute implements Workload.
func (r *Recorder) NextCompute(core, warp int) int {
	n := r.inner.NextCompute(core, warp)
	r.pendingCompute[[2]int{core, warp}] = n
	return n
}

// NextMem implements Workload, emitting one record combining the pending
// compute segment with this memory instruction.
func (r *Recorder) NextMem(core, warp int, scratch []uint64) (bool, []uint64) {
	write, addrs := r.inner.NextMem(core, warp, scratch)
	if r.err != nil {
		return write, addrs
	}
	key := [2]int{core, warp}
	compute := r.pendingCompute[key]
	delete(r.pendingCompute, key)

	var buf [16]byte
	binary.LittleEndian.PutUint16(buf[0:], uint16(core))
	binary.LittleEndian.PutUint16(buf[2:], uint16(warp))
	binary.LittleEndian.PutUint32(buf[4:], uint32(compute))
	flags := byte(0)
	if write {
		flags |= 1
	}
	buf[8] = flags
	n := len(addrs)
	if n > maxTraceAddr {
		n = maxTraceAddr
	}
	buf[9] = byte(n)
	if _, err := r.w.Write(buf[:10]); err != nil {
		r.err = err
		return write, addrs
	}
	for i := 0; i < n; i++ {
		if err := binary.Write(r.w, binary.LittleEndian, addrs[i]); err != nil {
			r.err = err
			return write, addrs
		}
	}
	r.records++
	return write, addrs
}

// Flush finishes the trace and reports any deferred write error. Compute
// segments whose closing memory instruction never happened (the simulation
// ended mid-segment) are emitted as address-less tail records, so a replay
// reproduces the recorded run exactly over the same horizon.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	keys := make([][2]int, 0, len(r.pendingCompute))
	for k := range r.pendingCompute {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		var buf [10]byte
		binary.LittleEndian.PutUint16(buf[0:], uint16(k[0]))
		binary.LittleEndian.PutUint16(buf[2:], uint16(k[1]))
		binary.LittleEndian.PutUint32(buf[4:], uint32(r.pendingCompute[k]))
		// flags 0, naddr 0: a compute-only tail record.
		if _, err := r.w.Write(buf[:]); err != nil {
			return err
		}
		r.records++
	}
	r.pendingCompute = make(map[[2]int]int)
	return r.w.Flush()
}

// Records returns the number of records written.
func (r *Recorder) Records() uint64 { return r.records }

// replayRecord is one decoded trace step.
type replayRecord struct {
	compute int
	write   bool
	addrs   []uint64
}

// Replayer replays a recorded trace as a Workload. Each warp consumes its
// own record stream; when a warp's stream is exhausted it wraps around, so
// finite traces drive arbitrarily long simulations (steady-state replay).
type Replayer struct {
	cores, warps int
	perWarp      [][]replayRecord
	cursor       []int
	// pending mirrors Recorder's bookkeeping (NextCompute reads the record,
	// NextMem consumes it), indexed core*warps+warp so concurrent calls for
	// distinct cores touch disjoint slots.
	pending []*replayRecord
}

// NewReplayer parses a trace stream.
func NewReplayer(rd io.Reader) (*Replayer, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version, cores, warps uint32
	for _, p := range []*uint32{&version, &cores, &warps} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	if cores == 0 || warps == 0 || cores > 1<<12 || warps > 1<<12 {
		return nil, fmt.Errorf("trace: implausible shape %dx%d", cores, warps)
	}
	r := &Replayer{
		cores:   int(cores),
		warps:   int(warps),
		perWarp: make([][]replayRecord, int(cores)*int(warps)),
		cursor:  make([]int, int(cores)*int(warps)),
		pending: make([]*replayRecord, int(cores)*int(warps)),
	}
	var hdr [10]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: reading record: %w", err)
		}
		core := int(binary.LittleEndian.Uint16(hdr[0:]))
		warp := int(binary.LittleEndian.Uint16(hdr[2:]))
		if core >= r.cores || warp >= r.warps {
			return nil, fmt.Errorf("trace: record for (%d,%d) outside %dx%d", core, warp, r.cores, r.warps)
		}
		rec := replayRecord{
			compute: int(binary.LittleEndian.Uint32(hdr[4:])),
			write:   hdr[8]&1 != 0,
		}
		naddr := int(hdr[9])
		if naddr > maxTraceAddr {
			return nil, fmt.Errorf("trace: record with %d addresses", naddr)
		}
		rec.addrs = make([]uint64, naddr)
		for i := range rec.addrs {
			if err := binary.Read(br, binary.LittleEndian, &rec.addrs[i]); err != nil {
				return nil, fmt.Errorf("trace: reading addresses: %w", err)
			}
		}
		idx := core*r.warps + warp
		r.perWarp[idx] = append(r.perWarp[idx], rec)
	}
	for i, recs := range r.perWarp {
		if len(recs) == 0 {
			return nil, fmt.Errorf("trace: warp %d has no records", i)
		}
	}
	return r, nil
}

// Shape returns the (cores, warpsPerCore) the trace was recorded for.
func (r *Replayer) Shape() (cores, warpsPerCore int) { return r.cores, r.warps }

// next fetches (and advances past) the current record of (core, warp).
func (r *Replayer) next(core, warp int) *replayRecord {
	idx := core*r.warps + warp
	recs := r.perWarp[idx]
	rec := &recs[r.cursor[idx]%len(recs)]
	r.cursor[idx]++
	return rec
}

// NextCompute implements Workload.
func (r *Replayer) NextCompute(core, warp int) int {
	rec := r.next(core, warp)
	r.pending[core*r.warps+warp] = rec
	return rec.compute
}

// NextMem implements Workload.
func (r *Replayer) NextMem(core, warp int, scratch []uint64) (bool, []uint64) {
	idx := core*r.warps + warp
	rec := r.pending[idx]
	if rec == nil {
		// NextMem without a preceding NextCompute (degenerate caller):
		// consume a fresh record.
		rec = r.next(core, warp)
	}
	r.pending[idx] = nil
	return rec.write, append(scratch, rec.addrs...)
}
