// Package cache implements the set-associative caches of the simulated
// GPGPU memory hierarchy: the per-core L1 data caches and the per-MC L2
// banks (Table I: 16KB L1, 128KB L2, 128B lines), plus the MSHR file that
// merges outstanding misses.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	lw := c.LineBytes * c.Ways
	if lw <= 0 || lw/c.Ways != c.LineBytes {
		// The product overflowed int; without this check the modulo below
		// could divide by zero or accept nonsense geometry.
		return fmt.Errorf("cache: geometry overflow %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %dB not divisible by %d ways x %dB lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is a set-associative cache with true-LRU replacement. Addresses are
// byte addresses; the cache works on line granularity internally.
type Cache struct {
	cfg   Config
	sets  [][]way
	clock uint64
	mask  uint64
	shift uint

	// Stats.
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// New builds a cache; it panics on invalid geometry (a construction bug,
// not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{cfg: cfg, mask: uint64(sets - 1)}
	for s := 1; s < cfg.LineBytes; s <<= 1 {
		c.shift++
	}
	c.sets = make([][]way, sets)
	backing := make([]way, sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return c
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.shift
	return int(line & c.mask), line >> uint(popShift(c.mask))
}

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Result reports the outcome of an Access.
type Result struct {
	Hit bool
	// Evicted is set when a valid line was displaced; WritebackAddr is its
	// line address and Writeback is true when it was dirty.
	Evicted       bool
	Writeback     bool
	WritebackAddr uint64
}

// Probe reports whether addr currently hits, without disturbing state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true) with
// allocate-on-miss and LRU replacement; stores mark the line dirty.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	c.Accesses++
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.Hits++
			ways[i].used = c.clock
			if write {
				ways[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.Misses++
	// Choose victim: an invalid way, else true LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	res := Result{}
	if ways[victim].valid {
		c.Evictions++
		res.Evicted = true
		if ways[victim].dirty {
			c.Writeback++
			res.Writeback = true
			res.WritebackAddr = c.rebuild(set, ways[victim].tag)
		}
	}
	ways[victim] = way{tag: tag, valid: true, dirty: write, used: c.clock}
	return res
}

// AccessNoAllocate performs a load/store that does not allocate on miss
// (the L1 treats stores as write-through no-allocate, the common GPU
// policy, so stores always produce write-request traffic).
func (c *Cache) AccessNoAllocate(addr uint64, write bool) Result {
	c.clock++
	c.Accesses++
	set, tag := c.index(addr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.Hits++
			ways[i].used = c.clock
			if write {
				ways[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.Misses++
	return Result{}
}

// Invalidate drops addr's line if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			return
		}
	}
	return
}

// rebuild reconstructs a line address from set and tag.
func (c *Cache) rebuild(set int, tag uint64) uint64 {
	line := tag<<uint(popShift(c.mask)) | uint64(set)
	return line << c.shift
}

// HitRate returns hits/accesses.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}
