package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig9 varies the number of ARI priority levels on bfs and mummerGPU
// (paper: two levels reap most of the benefit; more levels can even hurt).
func Fig9(r *Runner) (*Figure, error) {
	benches := []string{"bfs", "mummerGPU"}
	levels := []int{1, 2, 3, 4, 5, 6}
	var jobs []Job
	for _, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, l := range levels {
			cfg := r.withScheme(core.AdaARI)
			cfg.PriorityLevels = l
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	header := []string{"levels"}
	header = append(header, benches...)
	t := stats.NewTable(header...)
	summary := map[string]float64{}
	for li, l := range levels {
		row := []string{fmt.Sprintf("%d", l)}
		for bi, name := range benches {
			base := res[bi*len(levels)].IPC // 1 level = no prioritisation
			gain := safeDiv(res[bi*len(levels)+li].IPC, base) - 1
			row = append(row, pct(gain))
			if l == 2 {
				summary["gain_2_levels_"+name] = gain
			}
		}
		t.AddRow(row...)
	}
	return &Figure{
		ID:      "Fig 9",
		Title:   "IPC improvement vs number of priority levels (rel. to 1 level)",
		Paper:   "two levels capture most benefit (e.g. ~6% bfs); more can reduce it",
		Table:   t,
		Summary: summary,
	}, nil
}

// fig10Schemes is Fig 10's ablation set, all under adaptive routing.
var fig10Schemes = []core.Scheme{
	core.AdaBaseline, core.AccSupply, core.AccConsume,
	core.AccBothNoPriority, core.AdaARI,
}

// Fig10 isolates the supply and consumption accelerations (paper: either
// alone is ineffective — supply-only can hurt — together +13.5%, plus
// priority for the full ARI).
func Fig10(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix(fig10Schemes)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "Baseline", "Acc-Supply", "Acc-Consume", "Acc-Both-NoPri", "Acc-Both-Pri(ARI)")
	norm := make([][]float64, len(fig10Schemes))
	supplyHurts := 0
	for i, k := range r.Benchmarks {
		base := matrix[i][0].IPC
		row := []string{k.Name}
		for s := range fig10Schemes {
			v := safeDiv(matrix[i][s].IPC, base)
			norm[s] = append(norm[s], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		if norm[1][len(norm[1])-1] < 1.0 {
			supplyHurts++
		}
		t.AddRow(row...)
	}
	gm := make([]float64, len(fig10Schemes))
	gmRow := []string{"geomean"}
	for s := range fig10Schemes {
		gm[s] = stats.GeoMean(norm[s])
		gmRow = append(gmRow, fmt.Sprintf("%.3f", gm[s]))
	}
	t.AddRow(gmRow...)
	return &Figure{
		ID:    "Fig 10",
		Title: "Ablation: accelerating supply and consumption separately and combined (IPC norm. to Ada-Baseline)",
		Paper: "Acc-Supply/Acc-Consume alone ~no gain (supply-only hurts 12/30); Acc-Both +13.5% geomean; priority adds more",
		Table: t,
		Summary: map[string]float64{
			"supply_only_gain":        gm[1] - 1,
			"consume_only_gain":       gm[2] - 1,
			"both_nopriority_gain":    gm[3] - 1,
			"ari_gain":                gm[4] - 1,
			"supply_hurts_benchmarks": float64(supplyHurts),
		},
	}, nil
}

// fig11Schemes is the main comparison of §7.2.
var fig11Schemes = []core.Scheme{
	core.XYBaseline, core.XYARI, core.AdaBaseline,
	core.AdaMultiPort, core.AdaARI,
}

// Fig11 is the headline performance comparison (paper: XY-ARI +8% over
// XY-Baseline; Ada-Baseline slightly below XY-Baseline; MultiPort +2% over
// Ada-Baseline; Ada-ARI +15.4% over Ada-Baseline, ~1.4x for a third of the
// benchmarks).
func Fig11(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix(fig11Schemes)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "XY-Base", "XY-ARI", "Ada-Base", "Ada-MultiPort", "Ada-ARI")
	norm := make([][]float64, len(fig11Schemes))
	big := 0
	for i, k := range r.Benchmarks {
		base := matrix[i][0].IPC
		row := []string{k.Name}
		for s := range fig11Schemes {
			v := safeDiv(matrix[i][s].IPC, base)
			norm[s] = append(norm[s], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		if safeDiv(matrix[i][4].IPC, matrix[i][2].IPC) >= 1.35 {
			big++
		}
		t.AddRow(row...)
	}
	gm := make([]float64, len(fig11Schemes))
	gmRow := []string{"geomean"}
	for s := range fig11Schemes {
		gm[s] = stats.GeoMean(norm[s])
		gmRow = append(gmRow, fmt.Sprintf("%.3f", gm[s]))
	}
	t.AddRow(gmRow...)
	adaBase := gm[2]
	return &Figure{
		ID:    "Fig 11",
		Title: "Performance comparison across schemes (IPC norm. to XY-Baseline)",
		Paper: "XY-ARI +8% vs XY-Base; MultiPort +2% vs Ada-Base; Ada-ARI +15.4% vs Ada-Base, ~1/3 of benchmarks near 1.4x",
		Table: t,
		Summary: map[string]float64{
			"xy_ari_gain":        gm[1]/gm[0] - 1,
			"ada_base_vs_xy":     gm[2]/gm[0] - 1,
			"multiport_gain":     gm[3]/adaBase - 1,
			"ada_ari_gain":       gm[4]/adaBase - 1,
			"benchmarks_near14x": float64(big),
		},
	}, nil
}

// Fig12 measures the reply-data stall time in the MCs (paper: XY-ARI
// −47.5%, Ada-ARI −67.8% vs the respective baselines). Because runs are
// fixed-horizon, stall time is normalised per reply sent.
func Fig12(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix(fig11Schemes)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "XY-Base", "XY-ARI", "Ada-Base", "Ada-MultiPort", "Ada-ARI")
	perScheme := make([][]float64, len(fig11Schemes))
	stallPerReply := func(res core.Result) float64 {
		return safeDiv(float64(res.MCStallTime), float64(res.RepliesSent))
	}
	for i, k := range r.Benchmarks {
		base := stallPerReply(matrix[i][0])
		row := []string{k.Name}
		for s := range fig11Schemes {
			v := safeDiv(stallPerReply(matrix[i][s]), base)
			perScheme[s] = append(perScheme[s], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"mean"}
	avgs := make([]float64, len(fig11Schemes))
	for s := range fig11Schemes {
		avgs[s] = mean(perScheme[s])
		avgRow = append(avgRow, fmt.Sprintf("%.3f", avgs[s]))
	}
	t.AddRow(avgRow...)
	// Ada columns renormalised to Ada-Baseline.
	adaRed := 1 - safeDiv(avgs[4], avgs[2])
	return &Figure{
		ID:    "Fig 12",
		Title: "Data stall time in MCs due to NI injection-queue full (norm. per reply, to XY-Baseline)",
		Paper: "XY-ARI reduces stall ~47.5%; Ada-ARI ~67.8%; MultiPort helps little in general",
		Table: t,
		Summary: map[string]float64{
			"xy_ari_stall_reduction":    1 - safeDiv(avgs[1], avgs[0]),
			"ada_ari_stall_reduction":   adaRed,
			"multiport_stall_reduction": 1 - safeDiv(avgs[3], avgs[2]),
		},
	}, nil
}

// Fig13 decomposes end-to-end packet latency into request and reply parts
// (NI queueing counts toward the reply part, §7.4). The paper's key point:
// ARI also shrinks request latency despite changing nothing on the request
// network — confirming the bottleneck is the reply side.
func Fig13(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix(fig11Schemes)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "XY-Base(req+rep)", "XY-ARI", "Ada-Base", "Ada-MultiPort", "Ada-ARI")
	var reqDropXY, reqDropAda []float64
	totNorm := make([][]float64, len(fig11Schemes))
	for i, k := range r.Benchmarks {
		lat := func(s int) (req, rep float64) {
			req = matrix[i][s].Req.AvgLatency(noc.ReadRequest, noc.WriteRequest)
			rep = matrix[i][s].Rep.AvgLatency(noc.ReadReply, noc.WriteReply)
			return
		}
		baseReq, baseRep := lat(0)
		base := baseReq + baseRep
		row := []string{k.Name}
		for s := range fig11Schemes {
			rq, rp := lat(s)
			row = append(row, fmt.Sprintf("%.2f(%.2f+%.2f)", safeDiv(rq+rp, base), safeDiv(rq, base), safeDiv(rp, base)))
			totNorm[s] = append(totNorm[s], safeDiv(rq+rp, base))
		}
		t.AddRow(row...)
		xyARIReq, _ := lat(1)
		adaReq, _ := lat(2)
		adaARIReq, _ := lat(4)
		reqDropXY = append(reqDropXY, 1-safeDiv(xyARIReq, baseReq))
		reqDropAda = append(reqDropAda, 1-safeDiv(adaARIReq, adaReq))
	}
	return &Figure{
		ID:    "Fig 13",
		Title: "Average packet latency decomposed into request + reply parts (norm. to XY-Baseline total)",
		Paper: "ARI reduces reply latency and, without touching the request network, request latency too",
		Table: t,
		Summary: map[string]float64{
			"xy_ari_request_latency_drop":  mean(reqDropXY),
			"ada_ari_request_latency_drop": mean(reqDropAda),
			"ada_ari_total_latency_norm":   mean(totNorm[4]),
		},
	}, nil
}
