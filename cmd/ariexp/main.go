// Command ariexp regenerates the paper's tables and figures.
//
// Usage:
//
//	ariexp -fig 11                # one figure (table1,3,4,5,util,6,9..16,scale,area)
//	ariexp -fig all               # everything, in paper order
//	ariexp -fig 11 -cycles 20000  # longer measurement window
//	ariexp -quick                 # fast smoke pass (short horizons)
//	ariexp -v                     # per-run progress
//	ariexp -bench bfs,srad        # restrict the suite to a benchmark subset
//	ariexp -journal runs.jsonl    # resume an interrupted pass from a journal
//	ariexp -timeout 5m            # fail any single run exceeding 5 minutes
//
// Every simulation executes under the harness watchdogs: a run that stops
// making forward progress fails with a diagnostic dump instead of hanging
// the whole figure pass, and a -journal'd pass that is killed resumes
// without recomputing finished runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/trace"
)

// sanitize maps a figure id to a filesystem-safe name.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, id)
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ariexp:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, regenerates the requested
// figures and writes them to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ariexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "figure id or 'all'")
		cycles  = fs.Int64("cycles", 10000, "measured NoC cycles per run")
		warmup  = fs.Int64("warmup", 3000, "warmup NoC cycles per run")
		quick   = fs.Bool("quick", false, "short horizons for a smoke pass")
		verbose = fs.Bool("v", false, "print per-run progress")
		workers = fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed    = fs.Uint64("seed", 1, "simulation seed")
		csvDir  = fs.String("csv", "", "also write each figure's table as CSV into this directory")
		list    = fs.Bool("list", false, "list figure ids and exit")
		bench   = fs.String("bench", "", "comma-separated benchmark subset (default: full suite)")
		journal = fs.String("journal", "", "JSONL result journal; an interrupted pass resumes from it")
		timeout = fs.Duration("timeout", 0, "per-run wall-time limit (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.Registry() {
			fmt.Fprintln(stdout, e.ID)
		}
		return nil
	}

	r := exp.NewRunner()
	r.Base.MeasureCycles = *cycles
	r.Base.WarmupCycles = *warmup
	r.Base.Seed = *seed
	r.Workers = *workers
	r.RunTimeout = *timeout
	if *quick {
		r.Base.MeasureCycles = 3000
		r.Base.WarmupCycles = 1000
	}
	if *verbose {
		r.Progress = stderr
	}
	if *bench != "" {
		var subset []trace.Kernel
		for _, name := range strings.Split(*bench, ",") {
			k, err := trace.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			subset = append(subset, k)
		}
		r.Benchmarks = subset
	}
	if *journal != "" {
		j, err := exp.OpenJournal(*journal)
		if err != nil {
			return err
		}
		defer j.Close()
		r.Journal = j
		if j.Loaded() > 0 {
			fmt.Fprintf(stderr, "ariexp: resuming, %d runs journalled in %s\n", j.Loaded(), j.Path())
		}
	}

	start := time.Now()
	ids := []string{*fig}
	if *fig == "all" {
		ids = ids[:0]
		for _, e := range exp.Registry() {
			ids = append(ids, e.ID)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		f, err := exp.Generate(r, id)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, f.String())
		if *csvDir != "" && f.Table != nil {
			path := filepath.Join(*csvDir, "fig_"+sanitize(id)+".csv")
			if err := os.WriteFile(path, []byte(f.Table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(stdout, "(%d simulations, %s)\n", r.Runs(), time.Since(start).Round(time.Millisecond))
	return nil
}
