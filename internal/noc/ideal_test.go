package noc

import "testing"

func newTestIdeal(t *testing.T) *IdealFabric {
	t.Helper()
	f, err := NewIdealFabric(testConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestIdealFabricDelivery(t *testing.T) {
	f := newTestIdeal(t)
	var gotNode int
	var got *Packet
	f.SetEjectHandler(func(node int, pkt *Packet, now int64) {
		gotNode, got = node, pkt
	})
	pkt := mkPacket(f.cfg, ReadReply, 15)
	if !f.CanInject(0, pkt) || !f.Inject(0, pkt) {
		t.Fatal("ideal fabric refused an injection")
	}
	if f.InFlight() != 1 {
		t.Fatal("in-flight count wrong")
	}
	for i := 0; i < 100 && f.InFlight() > 0; i++ {
		f.Step()
	}
	if got != pkt || gotNode != 15 {
		t.Fatalf("delivery wrong: node %d", gotNode)
	}
	// Latency = hops + serialisation, nothing more.
	want := int64(Mesh{Width: 4, Height: 4}.Hops(0, 15) + pkt.Size)
	if lat := got.EjectedAt - got.CreatedAt; lat != want {
		t.Fatalf("ideal latency %d, want %d", lat, want)
	}
	if f.Stats().PacketsEjected[ReadReply] != 1 {
		t.Fatal("stats missed the ejection")
	}
}

func TestIdealFabricUnlimitedRate(t *testing.T) {
	// Many packets per cycle from one node all get accepted — that is the
	// "perfect consumption" the eq. (1) measurement needs.
	f := newTestIdeal(t)
	f.SetEjectHandler(func(int, *Packet, int64) {})
	for i := 0; i < 50; i++ {
		if !f.Inject(0, mkPacket(f.cfg, ReadReply, 1+i%15)) {
			t.Fatalf("injection %d refused", i)
		}
	}
	for i := 0; i < 200 && f.InFlight() > 0; i++ {
		f.Step()
	}
	if f.InFlight() != 0 {
		t.Fatal("ideal fabric failed to drain")
	}
}

func TestIdealFabricPeakWindow(t *testing.T) {
	f := newTestIdeal(t)
	f.SetEjectHandler(func(int, *Packet, int64) {})
	// 5 packets per 100-cycle window from node 0 for 5 windows.
	for c := 0; c < 500; c++ {
		if c%20 == 0 {
			f.Inject(0, mkPacket(f.cfg, ReadReply, 3))
		}
		f.Step()
	}
	if got := f.PeakWindow(0, 95); got != 5 {
		t.Fatalf("peak window = %v, want 5", got)
	}
	if got := f.PeakWindow(1, 95); got != 0 {
		t.Fatalf("idle node peak = %v, want 0", got)
	}
	f.ResetStats()
	if f.PeakWindow(0, 95) != 0 {
		t.Fatal("ResetStats kept windows")
	}
}

func TestNetworkCanInjectAndNow(t *testing.T) {
	n := newTestNet(t, nil)
	pkt := mkPacket(n.Config(), ReadReply, 5)
	if !n.CanInject(0, pkt) {
		t.Fatal("fresh network refuses injection")
	}
	if !n.Inject(0, pkt) {
		t.Fatal("inject failed")
	}
	if n.CanInject(0, mkPacket(n.Config(), ReadReply, 5)) {
		t.Fatal("CanInject ignores the per-cycle NI limit")
	}
	before := n.Now()
	n.Step()
	if n.Now() != before+1 {
		t.Fatal("Now did not advance")
	}
}

func TestNetworkResetStatsMidRun(t *testing.T) {
	n := newTestNet(t, nil)
	n.SetEjectHandler(func(int, *Packet, int64) {})
	for i := 0; i < 50; i++ {
		n.Inject(i%16, mkPacket(n.Config(), ReadReply, (i+3)%16))
		n.Step()
	}
	n.ResetStats()
	st := n.Stats()
	if st.Cycles != 0 || st.MeshLinkFlits != 0 {
		t.Fatal("counters survived reset")
	}
	if st.MeshLinks == 0 || st.InjLinks == 0 {
		t.Fatal("structural fields lost in reset")
	}
	// The network must still drain correctly after a reset.
	runUntilIdle(t, n, 100000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkGateBlocksEjection(t *testing.T) {
	n := newTestNet(t, nil)
	delivered := 0
	n.SetEjectHandler(func(int, *Packet, int64) { delivered++ })
	open := false
	n.SetSinkGate(func(node int) bool { return open })
	n.Inject(0, mkPacket(n.Config(), ReadRequest, 5))
	for i := 0; i < 200; i++ {
		n.Step()
	}
	if delivered != 0 {
		t.Fatal("closed sink gate did not block ejection")
	}
	open = true
	runUntilIdle(t, n, 1000)
	if delivered != 1 {
		t.Fatalf("delivered %d after opening gate, want 1", delivered)
	}
}

func TestNetStatsHelpers(t *testing.T) {
	n := newTestNet(t, nil)
	n.SetEjectHandler(func(int, *Packet, int64) {})
	n.Inject(0, mkPacket(n.Config(), ReadReply, 15))
	n.Inject(1, mkPacket(n.Config(), WriteReply, 14))
	runUntilIdle(t, n, 1000)
	st := n.Stats()
	if st.MeshLinkUtil() <= 0 || st.InjLinkUtil() <= 0 {
		t.Fatal("utilisations not positive after traffic")
	}
	share := st.FlitShare(ReadReply)
	if share <= 0.8 || share >= 1.0 { // 9 of 10 flits
		t.Fatalf("read-reply flit share = %v, want 0.9", share)
	}
	if st.TotalPackets() != 2 {
		t.Fatalf("total packets = %d", st.TotalPackets())
	}
	if st.AvgLatency(ReadReply) <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestStringers(t *testing.T) {
	for pt := PacketType(0); int(pt) < NumPacketTypes; pt++ {
		if pt.String() == "" {
			t.Fatal("empty packet type name")
		}
	}
	if !ReadReply.IsReply() || ReadRequest.IsReply() {
		t.Fatal("IsReply wrong")
	}
	if !WriteRequest.IsLong() || WriteReply.IsLong() {
		t.Fatal("IsLong wrong")
	}
	for _, m := range []NIMode{NIBaseline, NISplit, NIMultiPort} {
		if m.String() == "" {
			t.Fatal("empty NI mode name")
		}
	}
	if RouteXY.String() != "XY" || RouteMinAdaptive.String() != "Ada" {
		t.Fatal("routing names wrong")
	}
}

func TestOverlayCanInject(t *testing.T) {
	d := newTestOverlay(t, nil)
	pkt := mkPacket(d.cfg, ReadReply, 3)
	if !d.CanInject(0, pkt) {
		t.Fatal("fresh overlay refuses injection")
	}
	d.Inject(0, pkt)
	if d.CanInject(0, mkPacket(d.cfg, ReadReply, 3)) {
		t.Fatal("overlay CanInject ignores per-cycle limit")
	}
	d.Step()
	if !d.CanInject(0, mkPacket(d.cfg, ReadReply, 3)) {
		t.Fatal("overlay refuses next-cycle injection")
	}
	if d.NIOccupancyAvgFlits() < 0 {
		t.Fatal("occupancy negative")
	}
}
