// Command arigate is the cluster front door: it routes job submissions to
// N ariserve replicas by consistent hash over their idempotency key
// (exp.JobKey), with health-checked failover, hedged requests, and load
// shedding (internal/cluster).
//
// Usage:
//
//	arigate -replicas http://a:8080,http://b:8080,http://c:8080
//	arigate -addr :9090 -replication 2 -hedge-after 250ms
//	arigate -probe-interval 500ms -breaker-threshold 3
//
// API:
//
//	POST /v1/jobs          route a submission to its owner replicas
//	GET  /v1/stats         routing/failover/hedge counters
//	GET  /healthz          gateway liveness
//	GET  /readyz           200 while >= 1 replica is routable, else 503
//	GET  /metrics          Prometheus text: routing, per-replica health, SLO
//	GET  /metrics/cluster  federated rollup of every live replica's /metrics
//	GET  /debug/spans      recorded gateway spans (?trace= filters)
//	GET  /debug/trace      merged gateway+replica Chrome trace for one trace ID
//	GET  /debug/slo        route-latency burn-rate report (JSON)
//
// The gateway is stateless: routing is a pure function of the replica set,
// so any number of arigate instances compute identical placement, and a
// restarted gateway needs no warm-up beyond its first health probes. Jobs
// whose owners are all down are shed with 429 + Retry-After; the retrying
// client (internal/serve/client) rides through both the shed and the
// failover.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "arigate:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it routes until a signal arrives on sigs
// (or the listener fails). The bound address is announced on stderr so
// tests can serve on :0.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("arigate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:9090", "listen address")
		replicas  = fs.String("replicas", "", "comma-separated ariserve base URLs (required)")
		repl      = fs.Int("replication", 2, "owners per job key (failover depth)")
		vnodes    = fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per replica on the hash ring")
		hedge     = fs.Duration("hedge-after", 250*time.Millisecond, "race a secondary owner after this long (negative disables)")
		probe     = fs.Duration("probe-interval", 500*time.Millisecond, "readyz health-probe cadence")
		threshold = fs.Int("breaker-threshold", 3, "consecutive failures opening a replica's circuit")
		cycles    = fs.Int64("cycles", 10000, "default measured cycles (must match the replicas' base)")
		warmup    = fs.Int64("warmup", 3000, "default warmup cycles (must match the replicas' base)")
		traceSamp = fs.Int("trace-sample", 0, "start a distributed trace on every Nth routed job (0 disables; incoming X-Ari-Trace is always honoured)")
		traceCap  = fs.Int("trace-cap", 0, "span-recorder ring capacity (0 = default)")
		sloTarget = fs.Duration("slo-target", 2*time.Second, "route-latency SLO threshold")
		sloGoal   = fs.Float64("slo-goal", 0.99, "route-latency SLO goal (fraction of routes within the target)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, strings.TrimRight(r, "/"))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("no replicas: pass -replicas http://host:port[,...]")
	}

	base := core.DefaultConfig()
	base.MeasureCycles = *cycles
	base.WarmupCycles = *warmup

	g, err := cluster.New(cluster.Config{
		Base:             base,
		Replicas:         urls,
		Vnodes:           *vnodes,
		Replication:      *repl,
		HedgeAfter:       *hedge,
		ProbeInterval:    *probe,
		BreakerThreshold: *threshold,
		TraceSample:      *traceSamp,
		TraceCap:         *traceCap,
		SLOTarget:        *sloTarget,
		SLOGoal:          *sloGoal,
	})
	if err != nil {
		return err
	}
	g.Start()
	defer g.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "arigate: listening on %s (routing to %d replicas)\n", ln.Addr(), len(urls))

	hs := &http.Server{Handler: g}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigs:
		fmt.Fprintf(stderr, "arigate: %v: shutting down\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := g.Stats()
	fmt.Fprintf(stdout, "arigate: stopped; %d routed, %d failovers, %d hedges, %d shed\n",
		st.Requests, st.Failovers, st.Hedges, st.Shed)
	return nil
}
