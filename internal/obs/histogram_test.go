package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Log buckets are exact to within a factor of 2.
	for _, c := range []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.99, 990}, {1, 1000}} {
		got := s.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("q%v = %v, want within 2x of %v", c.q, got, c.want)
		}
	}
	if q := s.Quantile(0); q < 0 || q > 2 {
		t.Errorf("q0 = %v", q)
	}

	// Compliance is monotone in the threshold and exact at bucket bounds.
	if c := s.Compliance(BucketBound(10)); math.Abs(c-1) > 1e-9 { // 1023 >= all
		t.Errorf("compliance(1023) = %v, want 1", c)
	}
	lo, hi := s.Compliance(100), s.Compliance(800)
	if !(lo > 0 && lo < hi && hi < 1) {
		t.Errorf("compliance not monotone: c(100)=%v c(800)=%v", lo, hi)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	h.Observe(math.MaxInt64) // lands in the overflow bucket
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("counts = %v ... %v", s.Counts[0], s.Counts[HistBuckets-1])
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 || empty.Compliance(1) != 1 {
		t.Fatal("empty snapshot not neutral")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
		h.ObserveDuration(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", allocs)
	}
}

func TestPromHistogramRendering(t *testing.T) {
	var h Histogram
	h.Observe(1)   // bucket 1 (le 1)
	h.Observe(3)   // bucket 2 (le 3)
	h.Observe(900) // bucket 10 (le 1023)
	var p PromWriter
	p.Histogram("ari_job_seconds", "Job latency.", h.Snapshot(), 1e-6)
	got := p.String()
	for _, want := range []string{
		"# TYPE ari_job_seconds histogram",
		`ari_job_seconds_bucket{le="1e-06"} 1`,
		`ari_job_seconds_bucket{le="3e-06"} 2`,
		`ari_job_seconds_bucket{le="0.001023"} 3`,
		`ari_job_seconds_bucket{le="+Inf"} 3`,
		"ari_job_seconds_count 3",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering missing %q:\n%s", want, got)
		}
	}
	// Cumulative counts must be non-decreasing and end at _count.
	if strings.Count(got, "_bucket{") < 4 {
		t.Fatalf("too few buckets:\n%s", got)
	}
}

// BenchmarkHistogramObserve gates the serving hot path in benchdiff: one
// Observe per request must stay a couple of atomic adds, allocation-free.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
