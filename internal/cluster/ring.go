// Package cluster turns N ariserve replicas into one fault-tolerant
// service behind an arigate front door.
//
// The paper's determinism is the load-bearing property: a simulation result
// is a pure function of its exp.JobKey, so replication needs no coordination
// protocol — any replica that has (or computes) a key's result holds *the*
// result. Routing therefore reduces to consistent hashing over JobKeys,
// failover to re-routing, caching to peer result-fetch, and recovery to
// replaying a crash-only journal. The degradation ladder, top to bottom:
//
//  1. Healthy: jobs route to their primary owner; duplicates anywhere in
//     the cluster are answered from journals via peer fetch.
//  2. Slow primary: a hedged request races a secondary owner; idempotency
//     makes the duplicate run harmless, determinism makes it identical.
//  3. Dead primary: the readyz-probing circuit breaker opens after
//     BreakerThreshold consecutive failures and routing falls over to the
//     next owner on the ring; the probe loop closes the circuit on recovery.
//  4. All owners down: arigate sheds with 429 + Retry-After — the bounded
//     client (internal/serve/client) rides it out.
//  5. Partitioned replica: keeps serving its local journal and running jobs
//     (peer fetch is an optimisation, never a dependency).
//  6. Rejoining replica: warms from its fsync'd journal; completed jobs are
//     never re-run.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the per-replica virtual-node count. 256 points per
// replica keeps the load split within a few percent of uniform for small
// clusters (TestRingUniformLoad locks ±10% over 10k keys) while the whole
// ring stays a few KB.
const DefaultVnodes = 256

// Ring is a deterministic consistent-hash ring over replica base URLs.
//
// Determinism matters twice: placement is a pure function of the replica
// set (any process that knows the replica list computes identical routing —
// across restarts, across gateway instances), and key movement on
// membership change is minimal (removing a replica reassigns only the keys
// it owned; every other key keeps its owner, so the cluster's journals stay
// hot).
type Ring struct {
	replicas []string
	points   []ringPoint // sorted by (hash, replica) ascending
}

type ringPoint struct {
	hash    uint64
	replica int32 // index into replicas
}

// NewRing builds a ring with vnodes virtual nodes per replica
// (DefaultVnodes when <= 0). Replica names are deduplicated and sorted, so
// the ring is independent of argument order.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), replicas...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", sorted[i])
		}
	}
	r := &Ring{
		replicas: sorted,
		points:   make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for ri, rep := range sorted {
		for v := 0; v < vnodes; v++ {
			h := hash64(rep + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, replica: int32(ri)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare at 64 bits) break by replica order so
		// the ring stays a pure function of the replica set.
		return r.points[i].replica < r.points[j].replica
	})
	return r, nil
}

// Replicas returns the ring's members in canonical (sorted) order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Owners returns the n distinct replicas owning key, primary first, walking
// clockwise from the key's hash. n is clamped to the replica count.
func (r *Ring) Owners(key string, n int) []string {
	return r.OwnersAppend(nil, key, n)
}

// OwnersAppend is Owners appending into dst — the allocation-free hot path
// the gateway routes every submission through (BenchmarkGateRoute).
func (r *Ring) OwnersAppend(dst []string, key string, n int) []string {
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	if n <= 0 {
		return dst
	}
	h := hash64(key)
	// First point clockwise of h (wrapping past the top of the ring).
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	start := len(dst)
	var seen uint64 // replica-index bitmap; rings are small (≤64 replicas fast-pathed)
	for walked := 0; walked < len(r.points) && len(dst)-start < n; walked++ {
		p := r.points[(i+walked)%len(r.points)]
		if p.replica < 64 {
			if seen&(1<<uint(p.replica)) != 0 {
				continue
			}
			seen |= 1 << uint(p.replica)
		} else if containsFrom(dst, start, r.replicas[p.replica]) {
			continue
		}
		dst = append(dst, r.replicas[p.replica])
	}
	return dst
}

func containsFrom(s []string, from int, v string) bool {
	for _, x := range s[from:] {
		if x == v {
			return true
		}
	}
	return false
}

// hash64 maps a label to its ring position: the first 8 bytes of SHA-256,
// platform-independent and stable across releases (JobKeys are themselves
// SHA-256 hex, so routing inherits the job identity's collision resistance).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
