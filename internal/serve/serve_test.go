package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/trace"
)

// tinyRunner mirrors the exp package's test helper: short horizons, small
// suite, fast enough for unit tests.
func tinyRunner(t *testing.T) *exp.Runner {
	t.Helper()
	r := exp.NewRunner()
	r.Base.WarmupCycles = 200
	r.Base.MeasureCycles = 600
	var subset []trace.Kernel
	for _, name := range []string{"bfs", "b+tree", "lavaMD"} {
		k, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, k)
	}
	r.Benchmarks = subset
	return r
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = tinyRunner(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post submits raw JSON and returns the response.
func post(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) JobResponse {
	t.Helper()
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSubmitRunsAndDedupes(t *testing.T) {
	r := tinyRunner(t)
	s, ts := newTestServer(t, Config{Runner: r})

	resp := post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
	first := decodeJob(t, resp)
	if first.Cached {
		t.Fatal("fresh job reported cached")
	}
	if first.Result.Benchmark != "bfs" || first.Result.Scheme != core.AdaARI {
		t.Fatalf("wrong result identity: %+v", first.Result)
	}
	wantCfg := r.Base
	wantCfg.Scheme = core.AdaARI
	if first.Key != exp.JobKey(wantCfg, "bfs") {
		t.Fatalf("key = %q, want JobKey of the resolved config", first.Key)
	}

	// Identical resubmission: idempotent, answered from the store.
	second := decodeJob(t, post(t, ts.URL, `{"bench":"bfs","scheme":"Ada-ARI"}`))
	if !second.Cached {
		t.Fatal("duplicate job not served from cache")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("cached result differs from the original")
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
	st := s.Stats()
	if st.Completed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 completed / 1 cache hit", st)
	}
}

func TestSubmitFullConfigOverride(t *testing.T) {
	r := tinyRunner(t)
	_, ts := newTestServer(t, Config{Runner: r})
	cfg := r.Base
	cfg.Scheme = core.XYARI
	cfg.Seed = 7
	body, err := json.Marshal(JobRequest{Bench: "lavaMD", Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
	out := decodeJob(t, resp)
	if out.Key != exp.JobKey(cfg, "lavaMD") {
		t.Fatal("full-config job keyed differently from its config")
	}
	// The server must have simulated exactly this config.
	if res, ok := r.Lookup(cfg, "lavaMD"); !ok || !reflect.DeepEqual(res, out.Result) {
		t.Fatal("result not stored under the submitted config")
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{`,                       // malformed JSON
		`{"bench":"nosuchbench"}`, // unknown benchmark
		`{"bench":"bfs","scheme":"nosuchscheme"}`,  // unknown scheme
		`{"bench":"bfs","config":{"MeshWidth":0}}`, // invalid config
	} {
		resp := post(t, ts.URL, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status = %v, want 400", body, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: status = %v, want 405", resp.Status)
	}
}

func TestJobDeadlinePropagatesAndCancels(t *testing.T) {
	r := tinyRunner(t)
	r.Base.MeasureCycles = 1 << 40 // would run for hours
	s, ts := newTestServer(t, Config{Runner: r})

	start := time.Now()
	resp := post(t, ts.URL, `{"bench":"bfs","timeout_ms":50}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %v, want 504", resp.Status)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("deadline enforced only after %s", took)
	}
	// The expired job must be cancelled, not orphaned: its slots free up.
	waitFor(t, time.Second, func() bool { return s.Stats().Admitted == 0 })
}

func TestHealthAndReadinessFlipOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) *http.Response {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if get("/healthz").StatusCode != http.StatusOK {
		t.Fatal("healthz not ok")
	}
	if get("/readyz").StatusCode != http.StatusOK {
		t.Fatal("readyz not ok before drain")
	}

	s.BeginDrain()
	if get("/healthz").StatusCode != http.StatusOK {
		t.Fatal("healthz must stay ok while draining (process is alive)")
	}
	rz := get("/readyz")
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %v after drain, want 503", rz.Status)
	}
	// Admission is closed: new submissions are rejected retryably.
	resp := post(t, ts.URL, `{"bench":"bfs"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %v, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain rejection missing Retry-After")
	}
}

func TestCachedResultsServedWhileDraining(t *testing.T) {
	r := tinyRunner(t)
	s, ts := newTestServer(t, Config{Runner: r})
	want := decodeJob(t, post(t, ts.URL, `{"bench":"lavaMD"}`))
	s.BeginDrain()
	resp := post(t, ts.URL, `{"bench":"lavaMD"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached job while draining = %v, want 200", resp.Status)
	}
	got := decodeJob(t, resp)
	if !got.Cached || !reflect.DeepEqual(got.Result, want.Result) {
		t.Fatal("cached result unavailable or wrong while draining")
	}
}

func TestNewRequiresRunner(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Runner succeeded")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
