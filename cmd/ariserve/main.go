// Command ariserve runs the simulation job server: a long-lived,
// crash-safe, load-shedding HTTP service over the hardened experiment
// harness (internal/serve).
//
// Usage:
//
//	ariserve                                  # serve on 127.0.0.1:8080
//	ariserve -addr :9000 -journal runs.jsonl  # crash-safe across SIGKILL
//	ariserve -inflight 4 -queue 8             # admission bounds
//	ariserve -drain-timeout 1m                # graceful-drain budget
//	ariserve -timeout 5m -retries 1           # per-run cap + transient retry
//	ariserve -peers http://b:8080,http://c:8080   # cluster: adopt peer results
//
// API:
//
//	POST /v1/jobs         {"bench":"bfs","scheme":"Ada-ARI","timeout_ms":60000}
//	GET  /v1/stats        admission/shed/service-time counters
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 once draining)
//	GET  /metrics         Prometheus text: server counters, per-job progress
//	                      (cycles, cycles/sec, ETA, watchdog state), runtime
//	GET  /debug/nocstate  JSON NoC state snapshot of every in-flight job
//	GET  /debug/pprof/    CPU/heap/goroutine profiling (net/http/pprof)
//	GET  /debug/spans     recorded spans (?trace= filters by trace ID)
//	GET  /debug/trace     Chrome trace of one trace ID (default: latest)
//	GET  /debug/slo       job-latency burn-rate report (JSON)
//
// An overloaded server sheds submissions with 429 + Retry-After instead of
// queueing unboundedly; SIGTERM/SIGINT stops admission, finishes in-flight
// jobs under -drain-timeout, then aborts stragglers. With -journal, a
// SIGKILL'd server restarts with every completed job intact and re-runs
// only what was in flight — byte-identically, because the simulator is
// deterministic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/serve"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sigs); err != nil {
		fmt.Fprintln(os.Stderr, "ariserve:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it serves until a signal arrives on
// sigs (or the listener fails), drains, and returns. The bound address is
// announced on stderr so tests can serve on :0.
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal) error {
	fs := flag.NewFlagSet("ariserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		journal  = fs.String("journal", "", "JSONL job journal; a killed server restarts from it")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM")
		inflight = fs.Int("inflight", 0, "max concurrent simulations (0 = GOMAXPROCS / shards)")
		shards   = fs.Int("shards", 0, "per-run intra-run parallelism: worker shards per simulation (0/1 = serial)")
		queue    = fs.Int("queue", 0, "admitted-but-waiting slots (0 = 2x inflight, negative = none)")
		cycles   = fs.Int64("cycles", 10000, "default measured cycles per run")
		warmup   = fs.Int64("warmup", 3000, "default warmup cycles per run")
		timeout  = fs.Duration("timeout", 0, "per-run wall-time cap (0 = unlimited)")
		retries  = fs.Int("retries", 1, "per-run retries for timed-out runs (transient contention)")
		peers    = fs.String("peers", "", "comma-separated peer ariserve URLs: jobs journalled on a peer are adopted instead of re-run")
		peerTO   = fs.Duration("peer-timeout", time.Second, "per-submission budget for the peer result-fetch")
		traceS   = fs.Int("trace-sample", 0, "start a trace on every Nth un-traced submission (0 disables; incoming X-Ari-Trace is always honoured)")
		tracePk  = fs.Int("trace-packets", 0, "max NoC packet spans linked per traced run (0 = default)")
		pktSamp  = fs.Int("packet-sample", 0, "trace every Nth reply packet of a traced run (0 = default)")
		process  = fs.String("process", "", "process name on exported spans (default ariserve)")
		sloTgt   = fs.Duration("slo-target", 30*time.Second, "job-latency SLO threshold")
		sloGoal  = fs.Float64("slo-goal", 0.99, "job-latency SLO goal (fraction of jobs within the target)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := exp.NewRunner()
	r.Base.MeasureCycles = *cycles
	r.Base.WarmupCycles = *warmup
	r.Base.Shards = *shards
	r.RunTimeout = *timeout
	r.MaxRetries = *retries
	if *journal != "" {
		j, err := exp.OpenJournal(*journal)
		if err != nil {
			return err
		}
		defer j.Close()
		r.Journal = j
		if j.Loaded() > 0 {
			fmt.Fprintf(stderr, "ariserve: resuming, %d jobs journalled in %s\n", j.Loaded(), j.Path())
		}
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}

	s, err := serve.New(serve.Config{
		Runner: r, MaxInFlight: *inflight, QueueDepth: *queue,
		Peers: peerList, PeerTimeout: *peerTO,
		TraceSample: *traceS, TracePackets: *tracePk, PacketSample: *pktSamp,
		Process: *process, SLOTarget: *sloTgt, SLOGoal: *sloGoal,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ariserve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigs:
		fmt.Fprintf(stderr, "ariserve: %v: draining (budget %s)\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "ariserve: drain budget exceeded, aborted in-flight jobs")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := s.Stats()
	fmt.Fprintf(stdout, "ariserve: drained; %d completed, %d cache hits, %d shed\n",
		st.Completed, st.CacheHits, st.Shed)
	return nil
}
