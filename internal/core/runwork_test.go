package core

import (
	"testing"

	"repro/internal/trace"
)

// TestRunWorkFixedWorkMode: ARI must complete the same amount of work in
// fewer cycles than the baseline — the execution-time basis the paper's
// energy comparison rests on.
func TestRunWorkFixedWorkMode(t *testing.T) {
	k, _ := trace.ByName("bfs")
	const work = 60000
	runW := func(s Scheme) Result {
		cfg := fastConfig(s)
		sim, err := NewSimulator(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		return sim.RunWork(work, 200000)
	}
	base := runW(AdaBaseline)
	ari := runW(AdaARI)
	if base.Instructions < work || ari.Instructions < work {
		t.Fatalf("work target missed: %d / %d", base.Instructions, ari.Instructions)
	}
	if ari.MeasuredCycles >= base.MeasuredCycles {
		t.Fatalf("ARI took %d cycles for the same work, baseline %d",
			ari.MeasuredCycles, base.MeasuredCycles)
	}
}

// TestRunWorkRespectsCycleBound: the runaway guard must cap the window.
func TestRunWorkRespectsCycleBound(t *testing.T) {
	k, _ := trace.ByName("lavaMD")
	cfg := fastConfig(XYBaseline)
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.RunWork(1<<60, 500)
	if r.MeasuredCycles > 501 {
		t.Fatalf("cycle bound ignored: measured %d", r.MeasuredCycles)
	}
	if r.Instructions == 0 {
		t.Fatal("no progress under bound")
	}
}

// TestRunWorkActivityUsesRealWindow: static energy must be charged for the
// realised window, not the configured horizon.
func TestRunWorkActivityUsesRealWindow(t *testing.T) {
	k, _ := trace.ByName("bfs")
	cfg := fastConfig(XYBaseline)
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.RunWork(5000, 100000)
	if r.Activity.NoCCycles != r.MeasuredCycles {
		t.Fatalf("activity window %d != measured %d", r.Activity.NoCCycles, r.MeasuredCycles)
	}
	if r.MeasuredCycles == cfg.MeasureCycles {
		t.Fatal("suspiciously equal to the configured horizon")
	}
}
