package noc

import (
	"encoding/binary"
	"hash/crc32"
)

// Fault recovery: the end-to-end protocol layer that turns link-level flit
// corruption into a retransmission, instead of a silently wrong delivery.
// It is enabled per network by Config.RetransBufPkts > 0 and has three
// cooperating pieces:
//
//   - Detection. Every packet accepted by a sending NI carries a CRC32
//     checksum over its header identity (Packet.Check). A link traversal
//     inside a corruption window (CorruptLink) marks the flit value bad —
//     the model of a payload bit-flip that a CRC recomputation at the
//     receiver would catch. The ejector accumulates the per-VC bad flag
//     while reassembling and, at the tail flit, drops the whole packet
//     instead of delivering it: the eject handler never sees a corrupted
//     packet.
//
//   - NACK/ACK sideband. On a drop the receiving NI sends a NACK back to
//     the source; on a clean delivery it sends an ACK. Control signals are
//     modelled like credits: an out-of-band sideband that consumes no mesh
//     bandwidth but does pay propagation latency (one cycle per hop of the
//     minimal path plus one). They are written during the serial ejection
//     phase and consumed by the target NI's own shard at least one cycle
//     later, so sharded stepping stays byte-identical to serial.
//
//   - Retransmission. A sending NI retains every accepted packet in a
//     bounded retransmission buffer until the ACK arrives; a full buffer
//     makes CanAccept false, which surfaces to node logic as the same
//     backpressure as a full NI queue (the paper's "data stall in MC").
//     A NACK marks the entry pending, and the NI re-injects the packet
//     through its normal supply path — the baseline FIFO, the ARI split
//     queues, or the MultiPort binding — so recovery traffic exercises the
//     scheme seam like first-try traffic does, preserving the original
//     CreatedAt (latency includes every retransmission round trip) and the
//     original packet ID (in-flight accounting sees one logical packet).
//
// A dropped packet stays logically in flight (inFlight is not decremented
// until a clean copy of it is delivered), so drain loops and the
// event-driven Step early-out remain correct without new bookkeeping;
// pending control signals are tracked by ctlPending so ACK/NACK delivery
// alone keeps the network stepping after the last flit drains.

// RecoveryStats are the cumulative fault-recovery protocol counters of one
// network. They live outside NetStats so encoded Results stay byte-identical
// to pre-recovery golden files; like VAGrants they are never reset by
// ResetStats — consumers take deltas.
type RecoveryStats struct {
	// CorruptFlits counts flits marked bad by a link corruption window.
	CorruptFlits uint64
	// CorruptPackets counts packets dropped at a receiving NI because a
	// flit was bad (every one is NACKed; detection is exhaustive).
	CorruptPackets uint64
	// NacksSent and AcksSent count sideband control signals issued by
	// receiving NIs.
	NacksSent uint64
	AcksSent  uint64
	// RetransPackets / RetransFlits count NACK-triggered re-injections
	// through the normal supply path.
	RetransPackets uint64
	RetransFlits   uint64
	// RetransBufFullRejects counts Offer rejections caused specifically by
	// a full retransmission buffer (unacknowledged packets at the cap).
	RetransBufFullRejects uint64
	// DeadLinks counts mesh links permanently killed by KillLink.
	DeadLinks int
}

// ctlSignal is one ACK or NACK in flight on the control sideband toward the
// source NI of packet pktID.
type ctlSignal struct {
	pktID uint64
	due   int64
	nack  bool
}

// retransEntry retains one unacknowledged packet at its sending NI. It
// copies the packet's identity instead of holding the *Packet: the eject
// handler may recycle the delivered shell into the pool while the ACK is
// still propagating, so a retransmission always rebuilds a fresh shell.
type retransEntry struct {
	id      uint64
	typ     PacketType
	dst     int
	size    int
	check   uint32
	created int64
	payload any
	// pending marks a NACKed entry waiting to re-enter the injection queue.
	pending bool
}

// PacketCheck returns the CRC32 (IEEE) checksum a sending NI stamps into
// Packet.Check: the model's stand-in for an end-to-end payload CRC, covering
// the header identity that reassembly depends on.
func PacketCheck(p *Packet) uint32 {
	var b [21]byte
	binary.LittleEndian.PutUint64(b[0:], p.ID)
	binary.LittleEndian.PutUint32(b[8:], uint32(p.Src))
	binary.LittleEndian.PutUint32(b[12:], uint32(p.Dst))
	binary.LittleEndian.PutUint32(b[16:], uint32(p.Size))
	b[20] = byte(p.Type)
	return crc32.ChecksumIEEE(b[:])
}

// recoveryOn reports whether the fault-recovery protocol layer is enabled.
func (n *Network) recoveryOn() bool { return n.cfg.RetransBufPkts > 0 }

// RecoveryStats returns the cumulative recovery counters (folded).
func (n *Network) RecoveryStats() RecoveryStats {
	n.fold()
	return n.recovery
}

// CtlPending returns the number of ACK/NACK sideband signals still in
// flight (folded); drain loops include it via Idle.
func (n *Network) CtlPending() int {
	n.fold()
	return n.ctlPending
}

// sendCtl issues one sideband control signal from the receiving node toward
// the source NI of pktID. Called only from the serial ejection phase, so
// appends to any NI inbox are race-free and in deterministic node order;
// the signal becomes visible to the target NI's shard next cycle at the
// earliest (due is always > now).
func (n *Network) sendCtl(from, to int, pktID uint64, nack bool, now int64) {
	due := now + 1 + int64(n.cfg.Mesh.Hops(from, to))
	n.nis[to].inbox = append(n.nis[to].inbox, ctlSignal{pktID: pktID, due: due, nack: nack})
	n.ctlPending++
	if nack {
		n.recovery.NacksSent++
	} else {
		n.recovery.AcksSent++
	}
}

// dropCorrupt handles a corrupted tail at node's ejector: count the drop and
// NACK the source. The packet stays logically in flight — inFlight is only
// decremented by the eventual clean delivery — so drain detection needs no
// special case for packets awaiting retransmission.
func (n *Network) dropCorrupt(node int, pkt *Packet, now int64) {
	n.recovery.CorruptPackets++
	n.sendCtl(node, pkt.Src, pkt.ID, true, now)
}

// protoActive reports whether the NI has recovery-protocol work: control
// signals to consume or NACKed packets to re-inject. It is the event-driven
// stepping predicate that keeps a quiescent-queue NI scheduled while the
// protocol still owes it work.
func (ni *NI) protoActive() bool {
	return ni.retransCap > 0 && (len(ni.inbox) > 0 || ni.retransPending > 0)
}

// stepProtocol consumes due control signals and re-injects at most one
// NACKed packet per cycle through the normal supply path. Runs inside
// ni.step, i.e. in the NI's own shard, strictly before the supply stage.
func (ni *NI) stepProtocol(now int64) {
	if len(ni.inbox) > 0 {
		kept := ni.inbox[:0]
		for _, c := range ni.inbox {
			if c.due > now {
				kept = append(kept, c)
				continue
			}
			ni.sh.ctr.ctlConsumed++
			if c.nack {
				ni.nackRetrans(c.pktID)
			} else {
				ni.ackRetrans(c.pktID)
			}
		}
		ni.inbox = kept
	}
	if ni.retransPending > 0 {
		ni.tryRetransmit(now)
	}
}

// ackRetrans releases the retransmission-buffer slot of pktID.
func (ni *NI) ackRetrans(pktID uint64) {
	for i := range ni.retrans {
		if ni.retrans[i].id == pktID {
			if ni.retrans[i].pending {
				ni.retransPending--
			}
			ni.retrans[i].payload = nil
			ni.retrans = append(ni.retrans[:i], ni.retrans[i+1:]...)
			return
		}
	}
	panic("noc: ACK for a packet not in the retransmission buffer")
}

// nackRetrans marks pktID's entry for retransmission.
func (ni *NI) nackRetrans(pktID uint64) {
	for i := range ni.retrans {
		if ni.retrans[i].id == pktID {
			if !ni.retrans[i].pending {
				ni.retrans[i].pending = true
				ni.retransPending++
			}
			return
		}
	}
	panic("noc: NACK for a packet not in the retransmission buffer")
}

// tryRetransmit re-injects the oldest NACKed packet when its queue has room.
// The rebuilt shell keeps the original ID, checksum and CreatedAt; counters
// that already saw the first transmission (inFlight, PacketsInjected) are
// not incremented again — a retransmission is the same logical packet.
func (ni *NI) tryRetransmit(now int64) {
	idx := -1
	for i := range ni.retrans {
		if ni.retrans[i].pending {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	e := &ni.retrans[idx]
	pkt := &Packet{
		ID:        e.id,
		Type:      e.typ,
		Src:       ni.node,
		Dst:       e.dst,
		Size:      e.size,
		Check:     e.check,
		CreatedAt: e.created,
		Payload:   e.payload,
	}
	if ni.net.cfg.PriorityLevels >= 2 {
		pkt.Priority = ni.net.cfg.PriorityLevels - 1
	}
	var q *flitQueue
	if ni.mode == NISplit {
		v := ni.pickSplitQueue(pkt)
		if v < 0 {
			return // no split queue has room: retry next cycle
		}
		q = ni.splitQueues[v]
	} else {
		if ni.queue.free() < e.size {
			return // queue full: retry next cycle
		}
		q = ni.queue
	}
	for s := 0; s < e.size; s++ {
		q.push(flit{pkt: pkt, seq: s})
	}
	ni.addQueued(e.size)
	ni.everHeld = true
	ni.occupancy.Set(float64(ni.queuedFlits()), now)
	e.pending = false
	ni.retransPending--
	ni.sh.ctr.retransPackets++
	ni.sh.ctr.retransFlits += uint64(e.size)
}
