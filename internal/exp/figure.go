package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Figure is one regenerated table/figure: a printable table plus headline
// values used by EXPERIMENTS.md and the regression tests.
type Figure struct {
	ID    string
	Title string
	// Paper states what the paper reports for the headline metric.
	Paper string
	Table *stats.Table
	// Summary holds the headline numbers (e.g. "avg_ipc_gain" -> 0.154).
	Summary map[string]float64
	Notes   []string
}

// String renders the figure for terminal output.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	if f.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", f.Paper)
	}
	if f.Table != nil {
		b.WriteString(f.Table.String())
	}
	if len(f.Summary) > 0 {
		keys := make([]string, 0, len(f.Summary))
		for k := range f.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "measured %s = %.4f\n", k, f.Summary[k])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// GenFunc generates one figure.
type GenFunc func(r *Runner) (*Figure, error)

// Registry maps figure ids to their generators, in paper order.
func Registry() []struct {
	ID  string
	Gen GenFunc
} {
	return []struct {
		ID  string
		Gen GenFunc
	}{
		{"table1", TableI},
		{"3", Fig3},
		{"4", Fig4},
		{"5", Fig5},
		{"util", LinkUtil},
		{"6", Fig6},
		{"enhanced", EnhancedBaseline},
		{"sizing", SpeedupSizing},
		{"9", Fig9},
		{"10", Fig10},
		{"11", Fig11},
		{"12", Fig12},
		{"13", Fig13},
		{"14", Fig14},
		{"15", Fig15},
		{"16", Fig16},
		{"scale", Scalability},
		{"area", AreaOverhead},
		{"placement", PlacementAblation},
		{"stability", SeedStability},
		{"fault", FaultFigure},
		{"loadlat", LoadLatency},
		{"analytic", AnalyticComparison},
	}
}

// Generate produces the figure with the given id.
func Generate(r *Runner, id string) (*Figure, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen(r)
		}
	}
	return nil, fmt.Errorf("exp: unknown figure %q", id)
}

// pct formats a ratio change as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// safeDiv returns a/b or 0.
func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
