package noc

import (
	"fmt"

	"repro/internal/par"
)

// Sharded stepping partitions the mesh into K row-contiguous shards that
// step in parallel, with results byte-identical to serial stepping. The key
// observation is that the existing cycle structure is already two-phase:
// every cross-router interaction (flit traversal, credit return) is staged
// into a buffer that is only *read* at the start of the next cycle. Within
// a cycle, phases A (applyArrivals .. switchAllocate) of different routers
// therefore commute — except that the staging buffers themselves are plain
// slices, so two shards must not touch the same one concurrently.
//
// The parallel schedule:
//
//  1. compute: every shard runs phases A over its own routers/NIs/ejectors.
//     Writes that would cross a shard boundary (a flit staged toward a
//     neighbour router, a credit returned to an upstream output port) are
//     diverted into per-shard outboxes instead of the target's buffers —
//     partitioned by *destination* shard at staging time, which is what
//     makes phase 2 parallel.
//  2. barrier, then commit — in parallel: worker d drains, from every
//     source shard in ascending shard order, exactly the outbox entries
//     destined for shard d. Workers therefore write disjoint state (only
//     shard d's input buffers, credit counters and activity slots), and the
//     observable order is the serial one: each inputPort has exactly one
//     upstream router, hence exactly one source shard, so the port's
//     arrival order equals that single source's staging order — the same
//     order the old serial shard-order commit (and serial stepping itself)
//     produced. Credit commits are integer additions and commute. See
//     DESIGN.md §16 for the full determinism argument.
//  3. eject: ejector consumption runs serially in node order. It is the one
//     phase with global side effects (float latency accumulation, the
//     ejection callback into node logic, inFlight retirement), and node
//     order is exactly the serial schedule.
//
// Statistics counters incremented inside phase A are redirected to
// per-shard delta structs and folded into the Network aggregates at step
// boundaries, so concurrent increments never share a memory location and
// the folded totals match serial counts (integer addition commutes).

// shardCounters are the per-shard deltas of every counter that phase A (or
// node-side injection, which the core layer also fans out by shard)
// increments. fold() drains them into the Network aggregates.
type shardCounters struct {
	packetsInjected   [NumPacketTypes]uint64
	flitsInjected     [NumPacketTypes]uint64
	niFullRejects     uint64
	injLinkFlits      uint64
	meshLinkFlits     uint64
	switchTraversals  uint64
	creditStallCycles uint64
	vaGrants          uint64
	inFlight          int
	injWindow         uint32
	// Fault-recovery deltas (recovery.go): corruption marking happens in
	// traverse, retransmission and control-signal consumption in ni.step —
	// all phase-A work, so they take the same per-shard path as the rest.
	corruptFlits       uint64
	retransPackets     uint64
	retransFlits       uint64
	retransFullRejects uint64
	ctlConsumed        uint64
	// pktIDNext/pktIDStride give each shard a disjoint packet-ID sequence
	// (shard i issues i+1, i+1+K, ...), so concurrent injection needs no
	// shared counter. IDs are not part of encoded Results; with one shard
	// the sequence 1,2,3,... is identical to the historical serial one.
	pktIDNext   uint64
	pktIDStride uint64
}

// remoteFlit is a flit staged toward an input port owned by another shard.
type remoteFlit struct {
	dst *inputPort
	sf  stagedFlit
}

// remoteCredit is a credit returned to an output port owned by another shard.
type remoteCredit struct {
	op *outputPort
	vc int
}

// netShard is one spatial partition of the mesh: a contiguous node range,
// the SoA activity state of its components, and the outboxes and counter
// deltas of its worker.
type netShard struct {
	index    int
	lo, hi   int // node range [lo, hi)
	routers  []*router
	ejectors []*ejector
	nis      []*NI
	// proto mirrors Config.RetransBufPkts > 0: the NI stepping predicate
	// must also consult protocol activity (ACK/NACK inboxes, pending
	// retransmissions) when the recovery layer is on.
	proto bool

	// SoA activity counters (soa.go), indexed by node id - lo and carved
	// from one cache-line-aligned block per shard: routerFlits[i] counts
	// flits resident in router lo+i (VC buffers plus staged arrivals),
	// ejectFlits[i] the same for its ejector, niQueued[i] the flits queued
	// in its NI. They are the O(1) activity predicates of event-driven
	// stepping; CheckInvariants asserts they equal a full recount.
	routerFlits []int32
	ejectFlits  []int32
	niQueued    []int32

	ctr shardCounters
	// _ pads the phase-A-hot counter deltas away from the outbox slice
	// headers below, which the same worker mutates on a different cadence;
	// the shard structs themselves are separate allocations, so cross-shard
	// sharing is already impossible.
	_ [cacheLine]byte

	// outFlits[d] / outCredits[d] stage boundary crossings destined for
	// shard d (only adjacent shards exchange traffic under row-contiguous
	// partitioning, but indexing by destination keeps the commit fully
	// general). The commit phase drains them with shard d's worker.
	outFlits   [][]remoteFlit
	outCredits [][]remoteCredit
}

// step runs phases A for every component of the shard. scan selects the
// scan-everything reference loop; otherwise the event-driven predicates
// apply per component, read from the dense per-shard activity arrays (a
// fully idle shard degenerates to three linear int32 sweeps that touch no
// component struct at all).
func (s *netShard) step(now int64, scan bool) {
	if scan {
		for _, r := range s.routers {
			r.applyArrivals(now)
		}
		for _, e := range s.ejectors {
			e.applyArrivals(now)
		}
		for _, ni := range s.nis {
			ni.step(now)
		}
		for _, r := range s.routers {
			r.routeCompute(now)
		}
		for _, r := range s.routers {
			r.vcAllocate(now)
		}
		for _, r := range s.routers {
			r.switchAllocate(now)
		}
		return
	}
	for i, f := range s.routerFlits {
		if f > 0 {
			s.routers[i].applyArrivals(now)
		}
	}
	for i, f := range s.ejectFlits {
		if f > 0 {
			s.ejectors[i].applyArrivals(now)
		}
	}
	for i, q := range s.niQueued {
		if q > 0 || (s.proto && s.nis[i].protoActive()) {
			s.nis[i].step(now)
		}
	}
	for i, f := range s.routerFlits {
		if f > 0 {
			s.routers[i].routeCompute(now)
		}
	}
	for i, f := range s.routerFlits {
		if f > 0 {
			s.routers[i].vcAllocate(now)
		}
	}
	for i, f := range s.routerFlits {
		if f > 0 {
			s.routers[i].switchAllocate(now)
		}
	}
}

// ShardRanges partitions the mesh's node ids into k row-contiguous ranges
// (shard i covers rows [i*H/k, (i+1)*H/k)). k is clamped to [1, Height] so
// every shard owns at least one full row; callers that fan node logic out
// over the same workers must use these exact ranges so a node's NI is only
// ever injected into from its own shard's worker.
func ShardRanges(m Mesh, k int) [][2]int {
	k = EffectiveShards(m, k)
	ranges := make([][2]int, k)
	for i := 0; i < k; i++ {
		loRow := i * m.Height / k
		hiRow := (i + 1) * m.Height / k
		ranges[i] = [2]int{loRow * m.Width, hiRow * m.Width}
	}
	return ranges
}

// EffectiveShards clamps a requested shard count to what the mesh supports:
// at least 1, at most one shard per row.
func EffectiveShards(m Mesh, k int) int {
	if k < 1 {
		return 1
	}
	if k > m.Height {
		return m.Height
	}
	return k
}

// buildShards installs a k-way partition (k already clamped). Every router,
// NI and ejector learns its shard and its slot in the shard's activity
// arrays, boundary-crossing links are marked with their destination shard
// so traverse diverts them through the right outbox, and any activity
// counts from a previous partition are carried over.
func (n *Network) buildShards(k int) {
	// Snapshot the activity counters of the outgoing partition (zero on
	// first build): re-sharding must not lose in-flight state.
	nodes := n.cfg.Mesh.Nodes()
	var oldR, oldE, oldQ []int32
	if n.shards != nil {
		oldR = make([]int32, nodes)
		oldE = make([]int32, nodes)
		oldQ = make([]int32, nodes)
		for _, s := range n.shards {
			copy(oldR[s.lo:s.hi], s.routerFlits)
			copy(oldE[s.lo:s.hi], s.ejectFlits)
			copy(oldQ[s.lo:s.hi], s.niQueued)
		}
	}
	ranges := ShardRanges(n.cfg.Mesh, k)
	n.shards = make([]*netShard, len(ranges))
	for i, rg := range ranges {
		s := &netShard{
			index:      i,
			lo:         rg[0],
			hi:         rg[1],
			routers:    n.routers[rg[0]:rg[1]],
			ejectors:   n.ejectors[rg[0]:rg[1]],
			nis:        n.nis[rg[0]:rg[1]],
			proto:      n.cfg.RetransBufPkts > 0,
			outFlits:   make([][]remoteFlit, len(ranges)),
			outCredits: make([][]remoteCredit, len(ranges)),
		}
		ns := rg[1] - rg[0]
		block := alignedInt32s(3 * ns)
		s.routerFlits = block[0*ns : 1*ns : 1*ns]
		s.ejectFlits = block[1*ns : 2*ns : 2*ns]
		s.niQueued = block[2*ns : 3*ns : 3*ns]
		if oldR != nil {
			copy(s.routerFlits, oldR[s.lo:s.hi])
			copy(s.ejectFlits, oldE[s.lo:s.hi])
			copy(s.niQueued, oldQ[s.lo:s.hi])
		}
		s.ctr.pktIDNext = uint64(i + 1)
		s.ctr.pktIDStride = uint64(len(ranges))
		for j, r := range s.routers {
			r.sh = s
			r.lidx = int32(j)
		}
		for j, e := range s.ejectors {
			e.sh = s
			e.lidx = int32(j)
		}
		for j, ni := range s.nis {
			ni.sh = s
			ni.lidx = int32(j)
		}
		n.shards[i] = s
	}
	// Mark boundary links: an output port whose destination router lives in
	// another shard, and an input port whose upstream output port does. The
	// destination/upstream shard index is precomputed so traverse can stage
	// into the per-destination outbox without chasing pointers.
	for _, r := range n.routers {
		for _, op := range r.out {
			op.remote = op.destPort != nil && op.destPort.router.sh != r.sh
			if op.remote {
				op.remoteShard = int32(op.destPort.router.sh.index)
			} else {
				op.remoteShard = -1
			}
		}
		for _, ip := range r.in {
			ip.remoteUpstream = ip.upstream != nil && ip.upstream.router.sh != r.sh
			if ip.remoteUpstream {
				ip.upstreamShard = int32(ip.upstream.router.sh.index)
			} else {
				ip.upstreamShard = -1
			}
		}
	}
	n.sharded = len(n.shards) > 1
	if n.shardStepFn == nil {
		n.shardStepFn = func(i int) { n.shards[i].step(n.now, n.scan) }
	}
	if n.commitFn == nil {
		n.commitFn = func(d int) { n.commitShard(d) }
	}
}

// SetShards partitions the network into k parallel stepping shards (clamped
// to [1, mesh height]; see EffectiveShards) and returns the effective count.
// pool supplies the workers; nil makes the network own a pool sized to the
// shard count, released by Close. Call it on a quiescent network — before
// traffic, or between drained runs — and never while tracing is enabled
// (tracer callbacks are synchronous and would race across shards).
func (n *Network) SetShards(k int, pool *par.Pool) (int, error) {
	if n.inFlight != 0 {
		return 0, fmt.Errorf("noc: SetShards on a network with %d packets in flight", n.inFlight)
	}
	k = EffectiveShards(n.cfg.Mesh, k)
	if k > 1 && n.tracer != nil {
		return 0, fmt.Errorf("noc: packet tracing is incompatible with %d-way sharded stepping", k)
	}
	n.fold()
	// Re-sharding keeps packet IDs unique: every already-issued ID is below
	// some shard's next-ID cursor, so the new sequences start past the max.
	// On a fresh network base is 0 and shard i starts at i+1 with stride k
	// (k=1 reproduces the historical serial sequence 1, 2, 3, ...).
	base := uint64(0)
	for _, s := range n.shards {
		if s.ctr.pktIDNext > base+1 {
			base = s.ctr.pktIDNext - 1
		}
	}
	n.buildShards(k)
	for i, s := range n.shards {
		s.ctr.pktIDNext = base + uint64(i) + 1
		s.ctr.pktIDStride = uint64(k)
	}
	if n.ownPool != nil {
		n.ownPool.Close()
		n.ownPool = nil
	}
	if pool == nil && k > 1 {
		pool = par.New(k)
		n.ownPool = pool
	}
	n.stepPool = pool
	return k, nil
}

// Shards returns the current shard count (1 when serial).
func (n *Network) Shards() int { return len(n.shards) }

// Close releases the worker pool a SetShards(k, nil) call made the network
// own. Safe to call on any network, any number of times.
func (n *Network) Close() {
	if n.ownPool != nil {
		n.ownPool.Close()
		n.ownPool = nil
		n.stepPool = nil
	}
}

// fold drains every shard's counter deltas into the Network aggregates.
// Called at step boundaries and from accessors, so observers (which hold
// &n.stats) always read fully folded totals between steps.
func (n *Network) fold() {
	for _, s := range n.shards {
		c := &s.ctr
		for t := range c.packetsInjected {
			n.stats.PacketsInjected[t] += c.packetsInjected[t]
			n.stats.FlitsInjected[t] += c.flitsInjected[t]
			c.packetsInjected[t] = 0
			c.flitsInjected[t] = 0
		}
		n.stats.NIFullRejects += c.niFullRejects
		n.stats.InjLinkFlits += c.injLinkFlits
		n.stats.MeshLinkFlits += c.meshLinkFlits
		n.stats.SwitchTraversals += c.switchTraversals
		n.stats.CreditStallCycles += c.creditStallCycles
		n.vaGrants += c.vaGrants
		n.inFlight += c.inFlight
		n.injWindowCount += c.injWindow
		n.recovery.CorruptFlits += c.corruptFlits
		n.recovery.RetransPackets += c.retransPackets
		n.recovery.RetransFlits += c.retransFlits
		n.recovery.RetransBufFullRejects += c.retransFullRejects
		n.ctlPending -= int(c.ctlConsumed)
		c.niFullRejects = 0
		c.injLinkFlits = 0
		c.meshLinkFlits = 0
		c.switchTraversals = 0
		c.creditStallCycles = 0
		c.vaGrants = 0
		c.inFlight = 0
		c.injWindow = 0
		c.corruptFlits = 0
		c.retransPackets = 0
		c.retransFlits = 0
		c.retransFullRejects = 0
		c.ctlConsumed = 0
	}
}

// commitShards drains the per-shard outboxes into their targets, in
// parallel: worker d commits everything destined for shard d, scanning
// source shards in ascending order. Workers write disjoint state (only
// their own shard's input buffers, credit counters and activity slots), and
// the result is byte-identical to the old serial shard-order drain: each
// input port has exactly one upstream router, hence one source shard, so
// its arrival order is that source's staging order under either schedule;
// credit commits are commutative integer additions.
func (n *Network) commitShards() {
	staged := 0
	for _, s := range n.shards {
		for d := range s.outFlits {
			staged += len(s.outFlits[d]) + len(s.outCredits[d])
		}
	}
	if staged == 0 {
		return
	}
	n.stepPool.Run(len(n.shards), n.commitFn)
}

// commitShard lands every staged boundary crossing destined for shard d.
// Pointers in drained entries are cleared so retired packets do not linger
// reachable through outbox backing arrays.
func (n *Network) commitShard(d int) {
	for _, s := range n.shards {
		flits := s.outFlits[d]
		for i := range flits {
			rf := &flits[i]
			rf.dst.arrivals = append(rf.dst.arrivals, rf.sf)
			rf.dst.router.addFlits(1)
			rf.dst = nil
			rf.sf.f.pkt = nil
		}
		s.outFlits[d] = flits[:0]
		credits := s.outCredits[d]
		for i := range credits {
			credits[i].op.creditIn[credits[i].vc]++
			credits[i].op = nil
		}
		s.outCredits[d] = credits[:0]
	}
}
