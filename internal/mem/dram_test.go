package mem

import (
	"testing"
	"testing/quick"
)

func testDRAM() *DRAM {
	return NewDRAM(DefaultDRAMConfig())
}

func drainOne(t *testing.T, d *DRAM, limit int) *Transaction {
	t.Helper()
	for i := 0; i < limit; i++ {
		d.Tick()
		var out []*Transaction
		out = d.TakeCompleted(out, nil)
		if len(out) > 0 {
			return out[0]
		}
	}
	t.Fatalf("no completion within %d cycles", limit)
	return nil
}

func TestDRAMReadCompletes(t *testing.T) {
	d := testDRAM()
	txn := &Transaction{ID: 1, Addr: 0}
	if !d.Enqueue(txn, false) {
		t.Fatal("enqueue rejected on empty queue")
	}
	got := drainOne(t, d, 1000)
	if got != txn {
		t.Fatal("wrong transaction completed")
	}
	if d.Reads != 1 || d.Writes != 0 {
		t.Fatalf("reads=%d writes=%d", d.Reads, d.Writes)
	}
}

func TestDRAMClosedRowTiming(t *testing.T) {
	// First access to a closed bank: ACT at t, RD at t+tRCD, data start
	// t+tRCD+tCL, end +burst. With Table I numbers: 12+12+8 = 32 cycles
	// minimum after issue (issue happens on the first tick).
	d := testDRAM()
	d.Enqueue(&Transaction{ID: 1, Addr: 0}, false)
	cycles := 0
	for {
		d.Tick()
		cycles++
		var out []*Transaction
		if out = d.TakeCompleted(out, nil); len(out) > 0 {
			break
		}
		if cycles > 100 {
			t.Fatal("no completion")
		}
	}
	want := 1 + 12 + 12 + 8 // tick of issue + tRCD + tCL + burst
	if cycles != want {
		t.Fatalf("closed-row read took %d cycles, want %d", cycles, want)
	}
}

func TestDRAMRowHitFasterThanConflict(t *testing.T) {
	cfg := DefaultDRAMConfig()
	// Same row twice.
	d1 := NewDRAM(cfg)
	d1.Enqueue(&Transaction{ID: 1, Addr: 0}, false)
	drainOne(t, d1, 1000)
	start := d1.now
	d1.Enqueue(&Transaction{ID: 2, Addr: 128}, false)
	drainOne(t, d1, 1000)
	hitLat := d1.now - start

	// Row conflict: same bank, different row (same bank id needs a stride
	// of RowBytes*Banks).
	d2 := NewDRAM(cfg)
	d2.Enqueue(&Transaction{ID: 1, Addr: 0}, false)
	drainOne(t, d2, 1000)
	start = d2.now
	d2.Enqueue(&Transaction{ID: 2, Addr: uint64(cfg.RowBytes * cfg.Banks)}, false)
	drainOne(t, d2, 1000)
	confLat := d2.now - start

	if hitLat >= confLat {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitLat, confLat)
	}
	if d1.RowHits != 1 {
		t.Fatalf("row hits = %d, want 1", d1.RowHits)
	}
	if d2.RowMisses != 2 {
		t.Fatalf("row misses = %d, want 2", d2.RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)
	// Open a row on bank 0.
	d.Enqueue(&Transaction{ID: 1, Addr: 0}, false)
	drainOne(t, d, 1000)
	// Enqueue a conflict (older) then a row hit (younger) on bank 0.
	conflict := &Transaction{ID: 2, Addr: uint64(cfg.RowBytes * cfg.Banks)}
	hit := &Transaction{ID: 3, Addr: 256}
	d.Enqueue(conflict, false)
	d.Enqueue(hit, false)
	first := drainOne(t, d, 1000)
	if first != hit {
		t.Fatalf("FR-FCFS served the conflict before the row hit")
	}
}

func TestDRAMQueueBackpressure(t *testing.T) {
	cfg := DefaultDRAMConfig()
	cfg.QueueCap = 2
	d := NewDRAM(cfg)
	if !d.Enqueue(&Transaction{ID: 1, Addr: 0}, false) ||
		!d.Enqueue(&Transaction{ID: 2, Addr: 128}, false) {
		t.Fatal("enqueues under capacity rejected")
	}
	if d.Enqueue(&Transaction{ID: 3, Addr: 256}, false) {
		t.Fatal("enqueue beyond capacity accepted")
	}
	if d.QueueStalls != 1 {
		t.Fatalf("QueueStalls = %d, want 1", d.QueueStalls)
	}
}

func TestDRAMWritebackCallback(t *testing.T) {
	d := testDRAM()
	wb := &Transaction{ID: 9, Addr: 0, IsWrite: true}
	d.Enqueue(wb, true)
	var gotWB *Transaction
	for i := 0; i < 1000; i++ {
		d.Tick()
		var out []*Transaction
		out = d.TakeCompleted(out, func(t *Transaction) { gotWB = t })
		if len(out) > 0 {
			t.Fatal("writeback surfaced as a normal completion")
		}
		if gotWB != nil {
			break
		}
	}
	if gotWB != wb {
		t.Fatal("writeback completion not delivered via callback")
	}
}

// TestDRAMConservationQuick: every enqueued transaction completes exactly
// once, for arbitrary small batches.
func TestDRAMConservationQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		d := testDRAM()
		want := make(map[uint64]int)
		pending := 0
		for _, a := range addrs[:min(len(addrs), 16)] {
			txn := &Transaction{ID: uint64(a) + 1, Addr: uint64(a) * 128}
			if d.Enqueue(txn, false) {
				want[txn.ID]++
				pending++
			}
		}
		for i := 0; i < 20000 && pending > 0; i++ {
			d.Tick()
			var out []*Transaction
			for _, txn := range d.TakeCompleted(out, nil) {
				want[txn.ID]--
				pending--
			}
		}
		for _, n := range want {
			if n != 0 {
				return false
			}
		}
		return pending == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBankParallelism: requests to distinct banks overlap; N requests to N
// banks finish much faster than N serialised conflict accesses to 1 bank.
func TestBankParallelism(t *testing.T) {
	cfg := DefaultDRAMConfig()
	run := func(stride uint64) int64 {
		d := NewDRAM(cfg)
		for i := uint64(0); i < 8; i++ {
			d.Enqueue(&Transaction{ID: i + 1, Addr: i * stride}, false)
		}
		left := 8
		for i := 0; i < 100000 && left > 0; i++ {
			d.Tick()
			var out []*Transaction
			left -= len(d.TakeCompleted(out, nil))
		}
		return d.now
	}
	parallel := run(uint64(cfg.RowBytes))           // distinct banks
	serial := run(uint64(cfg.RowBytes * cfg.Banks)) // same bank, conflicts
	if parallel >= serial {
		t.Fatalf("bank-parallel run (%d) not faster than serial conflicts (%d)", parallel, serial)
	}
}

func TestDRAMConfigValidate(t *testing.T) {
	bad := DefaultDRAMConfig()
	bad.Banks = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero banks accepted")
	}
	bad = DefaultDRAMConfig()
	bad.TRP = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative timing accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
