package stats

import (
	"math"
	"testing"
)

// TestEmptyCollectors locks the zero-sample behaviour of every collector:
// empty means a defined zero, never NaN or a panic — simulation horizons
// short enough to deliver no packets still produce printable results.
func TestEmptyCollectors(t *testing.T) {
	var m Mean
	if v := m.Value(); v != 0 {
		t.Errorf("empty Mean.Value = %v, want 0", v)
	}
	if m.Sum() != 0 || m.Count() != 0 {
		t.Errorf("empty Mean sum/count = %v/%v, want 0/0", m.Sum(), m.Count())
	}

	h := NewHistogram(4, 10)
	if v := h.Mean(); v != 0 {
		t.Errorf("empty Histogram.Mean = %v, want 0", v)
	}
	if v := h.Percentile(99); v != 0 {
		t.Errorf("empty Histogram.Percentile(99) = %v, want 0", v)
	}
	if h.Max() != 0 || h.Count() != 0 {
		t.Errorf("empty Histogram max/count = %v/%v, want 0/0", h.Max(), h.Count())
	}

	var s Series
	if s.Len() != 0 {
		t.Errorf("empty Series.Len = %d", s.Len())
	}
	if tm, v := s.Last(); tm != 0 || v != 0 {
		t.Errorf("empty Series.Last = (%d, %v), want (0, 0)", tm, v)
	}

	var tw TimeWeighted
	if v := tw.Average(); v != 0 {
		t.Errorf("empty TimeWeighted.Average = %v, want 0", v)
	}
}

// TestSingleSamplePercentiles locks the degenerate-distribution case: with
// one sample, every percentile must report that sample's bucket edge.
func TestSingleSamplePercentiles(t *testing.T) {
	for _, tc := range []struct {
		name   string
		sample float64
		want   float64 // bucket lower edge at width 10
	}{
		{"zero", 0, 0},
		{"mid bucket", 15, 10},
		{"bucket boundary", 20, 20},
		{"negative clamps to bucket 0", -5, 0},
		{"overflow reports overflow edge", 1e6, 40},
	} {
		h := NewHistogram(4, 10)
		h.Add(tc.sample)
		for _, p := range []float64{0, 1, 50, 99, 100} {
			if got := h.Percentile(p); got != tc.want {
				t.Errorf("%s: Percentile(%v) = %v, want %v", tc.name, p, got, tc.want)
			}
		}
		if h.Count() != 1 {
			t.Errorf("%s: count %d, want 1", tc.name, h.Count())
		}
	}
}

// TestTimeWeightedWarmupReset locks the warmup-reset delta semantics: a
// collector rebuilt with NewTimeWeightedAt at the reset point must measure
// only the post-reset window, carrying the level across the reset — the
// mid-run stats reset every network performs at warmup end.
func TestTimeWeightedWarmupReset(t *testing.T) {
	for _, tc := range []struct {
		name        string
		level       float64 // level at the reset point
		resetAt     int64
		sets        [][2]float64 // (value, time) after reset
		finish      int64
		wantAvg     float64
		wantPeak    float64
		wantZeroDur bool // window of zero length: average falls back to level
	}{
		{
			name: "level carries across reset", level: 3, resetAt: 1000,
			sets: nil, finish: 1100, wantAvg: 3, wantPeak: 3,
		},
		{
			name: "post-reset window only", level: 2, resetAt: 1000,
			sets: [][2]float64{{6, 1050}}, finish: 1100,
			// 2 for 50 cycles, then 6 for 50 cycles.
			wantAvg: 4, wantPeak: 6,
		},
		{
			name: "zero-length window reports current level", level: 5, resetAt: 1000,
			sets: nil, finish: 1000, wantAvg: 5, wantPeak: 5, wantZeroDur: true,
		},
		{
			name: "same-time sets keep last value", level: 1, resetAt: 0,
			sets: [][2]float64{{9, 50}, {2, 50}}, finish: 100,
			// 1 for 50 cycles, then 2 for 50 (the 9 lasted zero time)...
			wantAvg: 1.5, wantPeak: 9,
		},
	} {
		tw := NewTimeWeightedAt(tc.level, tc.resetAt)
		for _, sv := range tc.sets {
			tw.Set(sv[0], int64(sv[1]))
		}
		tw.Finish(tc.finish)
		if got := tw.Average(); math.Abs(got-tc.wantAvg) > 1e-12 {
			t.Errorf("%s: Average = %v, want %v", tc.name, got, tc.wantAvg)
		}
		if got := tw.Peak(); got != tc.wantPeak {
			t.Errorf("%s: Peak = %v, want %v", tc.name, got, tc.wantPeak)
		}
	}
}

// TestGeoMeanEdges locks GeoMean's ignore-non-positive contract on the
// degenerate inputs figure code can produce.
func TestGeoMeanEdges(t *testing.T) {
	for _, tc := range []struct {
		name string
		xs   []float64
		want float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"all non-positive", []float64{0, -1, -2}, 0},
		{"single", []float64{7}, 7},
		{"ignores zeros", []float64{0, 4, 9, 0}, 6},
	} {
		if got := GeoMean(tc.xs); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: GeoMean = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestMeanJSONRoundTripEdges locks the bit-exact accumulator round trip on
// awkward values (the golden files compare encoded bytes).
func TestMeanJSONRoundTripEdges(t *testing.T) {
	for _, add := range [][]float64{
		nil,
		{0},
		{1e-300, 1e300},
		{0.1, 0.2, 0.3},
	} {
		var m Mean
		for _, v := range add {
			m.Add(v)
		}
		data, err := m.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Mean
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Sum() != m.Sum() || back.Count() != m.Count() {
			t.Errorf("round trip of %v: sum/count %v/%v -> %v/%v",
				add, m.Sum(), m.Count(), back.Sum(), back.Count())
		}
	}
}
