package noc

import "fmt"

// Fault hooks: the attachment points internal/fault drives. The stall kinds
// (StallLink, FreezeInputPort, StallNISupply) are pure service stalls — they
// suppress arbitration or supply for a bounded window but never touch
// buffers, credits or ownership, so credit-based flow control absorbs them
// with zero flit loss and CheckInvariants stays clean at every fault
// boundary. Overlapping faults on the same component extend to the furthest
// horizon. CorruptLink and KillLink are the data-fault kinds behind the
// recovery protocol layer (recovery.go): corruption damages flit payloads
// in transit, and a dead link is permanently excluded from routing.

// StallLink stalls output port `port` of node's router until cycle `until`:
// switch allocation never grants the output while stalled, so no flit
// traverses the link (a transient link failure). Ports 0..NumDirections-1
// are the mesh links; port NumDirections is the local ejection link.
func (n *Network) StallLink(node, port int, until int64) {
	if port < 0 || port >= numOutPorts {
		panic(fmt.Sprintf("noc: StallLink port %d out of range [0,%d)", port, numOutPorts))
	}
	op := n.routers[node].out[port]
	if until > op.stalledUntil {
		op.stalledUntil = until
	}
}

// FreezeInputPort freezes input port `port` of node's router until cycle
// `until`: none of its VCs may bid for the switch while frozen, so buffered
// flits sit still and upstream credits stop returning (an input-port
// failure). Ports 0..NumDirections-1 are the mesh inputs; higher indices are
// the injection ports.
func (n *Network) FreezeInputPort(node, port int, until int64) {
	r := n.routers[node]
	if port < 0 || port >= len(r.in) {
		panic(fmt.Sprintf("noc: FreezeInputPort port %d out of range [0,%d)", port, len(r.in)))
	}
	ip := r.in[port]
	if until > ip.frozenUntil {
		ip.frozenUntil = until
	}
}

// StallNISupply stalls node's NI until cycle `until`: it supplies no flits
// to the router, so its queues back up and Offer rejections propagate the
// backpressure burst to the node logic (MC data stalls, core send stalls).
func (n *Network) StallNISupply(node int, until int64) {
	ni := n.nis[node]
	if until > ni.stalledUntil {
		ni.stalledUntil = until
	}
}

// CorruptLink opens a corruption window on output port `port` of node's
// router until cycle `until`: every flit traversing the link while the
// window is open has its payload marked corrupted (flit.bad). Routing and
// flow control are untouched — the damage is only observable to the
// receiving NI's CRC check, which drops and NACKs the packet when recovery
// is enabled (Config.RetransBufPkts > 0) and delivers it silently wrong
// otherwise. Ports 0..NumDirections-1 are the mesh links; port
// NumDirections is the local ejection link.
func (n *Network) CorruptLink(node, port int, until int64) {
	if port < 0 || port >= numOutPorts {
		panic(fmt.Sprintf("noc: CorruptLink port %d out of range [0,%d)", port, numOutPorts))
	}
	op := n.routers[node].out[port]
	if until > op.corruptUntil {
		op.corruptUntil = until
	}
}

// KillLink permanently removes the mesh link on output port `port` of
// node's router. The whole network then switches to the fault-adaptive
// up*/down* routing table (ftable.go): waiting packets everywhere re-route
// through it (every router's deadEpoch is bumped), and new routes detour
// around the dead link deadlock-free. Worms already granted the link drain
// gracefully — switch allocation still serves active owners — so no flit
// is lost at the instant of death. The kill is refused (returns false)
// when there is no link, the link is already dead, or removing it would
// disconnect the graph of bidirectionally-alive links the routing table is
// built on; refusing keeps every fault schedule drainable. Only mesh ports
// can die; the ejection "link" is node-internal.
func (n *Network) KillLink(node, port int) bool {
	if port < 0 || port >= NumDirections {
		panic(fmt.Sprintf("noc: KillLink port %d out of range [0,%d)", port, NumDirections))
	}
	op := n.routers[node].out[port]
	if op.destPort == nil || op.dead {
		return false
	}
	op.dead = true // tentatively, for the connectivity probe
	if !n.aliveBiConnected() {
		op.dead = false
		return false
	}
	n.recovery.DeadLinks++
	n.rebuildFaultTable()
	for _, r := range n.routers {
		r.deadEpoch++
	}
	return true
}

// DeadLinks returns the number of permanently killed mesh links.
func (n *Network) DeadLinks() int { return n.recovery.DeadLinks }

// FaultHorizon returns the furthest fault expiry cycle over all components,
// or 0 when no fault was ever applied. Drain loops use it to know when all
// service stalls have lapsed. Corruption windows count; dead links do not
// (they never expire — drain relies on re-routing, not recovery of the
// link).
func (n *Network) FaultHorizon() int64 {
	var h int64
	for _, r := range n.routers {
		for _, op := range r.out {
			if op.stalledUntil > h {
				h = op.stalledUntil
			}
			if op.corruptUntil > h {
				h = op.corruptUntil
			}
		}
		for _, ip := range r.in {
			if ip.frozenUntil > h {
				h = ip.frozenUntil
			}
		}
	}
	for _, ni := range n.nis {
		if ni.stalledUntil > h {
			h = ni.stalledUntil
		}
	}
	return h
}
