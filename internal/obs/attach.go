package obs

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
)

// AttachSimulator registers the standard probe set over sim's layers on reg
// and installs reg.Sample as sim's sampling hook at reg.Interval() cycles:
//
//   - per-class injection/ejection rates and flit counts for both fabrics;
//   - per-VC occupancy, router/NI buffer levels and in-flight packets;
//   - credit-stall cycles, SA grant (switch traversal) and VA grant rates,
//     link-flit counters and NI-full rejections;
//   - the warp-stall breakdown (issue/LSU-send/MSHR/store-queue stalls),
//     instruction and core-cycle counters, and per-interval IPC.
//
// Call Reserve on the registry afterwards (total cycles / interval samples)
// to make steady-state sampling allocation-free. Attaching never alters
// simulated behaviour.
func AttachSimulator(reg *Registry, sim *core.Simulator) {
	attachFabric(reg, "req", sim.RequestNet())
	if rep, ok := sim.ReplyNet().(*noc.Network); ok {
		attachFabric(reg, "rep", rep)
	} else {
		attachBehaviouralFabric(reg, "rep", sim.ReplyNet())
	}
	attachGPU(reg, sim)
	sim.SetSampler(reg.Interval(), reg.Sample)
}

// attachFabric registers the full mesh-network probe set under the label.
func attachFabric(reg *Registry, label string, n *noc.Network) {
	st := n.Stats()
	for t := 0; t < noc.NumPacketTypes; t++ {
		typ := noc.PacketType(t)
		reg.Counter(fmt.Sprintf("%s.injected_packets.%s", label, typ),
			func() float64 { return float64(st.PacketsInjected[typ]) })
		reg.Counter(fmt.Sprintf("%s.ejected_packets.%s", label, typ),
			func() float64 { return float64(st.PacketsEjected[typ]) })
		reg.Counter(fmt.Sprintf("%s.injected_flits.%s", label, typ),
			func() float64 { return float64(st.FlitsInjected[typ]) })
	}
	reg.Counter(label+".credit_stall_cycles", func() float64 { return float64(st.CreditStallCycles) })
	reg.Counter(label+".sa_grants", func() float64 { return float64(st.SwitchTraversals) })
	reg.Counter(label+".va_grants", func() float64 { return float64(n.VAGrants()) })
	reg.Counter(label+".mesh_link_flits", func() float64 { return float64(st.MeshLinkFlits) })
	reg.Counter(label+".inj_link_flits", func() float64 { return float64(st.InjLinkFlits) })
	reg.Counter(label+".eject_flits", func() float64 { return float64(st.EjectFlits) })
	reg.Counter(label+".ni_full_rejects", func() float64 { return float64(st.NIFullRejects) })
	reg.Gauge(label+".in_flight", func() float64 { return float64(n.InFlight()) })
	reg.Gauge(label+".router_flits", func() float64 { return float64(n.BufferedFlits()) })
	reg.Gauge(label+".ni_queued_flits", func() float64 { return float64(n.NIQueuedFlits()) })
	for v := 0; v < n.Config().VCs; v++ {
		vc := v
		reg.Gauge(fmt.Sprintf("%s.vc_flits.v%d", label, vc),
			func() float64 { return float64(n.VCOccupancy(vc)) })
	}
	// Recovery-protocol counters, only when the layer is enabled: networks
	// without it keep their historical metric set byte-identical.
	if n.Config().RetransBufPkts > 0 {
		reg.Counter(label+".corrupt_flits", func() float64 { return float64(n.RecoveryStats().CorruptFlits) })
		reg.Counter(label+".corrupt_packets", func() float64 { return float64(n.RecoveryStats().CorruptPackets) })
		reg.Counter(label+".nacks_sent", func() float64 { return float64(n.RecoveryStats().NacksSent) })
		reg.Counter(label+".acks_sent", func() float64 { return float64(n.RecoveryStats().AcksSent) })
		reg.Counter(label+".retrans_packets", func() float64 { return float64(n.RecoveryStats().RetransPackets) })
		reg.Counter(label+".retrans_buf_rejects", func() float64 { return float64(n.RecoveryStats().RetransBufFullRejects) })
		reg.Gauge(label+".dead_links", func() float64 { return float64(n.DeadLinks()) })
		reg.Gauge(label+".ctl_pending", func() float64 { return float64(n.CtlPending()) })
	}
}

// attachBehaviouralFabric registers the reduced probe set available on
// fabrics without per-router state (the ideal fabric, the DA2mesh overlay).
func attachBehaviouralFabric(reg *Registry, label string, f noc.Fabric) {
	st := f.Stats()
	for t := 0; t < noc.NumPacketTypes; t++ {
		typ := noc.PacketType(t)
		reg.Counter(fmt.Sprintf("%s.injected_packets.%s", label, typ),
			func() float64 { return float64(st.PacketsInjected[typ]) })
		reg.Counter(fmt.Sprintf("%s.ejected_packets.%s", label, typ),
			func() float64 { return float64(st.PacketsEjected[typ]) })
		reg.Counter(fmt.Sprintf("%s.injected_flits.%s", label, typ),
			func() float64 { return float64(st.FlitsInjected[typ]) })
	}
	reg.Gauge(label+".in_flight", func() float64 { return float64(f.InFlight()) })
}

// attachGPU registers the warp-stall breakdown and IPC over all cores.
func attachGPU(reg *Registry, sim *core.Simulator) {
	cores := sim.Cores()
	sum := func(read func(i int) uint64) func() float64 {
		return func() float64 {
			var total uint64
			for i := range cores {
				total += read(i)
			}
			return float64(total)
		}
	}
	reg.Counter("gpu.instructions", sum(func(i int) uint64 { return cores[i].Instructions }))
	reg.Counter("gpu.mem_instrs", sum(func(i int) uint64 { return cores[i].MemInstrs }))
	reg.Counter("gpu.core_cycles", sum(func(i int) uint64 { return cores[i].CoreCycles }))
	reg.Counter("gpu.issue_stalls", sum(func(i int) uint64 { return cores[i].IssueStalls }))
	reg.Counter("gpu.lsu_send_stalls", sum(func(i int) uint64 { return cores[i].LSUSendStalls }))
	reg.Counter("gpu.mshr_stalls", sum(func(i int) uint64 { return cores[i].MSHRStalls }))
	reg.Counter("gpu.storeq_stalls", sum(func(i int) uint64 { return cores[i].StoreQStalls }))
	// Interval IPC: instructions retired per core cycle within the interval.
	// The closure keeps its own cumulative marks; a warmup-boundary reset
	// (raw values drop) restarts them.
	var lastInstr, lastCyc float64
	reg.Gauge("gpu.ipc", func() float64 {
		var instr, cyc uint64
		for i := range cores {
			instr += cores[i].Instructions
			cyc += cores[i].CoreCycles
		}
		di, dc := float64(instr)-lastInstr, float64(cyc)-lastCyc
		if di < 0 || dc < 0 {
			di, dc = float64(instr), float64(cyc)
		}
		lastInstr, lastCyc = float64(instr), float64(cyc)
		if dc == 0 {
			return 0
		}
		return di / dc
	})
}

// AttachTracers installs collectors sampling every sampleEvery-th packet on
// both mesh fabrics of sim and returns them (request first, then reply; the
// reply entry is nil for behavioural reply fabrics, which carry no per-hop
// state to trace).
func AttachTracers(sim *core.Simulator, sampleEvery uint64) (req, rep *Collector) {
	req = NewCollector("req")
	sim.RequestNet().SetTracer(req, sampleEvery)
	if mesh, ok := sim.ReplyNet().(*noc.Network); ok {
		rep = NewCollector("rep")
		mesh.SetTracer(rep, sampleEvery)
	}
	return req, rep
}
