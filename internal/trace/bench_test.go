package trace

import "testing"

func BenchmarkGeneratorNextMem(b *testing.B) {
	k := testKernel()
	g, err := NewGenerator(k, 28, 1)
	if err != nil {
		b.Fatal(err)
	}
	var scratch []uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, scratch = g.NextMem(i%28, i%k.WarpsPerCore, scratch[:0])
	}
}

func BenchmarkGeneratorNextCompute(b *testing.B) {
	k := testKernel()
	g, _ := NewGenerator(k, 28, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextCompute(i%28, i%k.WarpsPerCore)
	}
}
