package noc

import (
	"fmt"
	"sort"
	"strings"
)

// String names the input-VC states for diagnostics.
func (s vcState) String() string {
	switch s {
	case vcIdle:
		return "idle"
	case vcWaitVC:
		return "waitVC"
	case vcActive:
		return "active"
	default:
		return fmt.Sprintf("vcState(%d)", uint8(s))
	}
}

// DumpState returns a human-readable diagnostic of all non-quiescent state:
// per-router input-VC states and ownership, the output-port credit map,
// staged arrivals, NI queue levels, and the oldest in-flight packets. It is
// the payload of watchdog failures (deadlock/starvation reports) and is safe
// to call at any cycle boundary — it only reads.
func (n *Network) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network @cycle %d: inFlight=%d\n", n.now, n.inFlight)
	for _, r := range n.routers {
		if r.flitCount() == 0 && n.ejectors[r.id].flitCount() == 0 && n.nis[r.id].queuedFlits() == 0 {
			continue
		}
		tag := ""
		if r.isMC {
			tag = " [MC]"
		}
		fmt.Fprintf(&b, "router %d%s: %d flits\n", r.id, tag, r.flitCount())
		for _, ip := range r.in {
			for _, vc := range ip.vcs {
				if vc.buf.empty() && vc.state == vcIdle {
					continue
				}
				fmt.Fprintf(&b, "  in %d vc %d: state=%s buf=%d", ip.index, vc.vcIdx, vc.state, vc.buf.len())
				if !vc.buf.empty() {
					f := vc.buf.front()
					fmt.Fprintf(&b, " head=pkt %d %s %d->%d flit %d/%d age=%d",
						f.pkt.ID, f.pkt.Type, f.pkt.Src, f.pkt.Dst, f.seq, f.pkt.Size, n.now-f.pkt.CreatedAt)
				}
				if vc.state != vcIdle {
					fmt.Fprintf(&b, " out=%d/%d waiting=%d", vc.outPort, vc.outVC, n.now-vc.waitSince)
				}
				if n.now < ip.frozenUntil {
					fmt.Fprintf(&b, " FROZEN(until %d)", ip.frozenUntil)
				}
				b.WriteByte('\n')
			}
			if len(ip.arrivals) > 0 {
				fmt.Fprintf(&b, "  in %d: %d staged arrivals\n", ip.index, len(ip.arrivals))
			}
		}
		for _, op := range r.out {
			var creds []string
			for v := range op.vcs {
				creds = append(creds, fmt.Sprintf("%d(own %d)", op.vcs[v].credits, op.vcs[v].owner))
			}
			stall := ""
			if n.now < op.stalledUntil {
				stall = fmt.Sprintf(" STALLED(until %d)", op.stalledUntil)
			}
			fmt.Fprintf(&b, "  out %d: credits=[%s]%s\n", op.index, strings.Join(creds, " "), stall)
		}
		if ni := n.nis[r.id]; ni.queuedFlits() > 0 {
			fmt.Fprintf(&b, "  ni: %d queued flits (mode %s)\n", ni.queuedFlits(), ni.mode)
		}
		if e := n.ejectors[r.id]; e.flitCount() > 0 {
			fmt.Fprintf(&b, "  ejector: %d flits\n", e.flitCount())
		}
	}
	if old := n.OldestPackets(5); len(old) > 0 {
		b.WriteString("oldest packets:\n")
		for _, p := range old {
			fmt.Fprintf(&b, "  pkt %d %s %d->%d size=%d prio=%d created=%d age=%d\n",
				p.ID, p.Type, p.Src, p.Dst, p.Size, p.Priority, p.CreatedAt, n.now-p.CreatedAt)
		}
	}
	return b.String()
}

// forEachBufferedPacket visits every distinct packet with at least one flit
// resident in the network (NI queues, VC buffers, staged arrivals, ejector
// reassembly buffers).
func (n *Network) forEachBufferedPacket(visit func(*Packet)) {
	seen := make(map[*Packet]bool)
	mark := func(p *Packet) {
		if !seen[p] {
			seen[p] = true
			visit(p)
		}
	}
	for _, ni := range n.nis {
		if ni.queue != nil {
			for i := 0; i < ni.queue.len(); i++ {
				mark(ni.queue.at(i).pkt)
			}
		}
		for _, q := range ni.splitQueues {
			for i := 0; i < q.len(); i++ {
				mark(q.at(i).pkt)
			}
		}
	}
	for _, r := range n.routers {
		for _, ip := range r.in {
			for _, sf := range ip.arrivals {
				mark(sf.f.pkt)
			}
			for _, vc := range ip.vcs {
				for i := 0; i < vc.buf.len(); i++ {
					mark(vc.buf.at(i).pkt)
				}
			}
		}
	}
	for _, e := range n.ejectors {
		for _, sf := range e.arrivals {
			mark(sf.f.pkt)
		}
		for _, q := range e.vcs {
			for i := 0; i < q.len(); i++ {
				mark(q.at(i).pkt)
			}
		}
	}
}

// OldestPackets returns up to k distinct in-flight packets ordered by
// CreatedAt (oldest first, packet ID tie-break). O(buffers); diagnostics and
// the starvation watchdog use it, not the hot loop.
func (n *Network) OldestPackets(k int) []*Packet {
	var pkts []*Packet
	n.forEachBufferedPacket(func(p *Packet) { pkts = append(pkts, p) })
	sort.Slice(pkts, func(i, j int) bool {
		if pkts[i].CreatedAt != pkts[j].CreatedAt {
			return pkts[i].CreatedAt < pkts[j].CreatedAt
		}
		return pkts[i].ID < pkts[j].ID
	})
	if len(pkts) > k {
		pkts = pkts[:k]
	}
	return pkts
}

// OldestPacketAge returns the age in cycles of the oldest in-flight packet,
// or 0 when the network holds none.
func (n *Network) OldestPacketAge() int64 {
	old := n.OldestPackets(1)
	if len(old) == 0 {
		return 0
	}
	return n.now - old[0].CreatedAt
}
