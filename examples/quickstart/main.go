// Quickstart: build a full-system simulator for one benchmark, run the
// enhanced baseline and ARI, and print the headline comparison — the
// 60-second version of the paper's story.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// Pick a highly NoC-sensitive benchmark (§6.2 class "high").
	kernel, err := trace.ByName("bfs")
	if err != nil {
		log.Fatal(err)
	}

	run := func(scheme core.Scheme) core.Result {
		cfg := core.DefaultConfig() // Table I: 6x6 mesh, 28 CCs + 8 MCs
		cfg.Scheme = scheme
		cfg.WarmupCycles = 2000
		cfg.MeasureCycles = 8000
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			log.Fatal(err)
		}
		return sim.Run()
	}

	base := run(core.AdaBaseline)
	ari := run(core.AdaARI)

	fmt.Printf("benchmark: %s (NoC sensitivity: %s)\n\n", kernel.Name, kernel.Sens)
	fmt.Printf("%-22s %10s %14s %12s\n", "scheme", "IPC", "stall/reply", "NI occ")
	for _, r := range []core.Result{base, ari} {
		stallPerReply := 0.0
		if r.RepliesSent > 0 {
			stallPerReply = float64(r.MCStallTime) / float64(r.RepliesSent)
		}
		fmt.Printf("%-22s %10.3f %14.1f %12.1f\n",
			r.Scheme, r.IPC, stallPerReply, r.NIOccAvgFlits)
	}

	fmt.Printf("\nARI IPC gain: %+.1f%%   MC stall reduction: %.1f%%\n",
		100*(ari.IPC/base.IPC-1),
		100*(1-float64(ari.MCStallTime)/float64(ari.RepliesSent)/
			(float64(base.MCStallTime)/float64(base.RepliesSent))))
	fmt.Println("\n(The paper's Fig 11/12: ARI removes the reply injection bottleneck,")
	fmt.Println(" lifting IPC and cutting the time reply data stalls in the MCs.)")
}
