package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testTracker(objs []Objective) (*SLOTracker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	windows := []time.Duration{10 * time.Second, time.Minute, 5 * time.Minute}
	return newSLOTracker(objs, windows, time.Second, clk.now), clk
}

func TestSLOComplianceAndBurn(t *testing.T) {
	obj := Objective{Name: "p99_fast", Threshold: 100, Goal: 0.9}
	tr, clk := testTracker([]Objective{obj})

	// 8 good, 2 bad: compliance 0.8, error rate 0.2, burn 0.2/0.1 = 2.
	for i := 0; i < 8; i++ {
		tr.Observe(50)
	}
	tr.Observe(500)
	tr.Fail()

	rep := tr.Report()
	st := rep.Objectives[0]
	if st.Total != 10 || st.Good != 8 {
		t.Fatalf("good/total = %d/%d", st.Good, st.Total)
	}
	if st.Compliance != 0.8 {
		t.Fatalf("compliance = %v", st.Compliance)
	}
	for _, w := range st.Windows {
		if w.Events != 10 || w.ErrorRate != 0.2 || math.Abs(w.BurnRate-2) > 1e-9 {
			t.Fatalf("window %s = %+v", w.Window, w)
		}
	}
	if st.Alerting {
		t.Fatal("burn 2 must not page")
	}

	// Advance past the short window: its burn decays to 0, the long window
	// still remembers, lifetime compliance is untouched.
	clk.advance(30 * time.Second)
	rep = tr.Report()
	st = rep.Objectives[0]
	if st.Compliance != 0.8 {
		t.Fatalf("lifetime compliance drifted: %v", st.Compliance)
	}
	if w := st.Windows[0]; w.Events != 0 || w.BurnRate != 0 {
		t.Fatalf("expired short window = %+v", w)
	}
	if w := st.Windows[1]; w.Events != 10 || math.Abs(w.BurnRate-2) > 1e-9 {
		t.Fatalf("long window = %+v", w)
	}
}

func TestSLOMultiWindowAlert(t *testing.T) {
	obj := Objective{Name: "tail", Threshold: 10, Goal: 0.99} // budget 0.01
	tr, clk := testTracker([]Objective{obj})

	// 100% errors: burn = 1/0.01 = 100 on every window -> page.
	for i := 0; i < 20; i++ {
		tr.Fail()
	}
	if st := tr.Report().Objectives[0]; !st.Alerting {
		t.Fatalf("total outage did not page: %+v", st)
	}

	// After the short window drains the page clears, even though the long
	// window still burns — the incident is over.
	clk.advance(15 * time.Second)
	if st := tr.Report().Objectives[0]; st.Alerting {
		t.Fatalf("page stuck after short window drained: %+v", st)
	}
}

func TestSLOIdleServiceInSLO(t *testing.T) {
	tr, _ := testTracker([]Objective{{Name: "x", Threshold: 1, Goal: 0.999}})
	st := tr.Report().Objectives[0]
	if st.Compliance != 1 || st.Alerting {
		t.Fatalf("idle tracker out of SLO: %+v", st)
	}
}

func TestSLORingLapReset(t *testing.T) {
	obj := Objective{Name: "x", Threshold: 100, Goal: 0.9}
	tr, clk := testTracker([]Objective{obj})
	tr.Fail()
	// A whole ring lap later the stale slot must not resurrect.
	clk.advance(10 * time.Minute)
	tr.Observe(1)
	st := tr.Report().Objectives[0]
	if w := st.Windows[2]; w.Events != 1 || w.ErrorRate != 0 {
		t.Fatalf("stale slot leaked into window: %+v", w)
	}
}

func TestSLOReportMetrics(t *testing.T) {
	tr, _ := testTracker([]Objective{{Name: `odd"name`, Threshold: 10, Goal: 0.9}})
	tr.Observe(5)
	var p PromWriter
	tr.Report().WriteMetrics(&p, "ari")
	got := p.String()
	for _, want := range []string{
		`ari_slo_compliance{objective="odd\"name"} 1`,
		`ari_slo_burn_rate{objective="odd\"name",window="10s"} 0`,
		`ari_slo_alerting{objective="odd\"name"} 0`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("metrics missing %q:\n%s", want, got)
		}
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	tr := NewSLOTracker([]Objective{{Name: "x", Threshold: 100, Goal: 0.99}})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(int64(i))
				if i%10 == 0 {
					tr.Fail()
				}
			}
		}()
	}
	wg.Wait()
	st := tr.Report().Objectives[0]
	if st.Total != 8*550 {
		t.Fatalf("total = %d, want %d", st.Total, 8*550)
	}
}
