// Command ariexp regenerates the paper's tables and figures.
//
// Usage:
//
//	ariexp -fig 11                # one figure (table1,3,4,5,util,6,9..16,scale,area)
//	ariexp -fig all               # everything, in paper order
//	ariexp -fig 11 -cycles 20000  # longer measurement window
//	ariexp -quick                 # fast smoke pass (short horizons)
//	ariexp -v                     # per-run progress
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

// sanitize maps a figure id to a filesystem-safe name.
func sanitize(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, id)
}

func main() {
	var (
		fig     = flag.String("fig", "all", "figure id or 'all'")
		cycles  = flag.Int64("cycles", 10000, "measured NoC cycles per run")
		warmup  = flag.Int64("warmup", 3000, "warmup NoC cycles per run")
		quick   = flag.Bool("quick", false, "short horizons for a smoke pass")
		verbose = flag.Bool("v", false, "print per-run progress")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		csvDir  = flag.String("csv", "", "also write each figure's table as CSV into this directory")
		list    = flag.Bool("list", false, "list figure ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	r := exp.NewRunner()
	r.Base.MeasureCycles = *cycles
	r.Base.WarmupCycles = *warmup
	r.Base.Seed = *seed
	r.Workers = *workers
	if *quick {
		r.Base.MeasureCycles = 3000
		r.Base.WarmupCycles = 1000
	}
	if *verbose {
		r.Progress = os.Stderr
	}

	start := time.Now()
	ids := []string{*fig}
	if *fig == "all" {
		ids = ids[:0]
		for _, e := range exp.Registry() {
			ids = append(ids, e.ID)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ariexp:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		f, err := exp.Generate(r, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ariexp:", err)
			os.Exit(1)
		}
		fmt.Println(f.String())
		if *csvDir != "" && f.Table != nil {
			path := filepath.Join(*csvDir, "fig_"+sanitize(id)+".csv")
			if err := os.WriteFile(path, []byte(f.Table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ariexp:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("(%d simulations, %s)\n", r.Runs(), time.Since(start).Round(time.Millisecond))
}
