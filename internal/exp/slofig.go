package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SLOFigure renders the latency-SLO view of the paper's headline claim: it
// runs bench under each scheme with reply-packet lifetime tracing, feeds
// every sampled reply's end-to-end latency (NI enqueue -> tail consumed, in
// NoC cycles) into an obs.Histogram, and reports the latency distribution
// (p50/p95/p99) plus the fraction of replies meeting a cycle budget — the
// simulator-side analogue of the serving layer's SLO compliance gauge.
//
// thresholdCycles is the reply-latency budget; when <= 0 it is derived as
// the first scheme's p95 (rounded up), so the figure reads "the baseline
// meets its own p95 budget 95% of the time — how often does ARI meet the
// same budget?". sample records every sample-th reply (1 = all); schemes
// defaults to baseline vs. Ada-ARI. Like Decompose, runs bypass the Runner
// cache because traces are not part of Result, and schemes without a
// traceable reply fabric are rejected. Everything downstream of the seeded
// simulator is deterministic, so the figure is byte-stable run to run.
func SLOFigure(base core.Config, bench string, sample uint64, thresholdCycles int64, schemes ...core.Scheme) (*Figure, error) {
	kernel, err := trace.ByName(bench)
	if err != nil {
		return nil, err
	}
	if sample == 0 {
		sample = 1
	}
	if len(schemes) == 0 {
		schemes = []core.Scheme{core.XYBaseline, core.AdaARI}
	}

	type schemeDist struct {
		scheme core.Scheme
		snap   obs.HistSnapshot
	}
	dists := make([]schemeDist, 0, len(schemes))
	for _, sch := range schemes {
		cfg := base
		cfg.Scheme = sch
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			return nil, fmt.Errorf("exp: slo %s/%s: %w", bench, sch, err)
		}
		rep, ok := sim.ReplyNet().(*noc.Network)
		if !ok {
			return nil, fmt.Errorf("exp: slo: scheme %s has no traceable reply fabric", sch)
		}
		coll := obs.NewCollector("rep")
		rep.SetTracer(coll, sample)
		if _, err := sim.RunChecked(core.CheckOptions{}); err != nil {
			return nil, fmt.Errorf("exp: slo %s/%s: %w", bench, sch, err)
		}
		var hist obs.Histogram
		for _, p := range coll.Done() {
			if p.Type != noc.ReadReply && p.Type != noc.WriteReply {
				continue
			}
			hist.Observe(p.Ejected - p.Enqueued)
		}
		snap := hist.Snapshot()
		if snap.Count == 0 {
			return nil, fmt.Errorf("exp: slo %s/%s: no reply packets completed (horizons too short?)", bench, sch)
		}
		dists = append(dists, schemeDist{scheme: sch, snap: snap})
	}

	if thresholdCycles <= 0 {
		thresholdCycles = int64(math.Ceil(dists[0].snap.Quantile(0.95)))
	}

	table := stats.NewTable("scheme", "replies", "p50", "p95", "p99", "mean", "compliance")
	summary := map[string]float64{"threshold_cycles": float64(thresholdCycles)}
	fig := &Figure{
		ID: "slo",
		Title: fmt.Sprintf("Reply-latency SLO on %s: fraction of replies within %d cycles (trace-sampled, 1/%d packets)",
			bench, thresholdCycles, sample),
		Paper:   "headline: removing the MC-side injection bottleneck collapses the reply-latency tail",
		Table:   table,
		Summary: summary,
	}
	for _, d := range dists {
		c := d.snap.Compliance(thresholdCycles)
		table.AddRow(d.scheme.String(),
			fmt.Sprintf("%d", d.snap.Count),
			fmt.Sprintf("%.1f", d.snap.Quantile(0.50)),
			fmt.Sprintf("%.1f", d.snap.Quantile(0.95)),
			fmt.Sprintf("%.1f", d.snap.Quantile(0.99)),
			fmt.Sprintf("%.1f", d.snap.Mean()),
			fmt.Sprintf("%.4f", c))
		summary["compliance_"+d.scheme.String()] = c
	}
	fig.Notes = append(fig.Notes,
		"latency = NI enqueue -> tail consumed per sampled reply packet, binned by obs.Histogram (log2 buckets); quantiles are interpolated within buckets",
		fmt.Sprintf("compliance = fraction of replies within the %d-cycle budget (derived from the first scheme's p95 when not given)", thresholdCycles),
		"read compliance together with the replies column: a scheme that removes the injection bottleneck completes more replies per horizon, so it carries more in-flight load when its per-reply latency is judged")
	return fig, nil
}
