package exp

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// stallFirstSimulator makes the first construction build a run that cannot
// finish inside RunTimeout (transient-contention stand-in); every later
// construction builds the real configuration.
func stallFirstSimulator(calls *atomic.Int32) func(core.Config, trace.Kernel) (*core.Simulator, error) {
	return func(cfg core.Config, k trace.Kernel) (*core.Simulator, error) {
		if calls.Add(1) == 1 {
			slow := cfg
			slow.MeasureCycles = 1 << 40
			return core.NewSimulator(slow, k)
		}
		return core.NewSimulator(cfg, k)
	}
}

func TestRunRetriesTimeoutThenMatchesCleanRun(t *testing.T) {
	// Reference: an untouched runner's result for the job.
	clean := tinyRunner(t)
	cfg := clean.withScheme(core.AdaARI)
	want, err := clean.Run(cfg, clean.Benchmarks[0])
	if err != nil {
		t.Fatal(err)
	}

	orig := newSimulator
	defer func() { newSimulator = orig }()
	var calls atomic.Int32
	newSimulator = stallFirstSimulator(&calls)

	r := tinyRunner(t)
	// Generous: the genuine tiny run must finish inside it even under -race.
	r.RunTimeout = 5 * time.Second
	r.MaxRetries = 1
	r.RetryBackoff = time.Millisecond
	got, err := r.Run(cfg, r.Benchmarks[0])
	if err != nil {
		t.Fatalf("run with one transient timeout failed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("simulator constructed %d times, want 2 (timeout + retry)", n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retried run diverged from clean run:\n got %+v\nwant %+v", got, want)
	}
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1 (the retry is the same run)", r.Runs())
	}
	// The cached result is the retried one, with no further simulation.
	again, err := r.Run(cfg, r.Benchmarks[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) || calls.Load() != 2 {
		t.Fatal("cached result after retry differs or re-simulated")
	}
}

func TestRunRetriesExhaustedSurfaceTimeout(t *testing.T) {
	orig := newSimulator
	defer func() { newSimulator = orig }()
	newSimulator = func(cfg core.Config, k trace.Kernel) (*core.Simulator, error) {
		slow := cfg
		slow.MeasureCycles = 1 << 40
		return core.NewSimulator(slow, k)
	}

	r := tinyRunner(t)
	r.RunTimeout = 20 * time.Millisecond
	r.MaxRetries = 2
	r.RetryBackoff = time.Millisecond
	_, err := r.Run(r.withScheme(core.XYBaseline), r.Benchmarks[0])
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("err = %v, want ErrRunTimeout after exhausted retries", err)
	}
}

func TestRunDoesNotRetryDeterministicFailures(t *testing.T) {
	orig := newSimulator
	defer func() { newSimulator = orig }()
	var calls atomic.Int32
	newSimulator = func(cfg core.Config, k trace.Kernel) (*core.Simulator, error) {
		calls.Add(1)
		return core.NewSimulator(badConfig(1), k)
	}

	r := tinyRunner(t)
	r.MaxRetries = 3
	r.RetryBackoff = time.Millisecond
	if _, err := r.Run(r.withScheme(core.XYBaseline), r.Benchmarks[0]); err == nil {
		t.Fatal("invalid config returned no error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic failure attempted %d times, want 1", n)
	}
}
