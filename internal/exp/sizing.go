package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// SpeedupSizing reproduces the §4.2 sizing study: for every benchmark,
// measure the ideal reply injection rate against an unlimited-bandwidth
// fabric and derive the eq. (1) minimal speedup; the paper reports that an
// injection-port speedup of 4 (the eq. (2) bound on a mesh) satisfies 95%
// of the peak rates.
func SpeedupSizing(r *Runner) (*Figure, error) {
	t := stats.NewTable("benchmark", "peak rate (pkt/cyc/MC)", "avg flits/pkt", "eq.1 S", "chosen S")
	satisfied := 0
	var chosen []float64
	for _, k := range r.Benchmarks {
		cfg := r.withScheme(core.AdaBaseline)
		cal, err := core.CalibrateSpeedup(cfg, k)
		if err != nil {
			return nil, err
		}
		if cal.SatisfiedByBound {
			satisfied++
		}
		chosen = append(chosen, float64(cal.ChosenS))
		t.AddRow(k.Name,
			fmt.Sprintf("%.4f", cal.PeakRatePerMC),
			fmt.Sprintf("%.2f", cal.AvgFlitsPerPkt),
			fmt.Sprintf("%d", cal.RequiredS),
			fmt.Sprintf("%d", cal.ChosenS))
	}
	frac := safeDiv(float64(satisfied), float64(len(r.Benchmarks)))
	return &Figure{
		ID:    "§4.2 sizing",
		Title: "Injection-port speedup sizing from the ideal injection rate (eq. 1/2)",
		Paper: "the S<=4 bound of eq. (2) satisfies ~95% of peak injection rates",
		Table: t,
		Summary: map[string]float64{
			"frac_satisfied_by_bound": frac,
			"mean_chosen_speedup":     mean(chosen),
		},
	}, nil
}
