package noc

import (
	"testing"
)

// netstatsMix is the packet mix injected by the per-class counter tests:
// request classes from a compute-side node, reply classes from an MC-side
// node, covering all four packet types.
var netstatsMix = []struct {
	typ   PacketType
	node  int
	dst   int
	count int
}{
	{ReadRequest, 1, 14, 3},
	{WriteRequest, 2, 13, 2},
	{ReadReply, 13, 2, 4},
	{WriteReply, 14, 1, 1},
}

// injectMix drives the mix in, stepping between offers so NI queues never
// reject, and returns per-type injected counts.
func injectMix(t *testing.T, n *Network) [NumPacketTypes]uint64 {
	t.Helper()
	var want [NumPacketTypes]uint64
	for _, m := range netstatsMix {
		for i := 0; i < m.count; i++ {
			pkt := mkPacket(n.Config(), m.typ, m.dst)
			for !n.Inject(m.node, pkt) {
				n.Step()
			}
			want[m.typ]++
			n.Step()
		}
	}
	return want
}

// TestNetStatsPerClassCounters pins the per-packet-type accounting — the
// counters every figure's request-vs-reply split rests on — across all three
// NI architectures (baseline FIFO, ARI split queues, MultiPort).
func TestNetStatsPerClassCounters(t *testing.T) {
	for _, mode := range []struct {
		name string
		ni   NIMode
	}{
		{"NIBaseline", NIBaseline},
		{"NISplit", NISplit},
		{"NIMultiPort", NIMultiPort},
	} {
		t.Run(mode.name, func(t *testing.T) {
			n := newTestNet(t, func(c *Config) {
				nodes := make([]NodeConfig, c.Mesh.Nodes())
				for i := range nodes {
					nodes[i].NI = mode.ni
					if mode.ni == NIMultiPort {
						nodes[i].InjPorts = 2
					}
				}
				c.Nodes = nodes
			})
			want := injectMix(t, n)
			runUntilIdle(t, n, 5000)

			st := n.Stats()
			cfg := n.Config()
			var total uint64
			for typ := PacketType(0); int(typ) < NumPacketTypes; typ++ {
				total += want[typ]
				if st.PacketsInjected[typ] != want[typ] {
					t.Errorf("PacketsInjected[%s] = %d, want %d", typ, st.PacketsInjected[typ], want[typ])
				}
				if st.PacketsEjected[typ] != want[typ] {
					t.Errorf("PacketsEjected[%s] = %d, want %d", typ, st.PacketsEjected[typ], want[typ])
				}
				wantFlits := want[typ] * uint64(PacketSize(typ, cfg.LinkBits, cfg.DataBytes))
				if st.FlitsInjected[typ] != wantFlits {
					t.Errorf("FlitsInjected[%s] = %d, want %d", typ, st.FlitsInjected[typ], wantFlits)
				}
				if got := uint64(st.Latency[typ].Count()); got != want[typ] {
					t.Errorf("Latency[%s].Count = %d, want %d", typ, got, want[typ])
				}
				if want[typ] > 0 && st.Latency[typ].Value() <= 0 {
					t.Errorf("Latency[%s] mean = %v, want > 0", typ, st.Latency[typ].Value())
				}
			}
			if st.TotalPackets() != total {
				t.Errorf("TotalPackets = %d, want %d", st.TotalPackets(), total)
			}
			if n.InFlight() != 0 {
				t.Errorf("InFlight = %d after drain", n.InFlight())
			}
		})
	}
}

// TestNetStatsTracingIsObservationOnly asserts a sampling tracer changes no
// counter: the same mix with tracing on must produce identical NetStats and
// identical delivery, while the tracer itself sees complete lifecycles.
func TestNetStatsTracingIsObservationOnly(t *testing.T) {
	run := func(tr Tracer) NetStats {
		n := newTestNet(t, nil)
		if tr != nil {
			n.SetTracer(tr, 1)
		}
		injectMix(t, n)
		runUntilIdle(t, n, 5000)
		return *n.Stats()
	}
	coll := &countingTracer{}
	plain := run(nil)
	traced := run(coll)
	if plain != traced {
		t.Errorf("NetStats diverged under tracing:\nplain  %+v\ntraced %+v", plain, traced)
	}
	var totalPkts uint64
	for _, m := range netstatsMix {
		totalPkts += uint64(m.count)
	}
	if coll.enqueues != totalPkts || coll.ejects != totalPkts {
		t.Errorf("tracer saw %d enqueues / %d ejects, want %d of each", coll.enqueues, coll.ejects, totalPkts)
	}
	if coll.injects != totalPkts {
		t.Errorf("tracer saw %d injection grants, want %d", coll.injects, totalPkts)
	}
	if coll.switches == 0 || coll.vaGrants == 0 {
		t.Errorf("tracer saw no per-hop events (switch=%d va=%d)", coll.switches, coll.vaGrants)
	}
}

// countingTracer tallies lifecycle events per stage.
type countingTracer struct {
	enqueues, injects, vaGrants, switches, ejects uint64
}

func (c *countingTracer) PacketEvent(_ uint64, _ PacketType, _, _, _ int, stage TraceStage, _ int64) {
	switch stage {
	case TraceNIEnqueue:
		c.enqueues++
	case TraceInject:
		c.injects++
	case TraceVAGrant:
		c.vaGrants++
	case TraceSwitch:
		c.switches++
	case TraceEject:
		c.ejects++
	}
}

// TestVAGrantCounter pins the new VA-grant accessor: one grant per
// packet-hop, and it lives outside NetStats so encoded results are
// unchanged.
func TestVAGrantCounter(t *testing.T) {
	n := newTestNet(t, nil)
	if n.VAGrants() != 0 {
		t.Fatalf("fresh network VAGrants = %d", n.VAGrants())
	}
	pkt := mkPacket(n.Config(), ReadReply, 15) // node 0 -> 15: 6 hops on a 4x4 XY mesh
	if !n.Inject(0, pkt) {
		t.Fatal("inject rejected")
	}
	runUntilIdle(t, n, 1000)
	if got := n.VAGrants(); got != 7 {
		// 6 mesh hops plus the re-allocation at the destination's router is
		// topology-dependent; at minimum one grant per traversed router.
		if got < 6 {
			t.Fatalf("VAGrants = %d, want >= 6 for a 6-hop route", got)
		}
	}
}
