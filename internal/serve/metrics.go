package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"time"

	"repro/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format via obs.PromWriter: server admission/shed counters, per-job
// progress from the run monitor (cycles, cycles/sec, ETA, watchdog state),
// and process metrics from the Go runtime.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var p obs.PromWriter
	st := s.Stats()

	p.Metric("ari_jobs_admitted", "Jobs currently holding an admission slot (executing + waiting).", "gauge", float64(st.Admitted))
	p.Metric("ari_jobs_completed_total", "Simulations finished by this process.", "counter", float64(st.Completed))
	p.Metric("ari_jobs_cache_hits_total", "Submissions answered from the cache or journal.", "counter", float64(st.CacheHits))
	p.Metric("ari_jobs_peer_hits_total", "Submissions answered from a cluster peer's journal without running.", "counter", float64(st.PeerHits))
	p.Metric("ari_jobs_shed_total", "Submissions rejected with 429 because the queue was full.", "counter", float64(st.Shed))
	p.Metric("ari_draining", "1 once admission is closed.", "gauge", obs.Bool(st.Draining))
	p.Metric("ari_service_time_seconds", "EWMA of observed simulation wall time.", "gauge", st.ServiceTimeMs/1000)
	p.Metric("ari_uptime_seconds", "Server process uptime.", "gauge", time.Since(s.started).Seconds())
	p.Metric("ari_fault_events_total", "Injected NoC faults across all completed simulations.", "counter", float64(st.FaultEvents))
	p.Metric("ari_recovered_packets_total", "Corrupted packets recovered by NACK retransmission across all completed simulations.", "counter", float64(st.RecoveredPackets))

	// Per-job progress, labelled by run identity. One gauge family per
	// dimension, the Prometheus-idiomatic shape of the monitor's snapshot.
	progress := s.monitor.Snapshot()
	perJob := func(name, help string, read func(i int) float64) {
		p.Family(name, help, "gauge")
		for i, pr := range progress {
			p.Sample(name, obs.Labels("job", pr.Name), read(i))
		}
	}
	p.Metric("ari_jobs_running", "Simulations currently executing.", "gauge", float64(len(progress)))
	perJob("ari_job_progress_cycles", "Last reported NoC cycle of the run.", func(i int) float64 { return float64(progress[i].Cycle) })
	perJob("ari_job_total_cycles", "Run horizon in cycles (warmup + measurement).", func(i int) float64 { return float64(progress[i].TotalCycles) })
	perJob("ari_job_cycles_per_second", "Observed simulation rate.", func(i int) float64 { return progress[i].CyclesPerSec })
	perJob("ari_job_eta_seconds", "Extrapolated time to completion (-1 = unknown).", func(i int) float64 { return progress[i].ETASeconds })
	perJob("ari_job_no_progress_cycles", "Watchdog deadlock timer: cycles without any fabric moving a flit.", func(i int) float64 { return float64(progress[i].NoProgressFor) })
	perJob("ari_job_in_flight_packets", "In-flight packets across both fabrics.", func(i int) float64 { return float64(progress[i].ReqInFlight + progress[i].RepInFlight) })

	p.Histogram("ari_job_seconds", "Full submission latency of 2xx answers (cache hits, estimates, peer hits and runs).",
		s.jobHist.Snapshot(), 1e-6)
	p.Histogram("ari_queue_wait_seconds", "Admitted jobs' wait for an execution slot.",
		s.queueHist.Snapshot(), 1e-6)
	p.Histogram("ari_run_seconds", "Simulation wall time of completed runs.",
		s.runHist.Snapshot(), 1e-6)
	s.slo.Report().WriteMetrics(&p, "ari")
	p.Metric("ari_trace_spans", "Spans held in the in-memory recorder.", "gauge", float64(s.spans.Len()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Metric("go_goroutines", "Live goroutines.", "gauge", float64(runtime.NumGoroutine()))
	p.Metric("go_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge", float64(ms.HeapAlloc))
	p.Metric("go_sys_bytes", "Bytes obtained from the OS.", "gauge", float64(ms.Sys))
	p.Metric("go_gc_runs_total", "Completed GC cycles.", "counter", float64(ms.NumGC))
	p.Metric("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", "counter", float64(ms.PauseTotalNs)/1e9)

	p.ServeText(w)
}

// nocStateEntry is one job's entry in the /debug/nocstate response.
type nocStateEntry struct {
	Job string `json:"job"`
	// State is core.Simulator.StateDumpJSON's payload: per-fabric router,
	// VC, credit and oldest-packet state.
	State json.RawMessage `json:"state,omitempty"`
	Error string          `json:"error,omitempty"`
}

// handleNoCState serves GET /debug/nocstate: a JSON NoC state snapshot of
// every in-flight job, so a watchdog trip (or a suspiciously slow run) is
// diagnosable remotely. Snapshots are produced by each run's own goroutine
// at its next watchdog poll — the handler only requests and waits, bounded
// by a short deadline so a wedged run reports an error instead of hanging
// the endpoint.
func (s *Server) handleNoCState(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	entries := []nocStateEntry{}
	for _, st := range s.monitor.Active() {
		e := nocStateEntry{Job: st.Name()}
		dump, err := st.FetchState(ctx)
		if err != nil {
			// The run finished, or is too stuck to reach its next poll
			// within the deadline — itself a diagnostic.
			e.Error = "no snapshot: " + err.Error()
		} else {
			e.State = dump
		}
		entries = append(entries, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": entries})
}
