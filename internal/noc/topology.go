package noc

import "fmt"

// Direction indexes the four mesh ports of a router, in fixed order.
type Direction int

// Mesh port directions. LocalPort is the first local (injection/ejection)
// port index; routers may have several local input ports (MultiPort).
const (
	North Direction = iota
	East
	South
	West
	numDirections
)

// NumDirections is the number of mesh directions (4 for a 2D mesh).
const NumDirections = int(numDirections)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// opposite returns the direction a flit arrives from when sent toward d.
func (d Direction) opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	default:
		return East
	}
}

// Mesh describes a Width x Height 2D mesh. Node i sits at
// (i % Width, i / Width); x grows East, y grows South.
type Mesh struct {
	Width, Height int
}

// Nodes returns the number of nodes (= routers) in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Coord returns the (x, y) coordinate of node id.
func (m Mesh) Coord(id int) (x, y int) { return id % m.Width, id / m.Width }

// ID returns the node id at coordinate (x, y).
func (m Mesh) ID(x, y int) int { return y*m.Width + x }

// Valid reports whether (x, y) is inside the mesh.
func (m Mesh) Valid(x, y int) bool {
	return x >= 0 && x < m.Width && y >= 0 && y < m.Height
}

// Neighbor returns the node id adjacent to id in direction d, or -1 when id
// is on that edge of the mesh.
func (m Mesh) Neighbor(id int, d Direction) int {
	x, y := m.Coord(id)
	switch d {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	}
	if !m.Valid(x, y) {
		return -1
	}
	return m.ID(x, y)
}

// Hops returns the minimal hop count between nodes a and b.
func (m Mesh) Hops(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// BisectionLinks returns the number of unidirectional links crossing the
// vertical bisection of the mesh (paper §3 uses 12 for a 6x6 mesh: 6 rows x
// 2 directions).
func (m Mesh) BisectionLinks() int { return 2 * m.Height }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// DiamondMCPlacement returns the memory-controller node ids for a mesh,
// following the diamond placement of Abts et al. [1] used by the paper to
// build a competitive baseline: MCs sit on the mesh edges, spread
// symmetrically so no two share a row or column hotspot. Supported
// configurations match the paper's evaluation: 8 MCs on 6x6 and 8x8, 4 MCs
// on 4x4. Other shapes fall back to an even edge spread.
func DiamondMCPlacement(m Mesh, numMC int) []int {
	type xy struct{ x, y int }
	var coords []xy
	switch {
	case m.Width == 6 && m.Height == 6 && numMC == 8:
		// Point-symmetric lattice spread through the mesh, following the
		// staggered "diamond" idea of Abts et al.: no row/column clusters,
		// so MC-to-CC traffic does not share edge corridors.
		coords = []xy{
			{2, 0}, {5, 1}, {0, 2}, {3, 2},
			{2, 3}, {5, 3}, {0, 4}, {3, 5},
		}
	case m.Width == 8 && m.Height == 8 && numMC == 8:
		coords = []xy{
			{3, 0}, {7, 1}, {1, 2}, {5, 3},
			{2, 4}, {6, 5}, {0, 6}, {4, 7},
		}
	case m.Width == 4 && m.Height == 4 && numMC == 4:
		coords = []xy{
			{1, 0}, {3, 1}, {0, 2}, {2, 3},
		}
	default:
		return evenEdgePlacement(m, numMC)
	}
	ids := make([]int, len(coords))
	for i, c := range coords {
		ids[i] = m.ID(c.x, c.y)
	}
	return ids
}

// EdgeMCPlacement spreads numMC nodes evenly along the mesh perimeter,
// clockwise from the top-left corner — the naive "MCs at the pins"
// placement. It concentrates reply traffic in edge corridors, which is
// exactly the contention the diamond placement avoids; the repository's
// placement ablation uses it as the contrast case.
func EdgeMCPlacement(m Mesh, numMC int) []int {
	return evenEdgePlacement(m, numMC)
}

// evenEdgePlacement spreads numMC nodes evenly along the mesh perimeter,
// clockwise from the top-left corner. It is the fallback for mesh shapes
// the paper does not evaluate.
func evenEdgePlacement(m Mesh, numMC int) []int {
	perimeter := make([]int, 0, 2*m.Width+2*m.Height-4)
	for x := 0; x < m.Width; x++ {
		perimeter = append(perimeter, m.ID(x, 0))
	}
	for y := 1; y < m.Height; y++ {
		perimeter = append(perimeter, m.ID(m.Width-1, y))
	}
	for x := m.Width - 2; x >= 0; x-- {
		perimeter = append(perimeter, m.ID(x, m.Height-1))
	}
	for y := m.Height - 2; y >= 1; y-- {
		perimeter = append(perimeter, m.ID(0, y))
	}
	if numMC > len(perimeter) {
		numMC = len(perimeter)
	}
	ids := make([]int, 0, numMC)
	for i := 0; i < numMC; i++ {
		ids = append(ids, perimeter[i*len(perimeter)/numMC])
	}
	return ids
}
