// sweep explores the design space of §4.2: injection-port crossbar speedup
// S=1..4 crossed with VC count, on one benchmark, and prints where eq. (1)
// and eq. (2) predict the knee.
//
//	go run ./examples/sweep [-bench kmeans]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "kmeans", "benchmark to sweep")
	cycles := flag.Int64("cycles", 6000, "measured cycles per point")
	flag.Parse()

	kernel, err := trace.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	run := func(vcs, speedup int) core.Result {
		cfg := core.DefaultConfig()
		cfg.Scheme = core.AdaARI
		cfg.VCs = vcs
		cfg.InjSpeedup = speedup
		cfg.WarmupCycles = 1500
		cfg.MeasureCycles = *cycles
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			log.Fatal(err)
		}
		return sim.Run()
	}

	fmt.Printf("benchmark %s: IPC for VC count x injection speedup (Ada-ARI)\n\n", *bench)
	fmt.Printf("%6s", "VCs\\S")
	for s := 1; s <= 4; s++ {
		fmt.Printf(" %8d", s)
	}
	fmt.Println()
	var peak95 float64
	for _, vcs := range []int{2, 4} {
		fmt.Printf("%6d", vcs)
		for s := 1; s <= 4; s++ {
			if s > vcs {
				fmt.Printf(" %8s", "-") // eq. (2): S <= NVC
				continue
			}
			r := run(vcs, s)
			fmt.Printf(" %8.3f", r.IPC)
			if vcs == 4 && s == 4 {
				peak95 = r.ReplyInjPeakWin95
			}
		}
		fmt.Println()
	}

	// Eq. (1) sizing from the measured peak injection rate: packets per
	// 100-cycle window at the 95th percentile, per MC, times the average
	// flits per reply packet.
	longPkt := noc.PacketSize(noc.ReadReply, 128, 128)
	ratePerMC := peak95 / 100 / 8
	need := core.ChooseSpeedup(ratePerMC, float64(longPkt), 4, 4)
	fmt.Printf("\neq. (1): 95th-pct peak injection %.2f pkt/100cyc/MC x %d flits -> minimal S = %d\n",
		peak95/8, longPkt, need)
	fmt.Println("eq. (2): S <= min(4 output ports, VCs); the paper picks S = 4.")
}
