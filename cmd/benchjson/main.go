// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark numbers can be committed alongside the
// code that produced them (make bench writes BENCH_<date>.json with it).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark result line.
type entry struct {
	Name        string   `json:"name"`
	Package     string   `json:"package,omitempty"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -N name
	// suffix). Scaling gates (benchdiff -scale) use it to tell a genuine
	// flat-scaling regression from a run on a machine with too few cores
	// to scale at all.
	Procs int `json:"procs,omitempty"`
}

// doc is the full output document.
type doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	var d doc
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			d.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			d.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			d.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok {
				e.Package = pkg
				d.Benchmarks = append(d.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one result line of the form
//
//	BenchmarkName-8   123456   987.6 ns/op   12 B/op   3 allocs/op
func parseBench(line string) (entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return entry{}, false
	}
	var e entry
	// Strip the -GOMAXPROCS suffix if present, recording its value.
	e.Name = f[0]
	if i := strings.LastIndexByte(f[0], '-'); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil && p > 0 {
			e.Name = f[0][:i]
			e.Procs = p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		}
	}
	return e, true
}
