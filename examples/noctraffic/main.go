// noctraffic drives the reply network standalone with the paper's
// few-to-many traffic pattern (8 MC injectors -> 28 CC sinks) and prints a
// per-100-cycle view of the injection backlog — the §3 motivation
// experiment, without the GPU model in the way.
//
//	go run ./examples/noctraffic [-load 0.5] [-ari]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/noc"
	"repro/internal/rng"
)

func main() {
	load := flag.Float64("load", 1.2, "offered load: long packets per MC per packet-time")
	ari := flag.Bool("ari", false, "use the ARI injection architecture at the MCs")
	cycles := flag.Int("cycles", 3000, "cycles to simulate")
	flag.Parse()

	mesh := noc.Mesh{Width: 6, Height: 6}
	mcs := noc.DiamondMCPlacement(mesh, 8)
	isMC := map[int]bool{}
	for _, n := range mcs {
		isMC[n] = true
	}

	cfg := noc.Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     noc.RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if *ari {
		cfg.Nodes = make([]noc.NodeConfig, mesh.Nodes())
		for _, n := range mcs {
			cfg.Nodes[n] = noc.NodeConfig{NI: noc.NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var delivered uint64
	net.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) { delivered++ })

	// Few-to-many: each MC offers `load` long packets per packet-time to
	// uniformly random CC destinations.
	longPkt := noc.PacketSize(noc.ReadReply, cfg.LinkBits, cfg.DataBytes)
	perCycle := *load / float64(longPkt)
	src := rng.New(42)
	var ccs []int
	for n := 0; n < mesh.Nodes(); n++ {
		if !isMC[n] {
			ccs = append(ccs, n)
		}
	}

	fmt.Printf("reply network, %d MCs -> %d CCs, offered load %.2f pkt/pkt-time/MC, ARI=%v\n\n",
		len(mcs), len(ccs), *load, *ari)
	fmt.Printf("%8s %12s %12s %14s\n", "cycle", "delivered", "in-flight", "rejected")

	var rejected uint64
	for c := 0; c < *cycles; c++ {
		for _, mc := range mcs {
			if src.Float64() < perCycle {
				pkt := &noc.Packet{
					Type: noc.ReadReply,
					Dst:  ccs[src.Intn(len(ccs))],
					Size: longPkt,
				}
				if !net.Inject(mc, pkt) {
					rejected++
				}
			}
		}
		net.Step()
		if (c+1)%500 == 0 {
			fmt.Printf("%8d %12d %12d %14d\n", c+1, delivered, net.InFlight(), rejected)
		}
	}

	st := net.Stats()
	fmt.Printf("\nlink util %.4f flit/cycle; injection-link util (per MC) %.4f\n",
		st.MeshLinkUtil(), float64(st.InjLinkFlits)/float64(st.Cycles)/float64(len(mcs)))
	fmt.Printf("avg NI occupancy %.1f flits (capacity %d)\n",
		net.NIOccupancyAvgFlits(), net.NIQueueCapacityFlits(mcs[0]))
	fmt.Printf("avg reply packet latency %.1f cycles\n", st.AvgLatency(noc.ReadReply))
	fmt.Println("\n(Compare -ari against the default: the backlog and rejects collapse.)")
}
