package exp

import (
	"bufio"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// badConfig returns a config that fails core validation, for exercising the
// failure paths without touching the simulator.
func badConfig(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.MeshWidth = 0
	cfg.Seed = seed
	return cfg
}

func TestRunAllFailFast(t *testing.T) {
	r := tinyRunner(t)
	r.Workers = 1
	// Eight distinct invalid jobs: with one worker and fail-fast dispatch,
	// the sweep must stop long before all eight are attempted.
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{Cfg: badConfig(uint64(i)), Kernel: r.Benchmarks[0]})
	}
	_, err := r.RunAll(jobs)
	if err == nil {
		t.Fatal("invalid jobs returned no error")
	}
	if !strings.Contains(err.Error(), r.Benchmarks[0].Name) {
		t.Errorf("error does not name the benchmark: %v", err)
	}
	// errors.Join exposes the collected failures via Unwrap() []error.
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("error is %T, not a joined error: %v", err, err)
	}
	// At most the in-flight job plus one already handed to the worker can
	// fail after the first failure closes dispatch.
	if n := len(joined.Unwrap()); n >= len(jobs) {
		t.Errorf("dispatch did not stop on failure: %d of %d jobs ran", n, len(jobs))
	}
	if r.Runs() != 0 {
		t.Errorf("runs = %d, want 0", r.Runs())
	}
}

func TestRunAllJoinsAllWorkerErrors(t *testing.T) {
	r := tinyRunner(t)
	r.Workers = 4
	// Four invalid jobs, four workers: dispatch can hand every job out
	// before the first failure reports, so all failures must come back.
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, Job{Cfg: badConfig(uint64(100 + i)), Kernel: r.Benchmarks[i%len(r.Benchmarks)]})
	}
	_, err := r.RunAll(jobs)
	if err == nil {
		t.Fatal("invalid jobs returned no error")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("error is %T, not a joined error: %v", err, err)
	}
	if n := len(joined.Unwrap()); n == 0 {
		t.Fatal("joined error holds no failures")
	}
}

func TestRunAllRecoversPanic(t *testing.T) {
	orig := newSimulator
	defer func() { newSimulator = orig }()
	newSimulator = func(cfg core.Config, k trace.Kernel) (*core.Simulator, error) {
		panic("injected test panic")
	}

	r := tinyRunner(t)
	_, err := r.Run(r.withScheme(core.XYBaseline), r.Benchmarks[0])
	if err == nil {
		t.Fatal("panicking run returned no error")
	}
	for _, want := range []string{"panic", "injected test panic", r.Benchmarks[0].Name, core.XYBaseline.String()} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("recovered error missing %q: %v", want, err)
		}
	}
}

func TestRunAllContextCancel(t *testing.T) {
	r := tinyRunner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunAllContext(ctx, []Job{{Cfg: r.withScheme(core.XYBaseline), Kernel: r.Benchmarks[0]}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTimeout(t *testing.T) {
	r := tinyRunner(t)
	r.Base.MeasureCycles = 1 << 30 // would run for hours
	r.RunTimeout = 20 * time.Millisecond
	_, err := r.Run(r.withScheme(core.XYBaseline), r.Benchmarks[0])
	if err == nil {
		t.Fatal("over-budget run returned no error")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout error", err)
	}
}

// sweepJobs is a small 3-benchmark x 2-scheme matrix used by the journal
// tests.
func sweepJobs(r *Runner) []Job {
	var jobs []Job
	for _, k := range r.Benchmarks {
		for _, s := range []core.Scheme{core.XYBaseline, core.AdaARI} {
			jobs = append(jobs, Job{Cfg: r.withScheme(s), Kernel: k})
		}
	}
	return jobs
}

func TestJournalResumeAfterKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	// Uninterrupted sweep, journalled.
	r1 := tinyRunner(t)
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1.Journal = j1
	want, err := r1.RunAll(sweepJobs(r1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	total := r1.Runs()
	if total != len(want) {
		t.Fatalf("runs = %d, want %d", total, len(want))
	}

	// Simulate a kill: keep the first 2 complete lines, then a torn partial
	// write of the third — exactly what SIGKILL mid-append leaves behind.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != total {
		t.Fatalf("journal has %d lines, want %d", len(lines), total)
	}
	const keep = 2
	torn := strings.Join(lines[:keep], "\n") + "\n" + lines[keep][:len(lines[keep])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume in a fresh process image: a new Runner with no cache.
	r2 := tinyRunner(t)
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != keep {
		t.Fatalf("resumed journal loaded %d entries, want %d", j2.Loaded(), keep)
	}
	r2.Journal = j2
	got, err := r2.RunAll(sweepJobs(r2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Runs() != total-keep {
		t.Fatalf("resumed sweep ran %d simulations, want %d", r2.Runs(), total-keep)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("resumed sweep results differ from the uninterrupted sweep")
	}
	// The repaired journal must now hold every run again.
	if j2.Len() != total {
		t.Fatalf("journal holds %d entries after resume, want %d", j2.Len(), total)
	}
}

// TestJournalResumeAfterKillSharded repeats the kill/resume round-trip with
// sharded simulations (Config.Shards = 2): the journal's (config, benchmark)
// keys include the shard count, the resumed sweep must only re-run the lost
// entries, and — because sharded stepping is byte-identical to serial — the
// resumed results must equal the uninterrupted sweep's. Run under -race in
// CI, this also soaks the worker-pool teardown between journalled runs.
func TestJournalResumeAfterKillSharded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep-sharded.jsonl")

	r1 := tinyRunner(t)
	r1.Base.Shards = 2
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r1.Journal = j1
	want, err := r1.RunAll(sweepJobs(r1))
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	total := r1.Runs()

	// Simulate a kill mid-append: keep one complete record plus a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != total {
		t.Fatalf("journal has %d lines, want %d", len(lines), total)
	}
	const keep = 1
	torn := lines[0] + "\n" + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := tinyRunner(t)
	r2.Base.Shards = 2
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Loaded() != keep {
		t.Fatalf("resumed journal loaded %d entries, want %d", j2.Loaded(), keep)
	}
	r2.Journal = j2
	got, err := r2.RunAll(sweepJobs(r2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Runs() != total-keep {
		t.Fatalf("resumed sweep ran %d simulations, want %d", r2.Runs(), total-keep)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("resumed sharded sweep results differ from the uninterrupted sweep")
	}
	if j2.Len() != total {
		t.Fatalf("journal holds %d entries after resume, want %d", j2.Len(), total)
	}
}

func TestJournalIgnoresForeignVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	content := `{"v":999,"key":"abc","bench":"x","scheme":"y","result":{}}` + "\n" +
		"not json at all\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Loaded() != 0 {
		t.Fatalf("loaded %d foreign entries, want 0", j.Loaded())
	}
}
