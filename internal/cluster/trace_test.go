package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestGatewayHedgeTracePropagation pins the trace contract under hedging:
// both legs carry the same trace ID with distinct span IDs, the client gets
// the root context echoed back, and the losing leg's span still closes
// (marked cancelled) after the winner is relayed.
func TestGatewayHedgeTracePropagation(t *testing.T) {
	base := core.DefaultConfig()
	req := serve.JobRequest{Bench: "bfs"}

	release := make(chan struct{})
	defer close(release)
	var first atomic.Bool
	var mu sync.Mutex
	var headers []string
	hedgeAware := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		headers = append(headers, r.Header.Get(obs.TraceHeader))
		mu.Unlock()
		if first.CompareAndSwap(false, true) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		okJobs("k")(w, r)
	}
	a := startFakeReplica(t, hedgeAware)
	b := startFakeReplica(t, hedgeAware)
	g := gateFor(t, Config{
		Base: base, Replicas: []string{a.ts.URL, b.ts.URL},
		HedgeAfter: 20 * time.Millisecond, TraceSample: 1,
	})

	w := postJob(t, g, req)
	if w.Code != http.StatusOK {
		t.Fatalf("hedged submit: %d %s", w.Code, w.Body)
	}

	// The client learns the root context from the response header.
	echo, ok := obs.ParseTraceContext(w.Header().Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("response %s header = %q, not a trace context", obs.TraceHeader, w.Header().Get(obs.TraceHeader))
	}

	// Both legs saw the same trace with distinct attempt spans.
	mu.Lock()
	got := append([]string(nil), headers...)
	mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("legs seen = %d, want 2 (%q)", len(got), got)
	}
	tc0, ok0 := obs.ParseTraceContext(got[0])
	tc1, ok1 := obs.ParseTraceContext(got[1])
	if !ok0 || !ok1 {
		t.Fatalf("legs carried unparsable contexts: %q", got)
	}
	if tc0.Trace != echo.Trace || tc1.Trace != echo.Trace {
		t.Fatalf("trace IDs diverge: root=%s legs=%s,%s", echo.Trace, tc0.Trace, tc1.Trace)
	}
	if tc0.Span == tc1.Span {
		t.Fatalf("hedge legs share a span ID: %s", tc0.Span)
	}

	// The loser's span closes once its context is cancelled; poll for it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := g.spans.Spans(echo.Trace)
		var root, attempts, cancelled int
		for _, s := range spans {
			switch s.Name {
			case "gateway.route":
				root++
				if s.Attrs["outcome"] != "ok" {
					t.Fatalf("root outcome = %q", s.Attrs["outcome"])
				}
			case "gateway.attempt":
				attempts++
				if s.Attrs["cancelled"] == "true" {
					cancelled++
				}
			}
		}
		if root == 1 && attempts == 2 && cancelled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans never settled: root=%d attempts=%d cancelled=%d (%+v)",
				root, attempts, cancelled, spans)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayUntracedByDefault: with sampling off and no incoming context,
// no spans are minted and no trace header leaks to replicas or clients.
func TestGatewayUntracedByDefault(t *testing.T) {
	var hdr atomic.Value
	a := startFakeReplica(t, func(w http.ResponseWriter, r *http.Request) {
		hdr.Store(r.Header.Get(obs.TraceHeader))
		okJobs("k")(w, r)
	})
	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.ts.URL}})
	w := postJob(t, g, serve.JobRequest{Bench: "bfs"})
	if w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	if h, _ := hdr.Load().(string); h != "" {
		t.Fatalf("replica saw trace header %q with sampling off", h)
	}
	if h := w.Header().Get(obs.TraceHeader); h != "" {
		t.Fatalf("client got trace header %q with sampling off", h)
	}
	if n := g.spans.Len(); n != 0 {
		t.Fatalf("recorder holds %d spans with sampling off", n)
	}
}

// TestGatewayRelaysHTTPDateRetryAfter: a replica's HTTP-date Retry-After
// must survive both relay paths — the verbatim relay of a deterministic
// rejection, and the gateway's own shed after failover exhaustion.
func TestGatewayRelaysHTTPDateRetryAfter(t *testing.T) {
	const date = "Wed, 21 Oct 2026 07:28:00 GMT"

	// Terminal relay: a deterministic rejection carrying an HTTP date.
	a := startFakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", date)
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such kernel"}`)
	})
	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.ts.URL}})
	w := postJob(t, g, serve.JobRequest{Bench: "bfs"})
	if w.Code != http.StatusNotFound {
		t.Fatalf("relay status = %d", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != date {
		t.Fatalf("relayed Retry-After = %q, want the HTTP date verbatim", got)
	}

	// Exhaustion shed: every owner sheds with an HTTP-date hint that Atoi
	// cannot parse; the gateway must forward it rather than flooring to 1s.
	shed := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", date)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	b := startFakeReplica(t, shed)
	c := startFakeReplica(t, shed)
	g2 := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{b.ts.URL, c.ts.URL}})
	w2 := postJob(t, g2, serve.JobRequest{Bench: "bfs"})
	if w2.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d", w2.Code)
	}
	if got := w2.Header().Get("Retry-After"); got != date {
		t.Fatalf("shed Retry-After = %q, want the HTTP date verbatim", got)
	}

	// Mixed hints: an integer from one owner beats a date from another —
	// the parsed max stays authoritative when available.
	d := startFakeReplica(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "9")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	e := startFakeReplica(t, shed)
	g3 := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{d.ts.URL, e.ts.URL}})
	w3 := postJob(t, g3, serve.JobRequest{Bench: "bfs"})
	if w3.Code != http.StatusTooManyRequests {
		t.Fatalf("mixed shed status = %d", w3.Code)
	}
	if got := w3.Header().Get("Retry-After"); got != "9" {
		t.Fatalf("mixed shed Retry-After = %q, want \"9\"", got)
	}
}

func TestRelabelSample(t *testing.T) {
	label := `replica="http://a:1"`
	cases := []struct{ in, want string }{
		{"x_total 3", `x_total{replica="http://a:1"} 3`},
		{`x{job="a b"} 2`, `x{replica="http://a:1",job="a b"} 2`},
		{"x{} 1", `x{replica="http://a:1"} 1`},
		{`y{le="+Inf"} 4`, `y{replica="http://a:1",le="+Inf"} 4`},
	}
	for _, c := range cases {
		got, ok := relabelSample(c.in, label)
		if !ok || got != c.want {
			t.Errorf("relabelSample(%q) = %q ok=%v, want %q", c.in, got, ok, c.want)
		}
	}
	if _, ok := relabelSample("", label); ok {
		t.Error("empty line accepted")
	}
}

// TestGatewayClusterMetricsRollup federates two live replicas and one dead
// one: samples are relabelled per replica, family headers appear once, and
// scrape_up reports the dead replica.
func TestGatewayClusterMetricsRollup(t *testing.T) {
	expo := func(v int) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "# HELP ariserve_jobs_total Jobs.\n# TYPE ariserve_jobs_total counter\nariserve_jobs_total %d\n", v)
			fmt.Fprintf(w, "ariserve_job_p50_cycles{job=\"bfs/XY base\"} %d\n", v*10)
		}
	}
	newRep := func(v int) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
		mux.HandleFunc("/metrics", expo(v))
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := newRep(1), newRep(2)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	g := gateFor(t, Config{Base: core.DefaultConfig(), Replicas: []string{a.URL, b.URL, deadURL}})
	ts := httptest.NewServer(g)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	got := string(body)

	for _, want := range []string{
		fmt.Sprintf(`ari_cluster_scrape_up{replica="%s"} 1`, a.URL),
		fmt.Sprintf(`ari_cluster_scrape_up{replica="%s"} 0`, deadURL),
		fmt.Sprintf(`ariserve_jobs_total{replica="%s"} 1`, a.URL),
		fmt.Sprintf(`ariserve_jobs_total{replica="%s"} 2`, b.URL),
		fmt.Sprintf(`ariserve_job_p50_cycles{replica="%s",job="bfs/XY base"} 10`, a.URL),
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rollup missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "# HELP ariserve_jobs_total"); n != 1 {
		t.Errorf("HELP emitted %d times, want once:\n%s", n, got)
	}
}
