// Command arisim runs one (benchmark, scheme) simulation and prints the
// detailed statistics: IPC, packet latencies, traffic mix, link utilisation,
// MC stall time and cache behaviour.
//
// Usage:
//
//	arisim -bench bfs -scheme Ada-ARI -cycles 20000 [-warmup 4000]
//	       [-mesh 6x6] [-mc 8] [-vcs 4] [-reqlink 128] [-replink 128]
//	       [-speedup 4] [-priolevels 2] [-seed 1] [-list]
//
// With -estimate, the analytical model (internal/analytic, DESIGN.md §12)
// answers in microseconds instead of running the simulation.
//
// Fault injection (DESIGN.md §13): -corrupt-prob and -link-death enable
// seeded flit corruption (recovered by CRC + NACK retransmission) and
// permanent link deaths (detoured by fault-adaptive routing).
//
// Observability (DESIGN.md §10):
//
//	arisim -bench bfs -obs-interval 100 -obs-out metrics.csv   # per-interval time series
//	arisim -bench bfs -trace-sample 16 -trace-out trace.json   # Chrome trace + latency decomposition
//	arisim -bench bfs -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "bfs", "benchmark name (see -list)")
		schemeStr = flag.String("scheme", "Ada-ARI", "scheme: XY-Baseline, XY-ARI, Ada-Baseline, Ada-MultiPort, Ada-ARI, Acc-Supply, Acc-Consume, Acc-Both-NoPriority, DA2Mesh, DA2Mesh+ARI")
		cycles    = flag.Int64("cycles", 20000, "measured NoC cycles")
		warmup    = flag.Int64("warmup", 4000, "warmup NoC cycles")
		meshStr   = flag.String("mesh", "6x6", "mesh WxH")
		numMC     = flag.Int("mc", 8, "memory controllers")
		vcs       = flag.Int("vcs", 4, "virtual channels per port")
		reqLink   = flag.Int("reqlink", 128, "request-network link bits")
		repLink   = flag.Int("replink", 128, "reply-network link bits")
		speedup   = flag.Int("speedup", 4, "injection-port crossbar speedup")
		prio      = flag.Int("priolevels", 2, "ARI priority levels")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		shards    = flag.Int("shards", 0, "intra-run parallelism: step the mesh across this many worker shards (0/1 = serial; results are byte-identical either way)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		record    = flag.String("record", "", "record the memory trace to this file")
		replay    = flag.String("replay", "", "replay a recorded memory trace from this file")
		confFile  = flag.String("config", "", "load the base configuration from a JSON file (flags still override)")
		dumpConf  = flag.Bool("dumpconfig", false, "print the effective configuration as JSON and exit")
		work      = flag.Uint64("work", 0, "fixed-work mode: measure until this many warp-instructions retire (0 = fixed horizon)")

		corruptProb = flag.Float64("corrupt-prob", 0, "per-cycle probability of a flit-corruption burst; > 0 enables fault injection and the NoC recovery layer (CRC + NACK retransmission)")
		linkDeath   = flag.Float64("link-death", 0, "per-cycle probability of a permanent link death; > 0 enables fault injection with fault-adaptive routing around dead links")
		heatmap     = flag.Bool("heatmap", false, "print per-node reply-network link/injection utilisation grids")
		estimate    = flag.Bool("estimate", false, "answer from the analytical model (internal/analytic) instead of simulating; microseconds instead of seconds")

		obsInterval = flag.Int64("obs-interval", 0, "metrics sampling interval in NoC cycles (0 = observability off)")
		obsOut      = flag.String("obs-out", "", "write the sampled metric time series as CSV to this file (requires -obs-interval)")
		traceSample = flag.Uint64("trace-sample", 0, "record every Nth packet's lifecycle on both fabrics (0 = off)")
		traceOut    = flag.String("trace-out", "", "write sampled packet lifetimes as Chrome trace_event JSON to this file (requires -trace-sample)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, k := range trace.Suite() {
			fmt.Printf("%-16s %s\n", k.Name, k.Sens)
		}
		return
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fatal(err)
	}
	kernel, err := trace.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	var w, h int
	if _, err := fmt.Sscanf(*meshStr, "%dx%d", &w, &h); err != nil {
		fatal(fmt.Errorf("bad -mesh %q: %w", *meshStr, err))
	}

	cfg := core.DefaultConfig()
	if *confFile != "" {
		data, err := os.ReadFile(*confFile)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *confFile, err))
		}
	}
	// Explicitly passed flags override the file; defaults do not.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	override := func(name string, apply func()) {
		if *confFile == "" || set[name] {
			apply()
		}
	}
	override("mesh", func() { cfg.MeshWidth, cfg.MeshHeight = w, h })
	override("mc", func() { cfg.NumMC = *numMC })
	override("vcs", func() { cfg.VCs = *vcs })
	override("reqlink", func() { cfg.ReqLinkBits = *reqLink })
	override("replink", func() { cfg.RepLinkBits = *repLink })
	override("scheme", func() { cfg.Scheme = scheme })
	override("speedup", func() { cfg.InjSpeedup = *speedup })
	override("priolevels", func() { cfg.PriorityLevels = *prio })
	override("seed", func() { cfg.Seed = *seed })
	override("shards", func() { cfg.Shards = *shards })
	override("warmup", func() { cfg.WarmupCycles = *warmup })
	override("cycles", func() { cfg.MeasureCycles = *cycles })
	override("corrupt-prob", func() {
		if *corruptProb > 0 {
			cfg.Fault.Enabled = true
			cfg.Fault.CorruptProb = *corruptProb
		}
	})
	override("link-death", func() {
		if *linkDeath > 0 {
			cfg.Fault.Enabled = true
			cfg.Fault.LinkDeathProb = *linkDeath
		}
	})

	if *dumpConf {
		out, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}

	if *estimate {
		est, err := analytic.EstimateOne(cfg, kernel)
		if err != nil {
			fatal(err)
		}
		printEstimate(est)
		return
	}

	workload, finish, err := buildWorkload(*record, *replay, cfg, kernel)
	if err != nil {
		fatal(err)
	}
	sim, err := core.NewSimulatorWorkload(cfg, kernel, workload)
	if err != nil {
		fatal(err)
	}
	defer sim.Close()
	if *traceSample > 0 && sim.Shards() > 1 {
		fatal(fmt.Errorf("-trace-sample requires serial stepping: packet tracing observes flits mid-flight and is incompatible with -shards %d", cfg.Shards))
	}

	var reg *obs.Registry
	if *obsInterval > 0 {
		reg = obs.NewRegistry(*obsInterval)
		obs.AttachSimulator(reg, sim)
		reg.Reserve(int((cfg.WarmupCycles+cfg.MeasureCycles) / *obsInterval) + 2)
	}
	var reqColl, repColl *obs.Collector
	if *traceSample > 0 {
		reqColl, repColl = obs.AttachTracers(sim, *traceSample)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var r core.Result
	if *work > 0 {
		r = sim.RunWork(*work, cfg.MeasureCycles*100)
	} else {
		r = sim.Run()
	}
	if finish != nil {
		if err := finish(); err != nil {
			fatal(err)
		}
	}
	printResult(r)
	if *heatmap {
		printHeatmap(sim, cfg)
	}
	if reg != nil {
		if err := writeMetricsCSV(reg, *obsOut); err != nil {
			fatal(err)
		}
	}
	if *traceSample > 0 {
		printDecomposition(reqColl, repColl)
		if *traceOut != "" {
			if err := writeChromeTrace(*traceOut, reqColl, repColl); err != nil {
				fatal(err)
			}
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// writeMetricsCSV dumps the sampled time series (to stdout when no path is
// given).
func writeMetricsCSV(reg *obs.Registry, path string) error {
	if path == "" {
		fmt.Printf("\nmetrics (%d samples every %d cycles):\n", reg.Samples(), reg.Interval())
		return reg.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d metric samples to %s\n", reg.Samples(), path)
	return nil
}

// printDecomposition prints the traced latency attribution per fabric — the
// paper's Fig. 2/3 split, from lifecycle samples instead of aggregates.
func printDecomposition(reqColl, repColl *obs.Collector) {
	fmt.Println("\ntraced latency decomposition (cycles, mean over sampled packets):")
	fmt.Printf("%-8s %8s %8s %8s %8s %8s %11s\n", "fabric", "packets", "queue", "network", "eject", "total", "queue share")
	for _, c := range []*obs.Collector{reqColl, repColl} {
		if c == nil {
			continue
		}
		d := c.Decompose()
		fmt.Printf("%-8s %8d %8.1f %8.1f %8.1f %8.1f %10.1f%%\n",
			c.Label, d.Packets, d.Queue.Value(), d.Net.Value(), d.Eject.Value(),
			d.Total.Value(), 100*d.QueueFraction())
	}
}

// writeChromeTrace exports the sampled lifecycles for chrome://tracing.
func writeChromeTrace(path string, colls ...*obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var active []*obs.Collector
	for _, c := range colls {
		if c != nil {
			active = append(active, c)
		}
	}
	if err := obs.WriteChromeTrace(f, active...); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s\n", path)
	return nil
}

// printHeatmap renders the reply network's per-node load: the summed mesh
// link flits/cycle leaving each router, and each NI's injection-link
// flits/cycle. The MC nodes light up on the injection grid while the mesh
// grid stays cool — the §3 observation made visible.
func printHeatmap(sim *core.Simulator, cfg core.Config) {
	rep, ok := sim.ReplyNet().(*noc.Network)
	if !ok {
		fmt.Println("\n(heatmap available only for mesh reply fabrics)")
		return
	}
	cycles := float64(rep.Stats().Cycles)
	if cycles == 0 {
		return
	}
	link := rep.LinkLoad()
	ni := rep.NILoad()
	isMC := map[int]bool{}
	for _, n := range sim.MCNodes() {
		isMC[n] = true
	}
	mark := func(node int) byte {
		if isMC[node] {
			return '*'
		}
		return ' '
	}
	fmt.Println("\nreply-network mesh-link load (flits/cycle out of each router; * = MC):")
	for y := 0; y < cfg.MeshHeight; y++ {
		for x := 0; x < cfg.MeshWidth; x++ {
			node := y*cfg.MeshWidth + x
			var total uint64
			for d := 0; d < 4; d++ {
				total += link[node][d]
			}
			fmt.Printf(" %5.2f%c", float64(total)/cycles, mark(node))
		}
		fmt.Println()
	}
	fmt.Println("\nreply-network injection-link load (flits/cycle from each NI):")
	for y := 0; y < cfg.MeshHeight; y++ {
		for x := 0; x < cfg.MeshWidth; x++ {
			node := y*cfg.MeshWidth + x
			fmt.Printf(" %5.2f%c", float64(ni[node])/cycles, mark(node))
		}
		fmt.Println()
	}
}

// buildWorkload wires the optional trace record/replay paths. It returns a
// nil workload (synthetic generation) when neither flag is set, and a
// finish hook to flush/close files.
func buildWorkload(record, replay string, cfg core.Config, kernel trace.Kernel) (trace.Workload, func() error, error) {
	switch {
	case record != "" && replay != "":
		return nil, nil, fmt.Errorf("-record and -replay are mutually exclusive")
	case replay != "":
		f, err := os.Open(replay)
		if err != nil {
			return nil, nil, err
		}
		rep, err := trace.NewReplayer(f)
		cerr := f.Close()
		if err != nil {
			return nil, nil, err
		}
		if cerr != nil {
			return nil, nil, cerr
		}
		cores, warps := rep.Shape()
		need := cfg.MeshWidth*cfg.MeshHeight - cfg.NumMC
		if cores != need || warps != kernel.WarpsPerCore {
			return nil, nil, fmt.Errorf("trace shape %dx%d does not match system %dx%d",
				cores, warps, need, kernel.WarpsPerCore)
		}
		return rep, nil, nil
	case record != "":
		cores := cfg.MeshWidth*cfg.MeshHeight - cfg.NumMC
		gen, err := trace.NewGenerator(kernel, cores, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		f, err := os.Create(record)
		if err != nil {
			return nil, nil, err
		}
		rec, err := trace.NewRecorder(gen, f, cores, kernel.WarpsPerCore)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		finish := func() error {
			if err := rec.Flush(); err != nil {
				f.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "recorded %d trace records to %s\n", rec.Records(), record)
			return f.Close()
		}
		return rec, finish, nil
	default:
		return nil, nil, nil
	}
}

func parseScheme(s string) (core.Scheme, error) {
	for sch := core.Scheme(0); int(sch) < core.NumSchemes; sch++ {
		if strings.EqualFold(sch.String(), s) {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

// printEstimate renders the analytical model's answer in the same shape as
// a simulated result, clearly labelled as an estimate.
func printEstimate(e analytic.Estimate) {
	fmt.Printf("benchmark        %s\n", e.Bench)
	fmt.Printf("scheme           %s\n", e.Scheme)
	fmt.Println("mode             analytical estimate (no simulation; see DESIGN.md §12 for error bands)")
	fmt.Printf("IPC              %.3f warp-instr/core-cycle (aggregate)\n", e.IPC)
	fmt.Println()
	fmt.Printf("request net:  avg pkt latency %.1f\n", e.ReqLatency)
	fmt.Printf("reply net:    avg pkt latency %.1f\n", e.RepLatency)
	fmt.Printf("MC turnaround    %.1f cycles\n", e.MCService)
	fmt.Printf("load round trip  %.1f cycles\n", e.RoundTrip)
	fmt.Printf("reply injection  %.4f pkt/cycle/MC (saturation %.4f%s)\n",
		e.RepInjRate, e.SaturationRate, map[bool]string{true: ", SATURATED", false: ""}[e.Saturated])
}

func printResult(r core.Result) {
	fmt.Printf("benchmark        %s\n", r.Benchmark)
	fmt.Printf("scheme           %s\n", r.Scheme)
	fmt.Printf("measured cycles  %d (NoC) / %d (core)\n", r.MeasuredCycles, r.CoreCycles)
	fmt.Printf("instructions     %d\n", r.Instructions)
	fmt.Printf("IPC              %.3f warp-instr/core-cycle (aggregate)\n", r.IPC)
	fmt.Println()
	fmt.Printf("request net:  avg pkt latency %.1f  link util %.4f  inj util %.4f\n",
		r.Req.AvgLatency(noc.ReadRequest, noc.WriteRequest), r.Req.MeshLinkUtil(), r.Req.InjLinkUtil())
	fmt.Printf("reply net:    avg pkt latency %.1f  link util %.4f  inj util %.4f\n",
		r.Rep.AvgLatency(noc.ReadReply, noc.WriteReply), r.Rep.MeshLinkUtil(), r.Rep.InjLinkUtil())
	fmt.Println()
	fmt.Printf("traffic mix (flit-weighted):")
	for t := noc.PacketType(0); int(t) < noc.NumPacketTypes; t++ {
		fmt.Printf("  %s %.1f%%", t, 100*flitShareBoth(&r, t))
	}
	fmt.Println()
	fmt.Printf("MC stall time    %d cycles (blocked %d)\n", r.MCStallTime, r.MCBlockedCycles)
	fmt.Printf("replies sent     %d\n", r.RepliesSent)
	fmt.Printf("NI occupancy     %.1f flits avg (cap %d)\n", r.NIOccAvgFlits, r.NIQueueCapFlits)
	fmt.Printf("L1 hit %.3f  L2 hit %.3f  DRAM row hit %.3f\n", r.L1HitRate, r.L2HitRate, r.DRAMRowHitRate)
	if r.FaultEvents > 0 || r.Recovery != (noc.RecoveryStats{}) {
		fmt.Println()
		fmt.Printf("faults injected  %d (dead links %d)\n", r.FaultEvents, r.Recovery.DeadLinks)
		fmt.Printf("recovery         %d corrupted pkts dropped+NACKed, %d retransmitted, %d buffer-full rejects\n",
			r.Recovery.CorruptPackets, r.Recovery.RetransPackets, r.Recovery.RetransBufFullRejects)
	}
}

// flitShareBoth computes a packet type's share of flits across the two
// networks combined, the paper's Fig 5 weighting.
func flitShareBoth(r *core.Result, t noc.PacketType) float64 {
	var total, mine uint64
	for i := 0; i < noc.NumPacketTypes; i++ {
		total += r.Req.FlitsInjected[i] + r.Rep.FlitsInjected[i]
	}
	mine = r.Req.FlitsInjected[t] + r.Rep.FlitsInjected[t]
	if total == 0 {
		return 0
	}
	return float64(mine) / float64(total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arisim:", err)
	os.Exit(1)
}
