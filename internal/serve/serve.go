// Package serve turns the hardened experiment harness into a long-lived
// simulation service: an HTTP job server that is robust by construction.
//
//   - Admission control: a bounded queue with load shedding. An overloaded
//     server answers 429 with a Retry-After derived from the observed
//     service time instead of queueing unboundedly — when buffers run out,
//     reject-and-retry beats unbounded queueing, exactly the deflection
//     argument the paper makes for bufferless reply fabrics.
//   - Deadlines end-to-end: a client-supplied deadline propagates via the
//     request context into the run's watchdog interrupt; an expired job is
//     cancelled at its next poll, never orphaned.
//   - Crash-only job store: job state rides the fsync'd JSONL journal, so
//     a SIGKILL'd server restarts with every completed job intact and
//     re-runs only what was in flight — byte-identically, because the
//     simulator is deterministic.
//   - Graceful drain: BeginDrain/Shutdown stop admission (readiness flips),
//     finish in-flight jobs under a deadline, then abort stragglers.
//
// Jobs are idempotent: they are keyed by exp.JobKey(config, benchmark), so
// a client may retry a submission any number of times — against the same
// or a restarted server — and pay for at most one simulation.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/obs"
)

// Config configures a Server.
type Config struct {
	// Runner executes (and caches/journals) the simulations. Required.
	// Attach a Journal to it to make the server crash-safe across restarts.
	Runner *exp.Runner

	// MaxInFlight bounds concurrently executing simulations. The default is
	// GOMAXPROCS divided by the Runner's per-run shard count
	// (Runner.Base.Shards, clamped to the base mesh height), so intra-run
	// parallelism and concurrent admission together stay within the machine:
	// shards x concurrent runs <= GOMAXPROCS. Set explicitly to override.
	MaxInFlight int

	// QueueDepth bounds jobs admitted but waiting for an execution slot.
	// 0 selects the default (2×MaxInFlight); negative means no waiting
	// slots at all — every job beyond MaxInFlight is shed.
	QueueDepth int

	// Monitor tracks executing runs for /metrics and /debug/nocstate. Nil
	// selects the Runner's monitor, or a fresh one installed on the Runner
	// (only when the Runner has none — an existing monitor is shared).
	Monitor *obs.RunMonitor

	// Peers lists sibling replica base URLs for cluster result sharing: on
	// a store miss the server asks each peer's GET /v1/results/<key> before
	// scheduling a simulation, so a job journaled on any replica is served
	// from every replica without re-running. Peer errors are ignored — a
	// replica partitioned from its peers degrades to serving its local
	// journal and running jobs itself, never to failing them.
	Peers []string

	// PeerTimeout bounds the whole peer-fetch pass across all peers
	// (default 1s). Keep it short: a dead peer must cost a connection
	// refusal, not a hung submission.
	PeerTimeout time.Duration

	// PeerClient overrides the HTTP client used for peer fetches.
	PeerClient *http.Client

	// TraceSample mints a distributed trace for 1 in N submissions that
	// arrive without an X-Ari-Trace context (0 disables minting; a valid
	// incoming context is always continued — the sender sampled).
	TraceSample int

	// TraceCap bounds the in-memory span recorder (obs.DefaultSpanCap
	// when 0).
	TraceCap int

	// TracePackets bounds the sampled NoC packet lifecycles linked into a
	// traced run's spans (default 256; negative disables packet linking).
	TracePackets int

	// PacketSample is the packet-tracer sampling stride for traced runs
	// (default 16: every 16th packet gets a lifecycle span).
	PacketSample int

	// Process names this replica in exported traces (default "ariserve");
	// give each cluster replica a distinct name so the merged Chrome trace
	// renders one process row per replica.
	Process string

	// SLOTarget is the submission-latency objective boundary: a 2xx answer
	// within it is a good event (default 30s — simulations are heavy).
	SLOTarget time.Duration

	// SLOGoal is the objective's target good fraction (default 0.99).
	SLOGoal float64
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Admitted is the number of jobs currently holding a queue slot
	// (executing + waiting).
	Admitted int `json:"admitted"`
	// Completed counts simulations finished by this process (cache and
	// journal hits excluded).
	Completed int64 `json:"completed"`
	// CacheHits counts submissions answered from the cache or journal.
	CacheHits int64 `json:"cache_hits"`
	// PeerHits counts submissions answered from a cluster peer's journal
	// via /v1/results, adopted locally without running.
	PeerHits int64 `json:"peer_hits"`
	// Estimated counts submissions answered by the analytical model
	// (estimate-mode requests that missed the store).
	Estimated int64 `json:"estimated"`
	// Shed counts submissions rejected with 429 because the queue was full.
	Shed int64 `json:"shed"`
	// Draining reports that admission is closed.
	Draining bool `json:"draining"`
	// ServiceTimeMs is the exponentially weighted moving average of
	// observed simulation wall time, the basis of Retry-After.
	ServiceTimeMs float64 `json:"service_time_ms"`
	// FaultEvents totals the injected NoC faults over every simulation this
	// process ran; RecoveredPackets totals their corrupted-and-retransmitted
	// packets (zero for fault-free configurations).
	FaultEvents      int64 `json:"fault_events"`
	RecoveredPackets int64 `json:"recovered_packets"`
}

// Server is the http.Handler implementing the job API:
//
//	POST /v1/jobs   submit a JobRequest, receive a JobResponse
//	GET  /v1/stats  server counters (Stats)
//	GET  /healthz   liveness: 200 while the process runs
//	GET  /readyz    readiness: 200 while admitting, 503 once draining
type Server struct {
	runner      *exp.Runner
	maxInFlight int
	queue       chan struct{} // admission slots (executing + waiting)
	work        chan struct{} // execution slots
	mux         *http.ServeMux
	monitor     *obs.RunMonitor
	started     time.Time
	peers       []string
	peerTimeout time.Duration
	peerClient  *http.Client

	spans        *obs.SpanRecorder
	traceSample  int
	traceSeq     atomic.Int64
	tracePackets int
	packetSample int
	process      string
	jobHist      obs.Histogram // full submission latency of 2xx answers, µs
	queueHist    obs.Histogram // wait for an execution slot, µs
	runHist      obs.Histogram // simulation wall time, µs
	slo          *obs.SLOTracker

	// traced maps job keys of in-flight traced runs to their collector
	// rendezvous (see tracedRun).
	traceMu sync.Mutex
	traced  map[string]*tracedRun

	// rootCtx is cancelled by Abort: every in-flight run aborts at its
	// next watchdog poll. This is the drain-deadline / simulated-crash path.
	rootCtx context.Context
	abort   context.CancelFunc

	mu          sync.Mutex
	draining    bool
	ewma        time.Duration
	completed   int64
	cacheHits   int64
	peerHits    int64
	estimated   int64
	shed        int64
	faultEvents int64
	recovered   int64
	inflight    sync.WaitGroup
}

// New builds a Server over cfg.Runner.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, errors.New("serve: Config.Runner is required")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = runtime.GOMAXPROCS(0)
		base := cfg.Runner.Base
		if s := noc.EffectiveShards(noc.Mesh{Width: base.MeshWidth, Height: base.MeshHeight}, base.Shards); s > 1 {
			maxInFlight /= s
		}
		if maxInFlight < 1 {
			maxInFlight = 1
		}
	}
	queueDepth := cfg.QueueDepth
	switch {
	case queueDepth == 0:
		queueDepth = 2 * maxInFlight
	case queueDepth < 0:
		queueDepth = 0
	}
	monitor := cfg.Monitor
	if monitor == nil {
		monitor = cfg.Runner.Monitor
	}
	if monitor == nil {
		monitor = obs.NewRunMonitor()
	}
	if cfg.Runner.Monitor == nil {
		cfg.Runner.Monitor = monitor
	}
	peerTimeout := cfg.PeerTimeout
	if peerTimeout <= 0 {
		peerTimeout = time.Second
	}
	peerClient := cfg.PeerClient
	if peerClient == nil {
		peerClient = http.DefaultClient
	}
	tracePackets := cfg.TracePackets
	switch {
	case tracePackets == 0:
		tracePackets = 256
	case tracePackets < 0:
		tracePackets = 0
	}
	packetSample := cfg.PacketSample
	if packetSample <= 0 {
		packetSample = 16
	}
	process := cfg.Process
	if process == "" {
		process = "ariserve"
	}
	target := cfg.SLOTarget
	if target <= 0 {
		target = 30 * time.Second
	}
	goal := cfg.SLOGoal
	if goal <= 0 || goal >= 1 {
		goal = 0.99
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		runner:      cfg.Runner,
		maxInFlight: maxInFlight,
		queue:       make(chan struct{}, maxInFlight+queueDepth),
		work:        make(chan struct{}, maxInFlight),
		monitor:     monitor,
		started:     time.Now(),
		peers:       cfg.Peers,
		peerTimeout: peerTimeout,
		peerClient:  peerClient,
		spans:       obs.NewSpanRecorder(cfg.TraceCap),
		traceSample: cfg.TraceSample,
		tracePackets: tracePackets,
		packetSample: packetSample,
		process:     process,
		slo: obs.NewSLOTracker([]obs.Objective{
			{Name: "job_latency", Threshold: target.Microseconds(), Goal: goal},
		}),
		traced:  make(map[string]*tracedRun),
		rootCtx: ctx,
		abort:   cancel,
	}
	// Chain onto the runner's InstrumentJob seam so traced runs get packet
	// collectors. The runner may be shared (peers, tests): preserve any hook
	// already installed.
	prevInstrument := cfg.Runner.InstrumentJob
	cfg.Runner.InstrumentJob = func(j exp.Job, sim *core.Simulator) {
		if prevInstrument != nil {
			prevInstrument(j, sim)
		}
		s.instrumentJob(j, sim)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/results/", s.handleResults)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/nocstate", s.handleNoCState)
	s.mux.HandleFunc("/debug/spans", s.handleSpans)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/slo", s.handleSLO)
	// pprof goes on the server's own mux — ariserve never serves the
	// DefaultServeMux, so the import's side-effect registrations alone
	// would be unreachable.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// BeginDrain closes admission: readiness flips to 503 and new submissions
// are rejected; jobs already admitted keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether admission is closed.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Abort cancels every in-flight job immediately (each aborts at its next
// watchdog poll). Completed jobs are already synced to the journal, so an
// Abort loses only in-flight work — the crash-only exit path.
func (s *Server) Abort() { s.abort() }

// Wait blocks until every admitted job has finished, or ctx expires.
func (s *Server) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown drains gracefully: admission closes, in-flight jobs get until
// ctx's deadline to finish, then are aborted. It returns ctx's error when
// the deadline forced an abort, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if err := s.Wait(ctx); err != nil {
		s.Abort()
		// Bounded: every run aborts at its next watchdog poll.
		s.inflight.Wait()
		return err
	}
	return nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Admitted:         len(s.queue),
		Completed:        s.completed,
		CacheHits:        s.cacheHits,
		PeerHits:         s.peerHits,
		Estimated:        s.estimated,
		Shed:             s.shed,
		Draining:         s.draining,
		ServiceTimeMs:    float64(s.ewma) / float64(time.Millisecond),
		FaultEvents:      s.faultEvents,
		RecoveredPackets: s.recovered,
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "draining"})
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	start := time.Now()
	jt := s.startJobTrace(w, r)
	defer jt.finish("abandoned") // client gone before an answer; first finish wins

	var q JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&q); err != nil {
		jt.finish("bad_request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	job, err := buildJob(s.runner.Base, &q)
	if err != nil {
		jt.finish("bad_request")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	key := exp.JobKey(job.Cfg, job.Kernel.Name)
	jt.setAttr("bench", job.Kernel.Name)
	jt.setAttr("key", key)

	// Idempotent fast path: a duplicate of a finished job — a client retry,
	// or any job the journal already holds after a restart — is answered
	// from the store without consuming a queue slot, even under overload
	// or drain.
	if res, ok := s.runner.Lookup(job.Cfg, job.Kernel.Name); ok {
		s.mu.Lock()
		s.cacheHits++
		s.mu.Unlock()
		jt.event("serve.journal_hit")
		s.answered(start)
		jt.finish("cached")
		writeJSON(w, http.StatusOK, JobResponse{Key: key, Cached: true, Result: res})
		return
	}

	// Estimate mode: answer from the analytical model in microseconds —
	// no queue slot, so estimates are never shed and work even while
	// draining. The client escalates to a real simulation by resubmitting
	// without Estimate; the JobKey stays the same, so the escalated run
	// lands in the journal and later estimate-mode lookups return it exact.
	if q.Estimate {
		est, err := analytic.EstimateOne(job.Cfg, job.Kernel)
		if err != nil {
			jt.finish("bad_request")
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "estimate: " + err.Error()})
			return
		}
		s.mu.Lock()
		s.estimated++
		s.mu.Unlock()
		s.answered(start)
		jt.finish("estimated")
		writeJSON(w, http.StatusOK, JobResponse{Key: key, Estimated: true, Estimate: &est})
		return
	}

	// Peer result-fetch: before spending an admission slot on a simulation,
	// ask the cluster peers whether the job is already journaled anywhere.
	// A hit is adopted into the local store (journal + cache, not counted as
	// a run) so the next duplicate is a plain local cache hit — and then
	// served exactly like one. Peer errors fall through to a normal run:
	// a partitioned replica keeps serving, it just stops sharing.
	if len(s.peers) > 0 {
		pf := jt.child("serve.peer_fetch")
		res, peer, ok := s.peerFetch(r.Context(), key)
		jt.endChild(pf, "hit", strconv.FormatBool(ok), "peer", peer)
		if ok {
			if err := s.runner.Adopt(job.Cfg, job.Kernel.Name, res); err != nil {
				// Journal write failure: still answer — the result is
				// correct, only the local durability is degraded.
				fmt.Fprintln(os.Stderr, "serve: adopt peer result:", err)
			}
			s.mu.Lock()
			s.peerHits++
			s.mu.Unlock()
			s.answered(start)
			jt.finish("peer")
			writeJSON(w, http.StatusOK, JobResponse{Key: key, Cached: true, Peer: peer, Result: res})
			return
		}
	}

	// Admission: shed instead of queueing unboundedly.
	adm := jt.child("serve.admission")
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		jt.endChild(adm, "outcome", "draining")
		s.slo.Fail()
		jt.finish("draining")
		s.reject(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case s.queue <- struct{}{}:
		s.inflight.Add(1)
		s.mu.Unlock()
		jt.endChild(adm, "outcome", "admitted")
	default:
		s.shed++
		s.mu.Unlock()
		jt.endChild(adm, "outcome", "shed")
		s.slo.Fail()
		jt.finish("shed")
		s.reject(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer func() {
		<-s.queue
		s.inflight.Done()
	}()

	// Deadline propagation: the client deadline (and disconnect) cancel via
	// the request context; a drain-deadline Abort cancels via rootCtx.
	ctx := r.Context()
	if d := q.Timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopAfter := context.AfterFunc(s.rootCtx, cancel)
	defer stopAfter()

	// Wait (bounded by the queue slot) for an execution slot.
	qw := jt.child("serve.queue_wait")
	waitStart := time.Now()
	select {
	case s.work <- struct{}{}:
		s.queueHist.ObserveDuration(time.Since(waitStart))
		jt.endChild(qw)
	case <-ctx.Done():
		s.queueHist.ObserveDuration(time.Since(waitStart))
		jt.endChild(qw, "cancelled", "true")
		s.slo.Fail()
		jt.finish("cancelled")
		s.writeRunError(w, ctx.Err())
		return
	}
	defer func() { <-s.work }()

	// The run span is the anchor of the trace's NoC layer: when this traced
	// run builds a simulator, instrumentJob attaches packet collectors, and
	// the sampled lifecycles land as child spans anchored at the span's
	// wall-clock start (1 cycle = 1 µs).
	runSp := jt.child("serve.run")
	var tr *tracedRun
	if jt.active() && s.tracePackets > 0 {
		tr = &tracedRun{
			trace: runSp.Trace, parent: runSp.ID, process: s.process,
			startUS: runSp.StartUS, limit: s.tracePackets,
		}
		if !s.registerTraced(key, tr) {
			tr = nil // a concurrent traced duplicate owns the key
		}
	}
	runStart := time.Now()
	results, err := s.runner.RunAllContext(ctx, []exp.Job{job})
	if tr != nil {
		s.unregisterTraced(key)
	}
	if err != nil {
		jt.endChild(runSp, "error", err.Error())
		s.slo.Fail()
		jt.finish("error")
		s.writeRunError(w, err)
		return
	}
	s.observe(time.Since(runStart))
	jt.endChild(runSp,
		"scheme", job.Cfg.Scheme.String(),
		"cycles", strconv.FormatInt(results[0].MeasuredCycles, 10))
	if tr != nil {
		for _, ps := range tr.packetSpans() {
			s.spans.Record(ps)
		}
	}
	s.mu.Lock()
	s.faultEvents += int64(results[0].FaultEvents)
	s.recovered += int64(results[0].Recovery.RetransPackets)
	s.mu.Unlock()
	s.answered(start)
	jt.finish("ok")
	writeJSON(w, http.StatusOK, JobResponse{Key: key, Result: results[0]})
}

// handleResults serves GET /v1/results/<key>: the peer result-sharing
// endpoint. It answers strictly from the local store — cache and journal,
// never by running — so it is cheap, side-effect free, and loop-free (a
// peer answering a peer never fans out further). A replica keeps serving
// this endpoint while draining: its journal outlives its admission.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	if key == "" || strings.Contains(key, "/") {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "want /v1/results/<job key>"})
		return
	}
	res, ok := s.runner.LookupKey(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job key"})
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{Key: key, Cached: true, Result: res})
}

// peerFetch asks each peer in turn for the journaled result of key, bounded
// as a whole by PeerTimeout. First hit wins; every failure (refused
// connection, 404, bad body) just moves on — peers are an optimisation,
// never a dependency.
func (s *Server) peerFetch(ctx context.Context, key string) (core.Result, string, bool) {
	ctx, cancel := context.WithTimeout(ctx, s.peerTimeout)
	defer cancel()
	for _, peer := range s.peers {
		if ctx.Err() != nil {
			break
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/results/"+key, nil)
		if err != nil {
			continue
		}
		resp, err := s.peerClient.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		var out JobResponse
		err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&out)
		resp.Body.Close()
		if err != nil {
			continue
		}
		return out.Result, peer, true
	}
	return core.Result{}, "", false
}

// writeRunError maps a failed run onto a status code: deadline expiry is
// 504, cancellation (client gone, drain abort) is 503 — both retryable by
// an idempotent client — anything else is a terminal 500.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "job deadline exceeded: " + err.Error()})
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "job cancelled: " + err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// reject sheds one submission with a Retry-After derived from the observed
// service time and current backlog.
func (s *Server) reject(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	writeJSON(w, code, errorResponse{Error: msg})
}

// retryAfterSecs estimates when a shed client should come back: roughly one
// observed service time per backlogged job ahead of it, spread over the
// execution slots, floored at 1s.
func (s *Server) retryAfterSecs() int {
	s.mu.Lock()
	ewma := s.ewma
	s.mu.Unlock()
	if ewma <= 0 {
		return 1
	}
	secs := int(math.Ceil(ewma.Seconds() * float64(len(s.queue)+1) / float64(s.maxInFlight)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// observe folds one completed simulation's wall time into the service-time
// EWMA (α = 0.2) and bumps the completion counter.
func (s *Server) observe(d time.Duration) {
	s.runHist.ObserveDuration(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed++
	if s.ewma == 0 {
		s.ewma = d
		return
	}
	s.ewma = time.Duration(0.8*float64(s.ewma) + 0.2*float64(d))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
