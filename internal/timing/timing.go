// Package timing provides clock-domain bookkeeping for the simulator.
//
// The simulated system has three clock domains (Table I of the paper):
// compute cores at 1126 MHz, the interconnect and L2 at 1000 MHz, and the
// GDDR5 command clock at 1750 MHz. The NoC clock is the master simulation
// clock; the other domains are advanced by fractional accumulators so that,
// e.g., the cores receive 1126 ticks for every 1000 NoC cycles without any
// floating-point drift (all arithmetic is integral).
package timing

// Clock tracks how many ticks a slave domain receives per master cycle,
// using exact rational arithmetic: the domain runs at Num/Den times the
// master frequency.
type Clock struct {
	num, den uint64
	acc      uint64
	cycles   uint64 // total slave ticks granted so far
}

// NewClock returns a Clock for a domain running at num/den times the master
// clock. It panics if den == 0 or num == 0.
func NewClock(num, den uint64) *Clock {
	if num == 0 || den == 0 {
		panic("timing: clock ratio must be positive")
	}
	return &Clock{num: num, den: den}
}

// Tick advances the master clock by one cycle and returns how many slave
// ticks elapse (0, 1, or more when the slave is faster than the master).
func (c *Clock) Tick() int {
	c.acc += c.num
	n := c.acc / c.den
	c.acc -= n * c.den
	c.cycles += n
	return int(n)
}

// Cycles returns the total slave ticks granted since construction.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Ratio returns the clock ratio numerator and denominator.
func (c *Clock) Ratio() (num, den uint64) { return c.num, c.den }

// Reset rewinds the clock to time zero.
func (c *Clock) Reset() {
	c.acc = 0
	c.cycles = 0
}
