// Package par provides the fixed worker pool behind deterministic intra-run
// parallelism: K persistent goroutines step K mesh shards (and the matching
// core/MC shards) every simulated cycle. A per-cycle pool amortises goroutine
// creation to zero — the cycle loop runs millions of times, so the dispatch
// path must not allocate.
package par

import "sync"

// Pool is a set of persistent worker goroutines executing indexed tasks.
// Run(n, fn) invokes fn(0..n-1) across the workers and the calling
// goroutine, returning when all invocations finished. The dispatch path is
// allocation-free when callers pass a pre-built fn (store the closure once
// and reuse it every cycle).
//
// A Pool is not reentrant: fn must not itself call Run on the same Pool.
// Sequential phases of one simulation may freely share a Pool.
type Pool struct {
	workers int
	fn      func(int)
	work    chan int
	tasks   sync.WaitGroup // in-flight worker invocations of the current Run
	wg      sync.WaitGroup // worker goroutine lifetimes
	closed  bool
}

// New returns a pool that runs tasks on up to `workers` goroutines
// (including the caller's); workers < 1 is treated as 1. A 1-worker pool
// spawns no goroutines and Run degenerates to an inline loop.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.work = make(chan int, workers)
		for i := 1; i < workers; i++ {
			p.wg.Add(1)
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for idx := range p.work {
		p.fn(idx)
		// Completion is a WaitGroup, not a channel send: a worker must
		// never block after finishing a task, or a Run with more tasks
		// than workers deadlocks against the caller's own sends.
		p.tasks.Done()
	}
}

// Workers returns the pool's parallelism (including the caller).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(i) for i in [0, n), distributing indices over the pool's
// workers; index 0 always runs on the calling goroutine. It returns after
// every invocation completed, so writes made by fn happen-before Run's
// return (channel synchronisation orders them).
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// The fn store is published to workers by the channel sends below.
	p.fn = fn
	p.tasks.Add(n - 1)
	for i := 1; i < n; i++ {
		p.work <- i
	}
	fn(0)
	p.tasks.Wait()
	p.fn = nil
}

// Close stops the worker goroutines and waits for them to exit. The pool
// must be idle (no Run in progress). Close is idempotent; Run on a closed
// pool falls back to the inline loop.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.work != nil {
		close(p.work)
		p.wg.Wait()
	}
	p.workers = 1
}
