package core

import (
	"testing"

	"repro/internal/cache"
)

// FuzzConfigValidate throws arbitrary geometry at Config.Validate: every
// input must yield either nil (for a genuinely usable configuration) or an
// error — never a panic. The L1 fields are included because cache geometry
// validation does modular arithmetic that an int overflow could turn into a
// division by zero.
func FuzzConfigValidate(f *testing.F) {
	f.Add(6, 6, 8, 4, 16<<10, 128, 4, int64(4000), int64(20000))
	f.Add(8, 8, 8, 4, 16<<10, 128, 4, int64(0), int64(1))
	f.Add(0, 0, 0, 0, 0, 0, 0, int64(-1), int64(0))
	f.Add(1<<20, 1<<20, 1, 4, 16<<10, 128, 4, int64(100), int64(100))
	f.Add(6, 6, 8, 4, 1<<62, 1<<31, 1<<31, int64(100), int64(100))
	f.Add(6, 6, 8, 4, 1<<30, 1<<62, 4, int64(100), int64(100))

	f.Fuzz(func(t *testing.T, w, h, mc, vcs, l1Size, l1Line, l1Ways int,
		warmup, measure int64) {
		cfg := DefaultConfig()
		cfg.MeshWidth = w
		cfg.MeshHeight = h
		cfg.NumMC = mc
		cfg.VCs = vcs
		cfg.Core.L1 = cache.Config{SizeBytes: l1Size, LineBytes: l1Line, Ways: l1Ways}
		cfg.WarmupCycles = warmup
		cfg.MeasureCycles = measure
		_ = cfg.Validate() // must not panic on any input
	})
}
