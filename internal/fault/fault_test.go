package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/noc"
)

// testNet builds a small network for injector unit tests.
func testNet(t *testing.T, mutate func(*noc.Config)) *noc.Network {
	t.Helper()
	cfg := noc.Config{
		Mesh:        noc.Mesh{Width: 4, Height: 4},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     noc.RouteXY,
		NonAtomicVC: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cfg, err := cfg.Validate()
	if err != nil {
		t.Fatalf("noc.Validate: %v", err)
	}
	n, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestEventsReturnsCopy pins that Events() hands out a private copy: a
// caller mutating the returned slice, or the injector appending afterwards,
// must never alias the other's view.
func TestEventsReturnsCopy(t *testing.T) {
	n := testNet(t, nil)
	inj, err := NewInjector(Config{
		Enabled:       true,
		Seed:          3,
		LinkStallProb: 1,
		MinDuration:   1,
		MaxDuration:   1,
		MaxConcurrent: 64,
	}, n, 0)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	for c := int64(0); c < 4; c++ {
		inj.Step(c)
	}
	got := inj.Events()
	if len(got) != 4 {
		t.Fatalf("got %d events, want 4", len(got))
	}
	want := make([]Event, len(got))
	copy(want, got)

	// Mutating the returned slice must not corrupt the injector's log.
	got[0] = Event{Cycle: -99, Kind: NIStall, Node: -1, Port: -1, Duration: -7}
	if again := inj.Events(); !reflect.DeepEqual(again, want) {
		t.Fatalf("caller mutation leaked into the injector log:\n%+v\nwant\n%+v", again, want)
	}

	// Appending after the snapshot must not grow the snapshot.
	snap := inj.Events()
	inj.Step(10)
	if len(snap) != 4 {
		t.Fatalf("snapshot grew to %d events after later injection", len(snap))
	}
	if len(inj.Events()) != 5 {
		t.Fatalf("injector log has %d events, want 5", len(inj.Events()))
	}
}

// TestMaxEventsCap pins the bounded event log: past the cap faults are
// still injected (TotalEvents keeps counting) but log entries are dropped
// and counted.
func TestMaxEventsCap(t *testing.T) {
	n := testNet(t, nil)
	inj, err := NewInjector(Config{
		Enabled:       true,
		Seed:          7,
		LinkStallProb: 1,
		MinDuration:   1,
		MaxDuration:   1,
		MaxConcurrent: 64,
		MaxEvents:     4,
	}, n, 0)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	for c := int64(0); c < 10; c++ {
		inj.Step(c)
	}
	if got := len(inj.Events()); got != 4 {
		t.Fatalf("retained %d events, want the cap 4", got)
	}
	if inj.TotalEvents() != 10 {
		t.Fatalf("TotalEvents %d, want 10", inj.TotalEvents())
	}
	if inj.DroppedEvents() != 6 {
		t.Fatalf("DroppedEvents %d, want 6", inj.DroppedEvents())
	}
}

// TestValidateEdgeCases covers the boundary configurations Validate must
// accept: a degenerate duration range, probabilities exactly 0 and 1, and
// the new caps' rejection of negatives.
func TestValidateEdgeCases(t *testing.T) {
	// MinDuration == MaxDuration is a legal (fixed-length) range.
	c, err := Config{Enabled: true, MinDuration: 5, MaxDuration: 5}.Validate()
	if err != nil {
		t.Fatalf("fixed-duration config rejected: %v", err)
	}
	if c.MinDuration != 5 || c.MaxDuration != 5 {
		t.Fatalf("fixed duration rewritten to [%d,%d]", c.MinDuration, c.MaxDuration)
	}

	// Probabilities exactly 0 and exactly 1 are both inside [0,1].
	if _, err := (Config{LinkStallProb: 0, CorruptProb: 1, LinkDeathProb: 1}).Validate(); err != nil {
		t.Fatalf("boundary probabilities rejected: %v", err)
	}

	for i, bad := range []Config{
		{CorruptProb: -0.01},
		{LinkDeathProb: 1.01},
		{MaxDeadLinks: -1},
		{MaxEvents: -1},
	} {
		if _, err := bad.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, bad)
		}
	}

	// Defaults fill in for zero values.
	c, err = Config{}.Validate()
	if err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if c.MaxDeadLinks != 2 || c.MaxEvents != 65536 {
		t.Fatalf("defaults not filled: MaxDeadLinks %d, MaxEvents %d", c.MaxDeadLinks, c.MaxEvents)
	}
}

// TestMaxConcurrentSaturationKeepsStreamAligned pins the draw-stream
// discipline: when the concurrency cap swallows a fault, the Bernoulli
// draw is still consumed, so the schedule after saturation is identical to
// a replay of the same seed — and fixed-length durations show up verbatim.
func TestMaxConcurrentSaturationKeepsStreamAligned(t *testing.T) {
	mk := func() *Injector {
		inj, err := NewInjector(Config{
			Enabled:       true,
			Seed:          21,
			LinkStallProb: 0.9,
			NIStallProb:   0.9,
			MinDuration:   6,
			MaxDuration:   6,
			MaxConcurrent: 1, // saturates immediately
		}, testNet(t, nil), 0)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		return inj
	}
	a, b := mk(), mk()
	for c := int64(0); c < 200; c++ {
		a.Step(c)
		b.Step(c)
		if got := a.Active(c); got > 1 {
			t.Fatalf("cycle %d: %d active faults exceed MaxConcurrent 1", c, got)
		}
	}
	ea, eb := a.Events(), b.Events()
	if !reflect.DeepEqual(ea, eb) {
		t.Fatal("saturated schedules diverged between identical replays")
	}
	if len(ea) == 0 {
		t.Fatal("saturation suppressed every fault; the test exercises nothing")
	}
	// 200 cycles of p=0.9 draws inject far more than the ~34 a 6-cycle
	// serial occupancy allows only if draws were mis-consumed.
	if len(ea) > 40 {
		t.Fatalf("%d events under MaxConcurrent 1 with 6-cycle faults", len(ea))
	}
	for _, e := range ea {
		if e.Duration != 6 {
			t.Fatalf("fixed-range duration drew %d, want 6", e.Duration)
		}
	}
}

// TestEventStringAllKinds pins the log rendering of every fault kind,
// including the permanent-fault form.
func TestEventStringAllKinds(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Cycle: 5, Kind: LinkStall, Node: 3, Port: 1, Duration: 12}, "cycle 5: link-stall node 3 port 1 for 12 cycles"},
		{Event{Cycle: 6, Kind: PortFreeze, Node: 2, Port: 0, Duration: 8}, "cycle 6: port-freeze node 2 port 0 for 8 cycles"},
		{Event{Cycle: 7, Kind: NIStall, Node: 9, Port: -1, Duration: 4}, "cycle 7: ni-stall node 9 for 4 cycles"},
		{Event{Cycle: 8, Kind: FlitCorrupt, Node: 1, Port: 4, Duration: 16}, "cycle 8: flit-corrupt node 1 port 4 for 16 cycles"},
		{Event{Cycle: 9, Kind: LinkDeath, Node: 6, Port: 2, Duration: -1}, "cycle 9: link-death node 6 port 2 permanently"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Event.String() = %q, want %q", got, c.want)
		}
	}
	if got := Kind(250).String(); !strings.Contains(got, "250") {
		t.Errorf("unknown kind rendered as %q", got)
	}
}

// TestCorruptionRequiresRecovery pins NewInjector's refusal to corrupt a
// network that cannot detect it.
func TestCorruptionRequiresRecovery(t *testing.T) {
	n := testNet(t, nil) // RetransBufPkts zero: recovery off
	if _, err := NewInjector(Config{Enabled: true, CorruptProb: 0.1}, n, 0); err == nil {
		t.Fatal("NewInjector accepted corruption without the recovery layer")
	}
	nr := testNet(t, func(c *noc.Config) { c.RetransBufPkts = 4 })
	if _, err := NewInjector(Config{Enabled: true, CorruptProb: 0.1}, nr, 0); err != nil {
		t.Fatalf("NewInjector rejected a recovery-enabled network: %v", err)
	}
	// A disabled config never injects, so it needs no recovery layer.
	if _, err := NewInjector(Config{Enabled: false, CorruptProb: 0.1}, n, 0); err != nil {
		t.Fatalf("NewInjector rejected a disabled config: %v", err)
	}
}
