package noc

import "testing"

// TestShardRangesEdgeCases pins the partition on the shapes where integer
// row division is easy to get wrong: rows not divisible by the shard count,
// more shards requested than rows, and degenerate one-row meshes.
func TestShardRangesEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		mesh   Mesh
		shards int
		want   [][2]int
	}{
		{
			name: "even split", mesh: Mesh{Width: 4, Height: 4}, shards: 2,
			want: [][2]int{{0, 8}, {8, 16}},
		},
		{
			name: "rows not divisible", mesh: Mesh{Width: 3, Height: 5}, shards: 2,
			// 5 rows over 2 shards: 2 then 3 rows.
			want: [][2]int{{0, 6}, {6, 15}},
		},
		{
			name: "three way over seven rows", mesh: Mesh{Width: 2, Height: 7}, shards: 3,
			// floor(i*7/3) boundaries: rows 0-1, 2-3, 4-6.
			want: [][2]int{{0, 4}, {4, 8}, {8, 14}},
		},
		{
			name: "shards exceed rows", mesh: Mesh{Width: 4, Height: 3}, shards: 8,
			// Clamped to one shard per row.
			want: [][2]int{{0, 4}, {4, 8}, {8, 12}},
		},
		{
			name: "one row mesh", mesh: Mesh{Width: 6, Height: 1}, shards: 4,
			want: [][2]int{{0, 6}},
		},
		{
			name: "zero shards clamps to one", mesh: Mesh{Width: 4, Height: 4}, shards: 0,
			want: [][2]int{{0, 16}},
		},
		{
			name: "negative shards clamps to one", mesh: Mesh{Width: 4, Height: 4}, shards: -3,
			want: [][2]int{{0, 16}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ShardRanges(tc.mesh, tc.shards)
			if len(got) != len(tc.want) {
				t.Fatalf("ShardRanges(%dx%d, %d) = %v, want %v",
					tc.mesh.Width, tc.mesh.Height, tc.shards, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ShardRanges(%dx%d, %d) = %v, want %v",
						tc.mesh.Width, tc.mesh.Height, tc.shards, got, tc.want)
				}
			}
		})
	}
}

// TestShardRangesProperties sweeps mesh shapes and shard counts and checks
// the three invariants the stepping protocol relies on: ranges are
// contiguous (each begins where the previous ended), disjoint and
// node-covering (the concatenation is exactly [0, nodes)), and every range
// holds a whole number of non-empty rows (shards own complete rows, so the
// ejection and NI node order within a shard is the global node order).
func TestShardRangesProperties(t *testing.T) {
	for w := 1; w <= 9; w++ {
		for h := 1; h <= 9; h++ {
			m := Mesh{Width: w, Height: h}
			for k := -1; k <= 12; k++ {
				ranges := ShardRanges(m, k)
				if want := EffectiveShards(m, k); len(ranges) != want {
					t.Fatalf("%dx%d k=%d: %d ranges, want %d", w, h, k, len(ranges), want)
				}
				prev := 0
				for i, r := range ranges {
					if r[0] != prev {
						t.Fatalf("%dx%d k=%d: range %d starts at %d, want %d (contiguity)",
							w, h, k, i, r[0], prev)
					}
					if r[1] <= r[0] {
						t.Fatalf("%dx%d k=%d: range %d = %v is empty", w, h, k, i, r)
					}
					if (r[1]-r[0])%w != 0 {
						t.Fatalf("%dx%d k=%d: range %d = %v not whole rows", w, h, k, i, r)
					}
					prev = r[1]
				}
				if prev != m.Nodes() {
					t.Fatalf("%dx%d k=%d: ranges end at %d, want %d (coverage)",
						w, h, k, prev, m.Nodes())
				}
			}
		}
	}
}
