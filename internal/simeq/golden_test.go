package simeq

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.json from the current simulator")

// goldenBenchmarks spans the three sensitivity classes (§6.2).
var goldenBenchmarks = []string{"bfs", "lud", "blackScholes"}

// goldenSchemes covers the mesh baseline, the full ARI design and the
// DA2mesh overlay reply fabric.
var goldenSchemes = []core.Scheme{core.XYBaseline, core.AdaARI, core.DA2MeshBase}

// TestGoldenDeterminism runs each benchmark x scheme pair twice with the
// same seed and requires byte-identical encoded Results, then pins the
// encoding against the committed golden file. The first check catches
// nondeterminism introduced within a binary (map iteration, pointer-keyed
// ordering, uninitialised state); the second catches silent cross-commit
// drift in the simulated model.
func TestGoldenDeterminism(t *testing.T) {
	doc := make(map[string]json.RawMessage, len(goldenBenchmarks)*len(goldenSchemes))
	for _, name := range goldenBenchmarks {
		k, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range goldenSchemes {
			cfg := ShortConfig()
			cfg.Scheme = s

			first := RunEncoded(t, cfg, k)
			second := RunEncoded(t, cfg, k)
			if !bytes.Equal(first, second) {
				t.Fatalf("%s/%s: two runs with the same seed diverged\n%s",
					name, s, diffLine(first, second))
			}
			doc[name+"/"+s.String()] = json.RawMessage(first)
		}
	}

	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("results drifted from %s (intentional model changes need -update)\n%s",
			path, diffLine(got, want))
	}
}
