package mem

import (
	"testing"

	"repro/internal/noc"
)

// stubFabric is a reply fabric that accepts packets unless blocked.
type stubFabric struct {
	blocked  bool
	accepted []*noc.Packet
	now      int64
}

func (s *stubFabric) CanInject(node int, pkt *noc.Packet) bool { return !s.blocked }
func (s *stubFabric) Inject(node int, pkt *noc.Packet) bool {
	if s.blocked {
		return false
	}
	s.accepted = append(s.accepted, pkt)
	return true
}
func (s *stubFabric) Step()                                                      { s.now++ }
func (s *stubFabric) Now() int64                                                 { return s.now }
func (s *stubFabric) SetEjectHandler(func(node int, pkt *noc.Packet, now int64)) {}
func (s *stubFabric) InFlight() int                                              { return 0 }
func (s *stubFabric) Stats() *noc.NetStats                                       { return &noc.NetStats{} }
func (s *stubFabric) GetPacket() *noc.Packet                                     { return &noc.Packet{} }
func (s *stubFabric) PutPacket(*noc.Packet)                                      {}

func newTestMC(t *testing.T, fab noc.Fabric) *Controller {
	t.Helper()
	mc, err := NewController(7, DefaultMCConfig(), fab, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func reqPacket(txn *Transaction) *noc.Packet {
	typ := noc.ReadRequest
	if txn.IsWrite {
		typ = noc.WriteRequest
	}
	return &noc.Packet{Type: typ, Dst: 7, Size: noc.PacketSize(typ, 128, 128), Payload: txn}
}

// tickN advances the controller n NoC cycles with the 1.75x memory clock
// approximated as 2 ticks per cycle (timing exactness is not under test).
func tickN(mc *Controller, from int64, n int) int64 {
	for i := 0; i < n; i++ {
		mc.Tick(from, 2)
		from++
	}
	return from
}

func TestReadMissProducesReadReply(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	txn := &Transaction{ID: 1, Addr: 0x1000, SrcNode: 3}
	mc.Receive(reqPacket(txn))
	tickN(mc, 0, 300)
	if len(fab.accepted) != 1 {
		t.Fatalf("%d replies, want 1", len(fab.accepted))
	}
	pkt := fab.accepted[0]
	if pkt.Type != noc.ReadReply || pkt.Dst != 3 || pkt.Payload.(*Transaction) != txn {
		t.Fatalf("bad reply packet %+v", pkt)
	}
	if mc.ReadMisses != 1 || mc.ReadHits != 0 {
		t.Fatalf("misses=%d hits=%d", mc.ReadMisses, mc.ReadHits)
	}
}

func TestReadHitAfterFill(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	mc.Receive(reqPacket(&Transaction{ID: 1, Addr: 0x1000, SrcNode: 3}))
	tickN(mc, 0, 300)
	mc.Receive(reqPacket(&Transaction{ID: 2, Addr: 0x1000, SrcNode: 4}))
	tickN(mc, 300, 100)
	if mc.ReadHits != 1 {
		t.Fatalf("second read of same line: hits=%d, want 1", mc.ReadHits)
	}
	if len(fab.accepted) != 2 {
		t.Fatalf("replies = %d, want 2", len(fab.accepted))
	}
}

func TestWriteProducesWriteReply(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	mc.Receive(reqPacket(&Transaction{ID: 1, Addr: 0x2000, IsWrite: true, SrcNode: 5}))
	tickN(mc, 0, 100)
	if len(fab.accepted) != 1 {
		t.Fatalf("%d replies, want 1", len(fab.accepted))
	}
	if fab.accepted[0].Type != noc.WriteReply {
		t.Fatalf("reply type = %v, want write_reply", fab.accepted[0].Type)
	}
	if fab.accepted[0].Size != 1 {
		t.Fatalf("write reply size = %d flits, want 1", fab.accepted[0].Size)
	}
}

func TestMergedReadsFanOut(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	// Two reads to the same line from different nodes before the fill.
	mc.Receive(reqPacket(&Transaction{ID: 1, Addr: 0x3000, SrcNode: 1}))
	mc.Receive(reqPacket(&Transaction{ID: 2, Addr: 0x3000, SrcNode: 2}))
	tickN(mc, 0, 400)
	if mc.MergedReads != 1 {
		t.Fatalf("merged = %d, want 1", mc.MergedReads)
	}
	if mc.ReadMisses != 1 {
		t.Fatalf("misses = %d, want 1 (second should merge)", mc.ReadMisses)
	}
	if len(fab.accepted) != 2 {
		t.Fatalf("replies = %d, want 2 (fan-out)", len(fab.accepted))
	}
	dsts := map[int]bool{fab.accepted[0].Dst: true, fab.accepted[1].Dst: true}
	if !dsts[1] || !dsts[2] {
		t.Fatalf("fan-out destinations wrong: %v", dsts)
	}
}

func TestStallAccountingWhenNIBlocked(t *testing.T) {
	fab := &stubFabric{blocked: true}
	mc := newTestMC(t, fab)
	mc.Receive(reqPacket(&Transaction{ID: 1, Addr: 0x4000, SrcNode: 1}))
	tickN(mc, 0, 300)
	if len(fab.accepted) != 0 {
		t.Fatal("blocked fabric accepted a packet")
	}
	if mc.BlockedCycle == 0 {
		t.Fatal("no blocked cycles recorded")
	}
	// Unblock: the reply goes out and stall time covers the waiting.
	fab.blocked = false
	tickN(mc, 300, 10)
	if len(fab.accepted) != 1 {
		t.Fatal("reply not sent after unblocking")
	}
	if mc.StallTime <= 0 {
		t.Fatalf("stall time = %d, want > 0", mc.StallTime)
	}
}

func TestIngressBackpressure(t *testing.T) {
	fab := &stubFabric{blocked: true}
	mc := newTestMC(t, fab)
	cap := DefaultMCConfig().InQueueCap
	for i := 0; i < cap; i++ {
		if !mc.CanReceive() {
			t.Fatalf("ingress refused at %d/%d", i, cap)
		}
		mc.Receive(reqPacket(&Transaction{ID: uint64(i + 1), Addr: uint64(i) * 128, SrcNode: 1}))
	}
	if mc.CanReceive() {
		t.Fatal("ingress accepted beyond capacity")
	}
}

func TestPendingDrainsToZero(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	for i := 0; i < 8; i++ {
		mc.Receive(reqPacket(&Transaction{ID: uint64(i + 1), Addr: uint64(i) * 4096, SrcNode: 1}))
	}
	tickN(mc, 0, 2000)
	if mc.Pending() != 0 {
		t.Fatalf("pending = %d after drain", mc.Pending())
	}
	if len(fab.accepted) != 8 {
		t.Fatalf("replies = %d, want 8", len(fab.accepted))
	}
}

func TestL2WritebackPath(t *testing.T) {
	fab := &stubFabric{}
	mc := newTestMC(t, fab)
	// Fill more distinct dirty lines than one L2 set holds (8 ways): 9
	// writes mapping to the same set force a dirty eviction -> writeback.
	setStride := uint64(128 * DefaultMCConfig().L2.Sets())
	now := int64(0)
	for i := 0; i < 9; i++ {
		mc.Receive(reqPacket(&Transaction{ID: uint64(i + 1), Addr: uint64(i) * setStride, IsWrite: true, SrcNode: 1}))
		now = tickN(mc, now, 60)
	}
	tickN(mc, now, 500)
	if mc.Writebacks == 0 {
		t.Fatal("no L2 writeback generated")
	}
	if mc.DRAM().Writes == 0 {
		t.Fatal("writeback never reached DRAM")
	}
}
