package timing

import (
	"testing"
	"testing/quick"
)

func TestUnityRatio(t *testing.T) {
	c := NewClock(1, 1)
	for i := 0; i < 100; i++ {
		if n := c.Tick(); n != 1 {
			t.Fatalf("tick %d returned %d, want 1", i, n)
		}
	}
	if c.Cycles() != 100 {
		t.Fatalf("Cycles = %d, want 100", c.Cycles())
	}
}

func TestCoreClockRatio(t *testing.T) {
	// 1126 MHz core over 1000 MHz NoC: after 1000 master cycles the core
	// must have received exactly 1126 ticks, with no drift over repeats.
	c := NewClock(1126, 1000)
	for rep := 1; rep <= 5; rep++ {
		for i := 0; i < 1000; i++ {
			n := c.Tick()
			if n < 1 || n > 2 {
				t.Fatalf("tick returned %d, want 1 or 2", n)
			}
		}
		if got := c.Cycles(); got != uint64(1126*rep) {
			t.Fatalf("after %d periods: %d cycles, want %d", rep, got, 1126*rep)
		}
	}
}

func TestMemClockRatio(t *testing.T) {
	c := NewClock(1750, 1000)
	var total int
	for i := 0; i < 4000; i++ {
		total += c.Tick()
	}
	if total != 7000 {
		t.Fatalf("1.75x clock gave %d ticks over 4000, want 7000", total)
	}
}

func TestSlowClock(t *testing.T) {
	c := NewClock(1, 3)
	pattern := make([]int, 9)
	for i := range pattern {
		pattern[i] = c.Tick()
	}
	var total int
	for _, n := range pattern {
		total += n
	}
	if total != 3 {
		t.Fatalf("1/3 clock gave %d ticks over 9, want 3", total)
	}
}

func TestNoDriftQuick(t *testing.T) {
	f := func(num, den uint8) bool {
		n, d := uint64(num%100)+1, uint64(den%100)+1
		c := NewClock(n, d)
		var total uint64
		for i := uint64(0); i < d*10; i++ {
			total += uint64(c.Tick())
		}
		return total == n*10 && c.Cycles() == n*10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := NewClock(3, 2)
	c.Tick()
	c.Tick()
	c.Reset()
	if c.Cycles() != 0 {
		t.Fatal("Reset did not clear cycles")
	}
	var total int
	for i := 0; i < 2; i++ {
		total += c.Tick()
	}
	if total != 3 {
		t.Fatalf("post-reset period gave %d ticks, want 3", total)
	}
}

func TestInvalidRatioPanics(t *testing.T) {
	for _, pair := range [][2]uint64{{0, 1}, {1, 0}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewClock(%d,%d) did not panic", pair[0], pair[1])
				}
			}()
			NewClock(pair[0], pair[1])
		}()
	}
}

func TestRatioAccessor(t *testing.T) {
	c := NewClock(7, 4)
	n, d := c.Ratio()
	if n != 7 || d != 4 {
		t.Fatalf("Ratio = %d/%d, want 7/4", n, d)
	}
}
