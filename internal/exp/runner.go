// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Figs 3-6, 9-16, the §3 link-utilisation
// analysis, the §6.1 area overheads and the §7.5 scalability study) from
// the simulator, printing the same rows/series the paper reports.
//
// Runs are cached by (config, benchmark) and executed on a worker pool, so
// figures that share underlying simulations (e.g. Figs 3/5/11/12/13 all use
// the main 30-benchmark scheme matrix) pay for them once.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Runner executes simulations with memoisation and bounded parallelism.
//
// It is hardened against misbehaving runs: every simulation executes under
// core.RunChecked's forward-progress watchdogs (a deadlock fails with a
// diagnostic instead of hanging the sweep), a panicking run is recovered
// into an error naming the (benchmark, scheme) pair, dispatch stops at the
// first failure and all collected failures are returned joined, and an
// opt-in Journal persists finished runs so a killed sweep resumes where it
// stopped.
type Runner struct {
	// Base is the configuration template; figure code overrides fields.
	Base core.Config
	// Benchmarks is the evaluated suite (defaults to trace.Suite()).
	Benchmarks []trace.Kernel
	// Workers bounds parallel simulations. The default is GOMAXPROCS divided
	// by the largest per-run shard count among the dispatched jobs, so
	// intra-run parallelism (Config.Shards) and inter-run parallelism
	// together stay within the machine (shards x concurrent runs <=
	// GOMAXPROCS). Set explicitly to override the budget.
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	// RunTimeout bounds each simulation's wall time (0 = unlimited). A run
	// that exceeds it fails the sweep with an error naming the run.
	RunTimeout time.Duration
	// MaxRetries re-attempts a run that failed only on RunTimeout — the
	// signature of transient host contention rather than a broken
	// configuration — up to this many extra times. Deterministic failures
	// (validation, panics, watchdog deadlocks) are never retried. 0
	// disables retries.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 100ms when MaxRetries > 0).
	RetryBackoff time.Duration
	// Checks configures the per-run watchdogs; the zero value enables the
	// default deadlock/starvation thresholds (see core.CheckOptions).
	Checks core.CheckOptions
	// Journal, when non-nil, persists every finished run and pre-seeds the
	// cache on lookup, making sweeps resumable across process kills.
	Journal *Journal

	// Monitor, when non-nil, tracks every executing run for live
	// introspection: each run registers on start, reports progress at
	// watchdog-poll cadence through core.CheckOptions.Inspector, and
	// deregisters on completion. The job server exposes the monitor at
	// /metrics and /debug/nocstate.
	Monitor *obs.RunMonitor
	// Instrument, when non-nil, is called with every freshly built simulator
	// before it runs. Observability attachments (metrics registries, packet
	// tracers) hook in here; the hook must only observe, never alter
	// simulated behaviour — results are cached and journalled under the
	// assumption that a config determines its Result byte-identically.
	Instrument func(*core.Simulator)
	// InstrumentJob is Instrument with the job identity alongside the
	// simulator, for per-request attachments: the serving layer hooks
	// distributed-trace packet collectors onto exactly the run a traced
	// submission is waiting on. Called after Instrument. The same contract
	// applies — observe only, never alter simulated behaviour.
	InstrumentJob func(Job, *core.Simulator)

	mu    sync.Mutex
	cache map[runKey]core.Result
	// byKey mirrors the cache keyed by JobKey — the identity cluster peers
	// query by — so a serving layer can answer /v1/results/<key> without
	// reversing the hash.
	byKey map[string]core.Result
	runs  int
}

type runKey struct {
	cfg   core.Config
	bench string
}

// ErrRunTimeout marks a run that exceeded RunTimeout; errors.Is against it
// selects the only failure class MaxRetries re-attempts.
var ErrRunTimeout = errors.New("run timed out")

// newSimulator is a seam for tests that need a run to fail or panic on
// demand; production code never reassigns it.
var newSimulator = core.NewSimulator

// NewRunner returns a Runner over the full suite with Table I defaults and
// harness-appropriate horizons.
func NewRunner() *Runner {
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 3000
	cfg.MeasureCycles = 10000
	return &Runner{Base: cfg, Benchmarks: trace.Suite()}
}

// Job is one simulation request.
type Job struct {
	Cfg    core.Config
	Kernel trace.Kernel
}

// Runs returns the number of distinct simulations executed so far.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(cfg core.Config, k trace.Kernel) (core.Result, error) {
	results, err := r.RunAll([]Job{{Cfg: cfg, Kernel: k}})
	if err != nil {
		return core.Result{}, err
	}
	return results[0], nil
}

// RunAll executes the jobs (deduplicated against the cache) on the worker
// pool and returns results in job order.
func (r *Runner) RunAll(jobs []Job) ([]core.Result, error) {
	return r.RunAllContext(context.Background(), jobs)
}

// RunAllContext is RunAll under a context: cancelling ctx interrupts every
// in-flight simulation at its next watchdog poll and stops dispatch. On any
// failure, dispatch of not-yet-started jobs stops immediately and the
// joined errors of every failed run (plus ctx's error, if cancelled) are
// returned.
func (r *Runner) RunAllContext(ctx context.Context, jobs []Job) ([]core.Result, error) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[runKey]core.Result)
	}
	// Collect the distinct keys that still need simulating; the journal
	// fills the cache for runs a previous (possibly killed) sweep finished.
	need := make(map[runKey]Job)
	for _, j := range jobs {
		k := runKey{cfg: j.Cfg, bench: j.Kernel.Name}
		if _, ok := r.cache[k]; ok {
			continue
		}
		if r.Journal != nil {
			key := jobKey(j.Cfg, j.Kernel.Name)
			if res, ok := r.Journal.lookup(key); ok {
				r.cache[k] = res
				r.setByKeyLocked(key, res)
				continue
			}
		}
		need[k] = j
	}
	r.mu.Unlock()

	if len(need) > 0 {
		keys := make([]runKey, 0, len(need))
		for k := range need {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].bench != keys[j].bench {
				return keys[i].bench < keys[j].bench
			}
			return fmt.Sprint(keys[i].cfg) < fmt.Sprint(keys[j].cfg)
		})

		workers := r.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
			if s := maxJobShards(need); s > 1 {
				workers /= s
			}
			if workers < 1 {
				workers = 1
			}
		}
		if workers > len(keys) {
			workers = len(keys)
		}

		// fail is closed once, on the first failure; dispatch selects on it
		// so queued jobs are abandoned rather than started.
		fail := make(chan struct{})
		var failOnce sync.Once
		var errMu sync.Mutex
		var errs []error
		report := func(err error) {
			errMu.Lock()
			errs = append(errs, err)
			errMu.Unlock()
			failOnce.Do(func() { close(fail) })
		}

		var wg sync.WaitGroup
		ch := make(chan runKey)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range ch {
					res, err := r.simulateRetry(ctx, need[k])
					if err != nil {
						report(err)
						continue
					}
					if err := r.finish(k, res); err != nil {
						report(err)
					}
				}
			}()
		}
	dispatch:
		for _, k := range keys {
			select {
			case ch <- k:
			case <-fail:
				break dispatch
			case <-ctx.Done():
				break dispatch
			}
		}
		close(ch)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			errMu.Lock()
			errs = append(errs, err)
			errMu.Unlock()
		}
		if len(errs) > 0 {
			return nil, errors.Join(errs...)
		}
	}

	out := make([]core.Result, len(jobs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, j := range jobs {
		res, ok := r.cache[runKey{cfg: j.Cfg, bench: j.Kernel.Name}]
		if !ok {
			return nil, fmt.Errorf("exp: missing result for %s", j.Kernel.Name)
		}
		out[i] = res
	}
	return out, nil
}

// finish publishes one completed run: journal first (synced to disk), then
// cache + progress, so a crash between the two at worst recomputes nothing.
func (r *Runner) finish(k runKey, res core.Result) error {
	key := jobKey(k.cfg, k.bench)
	if r.Journal != nil {
		if err := r.Journal.record(key, res); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache[k] = res
	r.setByKeyLocked(key, res)
	r.runs++
	// The progress write stays under the mutex: workers share r.Progress,
	// and io.Writer implementations (bytes.Buffer, files with buffering)
	// are not safe for concurrent use.
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "run %3d: %-16s %-20s IPC=%.3f\n",
			r.runs, k.bench, res.Scheme, res.IPC)
	}
	return nil
}

// Lookup returns the result for (cfg, bench) if it is already in the cache
// or the journal, without simulating. It lets a serving layer answer
// duplicate submissions idempotently and report journal-backed cache hits.
func (r *Runner) Lookup(cfg core.Config, bench string) (core.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := runKey{cfg: cfg, bench: bench}
	if res, ok := r.cache[k]; ok {
		return res, true
	}
	if r.Journal != nil {
		key := jobKey(cfg, bench)
		if res, ok := r.Journal.lookup(key); ok {
			if r.cache == nil {
				r.cache = make(map[runKey]core.Result)
			}
			r.cache[k] = res
			r.setByKeyLocked(key, res)
			return res, true
		}
	}
	return core.Result{}, false
}

// LookupKey returns the result stored under the given JobKey, consulting
// the in-memory index and then the journal, without simulating. It is the
// lookup cluster peers perform: the key is the content hash itself, so no
// configuration needs to travel with the query.
func (r *Runner) LookupKey(key string) (core.Result, bool) {
	r.mu.Lock()
	if res, ok := r.byKey[key]; ok {
		r.mu.Unlock()
		return res, true
	}
	r.mu.Unlock()
	if r.Journal != nil {
		if res, ok := r.Journal.Get(key); ok {
			r.mu.Lock()
			r.setByKeyLocked(key, res)
			r.mu.Unlock()
			return res, true
		}
	}
	return core.Result{}, false
}

// Adopt stores a result computed elsewhere — a cluster peer that already
// ran the job — into this runner's cache and journal without counting it
// as a run. Determinism makes adoption safe: the same (config, benchmark)
// produces the same Result bytes on every replica, and keeping Runs()
// untouched preserves the zero-duplicate-runs accounting the cluster soaks
// verify.
func (r *Runner) Adopt(cfg core.Config, bench string, res core.Result) error {
	key := jobKey(cfg, bench)
	if r.Journal != nil {
		if err := r.Journal.record(key, res); err != nil {
			return err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cache == nil {
		r.cache = make(map[runKey]core.Result)
	}
	r.cache[runKey{cfg: cfg, bench: bench}] = res
	r.setByKeyLocked(key, res)
	return nil
}

// setByKeyLocked indexes res under its JobKey; callers hold r.mu.
func (r *Runner) setByKeyLocked(key string, res core.Result) {
	if r.byKey == nil {
		r.byKey = make(map[string]core.Result)
	}
	r.byKey[key] = res
}

// simulateRetry wraps simulate in the opt-in MaxRetries policy: only a
// RunTimeout failure — transient host contention — is retried, after an
// exponentially growing backoff; any other failure is deterministic and
// returns immediately.
func (r *Runner) simulateRetry(ctx context.Context, j Job) (core.Result, error) {
	res, err := r.simulate(ctx, j)
	backoff := r.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 0; attempt < r.MaxRetries && errors.Is(err, ErrRunTimeout) && ctx.Err() == nil; attempt++ {
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return res, err
		}
		backoff *= 2
		res, err = r.simulate(ctx, j)
	}
	return res, err
}

// simulate executes one uncached run under the watchdogs, the per-run
// timeout and ctx. A panic anywhere inside the simulation is recovered into
// an error naming the run, so one poisoned configuration cannot kill a
// whole sweep's process.
func (r *Runner) simulate(ctx context.Context, j Job) (res core.Result, err error) {
	name := fmt.Sprintf("%s/%s", j.Kernel.Name, j.Cfg.Scheme)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: %s: panic: %v\n%s", name, p, debug.Stack())
		}
	}()

	opt := r.Checks
	var deadline time.Time
	if r.RunTimeout > 0 {
		deadline = time.Now().Add(r.RunTimeout)
	}
	opt.Interrupt = func() bool {
		if ctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	sim, err := newSimulator(j.Cfg, j.Kernel)
	if err != nil {
		return core.Result{}, fmt.Errorf("exp: %s: %w", name, err)
	}
	defer sim.Close()
	if r.Instrument != nil {
		r.Instrument(sim)
	}
	if r.InstrumentJob != nil {
		r.InstrumentJob(j, sim)
	}
	if r.Monitor != nil {
		st := r.Monitor.Begin(name, j.Cfg.Scheme.String(), j.Cfg.WarmupCycles+j.Cfg.MeasureCycles)
		defer r.Monitor.End(st)
		opt.Inspector = st
	}
	res, err = sim.RunChecked(opt)
	if err != nil {
		if errors.Is(err, core.ErrInterrupted) {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return core.Result{}, fmt.Errorf("exp: %s: %w", name, ctxErr)
			}
			return core.Result{}, fmt.Errorf("exp: %s: %w after %s", name, ErrRunTimeout, r.RunTimeout)
		}
		return core.Result{}, fmt.Errorf("exp: %s: %w", name, err)
	}
	return res, nil
}

// maxJobShards returns the largest effective per-run shard count among the
// jobs, for the default worker budget.
func maxJobShards(need map[runKey]Job) int {
	max := 1
	for _, j := range need {
		s := noc.EffectiveShards(noc.Mesh{Width: j.Cfg.MeshWidth, Height: j.Cfg.MeshHeight}, j.Cfg.Shards)
		if s > max {
			max = s
		}
	}
	return max
}

// withScheme returns the base config with the scheme set.
func (r *Runner) withScheme(s core.Scheme) core.Config {
	cfg := r.Base
	cfg.Scheme = s
	return cfg
}

// schemeMatrix runs every benchmark under every scheme and returns
// results[benchIdx][schemeIdx].
func (r *Runner) schemeMatrix(schemes []core.Scheme) ([][]core.Result, error) {
	jobs := make([]Job, 0, len(r.Benchmarks)*len(schemes))
	for _, k := range r.Benchmarks {
		for _, s := range schemes {
			jobs = append(jobs, Job{Cfg: r.withScheme(s), Kernel: k})
		}
	}
	flat, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]core.Result, len(r.Benchmarks))
	for i := range r.Benchmarks {
		out[i] = flat[i*len(schemes) : (i+1)*len(schemes)]
	}
	return out, nil
}
