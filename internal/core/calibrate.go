package core

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/trace"
)

// Calibration is the outcome of the paper's §4.2 speedup-sizing procedure
// for one benchmark: run the system against an unlimited-bandwidth reply
// fabric, measure the ideal packet injection rate at the MCs (95th
// percentile of per-100-cycle windows), and apply eq. (1) and eq. (2).
type Calibration struct {
	Benchmark string
	// PeakRatePerMC is the 95th-percentile ideal injection rate of the
	// busiest measurement, in reply packets per cycle per MC.
	PeakRatePerMC float64
	// AvgFlitsPerPkt is N̄_flits_per_pkt of eq. (1): the reply-mix-weighted
	// average reply packet length.
	AvgFlitsPerPkt float64
	// RequiredS is the minimal integer satisfying eq. (1).
	RequiredS int
	// ChosenS is RequiredS clamped by eq. (2) (min of non-local outputs
	// and VCs).
	ChosenS int
	// SatisfiedByBound reports whether the eq. (2) bound already covers
	// the requirement (the paper observes this for 95% of peak windows).
	SatisfiedByBound bool
}

// CalibrateSpeedup performs the eq. (1)/(2) sizing for kernel k under cfg.
func CalibrateSpeedup(cfg Config, k trace.Kernel) (Calibration, error) {
	cfg.IdealReply = true
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		return Calibration{}, err
	}
	res := sim.Run()

	ideal, ok := sim.ReplyNet().(*noc.IdealFabric)
	if !ok {
		return Calibration{}, fmt.Errorf("core: calibration simulator lacks ideal fabric")
	}

	// Peak per-MC rate: the highest 95th-percentile window across MCs.
	var peakPer100 float64
	for _, node := range sim.MCNodes() {
		if w := ideal.PeakWindow(node, 95); w > peakPer100 {
			peakPer100 = w
		}
	}
	rate := peakPer100 / 100

	// Reply-mix-weighted average packet length (read replies long, write
	// replies single-flit).
	longPkt := float64(sim.LongPacketFlits())
	reads := float64(res.Rep.PacketsInjected[noc.ReadReply])
	writes := float64(res.Rep.PacketsInjected[noc.WriteReply])
	avgFlits := longPkt
	if reads+writes > 0 {
		avgFlits = (reads*longPkt + writes) / (reads + writes)
	}

	// Eq. (1) minimal S, before the eq. (2) clamp.
	need := rate * avgFlits
	required := int(need)
	if float64(required) < need {
		required++
	}
	if required < 1 {
		required = 1
	}
	bound := NumMeshOutputs
	if cfg.VCs < bound {
		bound = cfg.VCs
	}
	chosen := required
	if chosen > bound {
		chosen = bound
	}
	return Calibration{
		Benchmark:        k.Name,
		PeakRatePerMC:    rate,
		AvgFlitsPerPkt:   avgFlits,
		RequiredS:        required,
		ChosenS:          chosen,
		SatisfiedByBound: required <= bound,
	}, nil
}

// NumMeshOutputs is the non-local output port count of a 2D-mesh router,
// the N_out bound of eq. (2).
const NumMeshOutputs = 4
