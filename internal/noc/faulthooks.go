package noc

import "fmt"

// Fault hooks: the attachment points internal/fault drives. Every fault is a
// pure service stall — it suppresses arbitration or supply for a bounded
// window but never touches buffers, credits or ownership, so credit-based
// flow control absorbs it with zero flit loss and CheckInvariants stays
// clean at every fault boundary. Overlapping faults on the same component
// extend to the furthest horizon.

// StallLink stalls output port `port` of node's router until cycle `until`:
// switch allocation never grants the output while stalled, so no flit
// traverses the link (a transient link failure). Ports 0..NumDirections-1
// are the mesh links; port NumDirections is the local ejection link.
func (n *Network) StallLink(node, port int, until int64) {
	if port < 0 || port >= numOutPorts {
		panic(fmt.Sprintf("noc: StallLink port %d out of range [0,%d)", port, numOutPorts))
	}
	op := n.routers[node].out[port]
	if until > op.stalledUntil {
		op.stalledUntil = until
	}
}

// FreezeInputPort freezes input port `port` of node's router until cycle
// `until`: none of its VCs may bid for the switch while frozen, so buffered
// flits sit still and upstream credits stop returning (an input-port
// failure). Ports 0..NumDirections-1 are the mesh inputs; higher indices are
// the injection ports.
func (n *Network) FreezeInputPort(node, port int, until int64) {
	r := n.routers[node]
	if port < 0 || port >= len(r.in) {
		panic(fmt.Sprintf("noc: FreezeInputPort port %d out of range [0,%d)", port, len(r.in)))
	}
	ip := r.in[port]
	if until > ip.frozenUntil {
		ip.frozenUntil = until
	}
}

// StallNISupply stalls node's NI until cycle `until`: it supplies no flits
// to the router, so its queues back up and Offer rejections propagate the
// backpressure burst to the node logic (MC data stalls, core send stalls).
func (n *Network) StallNISupply(node int, until int64) {
	ni := n.nis[node]
	if until > ni.stalledUntil {
		ni.stalledUntil = until
	}
}

// FaultHorizon returns the furthest fault expiry cycle over all components,
// or 0 when no fault was ever applied. Drain loops use it to know when all
// service stalls have lapsed.
func (n *Network) FaultHorizon() int64 {
	var h int64
	for _, r := range n.routers {
		for _, op := range r.out {
			if op.stalledUntil > h {
				h = op.stalledUntil
			}
		}
		for _, ip := range r.in {
			if ip.frozenUntil > h {
				h = ip.frozenUntil
			}
		}
	}
	for _, ni := range n.nis {
		if ni.stalledUntil > h {
			h = ni.stalledUntil
		}
	}
	return h
}
