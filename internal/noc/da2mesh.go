package noc

import "sort"

// DA2Mesh is a behavioural model of the DA2mesh overlay of Kim et al. [20]:
// each injecting node owns dedicated narrow per-destination channels, so
// packets experience hop latency but no in-network contention. What remains
// — and what ARI targets (paper Fig 16) — is serialisation at the injection
// lanes and contention at the ejection NI.
//
// Modelled behaviour:
//   - Injection: the node's NI supplies lanes exactly like the mesh NIs
//     (baseline: one FIFO, one flit/cycle; ARI split: one queue+lane per
//     VC, up to VCs flits/cycle).
//   - Flight: a packet whose tail left its lane at cycle t is handed to the
//     destination's ejection queue at t + Hops(src,dst) (pipelined narrow
//     channel, one flit per cycle per lane).
//   - Ejection: the destination drains EjectRate flits/cycle in arrival
//     order; a lane will not start a packet toward a destination whose
//     backlog exceeds the overlay window (2 long packets), which stands in
//     for the plane's finite buffering.
type DA2Mesh struct {
	cfg   Config
	now   int64
	stats NetStats

	nis      []*overlayNI
	backlog  []int // per destination, flits queued or in flight toward it
	ejectQ   [][]overlayArrival
	inflight []overlayArrival // packets in flight, unsorted

	inFlight     int
	nextPktID    uint64
	ejectHandler func(node int, pkt *Packet, now int64)

	// scan selects the scan-everything loops (Config.ScanStep); the default
	// skips nodes with no queued or arriving flits — provably a no-op for
	// them, so both modes are bit-identical.
	scan bool
	pool pktPool
}

var _ Fabric = (*DA2Mesh)(nil)

// overlayArrival is a packet due at a destination ejection queue.
type overlayArrival struct {
	pkt      *Packet
	arriveAt int64
	drained  int // flits already drained by the ejector
}

// overlayLane is one narrow injection lane streaming whole packets.
type overlayLane struct {
	q         *flitQueue
	streaming *Packet
	sent      int
}

// overlayNI is the injection interface of one node on the overlay.
type overlayNI struct {
	node  int
	mode  NIMode
	lanes []*overlayLane
	// FIFO modes share one queue (lane 0's) and stream one flit/cycle in
	// total; split mode gives each lane its own queue and link.
	offeredAt int64
	everHeld  bool
	occupancy float64 // running time-sum of queued flits
	occCycles int64
	queued    int
	pick      int
}

// overlayWindowPackets bounds the per-destination backlog (in long packets)
// before lanes stop starting new packets toward it.
const overlayWindowPackets = 2

// NewDA2Mesh builds the overlay fabric from cfg (same Config schema as the
// mesh network; Routing is ignored).
func NewDA2Mesh(cfg Config) (*DA2Mesh, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	d := &DA2Mesh{cfg: cfg, scan: cfg.ScanStep}
	nodes := cfg.Mesh.Nodes()
	d.backlog = make([]int, nodes)
	d.ejectQ = make([][]overlayArrival, nodes)
	d.nis = make([]*overlayNI, nodes)
	injLinks := 0
	for id := 0; id < nodes; id++ {
		nc := cfg.node(id)
		oni := &overlayNI{node: id, mode: nc.NI, offeredAt: -1}
		lanes := 1
		if nc.NI == NISplit {
			lanes = cfg.VCs
		} else if nc.NI == NIMultiPort {
			lanes = nc.injPorts()
		}
		per := cfg.NIQueueFlits
		if nc.NI == NISplit {
			per = cfg.NIQueueFlits / lanes
			if per < cfg.LongPacketFlits() {
				per = cfg.LongPacketFlits()
			}
		}
		for l := 0; l < lanes; l++ {
			oni.lanes = append(oni.lanes, &overlayLane{q: newFlitQueue(per)})
		}
		d.nis[id] = oni
		injLinks += lanes
	}
	d.stats.InjLinks = injLinks
	d.stats.MeshLinks = 0
	return d, nil
}

// Now returns the current cycle.
func (d *DA2Mesh) Now() int64 { return d.now }

// SetEjectHandler installs the packet-delivery callback.
func (d *DA2Mesh) SetEjectHandler(h func(node int, pkt *Packet, now int64)) {
	d.ejectHandler = h
}

// InFlight returns packets accepted but not yet delivered.
func (d *DA2Mesh) InFlight() int { return d.inFlight }

// Stats returns the fabric statistics.
func (d *DA2Mesh) Stats() *NetStats { return &d.stats }

// ResetStats clears measurement counters (end of warmup).
func (d *DA2Mesh) ResetStats() {
	injLinks := d.stats.InjLinks
	d.stats = NetStats{InjLinks: injLinks}
	for _, ni := range d.nis {
		ni.occupancy = 0
		ni.occCycles = 0
		ni.everHeld = ni.queued > 0
	}
}

// CanInject reports whether node's overlay NI can take pkt this cycle.
func (d *DA2Mesh) CanInject(node int, pkt *Packet) bool {
	ni := d.nis[node]
	if ni.offeredAt == d.now {
		return false
	}
	return ni.pickLane(pkt) >= 0
}

// Inject hands pkt to node's overlay NI.
func (d *DA2Mesh) Inject(node int, pkt *Packet) bool {
	ni := d.nis[node]
	if ni.offeredAt == d.now {
		d.stats.NIFullRejects++
		return false
	}
	lane := ni.pickLane(pkt)
	if lane < 0 {
		d.stats.NIFullRejects++
		return false
	}
	pkt.Src = node
	if pkt.ID == 0 {
		d.nextPktID++
		pkt.ID = d.nextPktID
	}
	pkt.CreatedAt = d.now
	ni.offeredAt = d.now
	q := ni.lanes[lane].q
	for s := 0; s < pkt.Size; s++ {
		q.push(flit{pkt: pkt, seq: s})
	}
	ni.queued += pkt.Size
	ni.everHeld = true
	ni.pick = (lane + 1) % len(ni.lanes)
	d.inFlight++
	d.stats.PacketsInjected[pkt.Type]++
	d.stats.FlitsInjected[pkt.Type] += uint64(pkt.Size)
	return true
}

// pickLane returns the least-occupied lane queue with room for the packet
// (FIFO modes always use lane 0's shared queue), or -1.
func (ni *overlayNI) pickLane(pkt *Packet) int {
	if ni.mode != NISplit {
		// Single shared queue; MultiPort's extra lanes matter at drain.
		if ni.lanes[0].q.free() >= pkt.Size {
			return 0
		}
		return -1
	}
	best, bestLen := -1, 0
	n := len(ni.lanes)
	for k := 0; k < n; k++ {
		l := (ni.pick + k) % n
		q := ni.lanes[l].q
		if q.free() < pkt.Size {
			continue
		}
		if best == -1 || q.len() < bestLen {
			best, bestLen = l, q.len()
		}
	}
	return best
}

// Step advances the overlay one cycle.
func (d *DA2Mesh) Step() {
	d.deliverArrivals()
	d.streamLanes()
	d.drainEjectors()
	for _, ni := range d.nis {
		if ni.everHeld {
			ni.occupancy += float64(ni.queued)
			ni.occCycles++
		}
	}
	d.now++
	d.stats.Cycles++
}

// streamLanes advances every injection lane by its per-cycle flit budget.
// Event-driven mode skips NIs with nothing queued: their lanes are all
// empty, so the loop body is a no-op for them.
func (d *DA2Mesh) streamLanes() {
	window := overlayWindowPackets * d.cfg.LongPacketFlits()
	for _, ni := range d.nis {
		if !d.scan && ni.queued == 0 {
			continue
		}
		budget := len(ni.lanes) // 1 flit per lane per cycle
		if ni.mode != NISplit {
			budget = 1 // shared narrow supply (baseline & MultiPort NI limit)
		}
		for l := 0; l < len(ni.lanes) && budget > 0; l++ {
			lane := ni.lanes[l]
			if lane.q.empty() {
				continue
			}
			f := lane.q.front()
			if f.isHead() && lane.streaming == nil {
				if d.backlog[f.pkt.Dst] > window {
					continue // destination plane buffers full
				}
				lane.streaming = f.pkt
				lane.sent = 0
				f.pkt.InjectedAt = d.now
				d.backlog[f.pkt.Dst] += f.pkt.Size
			}
			if lane.streaming == nil {
				continue
			}
			lane.q.pop()
			ni.queued--
			lane.sent++
			budget--
			d.stats.InjLinkFlits++
			if f.isTail() {
				hops := d.cfg.Mesh.Hops(f.pkt.Src, f.pkt.Dst)
				d.inflight = append(d.inflight, overlayArrival{
					pkt:      f.pkt,
					arriveAt: d.now + int64(hops),
				})
				lane.streaming = nil
			}
		}
	}
}

// deliverArrivals moves due in-flight packets into their destination
// ejection queues, ordered deterministically.
func (d *DA2Mesh) deliverArrivals() {
	due := d.inflight[:0]
	var arrived []overlayArrival
	for _, a := range d.inflight {
		if a.arriveAt <= d.now {
			arrived = append(arrived, a)
		} else {
			due = append(due, a)
		}
	}
	d.inflight = due
	sort.Slice(arrived, func(i, j int) bool {
		if arrived[i].arriveAt != arrived[j].arriveAt {
			return arrived[i].arriveAt < arrived[j].arriveAt
		}
		return arrived[i].pkt.ID < arrived[j].pkt.ID
	})
	for _, a := range arrived {
		d.ejectQ[a.pkt.Dst] = append(d.ejectQ[a.pkt.Dst], a)
	}
}

// drainEjectors consumes EjectRate flits/cycle at every destination.
// Event-driven mode skips destinations with an empty ejection queue (the
// budget loop would exit immediately for them).
func (d *DA2Mesh) drainEjectors() {
	for node := range d.ejectQ {
		q := d.ejectQ[node]
		if !d.scan && len(q) == 0 {
			continue
		}
		budget := d.cfg.EjectRate
		for budget > 0 && len(q) > 0 {
			a := &q[0]
			take := a.pkt.Size - a.drained
			if take > budget {
				take = budget
			}
			a.drained += take
			budget -= take
			d.stats.EjectFlits += uint64(take)
			d.backlog[node] -= take
			if a.drained == a.pkt.Size {
				d.stats.recordEject(a.pkt, d.now)
				d.inFlight--
				if d.ejectHandler != nil {
					d.ejectHandler(node, a.pkt, d.now)
				}
				q = q[1:]
			}
		}
		d.ejectQ[node] = q
	}
}

// GetPacket returns a zeroed packet from the fabric's freelist.
func (d *DA2Mesh) GetPacket() *Packet { return d.pool.get() }

// PutPacket recycles a delivered packet into the freelist.
func (d *DA2Mesh) PutPacket(p *Packet) { d.pool.put(p) }

// NIOccupancyAvgFlits returns the mean time-averaged lane-queue occupancy
// over injecting NIs.
func (d *DA2Mesh) NIOccupancyAvgFlits() float64 {
	var sum float64
	var cnt int
	for _, ni := range d.nis {
		if !ni.everHeld || ni.occCycles == 0 {
			continue
		}
		sum += ni.occupancy / float64(ni.occCycles)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
