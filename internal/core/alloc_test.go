package core

import (
	"testing"

	"repro/internal/trace"
)

// TestStepDoesNotAllocate locks in the zero-allocation steady-state step:
// after a warmup long enough to grow every queue, freelist and stats buffer
// to its working size, Step must not allocate. The only tolerated residue is
// the amortised growth of the per-run InjWindows series (one append per 100
// cycles per network), which stays far below the 0.01 allocs/op bound.
func TestStepDoesNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is slow")
	}
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = AdaARI
	sim, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		sim.Step()
	}
	allocs := testing.AllocsPerRun(5000, func() { sim.Step() })
	if allocs > 0.01 {
		t.Fatalf("Step allocated %.4f objects/op in steady state, want ~0", allocs)
	}
}
