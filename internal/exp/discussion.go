package exp

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig14 compares energy per unit of work between the adaptive baseline and
// ARI (paper: dynamic ~equal, static shrinks with runtime, ~4% total
// saving under the tools' low static share).
func Fig14(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix([]core.Scheme{core.AdaBaseline, core.AdaARI})
	if err != nil {
		return nil, err
	}
	params := power.DefaultParams()
	t := stats.NewTable("benchmark", "baseline", "ARI", "ARI_dynamic", "ARI_static")
	var totals []float64
	for i, k := range r.Benchmarks {
		eb, err := perInstrEnergy(matrix[i][0], false, params)
		if err != nil {
			return nil, err
		}
		ea, err := perInstrEnergy(matrix[i][1], true, params)
		if err != nil {
			return nil, err
		}
		norm := safeDiv(ea.Total(), eb.Total())
		totals = append(totals, norm)
		t.AddRow(k.Name, "1.000",
			fmt.Sprintf("%.3f", norm),
			fmt.Sprintf("%.3f", safeDiv(ea.Dynamic, eb.Total())),
			fmt.Sprintf("%.3f", safeDiv(ea.Static, eb.Total())))
	}
	avg := mean(totals)
	return &Figure{
		ID:      "Fig 14",
		Title:   "Energy per unit work, ARI vs baseline (normalised)",
		Paper:   "dynamic energy ~unchanged; static reduced by shorter runtime; total ~-4%",
		Table:   t,
		Summary: map[string]float64{"avg_energy_norm": avg, "avg_energy_saving": 1 - avg},
	}, nil
}

func perInstrEnergy(res core.Result, ari bool, p power.Params) (power.Breakdown, error) {
	a := power.Activity{
		NoCCycles:      res.Activity.NoCCycles,
		Instructions:   res.Activity.Instructions,
		L1Accesses:     res.Activity.L1Accesses,
		L2Accesses:     res.Activity.L2Accesses,
		DRAMReads:      res.Activity.DRAMReads,
		DRAMWrites:     res.Activity.DRAMWrites,
		ReqFlitHops:    res.Activity.ReqFlitHops,
		RepFlitHops:    res.Activity.RepFlitHops,
		BufferedFlits:  res.Activity.BufferedFlits,
		InjectionFlits: res.Activity.InjectionFlits,
	}
	return power.PerInstruction(power.Estimate(a, ari, p), res.Instructions)
}

// Fig15 studies VC-count interaction (paper: ARI wins at equal VC count,
// and grows more from 2->4 VCs than the baseline because the removed
// injection bottleneck lets the extra VCs fill).
func Fig15(r *Runner) (*Figure, error) {
	benches := []string{"bfs", "b+tree", "hotspot", "pathfinder"}
	type variant struct {
		label  string
		vcs    int
		scheme core.Scheme
	}
	variants := []variant{
		{"2VC-Baseline", 2, core.AdaBaseline},
		{"4VC-Baseline", 4, core.AdaBaseline},
		{"2VC-ARI", 2, core.AdaARI},
		{"4VC-ARI", 4, core.AdaARI},
	}
	var jobs []Job
	for _, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			cfg := r.withScheme(v.scheme)
			cfg.VCs = v.vcs
			cfg.InjSpeedup = v.vcs // speedup matches VC count (§7.5(3))
			jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	header := []string{"benchmark"}
	for _, v := range variants {
		header = append(header, v.label)
	}
	t := stats.NewTable(header...)
	var baseScaling, ariScaling []float64
	for bi, name := range benches {
		base := res[bi*len(variants)].IPC
		row := []string{name}
		vals := make([]float64, len(variants))
		for vi := range variants {
			vals[vi] = safeDiv(res[bi*len(variants)+vi].IPC, base)
			row = append(row, fmt.Sprintf("%.3f", vals[vi]))
		}
		t.AddRow(row...)
		baseScaling = append(baseScaling, safeDiv(vals[1], vals[0]))
		ariScaling = append(ariScaling, safeDiv(vals[3], vals[2]))
	}
	return &Figure{
		ID:    "Fig 15",
		Title: "ARI with different VC counts (IPC norm. to 2VC-Baseline)",
		Paper: "ARI > baseline at same VCs; 2->4 VC gain much larger with ARI",
		Table: t,
		Summary: map[string]float64{
			"baseline_vc_scaling": mean(baseScaling) - 1,
			"ari_vc_scaling":      mean(ariScaling) - 1,
		},
	}, nil
}

// Fig16 applies ARI on top of the DA2mesh overlay (paper: +16.4% IPC over
// DA2mesh alone — the overlay does not address reply injection).
func Fig16(r *Runner) (*Figure, error) {
	matrix, err := r.schemeMatrix([]core.Scheme{core.DA2MeshBase, core.DA2MeshARI})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("benchmark", "DA2Mesh", "DA2Mesh+ARI")
	var norms []float64
	for i, k := range r.Benchmarks {
		base := matrix[i][0].IPC
		v := safeDiv(matrix[i][1].IPC, base)
		norms = append(norms, v)
		t.AddRow(k.Name, "1.000", fmt.Sprintf("%.3f", v))
	}
	gm := stats.GeoMean(norms)
	t.AddRow("geomean", "1.000", fmt.Sprintf("%.3f", gm))
	return &Figure{
		ID:      "Fig 16",
		Title:   "ARI on top of DA2mesh (IPC norm. to DA2mesh)",
		Paper:   "ARI adds ~16.4% on top of DA2mesh",
		Table:   t,
		Summary: map[string]float64{"da2mesh_ari_gain": gm - 1},
	}, nil
}

// Scalability evaluates Ada-ARI vs Ada-Baseline on 4x4, 6x6 and 8x8 meshes
// (paper: IPC improvement grows 3.7% -> 15.4% -> 24.7%).
func Scalability(r *Runner) (*Figure, error) {
	type size struct {
		label string
		w, h  int
		mc    int
	}
	// MC count stays 8 across sizes (as the paper's per-MC bandwidth does),
	// so the CC:MC ratio — the few-to-many intensity — grows with the
	// mesh: 8:8, 28:8, 56:8.
	sizes := []size{
		{"4x4", 4, 4, 8},
		{"6x6", 6, 6, 8},
		{"8x8", 8, 8, 8},
	}
	// A class-balanced subset keeps the study tractable on one machine.
	names := []string{"bfs", "mummerGPU", "pathfinder", "hotspot",
		"b+tree", "backprop", "histogram", "scan",
		"blackScholes", "matrixMul", "nn", "monteCarlo"}
	var jobs []Job
	var kernels []trace.Kernel
	for _, n := range names {
		k, err := trace.ByName(n)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	schemes := []core.Scheme{core.AdaBaseline, core.AdaARI}
	for _, k := range kernels {
		for _, sz := range sizes {
			for _, sch := range schemes {
				cfg := r.withScheme(sch)
				cfg.MeshWidth, cfg.MeshHeight, cfg.NumMC = sz.w, sz.h, sz.mc
				jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
			}
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("mesh", "ARI IPC gain (geomean)")
	summary := map[string]float64{}
	idx := 0
	gains := make([][]float64, len(sizes))
	for range kernels {
		for si := range sizes {
			base := res[idx].IPC
			ari := res[idx+1].IPC
			gains[si] = append(gains[si], safeDiv(ari, base))
			idx += 2
		}
	}
	for si, sz := range sizes {
		g := stats.GeoMean(gains[si]) - 1
		t.AddRow(sz.label, pct(g))
		summary["gain_"+sz.label] = g
	}
	return &Figure{
		ID:      "§7.5 scalability",
		Title:   "Ada-ARI IPC improvement vs mesh size",
		Paper:   "3.7% (4x4), 15.4% (6x6), 24.7% (8x8)",
		Table:   t,
		Summary: summary,
	}, nil
}

// AreaOverhead reproduces §6.1's RTL-derived overheads from the analytical
// area model.
func AreaOverhead(r *Runner) (*Figure, error) {
	cfg := r.Base
	mesh := noc.Mesh{Width: cfg.MeshWidth, Height: cfg.MeshHeight}
	longPkt := noc.PacketSize(noc.ReadReply, cfg.RepLinkBits, cfg.DataBytes)
	speedup := cfg.InjSpeedup
	if speedup <= 0 {
		speedup = 4
	}
	o, err := area.Evaluate(mesh.Nodes(), cfg.NumMC, cfg.VCs, longPkt,
		cfg.RepLinkBits, 4*longPkt, speedup, area.DefaultParams())
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("quantity", "value")
	t.AddRow("baseline NI + MC-router area", fmt.Sprintf("%.0f units", o.BaselinePair))
	t.AddRow("ARI NI + MC-router area", fmt.Sprintf("%.0f units", o.ARIPair))
	t.AddRow("pair overhead", fmt.Sprintf("%.2f%%", o.PairOverhead*100))
	t.AddRow("amortised over whole NoC", fmt.Sprintf("%.3f%%", o.AmortisedOverhead*100))
	return &Figure{
		ID:    "§6.1 area",
		Title: "ARI area overhead (analytical model standing in for RTL synthesis)",
		Paper: "revised NI + MC-router pair +5.4%; amortised ~0.7% (<1%)",
		Table: t,
		Summary: map[string]float64{
			"pair_overhead":      o.PairOverhead,
			"amortised_overhead": o.AmortisedOverhead,
		},
	}, nil
}
