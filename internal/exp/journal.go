package exp

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
)

// journalVersion is bumped whenever the serialised Result or the key schema
// changes shape; entries from another version are ignored on load so a
// stale journal can never smuggle incompatible results into a sweep.
const journalVersion = 1

// journalEntry is one completed run, one JSON object per line (JSONL).
type journalEntry struct {
	V      int         `json:"v"`
	Key    string      `json:"key"`
	Bench  string      `json:"bench"`
	Scheme string      `json:"scheme"`
	Result core.Result `json:"result"`
}

// Journal is an opt-in on-disk result journal for the Runner: every
// finished run is appended as one JSON line and flushed before the result
// is handed to the caller, so a killed sweep resumes from the journal
// without recomputing finished runs.
//
// Crash safety: entries are self-delimiting lines; a process killed
// mid-append leaves at most one truncated final line, which OpenJournal
// skips (everything before it is intact). Resumed runs are byte-identical
// to fresh ones because the serialised Result round-trips losslessly.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]core.Result
	loaded  int
}

// OpenJournal opens (or creates) the journal at path and loads every intact
// entry. A truncated or corrupt trailing line — the signature of a killed
// process — is skipped silently; a corrupt line in the middle of the file
// only costs that one entry.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: open journal: %w", err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]core.Result)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.V != journalVersion || e.Key == "" {
			continue // truncated tail or foreign line: recompute that run
		}
		j.entries[e.Key] = e.Result
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: read journal: %w", err)
	}
	// Append from the end regardless of where the scanner stopped.
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: seek journal: %w", err)
	}
	j.loaded = len(j.entries)
	return j, nil
}

// Len returns the number of loaded + recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Loaded returns how many entries the journal held when opened (i.e. how
// many runs a resumed sweep skips).
func (j *Journal) Loaded() int { return j.loaded }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup returns the journalled result for key, if present.
func (j *Journal) lookup(key string) (core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.entries[key]
	return r, ok
}

// record appends one finished run and syncs it to disk before returning, so
// a crash immediately after never loses it.
func (j *Journal) record(key string, res core.Result) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("exp: journal %s is closed", j.path)
	}
	if _, ok := j.entries[key]; ok {
		return nil
	}
	line, err := json.Marshal(journalEntry{
		V:      journalVersion,
		Key:    key,
		Bench:  res.Benchmark,
		Scheme: res.Scheme.String(),
		Result: res,
	})
	if err != nil {
		return fmt.Errorf("exp: encode journal entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("exp: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("exp: sync journal: %w", err)
	}
	j.entries[key] = res
	return nil
}

// jobKey derives the journal key for one (config, benchmark) run: a SHA-256
// over the canonical JSON of both, so any config change — scheme, horizons,
// seed, fault schedule — keys a distinct entry.
func jobKey(cfg core.Config, bench string) string {
	b, err := json.Marshal(struct {
		V     int
		Cfg   core.Config
		Bench string
	}{journalVersion, cfg, bench})
	if err != nil {
		// core.Config is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("exp: marshal job key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
