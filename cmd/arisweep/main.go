// Command arisweep sweeps one design parameter of the simulated system and
// prints IPC (and stall) across the sweep — the tool behind the paper's
// sensitivity studies (§7.5) and any ablation a user wants to run.
//
// Usage:
//
//	arisweep -param speedup -bench kmeans            # S = 1..4 (Fig 8 / §4.2)
//	arisweep -param vcs -bench bfs                   # 1,2,4,8 VCs (Fig 15 axis)
//	arisweep -param replink -bench bfs               # 64..512-bit reply links (Fig 4 axis)
//	arisweep -param mesh -bench bfs                  # 4x4 / 6x6 / 8x8 (§7.5(2))
//	arisweep -param niqueue -bench srad              # NI queue 4..80 packets (Fig 6 axis)
//	arisweep -param starvation -bench bfs            # §5 threshold sensitivity
//	arisweep -param priolevels -bench bfs            # 1..6 levels (Fig 9 axis)
//
// Runs execute through the hardened experiment harness: each point runs
// under the forward-progress watchdogs (a deadlocked configuration fails
// with a diagnostic instead of hanging), -timeout bounds each run's wall
// time, and -journal makes an interrupted sweep resumable without
// recomputing finished points.
// With -server, points are not simulated locally: each is submitted to a
// running ariserve instance through the retrying client, so shed requests
// (429), drains and even server restarts are ridden out transparently, and
// the server's journal deduplicates resubmitted points.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arisweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args, executes the sweep and
// writes the table to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("arisweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		param   = fs.String("param", "speedup", "speedup | vcs | replink | mesh | niqueue | starvation | priolevels")
		bench   = fs.String("bench", "bfs", "benchmark")
		scheme  = fs.String("scheme", "Ada-ARI", "scheme under sweep")
		cycles  = fs.Int64("cycles", 8000, "measured cycles")
		warmup  = fs.Int64("warmup", 2000, "warmup cycles")
		seed    = fs.Uint64("seed", 1, "seed")
		journal = fs.String("journal", "", "JSONL result journal; an interrupted sweep resumes from it")
		timeout = fs.Duration("timeout", 0, "per-run wall-time limit (0 = unlimited); with -server it becomes the job's timeout_ms and bounds the submission round trip")
		server  = fs.String("server", "", "ariserve base URL; points run remotely via the retrying client")
		shards  = fs.Int("shards", 0, "per-run intra-run parallelism: worker shards per simulation (0/1 = serial; results byte-identical)")

		obsInterval = fs.Int64("obs-interval", 0, "metrics sampling interval in NoC cycles for locally-run points (0 = off)")
		obsDir      = fs.String("obs-dir", ".", "directory for per-point metric CSVs (metrics_<label>.csv)")

		corruptProb = fs.Float64("corrupt-prob", 0, "per-cycle flit-corruption burst probability applied to every point; > 0 enables fault injection and the NoC recovery layer")
		linkDeath   = fs.Float64("link-death", 0, "per-cycle permanent link-death probability applied to every point; > 0 enables fault injection with fault-adaptive routing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kernel, err := trace.ByName(*bench)
	if err != nil {
		return err
	}
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	// Reject a bad shard count up front: every sweep point inherits it, so
	// letting config validation catch it at the first run (or worse, on the
	// server) turns a flag typo into a late runtime error.
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}

	base := core.DefaultConfig()
	base.Scheme = sch
	base.WarmupCycles = *warmup
	base.MeasureCycles = *cycles
	base.Seed = *seed
	base.Shards = *shards
	if *corruptProb < 0 || *corruptProb > 1 || *linkDeath < 0 || *linkDeath > 1 {
		return fmt.Errorf("-corrupt-prob and -link-death must be in [0,1]")
	}
	if *corruptProb > 0 || *linkDeath > 0 {
		base.Fault.Enabled = true
		base.Fault.CorruptProb = *corruptProb
		base.Fault.LinkDeathProb = *linkDeath
	}

	// Report the effective parallelism of the sweep (concurrent runs x
	// per-run shards) and clamp it to the host instead of silently
	// oversubscribing. Points run one at a time here, so the budget is
	// 1 x shards locally; with -server, per-point shards still apply but
	// concurrent-run admission belongs to the server.
	if eff := noc.EffectiveShards(noc.Mesh{Width: base.MeshWidth, Height: base.MeshHeight}, base.Shards); eff > 1 {
		if *server == "" {
			if maxP := runtime.GOMAXPROCS(0); eff > maxP {
				fmt.Fprintf(stderr, "arisweep: clamping -shards %d to %d: 1 concurrent run x %d shards exceeds GOMAXPROCS=%d\n",
					eff, maxP, eff, maxP)
				base.Shards = maxP
				eff = maxP
			}
			fmt.Fprintf(stderr, "arisweep: effective parallelism: 1 concurrent run x %d shards = %d workers\n", eff, eff)
		} else {
			fmt.Fprintf(stderr, "arisweep: effective parallelism: %d shards per point; concurrent-run admission is the server's (shard-aware MaxInFlight)\n", eff)
		}
	}

	type point struct {
		label string
		cfg   core.Config
	}
	var points []point
	add := func(label string, mutate func(*core.Config)) {
		cfg := base
		mutate(&cfg)
		points = append(points, point{label, cfg})
	}

	switch *param {
	case "speedup":
		for s := 1; s <= 4; s++ {
			s := s
			add(fmt.Sprintf("S=%d", s), func(c *core.Config) { c.InjSpeedup = s })
		}
	case "vcs":
		for _, v := range []int{1, 2, 4, 8} {
			v := v
			add(fmt.Sprintf("%dVC", v), func(c *core.Config) {
				c.VCs = v
				if c.InjSpeedup > v {
					c.InjSpeedup = v
				}
			})
		}
	case "replink":
		for _, b := range []int{64, 128, 256, 512} {
			b := b
			add(fmt.Sprintf("%db", b), func(c *core.Config) { c.RepLinkBits = b })
		}
	case "mesh":
		for _, m := range []struct{ w, h, mc int }{{4, 4, 4}, {6, 6, 8}, {8, 8, 8}} {
			m := m
			add(fmt.Sprintf("%dx%d", m.w, m.h), func(c *core.Config) {
				c.MeshWidth, c.MeshHeight, c.NumMC = m.w, m.h, m.mc
			})
		}
	case "niqueue":
		longPkt := noc.PacketSize(noc.ReadReply, base.RepLinkBits, base.DataBytes)
		for _, p := range []int{4, 12, 28, 50, 80} {
			p := p
			add(fmt.Sprintf("%dpkt", p), func(c *core.Config) { c.NIQueueFlits = p * longPkt })
		}
	case "starvation":
		for _, th := range []int64{100, 1000, 10000, 100000} {
			th := th
			add(fmt.Sprintf("%d", th), func(c *core.Config) { c.StarvationLimit = th })
		}
	case "priolevels":
		for l := 1; l <= 6; l++ {
			l := l
			add(fmt.Sprintf("L=%d", l), func(c *core.Config) { c.PriorityLevels = l })
		}
	default:
		return fmt.Errorf("unknown -param %q", *param)
	}

	// runPoint executes one sweep point: locally on the hardened runner, or
	// remotely through the retrying client when -server is set.
	// Per-point observability (local only): each point gets a fresh metrics
	// registry attached through Runner.Instrument and dumped to its own CSV.
	// Points journalled from a previous sweep never build a simulator, so
	// they produce no CSV — by design, resumption stays cheap.
	var runPoint func(cfg core.Config) (core.Result, error)
	var obsReg *obs.Registry
	if *server != "" {
		if *obsInterval > 0 {
			fmt.Fprintln(stderr, "arisweep: -obs-interval is ignored with -server (metrics are per-process; scrape the server's /metrics instead)")
		}
		cli := client.New(*server)
		runPoint = func(cfg core.Config) (core.Result, error) {
			// -timeout propagates to the server as the job's watchdog deadline
			// (TimeoutMs) and, padded for queueing and retries, bounds the
			// whole submission round trip — a remote sweep point cannot hang
			// past its budget any more than a local one can.
			req := serve.JobRequest{Bench: *bench, Config: &cfg}
			ctx := context.Background()
			if *timeout > 0 {
				req.TimeoutMs = timeout.Milliseconds()
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 4**timeout)
				defer cancel()
			}
			resp, err := cli.Submit(ctx, req)
			if err != nil {
				return core.Result{}, err
			}
			return resp.Result, nil
		}
	} else {
		runner := &exp.Runner{Base: base, RunTimeout: *timeout}
		if *journal != "" {
			j, err := exp.OpenJournal(*journal)
			if err != nil {
				return err
			}
			defer j.Close()
			runner.Journal = j
			if j.Loaded() > 0 {
				fmt.Fprintf(stderr, "arisweep: resuming, %d runs journalled in %s\n", j.Loaded(), j.Path())
			}
		}
		if *obsInterval > 0 {
			runner.Instrument = func(sim *core.Simulator) {
				obsReg = obs.NewRegistry(*obsInterval)
				obs.AttachSimulator(obsReg, sim)
				obsReg.Reserve(int((base.WarmupCycles+base.MeasureCycles) / *obsInterval) + 2)
			}
		}
		runPoint = func(cfg core.Config) (core.Result, error) {
			return runner.Run(cfg, kernel)
		}
	}

	fmt.Fprintf(stdout, "sweep %s on %s (%s), %d measured cycles\n\n", *param, *bench, sch, *cycles)
	fmt.Fprintf(stdout, "%-10s %10s %10s %14s %12s\n", *param, "IPC", "vs first", "stall/reply", "rep latency")
	var first float64
	for _, p := range points {
		obsReg = nil
		r, err := runPoint(p.cfg)
		if err != nil {
			return err
		}
		if obsReg != nil {
			path := fmt.Sprintf("%s/metrics_%s.csv", *obsDir, sanitizeLabel(p.label))
			if err := writePointCSV(obsReg, path); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "arisweep: wrote %d metric samples to %s\n", obsReg.Samples(), path)
		}
		if first == 0 {
			first = r.IPC
		}
		stall := 0.0
		if r.RepliesSent > 0 {
			stall = float64(r.MCStallTime) / float64(r.RepliesSent)
		}
		fmt.Fprintf(stdout, "%-10s %10.3f %+9.1f%% %14.1f %12.1f\n",
			p.label, r.IPC, 100*(r.IPC/first-1), stall,
			r.Rep.AvgLatency(noc.ReadReply, noc.WriteReply))
	}
	return nil
}

// sanitizeLabel makes a sweep-point label safe as a file-name component.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// writePointCSV dumps one point's sampled metrics.
func writePointCSV(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
