package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// RunMonitor tracks every executing simulation for live introspection: the
// job server exposes its snapshot at /metrics (cycles/sec, ETA, watchdog
// state) and fetches on-demand NoC state dumps for /debug/nocstate. It is
// safe for concurrent use: runs register/deregister from worker goroutines
// and HTTP handlers read snapshots concurrently.
type RunMonitor struct {
	mu   sync.Mutex
	runs map[*RunStatus]struct{}
}

// NewRunMonitor returns an empty monitor.
func NewRunMonitor() *RunMonitor {
	return &RunMonitor{runs: make(map[*RunStatus]struct{})}
}

// Begin registers one starting run; the returned status implements
// core.Inspector and is wired into the run's CheckOptions so the simulation
// goroutine reports progress at every watchdog poll.
func (m *RunMonitor) Begin(name, scheme string, totalCycles int64) *RunStatus {
	st := &RunStatus{
		name:     name,
		scheme:   scheme,
		total:    totalCycles,
		start:    time.Now(),
		stateCh:  make(chan []byte, 1),
		lastPoll: time.Now().UnixNano(),
	}
	m.mu.Lock()
	m.runs[st] = struct{}{}
	m.mu.Unlock()
	return st
}

// End deregisters a finished run.
func (m *RunMonitor) End(st *RunStatus) {
	m.mu.Lock()
	delete(m.runs, st)
	m.mu.Unlock()
}

// Active returns the currently registered runs.
func (m *RunMonitor) Active() []*RunStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*RunStatus, 0, len(m.runs))
	for st := range m.runs {
		out = append(out, st)
	}
	return out
}

// Snapshot returns a progress report for every active run.
func (m *RunMonitor) Snapshot() []RunProgress {
	active := m.Active()
	out := make([]RunProgress, 0, len(active))
	for _, st := range active {
		out = append(out, st.Report())
	}
	return out
}

// RunProgress is a point-in-time progress report of one executing run.
type RunProgress struct {
	// Name is "bench/scheme" — the run's display identity.
	Name   string `json:"name"`
	Scheme string `json:"scheme"`
	// Cycle is the last reported NoC cycle; TotalCycles the run's horizon
	// (warmup + measurement; 0 when unknown, e.g. fixed-work runs).
	Cycle       int64 `json:"cycle"`
	TotalCycles int64 `json:"total_cycles"`
	// CyclesPerSec is the observed simulation rate since the run started;
	// ETASeconds extrapolates it over the remaining cycles (-1 = unknown).
	CyclesPerSec float64 `json:"cycles_per_sec"`
	ETASeconds   float64 `json:"eta_seconds"`
	// NoProgressFor is the watchdog's count of cycles without any fabric
	// moving a flit (its deadlock timer); 0 is healthy.
	NoProgressFor int64 `json:"no_progress_for"`
	ReqInFlight   int   `json:"req_in_flight"`
	RepInFlight   int   `json:"rep_in_flight"`
	// AgeSeconds is the run's wall-clock age.
	AgeSeconds float64 `json:"age_seconds"`
}

// RunStatus is the live state of one executing run. The simulation
// goroutine writes it through the core.Inspector methods (Progress,
// WantState, State); HTTP handlers read it via Progress()/FetchState.
type RunStatus struct {
	name   string
	scheme string
	total  int64
	start  time.Time

	cycle       atomic.Int64
	noProgress  atomic.Int64
	reqInFlight atomic.Int64
	repInFlight atomic.Int64
	lastPoll    int64 // unix nanos of the last inspector poll (atomic)

	stateReq atomic.Bool
	stateCh  chan []byte
	fetchMu  sync.Mutex
}

// Name returns the run's display identity ("bench/scheme").
func (st *RunStatus) Name() string { return st.name }

// Progress implements core.Inspector; the simulation goroutine calls it at
// every watchdog poll.
func (st *RunStatus) Progress(cycle int64, reqInFlight, repInFlight int, noProgressFor int64) {
	st.cycle.Store(cycle)
	st.reqInFlight.Store(int64(reqInFlight))
	st.repInFlight.Store(int64(repInFlight))
	st.noProgress.Store(noProgressFor)
	atomic.StoreInt64(&st.lastPoll, time.Now().UnixNano())
}

// WantState implements core.Inspector: it reports whether a state snapshot
// has been requested (FetchState).
func (st *RunStatus) WantState() bool { return st.stateReq.Load() }

// State implements core.Inspector: the simulation goroutine delivers the
// requested snapshot.
func (st *RunStatus) State(dump []byte) {
	if st.stateReq.CompareAndSwap(true, false) {
		select {
		case st.stateCh <- dump:
		default:
		}
	}
}

// FetchState requests a NoC state snapshot and waits for the simulation
// goroutine to produce it at its next watchdog poll (microseconds of wall
// time for a healthy run). The snapshot is taken on the simulation's own
// goroutine — the only race-free place to read simulator state.
func (st *RunStatus) FetchState(ctx context.Context) ([]byte, error) {
	st.fetchMu.Lock()
	defer st.fetchMu.Unlock()
	// Drain a stale snapshot from an earlier timed-out fetch.
	select {
	case <-st.stateCh:
	default:
	}
	st.stateReq.Store(true)
	select {
	case dump := <-st.stateCh:
		return dump, nil
	case <-ctx.Done():
		st.stateReq.Store(false)
		return nil, ctx.Err()
	}
}

// Report returns a point-in-time progress report.
func (st *RunStatus) Report() RunProgress {
	cycle := st.cycle.Load()
	age := time.Since(st.start).Seconds()
	p := RunProgress{
		Name:          st.name,
		Scheme:        st.scheme,
		Cycle:         cycle,
		TotalCycles:   st.total,
		NoProgressFor: st.noProgress.Load(),
		ReqInFlight:   int(st.reqInFlight.Load()),
		RepInFlight:   int(st.repInFlight.Load()),
		AgeSeconds:    age,
		ETASeconds:    -1,
	}
	if age > 0 {
		p.CyclesPerSec = float64(cycle) / age
	}
	if p.CyclesPerSec > 0 && st.total > 0 {
		remaining := st.total - cycle
		if remaining < 0 {
			remaining = 0
		}
		p.ETASeconds = float64(remaining) / p.CyclesPerSec
	}
	return p
}
