package cache

import (
	"testing"
	"testing/quick"
)

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets x 2 ways x 128B lines = 1KB.
	return New(Config{SizeBytes: 1024, LineBytes: 128, Ways: 2})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 128, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 128, Ways: 0},
		{SizeBytes: 1000, LineBytes: 128, Ways: 2},        // not divisible
		{SizeBytes: 128 * 2 * 3, LineBytes: 128, Ways: 2}, // 3 sets: not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	good := Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.Sets() != 32 {
		t.Fatalf("Sets = %d, want 32", good.Sets())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := smallCache(t)
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("first access hit an empty cache")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access to same line missed")
	}
	// Same line, different byte offset.
	if r := c.Access(0x1000+64, false); !r.Hit {
		t.Fatal("intra-line offset missed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t)
	// Three lines mapping to the same set of a 2-way cache: set index is
	// bits [9:7] of the address; stride of 4*128=512 bytes keeps set 0.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	r := c.Access(d, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("expected miss+eviction, got %+v", r)
	}
	if !c.Probe(a) {
		t.Fatal("MRU line a was evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line b survived")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := smallCache(t)
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // evicts line 0 (LRU, dirty)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Fatalf("expected writeback of line 0, got %+v", r)
	}
	c2 := smallCache(t)
	c2.Access(0, false) // clean
	c2.Access(512, false)
	r2 := c2.Access(1024, false)
	if r2.Writeback {
		t.Fatal("clean eviction reported writeback")
	}
}

func TestAccessNoAllocate(t *testing.T) {
	c := smallCache(t)
	if r := c.AccessNoAllocate(0x2000, true); r.Hit {
		t.Fatal("no-allocate store hit empty cache")
	}
	if c.Probe(0x2000) {
		t.Fatal("no-allocate access installed a line")
	}
	c.Access(0x2000, false)
	if r := c.AccessNoAllocate(0x2000, true); !r.Hit {
		t.Fatal("no-allocate store missed resident line")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t)
	c.Access(0x3000, true)
	present, dirty := c.Invalidate(0x3000)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v, want true/true", present, dirty)
	}
	if c.Probe(0x3000) {
		t.Fatal("line survived invalidation")
	}
	present, _ = c.Invalidate(0x3000)
	if present {
		t.Fatal("double invalidation reported present")
	}
}

func TestStats(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(512, false)
	if c.Accesses != 3 || c.Hits != 1 || c.Misses != 2 {
		t.Fatalf("stats: %d/%d/%d", c.Accesses, c.Hits, c.Misses)
	}
	if hr := c.HitRate(); hr != 1.0/3.0 {
		t.Fatalf("hit rate = %v", hr)
	}
}

// TestWorkingSetFits: a working set no larger than the cache must converge
// to 100% hits after the first pass (property over sizes).
func TestWorkingSetFits(t *testing.T) {
	c := New(Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4})
	lines := 16 * 1024 / 128
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i*128), false)
		}
	}
	// Passes 2 and 3 must be all hits.
	wantHits := uint64(2 * lines)
	if c.Hits != wantHits {
		t.Fatalf("hits = %d, want %d", c.Hits, wantHits)
	}
}

// TestRebuildRoundTripQuick: the line address reconstructed for writebacks
// must map back to the same set and tag.
func TestRebuildRoundTripQuick(t *testing.T) {
	c := New(Config{SizeBytes: 32 << 10, LineBytes: 128, Ways: 8})
	f := func(addr uint64) bool {
		addr &= (1 << 40) - 1
		set, tag := c.index(addr)
		re := c.rebuild(set, tag)
		s2, t2 := c.index(re)
		return s2 == set && t2 == tag && re == c.LineAddr(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestProbeNeverMutates: Probe must not affect subsequent behaviour.
func TestProbeNeverMutates(t *testing.T) {
	c1, c2 := smallCache(t), smallCache(t)
	addrs := []uint64{0, 512, 1024, 0, 2048, 512}
	for _, a := range addrs {
		c1.Probe(a ^ 0x40) // interleave probes on c1 only
		r1 := c1.Access(a, false)
		r2 := c2.Access(a, false)
		if r1.Hit != r2.Hit || r1.Writeback != r2.Writeback {
			t.Fatalf("probe changed behaviour at %x: %+v vs %+v", a, r1, r2)
		}
	}
}

func TestMSHRMergeAndFill(t *testing.T) {
	m := NewMSHR(2, 3)
	if o := m.Lookup(0x100, 1); o != Allocated {
		t.Fatalf("first lookup = %v, want Allocated", o)
	}
	if o := m.Lookup(0x100, 2); o != Merged {
		t.Fatalf("second lookup = %v, want Merged", o)
	}
	if !m.Pending(0x100) || m.Pending(0x200) {
		t.Fatal("Pending wrong")
	}
	ws := m.Fill(0x100)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("fill waiters = %v", ws)
	}
	if m.Pending(0x100) {
		t.Fatal("entry survived fill")
	}
	if ws := m.Fill(0x100); ws != nil {
		t.Fatal("double fill returned waiters")
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(1, 2)
	m.Lookup(0x100, 1)
	if o := m.Lookup(0x200, 2); o != Stalled {
		t.Fatalf("entry-capacity overflow = %v, want Stalled", o)
	}
	m.Lookup(0x100, 2)
	if o := m.Lookup(0x100, 3); o != Stalled {
		t.Fatalf("waiter-capacity overflow = %v, want Stalled", o)
	}
	if !m.Full() {
		t.Fatal("Full() false with max entries")
	}
	if m.FullStall != 2 {
		t.Fatalf("FullStall = %d, want 2", m.FullStall)
	}
}

// TestMSHRConservationQuick: every waiter registered must come back from
// exactly one Fill.
func TestMSHRConservationQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMSHR(8, 4)
		registered := map[int]bool{}
		token := 0
		for _, op := range ops {
			line := uint64(op%8) * 128
			if op < 200 {
				token++
				if m.Lookup(line, token) != Stalled {
					registered[token] = true
				}
			} else {
				for _, w := range m.Fill(line) {
					if !registered[w] {
						return false
					}
					delete(registered, w)
				}
			}
		}
		// Drain the rest.
		for line := uint64(0); line < 8*128; line += 128 {
			for _, w := range m.Fill(line) {
				if !registered[w] {
					return false
				}
				delete(registered, w)
			}
		}
		return len(registered) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
