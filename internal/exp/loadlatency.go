package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/rng"
	"repro/internal/stats"
)

// LoadLatency is the classic NoC characterisation, run on the reply
// network standalone with the paper's few-to-many pattern (8 MCs -> 28
// CCs): average packet latency versus offered load, for the enhanced
// baseline and for ARI. ARI moves the saturation point — the same story as
// the full-system figures, isolated from the GPU model.
func LoadLatency(r *Runner) (*Figure, error) {
	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6, 2.0}
	cycles := int(r.Base.MeasureCycles)
	if cycles < 2000 {
		cycles = 2000
	}

	t := stats.NewTable("offered (pkt/pkt-time/MC)", "baseline latency", "ARI latency", "baseline thruput", "ARI thruput")
	var maxBase, maxARI float64
	for _, load := range loads {
		bl, bt, err := replyNetPoint(r.Base, false, load, cycles)
		if err != nil {
			return nil, err
		}
		al, at, err := replyNetPoint(r.Base, true, load, cycles)
		if err != nil {
			return nil, err
		}
		if bt > maxBase {
			maxBase = bt
		}
		if at > maxARI {
			maxARI = at
		}
		t.AddRow(fmt.Sprintf("%.1f", load),
			fmt.Sprintf("%.1f", bl), fmt.Sprintf("%.1f", al),
			fmt.Sprintf("%.3f", bt), fmt.Sprintf("%.3f", at))
	}
	return &Figure{
		ID:    "loadlat",
		Title: "Extension: reply-network latency vs offered load (few-to-many synthetic traffic)",
		Paper: "(beyond the paper) ARI lifts the injection-limited saturation throughput",
		Table: t,
		Summary: map[string]float64{
			// Saturation throughput in delivered packets/cycle/MC: the
			// baseline pins near 1 flit/cycle over the 9-flit packet
			// (~0.11); ARI is bounded by the mesh around the MCs instead.
			"baseline_saturation_throughput": maxBase,
			"ari_saturation_throughput":      maxARI,
			"saturation_gain":                safeDiv(maxARI, maxBase) - 1,
		},
	}, nil
}

// replyNetPoint measures (avg latency, delivered pkts/cycle/MC) at one
// offered load on a standalone reply network.
func replyNetPoint(base core.Config, ari bool, load float64, cycles int) (latency, throughput float64, err error) {
	mesh := noc.Mesh{Width: base.MeshWidth, Height: base.MeshHeight}
	mcs := noc.DiamondMCPlacement(mesh, base.NumMC)
	cfg := noc.Config{
		Mesh:        mesh,
		VCs:         base.VCs,
		LinkBits:    base.RepLinkBits,
		DataBytes:   base.DataBytes,
		Routing:     noc.RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]noc.NodeConfig, mesh.Nodes())
		speedup := base.InjSpeedup
		if speedup <= 0 {
			speedup = 4
		}
		for _, n := range mcs {
			cfg.Nodes[n] = noc.NodeConfig{NI: noc.NISplit, InjSpeedup: speedup}
		}
		cfg.PriorityLevels = base.PriorityLevels
	}
	net, err := noc.NewNetwork(cfg)
	if err != nil {
		return 0, 0, err
	}
	var delivered uint64
	net.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) { delivered++ })

	isMC := map[int]bool{}
	for _, n := range mcs {
		isMC[n] = true
	}
	var ccs []int
	for n := 0; n < mesh.Nodes(); n++ {
		if !isMC[n] {
			ccs = append(ccs, n)
		}
	}
	longPkt := cfg.LongPacketFlits()
	perCycle := load / float64(longPkt)
	src := rng.New(base.Seed ^ 0xA51)
	for c := 0; c < cycles; c++ {
		for _, mc := range mcs {
			if src.Float64() < perCycle {
				net.Inject(mc, &noc.Packet{
					Type: noc.ReadReply,
					Dst:  ccs[src.Intn(len(ccs))],
					Size: longPkt,
				})
			}
		}
		net.Step()
	}
	st := net.Stats()
	lat := st.AvgLatency(noc.ReadReply)
	thr := float64(delivered) / float64(cycles) / float64(len(mcs))
	return lat, thr, nil
}
