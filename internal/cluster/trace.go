package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Distributed-tracing endpoints of the gateway (DESIGN.md §15). The gateway
// holds only its own spans; the replicas hold theirs. /debug/trace is the
// merge point: it pulls the trace's spans from every replica's /debug/spans
// and renders one Chrome trace_event timeline covering gateway routing,
// replica serving, and the sampled NoC packets of the run.

// traceContext decides one submission's tracing fate: continue a valid
// incoming X-Ari-Trace context (the caller sampled), else mint a fresh
// trace for 1 in TraceSample submissions.
func (g *Gateway) traceContext(r *http.Request) (obs.TraceContext, bool) {
	if tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); ok {
		return tc, true
	}
	if g.traceSample <= 0 {
		return obs.TraceContext{}, false
	}
	if n := g.traceSeq.Add(1); (n-1)%int64(g.traceSample) != 0 {
		return obs.TraceContext{}, false
	}
	return obs.TraceContext{Trace: obs.NewTraceID()}, true
}

// handleSpans serves the gateway's own recorded spans as JSON
// (?trace=<id> filters to one trace).
func (g *Gateway) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.spans.Spans(r.URL.Query().Get("trace")))
}

// handleSLO serves the gateway's SLO report as JSON.
func (g *Gateway) handleSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.slo.Report())
}

// handleTrace renders one trace (?trace=<id>, default the latest locally
// recorded root) as a merged Chrome trace_event document: local gateway
// spans plus every replica's spans for the same trace ID.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	trace := r.URL.Query().Get("trace")
	if trace == "" {
		trace = g.spans.LatestTrace()
	}
	if trace == "" {
		writeError(w, http.StatusNotFound, "no traces recorded; enable sampling with -trace-sample")
		return
	}
	spans := g.spans.Spans(trace)
	spans = append(spans, g.fetchReplicaSpans(r.Context(), trace)...)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "trace not found: "+trace)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteSpanTrace(w, spans)
}

// fetchReplicaSpans collects one trace's spans from every replica,
// best-effort: an unreachable replica contributes nothing rather than
// failing the export.
func (g *Gateway) fetchReplicaSpans(ctx context.Context, trace string) []obs.Span {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	replicas := g.ring.Replicas()
	out := make([][]obs.Span, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep+"/debug/spans?trace="+trace, nil)
			if err != nil {
				return
			}
			resp, err := g.hc.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var spans []obs.Span
			if json.NewDecoder(resp.Body).Decode(&spans) == nil {
				out[i] = spans
			}
		}(i, rep)
	}
	wg.Wait()
	var merged []obs.Span
	for _, s := range out {
		merged = append(merged, s...)
	}
	return merged
}

