package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Decompose reproduces the paper's motivation analysis (Figs. 2/3): it runs
// bench under each scheme with sampled packet-lifetime tracing on the reply
// network and attributes mean reply latency to its components — NI
// injection queueing (the bottleneck the paper removes), network transit
// and ejection. sample records every sample-th packet (1 = all); schemes
// defaults to baseline vs. Ada-ARI. Runs bypass the Runner cache because
// traces are not part of Result; horizons come from base, so keep them
// short. Schemes whose reply fabric has no per-hop state (ideal, DA2mesh)
// cannot be decomposed and are rejected.
func Decompose(base core.Config, bench string, sample uint64, schemes ...core.Scheme) (*Figure, error) {
	kernel, err := trace.ByName(bench)
	if err != nil {
		return nil, err
	}
	if sample == 0 {
		sample = 1
	}
	if len(schemes) == 0 {
		schemes = []core.Scheme{core.XYBaseline, core.AdaARI}
	}

	table := stats.NewTable("scheme", "replies", "queue", "network", "eject", "total", "queue_share")
	summary := make(map[string]float64)
	fig := &Figure{
		ID:    "decompose",
		Title: fmt.Sprintf("Reply-latency decomposition on %s (trace-sampled, 1/%d packets)", bench, sample),
		Paper: "Figs. 2/3: reply latency is dominated by MC-side injection queueing, not network transit",
		Table: table,
		Summary: summary,
	}

	for _, sch := range schemes {
		cfg := base
		cfg.Scheme = sch
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			return nil, fmt.Errorf("exp: decompose %s/%s: %w", bench, sch, err)
		}
		rep, ok := sim.ReplyNet().(*noc.Network)
		if !ok {
			return nil, fmt.Errorf("exp: decompose: scheme %s has no traceable reply fabric", sch)
		}
		coll := obs.NewCollector("rep")
		rep.SetTracer(coll, sample)
		if _, err := sim.RunChecked(core.CheckOptions{}); err != nil {
			return nil, fmt.Errorf("exp: decompose %s/%s: %w", bench, sch, err)
		}
		d := coll.Decompose(noc.ReadReply, noc.WriteReply)
		table.AddRow(sch.String(),
			fmt.Sprintf("%d", d.Packets),
			fmt.Sprintf("%.1f", d.Queue.Value()),
			fmt.Sprintf("%.1f", d.Net.Value()),
			fmt.Sprintf("%.1f", d.Eject.Value()),
			fmt.Sprintf("%.1f", d.Total.Value()),
			fmt.Sprintf("%.3f", d.QueueFraction()))
		summary["queue_share_"+sch.String()] = d.QueueFraction()
	}
	fig.Notes = append(fig.Notes,
		"queue = NI enqueue -> injection grant; network = injection -> last switch traversal; eject = last switch -> tail consumed",
		"traced from sampled packet lifecycles (internal/obs), not end-of-run aggregates")
	return fig, nil
}
