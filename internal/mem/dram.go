// Package mem implements the memory-controller side of the simulated GPGPU:
// a banked GDDR5 timing model with an FR-FCFS scheduler (Table I timing),
// and the memory-controller node that combines an L2 bank, the DRAM channel
// and the reply-generation path whose stalls the paper measures (Fig 12).
package mem

import "fmt"

// Transaction is one memory request travelling through the system; it rides
// as the Payload of NoC packets.
type Transaction struct {
	ID      uint64
	IsWrite bool
	Addr    uint64 // line-aligned byte address
	Core    int    // issuing core index
	SrcNode int    // issuing CC node id
	// ReadyAt is when the reply data became ready in the MC, for the
	// stall-time accounting of Fig 12.
	ReadyAt int64
}

// DRAMConfig is the GDDR5 channel geometry and timing, in memory-clock
// cycles (Table I: tRP=12, tRC=40, tRRD=6, tRAS=28, tRCD=12, tCL=12 at
// 1.75 GHz).
type DRAMConfig struct {
	Banks    int
	RowBytes int
	TRP      int
	TRC      int
	TRRD     int
	TRAS     int
	TRCD     int
	TCL      int
	// BurstCycles is the data-bus occupancy of one line transfer: a 128B
	// line over a 32-pin QDR interface moves 16B per command cycle, i.e. 8
	// cycles (§3's 28 GB/s per MC).
	BurstCycles int
	// QueueCap bounds the scheduler queue; a full queue back-pressures L2.
	QueueCap int
}

// DefaultDRAMConfig returns Table I's GDDR5 parameters.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Banks:       16,
		RowBytes:    2048,
		TRP:         12,
		TRC:         40,
		TRRD:        6,
		TRAS:        28,
		TRCD:        12,
		TCL:         12,
		BurstCycles: 8,
		QueueCap:    32,
	}
}

// Validate checks the configuration.
func (c DRAMConfig) Validate() error {
	if c.Banks <= 0 || c.RowBytes <= 0 || c.BurstCycles <= 0 || c.QueueCap <= 0 {
		return fmt.Errorf("mem: non-positive DRAM geometry %+v", c)
	}
	if c.TRP < 0 || c.TRC < 0 || c.TRRD < 0 || c.TRAS < 0 || c.TRCD < 0 || c.TCL < 0 {
		return fmt.Errorf("mem: negative DRAM timing %+v", c)
	}
	return nil
}

type bankState struct {
	openRow int64 // -1 when closed
	readyAt int64 // earliest next column command
	actAt   int64 // last activate time (tRAS/tRC reference)
	busy    bool  // a request is in service on this bank
}

type dramReq struct {
	txn        *Transaction
	bank       int
	row        int64
	arrival    int64
	completeAt int64
	inService  bool
	writeback  bool // internal L2 writeback: no reply generated
}

// DRAM is one GDDR5 channel with FR-FCFS scheduling. Time is in memory
// cycles; the caller ticks it from its clock domain.
type DRAM struct {
	cfg   DRAMConfig
	banks []bankState
	queue []*dramReq
	now   int64

	busFreeAt int64
	lastActAt int64

	done []*dramReq // completed, awaiting pickup
	free []*dramReq // retired request records, recycled by Enqueue

	// Stats.
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64
	QueueStalls uint64
	BusyCycles  uint64
}

// NewDRAM builds a channel; invalid config panics (construction bug).
func NewDRAM(cfg DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg, banks: make([]bankState, cfg.Banks)}
	// Start timing references far in the past so fresh banks see no
	// phantom tRC/tRRD/tRAS constraints.
	const longAgo = int64(-1) << 30
	d.lastActAt = longAgo
	for i := range d.banks {
		d.banks[i].openRow = -1
		d.banks[i].actAt = longAgo
		d.banks[i].readyAt = longAgo
	}
	return d
}

// CanAccept reports whether the scheduler queue has space.
func (d *DRAM) CanAccept() bool { return len(d.queue) < d.cfg.QueueCap }

// Enqueue adds a transaction; writeback marks internal L2 evictions that
// need no reply. Returns false when the queue is full.
func (d *DRAM) Enqueue(txn *Transaction, writeback bool) bool {
	if !d.CanAccept() {
		d.QueueStalls++
		return false
	}
	bank, row := d.mapAddr(txn.Addr)
	var r *dramReq
	if n := len(d.free); n > 0 {
		r = d.free[n-1]
		d.free = d.free[:n-1]
	} else {
		r = new(dramReq)
	}
	*r = dramReq{txn: txn, bank: bank, row: row, arrival: d.now, writeback: writeback}
	d.queue = append(d.queue, r)
	return true
}

// mapAddr maps a line address to (bank, row): consecutive rows interleave
// across banks so streaming accesses exploit bank-level parallelism.
func (d *DRAM) mapAddr(addr uint64) (bank int, row int64) {
	rowID := addr / uint64(d.cfg.RowBytes)
	return int(rowID % uint64(d.cfg.Banks)), int64(rowID / uint64(d.cfg.Banks))
}

// Pending returns queued plus in-service requests.
func (d *DRAM) Pending() int { return len(d.queue) }

// Quiescent reports whether the channel holds no queued, in-service or
// completed-but-unclaimed work. While quiescent, Tick only advances the
// clock (see AdvanceIdle).
func (d *DRAM) Quiescent() bool { return len(d.queue) == 0 && len(d.done) == 0 }

// AdvanceIdle advances the memory clock by n cycles in O(1). It is exactly
// equivalent to n Ticks while Quiescent(): with an empty queue, Tick does
// nothing but increment now.
func (d *DRAM) AdvanceIdle(n int) { d.now += int64(n) }

// Tick advances one memory cycle: completes in-service requests and issues
// at most one new request chosen FR-FCFS (first ready row-hit, else oldest).
func (d *DRAM) Tick() {
	d.now++
	if len(d.queue) > 0 {
		d.BusyCycles++
	}

	// Complete requests whose data transfer finished.
	for i := 0; i < len(d.queue); {
		r := d.queue[i]
		if r.inService && r.completeAt <= d.now {
			d.banks[r.bank].busy = false
			d.done = append(d.done, r)
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			continue
		}
		i++
	}

	// FR-FCFS issue: scan arrival order; first row-hit to a free bank wins,
	// else the oldest request to a free bank.
	var pick *dramReq
	for _, r := range d.queue {
		if r.inService || d.banks[r.bank].busy {
			continue
		}
		if d.banks[r.bank].openRow == r.row {
			pick = r
			break
		}
		if pick == nil {
			pick = r
		}
	}
	if pick == nil {
		return
	}
	d.issue(pick)
}

// issue computes the full service schedule of one request analytically and
// reserves the bank and data bus.
func (d *DRAM) issue(r *dramReq) {
	b := &d.banks[r.bank]
	t := d.now
	var colAt int64
	switch {
	case b.openRow == r.row:
		d.RowHits++
		colAt = maxI64(t, b.readyAt)
	case b.openRow >= 0:
		d.RowMisses++
		preAt := maxI64(t, b.readyAt, b.actAt+int64(d.cfg.TRAS))
		actAt := maxI64(preAt+int64(d.cfg.TRP), d.lastActAt+int64(d.cfg.TRRD), b.actAt+int64(d.cfg.TRC))
		b.actAt = actAt
		d.lastActAt = actAt
		colAt = actAt + int64(d.cfg.TRCD)
	default:
		d.RowMisses++
		actAt := maxI64(t, b.readyAt, d.lastActAt+int64(d.cfg.TRRD), b.actAt+int64(d.cfg.TRC))
		b.actAt = actAt
		d.lastActAt = actAt
		colAt = actAt + int64(d.cfg.TRCD)
	}
	dataStart := maxI64(colAt+int64(d.cfg.TCL), d.busFreeAt)
	dataEnd := dataStart + int64(d.cfg.BurstCycles)
	d.busFreeAt = dataEnd
	b.openRow = r.row
	b.readyAt = colAt + int64(d.cfg.BurstCycles) // tCCD ~ burst length
	b.busy = true
	r.inService = true
	r.completeAt = dataEnd
	if r.txn.IsWrite {
		d.Writes++
	} else {
		d.Reads++
	}
}

// TakeCompleted drains and returns completed requests in completion order.
// The drained request records return to the Enqueue freelist.
func (d *DRAM) TakeCompleted(out []*Transaction, wantWriteback func(*Transaction)) []*Transaction {
	for i, r := range d.done {
		if r.writeback {
			if wantWriteback != nil {
				wantWriteback(r.txn)
			}
		} else {
			out = append(out, r.txn)
		}
		r.txn = nil
		d.free = append(d.free, r)
		d.done[i] = nil
	}
	d.done = d.done[:0]
	return out
}

// RowHitRate returns the fraction of requests that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	total := d.RowHits + d.RowMisses
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}

func maxI64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
