package fault

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/noc"
)

// chaosFingerprint is everything a chaos run observes. Two runs with the
// same seed — serial or sharded — must produce identical fingerprints.
type chaosFingerprint struct {
	Injected  uint64
	Delivered uint64
	Log       string
	Stats     noc.NetStats
	Recovery  noc.RecoveryStats
	Events    []Event
}

// runChaos drives seeded traffic through a network under the full chaos
// schedule — stalls, freezes, NI bursts, flit corruption and permanent link
// death — and verifies the recovery protocol end to end: zero undetected
// corruption (every delivered packet's checksum recomputes), exactly-once
// delivery of every accepted packet, and clean invariants after drain.
func runChaos(t *testing.T, name string, mutate func(*noc.Config), seed uint64, shards int) chaosFingerprint {
	t.Helper()
	cfg := noc.Config{
		Mesh:           noc.Mesh{Width: 4, Height: 4},
		VCs:            4,
		LinkBits:       128,
		DataBytes:      128,
		Routing:        noc.RouteXY,
		NonAtomicVC:    true,
		RetransBufPkts: 8,
		CheckEvery:     64, // panic on any invariant violation mid-soak
	}
	if mutate != nil {
		mutate(&cfg)
	}
	cfg, err := cfg.Validate()
	if err != nil {
		t.Fatalf("%s: Validate: %v", name, err)
	}
	n, err := noc.NewNetwork(cfg)
	if err != nil {
		t.Fatalf("%s: NewNetwork: %v", name, err)
	}
	defer n.Close()
	if shards > 1 {
		if _, err := n.SetShards(shards, nil); err != nil {
			t.Fatalf("%s: SetShards(%d): %v", name, shards, err)
		}
	}
	inj, err := NewInjector(ChaosConfig(seed), n, 1)
	if err != nil {
		t.Fatalf("%s: NewInjector: %v", name, err)
	}

	delivered := make(map[uint64]int)
	var log strings.Builder
	n.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) {
		delivered[pkt.ID]++
		if want := noc.PacketCheck(pkt); pkt.Check != want {
			t.Errorf("%s: undetected corruption: packet %d delivered with check %#x, recomputed %#x",
				name, pkt.ID, pkt.Check, want)
		}
		fmt.Fprintf(&log, "%d@%d:%d;", pkt.ID, node, now)
	})

	// Deterministic traffic with explicit packet IDs, so the delivery log is
	// comparable across shard counts (auto-assigned IDs stride per shard).
	lcg := seed ^ 0xfeedface
	next := func(mod int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int(lcg>>33) % mod
	}
	types := []noc.PacketType{noc.ReadRequest, noc.WriteRequest, noc.ReadReply, noc.WriteReply}
	seq := uint64(1)
	var injected uint64
	for cycle := 0; cycle < 2500; cycle++ {
		for s := 0; s < cfg.Mesh.Nodes(); s++ {
			if next(10) < 4 {
				d := next(cfg.Mesh.Nodes())
				if d == s {
					continue
				}
				typ := types[next(4)]
				pkt := &noc.Packet{ID: seq, Type: typ, Dst: d, Size: noc.PacketSize(typ, cfg.LinkBits, cfg.DataBytes)}
				if n.Inject(s, pkt) {
					seq++
					injected++
				}
			}
		}
		inj.Step(n.Now())
		n.Step()
	}

	// Drain: transient faults expire on their own; dead links stay dead and
	// the detours must still deliver everything, retransmissions included.
	for i := 0; i < 300000 && !n.Idle(); i++ {
		n.Step()
	}
	if !n.Idle() {
		t.Fatalf("%s: network did not drain under chaos (inFlight=%d, ctl=%d)\n%s",
			name, n.InFlight(), n.CtlPending(), n.DumpState())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants dirty after drain: %v", name, err)
	}

	var total uint64
	for id, c := range delivered {
		if c != 1 {
			t.Errorf("%s: packet %d delivered %d times, want exactly once", name, id, c)
		}
		total += uint64(c)
	}
	if total != injected {
		t.Fatalf("%s: accepted %d packets but delivered %d", name, injected, total)
	}
	rs := n.RecoveryStats()
	if rs.CorruptPackets != rs.NacksSent || rs.CorruptPackets != rs.RetransPackets {
		t.Fatalf("%s: drops %d, NACKs %d, retransmissions %d must agree",
			name, rs.CorruptPackets, rs.NacksSent, rs.RetransPackets)
	}
	if rs.AcksSent != injected {
		t.Fatalf("%s: AcksSent %d != accepted packets %d", name, rs.AcksSent, injected)
	}
	return chaosFingerprint{
		Injected:  injected,
		Delivered: total,
		Log:       log.String(),
		Stats:     *n.Stats(),
		Recovery:  rs,
		Events:    inj.Events(),
	}
}

// TestChaosZeroUndetectedCorruption is the headline robustness soak: all
// three injection architectures absorb the layered chaos schedule with
// every corruption detected, every packet delivered exactly once, and at
// least one permanent link death actually detoured around.
func TestChaosZeroUndetectedCorruption(t *testing.T) {
	seed := uint64(101)
	for name, mutate := range soakSchemes() {
		name, mutate := name, mutate
		t.Run(name, func(t *testing.T) {
			fp := runChaos(t, name, mutate, seed, 0)
			if fp.Recovery.CorruptFlits == 0 || fp.Recovery.CorruptPackets == 0 {
				t.Fatal("chaos schedule corrupted nothing; the soak exercises nothing")
			}
			kinds := make(map[Kind]int)
			for _, e := range fp.Events {
				kinds[e.Kind]++
			}
			if kinds[FlitCorrupt] == 0 {
				t.Fatal("no flit-corrupt event in the schedule")
			}
			if kinds[LinkDeath] == 0 {
				t.Fatal("no link death in the schedule; pick a seed that kills a link")
			}
		})
		seed++
	}
}

// TestChaosShardedMatchesSerial pins byte-identical recovery across serial
// and sharded stepping for every scheme: same seed, same chaos schedule,
// same delivery log, stats and recovery counters on 1, 2 and 4 workers.
func TestChaosShardedMatchesSerial(t *testing.T) {
	schemes := soakSchemes()
	for name := range schemes {
		name, mutate := name, schemes[name]
		t.Run(name, func(t *testing.T) {
			serial := runChaos(t, name, mutate, 77, 0)
			for _, shards := range []int{2, 4} {
				got := runChaos(t, name, mutate, 77, shards)
				if got.Log != serial.Log {
					t.Errorf("%s shards=%d: delivery log diverged from serial", name, shards)
					continue
				}
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("%s shards=%d: fingerprint diverged from serial:\n%+v\nvs\n%+v",
						name, shards, got, serial)
				}
			}
		})
	}
}
