// Package stats provides lightweight statistics collectors used throughout
// the simulator: counters, running means, histograms and time-weighted
// occupancy trackers. All collectors are plain values with no locking; the
// simulator is single-threaded per run and the experiment harness runs whole
// simulations in parallel, never sharing collectors.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Mean accumulates a running arithmetic mean.
type Mean struct {
	sum   float64
	count uint64
}

// Add folds a sample into the mean.
func (m *Mean) Add(v float64) {
	m.sum += v
	m.count++
}

// AddN folds n identical samples into the mean.
func (m *Mean) AddN(v float64, n uint64) {
	m.sum += v * float64(n)
	m.count += n
}

// Value returns the current mean, or 0 if no samples were added.
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Sum returns the sum of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Count returns the number of samples.
func (m *Mean) Count() uint64 { return m.count }

// Merge folds another Mean into m.
func (m *Mean) Merge(o Mean) {
	m.sum += o.sum
	m.count += o.count
}

// MarshalJSON encodes the internal accumulators (not the derived mean) so
// encoded results round-trip bit-exactly — the golden-file and equivalence
// tests compare encoded bytes.
func (m Mean) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"Sum":%s,"Count":%d}`,
		strconv.FormatFloat(m.sum, 'g', -1, 64), m.count)), nil
}

// UnmarshalJSON restores the accumulators written by MarshalJSON.
func (m *Mean) UnmarshalJSON(data []byte) error {
	var aux struct {
		Sum   float64
		Count uint64
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	m.sum, m.count = aux.Sum, aux.Count
	return nil
}

// Histogram is a fixed-width bucket histogram over [0, width*len(buckets)),
// with an overflow bucket for larger samples.
type Histogram struct {
	width    float64
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      float64
	max      float64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}
}

// Add folds a sample into the histogram. Negative samples clamp to bucket 0.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < 0 {
		v = 0
	}
	i := int(v / h.width)
	if i >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[i]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all samples (including overflow samples, using
// their true values).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample seen.
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns an approximation of the p-th percentile (0..100) using
// bucket lower edges; overflow samples report as the overflow edge.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, b := range h.buckets {
		seen += b
		if seen >= target {
			return float64(i) * h.width
		}
	}
	return float64(len(h.buckets)) * h.width
}

// NewTimeWeightedAt returns a TimeWeighted whose observation window starts
// at time now with the given level (used when resetting stats mid-run).
func NewTimeWeightedAt(level float64, now int64) TimeWeighted {
	return TimeWeighted{level: level, lastTime: now, peak: level}
}

// TimeWeighted tracks the time-average of a level signal (such as queue
// occupancy): call Set whenever the level changes, then Average at the end.
type TimeWeighted struct {
	level    float64
	lastTime int64
	weighted float64
	span     int64
	peak     float64
}

// Set records that the level changed to v at time now.
func (t *TimeWeighted) Set(v float64, now int64) {
	dt := now - t.lastTime
	if dt > 0 {
		t.weighted += t.level * float64(dt)
		t.span += dt
	}
	t.level = v
	t.lastTime = now
	if v > t.peak {
		t.peak = v
	}
}

// Finish closes the observation window at time now.
func (t *TimeWeighted) Finish(now int64) { t.Set(t.level, now) }

// Average returns the time-weighted average level.
func (t *TimeWeighted) Average() float64 {
	if t.span == 0 {
		return t.level
	}
	return t.weighted / float64(t.span)
}

// Peak returns the highest level observed.
func (t *TimeWeighted) Peak() float64 { return t.peak }

// Series is a compact time series: (time, value) pairs in parallel slices,
// appended in non-decreasing time order. It is the storage behind the
// observability registry's per-interval metric snapshots; Reserve lets a
// caller pre-size it so that steady-state appends never allocate (the
// registry's sampling hot path relies on that).
type Series struct {
	t []int64
	v []float64
}

// Reserve grows the series' capacity to hold at least n total samples.
func (s *Series) Reserve(n int) {
	if cap(s.t) < n {
		t := make([]int64, len(s.t), n)
		copy(t, s.t)
		s.t = t
	}
	if cap(s.v) < n {
		v := make([]float64, len(s.v), n)
		copy(v, s.v)
		s.v = v
	}
}

// Append records value v at time t.
func (s *Series) Append(t int64, v float64) {
	s.t = append(s.t, t)
	s.v = append(s.v, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.t) }

// Time returns the i-th sample's time.
func (s *Series) Time(i int) int64 { return s.t[i] }

// Value returns the i-th sample's value.
func (s *Series) Value(i int) float64 { return s.v[i] }

// Last returns the most recent sample, or (0, 0) for an empty series.
func (s *Series) Last() (int64, float64) {
	if len(s.t) == 0 {
		return 0, 0
	}
	return s.t[len(s.t)-1], s.v[len(s.v)-1]
}

// Values returns the underlying value slice (not a copy; callers must not
// append to it).
func (s *Series) Values() []float64 { return s.v }

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// the way architecture papers do when normalising IPC (a non-positive value
// would make the product meaningless). Returns 0 for an empty or all-invalid
// slice.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Table is a minimal fixed-column text table used by the experiment harness
// to print figure data as aligned rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted float cells after a leading label.
func (t *Table) AddRowf(label string, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row first; cells with
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns the keys of m in ascending order; used to iterate maps
// deterministically when printing.
func SortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
