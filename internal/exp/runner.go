// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Figs 3-6, 9-16, the §3 link-utilisation
// analysis, the §6.1 area overheads and the §7.5 scalability study) from
// the simulator, printing the same rows/series the paper reports.
//
// Runs are cached by (config, benchmark) and executed on a worker pool, so
// figures that share underlying simulations (e.g. Figs 3/5/11/12/13 all use
// the main 30-benchmark scheme matrix) pay for them once.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/trace"
)

// Runner executes simulations with memoisation and bounded parallelism.
type Runner struct {
	// Base is the configuration template; figure code overrides fields.
	Base core.Config
	// Benchmarks is the evaluated suite (defaults to trace.Suite()).
	Benchmarks []trace.Kernel
	// Workers bounds parallel simulations (default: GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer

	mu    sync.Mutex
	cache map[runKey]core.Result
	runs  int
}

type runKey struct {
	cfg   core.Config
	bench string
}

// NewRunner returns a Runner over the full suite with Table I defaults and
// harness-appropriate horizons.
func NewRunner() *Runner {
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 3000
	cfg.MeasureCycles = 10000
	return &Runner{Base: cfg, Benchmarks: trace.Suite()}
}

// Job is one simulation request.
type Job struct {
	Cfg    core.Config
	Kernel trace.Kernel
}

// Runs returns the number of distinct simulations executed so far.
func (r *Runner) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(cfg core.Config, k trace.Kernel) (core.Result, error) {
	results, err := r.RunAll([]Job{{Cfg: cfg, Kernel: k}})
	if err != nil {
		return core.Result{}, err
	}
	return results[0], nil
}

// RunAll executes the jobs (deduplicated against the cache) on the worker
// pool and returns results in job order.
func (r *Runner) RunAll(jobs []Job) ([]core.Result, error) {
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[runKey]core.Result)
	}
	// Collect the distinct keys that still need simulating.
	need := make(map[runKey]Job)
	for _, j := range jobs {
		k := runKey{cfg: j.Cfg, bench: j.Kernel.Name}
		if _, ok := r.cache[k]; !ok {
			need[k] = j
		}
	}
	r.mu.Unlock()

	if len(need) > 0 {
		keys := make([]runKey, 0, len(need))
		for k := range need {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].bench != keys[j].bench {
				return keys[i].bench < keys[j].bench
			}
			return fmt.Sprint(keys[i].cfg) < fmt.Sprint(keys[j].cfg)
		})

		workers := r.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(keys) {
			workers = len(keys)
		}
		var wg sync.WaitGroup
		ch := make(chan runKey)
		errCh := make(chan error, len(keys))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range ch {
					res, err := r.simulate(need[k])
					if err != nil {
						errCh <- err
						continue
					}
					r.mu.Lock()
					r.cache[k] = res
					r.runs++
					// The progress write stays under the mutex: workers
					// share r.Progress, and io.Writer implementations
					// (bytes.Buffer, files with buffering) are not safe
					// for concurrent use.
					if r.Progress != nil {
						fmt.Fprintf(r.Progress, "run %3d: %-16s %-20s IPC=%.3f\n",
							r.runs, k.bench, res.Scheme, res.IPC)
					}
					r.mu.Unlock()
				}
			}()
		}
		for _, k := range keys {
			ch <- k
		}
		close(ch)
		wg.Wait()
		close(errCh)
		if err := <-errCh; err != nil {
			return nil, err
		}
	}

	out := make([]core.Result, len(jobs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, j := range jobs {
		res, ok := r.cache[runKey{cfg: j.Cfg, bench: j.Kernel.Name}]
		if !ok {
			return nil, fmt.Errorf("exp: missing result for %s", j.Kernel.Name)
		}
		out[i] = res
	}
	return out, nil
}

// simulate executes one uncached run.
func (r *Runner) simulate(j Job) (core.Result, error) {
	sim, err := core.NewSimulator(j.Cfg, j.Kernel)
	if err != nil {
		return core.Result{}, fmt.Errorf("exp: %s/%s: %w", j.Kernel.Name, j.Cfg.Scheme, err)
	}
	return sim.Run(), nil
}

// withScheme returns the base config with the scheme set.
func (r *Runner) withScheme(s core.Scheme) core.Config {
	cfg := r.Base
	cfg.Scheme = s
	return cfg
}

// schemeMatrix runs every benchmark under every scheme and returns
// results[benchIdx][schemeIdx].
func (r *Runner) schemeMatrix(schemes []core.Scheme) ([][]core.Result, error) {
	jobs := make([]Job, 0, len(r.Benchmarks)*len(schemes))
	for _, k := range r.Benchmarks {
		for _, s := range schemes {
			jobs = append(jobs, Job{Cfg: r.withScheme(s), Kernel: k})
		}
	}
	flat, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]core.Result, len(r.Benchmarks))
	for i := range r.Benchmarks {
		out[i] = flat[i*len(schemes) : (i+1)*len(schemes)]
	}
	return out, nil
}
