package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHealthBreakerOpensAndProbeCloses(t *testing.T) {
	// A replica that can be flipped between ready and dead-to-the-world.
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	h := NewHealth([]string{ts.URL}, 3, 10*time.Millisecond, nil)
	h.Start()
	defer h.Close()

	if !h.Up(ts.URL) {
		t.Fatal("replica not routable at cold start")
	}

	// Three consecutive proxied failures open the circuit.
	h.ReportFailure(ts.URL)
	h.ReportFailure(ts.URL)
	if !h.Up(ts.URL) {
		t.Fatal("circuit opened below threshold")
	}
	ready.Store(false) // keep probes failing too, so the probe loop cannot close it
	h.ReportFailure(ts.URL)
	if h.Up(ts.URL) {
		t.Fatal("circuit still closed after threshold failures")
	}
	if h.UpCount() != 0 {
		t.Fatalf("UpCount = %d with the only replica open", h.UpCount())
	}

	// Recovery: the probe loop is the half-open path — the first successful
	// readyz closes the circuit without any proxied traffic.
	ready.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for !h.Up(ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never closed the circuit after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}

	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].URL != ts.URL || !snap[0].Up {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Probes == 0 || snap[0].Failures == 0 {
		t.Fatalf("snapshot lost counters: %+v", snap[0])
	}
}

func TestHealthProbeOpensOnDeadReplica(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // connection refused from here on

	h := NewHealth([]string{url}, 2, 5*time.Millisecond, nil)
	h.Start()
	defer h.Close()

	deadline := time.Now().Add(2 * time.Second)
	for h.Up(url) {
		if time.Now().After(deadline) {
			t.Fatal("probes never opened the circuit on a dead replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthIgnoresUnknownReplica(t *testing.T) {
	h := NewHealth([]string{"http://a:1"}, 2, time.Hour, nil)
	h.ReportFailure("http://not-ours:9")
	if h.Up("http://not-ours:9") {
		t.Fatal("unknown replica reported routable")
	}
	if !h.Up("http://a:1") {
		t.Fatal("known replica affected by unknown report")
	}
}
