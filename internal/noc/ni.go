package noc

import "repro/internal/stats"

// NI is the injection side of a node's network interface. It models the
// paper's enhanced baseline (§4.1) and the two accelerated architectures:
//
//   - NIBaseline: the node hands a whole packet to the single injection
//     queue in one cycle (wide W link), and the queue feeds the router
//     injection port over a narrow N link at one flit per cycle, choosing
//     the injection VC per packet.
//   - NISplit (ARI): the queue is split into one one-packet queue per
//     injection VC, each wired by its own narrow link to that VC, giving an
//     aggregate supply of up to VCs flits per cycle.
//   - NIMultiPort: one queue, one flit per cycle total, but the head packet
//     may bind to any VC of any of the router's multiple injection ports.
type NI struct {
	net *Network
	// sh is the stepping shard that owns this NI's node; injection-side
	// counters go to its deltas (Inject is fanned out by shard too), and
	// lidx is the NI's slot in the shard's SoA activity arrays: the queued
	// flit count lives in sh.niQueued[lidx] (see soa.go).
	sh     *netShard
	lidx   int32
	node   int
	mode   NIMode
	router *router
	ports  []*inputPort // the router's injection input ports

	// vcCredits[p][v] is the free space the NI sees in injection port p,
	// VC v of the router (decremented on staging, restored by the router's
	// switch traversal).
	vcCredits [][]int

	// Baseline / MultiPort state: one FIFO and the (port, VC) binding of
	// the packet currently streaming over the narrow link.
	queue               *flitQueue
	boundPort, boundVC  int
	rrBind              *roundRobin // over port*vc slots for head binding
	lastOfferCycle      int64
	offeredThisCycle    bool
	splitQueues         []*flitQueue // NISplit: one per VC
	splitPick           *roundRobin
	occupancy           stats.TimeWeighted
	everHeld            bool
	acceptedPackets     uint64
	rejectedOfferEvents uint64
	injectedFlits       uint64 // flits sent over the injection link(s)
	// mcLinkBusyUntil models the narrow MC->NI link of the unenhanced
	// baseline (NINarrowLink): accepting a packet occupies it Size cycles.
	mcLinkBusyUntil int64
	// stalledUntil is the fault-injection backpressure horizon: while now is
	// before it the NI supplies no flits, so its queues back up and Offer
	// rejections propagate the burst to the node (see internal/fault).
	stalledUntil int64

	// Fault-recovery protocol state (recovery.go). retransCap > 0 enables
	// the layer: retrans retains unacknowledged packets (bounded by
	// retransCap — a full buffer backpressures Offer), retransPending counts
	// NACKed entries awaiting re-injection, and inbox holds ACK/NACK
	// sideband signals in flight toward this NI.
	retransCap     int
	retrans        []retransEntry
	retransPending int
	inbox          []ctlSignal
}

func newNI(net *Network, node int, router *router) *NI {
	cfg := &net.cfg
	nc := cfg.node(node)
	ni := &NI{
		net:       net,
		node:      node,
		mode:      nc.NI,
		router:    router,
		boundPort: -1,
		boundVC:   -1,
	}
	for p := NumDirections; p < len(router.in); p++ {
		ip := router.in[p]
		ip.ni = ni
		ni.ports = append(ni.ports, ip)
	}
	ni.vcCredits = make([][]int, len(ni.ports))
	for p := range ni.vcCredits {
		ni.vcCredits[p] = make([]int, cfg.VCs)
		for v := range ni.vcCredits[p] {
			ni.vcCredits[p][v] = cfg.VCDepth
		}
	}
	switch ni.mode {
	case NISplit:
		per := cfg.NIQueueFlits / cfg.VCs
		if per < cfg.LongPacketFlits() {
			// Each split queue must hold at least one long packet (§4.1);
			// the total NI buffer is kept >= the baseline's in that case.
			per = cfg.LongPacketFlits()
		}
		ni.splitQueues = make([]*flitQueue, cfg.VCs)
		for v := range ni.splitQueues {
			ni.splitQueues[v] = newFlitQueue(per)
		}
		ni.splitPick = newRoundRobin(cfg.VCs)
	default:
		ni.queue = newFlitQueue(cfg.NIQueueFlits)
		ni.rrBind = newRoundRobin(len(ni.ports) * cfg.VCs)
	}
	if cfg.RetransBufPkts > 0 {
		ni.retransCap = cfg.RetransBufPkts
		ni.retrans = make([]retransEntry, 0, cfg.RetransBufPkts)
	}
	return ni
}

// creditReturn restores one credit for injection port p, VC v; called by
// the router when it pops a flit from that VC.
func (ni *NI) creditReturn(p, v int) { ni.vcCredits[p][v]++ }

// queuedFlits reads the NI's activity predicate: flits buffered in its
// injection queue(s) (SoA slot; see soa.go).
func (ni *NI) queuedFlits() int { return int(ni.sh.niQueued[ni.lidx]) }

// addQueued adjusts the NI's activity predicate; only ever called from the
// NI's own shard (node logic is fanned out by the same partition).
func (ni *NI) addQueued(d int) { ni.sh.niQueued[ni.lidx] += int32(d) }

// CanAccept reports whether Offer(pkt) would succeed this cycle: the NI
// core logic formats at most one packet per cycle (it processes one data
// per cycle, §4.1) and the target queue must have space for the whole
// packet, since the wide link writes it in one cycle.
func (ni *NI) CanAccept(pkt *Packet, now int64) bool {
	if ni.offeredThisCycle && ni.lastOfferCycle == now {
		return false
	}
	if ni.retransCap > 0 && len(ni.retrans) >= ni.retransCap {
		return false // retransmission buffer full: unacked packets at the cap
	}
	if ni.mode == NINarrowLink && now < ni.mcLinkBusyUntil {
		return false // previous packet still serialising over the MC->NI link
	}
	if ni.mode == NISplit {
		return ni.pickSplitQueue(pkt) >= 0
	}
	return ni.queue.free() >= pkt.Size
}

// Offer hands a whole packet to the NI. It returns false (and the node must
// stall and retry) when the queue cannot take it; that rejection is the
// paper's "data stall in MC" condition (Fig 12).
func (ni *NI) Offer(pkt *Packet, now int64) bool {
	if !ni.CanAccept(pkt, now) {
		ni.rejectedOfferEvents++
		ni.sh.ctr.niFullRejects++
		if ni.retransCap > 0 && len(ni.retrans) >= ni.retransCap {
			ni.sh.ctr.retransFullRejects++
		}
		return false
	}
	ni.offeredThisCycle = true
	ni.lastOfferCycle = now
	if ni.mode == NINarrowLink {
		ni.mcLinkBusyUntil = now + int64(pkt.Size)
	}
	pkt.CreatedAt = now
	if ni.net.cfg.PriorityLevels >= 2 {
		pkt.Priority = ni.net.cfg.PriorityLevels - 1
	} else {
		pkt.Priority = 0
	}
	var q *flitQueue
	if ni.mode == NISplit {
		q = ni.splitQueues[ni.pickSplitQueue(pkt)]
	} else {
		q = ni.queue
	}
	if ni.retransCap > 0 {
		// Stamp the end-to-end checksum and retain the packet's identity
		// until the ACK arrives (recovery.go). Identity fields are copied:
		// the delivered shell may be recycled while the ACK is in flight.
		pkt.Check = PacketCheck(pkt)
		ni.retrans = append(ni.retrans, retransEntry{
			id:      pkt.ID,
			typ:     pkt.Type,
			dst:     pkt.Dst,
			size:    pkt.Size,
			check:   pkt.Check,
			created: pkt.CreatedAt,
			payload: pkt.Payload,
		})
	}
	for s := 0; s < pkt.Size; s++ {
		q.push(flit{pkt: pkt, seq: s})
	}
	ni.addQueued(pkt.Size)
	ni.everHeld = true
	ni.occupancy.Set(float64(ni.queuedFlits()), now)
	ni.acceptedPackets++
	ni.sh.ctr.inFlight++
	ni.sh.ctr.packetsInjected[pkt.Type]++
	ni.sh.ctr.flitsInjected[pkt.Type] += uint64(pkt.Size)
	if tr := ni.net.tracer; tr != nil && pkt.ID%ni.net.traceEvery == 0 {
		pkt.traced = true
		tr.PacketEvent(pkt.ID, pkt.Type, pkt.Src, pkt.Dst, ni.node, TraceNIEnqueue, now)
	}
	return true
}

// pickSplitQueue returns the split queue index for pkt: the least-occupied
// queue with room for the whole packet (round-robin tie-break), or -1.
func (ni *NI) pickSplitQueue(pkt *Packet) int {
	best, bestLen := -1, 0
	n := len(ni.splitQueues)
	start := ni.splitPick.next
	for k := 0; k < n; k++ {
		v := (start + k) % n
		q := ni.splitQueues[v]
		if q.free() < pkt.Size {
			continue
		}
		if best == -1 || q.len() < bestLen {
			best, bestLen = v, q.len()
		}
	}
	return best
}

// step supplies flits over the narrow link(s) into the router's injection
// VCs. Staged flits land in the VC buffers at the start of the next cycle
// (the injection link is a real 1-cycle link).
func (ni *NI) step(now int64) {
	if now >= ni.stalledUntil {
		if ni.retransCap > 0 {
			// Protocol work first: consume due ACK/NACKs and re-inject at
			// most one NACKed packet, so it can start supplying this cycle.
			// A stalled NI does neither — the fault freezes the whole NI.
			ni.stepProtocol(now)
		}
		switch ni.mode {
		case NISplit:
			ni.stepSplit(now)
		default:
			ni.stepFIFO(now)
		}
	}
	if ni.everHeld {
		ni.occupancy.Set(float64(ni.queuedFlits()), now)
	}
}

// stepFIFO implements the single-queue supply (baseline and MultiPort):
// one flit per cycle over one narrow link, with the head packet bound to
// an injection (port, VC) pair chosen by the NI.
func (ni *NI) stepFIFO(now int64) {
	if ni.queue.empty() {
		return
	}
	f := ni.queue.front()
	if f.isHead() && ni.boundVC == -1 {
		ni.bindHead(f.pkt)
		if ni.boundVC == -1 {
			return // no injection VC can take the packet yet
		}
	}
	p, v := ni.boundPort, ni.boundVC
	if p == -1 || ni.vcCredits[p][v] <= 0 {
		return
	}
	ni.sendFlit(p, v, now)
	if f.isTail() {
		ni.boundPort, ni.boundVC = -1, -1
	}
}

// bindHead selects the injection (port, VC) for a new packet: the slot with
// the most free space, round-robin tie-broken, requiring room for the whole
// packet so two packets never interleave within a VC stream from the NI.
func (ni *NI) bindHead(pkt *Packet) {
	vcs := ni.net.cfg.VCs
	best, bestCred := -1, 0
	n := len(ni.ports) * vcs
	start := ni.rrBind.next
	for k := 0; k < n; k++ {
		slot := (start + k) % n
		p, v := slot/vcs, slot%vcs
		c := ni.vcCredits[p][v]
		if c < pkt.Size {
			continue
		}
		if c > bestCred {
			best, bestCred = slot, c
		}
	}
	if best < 0 {
		return
	}
	ni.rrBind.next = (best + 1) % n
	ni.boundPort, ni.boundVC = best/vcs, best%vcs
}

// stepSplit implements the ARI split supply: every split queue forwards one
// flit per cycle into its dedicated VC of injection port 0.
func (ni *NI) stepSplit(now int64) {
	for v, q := range ni.splitQueues {
		if q.empty() || ni.vcCredits[0][v] <= 0 {
			continue
		}
		ni.sendSplitFlit(v, now)
	}
}

func (ni *NI) sendFlit(p, v int, now int64) {
	f := ni.queue.pop()
	ni.deliver(f, p, v, now)
}

func (ni *NI) sendSplitFlit(v int, now int64) {
	f := ni.splitQueues[v].pop()
	ni.deliver(f, 0, v, now)
}

func (ni *NI) deliver(f flit, p, v int, now int64) {
	ni.vcCredits[p][v]--
	ni.addQueued(-1)
	if f.isHead() {
		f.pkt.InjectedAt = now
		if tr := ni.net.tracer; tr != nil && f.pkt.traced {
			tr.PacketEvent(f.pkt.ID, f.pkt.Type, f.pkt.Src, f.pkt.Dst, ni.node, TraceInject, now)
		}
	}
	// The injection link is one cycle regardless of router pipeline depth.
	ni.ports[p].arrivals = append(ni.ports[p].arrivals, stagedFlit{f: f, vc: v, deliverAt: now + 1})
	ni.router.addFlits(1)
	ni.injectedFlits++
	ni.sh.ctr.injLinkFlits++
}

// pendingFlits returns the flits still buffered in the NI.
func (ni *NI) pendingFlits() int { return ni.queuedFlits() }

// OccupancyAvg returns the time-weighted average NI queue occupancy in
// flits (Fig 6's metric, converted to packets by the caller).
func (ni *NI) OccupancyAvg(now int64) float64 {
	ni.occupancy.Finish(now)
	return ni.occupancy.Average()
}

// QueueCapacityFlits returns the NI's total buffering in flits.
func (ni *NI) QueueCapacityFlits() int {
	if ni.mode == NISplit {
		total := 0
		for _, q := range ni.splitQueues {
			total += q.cap()
		}
		return total
	}
	return ni.queue.cap()
}
