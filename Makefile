DATE := $(shell date +%Y%m%d)
# Newest committed benchmark snapshot ('b'-suffixed re-records sort after
# their base date).
BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: check test bench bench-scale benchdiff validate-analytic fuzz soak chaos cluster-soak loadtest obs profile

# Shard-scaling budgets enforced by benchdiff -scale: 4-shard stepping must
# be at least 2x faster than serial on the 16x16 mesh (the recorded figure
# is ~3x on 4+ cores) and noticeably faster on 32x32. benchdiff skips these
# loudly when the run's GOMAXPROCS is under -scale-min-procs (default 4),
# so a laptop or throttled CI runner cannot fail the gate on physics.
SCALE_GATES := \
	-scale 'BenchmarkNetworkStep16x16Shards4/BenchmarkNetworkStep16x16Shards1<=0.5' \
	-scale 'BenchmarkNetworkStep32x32Shards4/BenchmarkNetworkStep32x32Shards1<=0.6'

# GATE_MATCH selects the benchmarks under the absolute (baseline-vs-fresh)
# ns/op check. The big-mesh shard series is deliberately NOT in it: those
# runs are ~0.5-3 ms/op, so min-of-3 folds few iterations and absolute
# numbers swing >15% with shared-machine load between sessions — they are
# gated by the within-run SCALE_GATES ratios instead, where both sides see
# the same machine conditions. The short 6x6 NetworkStep benches cover the
# same stepping code paths for absolute regressions.
GATE_MATCH := 'NetworkStep(Baseline|ARI|Faulty|Event|Scan)|SimulatorStep|AnalyticSuite|GateRoute|HistogramObserve'

# check is the full gate: build everything, vet, and run all tests with the
# race detector (covers the equivalence, golden, property, and race suites).
check:
	go build ./...
	go vet ./...
	go test -race ./...

test:
	go test ./...

# bench records the NoC stepping benchmarks (event-driven vs scan reference)
# and the end-to-end simulator benchmarks into a dated JSON snapshot.
# -count=3 stores every repetition; benchdiff folds them to the per-name
# minimum, so the committed baseline uses the same min-of-N protocol as the
# gate's fresh run.
bench:
	go test ./internal/noc ./internal/analytic ./internal/cluster ./internal/obs . -run '^$$' -bench 'NetworkStep|SimulatorStep|AnalyticSuite|GateRoute|HistogramObserve' -benchmem -count=3 \
		| tee /dev/stderr | go run ./cmd/benchjson > BENCH_$(DATE).json

# bench-scale runs only the shard-scaling benchmark series (16x16 and
# 32x32 meshes at 1/2/4/8 shards) and applies the scaling-ratio gate —
# fast feedback on parallel stepping without the full bench suite. Only
# the within-run ratios are asserted (-match '^$' disables the absolute
# check; see GATE_MATCH above for why big-mesh absolutes are not gated).
bench-scale:
	go test ./internal/noc -run '^$$' -bench 'NetworkStep(16x16|32x32)Shards' -benchmem -benchtime 0.5s -count=3 \
		| tee /dev/stderr | go run ./cmd/benchjson \
		| go run ./cmd/benchdiff -baseline $(BASELINE) -match '^$$' $(SCALE_GATES)

# benchdiff is the benchmark regression gate: re-run the NetworkStep and
# SimulatorStep benchmarks and fail when any ns/op regresses more than 15%
# against the newest committed BENCH_*.json snapshot, or when shard scaling
# goes flat (SCALE_GATES above). -count=3 with min-of-N folding in
# benchdiff keeps the gate robust to scheduling noise on shared CI
# machines.
benchdiff:
	go test ./internal/noc ./internal/analytic ./internal/cluster ./internal/obs . -run '^$$' -bench 'NetworkStep|SimulatorStep|AnalyticSuite|GateRoute|HistogramObserve' -benchmem -benchtime 0.5s -count=3 \
		| tee /dev/stderr | go run ./cmd/benchjson \
		| go run ./cmd/benchdiff -baseline $(BASELINE) -match $(GATE_MATCH) $(SCALE_GATES)

# validate-analytic is the physics drift oracle (DESIGN.md §12): re-run the
# analytical estimator against the cycle-accurate simulator over the full
# benchmark suite x validation schemes and fail when any per-workload error
# drifts outside the recorded bands (internal/analytic/testdata/
# error_bands.json). Both sides are deterministic, so a drift means the
# simulator's physics or the model changed; re-record deliberately with
#   go test ./internal/analytic -run TestErrorBands -analytic-record
validate-analytic:
	go test ./internal/analytic -run TestErrorBands -analytic-full -count=1 -v

# soak runs the fault-injection robustness suites under -race: seeded NoC
# fault schedules across schemes with invariants checked throughout, the
# watchdog deadlock/starvation detectors, and deterministic replay under
# faults (DESIGN.md §8).
soak:
	go test -race -count=1 ./internal/fault
	go test -race -count=1 ./internal/core -run 'Watchdog|Fault|RunChecked|Truncated'

# chaos runs the layered fault-recovery soaks under -race (DESIGN.md §13):
# every stall kind combined with flit-corruption bursts and permanent link
# deaths, checking zero undetected corruption (every corrupted packet is
# CRC-caught, NACKed and retransmitted), serial-vs-sharded byte-identity of
# the recovering fabric, and the ariserve kill/restart soak with chaos
# faults active — byte-identical results across the restart with no
# completed job re-executed.
chaos:
	go test -race -count=1 ./internal/fault -run 'Chaos'
	go test -race -count=1 ./internal/serve -run 'ChaosKillRestart' -timeout 10m

# cluster-soak runs the cluster-wide chaos soak under -race (DESIGN.md §14):
# three journalled ariserve replicas behind an arigate front door, replicas
# hard-killed and restarted mid-flight while chaos faults (corruption bursts
# + link deaths) are active inside every simulation. Invariants: every job
# answered byte-identically to an uninterrupted run, zero lost jobs, zero
# re-runs of completed jobs (a post-soak resubmission sweep is served
# entirely from journals — locally or via cross-replica peer fetch), and the
# failover/hedging path actually exercised. The cluster unit suites (ring
# properties, breaker, gateway routing) and the arigate lifecycle smoke run
# alongside.
cluster-soak:
	go test -race -count=1 ./internal/cluster ./cmd/arigate -timeout 15m

# loadtest runs the serving robustness suites under -race: overload (shed
# requests answer 429 + Retry-After and the retrying client still completes
# every job), graceful drain (in-flight jobs finish, goroutine count returns
# to baseline), the kill/restart soak (byte-identical results, no completed
# job re-executed), and the ariserve lifecycle smoke tests (DESIGN.md §9).
loadtest:
	go test -race -count=1 ./internal/serve/... ./cmd/ariserve
	go test -race -count=1 ./internal/exp -run 'Journal|Retr|JobKey'

# obs runs the observability suites under vet + -race: registry/collector
# semantics (incl. the allocation-free sampling guard), the Chrome-trace
# schema fixture, the instrumented-vs-plain byte-identity lock, the
# per-class NetStats counters, the decomposition + SLO-figure goldens, the
# /metrics, /debug/nocstate and pprof endpoint tests (DESIGN.md §10), the
# distributed-tracing suites (trace continuation, hedge propagation,
# traced-vs-plain byte identity; DESIGN.md §15), and the 2-replica traced
# cluster smoke: one gateway-routed job must export a single schema-valid
# Chrome trace spanning gateway, replica and NoC packets.
obs:
	go vet ./internal/obs ./internal/serve/... ./internal/noc ./internal/exp
	go test -race -count=1 ./internal/obs ./internal/stats
	go test -race -count=1 ./internal/noc -run 'NetStats|VAGrant|Tracer'
	go test -race -count=1 ./internal/exp -run 'Decompose|SLOFigure'
	go test -race -count=1 ./internal/serve -run 'Metrics|NoCState|Pprof|Observability|Trace|ByteIdentical|DebugEndpoints'
	go test -race -count=1 ./internal/cluster -run 'Trace|RetryAfter|Rollup|ClusterMetrics'

# profile captures CPU and heap profiles of a representative simulation via
# arisim's -cpuprofile/-memprofile flags; inspect with `go tool pprof`.
profile:
	go run ./cmd/arisim -bench bfs -scheme Ada-ARI -cycles 20000 -warmup 4000 \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles written: cpu.pprof mem.pprof (go tool pprof cpu.pprof)"

# fuzz replays the committed corpora and then fuzzes each target briefly.
fuzz:
	go test ./internal/core -run FuzzConfigValidate -fuzz FuzzConfigValidate -fuzztime 15s
	go test ./internal/trace -run FuzzKernelValidate -fuzz FuzzKernelValidate -fuzztime 15s
	go test ./internal/analytic -run FuzzEstimatorProperties -fuzz FuzzEstimatorProperties -fuzztime 15s
