// custombench shows the workload API: define a brand-new synthetic kernel
// (here, a pointer-chasing graph workload that is not in the 30-benchmark
// suite) and compare injection schemes on it.
//
//	go run ./examples/custombench
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// A custom kernel: very memory-bound, read-only, divergent (poor
	// coalescing), with almost no reuse — the worst case for the reply
	// network.
	kernel := trace.Kernel{
		Name:          "ptrchase",
		Sens:          trace.High,
		WarpsPerCore:  32,
		ComputePerMem: 2,
		ReadFrac:      0.98,
		CoalesceMean:  3.0,
		Locality:      0.05,
		HotLines:      32,
		L2Frac:        0.15,
		SharedLines:   2048,
		StreamLines:   1 << 22,
	}
	if err := kernel.Validate(); err != nil {
		log.Fatal(err)
	}

	schemes := []core.Scheme{
		core.AdaBaseline, core.AdaMultiPort, core.AccSupply,
		core.AccConsume, core.AccBothNoPriority, core.AdaARI,
	}
	fmt.Printf("custom kernel %q across schemes:\n\n", kernel.Name)
	fmt.Printf("%-22s %8s %10s\n", "scheme", "IPC", "vs base")
	var baseIPC float64
	for _, s := range schemes {
		cfg := core.DefaultConfig()
		cfg.Scheme = s
		cfg.WarmupCycles = 1500
		cfg.MeasureCycles = 6000
		sim, err := core.NewSimulator(cfg, kernel)
		if err != nil {
			log.Fatal(err)
		}
		r := sim.Run()
		if s == core.AdaBaseline {
			baseIPC = r.IPC
		}
		fmt.Printf("%-22s %8.3f %+9.1f%%\n", s, r.IPC, 100*(r.IPC/baseIPC-1))
	}
	fmt.Println("\n(Note the Fig 10 shape: supply-only and consume-only do little on")
	fmt.Println(" their own; the combination removes the injection bottleneck.)")
}
