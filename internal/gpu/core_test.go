package gpu

import (
	"testing"

	"repro/internal/mem"
)

// scriptedWorkload issues a fixed compute length and round-robin addresses.
type scriptedWorkload struct {
	compute    int
	writeEvery int // every n-th mem instruction is a store (0 = never)
	stride     uint64
	memCount   int
	cursor     uint64
}

func (s *scriptedWorkload) NextCompute(core, warp int) int { return s.compute }

func (s *scriptedWorkload) NextMem(core, warp int, scratch []uint64) (bool, []uint64) {
	s.memCount++
	s.cursor += s.stride
	write := s.writeEvery > 0 && s.memCount%s.writeEvery == 0
	return write, append(scratch, s.cursor)
}

// collector records transactions the core tries to send.
type collector struct {
	sent    []*mem.Transaction
	blocked bool
}

func (c *collector) send(txn *mem.Transaction) bool {
	if c.blocked {
		return false
	}
	c.sent = append(c.sent, txn)
	return true
}

func smallCoreConfig() Config {
	cfg := DefaultConfig()
	cfg.WarpsPerCore = 4
	return cfg
}

func newTestCore(t *testing.T, w Workload, send func(*mem.Transaction) bool) *Core {
	t.Helper()
	c, err := NewCore(0, 5, smallCoreConfig(), w, send)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestComputeOnlyIPCIsOne(t *testing.T) {
	// Huge compute segments: the core should issue one instruction per
	// cycle without ever touching memory.
	col := &collector{}
	c := newTestCore(t, &scriptedWorkload{compute: 1 << 30}, col.send)
	for i := 0; i < 1000; i++ {
		c.Tick()
	}
	if c.IPC() != 1.0 {
		t.Fatalf("IPC = %v, want 1.0", c.IPC())
	}
	if len(col.sent) != 0 {
		t.Fatalf("compute-only workload sent %d transactions", len(col.sent))
	}
}

func TestLoadBlocksWarpUntilReply(t *testing.T) {
	col := &collector{}
	// compute=0: every instruction is a load with a fresh address.
	c := newTestCore(t, &scriptedWorkload{compute: 0, stride: 128}, col.send)
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	// All 4 warps should be blocked waiting on loads; issue stalls accrue.
	if c.IssueStalls == 0 {
		t.Fatal("no issue stalls with all warps blocked")
	}
	sentBefore := len(col.sent)
	if sentBefore != 4 {
		t.Fatalf("sent = %d, want 4 (one outstanding load per warp)", sentBefore)
	}
	// Deliver one reply: exactly one warp wakes and issues again.
	c.ReceiveReply(col.sent[0])
	instBefore := c.Instructions
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	if c.Instructions <= instBefore {
		t.Fatal("warp did not resume after load reply")
	}
}

func TestMSHRMergesDuplicateLoads(t *testing.T) {
	col := &collector{}
	// All warps load the same line: one transaction, four waiters.
	w := &fixedAddrWorkload{addr: 0x8000}
	c := newTestCore(t, w, col.send)
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if len(col.sent) != 1 {
		t.Fatalf("sent = %d transactions for one line, want 1 (MSHR merge)", len(col.sent))
	}
	c.ReceiveReply(col.sent[0])
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	// After the fill, subsequent loads of the line hit in L1: no new sends.
	if len(col.sent) != 1 {
		t.Fatalf("post-fill loads sent %d transactions, want L1 hits", len(col.sent)-1)
	}
}

type fixedAddrWorkload struct{ addr uint64 }

func (f *fixedAddrWorkload) NextCompute(core, warp int) int { return 0 }
func (f *fixedAddrWorkload) NextMem(core, warp int, scratch []uint64) (bool, []uint64) {
	return false, append(scratch, f.addr)
}

func TestStoresDoNotBlockWarp(t *testing.T) {
	col := &collector{}
	// Every mem instruction is a store to a fresh line.
	c := newTestCore(t, &scriptedWorkload{compute: 0, writeEvery: 1, stride: 128}, col.send)
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	// Warps never block on stores, so instructions accumulate every cycle
	// until the store queue fills (16 outstanding).
	if c.Instructions < 16 {
		t.Fatalf("instructions = %d; stores appear to block", c.Instructions)
	}
	if c.StoreQStalls == 0 {
		t.Fatal("store queue never filled; capacity not enforced")
	}
	// Acks free the queue.
	for _, txn := range col.sent {
		c.ReceiveReply(txn)
	}
	before := c.Instructions
	c.Tick()
	if c.Instructions == before {
		t.Fatal("core did not resume after store acks")
	}
}

func TestSendBackpressureRetries(t *testing.T) {
	col := &collector{blocked: true}
	c := newTestCore(t, &scriptedWorkload{compute: 0, stride: 128}, col.send)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if len(col.sent) != 0 {
		t.Fatal("blocked sender received transactions")
	}
	if c.LSUSendStalls == 0 {
		t.Fatal("no send stalls recorded")
	}
	col.blocked = false
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if len(col.sent) == 0 {
		t.Fatal("LSU did not retry after unblocking")
	}
}

func TestGreedyThenOldestPrefersCurrentWarp(t *testing.T) {
	// With pure compute, the scheduler should stay on warp 0 forever.
	col := &collector{}
	c := newTestCore(t, &scriptedWorkload{compute: 1 << 30}, col.send)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if c.current != 0 {
		t.Fatalf("greedy scheduler drifted to warp %d", c.current)
	}
}

func TestResetStats(t *testing.T) {
	col := &collector{}
	c := newTestCore(t, &scriptedWorkload{compute: 4, stride: 128}, col.send)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	c.ResetStats()
	if c.Instructions != 0 || c.CoreCycles != 0 || c.IPC() != 0 {
		t.Fatal("ResetStats left counters behind")
	}
	c.Tick()
	if c.CoreCycles != 1 {
		t.Fatal("counters dead after reset")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallCoreConfig()
	cfg.WarpsPerCore = 0
	if _, err := NewCore(0, 0, cfg, &scriptedWorkload{}, func(*mem.Transaction) bool { return true }); err == nil {
		t.Fatal("invalid warp count accepted")
	}
	if _, err := NewCore(0, 0, smallCoreConfig(), nil, nil); err == nil {
		t.Fatal("nil workload/send accepted")
	}
}
