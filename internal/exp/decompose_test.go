package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var updateDecompose = flag.Bool("update", false, "rewrite testdata/decompose_golden.csv from the current simulator")

// decomposeConfig is the short-horizon config behind the golden file.
func decomposeConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WarmupCycles = 300
	cfg.MeasureCycles = 700
	return cfg
}

// TestDecomposeGolden pins the full decomposition pipeline — trace hooks,
// collector assembly, latency attribution, table rendering — against a
// golden CSV on one small benchmark. The simulator is deterministic, so any
// byte change here means either an intentional model change (rerun with
// -update) or an observability bug.
func TestDecomposeGolden(t *testing.T) {
	fig, err := Decompose(decomposeConfig(), "bfs", 4)
	if err != nil {
		t.Fatal(err)
	}
	got := fig.Table.CSV()

	golden := filepath.Join("testdata", "decompose_golden.csv")
	if *updateDecompose {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("decomposition diverged from golden:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Structural checks independent of the exact numbers: both schemes
	// present, queue shares recorded, and the paper's direction holds —
	// ARI removes most of the baseline's injection queueing.
	base, ok1 := fig.Summary["queue_share_"+core.XYBaseline.String()]
	ari, ok2 := fig.Summary["queue_share_"+core.AdaARI.String()]
	if !ok1 || !ok2 {
		t.Fatalf("summary missing queue shares: %v", fig.Summary)
	}
	if base <= ari {
		t.Errorf("baseline queue share %.3f <= ARI %.3f; expected ARI to shrink queueing", base, ari)
	}
}

// TestDecomposeRejectsUntraceableScheme: behavioural reply fabrics have no
// per-hop state and must be refused, not silently decomposed as zeros.
func TestDecomposeRejectsUntraceableScheme(t *testing.T) {
	cfg := decomposeConfig()
	cfg.IdealReply = true
	if _, err := Decompose(cfg, "bfs", 4, core.XYBaseline); err == nil {
		t.Fatal("ideal reply fabric decomposed without error")
	}
}

func TestDecomposeUnknownBench(t *testing.T) {
	if _, err := Decompose(decomposeConfig(), "no-such-bench", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
