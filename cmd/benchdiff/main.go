// Command benchdiff is the benchmark regression gate: it reads a fresh
// benchjson document on stdin, compares it against a committed baseline
// (the newest BENCH_*.json, via make benchdiff), and exits non-zero when
// any matched benchmark's ns/op regressed beyond the threshold.
//
//	go test -bench ... | go run ./cmd/benchjson | \
//	    go run ./cmd/benchdiff -baseline BENCH_20260806.json
//
// Beyond the pairwise regression check, -scale asserts ratios between two
// benchmarks of the same fresh run — the shard-scaling gate:
//
//	-scale 'BenchmarkNetworkStep16x16Shards4/BenchmarkNetworkStep16x16Shards1<=0.5'
//
// fails when 4-shard stepping is not at least 2x faster than 1-shard.
// Scaling assertions need real cores to mean anything, so they are skipped
// (loudly) when the fresh run's recorded GOMAXPROCS is below
// -scale-min-procs; a flat ratio on a 1-CPU machine is physics, not a
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// entry and doc mirror cmd/benchjson's output schema.
type entry struct {
	Name        string   `json:"name"`
	Package     string   `json:"package,omitempty"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Procs       int      `json:"procs,omitempty"`
}

type doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []entry `json:"benchmarks"`
}

// regression is one benchmark whose fresh ns/op exceeds the budget.
type regression struct {
	key              string
	baseline, fresh  float64
	deltaPct, budget float64
}

// fold collapses duplicate benchmark entries (a -count=N run emits one
// line per repetition) to the minimum ns/op per key, preserving
// first-seen order. Min-of-N is the noise-robust estimate on a shared
// machine: scheduling interference only ever slows an iteration down.
func fold(d doc) []entry {
	idx := make(map[string]int, len(d.Benchmarks))
	var out []entry
	for _, e := range d.Benchmarks {
		key := e.Package + "." + e.Name
		if i, ok := idx[key]; ok {
			if e.NsPerOp < out[i].NsPerOp {
				out[i] = e
			}
			continue
		}
		idx[key] = len(out)
		out = append(out, e)
	}
	return out
}

// compare diffs fresh against base for benchmarks matching match, returning
// regressions beyond thresholdPct and a human-readable report of every
// matched pair. Repeated entries per name (-count=N) are folded to their
// minimum ns/op on both sides first. Benchmarks present on only one side
// are reported but never fail the gate (new benchmarks must be able to
// land before their baseline).
func compare(base, fresh doc, match *regexp.Regexp, thresholdPct float64) ([]regression, []string) {
	baseEntries := fold(base)
	freshEntries := fold(fresh)
	baseline := make(map[string]entry, len(baseEntries))
	for _, e := range baseEntries {
		baseline[e.Package+"."+e.Name] = e
	}
	var regs []regression
	var report []string
	seen := make(map[string]bool)
	for _, e := range freshEntries {
		if !match.MatchString(e.Name) {
			continue
		}
		key := e.Package + "." + e.Name
		seen[key] = true
		b, ok := baseline[key]
		if !ok {
			report = append(report, fmt.Sprintf("  %-50s %12.0f ns/op  (new, no baseline)", key, e.NsPerOp))
			continue
		}
		delta := 100 * (e.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark := ""
		if delta > thresholdPct {
			mark = "  REGRESSION"
			regs = append(regs, regression{key: key, baseline: b.NsPerOp, fresh: e.NsPerOp, deltaPct: delta, budget: thresholdPct})
		}
		report = append(report, fmt.Sprintf("  %-50s %12.0f -> %12.0f ns/op  %+6.1f%%%s",
			key, b.NsPerOp, e.NsPerOp, delta, mark))
	}
	for _, e := range baseEntries {
		key := e.Package + "." + e.Name
		if match.MatchString(e.Name) && !seen[key] {
			report = append(report, fmt.Sprintf("  %-50s (in baseline, not in fresh run)", key))
		}
	}
	return regs, report
}

// scaleAssert is one parsed -scale assertion: the fresh run's folded
// num ns/op divided by den ns/op must not exceed maxRatio.
type scaleAssert struct {
	num, den string
	maxRatio float64
}

// parseScale parses "NumName/DenName<=ratio".
func parseScale(s string) (scaleAssert, error) {
	var a scaleAssert
	le := strings.Index(s, "<=")
	if le < 0 {
		return a, fmt.Errorf("scale assertion %q: want Num/Den<=ratio", s)
	}
	ratio, err := strconv.ParseFloat(strings.TrimSpace(s[le+2:]), 64)
	if err != nil || ratio <= 0 {
		return a, fmt.Errorf("scale assertion %q: bad ratio", s)
	}
	names := strings.Split(strings.TrimSpace(s[:le]), "/")
	if len(names) != 2 || strings.TrimSpace(names[0]) == "" || strings.TrimSpace(names[1]) == "" {
		return a, fmt.Errorf("scale assertion %q: want Num/Den<=ratio", s)
	}
	a.num = strings.TrimSpace(names[0])
	a.den = strings.TrimSpace(names[1])
	a.maxRatio = ratio
	return a, nil
}

// checkScales evaluates scaling assertions on the folded fresh entries.
// Assertions are skipped — reported but never failing — when the run's
// recorded GOMAXPROCS is below minProcs: a shard-scaling ratio measured
// without enough cores says nothing about the code. A benchmark named by an
// assertion but absent from the run is a failure, not a skip: a scaling
// gate that can be evaded by not running the benchmark gates nothing.
func checkScales(fresh []entry, asserts []scaleAssert, minProcs int) (failures, report []string) {
	byName := make(map[string]entry, len(fresh))
	for _, e := range fresh {
		if prev, ok := byName[e.Name]; !ok || e.NsPerOp < prev.NsPerOp {
			byName[e.Name] = e
		}
	}
	for _, a := range asserts {
		num, okN := byName[a.num]
		den, okD := byName[a.den]
		if !okN || !okD {
			missing := a.num
			if okN {
				missing = a.den
			}
			failures = append(failures, fmt.Sprintf("scale %s/%s: benchmark %s missing from fresh run", a.num, a.den, missing))
			continue
		}
		procs := num.Procs
		if den.Procs > procs {
			procs = den.Procs
		}
		ratio := num.NsPerOp / den.NsPerOp
		if procs < minProcs {
			report = append(report, fmt.Sprintf("  scale %s/%s = %.2f  SKIPPED: run used %d procs, gate needs >= %d",
				a.num, a.den, ratio, procs, minProcs))
			continue
		}
		mark := ""
		if ratio > a.maxRatio {
			mark = "  SCALING REGRESSION"
			failures = append(failures, fmt.Sprintf("scale %s/%s = %.2f exceeds %.2f", a.num, a.den, ratio, a.maxRatio))
		}
		report = append(report, fmt.Sprintf("  scale %s/%s = %.2f  (budget %.2f)%s",
			a.num, a.den, ratio, a.maxRatio, mark))
	}
	return failures, report
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchjson document to compare against (required)")
	threshold := flag.Float64("threshold", 15, "maximum tolerated ns/op regression in percent")
	match := flag.String("match", "NetworkStep|SimulatorStep", "regexp selecting gated benchmark names")
	scaleMinProcs := flag.Int("scale-min-procs", 4, "skip -scale assertions when the fresh run used fewer procs")
	var scales []scaleAssert
	flag.Func("scale", "scaling assertion Num/Den<=ratio on the fresh run's ns/op (repeatable)", func(s string) error {
		a, err := parseScale(s)
		if err != nil {
			return err
		}
		scales = append(scales, a)
		return nil
	})
	flag.Parse()

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -match:", err)
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var base, fresh doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if err := json.NewDecoder(os.Stdin).Decode(&fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: parsing stdin:", err)
		os.Exit(2)
	}

	regs, report := compare(base, fresh, re, *threshold)
	fmt.Printf("benchdiff: baseline %s (%d benchmarks), threshold %.0f%%\n",
		*baselinePath, len(base.Benchmarks), *threshold)
	for _, line := range report {
		fmt.Println(line)
	}
	scaleFails, scaleReport := checkScales(fold(fresh), scales, *scaleMinProcs)
	for _, line := range scaleReport {
		fmt.Println(line)
	}
	failed := false
	if len(regs) > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", len(regs), *threshold)
		failed = true
	}
	for _, f := range scaleFails {
		fmt.Println("benchdiff:", f)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
