package main

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/serve"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-param", "nosuchparam"},
		{"-bench", "nosuchbench"},
		{"-scheme", "nosuchscheme"},
		{"-nosuchflag"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunRejectsNegativeShardsUpFront is the regression test for the late
// -shards validation: a negative value must fail flag validation before any
// sweep point spawns (previously it surfaced as a config error from the
// first run), and the message must name the flag, not the config field.
func TestRunRejectsNegativeShardsUpFront(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-param", "speedup", "-bench", "bfs", "-shards", "-3"}, &out, &errb)
	if err == nil {
		t.Fatal("run with -shards -3 succeeded, want error")
	}
	if !strings.Contains(err.Error(), "-shards") {
		t.Errorf("error %q does not name the -shards flag", err)
	}
	if out.Len() != 0 {
		t.Errorf("sweep produced output before rejecting the bad flag:\n%s", out.String())
	}
}

func TestRunSpeedupSweep(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-param", "speedup", "-bench", "bfs", "-cycles", "300", "-warmup", "100"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errb.String())
	}
	got := out.String()
	for _, want := range []string{"sweep speedup on bfs", "S=1", "S=4", "IPC"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunServerModeMatchesLocal runs the same sweep locally and against a
// job server: the sweep ships each point's full config, so the tables must
// be byte-identical regardless of the server's own base configuration.
func TestRunServerModeMatchesLocal(t *testing.T) {
	args := []string{"-param", "speedup", "-bench", "bfs", "-cycles", "300", "-warmup", "100"}
	var local, errb bytes.Buffer
	if err := run(args, &local, &errb); err != nil {
		t.Fatalf("local sweep: %v", err)
	}

	s, err := serve.New(serve.Config{Runner: exp.NewRunner()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	var remote, errb2 bytes.Buffer
	if err := run(append(args, "-server", ts.URL), &remote, &errb2); err != nil {
		t.Fatalf("server sweep: %v\nstderr: %s", err, errb2.String())
	}
	if local.String() != remote.String() {
		t.Fatalf("server-mode sweep diverged from local:\n%s\nvs\n%s", local.String(), remote.String())
	}
}

func TestRunJournalledSweepResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-param", "vcs", "-bench", "bfs", "-cycles", "300", "-warmup", "100", "-journal", path}

	var out1, err1 bytes.Buffer
	if err := run(args, &out1, &err1); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	// Second invocation must replay entirely from the journal and print the
	// identical table.
	var out2, err2 bytes.Buffer
	if err := run(args, &out2, &err2); err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("journalled rerun diverged:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(err2.String(), "resuming") {
		t.Errorf("second pass did not report resuming:\n%s", err2.String())
	}
}
