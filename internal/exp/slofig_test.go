package exp

import (
	"testing"

	"repro/internal/core"
)

// TestSLOFigureDeterministic pins the CI contract for `arireport -slo`: two
// invocations over the same seeded config produce byte-identical tables and
// identical summaries, and the figure's semantics hold — a derived threshold
// puts the first scheme's compliance at ~p95, compliance stays in [0,1], and
// every default scheme is present.
func TestSLOFigureDeterministic(t *testing.T) {
	base := core.DefaultConfig()
	base.WarmupCycles = 300
	base.MeasureCycles = 1200

	f1, err := SLOFigure(base, "bfs", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := SLOFigure(base, "bfs", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f1.Table.CSV(), f2.Table.CSV(); got != want {
		t.Fatalf("slo figure not deterministic:\nfirst:\n%s\nsecond:\n%s", want, got)
	}
	if len(f1.Summary) != len(f2.Summary) {
		t.Fatalf("summaries diverge: %v vs %v", f1.Summary, f2.Summary)
	}
	for k, v := range f1.Summary {
		if f2.Summary[k] != v {
			t.Fatalf("summary %q diverges: %v vs %v", k, v, f2.Summary[k])
		}
	}

	if f1.Summary["threshold_cycles"] <= 0 {
		t.Fatalf("derived threshold not positive: %v", f1.Summary)
	}
	for _, sch := range []core.Scheme{core.XYBaseline, core.AdaARI} {
		c, ok := f1.Summary["compliance_"+sch.String()]
		if !ok {
			t.Fatalf("summary missing compliance for %s: %v", sch, f1.Summary)
		}
		if c < 0 || c > 1 {
			t.Fatalf("compliance_%s = %v out of [0,1]", sch, c)
		}
	}
	// The threshold is the baseline's own (rounded-up) p95, so the baseline
	// must meet it at least 95% of the time.
	if c := f1.Summary["compliance_"+core.XYBaseline.String()]; c < 0.95 {
		t.Fatalf("baseline compliance %v below its own p95 budget", c)
	}

	// An explicit budget is honoured verbatim.
	f3, err := SLOFigure(base, "bfs", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Summary["threshold_cycles"] != 64 {
		t.Fatalf("explicit threshold not honoured: %v", f3.Summary)
	}
}
