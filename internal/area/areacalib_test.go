package area

import "testing"

func TestCalibrationPrint(t *testing.T) {
	o, err := Evaluate(36, 8, 4, 9, 128, 36, 4, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pair %.2f%%  amortised %.3f%%", o.PairOverhead*100, o.AmortisedOverhead*100)
}
