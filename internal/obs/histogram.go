package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of finite log2-scaled buckets: bucket 0 holds
// values <= 0 and 1, bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
// 48 buckets cover up to ~2.8e14 units — with microsecond units that is
// ~8.9 years of latency, with cycle units any simulation horizon we run.
const HistBuckets = 48

// Histogram is a fixed-bucket log-scaled latency histogram. Observe is
// allocation-free and safe for concurrent use (a single atomic add per
// bucket), so it sits on serving hot paths; buckets are powers of two, so
// the bucket index is one bits.Len64. Values are unit-agnostic int64s —
// the serving layer observes microseconds, the simulation layer cycles —
// and the Prometheus rendering scales them to seconds at exposition time.
//
// The zero value is ready to use.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v)) // 0 for 0; values 2^(i-1)..2^i-1 -> i
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy for reading. Buckets are read
// individually, so a snapshot taken under concurrent Observe traffic may be
// off by the in-flight observations — fine for monitoring, and the only
// readers are scrape/report paths.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// HistSnapshot is an immutable copy of a Histogram.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Sum    int64
	Count  uint64
}

// BucketBound returns the inclusive upper bound of bucket i (2^i - 1; the
// last bucket absorbs everything above).
func BucketBound(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Mean returns the mean observation (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) estimated by linear
// interpolation inside the containing bucket — the standard
// log-bucket-histogram estimate, exact to within a factor of 2.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := float64(bucketLow(i)), float64(BucketBound(i))
			if next == cum { // unreachable (c > 0), keeps the division safe
				return hi
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return float64(BucketBound(HistBuckets - 1))
}

// Compliance returns the fraction of observations at or below threshold,
// interpolating inside the bucket that straddles it. This is the SLI behind
// latency objectives ("p99 of replies within N cycles" is equivalently
// "Compliance(N) >= 0.99").
func (s *HistSnapshot) Compliance(threshold int64) float64 {
	if s.Count == 0 {
		return 1
	}
	var good float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketLow(i), BucketBound(i)
		switch {
		case hi <= threshold:
			good += float64(c)
		case lo > threshold:
			// buckets are ordered; nothing above contributes
			return good / float64(s.Count)
		default:
			width := float64(hi-lo) + 1
			good += float64(c) * (float64(threshold-lo) + 1) / width
		}
	}
	return good / float64(s.Count)
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1) << uint(i-1)
}

// Histogram renders a snapshot as a real Prometheus histogram family:
// cumulative <name>_bucket{le="..."} samples, <name>_sum and <name>_count.
// unitSeconds converts one histogram unit to seconds (1e-6 for microsecond
// histograms); le bounds and the sum are emitted in seconds per the
// Prometheus convention. Empty trailing buckets are elided (le="+Inf"
// always closes the family).
func (p *PromWriter) Histogram(name, help string, s HistSnapshot, unitSeconds float64) {
	p.Family(name, help, "histogram")
	last := 0
	for i, c := range s.Counts {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += s.Counts[i]
		le := float64(BucketBound(i)) * unitSeconds
		p.Sample(name+"_bucket", `le="`+formatFloat(le)+`"`, float64(cum))
	}
	p.Sample(name+"_bucket", `le="+Inf"`, float64(s.Count))
	p.Sample(name+"_sum", "", float64(s.Sum)*unitSeconds)
	p.Sample(name+"_count", "", float64(s.Count))
}
