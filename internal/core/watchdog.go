package core

import (
	"errors"
	"fmt"

	"repro/internal/noc"
)

// ErrInterrupted is returned by the checked run loops when the
// CheckOptions.Interrupt hook asks them to stop (cancellation, timeout).
var ErrInterrupted = errors.New("core: run interrupted")

// CheckOptions configures the forward-progress watchdogs of RunChecked and
// RunWorkChecked. The zero value enables the default thresholds; set a
// field negative to disable that check.
type CheckOptions struct {
	// DeadlockCycles fails the run when flits are in flight anywhere but no
	// fabric moves a single flit for this many consecutive cycles. 0 selects
	// the default (10000 cycles — far beyond any legitimate stall, including
	// the longest §5 starvation window and fault-injection bursts); negative
	// disables deadlock detection.
	DeadlockCycles int64
	// PacketAgeCap fails the run when any in-flight packet is older than
	// this many cycles (livelock/starvation: the network still moves flits
	// but some packet never gets through). 0 selects the default (50000
	// cycles); negative disables the age check.
	PacketAgeCap int64
	// PollEvery is the watchdog sampling period in cycles (default 64). The
	// checks are O(1) except the age scan, which is O(buffers) and runs at
	// this cadence too.
	PollEvery int64
	// InvariantEvery, when positive, additionally runs noc.CheckInvariants
	// on both mesh fabrics every InvariantEvery cycles and converts a
	// violation into an error (unlike noc.Config.CheckEvery, which panics
	// from inside Step).
	InvariantEvery int64
	// Interrupt, when non-nil, is polled every PollEvery cycles; returning
	// true aborts the run with ErrInterrupted. The experiment harness wires
	// context cancellation and per-run timeouts through it.
	Interrupt func() bool
	// Inspector, when non-nil, receives a progress report every PollEvery
	// cycles and may request a state snapshot, which the run produces at the
	// same poll — the only race-free point to observe simulator state from
	// outside its goroutine. Live introspection (obs.RunStatus) hooks in
	// here; the inspector must only record, never mutate.
	Inspector Inspector
}

// Inspector observes a checked run from outside its goroutine. All methods
// are called on the simulation goroutine at watchdog-poll cadence;
// implementations must be fast and non-blocking.
type Inspector interface {
	// Progress reports the run's position: the current NoC cycle, in-flight
	// packets per fabric, and how long the watchdog has seen no fabric move
	// a flit (0 is healthy; approaching DeadlockCycles is a stall).
	Progress(cycle int64, reqInFlight, repInFlight int, noProgressFor int64)
	// WantState reports whether a state snapshot is wanted; when it returns
	// true the run calls State with Simulator.StateDumpJSON's payload.
	WantState() bool
	// State delivers the requested snapshot.
	State(dump []byte)
}

// withDefaults resolves the zero-value conventions.
func (o CheckOptions) withDefaults() CheckOptions {
	if o.DeadlockCycles == 0 {
		o.DeadlockCycles = 10000
	}
	if o.PacketAgeCap == 0 {
		o.PacketAgeCap = 50000
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 64
	}
	return o
}

// uncheckedOptions disables every detector; Run/RunWork use it so the
// unchecked entry points keep their never-fail signatures.
func uncheckedOptions() CheckOptions {
	return CheckOptions{DeadlockCycles: -1, PacketAgeCap: -1}
}

// WatchdogError is the structured diagnostic a tripped watchdog returns:
// what tripped, where the simulation stood, and a full dump of the stuck
// state (per-router VC states, ownership, credit map, oldest packets).
type WatchdogError struct {
	// Kind is "deadlock" (flits in flight, nothing moving) or "starvation"
	// (flits moving, but some packet exceeded the age cap).
	Kind      string
	Benchmark string
	Scheme    Scheme
	// Cycle is the NoC cycle at detection.
	Cycle int64
	// NoProgressFor is how long no fabric had moved a flit (deadlock).
	NoProgressFor int64
	// OldestPacketAge is the age of the oldest in-flight packet in cycles.
	OldestPacketAge int64
	ReqInFlight     int
	RepInFlight     int
	// Dump is the diagnostic state dump of both fabrics.
	Dump string
}

// Error summarises the failure; the full dump is appended so a bare %v in a
// log captures the whole diagnosis.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("core: %s watchdog: %s/%s at cycle %d (no progress for %d cycles, oldest packet %d cycles, in-flight req=%d rep=%d)\n%s",
		e.Kind, e.Benchmark, e.Scheme, e.Cycle, e.NoProgressFor, e.OldestPacketAge,
		e.ReqInFlight, e.RepInFlight, e.Dump)
}

// fabricMark fingerprints one fabric's externally visible activity; any
// change between samples proves at least one flit moved (injection, switch
// or link traversal, ejection, or delivery).
type fabricMark struct {
	inFlight                                  int
	injPkts, injLink, mesh, sw, eject, cycles uint64
}

func markOf(f noc.Fabric) fabricMark {
	st := f.Stats()
	var inj uint64
	for _, c := range st.PacketsInjected {
		inj += c
	}
	return fabricMark{
		inFlight: f.InFlight(),
		injPkts:  inj,
		injLink:  st.InjLinkFlits,
		mesh:     st.MeshLinkFlits,
		sw:       st.SwitchTraversals,
		eject:    st.EjectFlits,
	}
}

// watchdog tracks forward progress across both fabrics during a checked run.
type watchdog struct {
	s            *Simulator
	opt          CheckOptions
	reqMark      fabricMark
	repMark      fabricMark
	lastProgress int64
	lastInvCheck int64
}

func newWatchdog(s *Simulator, opt CheckOptions) *watchdog {
	return &watchdog{
		s:            s,
		opt:          opt.withDefaults(),
		reqMark:      markOf(s.reqNet),
		repMark:      markOf(s.repNet),
		lastProgress: s.cycle,
		lastInvCheck: s.cycle,
	}
}

// poll runs the due checks; call it after every Step with the new cycle.
func (w *watchdog) poll() error {
	now := w.s.cycle
	if now%w.opt.PollEvery != 0 {
		return nil
	}
	if w.opt.Interrupt != nil && w.opt.Interrupt() {
		return ErrInterrupted
	}
	if w.opt.InvariantEvery > 0 && now-w.lastInvCheck >= w.opt.InvariantEvery {
		w.lastInvCheck = now
		for _, f := range []noc.Fabric{w.s.reqNet, w.s.repNet} {
			if n, ok := f.(*noc.Network); ok {
				if err := n.CheckInvariants(); err != nil {
					return fmt.Errorf("core: invariant violated at cycle %d (%s/%s): %w",
						now, w.s.kernel.Name, w.s.cfg.Scheme, err)
				}
			}
		}
	}

	req, rep := markOf(w.s.reqNet), markOf(w.s.repNet)
	if req != w.reqMark || rep != w.repMark {
		w.reqMark, w.repMark = req, rep
		w.lastProgress = now
	} else if req.inFlight == 0 && rep.inFlight == 0 {
		// Nothing in flight: cores/MCs may legitimately compute without NoC
		// traffic, so the deadlock timer only runs while flits exist.
		w.lastProgress = now
	}

	if ins := w.opt.Inspector; ins != nil {
		ins.Progress(now, req.inFlight, rep.inFlight, now-w.lastProgress)
		if ins.WantState() {
			ins.State(w.s.StateDumpJSON())
		}
	}

	if w.opt.DeadlockCycles > 0 && now-w.lastProgress >= w.opt.DeadlockCycles {
		return w.s.diagnose("deadlock", now-w.lastProgress)
	}
	if w.opt.PacketAgeCap > 0 {
		if age := w.s.oldestPacketAge(); age > w.opt.PacketAgeCap {
			return w.s.diagnose("starvation", now-w.lastProgress)
		}
	}
	return nil
}

// oldestPacketAge returns the maximum in-flight packet age over both
// fabrics (mesh networks only; the behavioural fabrics never starve a
// packet — they deliver on a fixed schedule).
func (s *Simulator) oldestPacketAge() int64 {
	age := s.reqNet.OldestPacketAge()
	if rep, ok := s.repNet.(*noc.Network); ok {
		if a := rep.OldestPacketAge(); a > age {
			age = a
		}
	}
	return age
}

// diagnose builds the structured watchdog failure for the current state.
func (s *Simulator) diagnose(kind string, noProgress int64) *WatchdogError {
	dump := "request network:\n" + s.reqNet.DumpState()
	if rep, ok := s.repNet.(*noc.Network); ok {
		dump += "reply network:\n" + rep.DumpState()
	} else {
		dump += fmt.Sprintf("reply fabric: %d packets in flight (no per-router state)\n", s.repNet.InFlight())
	}
	return &WatchdogError{
		Kind:            kind,
		Benchmark:       s.kernel.Name,
		Scheme:          s.cfg.Scheme,
		Cycle:           s.cycle,
		NoProgressFor:   noProgress,
		OldestPacketAge: s.oldestPacketAge(),
		ReqInFlight:     s.reqNet.InFlight(),
		RepInFlight:     s.repNet.InFlight(),
		Dump:            dump,
	}
}
