package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// fakeResult returns a distinguishable Result for journal tests that never
// touch the simulator.
func fakeResult(bench string, ipc float64) core.Result {
	return core.Result{Benchmark: bench, Scheme: core.AdaARI, IPC: ipc, Instructions: uint64(ipc * 1000)}
}

// writeEntries builds a journal with n synthetic entries and returns its
// path, the keys in write order, and the file bytes.
func writeEntries(t *testing.T, n int) (string, []string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%02d", i)
		if err := j.record(key, fakeResult(fmt.Sprintf("bench%d", i), float64(i)+0.5)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, keys, raw
}

// TestJournalRecoversTornTail truncates the journal at every byte offset of
// the last record — every possible crash point of a torn final append — and
// asserts that (a) all complete records before it are recovered, (b) the
// torn tail is cut off so a subsequent append lands on a fresh line, and
// (c) the post-recovery append survives a further reopen (the regression:
// appending after a torn tail used to glue the new record onto the partial
// line, silently losing it on the next load).
func TestJournalRecoversTornTail(t *testing.T) {
	path, keys, raw := writeEntries(t, 3)
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	prefix := lines[0] + lines[1]
	last := string(raw)[len(prefix):] // final record including its '\n'

	for cut := 0; cut <= len(last); cut++ {
		torn := prefix + last[:cut]
		if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantLoaded := 2
		if cut == len(last) { // nothing torn: full final record intact
			wantLoaded = 3
		}
		if j.Loaded() != wantLoaded {
			t.Fatalf("cut %d: loaded %d entries, want %d", cut, j.Loaded(), wantLoaded)
		}
		for _, k := range keys[:wantLoaded] {
			if _, ok := j.lookup(k); !ok {
				t.Fatalf("cut %d: complete record %s not recovered", cut, k)
			}
		}
		// The append after recovery must itself survive a reopen.
		if err := j.record("key-after-crash", fakeResult("resumed", 9.25)); err != nil {
			t.Fatalf("cut %d: record after recovery: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if j2.Loaded() != wantLoaded+1 {
			t.Fatalf("cut %d: reopen loaded %d entries, want %d", cut, j2.Loaded(), wantLoaded+1)
		}
		if got, ok := j2.lookup("key-after-crash"); !ok || got.IPC != 9.25 {
			t.Fatalf("cut %d: post-recovery append lost on reopen (ok=%v, got=%+v)", cut, ok, got)
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalTruncatesTornTailOnDisk asserts the torn bytes are physically
// removed at open, not just skipped in memory.
func TestJournalTruncatesTornTailOnDisk(t *testing.T) {
	path, _, raw := writeEntries(t, 2)
	torn := append(append([]byte{}, raw...), []byte(`{"v":1,"key":"half`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(raw) {
		t.Fatalf("torn tail not truncated:\n got %q\nwant %q", got, raw)
	}
}

// TestJobKeyDistinguishesConfigs pins the serving-layer identity: any config
// or benchmark difference keys a distinct job, identical inputs collide.
func TestJobKeyDistinguishesConfigs(t *testing.T) {
	cfg := core.DefaultConfig()
	if JobKey(cfg, "bfs") != JobKey(cfg, "bfs") {
		t.Fatal("identical jobs produced different keys")
	}
	if JobKey(cfg, "bfs") == JobKey(cfg, "srad") {
		t.Fatal("different benchmarks share a key")
	}
	cfg2 := cfg
	cfg2.Seed++
	if JobKey(cfg, "bfs") == JobKey(cfg2, "bfs") {
		t.Fatal("different configs share a key")
	}
}
