package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
)

func testKernel(t *testing.T) trace.Kernel {
	t.Helper()
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// stallAllLinks withholds service on every output link of the simulator's
// request network forever: credits stop circulating, so once the injection
// buffers fill, flits are in flight with zero movement — a synthetic
// deadlock the watchdog must catch instead of spinning.
func stallAllLinks(s *Simulator) {
	req := s.RequestNet()
	nodes := req.Config().Mesh.Nodes()
	for node := 0; node < nodes; node++ {
		for port := 0; port < 5; port++ {
			req.StallLink(node, port, math.MaxInt64)
		}
	}
}

func TestWatchdogDetectsDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 30 // would spin ~forever without the watchdog
	sim, err := NewSimulator(cfg, testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	stallAllLinks(sim)
	_, err = sim.RunChecked(CheckOptions{DeadlockCycles: 500, PacketAgeCap: -1})
	if err == nil {
		t.Fatal("deadlocked simulation returned no error")
	}
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("error is %T, want *WatchdogError: %v", err, err)
	}
	if werr.Kind != "deadlock" {
		t.Fatalf("kind = %q, want deadlock", werr.Kind)
	}
	if werr.Benchmark != "bfs" || werr.Scheme != cfg.Scheme {
		t.Fatalf("diagnostic names (%s, %s), want (bfs, %s)", werr.Benchmark, werr.Scheme, cfg.Scheme)
	}
	if werr.NoProgressFor < 500 {
		t.Fatalf("NoProgressFor = %d, want >= 500", werr.NoProgressFor)
	}
	if werr.ReqInFlight == 0 {
		t.Fatal("deadlock reported with nothing in flight")
	}
	// The dump must carry the stuck state: router VC lines, the credit map
	// and the oldest packets.
	for _, want := range []string{"router", "credits=", "oldest packets", "STALLED"} {
		if !strings.Contains(werr.Dump, want) {
			t.Errorf("diagnostic dump missing %q:\n%.2000s", want, werr.Dump)
		}
	}
}

func TestWatchdogDetectsStarvation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 30
	sim, err := NewSimulator(cfg, testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	stallAllLinks(sim)
	// Deadlock detection off, tight age cap on: the same stuck state must
	// now be reported as starvation (packets aging beyond the cap).
	_, err = sim.RunChecked(CheckOptions{DeadlockCycles: -1, PacketAgeCap: 400})
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("error is %T, want *WatchdogError: %v", err, err)
	}
	if werr.Kind != "starvation" {
		t.Fatalf("kind = %q, want starvation", werr.Kind)
	}
	if werr.OldestPacketAge <= 400 {
		t.Fatalf("OldestPacketAge = %d, want > 400", werr.OldestPacketAge)
	}
}

// TestRunCheckedMatchesRun pins that the watchdog is purely observational:
// a healthy run produces the identical Result through both entry points.
func TestRunCheckedMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 200
	cfg.MeasureCycles = 600
	k := testKernel(t)

	simA, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	plain := simA.Run()

	simB, err := NewSimulator(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := simB.RunChecked(CheckOptions{InvariantEvery: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("RunChecked diverged from Run:\n%+v\nvs\n%+v", plain, checked)
	}
}

func TestRunWorkTruncatedFlag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 500
	sim, err := NewSimulator(cfg, testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	// An absurd instruction target with a tiny cycle guard must be clipped
	// and say so.
	r := sim.RunWork(math.MaxUint64, 200)
	if !r.Truncated {
		t.Fatal("clipped fixed-work run did not set Truncated")
	}
	if r.MeasuredCycles < 200 {
		t.Fatalf("MeasuredCycles = %d, want >= 200", r.MeasuredCycles)
	}

	sim2, err := NewSimulator(cfg, testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	// A tiny target the cores retire quickly must not be marked truncated.
	r2 := sim2.RunWork(1, 1<<20)
	if r2.Truncated {
		t.Fatal("completed fixed-work run marked Truncated")
	}
}

func TestRunCheckedInterrupt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 1 << 30
	sim, err := NewSimulator(cfg, testKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	polls := 0
	_, err = sim.RunChecked(CheckOptions{Interrupt: func() bool {
		polls++
		return polls > 3
	}})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestFaultInjectionDeterministic is the full-system half of the soak
// acceptance: with fault injection enabled, three schemes complete a run
// with invariants checked throughout, and the same seed reproduces the
// byte-identical Result.
func TestFaultInjectionDeterministic(t *testing.T) {
	for _, scheme := range []Scheme{XYBaseline, AdaARI, AdaMultiPort} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			run := func() Result {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.WarmupCycles = 200
				cfg.MeasureCycles = 800
				cfg.Fault = fault.SoakConfig(7)
				cfg.NoCCheckEvery = 64 // panic on any invariant violation
				sim, err := NewSimulator(cfg, testKernel(t))
				if err != nil {
					t.Fatal(err)
				}
				r, err := sim.RunChecked(CheckOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			a, b := run(), run()
			if a.FaultEvents == 0 {
				t.Fatal("soak config injected no faults")
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged under faults:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}
