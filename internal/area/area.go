// Package area is an analytical stand-in for the paper's RTL synthesis flow
// (§6.1: Verilog + Design Compiler on NanGate 45nm). It estimates router
// and NI areas from component counts — SRAM buffer bits, crossbar
// crosspoints, allocator state, intra-tile wiring — with unit constants
// calibrated against 45nm router synthesis results. Only relative overheads
// are meaningful, which is all §6.1 reports: ~5.4% for a revised NI +
// MC-router pair and <1% amortised over the whole NoC.
package area

import "fmt"

// Params are the unit-area constants (um^2-scale model units).
type Params struct {
	SRAMBit      float64 // per buffer bit (input VCs, NI queues)
	CrossPoint   float64 // per crossbar crosspoint bit
	AllocTerm    float64 // per arbiter grant pair (allocator complexity)
	WireBit      float64 // per intra-tile link bit (NI<->router, MC<->NI)
	ControlFixed float64 // fixed control logic per router/NI
}

// DefaultParams returns constants that reproduce published 45nm
// VC-router area proportions (buffers ~50%, crossbar ~30%, control ~20%
// for a 5x5 128-bit 4-VC router).
func DefaultParams() Params {
	return Params{
		SRAMBit:      1.0,
		CrossPoint:   0.55,
		AllocTerm:    18,
		WireBit:      0.08,
		ControlFixed: 800,
	}
}

// RouterSpec describes one router for the model.
type RouterSpec struct {
	InPorts     int // mesh input ports + injection ports
	OutPorts    int
	SwitchPorts int // input-side crossbar ports (injection speedup adds)
	VCs         int
	VCDepth     int // flits
	FlitBits    int
}

// NISpec describes one network interface.
type NISpec struct {
	QueueFlits int
	FlitBits   int
	SplitWays  int // 1 = single queue; ARI splits into VCs queues
	WideBits   int // MC->NI / NI->queue wide link width (W)
	NarrowBits int // NI->router narrow link width (N)
	NarrowCnt  int // number of narrow links (1 baseline, VCs for ARI)
}

// Router returns the modelled router area.
func Router(s RouterSpec, p Params) float64 {
	buffers := float64(s.InPorts*s.VCs*s.VCDepth*s.FlitBits) * p.SRAMBit
	xbar := float64(s.SwitchPorts*s.OutPorts*s.FlitBits) * p.CrossPoint
	alloc := float64(s.VCs*s.InPorts*s.OutPorts+s.SwitchPorts*s.OutPorts) * p.AllocTerm
	return buffers + xbar + alloc + p.ControlFixed
}

// NI returns the modelled network-interface area.
func NI(s NISpec, p Params) float64 {
	queue := float64(s.QueueFlits*s.FlitBits) * p.SRAMBit
	// Split queues add per-way control and a distribution mux.
	splitCtl := float64(s.SplitWays-1) * (p.ControlFixed * 0.1)
	wires := float64(s.WideBits*2+s.NarrowBits*s.NarrowCnt) * p.WireBit
	return queue + splitCtl + wires + p.ControlFixed*0.5
}

// Overheads summarises the §6.1 comparison.
type Overheads struct {
	BaselinePair float64 // baseline NI + MC-router area
	ARIPair      float64 // revised NI + MC-router area
	PairOverhead float64 // fractional increase of the pair
	// AmortisedOverhead spreads the delta over the whole NoC: all routers
	// and NIs of both networks (only reply-network MC-routers change).
	AmortisedOverhead float64
}

// Evaluate computes the ARI area overheads for a mesh with the given node
// and MC counts and configuration (Table I defaults: 4 VCs, 9-flit VC
// depth, 128-bit flits, 36-flit NI queue, speedup 4).
func Evaluate(nodes, numMC, vcs, vcDepth, flitBits, niQueueFlits, speedup int, p Params) (Overheads, error) {
	if nodes <= 0 || numMC <= 0 || numMC > nodes {
		return Overheads{}, fmt.Errorf("area: bad node counts %d/%d", numMC, nodes)
	}
	baseRouter := RouterSpec{
		InPorts: 5, OutPorts: 5, SwitchPorts: 5,
		VCs: vcs, VCDepth: vcDepth, FlitBits: flitBits,
	}
	ariRouter := baseRouter
	ariRouter.SwitchPorts = 4 + speedup // injection port owns S switch-ports

	baseNI := NISpec{
		QueueFlits: niQueueFlits, FlitBits: flitBits, SplitWays: 1,
		WideBits: vcDepth * flitBits, NarrowBits: flitBits, NarrowCnt: 1,
	}
	ariNI := baseNI
	ariNI.SplitWays = vcs
	ariNI.NarrowCnt = vcs

	basePair := Router(baseRouter, p) + NI(baseNI, p)
	ariPair := Router(ariRouter, p) + NI(ariNI, p)

	// Whole-NoC area: both networks' routers plus the NIs on every node.
	// Only the reply network's MC-routers and their NIs change.
	wholeBase := float64(2*nodes)*Router(baseRouter, p) + float64(2*nodes)*NI(baseNI, p)
	delta := float64(numMC) * (ariPair - basePair)

	return Overheads{
		BaselinePair:      basePair,
		ARIPair:           ariPair,
		PairOverhead:      (ariPair - basePair) / basePair,
		AmortisedOverhead: delta / wholeBase,
	}, nil
}
