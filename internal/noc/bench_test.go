package noc

import "testing"

// benchNet builds a loaded 6x6 reply-like network for stepping benchmarks.
func benchNet(b *testing.B, ari bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	cfg := Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
	}
	if ari {
		cfg.Nodes = make([]NodeConfig, mesh.Nodes())
		for _, n := range DiamondMCPlacement(mesh, 8) {
			cfg.Nodes[n] = NodeConfig{NI: NISplit, InjSpeedup: 4}
		}
		cfg.PriorityLevels = 2
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.SetEjectHandler(func(int, *Packet, int64) {})
	return n
}

// stepLoaded drives the network at a steady few-to-many load per iteration.
func stepLoaded(b *testing.B, n *Network) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc := mcs[i%len(mcs)]
		n.Inject(mc, &Packet{Type: ReadReply, Dst: next(36), Size: long})
		n.Step()
	}
}

func BenchmarkNetworkStepBaseline(b *testing.B) { stepLoaded(b, benchNet(b, false)) }
func BenchmarkNetworkStepARI(b *testing.B)      { stepLoaded(b, benchNet(b, true)) }

// benchScanNet builds the baseline 6x6 network with the chosen stepping
// mode for the event-vs-scan comparison benchmarks.
func benchScanNet(b *testing.B, scan bool) *Network {
	b.Helper()
	mesh := Mesh{Width: 6, Height: 6}
	n, err := NewNetwork(Config{
		Mesh:        mesh,
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     RouteMinAdaptive,
		NonAtomicVC: true,
		ScanStep:    scan,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Recycle delivered packets so steady state allocates nothing.
	n.SetEjectHandler(func(_ int, pkt *Packet, _ int64) { n.PutPacket(pkt) })
	return n
}

// stepAtLoad drives the network injecting one long packet every `period`
// cycles from rotating MC nodes: period 20 is the sparse traffic of
// low-sensitivity kernels, period 4 a medium reply load.
func stepAtLoad(b *testing.B, n *Network, period int) {
	mcs := DiamondMCPlacement(n.Config().Mesh, 8)
	seed := uint64(1)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	cfg := n.Config()
	long := cfg.LongPacketFlits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%period == 0 {
			pkt := n.GetPacket()
			pkt.Type = ReadReply
			pkt.Dst = next(36)
			pkt.Size = long
			if !n.Inject(mcs[(i/period)%len(mcs)], pkt) {
				n.PutPacket(pkt)
			}
		}
		n.Step()
	}
}

func BenchmarkNetworkStepEventLowLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 20) }
func BenchmarkNetworkStepScanLowLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 20) }
func BenchmarkNetworkStepEventMedLoad(b *testing.B) { stepAtLoad(b, benchScanNet(b, false), 4) }
func BenchmarkNetworkStepScanMedLoad(b *testing.B)  { stepAtLoad(b, benchScanNet(b, true), 4) }

func BenchmarkRouteCompute(b *testing.B) {
	m := Mesh{Width: 8, Height: 8}
	var scratch []routeCandidate
	for i := 0; i < b.N; i++ {
		scratch = computeRoute(m, RouteMinAdaptive, i%64, (i*7)%64, 4, scratch[:0])
	}
}

func BenchmarkFlitQueue(b *testing.B) {
	q := newFlitQueue(9)
	pkt := &Packet{Size: 9}
	for i := 0; i < b.N; i++ {
		for s := 0; s < 9; s++ {
			q.push(flit{pkt: pkt, seq: s})
		}
		for s := 0; s < 9; s++ {
			q.pop()
		}
	}
}
