package noc

// roundRobin is a rotating-priority arbiter over n requesters. Grant order
// starts at the slot after the previous winner, so every requester is at
// most n-1 grants from the front (strong fairness).
type roundRobin struct {
	n    int
	next int
}

func newRoundRobin(n int) *roundRobin { return &roundRobin{n: n} }

// pick returns the first index i (scanning next, next+1, ... mod n) for
// which req(i) is true, advancing the pointer past the winner. It returns
// -1 when nothing is requesting.
func (a *roundRobin) pick(req func(i int) bool) int {
	for k := 0; k < a.n; k++ {
		i := (a.next + k) % a.n
		if req(i) {
			a.next = (i + 1) % a.n
			return i
		}
	}
	return -1
}

// pickPriority is pick with an integer priority: among requesters it grants
// the highest prio(i); ties break round-robin from the rotating pointer.
// This models the ARI priority-aware switch allocator output stage (§5).
func (a *roundRobin) pickPriority(req func(i int) bool, prio func(i int) int) int {
	best := -1
	bestPrio := 0
	for k := 0; k < a.n; k++ {
		i := (a.next + k) % a.n
		if !req(i) {
			continue
		}
		if p := prio(i); best == -1 || p > bestPrio {
			best, bestPrio = i, p
		}
	}
	if best >= 0 {
		a.next = (best + 1) % a.n
	}
	return best
}
