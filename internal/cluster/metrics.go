package cluster

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// handleMetrics exposes the gateway's routing counters in Prometheus text
// format, mirroring ariserve's /metrics shape (internal/obs.PromWriter).
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := g.Stats()
	var p obs.PromWriter
	p.Metric("arigate_requests_total", "Job submissions accepted for routing.", "counter", float64(st.Requests))
	p.Metric("arigate_shed_total", "Submissions answered 429 because every owner was down or shedding.", "counter", float64(st.Shed))
	p.Metric("arigate_failovers_total", "Attempts launched because a prior owner failed or shed.", "counter", float64(st.Failovers))
	p.Metric("arigate_hedges_total", "Attempts launched because a prior owner was slow.", "counter", float64(st.Hedges))
	p.Metric("arigate_hedge_wins_total", "Requests won by a hedged attempt.", "counter", float64(st.HedgeWins))
	p.Metric("arigate_replicas", "Replicas on the routing ring.", "gauge", float64(len(st.Replicas)))

	p.Family("arigate_replica_up", "Whether the replica's circuit is closed (routable).", "gauge")
	for _, r := range st.Replicas {
		p.Sample("arigate_replica_up", obs.Labels("replica", r.URL), obs.Bool(r.Up))
	}
	p.Family("arigate_replica_routed_total", "Attempts sent to the replica.", "counter")
	for _, r := range st.Replicas {
		p.Sample("arigate_replica_routed_total", obs.Labels("replica", r.URL), float64(r.Routed))
	}
	p.Family("arigate_replica_failures_total", "Probe and proxy failures observed for the replica.", "counter")
	for _, r := range st.Replicas {
		p.Sample("arigate_replica_failures_total", obs.Labels("replica", r.URL), float64(r.Failures))
	}

	p.Histogram("arigate_route_seconds", "End-to-end routing latency of answered submissions.",
		g.routeHist.Snapshot(), 1e-6)
	p.Histogram("arigate_attempt_seconds", "Latency of individual proxied attempts (including failed and cancelled legs).",
		g.attemptHist.Snapshot(), 1e-6)
	g.slo.Report().WriteMetrics(&p, "arigate")

	p.Metric("arigate_trace_spans", "Spans held in the in-memory recorder.", "gauge", float64(g.spans.Len()))
	p.Metric("arigate_uptime_seconds", "Seconds since the gateway started.", "gauge", time.Since(g.started).Seconds())
	p.ServeText(w)
}
