package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

func startGate(t *testing.T, args []string, stdout, stderr *syncBuffer) (string, chan os.Signal, chan error) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, stdout, stderr, sigs) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], sigs, done
		}
		select {
		case err := <-done:
			t.Fatalf("gateway exited before listening: %v\nstderr: %s", err, stderr.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gateway never announced its address:\n%s", stderr.String())
	return "", nil, nil
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb syncBuffer
	sigs := make(chan os.Signal)
	for _, args := range [][]string{
		{"-nosuchflag"},
		{},                                     // no replicas
		{"-replicas", "http://a:1,http://a:1"}, // duplicate
		{"-replicas", "http://a:1", "-addr", "999.999.0.1:boom"}, // bad listen addr
	} {
		if err := run(args, &out, &errb, sigs); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestGateRoutesAndDrains(t *testing.T) {
	// A fake replica standing in for ariserve: ready, answers every job.
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.JobResponse{Key: "k", Cached: true})
	}))
	defer replica.Close()

	var out, errb syncBuffer
	addr, sigs, done := startGate(t, []string{
		"-addr", "127.0.0.1:0",
		"-replicas", replica.URL,
		"-probe-interval", "20ms",
	}, &out, &errb)

	cli := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := cli.Submit(ctx, serve.JobRequest{Bench: "bfs"})
	if err != nil {
		t.Fatalf("submit through gateway: %v", err)
	}
	if resp.Key != "k" || !resp.Cached {
		t.Fatalf("gateway response: %+v", resp)
	}

	// The operational endpoints answer through the real listener.
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/v1/stats"} {
		r, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %s", path, r.Status)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "1 routed") {
		t.Errorf("shutdown summary missing routed count:\n%s", out.String())
	}
}
