package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
)

// faultCorruptRates are the per-cycle flit-corruption burst probabilities the
// fault figure sweeps; 0 is the reference point (recovery layer on, nothing
// to recover from), so the other rates isolate the protocol's retransmission
// cost from its standing cost (ACK sideband, buffer backpressure).
var faultCorruptRates = []float64{0, 0.01, 0.03, 0.1}

// FaultFigure measures what fault recovery costs each injection scheme: IPC
// and reply latency for the enhanced baseline, MultiPort and ARI under
// increasing flit-corruption rates, with the recovery protocol layer (CRC
// detection, NACK/ACK, bounded retransmission) enabled everywhere. Corrupted
// packets are never delivered — each is dropped at the receiving NI, NACKed
// and retransmitted — so the performance deltas here are the full price of
// lossless operation under faults. Results average over a high- and a
// medium-intensity benchmark.
func FaultFigure(r *Runner) (*Figure, error) {
	benches := []string{"bfs", "histogram"}
	schemes := []core.Scheme{core.AdaBaseline, core.AdaMultiPort, core.AdaARI}

	kernels := make([]trace.Kernel, len(benches))
	for i, name := range benches {
		k, err := trace.ByName(name)
		if err != nil {
			return nil, err
		}
		kernels[i] = k
	}

	var jobs []Job
	for _, rate := range faultCorruptRates {
		for _, s := range schemes {
			cfg := r.withScheme(s)
			// Recovery on at every rate, including 0, so the sweep varies
			// only the fault pressure, never the protocol machinery.
			cfg.RetransBufPkts = 8
			if rate > 0 {
				cfg.Fault = fault.Config{Enabled: true, CorruptProb: rate}
			}
			for _, k := range kernels {
				jobs = append(jobs, Job{Cfg: cfg, Kernel: k})
			}
		}
	}
	res, err := r.RunAll(jobs)
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("corrupt_prob", "scheme", "ipc", "rep_latency",
		"corrupt_pkts", "retrans_pkts", "fault_events")
	// ipcAt[rate][scheme] = benchmark-averaged IPC, for the summary ratios.
	ipcAt := make(map[float64]map[core.Scheme]float64)
	idx := 0
	for _, rate := range faultCorruptRates {
		ipcAt[rate] = make(map[core.Scheme]float64)
		for _, s := range schemes {
			var ipc, lat float64
			var corrupt, retrans, events uint64
			for range kernels {
				rr := res[idx]
				idx++
				ipc += rr.IPC
				lat += rr.Rep.AvgLatency(noc.ReadReply, noc.WriteReply)
				corrupt += rr.Recovery.CorruptPackets
				retrans += rr.Recovery.RetransPackets
				events += uint64(rr.FaultEvents)
				// Every drop is NACKed on the spot; retransmissions may trail
				// drops only by the recoveries still in flight when the fixed
				// horizon cut the run (the drained soaks pin exact equality).
				if rr.Recovery.NacksSent != rr.Recovery.CorruptPackets ||
					rr.Recovery.RetransPackets > rr.Recovery.CorruptPackets {
					return nil, fmt.Errorf("exp: fault figure: %s/%s at rate %v: drops=%d nacks=%d retrans=%d",
						rr.Benchmark, s, rate, rr.Recovery.CorruptPackets,
						rr.Recovery.NacksSent, rr.Recovery.RetransPackets)
				}
			}
			nb := float64(len(kernels))
			ipc /= nb
			lat /= nb
			ipcAt[rate][s] = ipc
			t.AddRow(fmt.Sprintf("%.2f", rate), s.String(),
				fmt.Sprintf("%.3f", ipc), fmt.Sprintf("%.1f", lat),
				fmt.Sprintf("%d", corrupt), fmt.Sprintf("%d", retrans),
				fmt.Sprintf("%d", events))
		}
	}

	worst := faultCorruptRates[len(faultCorruptRates)-1]
	return &Figure{
		ID:    "fault",
		Title: "Extension: scheme performance under flit corruption with full recovery",
		Paper: "(beyond the paper) the NoC bottleneck under lossless fault recovery",
		Table: t,
		Summary: map[string]float64{
			"ari_ipc_keep_at_worst":  safeDiv(ipcAt[worst][core.AdaARI], ipcAt[0][core.AdaARI]),
			"base_ipc_keep_at_worst": safeDiv(ipcAt[worst][core.AdaBaseline], ipcAt[0][core.AdaBaseline]),
			"ari_gain_at_worst":      safeDiv(ipcAt[worst][core.AdaARI], ipcAt[worst][core.AdaBaseline]) - 1,
		},
		Notes: []string{
			"every corrupted packet was detected and NACKed (zero undetected corruption); recoveries still in flight at the horizon may trail the drop count",
			"recovery layer (RetransBufPkts=8) enabled at rate 0 too, so rows differ only in fault pressure",
		},
	}, nil
}
