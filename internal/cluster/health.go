package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Health actively tracks replica liveness: a probe loop GETs each
// replica's /readyz on an interval, and the gateway reports the outcome of
// every proxied request. A per-replica failure-count circuit breaker opens
// after Threshold consecutive failures — the replica stops receiving
// traffic — and the probe loop doubles as the half-open path: probes keep
// flowing to an open replica, and the first success closes the circuit.
type Health struct {
	replicas  []string
	threshold int
	interval  time.Duration
	client    *http.Client

	mu    sync.Mutex
	state map[string]*replicaState

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool
}

type replicaState struct {
	fails    int   // consecutive failures (probes + proxied requests)
	open     bool  // circuit open: excluded from routing
	probes   int64 // total probes sent
	failures int64 // total failures observed
}

// ReplicaHealth is one replica's row in Snapshot.
type ReplicaHealth struct {
	URL      string `json:"url"`
	Up       bool   `json:"up"`
	Fails    int    `json:"consecutive_fails"`
	Probes   int64  `json:"probes"`
	Failures int64  `json:"failures"`
}

// NewHealth builds a tracker for replicas; Start launches the probe loop.
// threshold <= 0 selects 3 consecutive failures; interval <= 0 selects
// 500ms. Replicas start closed (routable): the first probe, not a cold
// start, decides their fate.
func NewHealth(replicas []string, threshold int, interval time.Duration, hc *http.Client) *Health {
	if threshold <= 0 {
		threshold = 3
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	h := &Health{
		replicas:  append([]string(nil), replicas...),
		threshold: threshold,
		interval:  interval,
		client:    hc,
		state:     make(map[string]*replicaState, len(replicas)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, r := range h.replicas {
		h.state[r] = &replicaState{}
	}
	return h
}

// Start launches the background probe loop. Call Close to stop it.
func (h *Health) Start() {
	h.mu.Lock()
	h.started = true
	h.mu.Unlock()
	go func() {
		defer close(h.done)
		// Probe immediately so a gateway booted against a dead replica set
		// learns it within one interval, not threshold intervals.
		h.probeAll()
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.probeAll()
			}
		}
	}()
}

// Close stops the probe loop (if started) and waits for it to exit.
func (h *Health) Close() {
	h.once.Do(func() { close(h.stop) })
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if started {
		<-h.done
	}
}

func (h *Health) probeAll() {
	var wg sync.WaitGroup
	for _, r := range h.replicas {
		wg.Add(1)
		go func(r string) {
			defer wg.Done()
			h.probe(r)
		}(r)
	}
	wg.Wait()
}

func (h *Health) probe(replica string) {
	ctx, cancel := context.WithTimeout(context.Background(), h.interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/readyz", nil)
	if err != nil {
		h.record(replica, false, true)
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.record(replica, false, true)
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	// A draining replica answers readyz 503: it is alive but refusing new
	// work, which for routing purposes is the same as down.
	h.record(replica, resp.StatusCode == http.StatusOK, true)
}

// ReportSuccess feeds a successful proxied request into the breaker: any
// response at all proves the replica alive, closing its circuit.
func (h *Health) ReportSuccess(replica string) { h.record(replica, true, false) }

// ReportFailure feeds a failed proxied request (transport error) into the
// breaker.
func (h *Health) ReportFailure(replica string) { h.record(replica, false, false) }

func (h *Health) record(replica string, ok, probe bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state[replica]
	if st == nil {
		return // unknown replica: not ours to track
	}
	if probe {
		st.probes++
	}
	if ok {
		st.fails = 0
		st.open = false
		return
	}
	st.failures++
	st.fails++
	if st.fails >= h.threshold {
		st.open = true
	}
}

// Up reports whether replica's circuit is closed (routable).
func (h *Health) Up(replica string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state[replica]
	return st != nil && !st.open
}

// UpCount returns the number of routable replicas.
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, st := range h.state {
		if !st.open {
			n++
		}
	}
	return n
}

// Snapshot returns every replica's health row, sorted by URL.
func (h *Health) Snapshot() []ReplicaHealth {
	h.mu.Lock()
	out := make([]ReplicaHealth, 0, len(h.state))
	for r, st := range h.state {
		out = append(out, ReplicaHealth{
			URL: r, Up: !st.open, Fails: st.fails,
			Probes: st.probes, Failures: st.failures,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
