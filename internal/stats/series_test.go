package stats

import "testing"

func TestSeriesAppendAndAccess(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Fatalf("zero-value Len = %d", s.Len())
	}
	if ti, v := s.Last(); ti != 0 || v != 0 {
		t.Fatalf("zero-value Last = %d,%v", ti, v)
	}
	s.Append(100, 1.5)
	s.Append(200, -2)
	s.Append(300, 0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i, want := range []struct {
		t int64
		v float64
	}{{100, 1.5}, {200, -2}, {300, 0}} {
		if s.Time(i) != want.t || s.Value(i) != want.v {
			t.Errorf("sample %d = %d,%v want %d,%v", i, s.Time(i), s.Value(i), want.t, want.v)
		}
	}
	if ti, v := s.Last(); ti != 300 || v != 0 {
		t.Fatalf("Last = %d,%v, want 300,0", ti, v)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[0] != 1.5 {
		t.Fatalf("Values = %v", vals)
	}
}

// TestSeriesReservePreservesAndPreventsGrowth: Reserve keeps recorded data
// and makes subsequent appends allocation-free up to the reserved size.
func TestSeriesReservePreservesAndPreventsGrowth(t *testing.T) {
	var s Series
	s.Append(1, 10)
	s.Reserve(128)
	if s.Len() != 1 || s.Value(0) != 10 {
		t.Fatalf("Reserve lost data: len=%d", s.Len())
	}
	ti := int64(1)
	allocs := testing.AllocsPerRun(100, func() {
		ti++
		s.Append(ti, float64(ti))
	})
	if allocs != 0 {
		t.Fatalf("Append allocated %.1f/op after Reserve", allocs)
	}
	// Shrinking Reserve is a no-op.
	s.Reserve(1)
	if s.Len() != 102 {
		t.Fatalf("shrinking Reserve corrupted series: len=%d", s.Len())
	}
}
