package noc_test

import (
	"fmt"

	"repro/internal/noc"
)

// Example builds a small reply network with ARI at one MC node, injects a
// read-reply packet and drains it.
func Example() {
	cfg := noc.Config{
		Mesh:        noc.Mesh{Width: 4, Height: 4},
		VCs:         4,
		LinkBits:    128,
		DataBytes:   128,
		Routing:     noc.RouteMinAdaptive,
		NonAtomicVC: true,
	}
	cfg.Nodes = make([]noc.NodeConfig, cfg.Mesh.Nodes())
	cfg.Nodes[5] = noc.NodeConfig{NI: noc.NISplit, InjSpeedup: 4} // the MC

	net, err := noc.NewNetwork(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	net.SetEjectHandler(func(node int, pkt *noc.Packet, now int64) {
		fmt.Printf("delivered %s to node %d\n", pkt.Type, node)
	})
	pkt := &noc.Packet{
		Type: noc.ReadReply,
		Dst:  10,
		Size: noc.PacketSize(noc.ReadReply, cfg.LinkBits, cfg.DataBytes),
	}
	net.Inject(5, pkt)
	for net.InFlight() > 0 {
		net.Step()
	}
	// Output:
	// delivered read_reply to node 10
}

// ExamplePacketSize shows the flit arithmetic behind Table I: a 128B cache
// line on 128-bit links is a 9-flit long packet (the 36-flit NI queue holds
// four of them).
func ExamplePacketSize() {
	fmt.Println(noc.PacketSize(noc.ReadReply, 128, 128))
	fmt.Println(noc.PacketSize(noc.ReadRequest, 128, 128))
	fmt.Println(noc.PacketSize(noc.ReadReply, 256, 128))
	// Output:
	// 9
	// 1
	// 5
}

// ExampleDiamondMCPlacement lists the MC nodes of the Table I system.
func ExampleDiamondMCPlacement() {
	mesh := noc.Mesh{Width: 6, Height: 6}
	mcs := noc.DiamondMCPlacement(mesh, 8)
	fmt.Println(len(mcs), "MCs; compute nodes:", mesh.Nodes()-len(mcs))
	// Output:
	// 8 MCs; compute nodes: 28
}
