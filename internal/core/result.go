package core

import (
	"repro/internal/noc"
)

// Activity captures the event counts the power model charges energy for.
type Activity struct {
	NoCCycles      int64
	CoreCycles     uint64
	Instructions   uint64
	L1Accesses     uint64
	L2Accesses     uint64
	DRAMReads      uint64
	DRAMWrites     uint64
	ReqFlitHops    uint64
	RepFlitHops    uint64
	BufferedFlits  uint64 // buffer write+read pairs ~ switch traversals
	InjectionFlits uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	Benchmark string
	Scheme    Scheme

	// Performance.
	MeasuredCycles int64
	CoreCycles     uint64
	Instructions   uint64
	IPC            float64 // aggregate warp-instructions per core cycle

	// Truncated reports that a fixed-work run (RunWork/RunWorkChecked) hit
	// its maxCycles guard before retiring the requested instructions, so
	// MeasuredCycles understates the true execution time.
	Truncated bool

	// FaultEvents counts injected NoC faults when fault injection was
	// enabled (request + reply side). Counted by the injectors' totals, so
	// the figure is exact even when the retained event log hits the
	// fault.Config.MaxEvents cap.
	FaultEvents int

	// Networks (copies of the per-fabric stats).
	Req noc.NetStats
	Rep noc.NetStats

	// Recovery sums the fault-recovery protocol counters over both networks
	// (zero when recovery is off). NacksSent == CorruptPackets always (every
	// detected drop is NACKed on the spot); RetransPackets may trail
	// CorruptPackets by the recoveries still in flight when the fixed
	// measurement horizon ended the run.
	Recovery noc.RecoveryStats

	// Memory-side.
	MCStallTime     int64 // summed reply-data stall cycles (Fig 12)
	MCBlockedCycles int64
	RepliesSent     uint64
	L1HitRate       float64
	L2HitRate       float64
	DRAMRowHitRate  float64

	// Reply NI occupancy (Fig 6), in flits; capacity for normalisation.
	NIOccAvgFlits     float64
	NIQueueCapFlits   int
	ReplyInjPeakWin95 float64 // 95th pct packets per 100-cycle window (eq. 1)

	Activity Activity
}

// collect gathers the result after the measurement window.
func (s *Simulator) collect() Result {
	r := Result{
		Benchmark:      s.kernel.Name,
		Scheme:         s.cfg.Scheme,
		MeasuredCycles: s.measuredCycles,
		CoreCycles:     s.coreCyclesMeasured,
	}

	var l1Acc, l1Hit uint64
	for _, c := range s.cores {
		r.Instructions += c.Instructions
		l1Acc += c.L1().Accesses
		l1Hit += c.L1().Hits
	}
	if s.coreCyclesMeasured > 0 {
		// Aggregate IPC: warp instructions per core-clock cycle summed over
		// cores (each core ticks once per core cycle).
		r.IPC = float64(r.Instructions) / float64(s.coreCyclesMeasured)
	}
	if l1Acc > 0 {
		r.L1HitRate = float64(l1Hit) / float64(l1Acc)
	}

	var l2Acc, l2Hit, rowHit, rowTot, dr, dw uint64
	for _, mc := range s.mcs {
		r.MCStallTime += mc.StallTime
		r.MCBlockedCycles += mc.BlockedCycle
		r.RepliesSent += mc.RepliesSent
		l2 := mc.L2()
		l2Acc += l2.Accesses
		l2Hit += l2.Hits
		d := mc.DRAM()
		rowHit += d.RowHits
		rowTot += d.RowHits + d.RowMisses
		dr += d.Reads
		dw += d.Writes
	}
	if l2Acc > 0 {
		r.L2HitRate = float64(l2Hit) / float64(l2Acc)
	}
	if rowTot > 0 {
		r.DRAMRowHitRate = float64(rowHit) / float64(rowTot)
	}

	r.Req = *s.reqNet.Stats()
	r.Rep = *s.repNet.Stats()
	r.Recovery = s.RecoveryStats()

	if s.reqFault != nil {
		r.FaultEvents += int(s.reqFault.TotalEvents())
	}
	if s.repFault != nil {
		r.FaultEvents += int(s.repFault.TotalEvents())
	}

	switch rep := s.repNet.(type) {
	case *noc.Network:
		r.NIOccAvgFlits = rep.NIOccupancyAvgFlits()
		r.NIQueueCapFlits = rep.NIQueueCapacityFlits(s.mcNodes[0])
		r.ReplyInjPeakWin95 = rep.PeakInjWindow(95)
	case *noc.DA2Mesh:
		r.NIOccAvgFlits = rep.NIOccupancyAvgFlits()
	}

	r.Activity = Activity{
		NoCCycles:      s.measuredCycles,
		CoreCycles:     s.coreCyclesMeasured,
		Instructions:   r.Instructions,
		L1Accesses:     l1Acc,
		L2Accesses:     l2Acc,
		DRAMReads:      dr,
		DRAMWrites:     dw,
		ReqFlitHops:    r.Req.MeshLinkFlits,
		RepFlitHops:    r.Rep.MeshLinkFlits,
		BufferedFlits:  r.Req.SwitchTraversals + r.Rep.SwitchTraversals,
		InjectionFlits: r.Req.InjLinkFlits + r.Rep.InjLinkFlits,
	}
	return r
}

// LongPacketFlits returns the reply-network long-packet size in flits.
func (s *Simulator) LongPacketFlits() int {
	return noc.PacketSize(noc.ReadReply, s.cfg.RepLinkBits, s.cfg.DataBytes)
}
