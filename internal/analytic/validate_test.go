package analytic_test

import (
	"flag"
	"testing"

	"repro/internal/analytic"
	"repro/internal/exp"
	"repro/internal/trace"
)

var (
	recordBands = flag.Bool("analytic-record", false,
		"re-record testdata/error_bands.json from fresh simulations (full suite x schemes); review the diff before committing")
	fullBands = flag.Bool("analytic-full", false,
		"validate the full suite x schemes against the recorded bands (the make validate-analytic gate); the default is a small subset")
)

const bandsPath = "testdata/error_bands.json"

// subsetBenches bounds the tier-1 run: enough points to catch a physics
// change in any scheme without paying for the full suite on every
// `go test ./...`. The full matrix runs under -analytic-full.
const subsetBenches = 6

// TestErrorBands is the estimator-vs-simulator drift oracle (DESIGN.md
// §12). Both sides are deterministic, so the relative errors recorded in
// the golden reproduce exactly on unchanged code; any drift beyond the
// tolerance means the simulator's physics or the model changed, and the
// failure is independent of the byte-identity goldens.
func TestErrorBands(t *testing.T) {
	cfg := analytic.ValidationConfig()
	runner := &exp.Runner{Base: cfg, Benchmarks: trace.Suite()}
	suite := trace.Suite()
	schemes := analytic.ValidationSchemes()

	if *recordBands {
		bands, err := analytic.Compare(cfg, suite, schemes, runner.Run)
		if err != nil {
			t.Fatal(err)
		}
		g := &analytic.Bands{
			Warmup:  cfg.WarmupCycles,
			Measure: cfg.MeasureCycles,
			Seed:    cfg.Seed,
			Tol:     analytic.DriftTol,
			Bands:   bands,
		}
		if err := analytic.WriteBands(bandsPath, g); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d bands to %s", len(bands), bandsPath)
		return
	}

	g, err := analytic.LoadBands(bandsPath)
	if err != nil {
		t.Fatalf("loading goldens (re-create with -analytic-record): %v", err)
	}
	if err := g.CheckProtocol(cfg); err != nil {
		t.Fatal(err)
	}

	kernels := suite
	if !*fullBands {
		kernels = suite[:subsetBenches]
	}
	bands, err := analytic.Compare(cfg, kernels, schemes, runner.Run)
	if err != nil {
		t.Fatal(err)
	}
	// Every measured point must have a recorded reference — a new benchmark
	// or scheme needs a re-record, not a silent pass.
	for _, b := range bands {
		if _, ok := g.Lookup(b.Bench, b.Scheme); !ok {
			t.Errorf("no recorded band for %s/%s; re-record with -analytic-record", b.Bench, b.Scheme)
		}
	}
	if err := g.CheckDrift(bands); err != nil {
		t.Fatal(err)
	}
}

// TestBandsGoldenCoversFullMatrix locks the golden's shape without running
// any simulation: one band per (suite kernel, validation scheme), so the
// full gate can never silently validate a subset.
func TestBandsGoldenCoversFullMatrix(t *testing.T) {
	g, err := analytic.LoadBands(bandsPath)
	if err != nil {
		t.Fatalf("loading goldens (re-create with -analytic-record): %v", err)
	}
	suite := trace.Suite()
	schemes := analytic.ValidationSchemes()
	if want := len(suite) * len(schemes); len(g.Bands) != want {
		t.Fatalf("golden has %d bands, want %d (%d kernels x %d schemes)",
			len(g.Bands), want, len(suite), len(schemes))
	}
	for _, k := range suite {
		for _, s := range schemes {
			if _, ok := g.Lookup(k.Name, s.String()); !ok {
				t.Errorf("golden missing %s/%s", k.Name, s)
			}
		}
	}
}
