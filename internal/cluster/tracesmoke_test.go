package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/trace"
)

// smokeSchema mirrors internal/obs/testdata/chrome_trace_schema.json — the
// merged cluster trace must satisfy the same trace_event contract the
// single-process exporters do.
type smokeSchema struct {
	TopLevelRequired        []string            `json:"top_level_required"`
	AllowedDisplayTimeUnits []string            `json:"allowed_display_time_units"`
	EventRequired           []string            `json:"event_required"`
	AllowedPhases           []string            `json:"allowed_phases"`
	PhaseRequired           map[string][]string `json:"phase_required"`
}

// startRealReplica runs a real ariserve handler with fast horizons.
func startRealReplica(t *testing.T, process string) *httptest.Server {
	t.Helper()
	base := core.DefaultConfig()
	base.WarmupCycles = 200
	base.MeasureCycles = 600
	k, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Runner:       &exp.Runner{Base: base, Benchmarks: []trace.Kernel{k}},
		PacketSample: 1,
		Process:      process,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterTracedSmoke is the tentpole acceptance check: a gateway-routed
// job against two real replicas, traced end to end, must export ONE Chrome
// trace containing gateway spans, replica spans, and NoC packet spans, all
// sharing one trace ID, valid against the checked-in schema fixture.
// `make obs` runs it as the cluster observability smoke.
func TestClusterTracedSmoke(t *testing.T) {
	raw, err := os.ReadFile("../obs/testdata/chrome_trace_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema smokeSchema
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema fixture unparsable: %v", err)
	}

	a := startRealReplica(t, "ariserve-a")
	b := startRealReplica(t, "ariserve-b")
	base := core.DefaultConfig()
	base.WarmupCycles = 200
	base.MeasureCycles = 600
	g := gateFor(t, Config{Base: base, Replicas: []string{a.URL, b.URL}, TraceSample: 1})
	gts := httptest.NewServer(g)
	defer gts.Close()

	resp, err := http.Post(gts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"bfs"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed submit: %d %s", resp.StatusCode, body)
	}
	tc, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("no trace context on routed response (header %q)", resp.Header.Get(obs.TraceHeader))
	}

	// Pull the merged trace from the gateway (it federates the replicas'
	// /debug/spans for this trace ID).
	resp, err = http.Get(gts.URL + "/debug/trace?trace=" + tc.Trace)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: %d %s", resp.StatusCode, doc)
	}

	// Schema validation.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(doc, &top); err != nil {
		t.Fatalf("merged trace not JSON: %v", err)
	}
	for _, k := range schema.TopLevelRequired {
		if _, ok := top[k]; !ok {
			t.Fatalf("merged trace missing top-level %q", k)
		}
	}
	var unit string
	json.Unmarshal(top["displayTimeUnit"], &unit)
	if !containsStr(schema.AllowedDisplayTimeUnits, unit) {
		t.Fatalf("displayTimeUnit %q not allowed", unit)
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(top["traceEvents"], &events); err != nil {
		t.Fatal(err)
	}

	// One timeline: gateway, replica and NoC packet spans under one trace ID.
	layers := map[string]bool{}
	for i, ev := range events {
		for _, k := range schema.EventRequired {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %d missing %q", i, k)
			}
		}
		var ph, name string
		json.Unmarshal(ev["ph"], &ph)
		json.Unmarshal(ev["name"], &name)
		if !containsStr(schema.AllowedPhases, ph) {
			t.Fatalf("event %d phase %q not allowed", i, ph)
		}
		if ph != "X" {
			continue
		}
		for _, k := range schema.PhaseRequired["X"] {
			if _, ok := ev[k]; !ok {
				t.Fatalf("X event %d missing %q", i, k)
			}
		}
		var args map[string]any
		json.Unmarshal(ev["args"], &args)
		if args["trace"] != tc.Trace {
			t.Fatalf("event %q trace = %v, want %s", name, args["trace"], tc.Trace)
		}
		switch {
		case name == "gateway.route" || name == "gateway.attempt":
			layers["gateway"] = true
		case strings.HasPrefix(name, "serve."):
			layers["replica"] = true
		case strings.HasPrefix(name, "pkt "):
			layers["noc"] = true
		}
	}
	for _, layer := range []string{"gateway", "replica", "noc"} {
		if !layers[layer] {
			t.Fatalf("merged trace missing the %s layer (layers=%v):\n%s", layer, layers, doc)
		}
	}
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
