// Equivalence lock for the observability layer: attaching the metrics
// registry and packet tracers to a simulation must leave its Result
// byte-identical to an uninstrumented run — observation only, no Heisenberg.
package obs_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simeq"
	"repro/internal/trace"
)

func TestInstrumentedRunIsByteIdentical(t *testing.T) {
	kernel, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []core.Scheme{core.XYBaseline, core.AdaARI} {
		t.Run(sch.String(), func(t *testing.T) {
			cfg := simeq.ShortConfig()
			cfg.Scheme = sch

			want := simeq.RunEncoded(t, cfg, kernel)

			sim, err := core.NewSimulator(cfg, kernel)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry(50)
			obs.AttachSimulator(reg, sim)
			reg.Reserve(int((cfg.WarmupCycles+cfg.MeasureCycles)/50) + 2)
			reqColl, repColl := obs.AttachTracers(sim, 2)
			res := sim.Run()
			got, err := simeq.Encode(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("instrumented run diverged from plain run under %s", sch)
			}

			// The identity must not hold vacuously: the instruments saw data.
			if reg.Samples() == 0 {
				t.Fatal("registry never sampled")
			}
			if reg.Last("gpu.instructions") == 0 && reg.Last("gpu.core_cycles") == 0 {
				t.Fatal("gpu probes recorded nothing")
			}
			if reqColl == nil || len(reqColl.Done()) == 0 {
				t.Fatal("request tracer recorded no lifecycles")
			}
			if repColl == nil || len(repColl.Done()) == 0 {
				t.Fatal("reply tracer recorded no lifecycles")
			}
			d := repColl.Decompose()
			if d.Packets == 0 || d.Total.Value() <= 0 {
				t.Fatalf("decomposition empty: %+v", d)
			}
		})
	}
}

// TestBehaviouralFabricAttaches covers the ideal-reply path: the registry
// attaches its behavioural probes (no per-VC state), tracers degrade to
// request-only, and the run still matches the plain one byte for byte.
func TestBehaviouralFabricAttaches(t *testing.T) {
	kernel, err := trace.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg := simeq.ShortConfig()
	cfg.Scheme = core.XYBaseline
	cfg.IdealReply = true

	want := simeq.RunEncoded(t, cfg, kernel)
	sim, err := core.NewSimulator(cfg, kernel)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(50)
	obs.AttachSimulator(reg, sim)
	reqColl, repColl := obs.AttachTracers(sim, 2)
	res := sim.Run()
	got, err := simeq.Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("instrumented ideal-reply run diverged from plain run")
	}
	if repColl != nil {
		t.Fatal("ideal reply fabric produced a tracer; expected nil")
	}
	if reqColl == nil || len(reqColl.Done()) == 0 {
		t.Fatal("request tracer recorded no lifecycles")
	}
	if reg.Samples() == 0 {
		t.Fatal("registry never sampled")
	}
	if reg.Last("rep.ejected_packets.read_reply") == 0 {
		t.Fatal("behavioural reply probes recorded nothing")
	}
}
