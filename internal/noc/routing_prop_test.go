package noc

import (
	"testing"

	"repro/internal/rng"
)

// routeOnce copies computeRoute's candidates so two route computations can
// be compared (computeRoute reuses its scratch slice).
func routeOnce(m Mesh, algo RoutingAlgo, here, dst, vcs int) []routeCandidate {
	var scratch []routeCandidate
	return append([]routeCandidate(nil), computeRoute(m, algo, here, dst, vcs, scratch)...)
}

// randomMesh draws a mesh shape and a (src, dst) pair.
func randomMesh(r *rng.Source) (Mesh, int, int) {
	m := Mesh{Width: 2 + r.Intn(7), Height: 2 + r.Intn(7)}
	return m, r.Intn(m.Nodes()), r.Intn(m.Nodes())
}

// TestXYRouteMinimalAndOrdered checks the two defining properties of
// dimension-order routing on random meshes and endpoint pairs: the walk is
// minimal (exactly Hops(src,dst) steps, every step productive) and X-then-Y
// ordered (no X move after the first Y move).
func TestXYRouteMinimalAndOrdered(t *testing.T) {
	r := rng.New(0xA11CE)
	for trial := 0; trial < 2000; trial++ {
		m, src, dst := randomMesh(r)
		here, steps, movedY := src, 0, false
		for here != dst {
			cands := routeOnce(m, RouteXY, here, dst, 4)
			if len(cands) != 1 {
				t.Fatalf("mesh %dx%d %d->%d at %d: XY gave %d candidates, want 1",
					m.Width, m.Height, src, dst, here, len(cands))
			}
			dir := Direction(cands[0].port)
			if cands[0].vcMask != maskAll(4) {
				t.Fatalf("XY candidate restricts VCs: mask %#x", cands[0].vcMask)
			}
			if dir == North || dir == South {
				movedY = true
			} else if movedY {
				t.Fatalf("mesh %dx%d %d->%d: X move (%v) after a Y move",
					m.Width, m.Height, src, dst, dir)
			}
			next := m.Neighbor(here, dir)
			if next < 0 {
				t.Fatalf("XY routed off the mesh edge at node %d toward %v", here, dir)
			}
			if m.Hops(next, dst) != m.Hops(here, dst)-1 {
				t.Fatalf("unproductive XY hop %d->%d (dst %d)", here, next, dst)
			}
			here = next
			if steps++; steps > m.Nodes() {
				t.Fatalf("XY walk %d->%d did not terminate", src, dst)
			}
		}
		if steps != m.Hops(src, dst) {
			t.Fatalf("XY walk %d->%d took %d steps, minimal is %d",
				src, dst, steps, m.Hops(src, dst))
		}
		arrived := routeOnce(m, RouteXY, dst, dst, 4)
		if len(arrived) != 1 || arrived[0].port != ejectPortIndex {
			t.Fatalf("arrived packet not routed to the ejection port: %+v", arrived)
		}
	}
}

// TestAdaptiveRouteMinimalProductive checks minimal-adaptive routing:
// every candidate is a productive direction (so any adaptive choice
// sequence is exactly Hops(src,dst) long — never more than minimal), masks
// stay within the VC count, and a random walk over the candidate sets
// terminates minimally.
func TestAdaptiveRouteMinimalProductive(t *testing.T) {
	r := rng.New(0xB0B1)
	for trial := 0; trial < 2000; trial++ {
		m, src, dst := randomMesh(r)
		vcs := 2 + r.Intn(3)
		here, steps := src, 0
		for here != dst {
			cands := routeOnce(m, RouteMinAdaptive, here, dst, vcs)
			if len(cands) == 0 {
				t.Fatalf("no adaptive candidates at %d toward %d", here, dst)
			}
			for _, c := range cands {
				if c.vcMask == 0 || c.vcMask&^maskAll(vcs) != 0 {
					t.Fatalf("candidate mask %#x invalid for %d VCs", c.vcMask, vcs)
				}
				next := m.Neighbor(here, Direction(c.port))
				if next < 0 {
					t.Fatalf("adaptive candidate leaves the mesh at %d toward %v", here, Direction(c.port))
				}
				if m.Hops(next, dst) != m.Hops(here, dst)-1 {
					t.Fatalf("unproductive adaptive candidate %d->%d (dst %d)", here, next, dst)
				}
			}
			pick := cands[r.Intn(len(cands))]
			here = m.Neighbor(here, Direction(pick.port))
			if steps++; steps > m.Nodes() {
				t.Fatalf("adaptive walk %d->%d did not terminate", src, dst)
			}
		}
		if steps != m.Hops(src, dst) {
			t.Fatalf("adaptive walk %d->%d took %d steps, minimal is %d",
				src, dst, steps, m.Hops(src, dst))
		}
	}
}

// TestAdaptiveEscapeVCFollowsXY checks the deadlock-freedom discipline of
// the escape VC (paper §6.2): VC 0 is admissible only on the XY-preferred
// output, so the escape subnetwork routes exactly like dimension-order XY —
// which is cycle-free — and a packet restricted to escape candidates
// traces the identical node sequence as RouteXY.
func TestAdaptiveEscapeVCFollowsXY(t *testing.T) {
	r := rng.New(0xE5CA9E)
	for trial := 0; trial < 2000; trial++ {
		m, src, dst := randomMesh(r)
		vcs := 2 + r.Intn(3)
		here := src
		for here != dst {
			cands := routeOnce(m, RouteMinAdaptive, here, dst, vcs)
			xy := routeOnce(m, RouteXY, here, dst, vcs)[0]

			var escapePorts []int
			for i, c := range cands {
				if c.vcMask&1 != 0 {
					escapePorts = append(escapePorts, c.port)
					if i != 0 {
						t.Fatalf("escape candidate not ordered first at %d toward %d", here, dst)
					}
				}
			}
			if len(escapePorts) != 1 || escapePorts[0] != xy.port {
				t.Fatalf("escape VC admissible on %v at %d toward %d, want only XY port %v",
					escapePorts, here, dst, Direction(xy.port))
			}
			here = m.Neighbor(here, Direction(escapePorts[0]))
		}
	}
}
